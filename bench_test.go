// Benchmarks regenerating every table and figure of the paper, plus
// micro-benchmarks of the synthesis building blocks. The table benchmarks
// run a reduced protocol (1 repetition, small GA) per iteration so the
// whole suite stays minutes-scale; cmd/mmbench runs the full protocol.
package momosyn_test

import (
	"math/rand"
	"testing"

	"momosyn/internal/bench"
	"momosyn/internal/dvs"
	"momosyn/internal/ga"
	"momosyn/internal/gen"
	"momosyn/internal/model"
	"momosyn/internal/sched"
	"momosyn/internal/sim"
	"momosyn/internal/synth"
)

// benchGA is the reduced engine configuration used by the table
// benchmarks.
func benchGA() ga.Config {
	return ga.Config{PopSize: 24, MaxGenerations: 60, Stagnation: 25}
}

// BenchmarkTable1 regenerates paper Table 1: mul1-mul12 without DVS,
// probability-neglecting vs proposed.
func BenchmarkTable1(b *testing.B) {
	cfg := bench.HarnessConfig{Reps: 1, GA: benchGA()}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkTable2 regenerates paper Table 2: mul1-mul12 with DVS on both
// software processors and hardware cores.
func BenchmarkTable2(b *testing.B) {
	cfg := bench.HarnessConfig{Reps: 1, GA: benchGA()}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkTable3 regenerates paper Table 3: the smart phone without and
// with DVS.
func BenchmarkTable3(b *testing.B) {
	cfg := bench.HarnessConfig{Reps: 1, GA: benchGA()}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// reportRows folds the mean reduction into a reported metric so the
// benchmark output carries the experiment's headline number.
func reportRows(b *testing.B, rows []bench.Row) {
	sum := 0.0
	for _, r := range rows {
		sum += r.ReductionPct
	}
	b.ReportMetric(sum/float64(len(rows)), "mean-reduction-%")
}

// BenchmarkFigure2 regenerates the motivational example of Fig. 2 by
// exhaustive search under both probability models.
func BenchmarkFigure2(b *testing.B) {
	sys, err := bench.Figure2System()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := synth.Exhaustive(nil, sys, false, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := synth.Exhaustive(nil, sys, false, synth.UniformProbs(sys)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the multiple-implementation example of
// Fig. 3 by exhaustive search.
func BenchmarkFigure3(b *testing.B) {
	sys, err := bench.Figure3System()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := synth.Exhaustive(nil, sys, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Transform measures the hardware-core DVS transformation
// of Fig. 5 (five tasks on two cores folding into virtual tasks).
func BenchmarkFigure5Transform(b *testing.B) {
	slots := []sched.TaskSlot{
		{Task: 0, Core: 0, Start: 0, Finish: 4, Power: 1e-3},
		{Task: 1, Core: 0, Start: 4, Finish: 6, Power: 2e-3},
		{Task: 2, Core: 1, Start: 1, Finish: 4, Power: 4e-3},
		{Task: 3, Core: 1, Start: 4, Finish: 5, Power: 8e-3},
		{Task: 4, Core: 1, Start: 5, Finish: 6, Power: 16e-3},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if segs := dvs.Transform(slots); len(segs) != 4 {
			b.Fatalf("expected 4 segments, got %d", len(segs))
		}
	}
}

// --- micro-benchmarks of the inner-loop building blocks -----------------

func phoneAndMapping(b *testing.B) (*model.System, model.Mapping) {
	b.Helper()
	sys, err := bench.SmartPhone()
	if err != nil {
		b.Fatal(err)
	}
	codec, err := synth.NewCodec(sys)
	if err != nil {
		b.Fatal(err)
	}
	return sys, codec.Decode(make([]int, codec.Len()))
}

// BenchmarkMobility measures ASAP/ALAP analysis of the smart phone's
// largest mode (48 tasks).
func BenchmarkMobility(b *testing.B) {
	sys, mapping := phoneAndMapping(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ComputeMobility(sys, 1, mapping); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkListSchedule measures list scheduling of the smart phone's
// largest mode.
func BenchmarkListSchedule(b *testing.B) {
	sys, mapping := phoneAndMapping(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ListSchedule(sys, 1, mapping, sched.SingleCores{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDVSScale measures greedy voltage selection on a scheduled
// smart-phone mode.
func BenchmarkDVSScale(b *testing.B) {
	sys, mapping := phoneAndMapping(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sc, err := sched.ListSchedule(sys, 1, mapping, sched.SingleCores{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		dvs.Scale(sys, sc)
	}
}

// BenchmarkEvaluate measures one full inner-loop evaluation (all 8 modes,
// core allocation, scheduling, penalties) of a smart-phone mapping.
func BenchmarkEvaluate(b *testing.B) {
	sys, mapping := phoneAndMapping(b)
	ev := synth.NewEvaluator(sys, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(mapping); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateDVS is BenchmarkEvaluate with voltage scaling enabled,
// exposing the inner-loop cost difference the paper reports as the much
// larger CPU times of Table 2.
func BenchmarkEvaluateDVS(b *testing.B) {
	sys, mapping := phoneAndMapping(b)
	ev := synth.NewEvaluator(sys, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(mapping); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeMul9 measures a complete GA synthesis run of one
// generated benchmark (the smallest of the twelve).
func BenchmarkSynthesizeMul9(b *testing.B) {
	sys, err := bench.MulSystem(9)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(sys, synth.Options{GA: benchGA(), Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures instance generation (mul-envelope).
func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(gen.NewParams(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleRefine measures 20 priority-perturbation refinement
// iterations of the smart phone's largest mode.
func BenchmarkScheduleRefine(b *testing.B) {
	sys, mapping := phoneAndMapping(b)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Refine(sys, 1, mapping, sched.SingleCores{}, nil, 20, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateTrace measures trace generation plus discrete-event
// simulation of one hour of smart-phone usage.
func BenchmarkSimulateTrace(b *testing.B) {
	sys, err := bench.SmartPhone()
	if err != nil {
		b.Fatal(err)
	}
	res, err := synth.Synthesize(sys, synth.Options{GA: benchGA(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace, err := sim.GenerateTrace(sys.App, sim.TraceConfig{
			Horizon: 3600, MeanDwell: 5, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(sys, res.Best, trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParetoFront measures the NSGA-II power/area exploration on a
// generated instance.
func BenchmarkParetoFront(b *testing.B) {
	sys, err := bench.MulSystem(9)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := synth.Pareto(sys, synth.ParetoOptions{
			GA:   ga.Config{PopSize: 24, MaxGenerations: 25},
			Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStudy measures the full five-variant ablation of one
// DVS instance at one repetition per variant.
func BenchmarkAblationStudy(b *testing.B) {
	sys, err := bench.MulSystem(11)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.HarnessConfig{Reps: 1, GA: benchGA()}
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationStudy(sys, true, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
