// Package momosyn is a co-synthesis framework for energy-efficient
// multi-mode embedded systems, reproducing Schmitz, Al-Hashimi and Eles,
// "A Co-Design Methodology for Energy-Efficient Multi-Mode Embedded
// Systems with Consideration of Mode Execution Probabilities" (DATE 2003).
//
// The implementation lives under internal/:
//
//	model   - OMSM specification, architecture, technology library
//	specio  - text format for system specifications
//	sched   - mobility analysis, list scheduling, communication mapping
//	energy  - power model (paper Eq. 1) and DVS scaling laws
//	dvs     - voltage selection incl. the Fig. 5 hardware-core transform
//	ga      - genetic algorithm engine
//	synth   - the co-synthesis (mapping GA, core allocation, penalties)
//	gen     - TGFF-style random benchmark generator
//	bench   - paper benchmarks (Figs. 2/3, mul1-mul12, smart phone),
//	          the Table 1-3 experiment harness and the ablation study
//	sim     - discrete-event execution simulator and usage traces
//	gantt   - text/SVG Gantt charts of per-mode schedules
//
// Command-line tools: cmd/mmgen (instance generation, DOT export,
// statistics), cmd/mmsynth (synthesis of one spec, mapping persistence,
// Gantt charts), cmd/mmbench (regenerate the paper's tables, figures and
// the ablation study), cmd/mmsim (trace-driven validation). Runnable
// examples are under examples/.
package momosyn
