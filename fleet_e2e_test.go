// Process-level fleet torture tests: real mmserved processes sharing a
// fleet directory, killed with SIGKILL mid-generation or stalled with
// SIGSTOP past their lease TTL. Every job must still reach a certified
// terminal state exactly once, and a resurrected stale node must fence
// itself instead of clobbering reclaimed work. Run with -short to skip.
package momosyn_test

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"momosyn/internal/serve"
)

// fetchMetric reads one counter or gauge from a node's /metrics endpoint.
func fetchMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]float64 `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/metrics decode: %v", err)
	}
	if v, ok := snap.Counters[name]; ok {
		return v
	}
	return snap.Gauges[name]
}

// TestFleetKillNineTorture is the node-loss drill: two nodes share a fleet
// directory, four jobs go in, and one node is SIGKILLed while running.
// The survivor must recover every orphaned job from its checkpoint and
// finish all four — no job lost, no job completed twice.
func TestFleetKillNineTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet torture test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	spec := filepath.Join(work, "inst.spec")
	run(t, bin, "mmgen", "-seed", "5", "-o", spec)
	specText, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	fleetDir := filepath.Join(work, "fleet")

	fleetArgs := func(node string) []string {
		return []string{
			"-fleet-dir", fleetDir, "-node-id", node,
			"-lease-ttl", "1s", "-heartbeat", "100ms",
			"-workers", "2", "-checkpoint-every", "2",
		}
	}
	victim, victimBase := startServed(t, bin, "", fleetArgs("victim")...)
	_, survivorBase := startServed(t, bin, "", fleetArgs("survivor")...)
	cv := servedClient(t, victimBase)
	cs := servedClient(t, survivorBase)
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()

	// Four jobs sized to run for a few seconds each: long enough to die
	// mid-run, short enough to finish afterwards.
	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		sub, err := cv.Submit(ctx, serve.JobRequest{
			Spec: string(specText),
			Seed: seed,
			GA:   serve.GAParams{PopSize: 32, MaxGenerations: 1500, Stagnation: 1500},
		})
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		ids = append(ids, sub.ID)
	}

	// Wait for a job to be demonstrably mid-run on the victim, then murder
	// the process — no drain, no checkpoint flush, nothing.
	var midRun string
	deadline := time.Now().Add(60 * time.Second)
	for midRun == "" {
		if time.Now().After(deadline) {
			t.Fatal("no job reached mid-run on the victim")
		}
		for _, id := range ids {
			v, err := cv.Status(ctx, id)
			if err != nil {
				t.Fatalf("status %s: %v", id, err)
			}
			if v.State == serve.StateRunning && v.Node == "victim" &&
				v.Progress != nil && v.Progress.Generation >= 3 {
				midRun = id
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	t.Logf("killed victim while job %s was mid-run", midRun)

	// The survivor steals the orphaned leases and finishes everything.
	for _, id := range ids {
		v, err := cs.WaitTerminal(ctx, id, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("job %s never finished after the kill: %v", id, err)
		}
		if v.State != serve.StateDone {
			t.Fatalf("job %s ended %s (%s), want done", id, v.State, v.Error)
		}
		raw, err := cs.Result(ctx, id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		var res struct {
			Feasible      bool `json:"feasible"`
			Certification *struct {
				Certified bool `json:"certified"`
			} `json:"certification"`
		}
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("result %s decode: %v", id, err)
		}
		if res.Certification == nil || !res.Certification.Certified {
			t.Fatalf("job %s finished without certification", id)
		}
	}

	// The job that died mid-run must have migrated to the survivor.
	v, err := cs.Status(ctx, midRun)
	if err != nil {
		t.Fatal(err)
	}
	if v.Node != "survivor" {
		t.Fatalf("mid-run job %s finished on node %q, want the survivor", midRun, v.Node)
	}
	if got := fetchMetric(t, survivorBase, "fleet.steals"); got < 1 {
		t.Fatalf("survivor fleet.steals = %v, want >= 1", got)
	}

	// Exactly-once: every job has exactly one committed result file — a
	// second one would mean two nodes both ran it to completion.
	for _, id := range ids {
		results, err := filepath.Glob(filepath.Join(fleetDir, "jobs", id, "result.e*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 1 {
			t.Fatalf("job %s has %d committed results %v, want exactly 1", id, len(results), results)
		}
	}
}

// TestFleetStalledNodeFences is the partition drill: a node is SIGSTOPped
// past its lease TTL while running a job, a peer reclaims the work, and
// the stalled node — once SIGCONTed, a textbook resurrected stale holder —
// must fence itself: reject counters move, and the reclaimed job's state
// stays owned by the peer.
func TestFleetStalledNodeFences(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet fencing test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	spec := filepath.Join(work, "inst.spec")
	run(t, bin, "mmgen", "-seed", "5", "-o", spec)
	specText, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	fleetDir := filepath.Join(work, "fleet")

	fleetArgs := func(node string) []string {
		return []string{
			"-fleet-dir", fleetDir, "-node-id", node,
			"-lease-ttl", "500ms", "-heartbeat", "100ms", "-workers", "1",
		}
	}
	procA, baseA := startServed(t, bin, "", fleetArgs("nodeA")...)
	procB, baseB := startServed(t, bin, "", fleetArgs("nodeB")...)
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	// One long job; either node may win the claim race, so the roles —
	// which process gets stalled, which one is the healthy peer — are
	// assigned after the fact.
	sub, err := servedClient(t, baseA).Submit(ctx, serve.JobRequest{
		Spec: string(specText),
		Seed: 3,
		GA:   serve.GAParams{PopSize: 48, MaxGenerations: 1_000_000, Stagnation: 1_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	var owner string
	deadline := time.Now().Add(60 * time.Second)
	for owner == "" {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		v, err := servedClient(t, baseA).Status(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == serve.StateRunning {
			owner = v.Node
		}
		time.Sleep(10 * time.Millisecond)
	}
	stalled, stalledBase, peerName := procA, baseA, "nodeB"
	peerBase := baseB
	if owner == "nodeB" {
		stalled, stalledBase, peerName = procB, baseB, "nodeA"
		peerBase = baseA
	}
	cPeer := servedClient(t, peerBase)

	// Freeze the owner well past its lease TTL, let the peer steal the
	// job, then thaw the owner.
	if err := stalled.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("peer never stole the stalled node's lease")
		}
		v, err := cPeer.Status(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == serve.StateRunning && v.Node == peerName {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := stalled.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}

	// The resurrected node's next fenced operation must be rejected.
	deadline = time.Now().Add(60 * time.Second)
	for fetchMetric(t, stalledBase, "fleet.fence_rejects") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("stalled node never recorded a fence rejection after SIGCONT")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := fetchMetric(t, stalledBase, "serve.jobs_fenced"); got < 1 {
		t.Fatalf("stalled node serve.jobs_fenced = %v, want >= 1", got)
	}

	// The job still belongs to the peer and finishes under it.
	if resp, err := http.NewRequestWithContext(ctx, http.MethodDelete, peerBase+"/v1/jobs/"+sub.ID, nil); err == nil {
		if r, derr := http.DefaultClient.Do(resp); derr == nil {
			r.Body.Close()
		}
	}
	v, err := cPeer.WaitTerminal(ctx, sub.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != serve.StateCancelled {
		t.Fatalf("job ended %s, want cancelled", v.State)
	}
	if v.Node != peerName {
		t.Fatalf("final state written by %q, want the peer %q that reclaimed it", v.Node, peerName)
	}

	// Safety net for the exactly-once invariant here too: the stale
	// node's epoch wrote no terminal result.
	if results, _ := filepath.Glob(filepath.Join(fleetDir, "jobs", sub.ID, "result.e*.json")); len(results) > 1 {
		t.Fatalf("job %s has %d committed results %v, want at most 1", sub.ID, len(results), results)
	}
}
