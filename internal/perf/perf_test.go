package perf

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"momosyn/internal/ga"
)

// sample builds a valid single-spec artifact whose wall times are given in
// milliseconds; all other metrics get fixed benign values.
func sample(wallMs ...float64) *Artifact {
	a := &Artifact{
		Schema: Schema,
		Env:    Env{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, NumCPU: 4, Commit: "abc123abc123", Timestamp: "2026-08-09T00:00:00Z"},
		Config: RunConfig{Reps: len(wallMs), Warmups: 1, Seed: 1, PopSize: 8, MaxGens: 4, Stagnation: 3},
	}
	sr := SpecResult{Name: "mul1", Modes: 2, Tasks: 10}
	for i, ms := range wallMs {
		sr.Reps = append(sr.Reps, Rep{
			Seed:         1 + int64(i)*7919,
			WallNs:       int64(ms * 1e6),
			Evaluations:  1000,
			EvalsPerSec:  1000 / (ms / 1e3),
			Generations:  10,
			CacheHitRate: 0.5,
			Allocs:       50000,
			AllocBytes:   4 << 20,
			Phases:       PhaseNs{Mobility: 2e6, CoreAlloc: 3e6, ListSched: 40e6, CommMap: 10e6},
		})
	}
	a.Specs = append(a.Specs, sr)
	return a
}

func TestArtifactRoundTrip(t *testing.T) {
	a := sample(100, 101, 99)
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Specs[0].Name != "mul1" || len(got.Specs[0].Reps) != 3 {
		t.Fatalf("round trip mangled artifact: %+v", got)
	}
	if got.Specs[0].Reps[2].WallNs != int64(99e6) {
		t.Fatalf("wall ns = %d, want 99e6", got.Specs[0].Reps[2].WallNs)
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	_, err := Read(strings.NewReader(`{"schema":"mmperf/v1","bogus":1}`))
	if err == nil {
		t.Fatal("unknown top-level field accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Artifact)
	}{
		{"bad schema", func(a *Artifact) { a.Schema = "mmperf/v0" }},
		{"no specs", func(a *Artifact) { a.Specs = nil }},
		{"unnamed spec", func(a *Artifact) { a.Specs[0].Name = "" }},
		{"duplicate spec", func(a *Artifact) { a.Specs = append(a.Specs, a.Specs[0]) }},
		{"no reps", func(a *Artifact) { a.Specs[0].Reps = nil }},
		{"zero wall", func(a *Artifact) { a.Specs[0].Reps[0].WallNs = 0 }},
		{"negative evals", func(a *Artifact) { a.Specs[0].Reps[0].Evaluations = -1 }},
		{"hit rate above one", func(a *Artifact) { a.Specs[0].Reps[0].CacheHitRate = 1.5 }},
		{"negative phase", func(a *Artifact) { a.Specs[0].Reps[0].Phases.DVS = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := sample(100)
			tc.mutate(a)
			if err := a.Validate(); err == nil {
				t.Fatalf("%s passed validation", tc.name)
			}
		})
	}
	if err := sample(100, 90).Validate(); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
}

func TestArtifactName(t *testing.T) {
	if got := ArtifactName("abc123abc123"); got != "BENCH_abc123abc123.json" {
		t.Fatalf("ArtifactName = %q", got)
	}
	if got := ArtifactName(""); got != "BENCH_unknown.json" {
		t.Fatalf("ArtifactName(\"\") = %q", got)
	}
}

func TestGitCommit(t *testing.T) {
	dir := t.TempDir()
	gitDir := filepath.Join(dir, ".git")
	sub := filepath.Join(dir, "internal", "perf")
	if err := os.MkdirAll(filepath.Join(gitDir, "refs", "heads"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	hash := "0123456789abcdef0123456789abcdef01234567"

	// Loose ref, resolved from a subdirectory.
	os.WriteFile(filepath.Join(gitDir, "HEAD"), []byte("ref: refs/heads/main\n"), 0o644)
	os.WriteFile(filepath.Join(gitDir, "refs", "heads", "main"), []byte(hash+"\n"), 0o644)
	got, err := GitCommit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if got != hash[:12] {
		t.Fatalf("loose ref: got %q, want %q", got, hash[:12])
	}

	// Packed ref.
	os.Remove(filepath.Join(gitDir, "refs", "heads", "main"))
	os.WriteFile(filepath.Join(gitDir, "packed-refs"),
		[]byte("# pack-refs with: peeled fully-peeled sorted\n"+hash+" refs/heads/main\n"), 0o644)
	got, err = GitCommit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != hash[:12] {
		t.Fatalf("packed ref: got %q, want %q", got, hash[:12])
	}

	// Detached HEAD.
	os.WriteFile(filepath.Join(gitDir, "HEAD"), []byte(hash+"\n"), 0o644)
	got, err = GitCommit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != hash[:12] {
		t.Fatalf("detached: got %q, want %q", got, hash[:12])
	}

	// Malformed hash.
	os.WriteFile(filepath.Join(gitDir, "HEAD"), []byte("not-a-hash\n"), 0o644)
	if _, err := GitCommit(dir); err == nil {
		t.Fatal("malformed HEAD accepted")
	}
}

func TestDiffIdentityIsClean(t *testing.T) {
	a := sample(100, 102, 98)
	deltas, warnings := Diff(a, a, DefaultThresholds())
	if len(warnings) != 0 {
		t.Fatalf("self-diff produced warnings: %v", warnings)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("self-diff regressed: %+v", regs)
	}
	for _, d := range deltas {
		if d.Improved {
			t.Fatalf("self-diff improved %s/%s", d.Spec, d.Metric)
		}
	}
}

func TestDiffFlagsSyntheticRegression(t *testing.T) {
	old := sample(100, 101, 99)
	// 50% slower with matching throughput drop: well past the 10%
	// thresholds and far outside the tight MAD of both runs.
	new_ := sample(150, 151, 149)
	deltas, _ := Diff(old, new_, DefaultThresholds())
	var wall, evals *Delta
	for i := range deltas {
		switch deltas[i].Metric {
		case "wall":
			wall = &deltas[i]
		case "evals_per_sec":
			evals = &deltas[i]
		}
	}
	if wall == nil || !wall.Regressed {
		t.Fatalf("50%% wall slowdown not flagged: %+v", wall)
	}
	if evals == nil || !evals.Regressed {
		t.Fatalf("evals/sec drop not flagged: %+v", evals)
	}
	if len(Regressions(deltas)) == 0 {
		t.Fatal("Regressions() empty for a regressing diff")
	}
}

func TestDiffFlagsImprovement(t *testing.T) {
	old := sample(150, 151, 149)
	new_ := sample(100, 101, 99)
	deltas, _ := Diff(old, new_, DefaultThresholds())
	for _, d := range deltas {
		if d.Metric == "wall" {
			if !d.Improved || d.Regressed {
				t.Fatalf("33%% speedup not an improvement: %+v", d)
			}
			return
		}
	}
	t.Fatal("no wall delta")
}

func TestDiffNoiseGateSuppressesScatter(t *testing.T) {
	// Medians differ by 12% (past the 10% threshold) but both runs
	// scatter wildly; the MAD gate must hold the verdict back.
	old := sample(100, 140, 60)
	new_ := sample(112, 160, 70)
	deltas, _ := Diff(old, new_, DefaultThresholds())
	for _, d := range deltas {
		if d.Metric == "wall" && (d.Regressed || d.Improved) {
			t.Fatalf("noisy 12%% delta certified: %+v (noise %g)", d, d.Noise)
		}
	}
}

func TestDiffMinPhaseFloor(t *testing.T) {
	old := sample(100)
	new_ := sample(100)
	// A 10x blowup of a 10µs phase stays under the 1ms floor.
	old.Specs[0].Reps[0].Phases.DVS = 10_000
	new_.Specs[0].Reps[0].Phases.DVS = 100_000
	deltas, _ := Diff(old, new_, DefaultThresholds())
	for _, d := range deltas {
		if d.Metric == "phase.dvs" && d.Regressed {
			t.Fatalf("sub-floor phase regressed: %+v", d)
		}
	}
	// The same ratio above the floor must regress.
	old.Specs[0].Reps[0].Phases.DVS = 10e6
	new_.Specs[0].Reps[0].Phases.DVS = 100e6
	deltas, _ = Diff(old, new_, DefaultThresholds())
	found := false
	for _, d := range deltas {
		if d.Metric == "phase.dvs" {
			found = d.Regressed
		}
	}
	if !found {
		t.Fatal("10x phase blowup above the floor not flagged")
	}
}

func TestDiffCacheHitRateIsAbsolute(t *testing.T) {
	old := sample(100, 100, 100)
	new_ := sample(100, 100, 100)
	for i := range new_.Specs[0].Reps {
		new_.Specs[0].Reps[i].CacheHitRate = 0.30 // down from 0.50
	}
	deltas, _ := Diff(old, new_, DefaultThresholds())
	found := false
	for _, d := range deltas {
		if d.Metric == "cache_hit_rate" {
			found = d.Regressed
		}
	}
	if !found {
		t.Fatal("20-point cache hit rate drop not flagged")
	}
	// An increase is an improvement, never a regression.
	for i := range new_.Specs[0].Reps {
		new_.Specs[0].Reps[i].CacheHitRate = 0.70
	}
	deltas, _ = Diff(old, new_, DefaultThresholds())
	for _, d := range deltas {
		if d.Metric == "cache_hit_rate" && d.Regressed {
			t.Fatalf("hit rate increase regressed: %+v", d)
		}
	}
}

func TestDiffWarnsOnMismatch(t *testing.T) {
	old := sample(100)
	new_ := sample(100)
	new_.Config.Reps = 7
	new_.Specs[0].Name = "mul2"
	deltas, warnings := Diff(old, new_, DefaultThresholds())
	if len(deltas) != 0 {
		t.Fatalf("disjoint specs produced deltas: %+v", deltas)
	}
	var cfg, onlyNew, onlyOld bool
	for _, w := range warnings {
		cfg = cfg || strings.Contains(w, "configs differ")
		onlyNew = onlyNew || strings.Contains(w, "only in new")
		onlyOld = onlyOld || strings.Contains(w, "only in old")
	}
	if !cfg || !onlyNew || !onlyOld {
		t.Fatalf("missing warnings: %v", warnings)
	}
}

func TestMedianMAD(t *testing.T) {
	med, mad := medianMAD([]float64{1, 2, 3, 4, 100})
	if med != 3 {
		t.Fatalf("median = %g, want 3", med)
	}
	if mad != 1 {
		t.Fatalf("MAD = %g, want 1", mad)
	}
	med, mad = medianMAD([]float64{10, 20})
	if med != 15 || mad != 5 {
		t.Fatalf("even-length median/MAD = %g/%g, want 15/5", med, mad)
	}
	med, mad = medianMAD(nil)
	if med != 0 || mad != 0 {
		t.Fatalf("empty median/MAD = %g/%g", med, mad)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	d := compare("s", "allocs", []float64{0, 0, 0}, []float64{10, 10, 10}, 0.1, 3, increaseBad, 0)
	if d.Regressed || d.Improved {
		t.Fatalf("zero-baseline delta certified: %+v", d)
	}
	if !math.IsNaN(d.Rel) {
		t.Fatalf("zero-baseline Rel = %g, want NaN", d.Rel)
	}
}

func TestFormatDeltas(t *testing.T) {
	old := sample(100, 101, 99)
	new_ := sample(150, 151, 149)
	deltas, warnings := Diff(old, new_, DefaultThresholds())
	var buf bytes.Buffer
	FormatDeltas(&buf, deltas, warnings, false)
	out := buf.String()
	if !strings.Contains(out, "REGRESSED") {
		t.Fatalf("table lacks REGRESSED verdict:\n%s", out)
	}
	if !strings.Contains(out, "wall") || !strings.Contains(out, "mul1") {
		t.Fatalf("table lacks headline row:\n%s", out)
	}
}

func TestResolveSpecs(t *testing.T) {
	specs, err := ResolveSpecs([]string{"mul3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "mul3" || specs[0].Sys == nil {
		t.Fatalf("ResolveSpecs(mul3) = %+v", specs)
	}
	specs, err = ResolveSpecs([]string{"muls"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 12 {
		t.Fatalf("muls expanded to %d specs, want 12", len(specs))
	}
	if _, err := ResolveSpecs([]string{"/no/such/spec.file"}); err == nil {
		t.Fatal("missing spec file accepted")
	}
	if _, err := ResolveSpecs(nil); err == nil {
		t.Fatal("empty spec list accepted")
	}
}

// TestRunEndToEnd measures one tiny spec for real and checks the artifact
// carries live numbers in every field class.
func TestRunEndToEnd(t *testing.T) {
	specs, err := ResolveSpecs([]string{"mul1"})
	if err != nil {
		t.Fatal(err)
	}
	art, err := Run(specs, RunOptions{
		Reps:    2,
		Warmups: 0,
		Seed:    1,
		GA:      ga.Config{PopSize: 8, MaxGenerations: 6, Stagnation: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := art.Validate(); err != nil {
		t.Fatal(err)
	}
	sr := art.Specs[0]
	if sr.Modes == 0 || sr.Tasks == 0 {
		t.Fatalf("spec metadata empty: %+v", sr)
	}
	for i, r := range sr.Reps {
		if r.Evaluations == 0 || r.Generations == 0 {
			t.Fatalf("rep %d has no GA progress: %+v", i, r)
		}
		if r.EvalsPerSec <= 0 {
			t.Fatalf("rep %d evals/sec = %g", i, r.EvalsPerSec)
		}
		if r.Phases.ListSched == 0 {
			t.Fatalf("rep %d has no list-scheduling time: %+v", i, r.Phases)
		}
		if r.Allocs == 0 {
			t.Fatalf("rep %d recorded no allocations", i)
		}
	}
	if sr.Reps[0].Seed+7919 != sr.Reps[1].Seed {
		t.Fatalf("seed protocol broken: %d, %d", sr.Reps[0].Seed, sr.Reps[1].Seed)
	}
	// Artifact file round-trips through the disk format.
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Specs[0].Reps[0].Evaluations != sr.Reps[0].Evaluations {
		t.Fatal("disk round trip changed evaluation counts")
	}
}
