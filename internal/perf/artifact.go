// Package perf is the performance-trajectory subsystem behind cmd/mmperf:
// it executes the benchmark suite under instrumentation and emits a
// canonical BENCH_<commit>.json artifact (per-spec wall time, evals/sec,
// per-phase breakdown, fitness-cache hit rate, allocations, environment
// fingerprint), and diffs two such artifacts with robust statistics
// (median + MAD over repetitions) so CI can gate on performance
// regressions. Every speedup PR cites a trajectory point produced here;
// see docs/PERF.md for the schema, the diff rules and the workflow.
//
// The package is standard-library-only plus the repo's own engine layers
// (bench for the spec suite, synth for the runs, obs for phase timings).
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// Schema is the artifact schema identifier; readers reject anything else.
const Schema = "mmperf/v1"

// Artifact is one point of the repo's performance trajectory: the measured
// cost of the benchmark suite at one commit on one machine.
type Artifact struct {
	// Schema pins the document format ("mmperf/v1").
	Schema string `json:"schema"`
	// Env fingerprints where and when the measurement ran.
	Env Env `json:"env"`
	// Config records the run parameters; diffs warn when they disagree.
	Config RunConfig `json:"config"`
	// Specs holds one entry per measured specification.
	Specs []SpecResult `json:"specs"`
}

// Env is the environment fingerprint of one artifact. Numbers are only
// comparable between artifacts measured on like environments; the diff
// prints both fingerprints so a cross-machine comparison is visible.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Commit is the VCS revision the measured tree was at ("unknown" when
	// not determinable).
	Commit string `json:"commit"`
	// Timestamp is the measurement time, RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
}

// RunConfig records the measurement parameters.
type RunConfig struct {
	Reps       int   `json:"reps"`
	Warmups    int   `json:"warmups"`
	Seed       int64 `json:"seed"`
	DVS        bool  `json:"dvs,omitempty"`
	PopSize    int   `json:"pop_size"`
	MaxGens    int   `json:"max_generations"`
	Stagnation int   `json:"stagnation"`
}

// PhaseNs is the per-phase wall-time breakdown of one repetition in
// nanoseconds (the obs.Timings phases). CommMap is the communication-
// mapping share nested inside ListSched.
type PhaseNs struct {
	Mobility  int64 `json:"mobility_ns"`
	CoreAlloc int64 `json:"core_alloc_ns"`
	ListSched int64 `json:"list_sched_ns"`
	CommMap   int64 `json:"comm_map_ns"`
	DVS       int64 `json:"dvs_ns,omitempty"`
	Refine    int64 `json:"refine_ns,omitempty"`
}

// Rep is one measured synthesis repetition.
type Rep struct {
	// Seed is the synthesis seed of this repetition.
	Seed int64 `json:"seed"`
	// WallNs is the end-to-end synthesis wall time.
	WallNs int64 `json:"wall_ns"`
	// Evaluations is the number of fitness evaluations the engine made
	// (cache hits included); EvalsPerSec = Evaluations / wall seconds is
	// the headline throughput number.
	Evaluations int     `json:"evaluations"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	Generations int     `json:"generations"`
	// CacheHitRate is the fitness-cache hit rate over the run, in [0,1].
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Allocs and AllocBytes are the heap allocation count and byte volume
	// of the repetition (runtime.MemStats deltas across the run).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// Phases is the instrumented phase breakdown.
	Phases PhaseNs `json:"phases"`
}

// SpecResult holds the repetitions of one specification.
type SpecResult struct {
	Name  string `json:"name"`
	Modes int    `json:"modes"`
	Tasks int    `json:"tasks"`
	Reps  []Rep  `json:"reps"`
}

// Validate structurally checks an artifact: the schema identifier, at
// least one spec with at least one rep each, unique spec names, and
// non-negative measurements.
func (a *Artifact) Validate() error {
	if a.Schema != Schema {
		return fmt.Errorf("perf: artifact schema %q, want %q", a.Schema, Schema)
	}
	if len(a.Specs) == 0 {
		return fmt.Errorf("perf: artifact has no specs")
	}
	seen := make(map[string]bool, len(a.Specs))
	for _, s := range a.Specs {
		if s.Name == "" {
			return fmt.Errorf("perf: artifact has a spec without a name")
		}
		if seen[s.Name] {
			return fmt.Errorf("perf: artifact lists spec %q twice", s.Name)
		}
		seen[s.Name] = true
		if len(s.Reps) == 0 {
			return fmt.Errorf("perf: spec %q has no repetitions", s.Name)
		}
		for i, r := range s.Reps {
			if r.WallNs <= 0 {
				return fmt.Errorf("perf: spec %q rep %d has non-positive wall time %d", s.Name, i, r.WallNs)
			}
			if r.Evaluations < 0 || r.Generations < 0 {
				return fmt.Errorf("perf: spec %q rep %d has negative progress counters", s.Name, i)
			}
			if r.CacheHitRate < 0 || r.CacheHitRate > 1 {
				return fmt.Errorf("perf: spec %q rep %d cache hit rate %g outside [0,1]", s.Name, i, r.CacheHitRate)
			}
			p := r.Phases
			if p.Mobility < 0 || p.CoreAlloc < 0 || p.ListSched < 0 ||
				p.CommMap < 0 || p.DVS < 0 || p.Refine < 0 {
				return fmt.Errorf("perf: spec %q rep %d has a negative phase duration", s.Name, i)
			}
		}
	}
	return nil
}

// Encode writes the artifact as indented JSON.
func (a *Artifact) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteFile writes the artifact to path (0644, truncating).
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perf: artifact: %w", err)
	}
	err = a.Encode(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("perf: artifact %s: %w", path, err)
	}
	return nil
}

// Read decodes and validates one artifact document. Unknown fields are
// schema violations, so the format is pinned.
func Read(r io.Reader) (*Artifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	a := &Artifact{}
	if err := dec.Decode(a); err != nil {
		return nil, fmt.Errorf("perf: artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// ReadFile reads and validates the artifact at path.
func ReadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	defer f.Close()
	a, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return a, nil
}

// ArtifactName returns the canonical artifact file name for a commit.
func ArtifactName(commit string) string {
	if commit == "" {
		commit = "unknown"
	}
	return "BENCH_" + commit + ".json"
}

// CurrentEnv fingerprints the running process. The commit is resolved from
// the git metadata under dir (see GitCommit); pass "" to search from the
// working directory.
func CurrentEnv(dir string) Env {
	commit, err := GitCommit(dir)
	if err != nil {
		commit = "unknown"
	}
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Commit:     commit,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

// GitCommit resolves the current commit hash (short, 12 hex digits) by
// reading the .git metadata directly — no git binary required. It walks
// from dir (or the working directory when empty) upwards to the repository
// root, follows HEAD through one level of symbolic ref, and falls back to
// packed-refs.
func GitCommit(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		gitDir := filepath.Join(abs, ".git")
		if fi, err := os.Stat(gitDir); err == nil && fi.IsDir() {
			return readGitHead(gitDir)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("perf: no .git directory above %s", dir)
		}
		abs = parent
	}
}

func readGitHead(gitDir string) (string, error) {
	head, err := os.ReadFile(filepath.Join(gitDir, "HEAD"))
	if err != nil {
		return "", err
	}
	ref := strings.TrimSpace(string(head))
	if hash, ok := strings.CutPrefix(ref, "ref: "); ok {
		ref = strings.TrimSpace(hash)
		if data, err := os.ReadFile(filepath.Join(gitDir, filepath.FromSlash(ref))); err == nil {
			return shortHash(strings.TrimSpace(string(data)))
		}
		// Packed ref: scan .git/packed-refs for the ref name.
		packed, err := os.ReadFile(filepath.Join(gitDir, "packed-refs"))
		if err != nil {
			return "", fmt.Errorf("perf: unresolvable ref %s", ref)
		}
		for _, line := range strings.Split(string(packed), "\n") {
			hash, name, ok := strings.Cut(strings.TrimSpace(line), " ")
			if ok && name == ref {
				return shortHash(hash)
			}
		}
		return "", fmt.Errorf("perf: ref %s not in packed-refs", ref)
	}
	return shortHash(ref)
}

func shortHash(h string) (string, error) {
	if len(h) < 12 {
		return "", fmt.Errorf("perf: malformed commit hash %q", h)
	}
	for _, c := range h {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", fmt.Errorf("perf: malformed commit hash %q", h)
		}
	}
	return h[:12], nil
}
