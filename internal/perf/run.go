package perf

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"momosyn/internal/bench"
	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/specio"
	"momosyn/internal/synth"
)

// Spec is one named specification to measure.
type Spec struct {
	Name string
	Sys  *model.System
}

// ResolveSpecs turns the -specs argument of `mmperf run` into systems:
// "muls" expands to the whole mul1–mul12 suite, "mulN" to one generated
// benchmark, "smartphone" to the real-life example, and anything else is
// read as a specification file path.
func ResolveSpecs(names []string) ([]Spec, error) {
	var out []Spec
	for _, name := range names {
		switch {
		case name == "muls":
			for i := 1; i <= bench.NumMuls; i++ {
				sys, err := bench.MulSystem(i)
				if err != nil {
					return nil, err
				}
				out = append(out, Spec{Name: fmt.Sprintf("mul%d", i), Sys: sys})
			}
		case name == "smartphone":
			sys, err := bench.SmartPhone()
			if err != nil {
				return nil, err
			}
			out = append(out, Spec{Name: name, Sys: sys})
		case len(name) > 3 && name[:3] == "mul" && name[3] >= '0' && name[3] <= '9':
			var i int
			if _, err := fmt.Sscanf(name, "mul%d", &i); err != nil {
				return nil, fmt.Errorf("perf: bad mul spec %q", name)
			}
			sys, err := bench.MulSystem(i)
			if err != nil {
				return nil, err
			}
			out = append(out, Spec{Name: name, Sys: sys})
		default:
			f, err := os.Open(name)
			if err != nil {
				return nil, fmt.Errorf("perf: spec: %w", err)
			}
			sys, err := specio.Read(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("perf: spec %s: %w", name, err)
			}
			out = append(out, Spec{Name: name, Sys: sys})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perf: no specs to measure")
	}
	return out, nil
}

// RunOptions tunes a trajectory measurement.
type RunOptions struct {
	// Reps is the number of measured repetitions per spec (default 3);
	// the diff's robust statistics live off these.
	Reps int
	// Warmups is the number of unmeasured warm-up runs per spec (default
	// 1), absorbing first-touch effects (page faults, branch predictors,
	// lazily built tables).
	Warmups int
	// Seed is the base seed; repetition r of every spec runs at
	// Seed + r*7919, matching the bench harness protocol.
	Seed int64
	// DVS enables voltage scaling during the measured syntheses.
	DVS bool
	// GA tunes the engine (zero value: the bench harness defaults).
	GA ga.Config
	// Context interrupts the measurement between repetitions.
	Context context.Context
	// Progress, when non-nil, receives a one-line heartbeat per finished
	// spec.
	Progress io.Writer
	// Dir anchors the git-commit lookup for the environment fingerprint
	// ("" = working directory).
	Dir string
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.Warmups < 0 {
		o.Warmups = 0
	}
	if o.GA.PopSize == 0 && o.GA.MaxGenerations == 0 {
		o.GA = bench.DefaultGA()
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return o
}

// Run measures every spec Reps times (after Warmups unmeasured runs) and
// assembles the trajectory artifact. Runs are strictly sequential — the
// point is stable wall-clock numbers, not throughput — and every
// repetition is instrumented with a private obs run so the per-phase
// breakdown lands in the artifact.
func Run(specs []Spec, opt RunOptions) (*Artifact, error) {
	opt = opt.withDefaults()
	art := &Artifact{
		Schema: Schema,
		Env:    CurrentEnv(opt.Dir),
		Config: RunConfig{
			Reps: opt.Reps, Warmups: opt.Warmups, Seed: opt.Seed, DVS: opt.DVS,
			PopSize: opt.GA.PopSize, MaxGens: opt.GA.MaxGenerations, Stagnation: opt.GA.Stagnation,
		},
	}
	for _, sp := range specs {
		sr := SpecResult{Name: sp.Name, Modes: len(sp.Sys.App.Modes)}
		for _, m := range sp.Sys.App.Modes {
			sr.Tasks += len(m.Graph.Tasks)
		}
		started := time.Now()
		for r := 0; r < opt.Warmups+opt.Reps; r++ {
			if err := opt.Context.Err(); err != nil {
				return nil, fmt.Errorf("perf: interrupted: %w", context.Cause(opt.Context))
			}
			seed := opt.Seed + int64(r)*7919
			rep, err := measureOnce(sp.Sys, seed, opt)
			if err != nil {
				return nil, fmt.Errorf("perf: %s (seed %d): %w", sp.Name, seed, err)
			}
			if r >= opt.Warmups {
				sr.Reps = append(sr.Reps, rep)
			}
		}
		art.Specs = append(art.Specs, sr)
		if opt.Progress != nil {
			med := medianInt64(wallTimes(sr.Reps))
			fmt.Fprintf(opt.Progress, "perf: %-12s %d reps in %s, median wall %s\n",
				sp.Name, len(sr.Reps), time.Since(started).Round(time.Millisecond),
				time.Duration(med).Round(time.Millisecond))
		}
	}
	return art, art.Validate()
}

// measureOnce runs one instrumented synthesis and extracts the sample.
func measureOnce(sys *model.System, seed int64, opt RunOptions) (Rep, error) {
	// A metrics-only obs run: active (so synth populates Result.Timings)
	// but with no trace sink, so instrumentation cost stays at clock reads.
	run := obs.NewRun(obs.NewRegistry(), nil)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	started := time.Now()
	res, err := synth.Synthesize(sys, synth.Options{
		UseDVS:  opt.DVS,
		GA:      opt.GA,
		Seed:    seed,
		Context: opt.Context,
		Obs:     run,
	})
	wall := time.Since(started)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Rep{}, err
	}
	if res.Partial {
		return Rep{}, fmt.Errorf("interrupted mid-run (%s)", res.GA.Reason)
	}
	rep := Rep{
		Seed:         seed,
		WallNs:       wall.Nanoseconds(),
		Evaluations:  res.GA.Evaluations,
		Generations:  res.GA.Generations,
		CacheHitRate: res.Cache.HitRate(),
		Allocs:       after.Mallocs - before.Mallocs,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		Phases: PhaseNs{
			Mobility:  res.Timings.Mobility.Nanoseconds(),
			CoreAlloc: res.Timings.CoreAlloc.Nanoseconds(),
			ListSched: res.Timings.ListSched.Nanoseconds(),
			CommMap:   res.Timings.CommMap.Nanoseconds(),
			DVS:       res.Timings.DVS.Nanoseconds(),
			Refine:    res.Timings.Refine.Nanoseconds(),
		},
	}
	if s := wall.Seconds(); s > 0 {
		rep.EvalsPerSec = float64(res.GA.Evaluations) / s
	}
	if rep.WallNs <= 0 {
		rep.WallNs = 1 // clock granularity floor; Validate requires > 0
	}
	return rep, nil
}

func wallTimes(reps []Rep) []int64 {
	out := make([]int64, len(reps))
	for i, r := range reps {
		out[i] = r.WallNs
	}
	return out
}
