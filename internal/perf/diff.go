package perf

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Thresholds configures when a metric delta counts as a regression. All
// relative thresholds are fractions (0.10 = 10%). The MAD noise gate
// suppresses deltas smaller than MADK times the larger of the two runs'
// median absolute deviations — a run whose repetitions scatter by 8%
// cannot certify a 5% regression.
type Thresholds struct {
	// Wall is the relative threshold for per-spec median wall time.
	Wall float64
	// Phase is the relative threshold for per-phase median times.
	Phase float64
	// Evals is the relative threshold for median evals/sec (a decrease
	// is the regression direction).
	Evals float64
	// Cache is the absolute threshold for the median cache hit rate
	// (a drop of more than this many percentage points regresses).
	Cache float64
	// Allocs is the relative threshold for median allocation counts.
	Allocs float64
	// MADK scales the noise gate (|delta| must exceed MADK * max MAD).
	MADK float64
	// MinPhaseNs ignores phases whose medians are both below this floor;
	// sub-millisecond phases are clock noise, not signal.
	MinPhaseNs int64
}

// DefaultThresholds is the CI gate configuration.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Wall:       0.10,
		Phase:      0.15,
		Evals:      0.10,
		Cache:      0.05,
		Allocs:     0.10,
		MADK:       3,
		MinPhaseNs: 1e6,
	}
}

// Delta is one compared metric of one spec.
type Delta struct {
	// Spec is the specification name; Metric the compared metric
	// ("wall", "evals_per_sec", "cache_hit_rate", "allocs", or
	// "phase.<name>").
	Spec   string
	Metric string
	// Old and New are the median values (ns for times, rate/counts
	// otherwise).
	Old float64
	New float64
	// Rel is the relative change (New-Old)/Old; NaN when Old is zero.
	Rel float64
	// Noise is the MAD-based noise magnitude the delta was gated on.
	Noise float64
	// Regressed marks deltas past threshold in the bad direction.
	Regressed bool
	// Improved marks deltas past threshold in the good direction.
	Improved bool
}

// Diff compares two artifacts spec by spec and reports per-metric deltas.
// Specs present in only one artifact are noted in warnings but do not
// regress; so do differing run configurations or environments.
func Diff(old, new_ *Artifact, th Thresholds) (deltas []Delta, warnings []string) {
	if old.Config != new_.Config {
		warnings = append(warnings, fmt.Sprintf("run configs differ (old %+v, new %+v)", old.Config, new_.Config))
	}
	if old.Env.GoVersion != new_.Env.GoVersion || old.Env.GOOS != new_.Env.GOOS ||
		old.Env.GOARCH != new_.Env.GOARCH || old.Env.NumCPU != new_.Env.NumCPU {
		warnings = append(warnings, fmt.Sprintf("environments differ (old %s %s/%s %d cpu, new %s %s/%s %d cpu)",
			old.Env.GoVersion, old.Env.GOOS, old.Env.GOARCH, old.Env.NumCPU,
			new_.Env.GoVersion, new_.Env.GOOS, new_.Env.GOARCH, new_.Env.NumCPU))
	}
	oldSpecs := make(map[string]*SpecResult, len(old.Specs))
	for i := range old.Specs {
		oldSpecs[old.Specs[i].Name] = &old.Specs[i]
	}
	matched := make(map[string]bool)
	for i := range new_.Specs {
		ns := &new_.Specs[i]
		os_, ok := oldSpecs[ns.Name]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("spec %s only in new artifact", ns.Name))
			continue
		}
		matched[ns.Name] = true
		deltas = append(deltas, diffSpec(os_, ns, th)...)
	}
	for _, s := range old.Specs {
		if !matched[s.Name] {
			warnings = append(warnings, fmt.Sprintf("spec %s only in old artifact", s.Name))
		}
	}
	return deltas, warnings
}

// direction of a metric: +1 when an increase is bad (times, allocs),
// -1 when a decrease is bad (throughput, hit rate).
type direction int

const (
	increaseBad direction = +1
	decreaseBad direction = -1
)

func diffSpec(old, new_ *SpecResult, th Thresholds) []Delta {
	var out []Delta
	cmp := func(metric string, ov, nv []float64, relTh float64, dir direction, absFloor float64) {
		d := compare(old.Name, metric, ov, nv, relTh, th.MADK, dir, absFloor)
		out = append(out, d)
	}
	cmp("wall", repField(old.Reps, func(r Rep) float64 { return float64(r.WallNs) }),
		repField(new_.Reps, func(r Rep) float64 { return float64(r.WallNs) }), th.Wall, increaseBad, 0)
	cmp("evals_per_sec", repField(old.Reps, func(r Rep) float64 { return r.EvalsPerSec }),
		repField(new_.Reps, func(r Rep) float64 { return r.EvalsPerSec }), th.Evals, decreaseBad, 0)
	cmp("allocs", repField(old.Reps, func(r Rep) float64 { return float64(r.Allocs) }),
		repField(new_.Reps, func(r Rep) float64 { return float64(r.Allocs) }), th.Allocs, increaseBad, 0)

	// Cache hit rate gates on absolute percentage-point movement: relative
	// deltas explode when the baseline rate is near zero.
	oc := repField(old.Reps, func(r Rep) float64 { return r.CacheHitRate })
	nc := repField(new_.Reps, func(r Rep) float64 { return r.CacheHitRate })
	d := compareAbs(old.Name, "cache_hit_rate", oc, nc, th.Cache, th.MADK)
	out = append(out, d)

	phases := []struct {
		name string
		get  func(PhaseNs) int64
	}{
		{"mobility", func(p PhaseNs) int64 { return p.Mobility }},
		{"core_alloc", func(p PhaseNs) int64 { return p.CoreAlloc }},
		{"list_sched", func(p PhaseNs) int64 { return p.ListSched }},
		{"comm_map", func(p PhaseNs) int64 { return p.CommMap }},
		{"dvs", func(p PhaseNs) int64 { return p.DVS }},
		{"refine", func(p PhaseNs) int64 { return p.Refine }},
	}
	for _, ph := range phases {
		ov := repField(old.Reps, func(r Rep) float64 { return float64(ph.get(r.Phases)) })
		nv := repField(new_.Reps, func(r Rep) float64 { return float64(ph.get(r.Phases)) })
		cmp("phase."+ph.name, ov, nv, th.Phase, increaseBad, float64(th.MinPhaseNs))
	}
	return out
}

// compare builds the delta for one relative-thresholded metric. absFloor,
// when positive, suppresses the verdict while both medians sit below it.
func compare(spec, metric string, ov, nv []float64, relTh, madK float64, dir direction, absFloor float64) Delta {
	oMed, oMAD := medianMAD(ov)
	nMed, nMAD := medianMAD(nv)
	d := Delta{Spec: spec, Metric: metric, Old: oMed, New: nMed, Noise: madK * math.Max(oMAD, nMAD)}
	if oMed == 0 {
		d.Rel = math.NaN()
		return d // no baseline: nothing to certify either way
	}
	d.Rel = (nMed - oMed) / oMed
	if absFloor > 0 && oMed < absFloor && nMed < absFloor {
		return d
	}
	diff := nMed - oMed
	if math.Abs(diff) <= d.Noise {
		return d // inside the noise gate
	}
	bad := float64(dir) * d.Rel
	if bad > relTh {
		d.Regressed = true
	} else if bad < -relTh {
		d.Improved = true
	}
	return d
}

// compareAbs gates on absolute movement of the medians (for rates in [0,1]).
func compareAbs(spec, metric string, ov, nv []float64, absTh, madK float64) Delta {
	oMed, oMAD := medianMAD(ov)
	nMed, nMAD := medianMAD(nv)
	d := Delta{Spec: spec, Metric: metric, Old: oMed, New: nMed, Noise: madK * math.Max(oMAD, nMAD)}
	if oMed != 0 {
		d.Rel = (nMed - oMed) / oMed
	} else {
		d.Rel = math.NaN()
	}
	diff := nMed - oMed
	if math.Abs(diff) <= d.Noise {
		return d
	}
	if diff < -absTh {
		d.Regressed = true
	} else if diff > absTh {
		d.Improved = true
	}
	return d
}

// Regressions filters the deltas down to certified regressions.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// FormatDeltas renders the delta table. verbose includes unchanged rows;
// otherwise only regressions, improvements, and the headline wall /
// evals_per_sec rows per spec appear.
func FormatDeltas(w io.Writer, deltas []Delta, warnings []string, verbose bool) {
	for _, warn := range warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SPEC\tMETRIC\tOLD\tNEW\tDELTA\tVERDICT")
	for _, d := range deltas {
		headline := d.Metric == "wall" || d.Metric == "evals_per_sec"
		if !verbose && !d.Regressed && !d.Improved && !headline {
			continue
		}
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		} else if d.Improved {
			verdict = "improved"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			d.Spec, d.Metric, formatValue(d.Metric, d.Old), formatValue(d.Metric, d.New),
			formatRel(d.Rel), verdict)
	}
	tw.Flush()
}

func formatValue(metric string, v float64) string {
	switch {
	case metric == "wall" || strings.HasPrefix(metric, "phase."):
		return formatNs(v)
	case metric == "cache_hit_rate":
		return fmt.Sprintf("%.1f%%", v*100)
	case metric == "evals_per_sec":
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func formatNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func formatRel(rel float64) string {
	if math.IsNaN(rel) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", rel*100)
}

// medianMAD returns the median and the median absolute deviation of vs.
// Both are 0 for an empty slice.
func medianMAD(vs []float64) (med, mad float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	med = median(vs)
	devs := make([]float64, len(vs))
	for i, v := range vs {
		devs[i] = math.Abs(v - med)
	}
	return med, median(devs)
}

// median returns the middle value (mean of the middle two for even n)
// without mutating vs.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func medianInt64(vs []int64) int64 {
	if len(vs) == 0 {
		return 0
	}
	fs := make([]float64, len(vs))
	for i, v := range vs {
		fs[i] = float64(v)
	}
	return int64(median(fs))
}

func repField(reps []Rep, get func(Rep) float64) []float64 {
	out := make([]float64, len(reps))
	for i, r := range reps {
		out[i] = get(r)
	}
	return out
}
