// Package gantt renders synthesised mode schedules as Gantt charts, either
// as plain text for terminals or as standalone SVG documents. Rows are
// resources (software processors, hardware core instances, communication
// links); bars are task executions and message transfers, annotated with
// the selected supply voltage on DVS components.
package gantt

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// Row is one resource lane of the chart.
type Row struct {
	Label string
	Bars  []Bar
}

// Bar is one activity on a lane.
type Bar struct {
	Label         string
	Start, Finish float64
	// Voltage is the selected supply voltage, or 0 when not applicable.
	Voltage float64
	// Comm marks message transfers (rendered differently from tasks).
	Comm bool
}

// Build assembles the chart rows of one mode's schedule: one lane per
// software PE, per used hardware core instance, and per communication
// link. Lanes appear in architecture order; core lanes are sorted by type
// then instance.
func Build(sys *model.System, modeID model.ModeID, sc *sched.Schedule) []Row {
	mode := sys.App.Mode(modeID)
	lanes := make(map[string][]Bar)
	var order []string
	add := func(key string, b Bar) {
		if _, ok := lanes[key]; !ok {
			order = append(order, key)
		}
		lanes[key] = append(lanes[key], b)
	}
	for ti := range sc.Tasks {
		slot := sc.Tasks[ti]
		pe := sys.Arch.PE(slot.PE)
		task := mode.Graph.Task(model.TaskID(ti))
		key := pe.Name
		if pe.Class.IsHardware() {
			key = fmt.Sprintf("%s/%s#%d", pe.Name, sys.Lib.Type(task.Type).Name, slot.Core)
		}
		volt := 0.0
		if pe.DVS && slot.VoltIdx >= 0 {
			volt = pe.Levels[slot.VoltIdx]
		}
		add(key, Bar{
			Label:   task.Name,
			Start:   slot.Start,
			Finish:  slot.Finish,
			Voltage: volt,
		})
	}
	for ei := range sc.Comms {
		cs := sc.Comms[ei]
		if !cs.Routed || cs.CL == model.NoCL || cs.Time <= 0 {
			continue
		}
		cl := sys.Arch.CL(cs.CL)
		e := mode.Graph.Edge(model.EdgeID(ei))
		add(cl.Name, Bar{
			Label:  fmt.Sprintf("%s>%s", mode.Graph.Task(e.Src).Name, mode.Graph.Task(e.Dst).Name),
			Start:  cs.Start,
			Finish: cs.Finish,
			Comm:   true,
		})
	}
	sort.Strings(order)
	rows := make([]Row, 0, len(order))
	for _, key := range order {
		bars := lanes[key]
		sort.Slice(bars, func(i, j int) bool { return bars[i].Start < bars[j].Start })
		rows = append(rows, Row{Label: key, Bars: bars})
	}
	return rows
}

// WriteText renders the chart with unicode block characters, one lane per
// line, scaled to the given terminal width.
func WriteText(w io.Writer, sys *model.System, modeID model.ModeID, sc *sched.Schedule, width int) error {
	if width < 20 {
		width = 80
	}
	mode := sys.App.Mode(modeID)
	rows := Build(sys, modeID, sc)
	span := mode.Period
	if sc.Makespan > span {
		span = sc.Makespan
	}
	if span <= 0 {
		span = 1
	}
	labelW := 10
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	chartW := width - labelW - 3
	if chartW < 10 {
		chartW = 10
	}
	if _, err := fmt.Fprintf(w, "mode %s: makespan %.3gms of period %.3gms\n",
		mode.Name, sc.Makespan*1e3, mode.Period*1e3); err != nil {
		return err
	}
	for _, r := range rows {
		line := make([]rune, chartW)
		for i := range line {
			line[i] = '.'
		}
		for _, b := range r.Bars {
			i0 := int(b.Start / span * float64(chartW))
			i1 := int(b.Finish / span * float64(chartW))
			if i1 <= i0 {
				i1 = i0 + 1
			}
			for i := i0; i < i1 && i < chartW; i++ {
				if b.Comm {
					line[i] = '~'
				} else {
					line[i] = '#'
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelW, r.Label, string(line)); err != nil {
			return err
		}
	}
	return nil
}

// SVG geometry constants.
const (
	svgRowH    = 26
	svgBarH    = 18
	svgLabelW  = 150
	svgChartW  = 900
	svgMarginT = 40
	svgMarginB = 20
)

// WriteSVG renders the chart as a standalone SVG document.
func WriteSVG(w io.Writer, sys *model.System, modeID model.ModeID, sc *sched.Schedule) error {
	mode := sys.App.Mode(modeID)
	rows := Build(sys, modeID, sc)
	span := mode.Period
	if sc.Makespan > span {
		span = sc.Makespan
	}
	if span <= 0 {
		span = 1
	}
	height := svgMarginT + len(rows)*svgRowH + svgMarginB
	width := svgLabelW + svgChartW + 20

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="10" y="20" font-size="14">mode %s — makespan %.3g ms / period %.3g ms</text>`+"\n",
		escape(mode.Name), sc.Makespan*1e3, mode.Period*1e3)

	x := func(t float64) float64 { return svgLabelW + t/span*svgChartW }

	// Period boundary.
	px := x(mode.Period)
	fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#d33" stroke-dasharray="4 3"/>`+"\n",
		px, svgMarginT-6, px, height-svgMarginB+6)

	for i, r := range rows {
		y := svgMarginT + i*svgRowH
		fmt.Fprintf(&sb, `<text x="10" y="%d">%s</text>`+"\n", y+svgBarH-4, escape(r.Label))
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			svgLabelW, y+svgRowH-3, svgLabelW+svgChartW, y+svgRowH-3)
		for _, b := range r.Bars {
			bx := x(b.Start)
			bw := x(b.Finish) - bx
			if bw < 1 {
				bw = 1
			}
			fill := "#4a90d9"
			if b.Comm {
				fill = "#9aa0a6"
			} else if b.Voltage > 0 {
				// Scaled tasks render greener the lower the voltage.
				fill = "#3cab5a"
			}
			title := fmt.Sprintf("%s [%.4g, %.4g] ms", b.Label, b.Start*1e3, b.Finish*1e3)
			if b.Voltage > 0 {
				title += fmt.Sprintf(" @ %.2g V", b.Voltage)
			}
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" rx="2"><title>%s</title></rect>`+"\n",
				bx, y, bw, svgBarH, fill, escape(title))
			if bw > 30 {
				fmt.Fprintf(&sb, `<text x="%.1f" y="%d" fill="#fff">%s</text>`+"\n",
					bx+3, y+svgBarH-5, escape(clip(b.Label, int(bw/7))))
			}
		}
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func clip(s string, n int) string {
	if n < 1 {
		n = 1
	}
	if len(s) <= n {
		return s
	}
	return s[:n]
}
