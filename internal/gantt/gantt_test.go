package gantt

import (
	"bytes"
	"strings"
	"testing"

	"momosyn/internal/bench"
	"momosyn/internal/dvs"
	"momosyn/internal/model"
	"momosyn/internal/sched"
	"momosyn/internal/synth"
)

// phoneSchedule returns the smart phone with a deterministic schedule of
// its gsm_rlc mode (mode 1), everything on the GPP.
func phoneSchedule(t *testing.T, useDVS bool) (*model.System, *sched.Schedule) {
	t.Helper()
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := synth.NewCodec(sys)
	if err != nil {
		t.Fatal(err)
	}
	mapping := codec.Decode(make([]int, codec.Len()))
	sc, err := sched.ListSchedule(sys, 1, mapping, sched.SingleCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if useDVS {
		dvs.Scale(sys, sc)
	}
	return sys, sc
}

func TestBuildRowsCoverAllActivities(t *testing.T) {
	sys, sc := phoneSchedule(t, false)
	rows := Build(sys, 1, sc)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	bars := 0
	for _, r := range rows {
		bars += len(r.Bars)
		// Bars on one lane must not overlap.
		for i := 1; i < len(r.Bars); i++ {
			if r.Bars[i].Start < r.Bars[i-1].Finish-1e-12 {
				t.Errorf("lane %s: overlapping bars %d/%d", r.Label, i-1, i)
			}
		}
	}
	comms := 0
	for ei := range sc.Comms {
		if sc.Comms[ei].Routed && sc.Comms[ei].CL != model.NoCL && sc.Comms[ei].Time > 0 {
			comms++
		}
	}
	if want := len(sc.Tasks) + comms; bars != want {
		t.Errorf("bars = %d, want %d (tasks %d + comms %d)", bars, want, len(sc.Tasks), comms)
	}
}

func TestBuildHardwareCoreLanes(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	// Map the two MP3 Huffman tasks of mode 2 onto ASIC1 (type HD has an
	// impl there) with two core instances.
	codec, err := synth.NewCodec(sys)
	if err != nil {
		t.Fatal(err)
	}
	mapping := codec.Decode(make([]int, codec.Len()))
	g := sys.App.Modes[2].Graph
	hd := sys.Lib.TypeByName("HD")
	asic1 := model.PEID(1)
	for ti := range g.Tasks {
		if g.Tasks[ti].Type == hd.ID {
			mapping[2][ti] = asic1
		}
	}
	sc, err := sched.ListSchedule(sys, 2, mapping, twoCores{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := Build(sys, 2, sc)
	lanes := map[string]bool{}
	for _, r := range rows {
		lanes[r.Label] = true
	}
	if !lanes["ASIC1/HD#0"] || !lanes["ASIC1/HD#1"] {
		t.Errorf("expected per-core lanes, got %v", lanes)
	}
}

type twoCores struct{}

func (twoCores) Instances(model.ModeID, model.PEID, model.TaskTypeID) int { return 2 }

func TestWriteTextShape(t *testing.T) {
	sys, sc := phoneSchedule(t, false)
	var buf bytes.Buffer
	if err := WriteText(&buf, sys, 1, sc, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mode gsm_rlc") {
		t.Errorf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatal("no lanes rendered")
	}
	// All lane lines share the same width.
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("ragged chart line: %q", l)
		}
	}
	if !strings.Contains(out, "#") {
		t.Error("no task bars rendered")
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	sys, sc := phoneSchedule(t, true)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, sys, 1, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a closed SVG document")
	}
	if strings.Count(out, "<rect") == 0 {
		t.Error("no bars in SVG")
	}
	// DVS run: at least one scaled (green) task expected given slack.
	if !strings.Contains(out, "#3cab5a") {
		t.Error("expected at least one voltage-scaled bar")
	}
	// All rect tags closed.
	if strings.Count(out, "<rect") != strings.Count(out, "</rect>") {
		t.Error("unbalanced rect elements")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("escape = %q", got)
	}
}

func TestClip(t *testing.T) {
	if got := clip("abcdef", 3); got != "abc" {
		t.Errorf("clip = %q", got)
	}
	if got := clip("ab", 5); got != "ab" {
		t.Errorf("clip = %q", got)
	}
	if got := clip("ab", 0); got != "a" {
		t.Errorf("clip floor = %q", got)
	}
}
