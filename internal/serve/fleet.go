package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"momosyn/internal/fleet"
	"momosyn/internal/obs"
	"momosyn/internal/runctl"
	"momosyn/internal/synth"
)

// Fleet mode. With Config.FleetDir set the server becomes one node of a
// shared-filesystem fleet: submissions publish jobs into the fleet
// directory instead of a private queue, a claim loop leases runnable jobs
// to the local worker pool, heartbeats renew the leases, and every persist
// of job state is fenced by the lease epoch so a node that died, hung or
// was partitioned can never clobber the state of a job another node
// reclaimed. See docs/FLEET.md for the protocol and its failure matrix.

// fleetManifestValid accepts a fleet manifest document for the given job.
func fleetManifestValid(job string) func([]byte) error {
	return func(data []byte) error {
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return err
		}
		if m.ID != job {
			return fmt.Errorf("manifest names job %q, want %q", m.ID, job)
		}
		if !m.State.valid() {
			return fmt.Errorf("unknown state %q", m.State)
		}
		return nil
	}
}

// fleetManifest renders the job's manifest for a fleet persist at the
// given epoch.
func (s *Server) fleetManifest(j *Job, snap jobSnapshot, epoch int) ([]byte, error) {
	m := manifest{
		ID:          j.ID,
		Request:     j.Request,
		System:      j.system,
		State:       snap.State,
		Error:       snap.Err,
		Created:     snap.Created,
		Started:     snap.Started,
		Finished:    snap.Finished,
		ResumedFrom: snap.ResumedFrom,
		Node:        s.cfg.NodeID,
		Epoch:       epoch,
		Cached:      snap.Cached,
	}
	m.Attempts, m.NotBefore = manifestRetry(snap)
	return json.MarshalIndent(&m, "", "  ")
}

// submitFleet publishes a new job into the fleet directory. The caller has
// already validated the request, resolved the spec inline and checked
// admission.
func (s *Server) submitFleet(req JobRequest, system string) (*Job, error) {
	id, err := s.fleetStore.NewJobID()
	if err != nil {
		return nil, err
	}
	j := &Job{ID: id, Request: req, system: system}
	j.state = StateQueued
	j.created = time.Now()
	j.node = s.cfg.NodeID
	spec, err := json.MarshalIndent(&req, "", "  ")
	if err != nil {
		return nil, err
	}
	man, err := s.fleetManifest(j, j.snapshot(), 0)
	if err != nil {
		return nil, err
	}
	if err := s.fleetStore.CreateJob(id, spec, man); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.jobsByState()
	s.mu.Unlock()
	return j, nil
}

// fleetLoop is the node's coordination loop: it refreshes the local view
// of the shared directory, advertises node liveness, claims runnable jobs
// for free worker slots and maintains the fleet gauges. It runs until the
// root context dies.
func (s *Server) fleetLoop(ctx context.Context) {
	defer func() {
		if p := recover(); p != nil {
			s.logf("serve: fleet loop crashed: %v", p)
		}
	}()
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		s.fleetTick(ctx)
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// fleetTick is one pass of the coordination loop.
func (s *Server) fleetTick(ctx context.Context) {
	if err := s.fleetStore.HeartbeatNode(); err != nil {
		s.logf("serve: fleet: node heartbeat: %v", err)
	}
	if err := s.syncFleet(); err != nil {
		s.logf("serve: fleet: sync: %v", err)
		s.fleetDegraded.Set(1)
		return
	}
	s.claimRunnable(ctx)
	s.updateFleetGauges()
}

// syncFleet reconciles the in-memory job table with the fleet directory:
// unknown jobs are adopted, and jobs this node is not itself holding are
// refreshed from their latest valid manifest.
func (s *Server) syncFleet() error {
	ids, err := s.fleetStore.Jobs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j == nil {
			j, err = s.adoptFleetJob(id)
			if err != nil {
				s.logf("serve: fleet: adopt %s: %v", id, err)
				continue
			}
			s.mu.Lock()
			if s.jobs[id] == nil {
				s.jobs[id] = j
				s.order = append(s.order, id)
			}
			s.mu.Unlock()
			continue
		}
		j.mu.Lock()
		local := j.lease != nil
		j.mu.Unlock()
		if !local {
			if err := s.refreshFleetJob(j, false); err != nil {
				s.logf("serve: fleet: refresh %s: %v", id, err)
			}
		}
	}
	s.mu.Lock()
	s.jobsByState()
	s.mu.Unlock()
	return nil
}

// adoptFleetJob builds the local view of a job another node (or an earlier
// incarnation of this one) published.
func (s *Server) adoptFleetJob(id string) (*Job, error) {
	spec, err := s.fleetStore.Spec(id)
	if err != nil {
		return nil, err
	}
	var req JobRequest
	if err := json.Unmarshal(spec, &req); err != nil {
		return nil, fmt.Errorf("spec document: %w", err)
	}
	data, _, err := s.fleetStore.Latest(id, fleet.KindManifest, fleetManifestValid(id))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	// system is set before the job becomes visible to handlers, which read
	// it without the job lock by the immutability convention.
	j := &Job{ID: id, Request: req, system: m.System}
	j.applyManifest(&m)
	return j, nil
}

// refreshFleetJob overwrites the job's mutable view from its latest valid
// manifest. Unless held is set it refuses to touch a job this node holds a
// lease on — the local run owns that view.
func (s *Server) refreshFleetJob(j *Job, held bool) error {
	data, _, err := s.fleetStore.Latest(j.ID, fleet.KindManifest, fleetManifestValid(j.ID))
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lease != nil && !held {
		return nil // raced with a local claim
	}
	j.applyManifestLocked(&m)
	return nil
}

// applyManifest copies the manifest's mutable fields into the job.
func (j *Job) applyManifest(m *manifest) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.applyManifestLocked(m)
}

func (j *Job) applyManifestLocked(m *manifest) {
	if j.state != m.State {
		// A remote transition: restart the local dwell clock so span
		// events emitted here attribute time from when we observed it.
		j.transitioned = time.Now()
	}
	j.state = m.State
	j.err = m.Error
	j.created = m.Created
	j.started = m.Started
	j.finished = m.Finished
	j.resumedFrom = m.ResumedFrom
	j.attempts = m.Attempts
	j.notBefore = time.Time{}
	if m.NotBefore != nil {
		j.notBefore = *m.NotBefore
	}
	j.node = m.Node
	j.cached = m.Cached
}

// claimRunnable claims jobs for this node's free capacity and enqueues
// them for the worker pool.
func (s *Server) claimRunnable(ctx context.Context) {
	s.mu.Lock()
	draining := s.draining
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	if draining || ctx.Err() != nil {
		return
	}
	free := s.cfg.Workers - int(s.busy.Value()) - len(s.queue)
	now := time.Now()
	for _, id := range ids {
		if free <= 0 {
			return
		}
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j == nil {
			continue
		}
		j.mu.Lock()
		claimable := j.lease == nil && !j.state.Terminal() &&
			// Retry backoff: a failed job stays unclaimed fleet-wide until
			// its not_before passes (except running manifests — an expired
			// lease on those must be stolen regardless, if only to count the
			// dead attempt).
			(j.state != StateQueued || j.notBefore.IsZero() || !now.Before(j.notBefore))
		j.mu.Unlock()
		if !claimable {
			continue
		}
		if s.claimJob(j) {
			free--
		}
	}
}

// claimJob attempts to lease one job and hand it to the local pool. It
// returns true when a worker slot was consumed.
func (s *Server) claimJob(j *Job) bool {
	cs, err := s.fleetStore.ClaimState(j.ID)
	if err != nil || cs.Held {
		return false
	}
	lease, err := s.fleetStore.Claim(j.ID)
	if err != nil {
		if !errors.Is(err, fleet.ErrUnavailable) {
			s.logf("serve: fleet: claim %s: %v", j.ID, err)
		}
		return false
	}
	j.mu.Lock()
	j.lease = lease
	j.fenced = false
	j.mu.Unlock()
	// Post-claim re-check: the previous holder may have committed a
	// terminal state between our scan and our claim. Never re-run (or
	// cancel) a finished job.
	if err := s.refreshFleetJob(j, true); err != nil {
		s.logf("serve: fleet: claim %s: manifest: %v", j.ID, err)
		s.dropLease(j, lease)
		return false
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	prev := j.state
	// A stolen running manifest means the previous holder's execution died
	// with it (crash, hang, partition): that attempt is spent. The counter
	// rides the manifests, so a poison job burns one budget fleet-wide no
	// matter which nodes execute it.
	stolenRunning := !terminal && j.state == StateRunning
	if stolenRunning {
		j.attempts++
	}
	quarantine := !terminal && j.attempts >= s.cfg.MaxAttempts
	attempts := j.attempts
	lastErr := j.err
	j.mu.Unlock()
	if terminal {
		s.dropLease(j, lease)
		return false
	}
	if quarantine {
		// Budget exhausted: commit the terminal quarantine manifest at our
		// epoch instead of re-running. No node will claim it again.
		j.mu.Lock()
		j.state = StateQuarantined
		j.err = quarantineCause(attempts, fmt.Errorf("attempt died with its node (last error: %s)", orNone(lastErr)))
		j.finished = time.Now()
		j.node = s.cfg.NodeID
		cause := j.err
		var dwellNs int64
		if s.lifecycleTracing() {
			dwellNs = j.dwellLocked(j.finished)
		}
		j.mu.Unlock()
		s.emitTerminal(j, prev, StateQuarantined, attempts, dwellNs, lease.Epoch, cause)
		if data, merr := s.fleetManifest(j, j.snapshot(), lease.Epoch); merr == nil {
			if werr := lease.Write(fleet.KindManifest, data); werr != nil {
				s.logf("serve: fleet: quarantine %s: %v", j.ID, werr)
			}
		}
		s.reg.Counter("serve.jobs_quarantined").Inc()
		s.quarWindow.record(time.Now())
		s.logf("serve: fleet: job %s quarantined after %d attempts", j.ID, attempts)
		s.fleetStore.RemoveCheckpoints(j.ID)
		s.dropLease(j, lease)
		return false
	}
	// A cancel marker on a not-yet-running job terminates it on the spot.
	if s.fleetStore.CancelRequested(j.ID) {
		j.mu.Lock()
		j.state = StateCancelled
		j.err = ""
		j.finished = time.Now()
		j.cancelRequested = true
		j.node = s.cfg.NodeID
		var dwellNs int64
		if s.lifecycleTracing() {
			dwellNs = j.dwellLocked(j.finished)
		}
		j.mu.Unlock()
		s.emitTerminal(j, prev, StateCancelled, attempts, dwellNs, lease.Epoch, "cancelled by client")
		if data, merr := s.fleetManifest(j, j.snapshot(), lease.Epoch); merr == nil {
			if werr := lease.Write(fleet.KindManifest, data); werr != nil {
				s.logf("serve: fleet: cancel %s: %v", j.ID, werr)
			}
		}
		s.reg.Counter("serve.jobs_cancelled").Inc()
		s.dropLease(j, lease)
		return false
	}
	j.mu.Lock()
	j.state = StateQueued
	j.node = s.cfg.NodeID
	var claimDwell int64
	if s.lifecycleTracing() {
		claimDwell = j.dwellLocked(time.Now())
	}
	j.mu.Unlock()
	if s.lifecycleTracing() {
		ev := obs.JobClaimed
		if stolenRunning {
			ev = obs.JobStolen
		}
		s.emitJobSpan(obs.JobEvent{Job: j.ID, Event: ev,
			From: string(prev), State: string(StateQueued),
			Attempt: attempts, DwellNs: claimDwell,
			Node: s.cfg.NodeID, Epoch: lease.Epoch})
	}
	if stolenRunning {
		// Make the consumed attempt durable (as queued, at our epoch) before
		// the job runs again, so a chain of node deaths cannot launder the
		// budget away.
		s.fleetPersist(j)
	}
	select {
	case s.queue <- j:
		s.qDepth.Set(float64(len(s.queue)))
		return true
	default:
		// The pool filled up between the capacity check and here; back out.
		s.dropLease(j, lease)
		return false
	}
}

// dropLease releases a lease and detaches it from the job. Release
// failures are logged only: once superseded or unwritable the lease dies
// by TTL anyway.
func (s *Server) dropLease(j *Job, l *fleet.Lease) {
	if err := l.Release(); err != nil && !errors.Is(err, fleet.ErrLeaseLost) {
		s.logf("serve: fleet: release %s: %v", l.Job, err)
	}
	j.mu.Lock()
	if j.lease == l {
		j.lease = nil
	}
	j.mu.Unlock()
}

// updateFleetGauges recomputes the fleet summary gauges the claim loop and
// /readyz report: unclaimed queue depth, jobs awaiting lease recovery
// (latest manifest says running but no live lease protects them), and the
// live node count.
func (s *Server) updateFleetGauges() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	queued, recovering := 0, 0
	for _, j := range jobs {
		j.mu.Lock()
		state, local := j.state, j.lease != nil
		j.mu.Unlock()
		if local || state.Terminal() {
			continue
		}
		cs, err := s.fleetStore.ClaimState(j.ID)
		if err != nil || cs.Held {
			continue
		}
		if state == StateRunning {
			// Its holder stopped renewing: the job is down until some node
			// (maybe this one, next tick) claims and resumes it.
			recovering++
		} else {
			queued++
		}
	}
	live, err := s.fleetStore.LiveNodes()
	if err != nil {
		s.logf("serve: fleet: live nodes: %v", err)
	}
	s.qDepth.Set(float64(queued))
	s.fleetRecovering.Set(float64(recovering))
	s.fleetLiveNodes.Set(float64(live))
	if recovering > 0 {
		s.fleetDegraded.Set(1)
	} else {
		s.fleetDegraded.Set(0)
	}
}

// ---- fenced execution plumbing ----

// fleetHeartbeat renews the job's lease until stop is closed, watching for
// fencing (a higher epoch appeared: abandon the run immediately) and for
// the job's cancel marker. It runs as a goroutine owned by the job's
// worker; done is closed when it exits.
func (s *Server) fleetHeartbeat(cancelJob context.CancelCauseFunc, j *Job, lease *fleet.Lease, stop <-chan struct{}, done chan<- struct{}) {
	defer func() {
		if p := recover(); p != nil {
			s.logf("serve: fleet: heartbeat for %s crashed: %v", j.ID, p)
		}
	}()
	defer close(done)
	ticker := time.NewTicker(s.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if s.fleetStore.CancelRequested(j.ID) {
			j.requestCancel(errors.New("cancelled by client (fleet marker)"))
		}
		if err := lease.Renew(); err != nil {
			if errors.Is(err, fleet.ErrLeaseLost) {
				s.fence(j, cancelJob, err)
				return
			}
			// Transient renewal trouble (EIO, ENOSPC): keep trying; the
			// lease only dies for real when its deadline passes.
			s.logf("serve: fleet: renew %s: %v", j.ID, err)
		}
	}
}

// fence marks the job abandoned-by-fencing and stops its run: a higher
// lease epoch exists, so another node owns the job now and nothing more
// may be persisted from here.
func (s *Server) fence(j *Job, cancelJob context.CancelCauseFunc, cause error) {
	j.mu.Lock()
	already := j.fenced
	j.fenced = true
	state := j.state
	epoch := 0
	if j.lease != nil {
		epoch = j.lease.Epoch
	}
	var dwellNs int64
	if !already && s.lifecycleTracing() {
		dwellNs = j.dwellLocked(time.Now())
	}
	j.mu.Unlock()
	if already {
		return
	}
	s.reg.Counter("serve.jobs_fenced").Inc()
	s.logf("serve: fleet: job %s fenced: %v", j.ID, cause)
	if s.lifecycleTracing() {
		s.emitJobSpan(obs.JobEvent{Job: j.ID, Event: obs.JobFenced,
			From: string(state), DwellNs: dwellNs, Node: s.cfg.NodeID,
			Epoch: epoch, Detail: cause.Error()})
	}
	if cancelJob != nil {
		cancelJob(cause)
	}
}

// fleetPersist writes the job's manifest through the lease fence. On fence
// rejection the job is marked fenced; other write failures are logged like
// single-node persist failures.
func (s *Server) fleetPersist(j *Job) { s.fleetPersistSnap(j, j.snapshot()) }

// fleetPersistSnap is fleetPersist with an explicit snapshot (see
// persistSnap).
func (s *Server) fleetPersistSnap(j *Job, snap jobSnapshot) {
	j.mu.Lock()
	lease := j.lease
	j.mu.Unlock()
	if lease == nil {
		return
	}
	data, err := s.fleetManifest(j, snap, lease.Epoch)
	if err == nil {
		err = lease.Write(fleet.KindManifest, data)
	}
	switch {
	case err == nil:
	case errors.Is(err, fleet.ErrLeaseLost):
		s.fence(j, nil, err)
	default:
		s.logf("serve: fleet: job %s: persist manifest: %v", j.ID, err)
	}
}

// fleetCheckpointing wires the job's synthesis options for fenced,
// fault-injectable checkpointing: resume comes from the newest epoch whose
// checkpoint still loads (corrupt epochs degrade to the last good one),
// and every save lands at this lease's epoch behind a fence check.
func (s *Server) fleetCheckpointing(j *Job, lease *fleet.Lease, opts *synth.Options) error {
	opts.CheckpointPath = lease.StatePath(fleet.KindCheckpoint)
	opts.CheckpointSave = func(p string, cp *runctl.Checkpoint) error {
		return lease.Fenced(func() error { return runctl.SaveFS(s.fleetFS, p, cp) })
	}
	var latest *runctl.Checkpoint
	path, epoch, err := s.fleetStore.LatestPath(j.ID, fleet.KindCheckpoint, func(p string) error {
		cp, lerr := runctl.Load(p)
		if lerr != nil {
			return lerr
		}
		latest = cp
		return nil
	})
	if err != nil {
		if errors.Is(err, fleet.ErrNoState) {
			return nil // fresh run
		}
		return err
	}
	if epoch != lease.Epoch {
		// Re-home the inherited checkpoint at our epoch so save and resume
		// share one path.
		data, rerr := s.fleetFS.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if werr := lease.Write(fleet.KindCheckpoint, data); werr != nil {
			return werr
		}
	}
	opts.Resume = true
	j.mu.Lock()
	j.resumedFrom = latest.Snapshot.Generation
	j.mu.Unlock()
	s.reg.Counter("serve.jobs_resumed").Inc()
	return nil
}
