package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client is a robust HTTP client for the job API: every request runs under
// its own timeout, and transient failures — connection errors, 429
// backpressure, 503 drain — are retried with capped exponential backoff
// and full jitter, honouring the server's Retry-After hint when one is
// given. It replaces fixed-sleep polling in scripts and tests.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient issues the requests (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request, first attempt included
	// (default 8).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps each backoff step and any Retry-After hint
	// (default 5s).
	MaxDelay time.Duration
	// RequestTimeout bounds each attempt (default 30s).
	RequestTimeout time.Duration
	// Logf receives retry diagnostics (default: discard).
	Logf func(format string, args ...any)

	mu sync.Mutex
	// lastRetryAfter is the most recent Retry-After hint, consumed by the
	// next backoff computation.
	lastRetryAfter time.Duration
	rng            *rand.Rand
}

// MaxResponseBytes bounds how much of a response body the client will
// read. Larger answers fail with ErrResponseTooLarge rather than being
// silently truncated into undecodable JSON.
const MaxResponseBytes = 16 << 20

// ErrResponseTooLarge reports a response body over MaxResponseBytes. It is
// terminal: retrying cannot shrink the answer.
var ErrResponseTooLarge = errors.New("serve: client: response exceeds the 16 MiB limit")

// StatusError is a non-2xx API answer that was not retried away.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Code, strings.TrimSpace(e.Body))
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

func (c *Client) baseDelay() time.Duration {
	if c.BaseDelay > 0 {
		return c.BaseDelay
	}
	return 50 * time.Millisecond
}

func (c *Client) maxDelay() time.Duration {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 5 * time.Second
}

func (c *Client) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 30 * time.Second
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// jitter returns a uniformly random duration in [0, d].
func (c *Client) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(c.rng.Int63n(int64(d) + 1))
}

// backoff computes the sleep before attempt (0-based) attempt+1: full
// jitter over an exponentially growing, capped window — or the server's
// Retry-After hint, also capped, when one was provided.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > c.maxDelay() {
			retryAfter = c.maxDelay()
		}
		return retryAfter
	}
	window := c.baseDelay() << uint(attempt)
	if window > c.maxDelay() || window <= 0 {
		window = c.maxDelay()
	}
	return c.jitter(window)
}

// retryAfter parses a Retry-After header in seconds form (0 when absent or
// unusable; the HTTP-date form is not worth supporting for this API).
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryable classifies an attempt outcome: connection-level errors and the
// two explicitly transient statuses (429 backpressure, 503 drain) retry;
// everything else is the caller's answer.
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		// Do not retry context cancellation: the caller gave up.
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	return resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable
}

// do runs one API request with retries. A nil error means a 2xx answer;
// the returned bytes are the response body.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt-1, c.getRetryAfter())
			c.logf("serve: client: %s %s attempt %d failed (%v); retrying in %v", method, path, attempt, lastErr, delay)
			select {
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			case <-time.After(delay):
			}
		}
		data, err := c.attempt(ctx, method, path, body)
		if err == nil {
			return data, nil
		}
		lastErr = err
		var se *StatusError
		if errors.As(err, &se) && se.Code != http.StatusTooManyRequests && se.Code != http.StatusServiceUnavailable {
			return nil, err // a real answer, not a transient condition
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		if errors.Is(err, ErrResponseTooLarge) {
			return nil, err // retrying cannot shrink the answer
		}
	}
	return nil, fmt.Errorf("serve: client: %s %s: giving up after %d attempts: %w", method, path, c.maxAttempts(), lastErr)
}

func (c *Client) attempt(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.requestTimeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		c.setRetryAfter(0)
		if !retryable(nil, err) {
			return nil, err
		}
		return nil, fmt.Errorf("serve: client: %w", err)
	}
	defer resp.Body.Close()
	// Read one byte past the cap: exactly-at-cap answers pass, anything
	// longer is detected instead of handed to the JSON decoder truncated.
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxResponseBytes+1))
	if err != nil {
		c.setRetryAfter(0)
		return nil, fmt.Errorf("serve: client: read response: %w", err)
	}
	if len(data) > MaxResponseBytes {
		c.setRetryAfter(0)
		return nil, fmt.Errorf("%s %s: %w", method, path, ErrResponseTooLarge)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		c.setRetryAfter(0)
		return data, nil
	}
	c.setRetryAfter(retryAfter(resp))
	return nil, &StatusError{Code: resp.StatusCode, Body: string(data)}
}

func (c *Client) setRetryAfter(d time.Duration) {
	c.mu.Lock()
	c.lastRetryAfter = d
	c.mu.Unlock()
}

func (c *Client) getRetryAfter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastRetryAfter
}

// Submit posts a job and returns the accepted view.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*SubmitView, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	data, err := c.do(ctx, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return nil, err
	}
	var view SubmitView
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, fmt.Errorf("serve: client: submit response: %w", err)
	}
	return &view, nil
}

// Status fetches one job's status.
func (c *Client) Status(ctx context.Context, id string) (*StatusView, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var view StatusView
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, fmt.Errorf("serve: client: status response: %w", err)
	}
	return &view, nil
}

// Result fetches a terminal job's result document.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) (*StatusView, error) {
	data, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var view StatusView
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, fmt.Errorf("serve: client: cancel response: %w", err)
	}
	return &view, nil
}

// WaitTerminal polls the job until it reaches a terminal state (poll
// interval default 100ms) or ctx expires.
func (c *Client) WaitTerminal(ctx context.Context, id string, poll time.Duration) (*StatusView, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		view, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if view.State.Terminal() {
			return view, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("serve: client: job %s still %s: %w", id, view.State, context.Cause(ctx))
		case <-time.After(poll):
		}
	}
}

// SubmitBatch submits a specs×seeds×options matrix to POST /v1/batches.
// The response carries the per-cell admission records (child job IDs,
// duplicates collapsed to their owning job, cache hits, rejections).
func (c *Client) SubmitBatch(ctx context.Context, req BatchRequest) (*BatchSubmitView, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	data, err := c.do(ctx, http.MethodPost, "/v1/batches", body)
	if err != nil {
		return nil, err
	}
	var view BatchSubmitView
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, fmt.Errorf("serve: client: batch response: %w", err)
	}
	return &view, nil
}

// BatchStatus fetches a batch's aggregate progress.
func (c *Client) BatchStatus(ctx context.Context, id string) (*BatchStatusView, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/batches/"+id, nil)
	if err != nil {
		return nil, err
	}
	var view BatchStatusView
	if err := json.Unmarshal(data, &view); err != nil {
		return nil, fmt.Errorf("serve: client: batch status response: %w", err)
	}
	return &view, nil
}

// BatchResults fetches every cell result of a batch, following the `next`
// cursor across pages.
func (c *Client) BatchResults(ctx context.Context, id string) ([]BatchCellResult, error) {
	var out []BatchCellResult
	cursor := ""
	for {
		path := "/v1/batches/" + id + "/results"
		if cursor != "" {
			path += "?cursor=" + url.QueryEscape(cursor)
		}
		data, err := c.do(ctx, http.MethodGet, path, nil)
		if err != nil {
			return nil, err
		}
		var page BatchResultsView
		if err := json.Unmarshal(data, &page); err != nil {
			return nil, fmt.Errorf("serve: client: batch results response: %w", err)
		}
		out = append(out, page.Results...)
		if page.Next == "" {
			return out, nil
		}
		cursor = page.Next
	}
}

// WaitBatch polls the batch until every admitted child job is terminal
// (poll interval default 100ms) or ctx expires.
func (c *Client) WaitBatch(ctx context.Context, id string, poll time.Duration) (*BatchStatusView, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		view, err := c.BatchStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if view.Complete {
			return view, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("serve: client: batch %s at %d/%d: %w", id, view.Done, view.Total, context.Cause(ctx))
		case <-time.After(poll):
		}
	}
}

// ListAll fetches the complete job listing, following the `next` cursor
// across pages instead of hand-rolling offset arithmetic.
func (c *Client) ListAll(ctx context.Context) ([]StatusView, error) {
	var out []StatusView
	cursor := ""
	for {
		path := "/v1/jobs"
		if cursor != "" {
			path += "?offset=" + url.QueryEscape(cursor)
		}
		data, err := c.do(ctx, http.MethodGet, path, nil)
		if err != nil {
			return nil, err
		}
		var page ListView
		if err := json.Unmarshal(data, &page); err != nil {
			return nil, fmt.Errorf("serve: client: list response: %w", err)
		}
		out = append(out, page.Jobs...)
		if page.Next == "" {
			return out, nil
		}
		cursor = page.Next
	}
}
