package serve_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"momosyn/internal/serve"
)

// quickOption is an options-axis entry (no spec/seed) sized like quickJob.
func quickOption() serve.JobRequest {
	return serve.JobRequest{GA: serve.GAParams{PopSize: 12, MaxGenerations: 25, Stagnation: 10}}
}

func batchClient(a *api) *serve.Client {
	return &serve.Client{BaseURL: a.ts.URL, Logf: a.t.Logf}
}

// TestBatchDedup is the batch acceptance scenario: a batch of 6 cells with
// 2 duplicated (spec, seed, option) triples runs exactly the 4-job
// deduplicated set, the results endpoint pages through all 6 cells, and
// resubmitting the completed batch is answered entirely from the cache.
func TestBatchDedup(t *testing.T) {
	spec := tinySpec(t)
	_, a, _ := cacheServer(t, t.TempDir(), t.TempDir(), nil)
	c := batchClient(a)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	req := serve.BatchRequest{
		Specs:   []serve.BatchSpecRef{{Spec: spec}},
		Seeds:   []int64{1, 2, 3, 1, 2, 4}, // seeds 1 and 2 appear twice
		Options: []serve.JobRequest{quickOption()},
	}
	view, err := c.SubmitBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if view.BatchStatusView.Cells != 6 || view.Jobs != 4 || view.Duplicates != 2 ||
		view.Rejected != 0 || view.CacheHits != 0 {
		t.Fatalf("submit = cells %d jobs %d dup %d rejected %d hits %d, want 6/4/2/0/0",
			view.BatchStatusView.Cells, view.Jobs, view.Duplicates, view.Rejected, view.CacheHits)
	}
	if view.ID == "" {
		t.Fatal("submit view has no batch ID")
	}
	cells := view.Cells
	if len(cells) != 6 {
		t.Fatalf("cell_details has %d cells, want 6", len(cells))
	}
	// Expansion order is seed order, so cells 3 and 4 (seeds 1 and 2 again)
	// must collapse into the jobs owned by cells 0 and 1.
	for _, dup := range []struct{ cell, owner int }{{3, 0}, {4, 1}} {
		got, want := cells[dup.cell], cells[dup.owner]
		if !got.Duplicate || got.Job == "" || got.Job != want.Job {
			t.Fatalf("cell %d = job %q duplicate %v, want duplicate of cell %d job %q",
				dup.cell, got.Job, got.Duplicate, dup.owner, want.Job)
		}
	}
	for _, i := range []int{0, 1, 2, 5} {
		if cells[i].Duplicate || cells[i].Job == "" || cells[i].Rejected != "" {
			t.Fatalf("cell %d = %+v, want an owning job", i, cells[i])
		}
	}

	done, err := c.WaitBatch(ctx, view.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !done.Complete || done.Done != 4 || done.States[string(serve.StateDone)] != 4 {
		t.Fatalf("final status = %+v, want 4/4 done", done)
	}

	// Exactly the deduplicated set ran: the server knows 4 jobs, all done.
	jobs, err := c.ListAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("server has %d jobs, want exactly the 4 deduplicated cells", len(jobs))
	}
	for _, j := range jobs {
		if j.State != serve.StateDone {
			t.Fatalf("job %s = state %s, want done", j.ID, j.State)
		}
	}

	// Every cell — duplicates included — serves a result document.
	results, err := c.BatchResults(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results has %d cells, want 6", len(results))
	}
	for _, r := range results {
		if r.State != serve.StateDone || len(r.Result) == 0 {
			t.Fatalf("cell %d = state %s result %d bytes, want a done result", r.Cell, r.State, len(r.Result))
		}
	}

	if got := metricValue(t, a, "serve.batch_cells"); got != 6 {
		t.Fatalf("serve.batch_cells = %v, want 6", got)
	}
	if got := metricValue(t, a, "serve.batch_dedup"); got != 2 {
		t.Fatalf("serve.batch_dedup = %v, want 2", got)
	}
	if got := metricValue(t, a, "serve.batches"); got != 1 {
		t.Fatalf("serve.batches = %v, want 1", got)
	}

	// Resubmitting the identical batch is answered entirely from the result
	// cache: complete at submission, zero new synthesis work.
	again, err := c.SubmitBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID == view.ID {
		t.Fatalf("resubmission reused batch ID %s", again.ID)
	}
	if again.CacheHits != 4 || again.Duplicates != 2 || again.Jobs != 4 || !again.Complete {
		t.Fatalf("resubmission = hits %d dup %d jobs %d complete %v, want 4/2/4/true",
			again.CacheHits, again.Duplicates, again.Jobs, again.Complete)
	}
}

// TestMetricsCacheBatchSeries checks that a cache-enabled server exposes
// every cache and batch series on the Prometheus endpoint before any
// traffic: scrapers must see the full schema from the first scrape.
func TestMetricsCacheBatchSeries(t *testing.T) {
	_, a, _ := cacheServer(t, t.TempDir(), t.TempDir(), nil)
	req, err := http.NewRequest("GET", a.ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := a.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE serve_cache_hits counter",
		"# TYPE serve_cache_misses counter",
		"# TYPE serve_cache_evictions counter",
		"# TYPE serve_cache_corrupt counter",
		"# TYPE serve_batches gauge",
		"# TYPE serve_batches_submitted counter",
		"# TYPE serve_batch_cells counter",
		"# TYPE serve_batch_dedup counter",
		"# TYPE serve_batch_cache_hits counter",
		"# TYPE serve_batch_rejected counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q", want)
		}
	}
}

// TestBatchResultsPagination walks a batch's results with a small page
// size, following the next cursor.
func TestBatchResultsPagination(t *testing.T) {
	spec := tinySpec(t)
	_, a, _ := cacheServer(t, t.TempDir(), t.TempDir(), nil)
	c := batchClient(a)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	view, err := c.SubmitBatch(ctx, serve.BatchRequest{
		Specs:   []serve.BatchSpecRef{{Spec: spec}},
		Seeds:   []int64{10, 11, 10, 11, 10}, // 5 cells, 2 jobs
		Options: []serve.JobRequest{quickOption()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitBatch(ctx, view.ID, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var seen []int
	cursor := ""
	for page := 0; ; page++ {
		if page > 4 {
			t.Fatal("pagination did not terminate")
		}
		path := "/v1/batches/" + view.ID + "/results?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		var pv serve.BatchResultsView
		resp := a.do("GET", path, nil, &pv)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d: status %d", page, resp.StatusCode)
		}
		if want := []int{2, 2, 1}; page >= len(want) || len(pv.Results) != want[page] {
			t.Fatalf("page %d has %d results, want page sizes 2,2,1", page, len(pv.Results))
		}
		for _, r := range pv.Results {
			seen = append(seen, r.Cell)
		}
		if pv.Next == "" {
			break
		}
		cursor = pv.Next
	}
	if len(seen) != 5 {
		t.Fatalf("paged through %d cells, want 5", len(seen))
	}
	for i, cell := range seen {
		if cell != i {
			t.Fatalf("page order = %v, want cells in expansion order", seen)
		}
	}

	for _, bad := range []string{"?limit=0", "?limit=501", "?cursor=-1", "?cursor=x"} {
		resp := a.do("GET", "/v1/batches/"+view.ID+"/results"+bad, nil, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("results%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestBatchValidation covers whole-batch refusals: nothing may be admitted
// when any part of the matrix is malformed.
func TestBatchValidation(t *testing.T) {
	spec := tinySpec(t)
	_, a, _ := cacheServer(t, t.TempDir(), t.TempDir(), nil)
	c := batchClient(a)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	bad := []struct {
		name string
		req  serve.BatchRequest
		want string
	}{
		{"no specs", serve.BatchRequest{Seeds: []int64{1}}, "specs must not be empty"},
		{"no seeds", serve.BatchRequest{Specs: []serve.BatchSpecRef{{Spec: spec}}}, "seeds must not be empty"},
		{"option with seed", serve.BatchRequest{
			Specs: []serve.BatchSpecRef{{Spec: spec}}, Seeds: []int64{1},
			Options: []serve.JobRequest{{Seed: 7}},
		}, "seed belongs to the seeds axis"},
		{"option with spec", serve.BatchRequest{
			Specs: []serve.BatchSpecRef{{Spec: spec}}, Seeds: []int64{1},
			Options: []serve.JobRequest{{Spec: spec}},
		}, "spec belongs to the specs axis"},
		{"option with failpoint", serve.BatchRequest{
			Specs: []serve.BatchSpecRef{{Spec: spec}}, Seeds: []int64{1},
			Options: []serve.JobRequest{{Failpoint: "run-crash"}},
		}, "failpoints are not allowed"},
		{"malformed spec", serve.BatchRequest{
			Specs: []serve.BatchSpecRef{{Spec: spec}, {Spec: "not a spec"}},
			Seeds: []int64{1, 2},
		}, "specs[1]"},
	}
	for _, tc := range bad {
		_, err := c.SubmitBatch(ctx, tc.req)
		var se *serve.StatusError
		if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
			t.Fatalf("%s: err = %v, want HTTP 400", tc.name, err)
		}
		if !strings.Contains(se.Body, tc.want) {
			t.Fatalf("%s: body %q does not mention %q", tc.name, se.Body, tc.want)
		}
	}

	// A refused batch admits nothing — the malformed-spec case in
	// particular must not leave the first (valid) spec's cells queued.
	jobs, err := c.ListAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("server has %d jobs after refused batches, want 0", len(jobs))
	}

	for _, id := range []string{"zzz", "b000099"} {
		resp := a.do("GET", "/v1/batches/"+id, nil, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("batch %q: status %d, want 404", id, resp.StatusCode)
		}
	}
}

// TestBatchRecovery restarts the server and checks that batch records come
// back from disk: status still serves, and the sequence continues past the
// recovered IDs.
func TestBatchRecovery(t *testing.T) {
	spec := tinySpec(t)
	dataDir, cacheDir := t.TempDir(), t.TempDir()
	_, a, stop := cacheServer(t, dataDir, cacheDir, nil)
	c := batchClient(a)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	view, err := c.SubmitBatch(ctx, serve.BatchRequest{
		Specs:   []serve.BatchSpecRef{{Spec: spec}},
		Seeds:   []int64{21, 22},
		Options: []serve.JobRequest{quickOption()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitBatch(ctx, view.ID, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stop()

	_, a2, _ := cacheServer(t, dataDir, cacheDir, nil)
	c2 := batchClient(a2)
	status, err := c2.BatchStatus(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.Cells != 2 {
		t.Fatalf("recovered batch has %d cells, want 2", status.Cells)
	}
	if !status.Complete || status.Jobs != 2 || status.States[string(serve.StateDone)] != 2 {
		t.Fatalf("recovered status = %+v, want 2/2 done", status)
	}

	// The recovered children are in the cache, so the next batch — new ID,
	// continuing the sequence — completes at submission.
	again, err := c2.SubmitBatch(ctx, serve.BatchRequest{
		Specs:   []serve.BatchSpecRef{{Spec: spec}},
		Seeds:   []int64{21, 22},
		Options: []serve.JobRequest{quickOption()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID <= view.ID {
		t.Fatalf("post-restart batch ID %s does not continue past %s", again.ID, view.ID)
	}
	if again.CacheHits != 2 || !again.Complete {
		t.Fatalf("post-restart resubmission = hits %d complete %v, want 2/true", again.CacheHits, again.Complete)
	}
}
