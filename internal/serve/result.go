package serve

import (
	"bytes"
	"encoding/json"
	"time"

	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/synth"
)

// bytesReader isolates the one bytes dependency of the HTTP layer.
func bytesReader(b []byte) *bytes.Reader { return bytes.NewReader(b) }

// ResultView is the JSON body of GET /v1/jobs/{id}/result: the synthesised
// implementation plus the run statistics and (unless the client opted out)
// the independent certification report. Power and fitness fields use
// obs.Float so an infeasible ±Inf objective survives JSON.
type ResultView struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	System string `json:"system"`
	Seed   int64  `json:"seed"`
	DVS    bool   `json:"dvs"`

	// AvgPower is the Eq. (1) average power under the TRUE mode execution
	// probabilities; ObjectivePower is the power under the probabilities the
	// optimiser actually used (differs only for neglect_probabilities runs).
	AvgPower       obs.Float `json:"avg_power"`
	ObjectivePower obs.Float `json:"objective_power"`
	Feasible       bool      `json:"feasible"`
	// Partial marks an interrupted run: the implementation is best-so-far,
	// Reason says why the run stopped.
	Partial bool   `json:"partial,omitempty"`
	Reason  string `json:"reason,omitempty"`

	Generations int    `json:"generations"`
	Evaluations int    `json:"evaluations"`
	Restarts    int    `json:"restarts,omitempty"`
	Elapsed     string `json:"elapsed"`
	// ResumedFrom is the checkpoint generation the run continued from after
	// a restart; 0 for runs that started fresh.
	ResumedFrom int `json:"resumed_from,omitempty"`

	Modes         []ModeView         `json:"modes"`
	Mapping       []MappingView      `json:"mapping"`
	Certification *CertificationView `json:"certification,omitempty"`
}

// ModeView is one mode's power breakdown and schedule.
type ModeView struct {
	Name      string     `json:"name"`
	Prob      float64    `json:"prob"`
	Period    float64    `json:"period"`
	Makespan  float64    `json:"makespan"`
	DynamicW  obs.Float  `json:"dynamic_power"`
	StaticW   obs.Float  `json:"static_power"`
	WeightedW obs.Float  `json:"weighted_power"`
	Schedule  []SlotView `json:"schedule"`
}

// SlotView is one scheduled task execution.
type SlotView struct {
	Task   string  `json:"task"`
	PE     string  `json:"pe"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
	// Voltage is the selected supply voltage on DVS processors; 0 when the
	// PE does not scale.
	Voltage float64   `json:"voltage,omitempty"`
	Energy  obs.Float `json:"energy"`
}

// MappingView is one mode's task → PE assignment.
type MappingView struct {
	Mode  string            `json:"mode"`
	Tasks map[string]string `json:"tasks"`
}

// CertificationView summarises the independent verifier's report.
type CertificationView struct {
	Certified     bool            `json:"certified"`
	Checks        int             `json:"checks"`
	ClaimFeasible bool            `json:"claim_feasible"`
	Violations    []ViolationView `json:"violations,omitempty"`
}

// ViolationView is one certification violation.
type ViolationView struct {
	Kind   string    `json:"kind"`
	Mode   string    `json:"mode,omitempty"`
	Detail string    `json:"detail"`
	Got    obs.Float `json:"got"`
	Want   obs.Float `json:"want"`
}

// renderResult serialises a finished job's result document. It tolerates
// the partial shapes interrupted runs produce (nil Best, nil GA). The
// snapshot is explicit because the worker renders the document before the
// job's terminal state becomes publicly visible.
func renderResult(j *Job, snap jobSnapshot, sys *model.System, res *synth.Result) ([]byte, error) {
	view := ResultView{
		ID:          j.ID,
		State:       snap.State,
		System:      sys.App.Name,
		Seed:        j.Request.Seed,
		DVS:         j.Request.DVS,
		Partial:     res.Partial,
		Elapsed:     res.Elapsed.Round(time.Millisecond).String(),
		ResumedFrom: snap.ResumedFrom,
	}
	if res.GA != nil {
		view.Generations = res.GA.Generations
		view.Evaluations = res.GA.Evaluations
		view.Restarts = res.GA.Restarts
		view.Reason = res.GA.Reason
	}
	if best := res.Best; best != nil {
		view.AvgPower = obs.Float(best.AvgPower)
		view.ObjectivePower = obs.Float(res.ObjectivePower)
		view.Feasible = best.Feasible()
		for m, mode := range sys.App.Modes {
			mp := best.ModePowers[m]
			sc := best.Schedules[m]
			mv := ModeView{
				Name:      mode.Name,
				Prob:      mode.Prob,
				Period:    mode.Period,
				Makespan:  sc.Makespan,
				DynamicW:  obs.Float(mp.Dynamic()),
				StaticW:   obs.Float(mp.StaticPower),
				WeightedW: obs.Float(mp.Total() * mode.Prob),
			}
			for ti := range sc.Tasks {
				slot := sc.Tasks[ti]
				pe := sys.Arch.PE(slot.PE)
				sv := SlotView{
					Task:   mode.Graph.Task(model.TaskID(ti)).Name,
					PE:     pe.Name,
					Start:  slot.Start,
					Finish: slot.Finish,
					Energy: obs.Float(slot.Energy),
				}
				if slot.VoltIdx >= 0 && pe.DVS {
					sv.Voltage = pe.Levels[slot.VoltIdx]
				}
				mv.Schedule = append(mv.Schedule, sv)
			}
			view.Modes = append(view.Modes, mv)

			tasks := make(map[string]string, len(mode.Graph.Tasks))
			for ti, task := range mode.Graph.Tasks {
				tasks[task.Name] = sys.Arch.PE(best.Mapping[m][ti]).Name
			}
			view.Mapping = append(view.Mapping, MappingView{Mode: mode.Name, Tasks: tasks})
		}
	}
	if rep := res.Certification; rep != nil {
		cv := &CertificationView{
			Certified:     rep.Certified(),
			Checks:        rep.Checks,
			ClaimFeasible: rep.ClaimFeasible,
		}
		for _, v := range rep.Violations {
			vv := ViolationView{
				Kind:   v.Kind.String(),
				Detail: v.Detail,
				Got:    obs.Float(v.Got),
				Want:   obs.Float(v.Want),
			}
			if mode := sys.App.Mode(v.Mode); mode != nil {
				vv.Mode = mode.Name
			}
			cv.Violations = append(cv.Violations, vv)
		}
		view.Certification = cv
	}
	return json.MarshalIndent(&view, "", "  ")
}
