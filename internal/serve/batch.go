package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"momosyn/internal/model"
	"momosyn/internal/specio"
)

// The batch submission API. POST /v1/batches expands a specs×seeds×options
// matrix into child jobs server-side, collapsing cells that share a cache
// key (within the batch and against the result cache) so a sweep over
// prior work admits only the genuinely new runs. Admission shedding, queue
// bounds and retry budgets apply to every child individually: a rejected
// cell is recorded on the batch, never silently dropped, and resubmitting
// the same batch later re-runs only what is still missing. See
// docs/SERVER.md.

const (
	// maxBatchSpecs bounds the specs axis of one batch.
	maxBatchSpecs = 64
	// maxBatchCells bounds the full expansion of one batch.
	maxBatchCells = 1024
)

// BatchSpecRef names one spec of a batch, inline or by server-side name —
// exactly one of the two.
type BatchSpecRef struct {
	Spec     string `json:"spec,omitempty"`
	SpecName string `json:"spec_name,omitempty"`
}

// BatchRequest is the JSON body of POST /v1/batches. The batch expands to
// one cell per (spec, seed, option) triple — specs outermost, then seeds,
// then options — so cell indices are stable and reproducible. Options
// entries reuse the JobRequest shape but must not set spec, spec_name,
// seed or failpoint (those belong to the matrix axes); an absent options
// list means one run per (spec, seed) with default options.
type BatchRequest struct {
	Specs   []BatchSpecRef `json:"specs"`
	Seeds   []int64        `json:"seeds"`
	Options []JobRequest   `json:"options,omitempty"`
}

// BatchCell records how one cell of the matrix was admitted. Cells are
// immutable once the batch is created; live job state is joined in by the
// status and results endpoints.
type BatchCell struct {
	// Cell is the index in expansion order.
	Cell int `json:"cell"`
	// Spec, Seed and Option locate the cell in the request matrix.
	Spec   int   `json:"spec"`
	Seed   int64 `json:"seed"`
	Option int   `json:"option"`
	// System is the parsed specification's system name.
	System string `json:"system,omitempty"`
	// Job is the child job answering this cell; empty when rejected.
	Job string `json:"job,omitempty"`
	// Duplicate marks a cell collapsed into an earlier cell's job because
	// both resolve to the same content-address.
	Duplicate bool `json:"duplicate,omitempty"`
	// CacheHit marks a cell answered terminally from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Rejected carries the admission refusal (shed deadline, full queue)
	// when the cell could not be queued.
	Rejected string `json:"rejected,omitempty"`
}

// Batch is one accepted batch: its identity plus the immutable cell
// records. Aggregate progress is always computed live from the job table.
type Batch struct {
	ID      string      `json:"id"`
	Created time.Time   `json:"created"`
	Cells   []BatchCell `json:"cells"`
}

// BatchStatusView is the JSON body of GET /v1/batches/{id} and the summary
// part of the submission response.
type BatchStatusView struct {
	ID      string `json:"id"`
	Created string `json:"created,omitempty"`
	// Cells is the full matrix size; Jobs the deduplicated child count.
	Cells      int `json:"cells"`
	Jobs       int `json:"jobs"`
	Duplicates int `json:"duplicates,omitempty"`
	CacheHits  int `json:"cache_hits,omitempty"`
	Rejected   int `json:"rejected,omitempty"`
	// States counts the distinct child jobs by their current state.
	States map[string]int `json:"states,omitempty"`
	// Done over Total tracks terminal child jobs; Complete is Done==Total.
	Done     int  `json:"done"`
	Total    int  `json:"total"`
	Complete bool `json:"complete"`
}

// BatchSubmitView is the JSON body answering POST /v1/batches.
type BatchSubmitView struct {
	BatchStatusView
	Cells []BatchCell `json:"cell_details"`
	// Warnings are the spec readers' semantic lint findings, prefixed with
	// the spec index they belong to.
	Warnings []string `json:"warnings,omitempty"`
}

// BatchCellResult is one entry of GET /v1/batches/{id}/results: the cell
// record joined with the child job's live state and, once terminal, its
// result document.
type BatchCellResult struct {
	BatchCell
	State  State           `json:"state,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// BatchResultsView is the JSON body of GET /v1/batches/{id}/results. Next,
// when present, is the cursor of the following page.
type BatchResultsView struct {
	ID      string            `json:"id"`
	Results []BatchCellResult `json:"results"`
	Next    string            `json:"next,omitempty"`
}

// batchID formats batch identifiers; the b prefix keeps them disjoint from
// job IDs.
func batchID(n int) string { return fmt.Sprintf("b%06d", n) }

var batchIDRe = regexp.MustCompile(`^b[0-9]{6,9}$`)

func validBatchID(id string) bool { return batchIDRe.MatchString(id) }

// validateBatch checks the matrix shape; per-cell request validation
// happens during expansion.
func validateBatch(req *BatchRequest) *admitError {
	if len(req.Specs) == 0 {
		return admitErrorf(http.StatusBadRequest, "specs must not be empty")
	}
	if len(req.Specs) > maxBatchSpecs {
		return admitErrorf(http.StatusBadRequest, "at most %d specs per batch (got %d)", maxBatchSpecs, len(req.Specs))
	}
	if len(req.Seeds) == 0 {
		return admitErrorf(http.StatusBadRequest, "seeds must not be empty")
	}
	options := len(req.Options)
	if options == 0 {
		options = 1
	}
	if cells := len(req.Specs) * len(req.Seeds) * options; cells > maxBatchCells {
		return admitErrorf(http.StatusBadRequest, "batch expands to %d cells, the limit is %d", cells, maxBatchCells)
	}
	for i := range req.Options {
		o := &req.Options[i]
		switch {
		case o.Spec != "" || o.SpecName != "":
			return admitErrorf(http.StatusBadRequest, "options[%d]: spec belongs to the specs axis", i)
		case o.Seed != 0:
			return admitErrorf(http.StatusBadRequest, "options[%d]: seed belongs to the seeds axis", i)
		case o.Failpoint != "":
			return admitErrorf(http.StatusBadRequest, "options[%d]: failpoints are not allowed in batches", i)
		}
	}
	return nil
}

// cellRequest assembles the JobRequest of one cell from its option
// template, resolved spec text and seed.
func cellRequest(opt JobRequest, spec string, seed int64) JobRequest {
	opt.Spec = spec
	opt.SpecName = ""
	opt.Seed = seed
	return opt
}

func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	limit := s.cfg.MaxSpecBytes * maxBatchSpecs
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > limit {
		writeError(w, http.StatusRequestEntityTooLarge, "request exceeds %d bytes", limit)
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(bytesReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "request body: %v", err)
		return
	}
	if aerr := validateBatch(&req); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}

	// Resolve and parse every spec before admitting anything: a malformed
	// spec fails the whole batch with nothing queued, not a half-admitted
	// matrix.
	type parsedSpec struct {
		text   string
		sys    *model.System
		system string
	}
	specs := make([]parsedSpec, len(req.Specs))
	var warnings []string
	for i, ref := range req.Specs {
		probe := JobRequest{Spec: ref.Spec, SpecName: ref.SpecName}
		if aerr := s.validateJob(&probe); aerr != nil {
			s.writeAPIError(w, admitErrorf(aerr.status, "specs[%d]: %s", i, aerr.msg))
			return
		}
		sys, warns, err := specio.ReadWarnBytes([]byte(probe.Spec))
		if err != nil {
			writeError(w, http.StatusBadRequest, "specs[%d]: spec: %v", i, err)
			return
		}
		specs[i] = parsedSpec{text: probe.Spec, sys: sys, system: sys.App.Name}
		for _, wn := range warns {
			warnings = append(warnings, fmt.Sprintf("specs[%d]: %s", i, wn.String()))
		}
	}

	options := req.Options
	if len(options) == 0 {
		options = []JobRequest{{}}
	}
	// Expansion: one cell per (spec, seed, option), collapsing cells that
	// share a content-address. A cell whose admission is refused (shed
	// deadline, full queue, draining mid-batch) is recorded and skipped;
	// the rest of the batch still runs.
	b := &Batch{Created: time.Now()}
	seen := make(map[string]string) // cache key → owning job ID
	cacheHits, dupes, rejected := 0, 0, 0
	for si := range specs {
		for _, seed := range req.Seeds {
			for oi := range options {
				cell := BatchCell{
					Cell: len(b.Cells), Spec: si, Seed: seed, Option: oi,
					System: specs[si].system,
				}
				creq := cellRequest(options[oi], specs[si].text, seed)
				if aerr := s.validateJob(&creq); aerr != nil {
					cell.Rejected = aerr.msg
					rejected++
					b.Cells = append(b.Cells, cell)
					continue
				}
				key, keyable := s.cacheKey(specs[si].sys, &creq)
				if keyable {
					if owner, dup := seen[key]; dup {
						cell.Job, cell.Duplicate = owner, true
						dupes++
						b.Cells = append(b.Cells, cell)
						continue
					}
					if e, hit := s.cache.Get(key); hit {
						if j, aerr := s.materializeCached(creq, specs[si].system, e); aerr != nil {
							cell.Rejected = aerr.msg
							rejected++
							b.Cells = append(b.Cells, cell)
							continue
						} else if j != nil {
							cell.Job, cell.CacheHit = j.ID, true
							cacheHits++
							seen[key] = j.ID
							b.Cells = append(b.Cells, cell)
							continue
						}
						// Hit not materialisable: run the cell for real.
					}
				}
				j, aerr := s.admitJob(creq, specs[si].system)
				if aerr != nil {
					cell.Rejected = aerr.msg
					rejected++
					b.Cells = append(b.Cells, cell)
					continue
				}
				cell.Job = j.ID
				if keyable {
					seen[key] = j.ID
				}
				b.Cells = append(b.Cells, cell)
			}
		}
	}

	s.mu.Lock()
	s.batchSeq++
	b.ID = batchID(s.batchSeq)
	s.batches[b.ID] = b
	s.batchOrder = append(s.batchOrder, b.ID)
	s.batchesGauge.Set(float64(len(s.batches)))
	s.mu.Unlock()
	s.persistBatch(b)

	s.reg.Counter("serve.batches_submitted").Inc()
	s.reg.Counter("serve.batch_cells").Add(uint64(len(b.Cells)))
	s.reg.Counter("serve.batch_dedup").Add(uint64(dupes))
	s.reg.Counter("serve.batch_cache_hits").Add(uint64(cacheHits))
	s.reg.Counter("serve.batch_rejected").Add(uint64(rejected))

	view := BatchSubmitView{
		BatchStatusView: s.batchStatus(b),
		Cells:           b.Cells,
		Warnings:        warnings,
	}
	w.Header().Set("Location", "/v1/batches/"+b.ID)
	writeJSON(w, http.StatusAccepted, view)
}

// batchStatus joins a batch's immutable cells with the live job table into
// the aggregate progress view.
func (s *Server) batchStatus(b *Batch) BatchStatusView {
	v := BatchStatusView{
		ID:      b.ID,
		Created: b.Created.UTC().Format(time.RFC3339Nano),
		Cells:   len(b.Cells),
		States:  make(map[string]int),
	}
	jobs := make(map[string]bool) // job ID → seen
	for _, c := range b.Cells {
		switch {
		case c.Rejected != "":
			v.Rejected++
		case c.Duplicate:
			v.Duplicates++
		}
		if c.CacheHit {
			v.CacheHits++
		}
		if c.Job == "" || jobs[c.Job] {
			continue
		}
		jobs[c.Job] = true
		v.Jobs++
		s.mu.Lock()
		j := s.jobs[c.Job]
		s.mu.Unlock()
		if j == nil {
			// The job table lost a referenced job (foreign restart with a
			// wiped data dir); surface it rather than undercounting.
			v.States["missing"]++
			continue
		}
		state := j.snapshot().State
		v.States[string(state)]++
		if state.Terminal() {
			v.Done++
		}
	}
	v.Total = v.Jobs
	v.Complete = v.Done == v.Total
	return v
}

func (s *Server) lookupBatch(w http.ResponseWriter, r *http.Request) *Batch {
	id := r.PathValue("id")
	if !validBatchID(id) {
		writeError(w, http.StatusNotFound, "no such batch %q", id)
		return nil
	}
	s.mu.Lock()
	b := s.batches[id]
	s.mu.Unlock()
	if b == nil {
		writeError(w, http.StatusNotFound, "no such batch %q", id)
		return nil
	}
	return b
}

func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	b := s.lookupBatch(w, r)
	if b == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.batchStatus(b))
}

func (s *Server) handleBatchResults(w http.ResponseWriter, r *http.Request) {
	b := s.lookupBatch(w, r)
	if b == nil {
		return
	}
	cursor, err := queryInt(r, "cursor", 0)
	if err == nil && cursor < 0 {
		err = fmt.Errorf("negative")
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "cursor: %v", err)
		return
	}
	limit, err := queryInt(r, "limit", 50)
	if err == nil && (limit <= 0 || limit > 500) {
		err = fmt.Errorf("must be in [1,500]")
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "limit: %v", err)
		return
	}
	view := BatchResultsView{ID: b.ID, Results: make([]BatchCellResult, 0, limit)}
	for i := cursor; i < len(b.Cells) && len(view.Results) < limit; i++ {
		cell := b.Cells[i]
		entry := BatchCellResult{BatchCell: cell}
		if cell.Job != "" {
			s.mu.Lock()
			j := s.jobs[cell.Job]
			s.mu.Unlock()
			if j != nil {
				snap := j.snapshot()
				entry.State, entry.Cached = snap.State, snap.Cached
				if snap.State.Terminal() {
					entry.Result = s.resultDocFor(j)
				}
			}
		}
		view.Results = append(view.Results, entry)
	}
	if next := cursor + len(view.Results); next < len(b.Cells) {
		view.Next = strconv.Itoa(next)
	}
	writeJSON(w, http.StatusOK, view)
}

// resultDocFor returns a terminal job's rendered result document, from the
// in-memory run result or the persisted copy; nil when it has none.
func (s *Server) resultDocFor(j *Job) json.RawMessage {
	j.mu.Lock()
	sys, res := j.sys, j.result
	j.mu.Unlock()
	if sys != nil && res != nil {
		if doc, err := renderResult(j, j.snapshot(), sys, res); err == nil {
			return doc
		}
	}
	return s.loadResultDoc(j)
}

// batchesDir is where single-node batches persist; fleet-mode batch
// records are node-local and in-memory only (their child jobs, the
// durable part, live in the fleet directory).
func (s *Server) batchesDir() string {
	if s.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, "batches")
}

// persistBatch stores the immutable batch record; failures are logged, not
// fatal (the batch merely loses restart durability, like job manifests).
func (s *Server) persistBatch(b *Batch) {
	dir := s.batchesDir()
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.logf("serve: batch %s: persist: %v", b.ID, err)
		return
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err == nil {
		err = writeFileAtomic(filepath.Join(dir, b.ID+".json"), data)
	}
	if err != nil {
		s.logf("serve: batch %s: persist: %v", b.ID, err)
	}
}

// recoverBatches reloads persisted batch records at startup. Corrupt
// records are skipped with a log line: the child jobs recover on their own
// from their manifests either way.
func (s *Server) recoverBatches() {
	dir := s.batchesDir()
	if dir == "" {
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logf("serve: recover batches: %v", err)
		}
		return
	}
	maxSeq := 0
	for _, e := range entries {
		name := e.Name()
		id := strings.TrimSuffix(name, ".json")
		if id == name || !validBatchID(id) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			s.logf("serve: recover batch %s: %v", name, err)
			continue
		}
		var b Batch
		dec := json.NewDecoder(bytesReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&b); err != nil || b.ID != id {
			s.logf("serve: recover batch %s: corrupt record (err %v); skipped", name, err)
			continue
		}
		s.batches[b.ID] = &b
		s.batchOrder = append(s.batchOrder, b.ID)
		if n, err := strconv.Atoi(id[1:]); err == nil && n > maxSeq {
			maxSeq = n
		}
	}
	if s.batchSeq < maxSeq {
		s.batchSeq = maxSeq
	}
	s.batchesGauge.Set(float64(len(s.batches)))
}
