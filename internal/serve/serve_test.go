package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"momosyn/internal/gen"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/serve"
	"momosyn/internal/specio"
)

// tinySpec renders a two-mode, two-PE specification whose synthesis
// finishes in milliseconds.
func tinySpec(t *testing.T) string {
	t.Helper()
	b := model.NewBuilder("servetest")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8, StaticPower: 1e-4})
	b.AddPE(model.PE{Name: "hw", Class: model.ASIC, Vmax: 3.3, Vt: 0.8, Area: 400, StaticPower: 5e-4})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6, StaticPower: 1e-5}, "cpu", "hw")
	b.AddType("shared",
		model.ImplSpec{PE: "cpu", Time: 10e-3, Power: 4e-3},
		model.ImplSpec{PE: "hw", Time: 1e-3, Power: 0.2e-3, Area: 150},
	)
	b.AddType("swonly", model.ImplSpec{PE: "cpu", Time: 5e-3, Power: 2e-3})
	b.BeginMode("m0", 0.7, 0.1)
	b.AddTask("a", "shared", 0)
	b.AddTask("b", "swonly", 0)
	b.AddEdge("a", "b", 500)
	b.BeginMode("m1", 0.3, 0.1)
	b.AddTask("a", "shared", 0)
	b.AddTask("c", "swonly", 0)
	b.AddEdge("a", "c", 500)
	b.AddTransition("m0", "m1", 0.02)
	b.AddTransition("m1", "m0", 0.02)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return writeSpec(t, sys)
}

// bigSpec renders a generated instance large enough that a
// high-generation-limit synthesis runs for many seconds — the "long job"
// for cancellation and restart tests (it is never allowed to finish).
func bigSpec(t *testing.T) string {
	t.Helper()
	sys, err := gen.Generate(gen.NewParams(3))
	if err != nil {
		t.Fatal(err)
	}
	return writeSpec(t, sys)
}

func writeSpec(t *testing.T, sys *model.System) string {
	t.Helper()
	var buf bytes.Buffer
	if err := specio.Write(&buf, sys); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// newServer builds a Server over a temp data dir without starting its
// workers (tests that need execution call Start themselves).
func newServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// api wraps an httptest server over the job API.
type api struct {
	t  *testing.T
	ts *httptest.Server
}

func newAPI(t *testing.T, s *serve.Server) *api {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &api{t: t, ts: ts}
}

// do issues a request and decodes the JSON body into out (when non-nil).
func (a *api) do(method, path string, body any, out any) *http.Response {
	a.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			a.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, a.ts.URL+path, rd)
	if err != nil {
		a.t.Fatal(err)
	}
	resp, err := a.ts.Client().Do(req)
	if err != nil {
		a.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			a.t.Fatalf("%s %s: decode response: %v", method, path, err)
		}
	}
	return resp
}

// submit posts a job and fails the test unless the server accepts it.
func (a *api) submit(req serve.JobRequest) serve.SubmitView {
	a.t.Helper()
	var view serve.SubmitView
	resp := a.do("POST", "/v1/jobs", req, &view)
	if resp.StatusCode != http.StatusAccepted {
		a.t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+view.ID {
		a.t.Fatalf("submit: Location %q for job %s", loc, view.ID)
	}
	return view
}

// status fetches a job's status view.
func (a *api) status(id string) serve.StatusView {
	a.t.Helper()
	var view serve.StatusView
	resp := a.do("GET", "/v1/jobs/"+id, nil, &view)
	if resp.StatusCode != http.StatusOK {
		a.t.Fatalf("status %s: status %d", id, resp.StatusCode)
	}
	return view
}

// await polls a job until pred holds or the deadline passes.
func (a *api) await(id string, what string, pred func(serve.StatusView) bool) serve.StatusView {
	a.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := a.status(id)
		if pred(v) {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	a.t.Fatalf("job %s: timed out waiting for %s (last state %+v)", id, what, a.status(id))
	return serve.StatusView{}
}

func stateIs(want serve.State) func(serve.StatusView) bool {
	return func(v serve.StatusView) bool { return v.State == want }
}

// metricValue digs one counter or gauge out of a /metrics snapshot.
func metricValue(t *testing.T, a *api, name string) float64 {
	t.Helper()
	var snap struct {
		Counters map[string]float64 `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	resp := a.do("GET", "/metrics", nil, &snap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if v, ok := snap.Counters[name]; ok {
		return v
	}
	return snap.Gauges[name]
}

// quickJob is a synthesis request that converges almost immediately.
func quickJob(spec string, seed int64) serve.JobRequest {
	return serve.JobRequest{
		Spec: spec,
		Seed: seed,
		GA:   serve.GAParams{PopSize: 12, MaxGenerations: 25, Stagnation: 10},
	}
}

// longJob is a synthesis request sized to run until cancelled.
func longJob(spec string, seed int64) serve.JobRequest {
	return serve.JobRequest{
		Spec: spec,
		Seed: seed,
		GA:   serve.GAParams{PopSize: 48, MaxGenerations: 1_000_000, Stagnation: 1_000_000},
	}
}

// TestLifecycle is the end-to-end happy path the issue demands: two jobs in
// flight on a two-worker pool with a third queued behind them, a mid-run
// cancellation, certified results and a clean drain.
func TestLifecycle(t *testing.T) {
	spec := tinySpec(t)
	long := bigSpec(t)
	s := newServer(t, serve.Config{Workers: 2, QueueDepth: 8})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	a := newAPI(t, s)

	// Two long jobs occupy both workers...
	j1 := a.submit(longJob(long, 1))
	j2 := a.submit(longJob(long, 2))
	a.await(j1.ID, "running", stateIs(serve.StateRunning))
	a.await(j2.ID, "running", stateIs(serve.StateRunning))

	// ...so a third job queues behind them.
	j3 := a.submit(quickJob(spec, 3))
	if v := a.status(j3.ID); v.State != serve.StateQueued {
		t.Fatalf("job %s state = %s, want queued behind the busy pool", j3.ID, v.State)
	}

	// Live progress: the first long job reports advancing generations.
	v := a.await(j1.ID, "progress", func(v serve.StatusView) bool {
		return v.Progress != nil && v.Progress.Generation >= 2
	})
	if v.Progress.BestFitness <= 0 {
		t.Fatalf("job %s progress without fitness: %+v", j1.ID, v.Progress)
	}

	// Cancel both long jobs mid-run; they stop at a generation boundary.
	for _, id := range []string{j1.ID, j2.ID} {
		resp := a.do("DELETE", "/v1/jobs/"+id, nil, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel %s: status %d", id, resp.StatusCode)
		}
	}
	a.await(j1.ID, "cancelled", stateIs(serve.StateCancelled))
	a.await(j2.ID, "cancelled", stateIs(serve.StateCancelled))

	// Cancelling a terminal job is a conflict.
	if resp := a.do("DELETE", "/v1/jobs/"+j1.ID, nil, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel: status %d, want 409", resp.StatusCode)
	}

	// The freed workers run the queued job to certified completion.
	a.await(j3.ID, "done", stateIs(serve.StateDone))
	var res serve.ResultView
	if resp := a.do("GET", "/v1/jobs/"+j3.ID+"/result", nil, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	if res.State != serve.StateDone || !res.Feasible || res.Generations == 0 {
		t.Fatalf("result: %+v", res)
	}
	if res.Certification == nil || !res.Certification.Certified {
		t.Fatalf("job %s finished without certification: %+v", j3.ID, res.Certification)
	}
	if len(res.Modes) != 2 || len(res.Mapping) != 2 {
		t.Fatalf("result has %d modes, %d mappings, want 2/2", len(res.Modes), len(res.Mapping))
	}

	// A cancelled job still serves its best-so-far partial result.
	var part serve.ResultView
	if resp := a.do("GET", "/v1/jobs/"+j1.ID+"/result", nil, &part); resp.StatusCode != http.StatusOK {
		t.Fatalf("partial result: status %d", resp.StatusCode)
	}
	if !part.Partial || part.State != serve.StateCancelled {
		t.Fatalf("partial result: partial=%v state=%s", part.Partial, part.State)
	}

	// The metrics endpoint accounts for everything that happened.
	if got := metricValue(t, a, "serve.jobs_submitted"); got != 3 {
		t.Fatalf("serve.jobs_submitted = %v, want 3", got)
	}
	if got := metricValue(t, a, "serve.jobs_cancelled"); got != 2 {
		t.Fatalf("serve.jobs_cancelled = %v, want 2", got)
	}
	if got := metricValue(t, a, "serve.jobs_done"); got != 1 {
		t.Fatalf("serve.jobs_done = %v, want 1", got)
	}

	// Clean drain: all workers exit well before the deadline.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if resp := a.do("GET", "/readyz", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", resp.StatusCode)
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	if resp := a.do("POST", "/v1/jobs", quickJob(spec, 9), &apiErr); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestSubmitValidation exercises the request-rejection paths.
func TestSubmitValidation(t *testing.T) {
	spec := tinySpec(t)
	s := newServer(t, serve.Config{})
	a := newAPI(t, s) // workers never started: validation needs none

	cases := []struct {
		name string
		body string
		code int
		frag string
	}{
		{"empty", `{}`, http.StatusBadRequest, "one of spec or spec_name"},
		{"both", `{"spec":"x","spec_name":"y"}`, http.StatusBadRequest, "mutually exclusive"},
		{"unknown-field", `{"spec":"x","bogus":1}`, http.StatusBadRequest, "bogus"},
		{"malformed-json", `{"spec":`, http.StatusBadRequest, "request body"},
		{"bad-spec", `{"spec":"pe cpu class=gpp\nfrobnicate"}`, http.StatusBadRequest, "line 2"},
		{"no-spec-dir", `{"spec_name":"mul1"}`, http.StatusBadRequest, "no spec directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(a.ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var apiErr struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.code, apiErr.Error)
			}
			if !strings.Contains(apiErr.Error, tc.frag) {
				t.Fatalf("error %q does not mention %q", apiErr.Error, tc.frag)
			}
		})
	}

	// A valid submission reports the reader's lint warnings.
	warned := strings.Replace(spec, "prob=0.7", "prob=0.6", 1)
	view := a.submit(serve.JobRequest{Spec: warned, Seed: 1})
	if len(view.Warnings) == 0 || !strings.Contains(view.Warnings[0], "normalising") {
		t.Fatalf("warnings = %q, want probability normalisation", view.Warnings)
	}

	// Unknown and malformed job IDs 404 on every job endpoint.
	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/evil..id", "/v1/jobs/j1/result"} {
		if resp := a.do("GET", path, nil, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestBackpressure fills the bounded queue (no workers are draining it) and
// expects 429 with a Retry-After hint, leaving no orphaned job state.
func TestBackpressure(t *testing.T) {
	spec := tinySpec(t)
	s := newServer(t, serve.Config{Workers: 1, QueueDepth: 2})
	a := newAPI(t, s)

	a.submit(quickJob(spec, 1))
	a.submit(quickJob(spec, 2))
	var apiErr struct {
		Error string `json:"error"`
	}
	resp := a.do("POST", "/v1/jobs", quickJob(spec, 3), &apiErr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(apiErr.Error, "queue full") {
		t.Fatalf("error %q", apiErr.Error)
	}
	var list serve.ListView
	a.do("GET", "/v1/jobs", nil, &list)
	if list.Total != 2 {
		t.Fatalf("rejected job leaked into the table: total = %d, want 2", list.Total)
	}
	if got := metricValue(t, a, "serve.jobs_rejected"); got != 1 {
		t.Fatalf("serve.jobs_rejected = %v, want 1", got)
	}
	if got := metricValue(t, a, "serve.queue_depth"); got != 2 {
		t.Fatalf("serve.queue_depth = %v, want 2", got)
	}
}

// TestCancelQueued cancels a job that never reached a worker: it must turn
// terminal on the spot.
func TestCancelQueued(t *testing.T) {
	spec := tinySpec(t)
	s := newServer(t, serve.Config{})
	a := newAPI(t, s)

	j := a.submit(quickJob(spec, 1))
	var view serve.StatusView
	if resp := a.do("DELETE", "/v1/jobs/"+j.ID, nil, &view); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	if view.State != serve.StateCancelled {
		t.Fatalf("state = %s, want cancelled immediately", view.State)
	}
	if resp := a.do("GET", "/v1/jobs/"+j.ID+"/result", nil, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of never-run job: status %d, want 409", resp.StatusCode)
	}
}

// TestListPagination pages through the job listing.
func TestListPagination(t *testing.T) {
	spec := tinySpec(t)
	s := newServer(t, serve.Config{QueueDepth: 16})
	a := newAPI(t, s)
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, a.submit(quickJob(spec, int64(i+1))).ID)
	}
	var list serve.ListView
	a.do("GET", "/v1/jobs?offset=1&limit=2", nil, &list)
	if list.Total != 5 || len(list.Jobs) != 2 {
		t.Fatalf("total %d len %d, want 5/2", list.Total, len(list.Jobs))
	}
	if list.Jobs[0].ID != ids[1] || list.Jobs[1].ID != ids[2] {
		t.Fatalf("page = %s,%s want %s,%s", list.Jobs[0].ID, list.Jobs[1].ID, ids[1], ids[2])
	}
	if resp := a.do("GET", "/v1/jobs?limit=0", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=0: status %d, want 400", resp.StatusCode)
	}
	if resp := a.do("GET", "/v1/jobs?offset=-1", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("offset=-1: status %d, want 400", resp.StatusCode)
	}
}

// TestSpecName resolves named specifications from the configured directory.
func TestSpecName(t *testing.T) {
	specDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(specDir, "tiny.spec"), []byte(tinySpec(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newServer(t, serve.Config{SpecDir: specDir})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	t.Cleanup(func() {
		// Drain before the TempDir cleanup: the worker may still be
		// settling the finished job's directory.
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	})
	a := newAPI(t, s)

	j := a.submit(serve.JobRequest{SpecName: "tiny", Seed: 1, GA: serve.GAParams{PopSize: 12, MaxGenerations: 25, Stagnation: 10}})
	if j.System != "servetest" {
		t.Fatalf("system = %q, want servetest", j.System)
	}
	a.await(j.ID, "done", stateIs(serve.StateDone))

	for _, name := range []string{"../evil", "absent"} {
		resp, err := http.Post(a.ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"spec_name":%q}`, name)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("spec_name %q: status %d, want 400/404", name, resp.StatusCode)
		}
	}
}

// TestRestartResume is the issue's kill-and-restart scenario: a server is
// shut down mid-job; a new server over the same data directory re-queues
// the interrupted job and resumes it from its checkpoint, not generation 0.
func TestRestartResume(t *testing.T) {
	dataDir := t.TempDir()
	long := bigSpec(t)

	s1 := newServer(t, serve.Config{Workers: 1, DataDir: dataDir, CheckpointEvery: 1})
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	s1.Start(ctx1)
	a1 := newAPI(t, s1)

	j := a1.submit(longJob(long, 7))
	quick := a1.submit(quickJob(tinySpec(t), 8)) // waits behind the long job
	a1.await(j.ID, "checkpointed progress", func(v serve.StatusView) bool {
		return v.Progress != nil && v.Progress.Generation >= 3
	})

	// "Kill" the server: drain stops the synthesis at the next generation
	// boundary with a final checkpoint on disk.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s1.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	a1.ts.Close()

	// A new server over the same data dir recovers both jobs as queued.
	s2 := newServer(t, serve.Config{Workers: 1, DataDir: dataDir, CheckpointEvery: 1})
	a2 := newAPI(t, s2)
	v := a2.status(j.ID)
	if v.State != serve.StateQueued {
		t.Fatalf("recovered job state = %s, want queued", v.State)
	}
	if got := metricValue(t, a2, "serve.jobs_requeued"); got != 2 {
		t.Fatalf("serve.jobs_requeued = %v, want 2 (the interrupted and the waiting job)", got)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	s2.Start(ctx2)

	// The resumed run continues from the checkpointed generation.
	v = a2.await(j.ID, "resume", func(v serve.StatusView) bool {
		return v.State == serve.StateRunning && v.ResumedFrom > 0
	})
	if v.ResumedFrom < 3 {
		t.Fatalf("resumed from generation %d, want >= 3", v.ResumedFrom)
	}
	a2.await(j.ID, "post-resume progress", func(v serve.StatusView) bool {
		return v.Progress != nil && v.Progress.Generation > v.ResumedFrom
	})

	// Finish up: cancel the long job, let the queued quick one complete.
	a2.do("DELETE", "/v1/jobs/"+j.ID, nil, nil)
	a2.await(j.ID, "cancelled", stateIs(serve.StateCancelled))
	a2.await(quick.ID, "done", stateIs(serve.StateDone))
	if got := metricValue(t, a2, "serve.jobs_resumed"); got != 1 {
		t.Fatalf("serve.jobs_resumed = %v, want 1", got)
	}

	// The cancelled job's partial result records where it resumed from.
	var res serve.ResultView
	if resp := a2.do("GET", "/v1/jobs/"+j.ID+"/result", nil, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	if res.ResumedFrom < 3 {
		t.Fatalf("result resumed_from = %d, want >= 3", res.ResumedFrom)
	}

	sctx2, scancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel2()
	if err := s2.Shutdown(sctx2); err != nil {
		t.Fatalf("shutdown 2: %v", err)
	}
}

// TestRecoverySkipsCorruptManifests: junk in the data dir must not block
// recovery of the healthy jobs around it.
func TestRecoverySkipsCorruptManifests(t *testing.T) {
	dataDir := t.TempDir()
	spec := tinySpec(t)
	s1 := newServer(t, serve.Config{DataDir: dataDir})
	a1 := newAPI(t, s1)
	j := a1.submit(quickJob(spec, 1))
	a1.ts.Close()

	// Corrupt a sibling job dir and drop a non-job dir next to it.
	bad := filepath.Join(dataDir, "jobs", "j000099")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dataDir, "jobs", "notajob"), 0o755); err != nil {
		t.Fatal(err)
	}

	s2 := newServer(t, serve.Config{DataDir: dataDir})
	a2 := newAPI(t, s2)
	var list serve.ListView
	a2.do("GET", "/v1/jobs", nil, &list)
	if list.Total != 1 || list.Jobs[0].ID != j.ID {
		t.Fatalf("recovered %d jobs (%+v), want just %s", list.Total, list.Jobs, j.ID)
	}
	// The corrupt directory must not poison the ID sequence either: a new
	// submission gets a fresh ID above the recovered one.
	nj := a2.submit(quickJob(spec, 2))
	if nj.ID <= j.ID {
		t.Fatalf("new job ID %s not above recovered %s", nj.ID, j.ID)
	}
}

// TestMetricsRegistrySharing: a caller-supplied registry receives the
// server metrics (mmserved shares one registry across subsystems).
func TestMetricsRegistrySharing(t *testing.T) {
	reg := obs.NewRegistry()
	s := newServer(t, serve.Config{Registry: reg, Workers: 3})
	_ = s
	if got := reg.Gauge("serve.workers").Value(); got != 3 {
		t.Fatalf("serve.workers = %v, want 3", got)
	}
}

// eventually polls cond until it holds or the deadline passes. Counters
// move just after the state transition they describe becomes visible, so
// a test that saw the state may be a beat ahead of the metric.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
