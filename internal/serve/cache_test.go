package serve_test

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"momosyn/internal/obs"
	"momosyn/internal/serve"
)

// cacheServer boots a single-node server with the result cache enabled,
// per-job run tracing on (so a synthesis that runs leaves a trace.jsonl
// with run_start) and lifecycle tracing captured into buf. The returned
// stop drains the server and flushes the buffered lifecycle sink — the
// trace buffer is only complete after calling it; stop is idempotent and
// also registered as a cleanup.
func cacheServer(t *testing.T, dataDir, cacheDir string, trace *bytes.Buffer) (*serve.Server, *api, func()) {
	t.Helper()
	var lifecycle *obs.Run
	if trace != nil {
		lifecycle = obs.NewRun(nil, obs.NewJSONLSink(trace))
	}
	s := newServer(t, serve.Config{
		Workers: 1, QueueDepth: 8,
		DataDir:   dataDir,
		CacheDir:  cacheDir,
		TraceJobs: true,
		Lifecycle: lifecycle,
	})
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer scancel()
			_ = s.Shutdown(sctx)
			if lifecycle != nil {
				lifecycle.Close()
			}
		})
	}
	t.Cleanup(stop)
	return s, newAPI(t, s), stop
}

// TestCacheHitResubmission is the acceptance scenario: resubmitting a
// completed job returns a terminal certified job with ZERO synthesis work
// — no run trace (hence no run_start event), no queue time, cache_hits of
// exactly 1 — and semantically identical spec text (comments, whitespace)
// still hits, while changed options miss.
func TestCacheHitResubmission(t *testing.T) {
	spec := tinySpec(t)
	dataDir := t.TempDir()
	var trace bytes.Buffer
	_, a, stop := cacheServer(t, dataDir, t.TempDir(), &trace)

	first := a.submit(quickJob(spec, 7))
	a.await(first.ID, "done", stateIs(serve.StateDone))
	if first.Cached {
		t.Fatal("first submission claims to be cached")
	}
	if got := metricValue(t, a, "serve.cache_misses"); got != 1 {
		t.Fatalf("serve.cache_misses = %v, want 1", got)
	}
	// The first job ran for real: its trace has a run_start event.
	firstTrace, err := os.ReadFile(filepath.Join(dataDir, "jobs", first.ID, "trace.jsonl"))
	if err != nil {
		t.Fatalf("first job left no run trace: %v", err)
	}
	if !strings.Contains(string(firstTrace), `"run_start"`) {
		t.Fatal("first job's trace has no run_start event; the zero-work check below would be vacuous")
	}
	var firstRes serve.ResultView
	if resp := a.do("GET", "/v1/jobs/"+first.ID+"/result", nil, &firstRes); resp.StatusCode != http.StatusOK {
		t.Fatalf("first result: status %d", resp.StatusCode)
	}
	if firstRes.Certification == nil || !firstRes.Certification.Certified {
		t.Fatal("first job finished without certification; nothing should have been cached")
	}

	// Resubmit the identical request: terminal at submission.
	second := a.submit(quickJob(spec, 7))
	if second.State != serve.StateDone || !second.Cached {
		t.Fatalf("resubmission = state %s cached %v, want done/cached", second.State, second.Cached)
	}
	if got := metricValue(t, a, "serve.cache_hits"); got != 1 {
		t.Fatalf("serve.cache_hits = %v, want 1", got)
	}
	// Zero synthesis work: the cached job owns no run trace at all.
	if _, err := os.Stat(filepath.Join(dataDir, "jobs", second.ID, "trace.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("cached job has a run trace (stat err %v); it must never have run", err)
	}
	var secondRes serve.ResultView
	if resp := a.do("GET", "/v1/jobs/"+second.ID+"/result", nil, &secondRes); resp.StatusCode != http.StatusOK {
		t.Fatalf("cached result: status %d", resp.StatusCode)
	}
	if secondRes.ID != second.ID || secondRes.State != serve.StateDone {
		t.Fatalf("cached result identifies as %s/%s, want %s/done", secondRes.ID, secondRes.State, second.ID)
	}
	if secondRes.AvgPower != firstRes.AvgPower || secondRes.Evaluations != firstRes.Evaluations {
		t.Fatalf("cached result diverges from the original: %v/%d vs %v/%d",
			secondRes.AvgPower, secondRes.Evaluations, firstRes.AvgPower, firstRes.Evaluations)
	}
	if secondRes.Certification == nil || !secondRes.Certification.Certified {
		t.Fatal("cached result lost its certification")
	}

	// A semantically identical textual variant of the spec also hits.
	mutated := "# resubmitted with cosmetic noise\n" + strings.ReplaceAll(spec, "\n", "\n\n") + "\n"
	req := quickJob(mutated, 7)
	third := a.submit(req)
	if third.State != serve.StateDone || !third.Cached {
		t.Fatalf("mutated-spec resubmission = state %s cached %v, want done/cached", third.State, third.Cached)
	}
	if got := metricValue(t, a, "serve.cache_hits"); got != 2 {
		t.Fatalf("serve.cache_hits = %v, want 2", got)
	}

	// A different seed is a different key: it must run for real.
	fourth := a.submit(quickJob(spec, 8))
	if fourth.Cached {
		t.Fatal("different seed served from cache")
	}
	a.await(fourth.ID, "done", stateIs(serve.StateDone))
	if got := metricValue(t, a, "serve.cache_misses"); got != 2 {
		t.Fatalf("serve.cache_misses = %v, want 2", got)
	}

	// The lifecycle stream records the cached admissions as `cached`
	// events, and the cached jobs produce no attempt events. The JSONL
	// sink buffers, so drain the server and flush it before reading.
	stop()
	events, err := obs.ReadEvents(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("lifecycle trace: %v", err)
	}
	for id, wantCached := range map[string]bool{first.ID: false, second.ID: true, third.ID: true} {
		var cached, attempts int
		for _, sp := range jobEvents(t, events, id) {
			switch sp.Event {
			case obs.JobCached:
				cached++
				if sp.State != string(serve.StateDone) {
					t.Errorf("job %s cached event enters %q, want done", id, sp.State)
				}
			case obs.JobAttempt:
				attempts++
			}
		}
		if wantCached && (cached != 1 || attempts != 0) {
			t.Errorf("job %s: %d cached / %d attempt events, want 1/0", id, cached, attempts)
		}
		if !wantCached && cached != 0 {
			t.Errorf("job %s: %d cached events, want 0", id, cached)
		}
	}

	// The cached job survives restarts as a done cached job: same server
	// data dir, fresh server.
	_, b, _ := cacheServer(t, dataDir, t.TempDir(), nil)
	recovered := b.status(second.ID)
	if recovered.State != serve.StateDone || !recovered.Cached {
		t.Fatalf("recovered cached job = state %s cached %v, want done/cached", recovered.State, recovered.Cached)
	}
}

// TestCacheCorruptionLive corrupts the live cache entry under a running
// server — structural byte flip and truncation — and proves each damaged
// entry is evicted and the job re-synthesized, never served.
func TestCacheCorruptionLive(t *testing.T) {
	spec := tinySpec(t)
	cacheDir := t.TempDir()
	_, a, _ := cacheServer(t, t.TempDir(), cacheDir, nil)

	first := a.submit(quickJob(spec, 9))
	a.await(first.ID, "done", stateIs(serve.StateDone))

	entry := findCacheEntry(t, cacheDir)
	pristine, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string][]byte{
		"byte-flip":  append([]byte("X"), pristine[1:]...),
		"truncation": pristine[:len(pristine)/2],
	}
	expectCorrupt := uint64(0)
	for name, damaged := range corruptions {
		if err := os.WriteFile(entry, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		j := a.submit(quickJob(spec, 9))
		if j.Cached || j.State == serve.StateDone {
			t.Fatalf("%s: damaged entry was served (state %s cached %v)", name, j.State, j.Cached)
		}
		expectCorrupt++
		if got := metricValue(t, a, "serve.cache_corrupt"); got != float64(expectCorrupt) {
			t.Fatalf("%s: serve.cache_corrupt = %v, want %d", name, got, expectCorrupt)
		}
		// The re-run must complete and republish the entry...
		a.await(j.ID, "re-synthesized", stateIs(serve.StateDone))
		if _, err := os.Stat(entry); err != nil {
			t.Fatalf("%s: entry not republished after re-run: %v", name, err)
		}
		// ...and the republished entry serves the next resubmission.
		again := a.submit(quickJob(spec, 9))
		if !again.Cached {
			t.Fatalf("%s: resubmission after re-run missed the cache", name)
		}
	}
}

// findCacheEntry returns the single .json entry file in the cache dir.
func findCacheEntry(t *testing.T, cacheDir string) string {
	t.Helper()
	var entry string
	err := filepath.WalkDir(cacheDir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			if entry != "" {
				t.Fatalf("multiple cache entries: %s and %s", entry, path)
			}
			entry = path
		}
		return err
	})
	if err != nil || entry == "" {
		t.Fatalf("no cache entry found under %s (err %v)", cacheDir, err)
	}
	return entry
}

// TestFleetCacheSharing proves the fleet-wide cache: a result computed on
// node A is a terminal cache hit for the same submission on node B, with
// the result document served through the shared fleet directory.
func TestFleetCacheSharing(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(t)

	_, a := fleetServer(t, dir, "nodeA", serve.Config{Workers: 1})
	first := a.submit(quickJob(spec, 21))
	a.await(first.ID, "done on nodeA", stateIs(serve.StateDone))

	_, b := fleetServer(t, dir, "nodeB", serve.Config{Workers: 1})
	second := b.submit(quickJob(spec, 21))
	if second.State != serve.StateDone || !second.Cached {
		t.Fatalf("nodeB resubmission = state %s cached %v, want done/cached", second.State, second.Cached)
	}
	if got := metricValue(t, b, "serve.cache_hits"); got != 1 {
		t.Fatalf("nodeB serve.cache_hits = %v, want 1", got)
	}
	var res serve.ResultView
	if resp := b.do("GET", "/v1/jobs/"+second.ID+"/result", nil, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("cached fleet result: status %d", resp.StatusCode)
	}
	if res.Certification == nil || !res.Certification.Certified {
		t.Fatal("cached fleet result lost its certification")
	}
	// Node A adopts the cached job from the shared directory as done.
	eventually(t, "nodeA adopts the cached job", func() bool {
		var v serve.StatusView
		if resp := a.do("GET", "/v1/jobs/"+second.ID, nil, &v); resp.StatusCode != http.StatusOK {
			return false
		}
		return v.State == serve.StateDone && v.Cached
	})
}

// TestCacheDisabledByDefault pins the opt-in contract: without CacheDir a
// single-node server never caches, and identical resubmissions run twice.
func TestCacheDisabledByDefault(t *testing.T) {
	spec := tinySpec(t)
	s := newServer(t, serve.Config{Workers: 1, QueueDepth: 8})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	})
	a := newAPI(t, s)

	first := a.submit(quickJob(spec, 5))
	a.await(first.ID, "done", stateIs(serve.StateDone))
	second := a.submit(quickJob(spec, 5))
	if second.Cached || second.State == serve.StateDone {
		t.Fatalf("cache served without CacheDir: state %s cached %v", second.State, second.Cached)
	}
	a.await(second.ID, "done", stateIs(serve.StateDone))
	if got := metricValue(t, a, "serve.jobs_done"); got != 2 {
		t.Fatalf("serve.jobs_done = %v, want 2 (both ran)", got)
	}
}
