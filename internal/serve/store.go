package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"momosyn/internal/fleet"
)

// manifest is the on-disk record of one job, written atomically on every
// state transition so a killed server can reconstruct its job table. The
// resolved spec text is embedded: recovery never needs the spec directory
// the job was submitted against.
type manifest struct {
	ID       string     `json:"id"`
	Request  JobRequest `json:"request"`
	System   string     `json:"system,omitempty"`
	State    State      `json:"state"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  time.Time  `json:"started,omitempty"`
	Finished time.Time  `json:"finished,omitempty"`
	// ResumedFrom records the checkpoint generation the last run continued
	// from, so restart semantics stay observable across restarts.
	ResumedFrom int `json:"resumed_from,omitempty"`
	// Node and Epoch record fleet provenance: which node wrote this
	// manifest under which lease epoch. Both are zero in single-node mode,
	// keeping its manifests byte-identical to earlier releases.
	Node  string `json:"node,omitempty"`
	Epoch int    `json:"epoch,omitempty"`
}

const (
	manifestFile   = "manifest.json"
	checkpointFile = "job.ckpt"
	resultFile     = "result.json"
	traceFile      = "trace.jsonl"
)

// jobDir returns the directory owning the job's artefacts.
func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.DataDir, "jobs", id)
}

// writeFileAtomic writes data to path via a temp file and rename, the same
// crash discipline runctl uses for checkpoints. The parent directory is
// fsynced after the rename: without it a crash can lose the rename itself
// (the data is durable but the directory entry is not), resurrecting the
// old file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// persist writes the job's manifest. Persistence failures are logged, not
// fatal: the in-memory job table keeps serving, the job merely loses
// restart durability. In fleet mode the write goes through the lease
// fence instead.
func (s *Server) persist(j *Job) {
	if s.fleetStore != nil {
		s.fleetPersist(j)
		return
	}
	snap := j.snapshot()
	m := manifest{
		ID:          j.ID,
		Request:     j.Request,
		System:      j.system,
		State:       snap.State,
		Error:       snap.Err,
		Created:     snap.Created,
		Started:     snap.Started,
		Finished:    snap.Finished,
		ResumedFrom: snap.ResumedFrom,
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err == nil {
		err = writeFileAtomic(filepath.Join(j.dir, manifestFile), data)
	}
	if err != nil {
		s.logf("serve: job %s: persist manifest: %v", j.ID, err)
	}
}

// persistResult stores the rendered result document next to the manifest
// so terminal jobs keep serving their result across restarts. Fleet mode
// writes it through the lease fence at the lease's epoch.
func (s *Server) persistResult(j *Job, doc []byte) {
	var err error
	if s.fleetStore != nil {
		j.mu.Lock()
		lease := j.lease
		j.mu.Unlock()
		if lease == nil {
			return
		}
		err = lease.Write(fleet.KindResult, doc)
	} else {
		err = writeFileAtomic(filepath.Join(j.dir, resultFile), doc)
	}
	if err != nil {
		s.logf("serve: job %s: persist result: %v", j.ID, err)
	}
}

// loadResult returns the persisted result document, or nil.
func (j *Job) loadResult() []byte {
	data, err := os.ReadFile(filepath.Join(j.dir, resultFile))
	if err != nil {
		return nil
	}
	return data
}

// recover scans the data directory and rebuilds the job table: terminal
// jobs come back for listing and result serving; queued and running jobs
// are re-queued (running ones were interrupted — they resume from their
// checkpoint when one exists). It returns the jobs to enqueue, in ID
// order, and the highest sequence number seen.
func (s *Server) recoverJobs() (requeue []*Job, maxSeq int, err error) {
	root := filepath.Join(s.cfg.DataDir, "jobs")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, 0, fmt.Errorf("serve: data dir: %w", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: data dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && validJobID(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(root, name)
		data, err := os.ReadFile(filepath.Join(dir, manifestFile))
		if err != nil {
			s.logf("serve: recovery: %s: no readable manifest, skipping: %v", name, err)
			continue
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.ID != name || !m.State.valid() {
			s.logf("serve: recovery: %s: corrupt manifest, skipping", name)
			continue
		}
		if n, err := strconv.Atoi(name[1:]); err == nil && n > maxSeq {
			maxSeq = n
		}
		j := &Job{ID: m.ID, Request: m.Request, dir: dir, system: m.System}
		j.created = m.Created
		j.resumedFrom = m.ResumedFrom
		j.err = m.Error
		switch m.State {
		case StateDone, StateFailed, StateCancelled:
			j.state = m.State
			j.started = m.Started
			j.finished = m.Finished
		case StateQueued, StateRunning:
			// An interrupted run: back to the queue. The worker decides
			// between resume and fresh start when it finds (or fails to
			// load) the job's checkpoint.
			j.state = StateQueued
			s.reg.Counter("serve.jobs_requeued").Inc()
			requeue = append(requeue, j)
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	return requeue, maxSeq, nil
}
