package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"momosyn/internal/fleet"
)

// manifest is the on-disk record of one job, written atomically on every
// state transition so a killed server can reconstruct its job table. The
// resolved spec text is embedded: recovery never needs the spec directory
// the job was submitted against.
type manifest struct {
	ID       string     `json:"id"`
	Request  JobRequest `json:"request"`
	System   string     `json:"system,omitempty"`
	State    State      `json:"state"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  time.Time  `json:"started,omitempty"`
	Finished time.Time  `json:"finished,omitempty"`
	// ResumedFrom records the checkpoint generation the last run continued
	// from, so restart semantics stay observable across restarts.
	ResumedFrom int `json:"resumed_from,omitempty"`
	// Attempts counts failed executions of this job so far; it is carried
	// through restarts and fleet steals so a poison job exhausts its budget
	// fleet-wide, not per node. NotBefore (a pointer so the happy path
	// omits it — time.Time has no empty encoding) delays the next retry.
	// Both are absent for jobs that never failed, keeping their manifests
	// byte-identical to earlier releases.
	Attempts  int        `json:"attempts,omitempty"`
	NotBefore *time.Time `json:"not_before,omitempty"`
	// Node and Epoch record fleet provenance: which node wrote this
	// manifest under which lease epoch. Both are zero in single-node mode,
	// keeping its manifests byte-identical to earlier releases.
	Node  string `json:"node,omitempty"`
	Epoch int    `json:"epoch,omitempty"`
	// Cached marks a job answered from the content-addressed result cache;
	// absent for jobs that ran, keeping their manifests byte-identical to
	// earlier releases.
	Cached bool `json:"cached,omitempty"`
}

// manifestRetry renders the job's retry fields for a manifest.
func manifestRetry(snap jobSnapshot) (int, *time.Time) {
	var nb *time.Time
	if !snap.NotBefore.IsZero() {
		t := snap.NotBefore
		nb = &t
	}
	return snap.Attempts, nb
}

const (
	manifestFile   = "manifest.json"
	checkpointFile = "job.ckpt"
	resultFile     = "result.json"
	traceFile      = "trace.jsonl"
)

// jobDir returns the directory owning the job's artefacts.
func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.DataDir, "jobs", id)
}

// writeFileAtomic writes data to path via a temp file and rename, the same
// crash discipline runctl uses for checkpoints. The parent directory is
// fsynced after the rename: without it a crash can lose the rename itself
// (the data is durable but the directory entry is not), resurrecting the
// old file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// persist writes the job's manifest. Persistence failures are logged, not
// fatal: the in-memory job table keeps serving, the job merely loses
// restart durability. In fleet mode the write goes through the lease
// fence instead.
func (s *Server) persist(j *Job) { s.persistSnap(j, j.snapshot()) }

// persistSnap is persist with an explicit snapshot, for the worker's
// terminal path where the manifest must carry the job's final state while
// the in-memory job still hides it.
func (s *Server) persistSnap(j *Job, snap jobSnapshot) {
	if s.fleetStore != nil {
		s.fleetPersistSnap(j, snap)
		return
	}
	m := manifest{
		ID:          j.ID,
		Request:     j.Request,
		System:      j.system,
		State:       snap.State,
		Error:       snap.Err,
		Created:     snap.Created,
		Started:     snap.Started,
		Finished:    snap.Finished,
		ResumedFrom: snap.ResumedFrom,
		Cached:      snap.Cached,
	}
	m.Attempts, m.NotBefore = manifestRetry(snap)
	data, err := json.MarshalIndent(&m, "", "  ")
	if err == nil {
		err = writeFileAtomic(filepath.Join(j.dir, manifestFile), data)
	}
	if err != nil {
		s.logf("serve: job %s: persist manifest: %v", j.ID, err)
	}
}

// persistResult stores the rendered result document next to the manifest
// so terminal jobs keep serving their result across restarts. Fleet mode
// writes it through the lease fence at the lease's epoch.
func (s *Server) persistResult(j *Job, doc []byte) {
	var err error
	if s.fleetStore != nil {
		j.mu.Lock()
		lease := j.lease
		j.mu.Unlock()
		if lease == nil {
			return
		}
		err = lease.Write(fleet.KindResult, doc)
	} else {
		err = writeFileAtomic(filepath.Join(j.dir, resultFile), doc)
	}
	if err != nil {
		s.logf("serve: job %s: persist result: %v", j.ID, err)
	}
}

// loadResult returns the persisted result document, or nil.
func (j *Job) loadResult() []byte {
	data, err := os.ReadFile(filepath.Join(j.dir, resultFile))
	if err != nil {
		return nil
	}
	return data
}

// recover scans the data directory and rebuilds the job table: terminal
// jobs come back for listing and result serving; queued and running jobs
// are re-queued (running ones were interrupted — they resume from their
// checkpoint when one exists). It returns the jobs to enqueue, in ID
// order, and the highest sequence number seen.
func (s *Server) recoverJobs() (requeue []*Job, maxSeq int, err error) {
	root := filepath.Join(s.cfg.DataDir, "jobs")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, 0, fmt.Errorf("serve: data dir: %w", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, 0, fmt.Errorf("serve: data dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && validJobID(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	skipped := s.reg.Counter("serve.manifests_skipped")
	for _, name := range names {
		dir := filepath.Join(root, name)
		path := filepath.Join(dir, manifestFile)
		data, err := os.ReadFile(path)
		if err != nil {
			s.logf("serve: recovery: skipping %s: unreadable manifest: %v", path, err)
			skipped.Inc()
			continue
		}
		var m manifest
		if reason := decodeManifest(data, name, &m); reason != "" {
			s.logf("serve: recovery: skipping %s: %s", path, reason)
			skipped.Inc()
			continue
		}
		if n, err := strconv.Atoi(name[1:]); err == nil && n > maxSeq {
			maxSeq = n
		}
		j := &Job{ID: m.ID, Request: m.Request, dir: dir, system: m.System}
		j.created = m.Created
		j.cached = m.Cached
		j.resumedFrom = m.ResumedFrom
		j.attempts = m.Attempts
		if m.NotBefore != nil {
			j.notBefore = *m.NotBefore
		}
		j.err = m.Error
		switch m.State {
		case StateDone, StateFailed, StateCancelled, StateQuarantined:
			j.state = m.State
			j.started = m.Started
			j.finished = m.Finished
		case StateQueued, StateRunning:
			// An interrupted run: the execution that was in flight died with
			// the process and counts against the attempt budget. A job whose
			// budget is spent is quarantined here instead of re-queued —
			// this is what stops a poison job that kills the server from
			// crash-looping across restarts forever.
			if m.State == StateRunning {
				j.attempts++
			}
			if j.attempts >= s.cfg.MaxAttempts {
				j.state = StateQuarantined
				j.started = m.Started
				j.finished = time.Now()
				j.err = quarantineCause(j.attempts, fmt.Errorf("attempt died with the server (last error: %s)", orNone(m.Error)))
				s.reg.Counter("serve.jobs_quarantined").Inc()
				s.quarWindow.record(time.Now())
				s.logf("serve: recovery: job %s quarantined after %d attempts", j.ID, j.attempts)
				s.persistRecovered(j)
				break
			}
			// Back to the queue. The worker decides between resume and
			// fresh start when it finds (or fails to load) the checkpoint.
			j.state = StateQueued
			if m.State == StateRunning {
				s.persistRecovered(j) // make the consumed attempt durable
			}
			s.reg.Counter("serve.jobs_requeued").Inc()
			requeue = append(requeue, j)
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	return requeue, maxSeq, nil
}

// decodeManifest validates a recovered manifest, returning a human-readable
// rejection reason ("" when the manifest is usable).
func decodeManifest(data []byte, name string, m *manifest) string {
	if err := json.Unmarshal(data, m); err != nil {
		return fmt.Sprintf("corrupt manifest: %v", err)
	}
	if m.ID != name {
		return fmt.Sprintf("corrupt manifest: names job %q", m.ID)
	}
	if !m.State.valid() {
		return fmt.Sprintf("corrupt manifest: unknown state %q", m.State)
	}
	return ""
}

// persistRecovered persists a state decision made during recovery. It runs
// before the fleet/single-node split matters (recovery is single-node only)
// and before the job is visible, so a plain persist is safe.
func (s *Server) persistRecovered(j *Job) { s.persist(j) }

func orNone(s string) string {
	if s == "" {
		return "none recorded"
	}
	return s
}
