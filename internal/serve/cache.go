package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"

	"momosyn/internal/cas"
	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/specio"
	"momosyn/internal/synth"
)

// The content-addressed result cache. Synthesis is deterministic given
// (spec, seed, options), so a completed certified job publishes its result
// document under cas.Key(canonical spec, canonical options, engine
// version) and every later submission of a semantically identical request
// is answered terminally at admission — zero queue time, zero synthesis
// work. In fleet mode the cache directory lives inside the fleet dir, so
// a result computed by any node is a hit on every node. See docs/CACHE.md.

// keyOptions builds the result-shaping synth.Options a request resolves
// to. It is the single source of truth shared by the cache key and the
// worker (synthesize adds only runtime plumbing on top), so a cached
// result can never be served for options that would have run differently.
func keyOptions(req *JobRequest) synth.Options {
	return synth.Options{
		UseDVS:               req.DVS,
		NeglectProbabilities: req.NeglectProbabilities,
		RefineIterations:     req.RefineIterations,
		StallWindow:          req.StallWindow,
		GA: ga.Config{
			PopSize:        req.GA.PopSize,
			MaxGenerations: req.GA.MaxGenerations,
			Stagnation:     req.GA.Stagnation,
		},
		Seed:    req.Seed,
		Certify: req.certify(),
	}
}

// cacheKey derives the request's content address, or ok=false when the
// request is uncacheable (no cache configured, or a failpoint drill —
// injected faults must actually run).
func (s *Server) cacheKey(sys *model.System, req *JobRequest) (string, bool) {
	if s.cache == nil || req.Failpoint != "" {
		return "", false
	}
	canon, err := specio.Canonical(sys)
	if err != nil {
		return "", false
	}
	return cas.Key(canon, synth.CanonicalOptions(keyOptions(req)), []byte(synth.EngineVersion)), true
}

// buildCommit is the VCS revision baked into the binary, for cache entry
// provenance; empty outside a VCS-stamped build.
func buildCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, setting := range bi.Settings {
			if setting.Key == "vcs.revision" {
				return setting.Value
			}
		}
	}
	return ""
}

// rewriteCachedResult rebinds a cached result document to the job serving
// it: fresh ID, done state, no resume provenance (the serving job never
// ran). Everything else — implementation, power, certification, the
// original run's statistics — is preserved.
func rewriteCachedResult(raw json.RawMessage, id string) ([]byte, error) {
	var v ResultView
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	v.ID = id
	v.State = StateDone
	v.ResumedFrom = 0
	return json.MarshalIndent(&v, "", "  ")
}

// materializeCached answers a submission from a cache hit: it creates a
// job that is terminal from birth and persists it exactly like a completed
// run (same manifest and result layout, so restarts and fleet peers see a
// normal done job). It returns (nil, nil) — no job, no error — when the
// hit could not be materialised; the caller then falls through to a normal
// run. A draining server refuses with the usual 503.
func (s *Server) materializeCached(req JobRequest, system string, e *cas.Entry) (*Job, *admitError) {
	now := time.Now()
	var j *Job
	if s.fleetStore != nil {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return nil, admitErrorf(http.StatusServiceUnavailable, "server is shutting down")
		}
		id, err := s.fleetStore.NewJobID()
		if err != nil {
			s.logf("serve: cache hit for %s discarded: job id: %v", system, err)
			return nil, nil
		}
		j = &Job{ID: id, Request: req, system: system}
		j.state = StateDone
		j.cached = true
		j.created, j.finished = now, now
		j.node = s.cfg.NodeID
		doc, err := rewriteCachedResult(e.Result, id)
		if err != nil {
			s.logf("serve: cache hit for %s discarded: result document: %v", system, err)
			return nil, nil
		}
		spec, err := json.MarshalIndent(&req, "", "  ")
		if err != nil {
			return nil, nil
		}
		man, err := s.fleetManifest(j, j.snapshot(), 0)
		if err != nil {
			return nil, nil
		}
		if err := s.fleetStore.CreateDoneJob(id, spec, man, doc); err != nil {
			s.logf("serve: cache hit for %s discarded: publish: %v", system, err)
			return nil, nil
		}
		s.mu.Lock()
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.jobsByState()
		s.mu.Unlock()
	} else {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil, admitErrorf(http.StatusServiceUnavailable, "server is shutting down")
		}
		id := jobID(s.seq + 1)
		doc, err := rewriteCachedResult(e.Result, id)
		if err != nil {
			s.mu.Unlock()
			s.logf("serve: cache hit for %s discarded: result document: %v", system, err)
			return nil, nil
		}
		j = &Job{ID: id, Request: req, dir: s.jobDir(id), system: system}
		j.state = StateDone
		j.cached = true
		j.created, j.finished = now, now
		if err := os.MkdirAll(j.dir, 0o755); err != nil {
			s.mu.Unlock()
			s.logf("serve: cache hit for %s discarded: job dir: %v", system, err)
			return nil, nil
		}
		if err := writeFileAtomic(filepath.Join(j.dir, resultFile), doc); err != nil {
			s.mu.Unlock()
			os.RemoveAll(j.dir)
			s.logf("serve: cache hit for %s discarded: persist result: %v", system, err)
			return nil, nil
		}
		s.persist(j)
		s.seq++
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.jobsByState()
		s.mu.Unlock()
	}
	s.reg.Counter("serve.jobs_submitted").Inc()
	if s.lifecycleTracing() {
		s.emitJobSpan(obs.JobEvent{Job: j.ID, Event: obs.JobCached,
			State: string(StateDone), Node: s.cfg.NodeID,
			Detail: fmt.Sprintf("key %.12s", e.Key)})
	}
	return j, nil
}

// cachePublish stores a completed job's certified result document in the
// cache (worker path). Only full, certified runs are published: a partial
// or uncertified result must never short-circuit a future submission.
func (s *Server) cachePublish(j *Job, sys *model.System, res *synth.Result, doc []byte) {
	if s.cache == nil || res == nil || res.Partial {
		return
	}
	if res.Certification == nil || !res.Certification.Certified() {
		return
	}
	key, ok := s.cacheKey(sys, &j.Request)
	if !ok {
		return
	}
	err := s.cache.Put(&cas.Entry{
		Key:    key,
		System: sys.App.Name,
		Provenance: cas.Provenance{
			EngineVersion: synth.EngineVersion,
			Commit:        buildCommit(),
			Certified:     true,
		},
		Result: doc,
	})
	if err != nil {
		s.logf("serve: job %s: cache publish: %v", j.ID, err)
	}
}
