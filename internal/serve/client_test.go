package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"momosyn/internal/serve"
)

func testClient(url string) *serve.Client {
	return &serve.Client{
		BaseURL:   url,
		BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}
}

// TestClientRetriesBackpressure pins the transient-status behaviour: 429
// (with Retry-After) and 503 answers are retried until the server relents.
func TestClientRetriesBackpressure(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"id":"j000001","state":"queued"}`)
		}
	}))
	defer ts.Close()

	view, err := testClient(ts.URL).Submit(context.Background(), serve.JobRequest{Spec: "x"})
	if err != nil {
		t.Fatalf("Submit through backpressure: %v", err)
	}
	if view.ID != "j000001" {
		t.Fatalf("view = %+v", view)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (429, 503, 200)", got)
	}
}

// TestClientDoesNotRetryRealAnswers pins that non-transient statuses are
// the caller's answer, not something to hammer the server over.
func TestClientDoesNotRetryRealAnswers(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	_, err := testClient(ts.URL).Status(context.Background(), "j000009")
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("error = %v, want StatusError 404", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 404, want 1", got)
	}
}

// TestClientGivesUpAfterMaxAttempts bounds the retry loop on a server
// that never stops shedding load.
func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := testClient(ts.URL)
	c.MaxAttempts = 3
	_, err := c.Submit(context.Background(), serve.JobRequest{Spec: "x"})
	if err == nil {
		t.Fatal("Submit against permanent 429 succeeded")
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want MaxAttempts=3", got)
	}
}

// TestClientRetriesConnectionErrors points the client at a dead address:
// every attempt is a connection error, retried up to the bound.
func TestClientRetriesConnectionErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens here any more

	c := testClient(url)
	c.MaxAttempts = 2
	start := time.Now()
	if _, err := c.Status(context.Background(), "j000001"); err == nil {
		t.Fatal("Status against a dead server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dead-server retries took %v, want fast capped backoff", elapsed)
	}
}

// TestClientHonoursContext cancels mid-backoff: the client must stop
// retrying immediately instead of sleeping out its schedule.
func TestClientHonoursContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := testClient(ts.URL)
	c.MaxDelay = 10 * time.Second
	c.BaseDelay = 10 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Submit(ctx, serve.JobRequest{Spec: "x"})
	if err == nil {
		t.Fatal("cancelled Submit succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// TestClientWaitTerminal polls through the lifecycle to a terminal state.
func TestClientWaitTerminal(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		state := "running"
		if hits.Add(1) >= 3 {
			state = "done"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"id": "j000001", "state": state})
	}))
	defer ts.Close()

	v, err := testClient(ts.URL).WaitTerminal(context.Background(), "j000001", time.Millisecond)
	if err != nil {
		t.Fatalf("WaitTerminal: %v", err)
	}
	if v.State != serve.StateDone {
		t.Fatalf("terminal state = %s, want done", v.State)
	}
	if hits.Load() < 3 {
		t.Fatalf("WaitTerminal returned after %d polls, want >= 3", hits.Load())
	}
}

// TestClientWaitTerminalQuarantined: quarantined is terminal to the
// client — WaitTerminal must return it, not poll it forever.
func TestClientWaitTerminalQuarantined(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		state := "queued"
		if hits.Add(1) >= 2 {
			state = "quarantined"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"id": "j000001", "state": state, "attempts": 3})
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err := testClient(ts.URL).WaitTerminal(ctx, "j000001", time.Millisecond)
	if err != nil {
		t.Fatalf("WaitTerminal: %v", err)
	}
	if v.State != serve.StateQuarantined || v.Attempts != 3 {
		t.Fatalf("terminal view = %+v, want quarantined with 3 attempts", v)
	}
}

// TestClientResponseTooLarge: an oversized answer is a typed, terminal
// error — detected, not truncated into undecodable JSON, and not retried
// (a retry cannot shrink the response).
func TestClientResponseTooLarge(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		chunk := bytes.Repeat([]byte("x"), 1<<20)
		for written := 0; written <= serve.MaxResponseBytes; written += len(chunk) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	}))
	defer ts.Close()

	_, err := testClient(ts.URL).Result(context.Background(), "j000001")
	if !errors.Is(err, serve.ErrResponseTooLarge) {
		t.Fatalf("err = %v, want ErrResponseTooLarge", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no retry of a size overrun)", got)
	}
}
