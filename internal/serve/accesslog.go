package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// accessRecord is one line of the structured JSON access log.
type accessRecord struct {
	Time   string `json:"time"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	// DurationMS is the handler wall time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	Bytes      int64   `json:"bytes,omitempty"`
	// Job is the job the request addressed ({id} routes) or created
	// (POST /v1/jobs, read back from the Location header); empty for
	// job-less endpoints.
	Job    string `json:"job,omitempty"`
	Remote string `json:"remote,omitempty"`
}

// accessLogger writes one JSON line per handled request. Lines are
// marshalled outside the lock; the mutex only serialises the final write
// so concurrent requests never interleave bytes.
type accessLogger struct {
	mu   sync.Mutex
	w    io.Writer
	next http.Handler
}

func newAccessLogger(w io.Writer, next http.Handler) http.Handler {
	return &accessLogger{w: w, next: next}
}

func (l *accessLogger) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w}
	start := time.Now()
	l.next.ServeHTTP(rec, r)
	line := accessRecord{
		Time:       start.UTC().Format(time.RFC3339Nano),
		Method:     r.Method,
		Path:       r.URL.Path,
		Status:     rec.Status(),
		DurationMS: float64(time.Since(start).Nanoseconds()) / 1e6,
		Bytes:      rec.bytes,
		Job:        requestJobID(r, rec),
		Remote:     r.RemoteAddr,
	}
	data, err := json.Marshal(line)
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(data)
	l.mu.Unlock()
}

// requestJobID extracts the job a request was about: the {id} path value
// the mux bound during routing, or — for submissions — the id of the job
// the handler created, read back from its Location header.
func requestJobID(r *http.Request, rec *statusRecorder) string {
	if id := r.PathValue("id"); id != "" {
		return id
	}
	if loc := rec.Header().Get("Location"); loc != "" {
		if id, ok := strings.CutPrefix(loc, "/v1/jobs/"); ok {
			return id
		}
	}
	return ""
}

// statusRecorder captures the response status and body size while passing
// Flush and Hijack through to the underlying writer (the metrics endpoint
// hijacks the connection to signal a failed snapshot write).
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (s *statusRecorder) Status() int {
	if s.status == 0 {
		return http.StatusOK
	}
	return s.status
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	n, err := s.ResponseWriter.Write(p)
	s.bytes += int64(n)
	return n, err
}

func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := s.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, errors.New("serve: underlying ResponseWriter does not support hijacking")
}
