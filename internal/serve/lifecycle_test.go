package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"momosyn/internal/serve"
)

// failingJob is a quick job carrying a fault injection.
func failingJob(spec string, seed int64, failpoint string) serve.JobRequest {
	req := quickJob(spec, seed)
	req.Failpoint = failpoint
	return req
}

// startServer builds and starts a server whose workers stop at test end.
// Cleanup drains the pool rather than just cancelling: a worker still
// persisting a job after the test returns would race the TempDir removal
// and log into a completed test.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *api) {
	t.Helper()
	s := newServer(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(func() {
		cancel()
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer dcancel()
		if err := s.Shutdown(dctx); err != nil {
			t.Errorf("draining server at test end: %v", err)
		}
	})
	s.Start(ctx)
	return s, newAPI(t, s)
}

// TestRetryThenSuccess: a transient failure consumes one attempt, the job
// retries after its backoff and completes. The persisted attempt counter
// and retry metrics must both tell that story.
func TestRetryThenSuccess(t *testing.T) {
	spec := tinySpec(t)
	_, a := startServer(t, serve.Config{
		Workers: 1, QueueDepth: 8,
		MaxAttempts: 3, RetryBackoff: time.Millisecond,
		Failpoints: true,
	})

	// fail:1 fails while the attempt counter is below 1, then heals.
	j := a.submit(failingJob(spec, 11, "fail:1"))
	v := a.await(j.ID, "done after one retry", stateIs(serve.StateDone))
	if v.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (one failed execution)", v.Attempts)
	}
	if got := metricValue(t, a, "serve.jobs_retried"); got != 1 {
		t.Fatalf("serve.jobs_retried = %v, want 1", got)
	}
	if got := metricValue(t, a, "serve.attempts_total"); got != 2 {
		t.Fatalf("serve.attempts_total = %v, want 2", got)
	}
	if got := metricValue(t, a, "serve.jobs_quarantined"); got != 0 {
		t.Fatalf("serve.jobs_quarantined = %v, want 0", got)
	}
	// The healed job has a real result.
	if resp := a.do("GET", "/v1/jobs/"+j.ID+"/result", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("result after retry: status %d", resp.StatusCode)
	}
}

// TestRetryAtExposedWhileBackingOff: between a failed attempt and its
// retry the status view names the time the job becomes runnable again.
func TestRetryAtExposedWhileBackingOff(t *testing.T) {
	spec := tinySpec(t)
	_, a := startServer(t, serve.Config{
		Workers: 1, QueueDepth: 8,
		MaxAttempts: 3, RetryBackoff: 30 * time.Second, // parked, effectively
		Failpoints: true,
	})

	j := a.submit(failingJob(spec, 12, "fail"))
	v := a.await(j.ID, "queued for retry", func(v serve.StatusView) bool {
		return v.State == serve.StateQueued && v.Attempts == 1
	})
	if v.RetryAt == "" {
		t.Fatalf("backing-off job exposes no retry_at: %+v", v)
	}
	at, err := time.Parse(time.RFC3339Nano, v.RetryAt)
	if err != nil {
		t.Fatalf("retry_at %q: %v", v.RetryAt, err)
	}
	if until := time.Until(at); until <= 0 || until > 31*time.Second {
		t.Fatalf("retry_at %v from now, want within (0, 31s]", until)
	}
	if v.Error == "" {
		t.Fatalf("backing-off job hides its last failure: %+v", v)
	}
}

// TestPoisonJobQuarantined: a job that fails every execution must land in
// quarantined after exactly MaxAttempts executions — terminal, counted,
// with the last failure recorded — and must degrade readiness.
func TestPoisonJobQuarantined(t *testing.T) {
	spec := tinySpec(t)
	_, a := startServer(t, serve.Config{
		Workers: 1, QueueDepth: 8,
		MaxAttempts: 2, RetryBackoff: time.Millisecond,
		Failpoints:                 true,
		QuarantineDegradeThreshold: 1,
	})

	j := a.submit(failingJob(spec, 13, "panic"))
	v := a.await(j.ID, "quarantined", stateIs(serve.StateQuarantined))
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want exactly the budget of 2", v.Attempts)
	}
	if !strings.Contains(v.Error, "quarantined after 2 failed attempts") {
		t.Fatalf("quarantine cause not recorded: %q", v.Error)
	}
	if got := metricValue(t, a, "serve.attempts_total"); got != 2 {
		t.Fatalf("serve.attempts_total = %v, want 2 (budget exhausted, no third run)", got)
	}
	eventually(t, "serve.jobs_quarantined = 1", func() bool {
		return metricValue(t, a, "serve.jobs_quarantined") == 1
	})
	if got := metricValue(t, a, "serve.jobs_retried"); got != 1 {
		t.Fatalf("serve.jobs_retried = %v, want 1 (only the first failure retried)", got)
	}

	// Quarantined is terminal: no result, no cancellation, state stable.
	if resp := a.do("GET", "/v1/jobs/"+j.ID+"/result", nil, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of quarantined job: status %d, want 409", resp.StatusCode)
	}
	if resp := a.do("DELETE", "/v1/jobs/"+j.ID, nil, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of quarantined job: status %d, want 409", resp.StatusCode)
	}

	eventually(t, "readyz degraded by the quarantine", func() bool {
		var ready serve.ReadyView
		a.do("GET", "/readyz", nil, &ready)
		return ready.Status == "degraded" && ready.QuarantinedLastMinute >= 1
	})

	// The pool is not poisoned: a healthy job behind the quarantine runs.
	good := a.submit(quickJob(spec, 14))
	a.await(good.ID, "healthy job done", stateIs(serve.StateDone))
}

// TestRecoveryQuarantinesCrashLoop: a running manifest whose attempt
// budget dies with the server must come back quarantined — without a
// single further execution. This is the restart half of the crash-loop
// defence: the process that keeps dying never gets a fourth run.
func TestRecoveryQuarantinesCrashLoop(t *testing.T) {
	dataDir := t.TempDir()
	spec := tinySpec(t)

	// Hand-write what a twice-failed, mid-third-attempt job leaves behind
	// when its server dies: a running manifest carrying attempts=2.
	dir := filepath.Join(dataDir, "jobs", "j000001")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	req, err := json.Marshal(quickJob(spec, 15))
	if err != nil {
		t.Fatal(err)
	}
	man := []byte(`{"id":"j000001","request":` + string(req) +
		`,"state":"running","created":"2026-08-08T00:00:00Z","attempts":2,"error":"synthesis panicked"}`)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), man, 0o644); err != nil {
		t.Fatal(err)
	}

	// Recovery alone decides: the server is never started, so a running
	// state below could only mean a re-enqueued execution.
	s := newServer(t, serve.Config{DataDir: dataDir, MaxAttempts: 3})
	a := newAPI(t, s)
	v := a.status("j000001")
	if v.State != serve.StateQuarantined {
		t.Fatalf("recovered crash-looper is %s, want quarantined", v.State)
	}
	if v.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (the interrupted run counts)", v.Attempts)
	}
	if !strings.Contains(v.Error, "died with the server") || !strings.Contains(v.Error, "synthesis panicked") {
		t.Fatalf("quarantine cause lost the history: %q", v.Error)
	}
	if got := metricValue(t, a, "serve.jobs_quarantined"); got != 1 {
		t.Fatalf("serve.jobs_quarantined = %v, want 1", got)
	}
	if got := metricValue(t, a, "serve.jobs_requeued"); got != 0 {
		t.Fatalf("serve.jobs_requeued = %v, want 0", got)
	}

	// The decision is durable: the next restart sees a terminal manifest.
	s2 := newServer(t, serve.Config{DataDir: dataDir, MaxAttempts: 3})
	a2 := newAPI(t, s2)
	if v := a2.status("j000001"); v.State != serve.StateQuarantined || v.Attempts != 3 {
		t.Fatalf("second recovery: state %s attempts %d, want quarantined/3", v.State, v.Attempts)
	}
	if got := metricValue(t, a2, "serve.jobs_quarantined"); got != 0 {
		t.Fatalf("terminal manifest re-counted as a fresh quarantine: %v", got)
	}
}

// TestJobTimeout: an attempt over its wall-clock budget fails terminally
// (the clock cannot move backwards, so no retry) with its best-so-far
// partial result preserved.
func TestJobTimeout(t *testing.T) {
	long := bigSpec(t)
	_, a := startServer(t, serve.Config{
		Workers: 1, QueueDepth: 8,
		JobTimeout: 300 * time.Millisecond,
	})

	j := a.submit(longJob(long, 16))
	v := a.await(j.ID, "deadline failure", stateIs(serve.StateFailed))
	if !strings.Contains(v.Error, "deadline exceeded") {
		t.Fatalf("error = %q, want a deadline explanation", v.Error)
	}
	if v.Attempts != 0 {
		t.Fatalf("attempts = %d, want 0 (deadline misses are not retried)", v.Attempts)
	}
	if got := metricValue(t, a, "serve.jobs_retried"); got != 0 {
		t.Fatalf("serve.jobs_retried = %v, want 0", got)
	}
	var res serve.ResultView
	if resp := a.do("GET", "/v1/jobs/"+j.ID+"/result", nil, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("best-so-far result: status %d, want 200", resp.StatusCode)
	}
	if !res.Partial {
		t.Fatalf("deadline result not marked partial: %+v", res)
	}
}

// TestDeadlineShed: once the server has an observed service time, a
// submission whose deadline cannot be met given the backlog is refused at
// admission — 429 with a Retry-After hint — instead of being accepted
// into certain failure.
func TestDeadlineShed(t *testing.T) {
	spec := tinySpec(t)
	long := bigSpec(t)
	_, a := startServer(t, serve.Config{
		Workers: 1, QueueDepth: 8,
		ShedDegradeThreshold: 1,
	})

	// Seed the service-time estimate, then fill the worker and the queue.
	warm := a.submit(quickJob(spec, 17))
	a.await(warm.ID, "estimator seeded", stateIs(serve.StateDone))
	b1 := a.submit(longJob(long, 18))
	a.await(b1.ID, "worker occupied", stateIs(serve.StateRunning))
	a.submit(longJob(long, 19))

	// A 1ms deadline behind that backlog is unmeetable: shed.
	doomed := failingJob(spec, 20, "") // plain quick job
	doomed.DeadlineMS = 1
	resp := a.do("POST", "/v1/jobs", doomed, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("unmeetable deadline: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("shed without a usable Retry-After: %q", resp.Header.Get("Retry-After"))
	}
	if got := metricValue(t, a, "serve.jobs_shed"); got != 1 {
		t.Fatalf("serve.jobs_shed = %v, want 1", got)
	}
	var ready serve.ReadyView
	a.do("GET", "/readyz", nil, &ready)
	if ready.Status != "degraded" || ready.ShedLastMinute < 1 {
		t.Fatalf("readyz after shed = %+v, want degraded with shed_last_minute >= 1", ready)
	}

	// A generous deadline on the same backlog is admitted.
	patient := quickJob(spec, 21)
	patient.DeadlineMS = int64((10 * time.Minute).Milliseconds())
	if resp := a.do("POST", "/v1/jobs", patient, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("meetable deadline: status %d, want 202", resp.StatusCode)
	}
}

// TestWatchdogCooperativeStall: an attempt making no GA progress is
// cancelled by the watchdog; when it honours the cancellation the failure
// consumes an attempt like any other and the slot frees immediately.
func TestWatchdogCooperativeStall(t *testing.T) {
	spec := tinySpec(t)
	_, a := startServer(t, serve.Config{
		Workers: 1, QueueDepth: 8,
		MaxAttempts: 1, Failpoints: true,
		WatchdogStall: 250 * time.Millisecond, WatchdogGrace: 10 * time.Second,
	})

	j := a.submit(failingJob(spec, 22, "hang-coop"))
	v := a.await(j.ID, "watchdog quarantine", stateIs(serve.StateQuarantined))
	if !strings.Contains(v.Error, "watchdog") {
		t.Fatalf("error = %q, want the watchdog named", v.Error)
	}
	if got := metricValue(t, a, "serve.watchdog_kills"); got != 1 {
		t.Fatalf("serve.watchdog_kills = %v, want 1", got)
	}
	// The slot is free: a healthy job completes behind the stall.
	good := a.submit(quickJob(spec, 23))
	a.await(good.ID, "healthy job after stall", stateIs(serve.StateDone))
}

// TestWatchdogAbandonsWedgedAttempt: an attempt that ignores cancellation
// is abandoned after the grace period — the worker slot is reclaimed even
// though the goroutine is unrecoverable. (The wedged goroutine leaks by
// design; the test proves the pool keeps serving regardless.)
func TestWatchdogAbandonsWedgedAttempt(t *testing.T) {
	spec := tinySpec(t)
	_, a := startServer(t, serve.Config{
		Workers: 1, QueueDepth: 8,
		MaxAttempts: 1, Failpoints: true,
		WatchdogStall: 250 * time.Millisecond, WatchdogGrace: 250 * time.Millisecond,
	})

	j := a.submit(failingJob(spec, 24, "hang"))
	v := a.await(j.ID, "abandoned quarantine", stateIs(serve.StateQuarantined))
	if !strings.Contains(v.Error, "slot abandoned") {
		t.Fatalf("error = %q, want the abandonment named", v.Error)
	}
	if got := metricValue(t, a, "serve.watchdog_kills"); got != 1 {
		t.Fatalf("serve.watchdog_kills = %v, want 1", got)
	}
	// The abandoned slot was reclaimed: the only worker takes new work.
	good := a.submit(quickJob(spec, 25))
	a.await(good.ID, "healthy job after abandonment", stateIs(serve.StateDone))
}

// TestSubmitValidationRejects: malformed budgets and ungated or unknown
// fault injections are client errors, not accepted jobs.
func TestSubmitValidationRejects(t *testing.T) {
	spec := tinySpec(t)

	t.Run("negative deadline", func(t *testing.T) {
		_, a := startServer(t, serve.Config{Workers: 1, QueueDepth: 8})
		bad := quickJob(spec, 26)
		bad.DeadlineMS = -5
		if resp := a.do("POST", "/v1/jobs", bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("negative deadline_ms: status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("failpoints gated", func(t *testing.T) {
		_, a := startServer(t, serve.Config{Workers: 1, QueueDepth: 8})
		if resp := a.do("POST", "/v1/jobs", failingJob(spec, 27, "panic"), nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("failpoint without -failpoints: status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown failpoint", func(t *testing.T) {
		_, a := startServer(t, serve.Config{Workers: 1, QueueDepth: 8, Failpoints: true})
		if resp := a.do("POST", "/v1/jobs", failingJob(spec, 28, "explode"), nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unknown failpoint: status %d, want 400", resp.StatusCode)
		}
	})
}

// TestRecoverySkipDegradesReadiness: damaged manifests skipped at recovery
// must be visible — a counter, and a named reason on /readyz — not just a
// log line scrolling past.
func TestRecoverySkipDegradesReadiness(t *testing.T) {
	dataDir := t.TempDir()
	bad := filepath.Join(dataDir, "jobs", "j000042")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "manifest.json"), []byte(`{"id":"j000001","state":"queued"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newServer(t, serve.Config{DataDir: dataDir})
	a := newAPI(t, s)
	if got := metricValue(t, a, "serve.manifests_skipped"); got != 1 {
		t.Fatalf("serve.manifests_skipped = %v, want 1", got)
	}
	var ready serve.ReadyView
	a.do("GET", "/readyz", nil, &ready)
	if ready.Status != "degraded" || ready.ManifestsSkipped != 1 {
		t.Fatalf("readyz = %+v, want degraded with manifests_skipped 1", ready)
	}
	found := false
	for _, r := range ready.Degraded {
		if strings.Contains(r, "damaged job manifests") {
			found = true
		}
	}
	if !found {
		t.Fatalf("degraded reasons %v name no manifest damage", ready.Degraded)
	}
}
