package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"momosyn/internal/fleet"
	"momosyn/internal/obs"
	"momosyn/internal/serve"
)

// fleetServer builds and starts one node of a fleet over dir.
func fleetServer(t *testing.T, dir, node string, cfg serve.Config) (*serve.Server, *api) {
	t.Helper()
	cfg.FleetDir = dir
	cfg.NodeID = node
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 50 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	// Drain before t.TempDir cleanup removes the shared directory out from
	// under a still-running node.
	t.Cleanup(func() {
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	})
	return s, newAPI(t, s)
}

// bareStore opens a raw fleet store on dir, impersonating a node outside
// any server (a dead or stale worker in the scenarios below).
func bareStore(t *testing.T, dir, node string, ttl time.Duration, now func() time.Time) *fleet.Store {
	t.Helper()
	st, err := fleet.Open(fleet.Config{
		Dir: dir, Node: node, TTL: ttl,
		Registry: obs.NewRegistry(), Now: now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFleetTwoNodesCompleteJobs runs two nodes over one shared directory:
// jobs submitted to one node are visible on — and may be executed by —
// either, and every result is retrievable from both.
func TestFleetTwoNodesCompleteJobs(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(t)
	_, a := fleetServer(t, dir, "nodeA", serve.Config{Workers: 1})
	_, b := fleetServer(t, dir, "nodeB", serve.Config{Workers: 1})

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		ids = append(ids, a.submit(quickJob(spec, seed)).ID)
	}
	for _, id := range ids {
		v := a.await(id, "done", stateIs(serve.StateDone))
		if v.Node == "" {
			t.Errorf("job %s finished without node provenance", id)
		}
		// Both nodes serve the status and the certified result, whichever
		// of them ran the job.
		for name, n := range map[string]*api{"nodeA": a, "nodeB": b} {
			bv := n.await(id, "done on "+name, stateIs(serve.StateDone))
			if bv.Node != v.Node {
				t.Errorf("%s reports job %s on node %q, %q elsewhere", name, id, bv.Node, v.Node)
			}
			var res serve.ResultView
			if resp := n.do("GET", "/v1/jobs/"+id+"/result", nil, &res); resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: result %s: status %d", name, id, resp.StatusCode)
			}
			if res.State != serve.StateDone || res.Certification == nil || !res.Certification.Certified {
				t.Fatalf("%s: result %s not certified: %+v", name, id, res.Certification)
			}
		}
	}

	// The structured readiness document carries the fleet section.
	var ready serve.ReadyView
	if resp := a.do("GET", "/readyz", nil, &ready); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz: status %d", resp.StatusCode)
	}
	if ready.Status != "ready" || ready.Fleet == nil || ready.Fleet.Node != "nodeA" {
		t.Fatalf("/readyz = %+v, want ready with fleet section for nodeA", ready)
	}
	if ready.Fleet.LiveNodes < 2 {
		t.Fatalf("live_nodes = %d, want both nodes heartbeating", ready.Fleet.LiveNodes)
	}
	// The fleet counters are exported through /metrics.
	if got := metricValue(t, a, "fleet.claims") + metricValue(t, b, "fleet.claims"); got < 3 {
		t.Fatalf("fleet.claims across nodes = %v, want >= 3", got)
	}
}

// TestFleetNodeLossRecovery simulates a worker that claimed a job, wrote a
// running manifest, and died without releasing: a live server must steal
// the lease after expiry and run the job to certified completion.
func TestFleetNodeLossRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(t)

	// The doomed node claims the job before any server exists.
	dead := bareStore(t, dir, "deadnode", 300*time.Millisecond, nil)
	id, err := dead.NewJobID()
	if err != nil {
		t.Fatal(err)
	}
	req := quickJob(spec, 42)
	specDoc, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	man := func(state string) []byte {
		return []byte(fmt.Sprintf(`{"id":%q,"state":%q,"created":%q}`, id, state, time.Now().Format(time.RFC3339Nano)))
	}
	if err := dead.CreateJob(id, specDoc, man("queued")); err != nil {
		t.Fatal(err)
	}
	lease, err := dead.Claim(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Write(fleet.KindManifest, man("running")); err != nil {
		t.Fatal(err)
	}
	// ...and is never heard from again.

	_, a := fleetServer(t, dir, "nodeA", serve.Config{Workers: 1})
	v := a.await(id, "recovered and done", stateIs(serve.StateDone))
	if v.Node != "nodeA" {
		t.Fatalf("recovered job ran on %q, want nodeA", v.Node)
	}
	var res serve.ResultView
	if resp := a.do("GET", "/v1/jobs/"+id+"/result", nil, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	if res.Certification == nil || !res.Certification.Certified {
		t.Fatalf("recovered job finished without certification: %+v", res.Certification)
	}
	if got := metricValue(t, a, "fleet.steals"); got < 1 {
		t.Fatalf("fleet.steals = %v, want >= 1 (the dead node's lease)", got)
	}
}

// TestFleetStaleHolderIsFenced reclaims a running job's lease out from
// under a live server (as a partition or long stall would): the server
// must fence itself — count it, stop writing — and, once the usurper
// releases, reclaim and finish the job. No write of the stale epoch may
// shadow the reclaimed state.
func TestFleetStaleHolderIsFenced(t *testing.T) {
	dir := t.TempDir()
	long := bigSpec(t)
	_, a := fleetServer(t, dir, "nodeA", serve.Config{Workers: 1})

	j := a.submit(longJob(long, 7))
	a.await(j.ID, "running", stateIs(serve.StateRunning))

	// The usurper's clock runs an hour ahead, so the held lease looks
	// long-expired to it — exactly what a node on the wrong side of a
	// partition concludes about a stalled peer.
	ahead := func() time.Time { return time.Now().Add(time.Hour) }
	thief := bareStore(t, dir, "thief", time.Minute, ahead)
	stolen, err := thief.Claim(j.ID)
	if err != nil {
		t.Fatalf("usurper claim: %v", err)
	}

	// The server notices at its next heartbeat: its renew is rejected by
	// the higher epoch and the job is abandoned without further writes.
	deadline := time.Now().Add(30 * time.Second)
	for metricValue(t, a, "serve.jobs_fenced") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("server never fenced itself after losing its lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := metricValue(t, a, "fleet.fence_rejects"); got < 1 {
		t.Fatalf("fleet.fence_rejects = %v, want >= 1", got)
	}

	// The usurper walks away gracefully; the server reclaims the job and
	// the work continues (finished here by cancelling the long run).
	if err := stolen.Release(); err != nil {
		t.Fatalf("usurper release: %v", err)
	}
	a.await(j.ID, "reclaimed and running", stateIs(serve.StateRunning))
	if resp := a.do("DELETE", "/v1/jobs/"+j.ID, nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	v := a.await(j.ID, "cancelled", stateIs(serve.StateCancelled))
	if v.Node != "nodeA" {
		t.Fatalf("final manifest from node %q, want the reclaiming nodeA", v.Node)
	}
}

// TestFleetReadyzReportsAwaitingRecovery pins the degraded-state
// reporting: a job whose holder died shows up in /readyz as awaiting
// recovery while no worker is free to claim it.
func TestFleetReadyzReportsAwaitingRecovery(t *testing.T) {
	dir := t.TempDir()
	long := bigSpec(t)
	_, a := fleetServer(t, dir, "nodeA", serve.Config{Workers: 1})

	// The only worker is pinned down by a long job...
	j := a.submit(longJob(long, 1))
	a.await(j.ID, "running", stateIs(serve.StateRunning))

	// ...while a second job's holder dies mid-run.
	dead := bareStore(t, dir, "deadnode", 100*time.Millisecond, nil)
	id, err := dead.NewJobID()
	if err != nil {
		t.Fatal(err)
	}
	req := quickJob(tinySpec(t), 2)
	specDoc, _ := json.Marshal(&req)
	manifest := fmt.Sprintf(`{"id":%q,"state":"queued"}`, id)
	if err := dead.CreateJob(id, specDoc, []byte(manifest)); err != nil {
		t.Fatal(err)
	}
	lease, err := dead.Claim(id)
	if err != nil {
		t.Fatal(err)
	}
	running := fmt.Sprintf(`{"id":%q,"state":"running"}`, id)
	if err := lease.Write(fleet.KindManifest, []byte(running)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var ready serve.ReadyView
		if resp := a.do("GET", "/readyz", nil, &ready); resp.StatusCode != http.StatusOK {
			t.Fatalf("/readyz: status %d", resp.StatusCode)
		}
		if ready.Fleet != nil && ready.Fleet.JobsAwaitingRecovery >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never reported the orphaned job: %+v", ready)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Freeing the worker lets the node pick the orphan up and finish it.
	if resp := a.do("DELETE", "/v1/jobs/"+j.ID, nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	a.await(id, "orphan recovered", stateIs(serve.StateDone))
}

// TestFleetDurableCancel cancels a fleet job through a node that does NOT
// hold its lease: the durable cancel marker must reach the holder.
func TestFleetDurableCancel(t *testing.T) {
	dir := t.TempDir()
	long := bigSpec(t)
	_, a := fleetServer(t, dir, "nodeA", serve.Config{Workers: 1})
	_, b := fleetServer(t, dir, "nodeB", serve.Config{Workers: 0, QueueDepth: 1})

	j := a.submit(longJob(long, 5))
	a.await(j.ID, "running", stateIs(serve.StateRunning))
	b.await(j.ID, "visible on the other node", stateIs(serve.StateRunning))

	if resp := b.do("DELETE", "/v1/jobs/"+j.ID, nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cross-node cancel: status %d", resp.StatusCode)
	}
	a.await(j.ID, "cancelled via the marker", stateIs(serve.StateCancelled))
}

// TestSingleNodeLayoutUnchanged pins the PR 5 on-disk contract: without
// fleet flags, a finished job's directory holds exactly the classic
// manifest.json and result.json, and the manifest carries no fleet fields.
func TestSingleNodeLayoutUnchanged(t *testing.T) {
	spec := tinySpec(t)
	dataDir := t.TempDir()
	s := newServer(t, serve.Config{Workers: 1, QueueDepth: 4, DataDir: dataDir})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	t.Cleanup(func() {
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	})
	a := newAPI(t, s)

	j := a.submit(quickJob(spec, 1))
	v := a.await(j.ID, "done", stateIs(serve.StateDone))
	if v.Node != "" {
		t.Fatalf("single-node status advertises a node ID: %q", v.Node)
	}

	// The done state becomes visible before the worker finishes settling
	// the directory (result write, checkpoint removal), so poll for the
	// final layout instead of reading it once.
	var names []string
	want := []string{"manifest.json", "result.json"}
	eventually(t, fmt.Sprintf("job dir settles to %v", want), func() bool {
		entries, err := os.ReadDir(filepath.Join(dataDir, "jobs", j.ID))
		if err != nil {
			return false
		}
		names = names[:0]
		for _, e := range entries {
			names = append(names, e.Name())
		}
		sort.Strings(names)
		return len(names) == len(want) && names[0] == want[0] && names[1] == want[1]
	})

	raw, err := os.ReadFile(filepath.Join(dataDir, "jobs", j.ID, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, fleetKey := range []string{"node", "epoch", "attempts", "not_before", "cached"} {
		if _, ok := m[fleetKey]; ok {
			t.Fatalf("single-node manifest grew a field %q: %s", fleetKey, raw)
		}
	}

	// And the readiness document has no fleet section.
	var ready serve.ReadyView
	if resp := a.do("GET", "/readyz", nil, &ready); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz: status %d", resp.StatusCode)
	}
	if ready.Status != "ready" || ready.Fleet != nil {
		t.Fatalf("single-node /readyz = %+v, want ready with no fleet section", ready)
	}
}

// TestFleetPoisonJobQuarantined is the issue's acceptance drill: a job
// that fails every execution, submitted to a two-node fleet, must land in
// quarantined after exactly max-attempts executions fleet-wide — the
// budget rides the manifests, not any one node — while a healthy job
// submitted alongside it completes and certifies.
func TestFleetPoisonJobQuarantined(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(t)
	cfg := serve.Config{
		Workers: 1, MaxAttempts: 3, RetryBackoff: time.Millisecond,
		Failpoints: true,
	}
	_, a := fleetServer(t, dir, "nodeA", cfg)
	_, b := fleetServer(t, dir, "nodeB", cfg)

	poison := quickJob(spec, 31)
	poison.Failpoint = "panic"
	pj := a.submit(poison)
	good := a.submit(quickJob(spec, 32))

	gv := a.await(good.ID, "healthy job done", stateIs(serve.StateDone))
	var res serve.ResultView
	if resp := a.do("GET", "/v1/jobs/"+good.ID+"/result", nil, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy result: status %d", resp.StatusCode)
	}
	if res.Certification == nil || !res.Certification.Certified {
		t.Fatalf("healthy job on node %q finished uncertified: %+v", gv.Node, res.Certification)
	}

	pv := a.await(pj.ID, "quarantined", stateIs(serve.StateQuarantined))
	if pv.Attempts != 3 {
		t.Fatalf("attempts = %d, want exactly the fleet-wide budget of 3", pv.Attempts)
	}
	sum := func(name string) float64 { return metricValue(t, a, name) + metricValue(t, b, name) }
	eventually(t, "serve.jobs_quarantined across nodes = 1", func() bool {
		return sum("serve.jobs_quarantined") == 1
	})
	// 3 poison executions + 1 healthy one.
	if got := sum("serve.attempts_total"); got != 4 {
		t.Fatalf("serve.attempts_total across nodes = %v, want 4 (the poison budget plus the healthy run)", got)
	}

	// Never reclaimed: several claim-loop scans later, no node has started
	// a fourth execution and the state is unchanged on both.
	time.Sleep(300 * time.Millisecond)
	if got := sum("serve.attempts_total"); got != 4 {
		t.Fatalf("quarantined job re-executed: attempts_total = %v", got)
	}
	for name, n := range map[string]*api{"nodeA": a, "nodeB": b} {
		if v := n.await(pj.ID, "quarantined on "+name, stateIs(serve.StateQuarantined)); v.Attempts != 3 {
			t.Fatalf("%s: attempts = %d, want 3", name, v.Attempts)
		}
	}
}

// TestFleetStealHonoursBudget: stealing a dead node's running job consumes
// the attempt that died with it — and a job whose budget that exhausts is
// quarantined at claim time, without the thief running it even once. The
// spec is healthy (it would succeed if executed), so a quarantined outcome
// proves the claim path enforced the budget rather than the synthesis
// failing.
func TestFleetStealHonoursBudget(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(t)

	// The doomed node is two failures deep into a third attempt when it
	// dies without releasing the lease.
	dead := bareStore(t, dir, "deadnode", 300*time.Millisecond, nil)
	id, err := dead.NewJobID()
	if err != nil {
		t.Fatal(err)
	}
	req := quickJob(spec, 33)
	specDoc, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	man := []byte(fmt.Sprintf(`{"id":%q,"state":"running","created":%q,"attempts":2,"error":"synthesis panicked"}`,
		id, time.Now().Format(time.RFC3339Nano)))
	if err := dead.CreateJob(id, specDoc, man); err != nil {
		t.Fatal(err)
	}
	lease, err := dead.Claim(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := lease.Write(fleet.KindManifest, man); err != nil {
		t.Fatal(err)
	}
	// ...and is never heard from again.

	_, a := fleetServer(t, dir, "nodeA", serve.Config{Workers: 1, MaxAttempts: 3})
	v := a.await(id, "quarantined at claim", stateIs(serve.StateQuarantined))
	if v.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (the death consumed the last one)", v.Attempts)
	}
	if !strings.Contains(v.Error, "died with its node") || !strings.Contains(v.Error, "synthesis panicked") {
		t.Fatalf("quarantine cause lost the history: %q", v.Error)
	}
	eventually(t, "serve.jobs_quarantined = 1", func() bool {
		return metricValue(t, a, "serve.jobs_quarantined") == 1
	})
	if got := metricValue(t, a, "serve.attempts_total"); got != 0 {
		t.Fatalf("serve.attempts_total = %v, want 0 (the thief never ran it)", got)
	}
}
