package serve

import (
	"fmt"
	"sync"
	"time"

	"momosyn/internal/fleet"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/synth"
)

// State is one stage of the job lifecycle. The machine is strictly
// forward: queued → running → (done | failed | cancelled | quarantined),
// with two backward edges: running → queued when a server drain interrupts
// a job so a restarted server can resume it from its checkpoint, and
// running → queued with a retry delay when an attempt fails but the job
// still has attempt budget left. A job whose failures exhaust the budget
// lands in quarantined — terminal, never re-enqueued, locally or by a
// stealing fleet node.
type State string

// The job states.
const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateCancelled   State = "cancelled"
	StateQuarantined State = "quarantined"
)

// Terminal reports whether the state ends the lifecycle.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateQuarantined:
		return true
	case StateQueued, StateRunning:
		return false
	default:
		return false
	}
}

// valid reports whether s is a known state (manifests are external input).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateQuarantined:
		return true
	default:
		return false
	}
}

// GAParams is the subset of the GA configuration a job may tune.
type GAParams struct {
	PopSize        int `json:"pop_size,omitempty"`
	MaxGenerations int `json:"max_generations,omitempty"`
	Stagnation     int `json:"stagnation,omitempty"`
}

// JobRequest is the body of POST /v1/jobs. Exactly one of Spec (inline
// specification text) and SpecName (a spec from the server's spec
// directory) must be set; SpecName is resolved at submission time and the
// resolved text stored, so a job survives a restart without the directory.
type JobRequest struct {
	Spec                 string   `json:"spec,omitempty"`
	SpecName             string   `json:"spec_name,omitempty"`
	DVS                  bool     `json:"dvs,omitempty"`
	NeglectProbabilities bool     `json:"neglect_probabilities,omitempty"`
	Seed                 int64    `json:"seed,omitempty"`
	GA                   GAParams `json:"ga,omitempty"`
	RefineIterations     int      `json:"refine_iterations,omitempty"`
	StallWindow          int      `json:"stall_window,omitempty"`
	// Certify defaults to true: results leave the server certified by the
	// independent verifier unless the client opts out explicitly.
	Certify *bool `json:"certify,omitempty"`
	// DeadlineMS is an optional wall-clock budget in milliseconds, counted
	// from submission. It covers queue wait: a submission the server cannot
	// plausibly start and finish in time is shed at admission (429), and a
	// run that outlives it is stopped at the next generation boundary with
	// its best-so-far result recorded.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Failpoint injects a deterministic fault into the job's execution for
	// lifecycle drills ("fail", "fail:N", "panic", "hang", "hang-coop").
	// Rejected unless the server runs with failpoints enabled.
	Failpoint string `json:"failpoint,omitempty"`
}

// certify resolves the tri-state Certify field.
func (r *JobRequest) certify() bool { return r.Certify == nil || *r.Certify }

// Progress is the live convergence snapshot of a running (or finished)
// job, fed passively from the per-job obs registry the synthesis run
// updates each generation. Reading it never perturbs the search.
type Progress struct {
	Generation  int     `json:"generation"`
	BestFitness float64 `json:"best_fitness"`
	MeanFitness float64 `json:"mean_fitness"`
	Diversity   float64 `json:"diversity"`
	Stagnant    int     `json:"stagnant"`
	Restarts    int     `json:"restarts"`
}

// Job is one synthesis job owned by the server. The mutex guards every
// mutable field; the identity fields (ID, Request, dir) are immutable
// after construction.
type Job struct {
	ID      string
	Request JobRequest
	dir     string
	// system is the specification's system name, resolved at submission
	// (or recovery) time for display.
	system string

	mu       sync.Mutex
	state    State
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	// transitioned is when the job last changed state, feeding the
	// dwell-time attribution of lifecycle span events; zero means "use
	// created".
	transitioned time.Time
	// resumedFrom is the checkpointed generation the current (or last) run
	// continued from; 0 for fresh runs.
	resumedFrom int
	// attempts counts failed executions so far (in-process failures, and
	// executions presumed dead at recovery or fleet steal time). It stays 0
	// on the happy path, keeping non-retried manifests unchanged.
	attempts int
	// notBefore delays the next attempt of a failed-but-retryable job
	// (exponential backoff); zero when the job is runnable immediately.
	notBefore time.Time
	// cancelRequested distinguishes a client DELETE from a server drain:
	// both cancel the run context, but only the former is terminal.
	cancelRequested bool
	// cancel stops the running synthesis at its next generation boundary;
	// nil unless the job is running.
	cancel func(error)
	// obsRun is the per-job instrumentation run whose registry carries the
	// live GA gauges; nil until the job first runs.
	obsRun *obs.Run
	// lease is this node's claim on the job (fleet mode); nil while the job
	// is unclaimed, held elsewhere, or the server is single-node.
	lease *fleet.Lease
	// fenced marks a run abandoned because a higher lease epoch appeared;
	// nothing from it may be persisted.
	fenced bool
	// node is the fleet node that owns (or last owned) the job, for
	// display; empty in single-node mode.
	node string
	// cached marks a job that was born terminal from the result cache: it
	// never queued, never ran, and owns no checkpoint or trace state.
	cached bool
	// sys and result hold the in-memory outcome for result rendering; jobs
	// recovered from disk serve their persisted result.json instead.
	sys    *model.System
	result *synth.Result
}

// snapshot captures the mutable fields under the lock.
type jobSnapshot struct {
	State           State
	Err             string
	Created         time.Time
	Started         time.Time
	Finished        time.Time
	ResumedFrom     int
	Attempts        int
	NotBefore       time.Time
	CancelRequested bool
	ObsRun          *obs.Run
	Node            string
	Cached          bool
}

func (j *Job) snapshot() jobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// snapshotLocked is snapshot for callers already holding j.mu.
func (j *Job) snapshotLocked() jobSnapshot {
	return jobSnapshot{
		State: j.state, Err: j.err,
		Created: j.created, Started: j.started, Finished: j.finished,
		ResumedFrom: j.resumedFrom, Attempts: j.attempts, NotBefore: j.notBefore,
		CancelRequested: j.cancelRequested,
		ObsRun:          j.obsRun, Node: j.node, Cached: j.cached,
	}
}

// StatusView is the JSON shape of GET /v1/jobs/{id} and of each entry in
// the listing.
type StatusView struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	System   string `json:"system,omitempty"`
	SpecName string `json:"spec_name,omitempty"`
	Seed     int64  `json:"seed"`
	DVS      bool   `json:"dvs"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// ResumedFrom is the checkpointed generation this job's run continued
	// from after a server restart; 0 means it started from generation 0.
	ResumedFrom int `json:"resumed_from,omitempty"`
	// Attempts counts failed executions so far; 0 on the happy path.
	Attempts int `json:"attempts,omitempty"`
	// RetryAt is when a failed-but-retryable job becomes runnable again.
	RetryAt string `json:"retry_at,omitempty"`
	// Node is the fleet node owning (or that last owned) the job; empty in
	// single-node mode.
	Node string `json:"node,omitempty"`
	// Cached marks a job answered from the content-addressed result cache:
	// it was terminal at submission and burned no synthesis work.
	Cached   bool      `json:"cached,omitempty"`
	Progress *Progress `json:"progress,omitempty"`
}

// status renders the job for the API. The system name comes from the
// parsed spec when available.
func (j *Job) status(systemName string) StatusView {
	s := j.snapshot()
	v := StatusView{
		ID:          j.ID,
		State:       s.State,
		System:      systemName,
		SpecName:    j.Request.SpecName,
		Seed:        j.Request.Seed,
		DVS:         j.Request.DVS,
		Error:       s.Err,
		ResumedFrom: s.ResumedFrom,
		Attempts:    s.Attempts,
		Node:        s.Node,
		Cached:      s.Cached,
	}
	if s.State == StateQueued && !s.NotBefore.IsZero() {
		v.RetryAt = s.NotBefore.UTC().Format(time.RFC3339Nano)
	}
	if !s.Created.IsZero() {
		v.Created = s.Created.UTC().Format(time.RFC3339Nano)
	}
	if !s.Started.IsZero() {
		v.Started = s.Started.UTC().Format(time.RFC3339Nano)
	}
	if !s.Finished.IsZero() {
		v.Finished = s.Finished.UTC().Format(time.RFC3339Nano)
	}
	if s.ObsRun.Active() && (s.State == StateRunning || s.State.Terminal()) {
		reg := s.ObsRun.Registry()
		v.Progress = &Progress{
			Generation:  int(reg.Gauge("ga.generation").Value()),
			BestFitness: reg.Gauge("ga.best_fitness").Value(),
			MeanFitness: reg.Gauge("ga.mean_fitness").Value(),
			Diversity:   reg.Gauge("ga.diversity").Value(),
			Stagnant:    int(reg.Gauge("ga.stagnant").Value()),
			Restarts:    int(reg.Gauge("ga.restarts").Value()),
		}
	}
	return v
}

// requestCancel flips the job towards cancellation: a queued job becomes
// cancelled on the spot, a running one has its context cancelled and is
// marked cancelled by its worker at the next generation boundary. It
// returns the state after the call and whether anything changed.
func (j *Job) requestCancel(cause error) (State, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.cancelRequested = true
		j.state = StateCancelled
		j.err = ""
		j.finished = time.Now()
		return j.state, true
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel(cause)
		}
		return j.state, true
	case StateDone, StateFailed, StateCancelled, StateQuarantined:
		return j.state, false
	default:
		return j.state, false
	}
}

// jobIDPattern validates client-supplied job identifiers before they touch
// the filesystem: the server only ever mints IDs of this shape.
func validJobID(id string) bool {
	if len(id) < 2 || len(id) > 32 || id[0] != 'j' {
		return false
	}
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// jobID renders sequence number n as a job identifier.
func jobID(n int) string { return fmt.Sprintf("j%06d", n) }
