package serve

import (
	"time"

	"momosyn/internal/obs"
)

// Job-lifecycle span events. When Config.Lifecycle carries a tracing obs
// run, the server emits one structured `job` event into its JSONL stream
// at every lifecycle edge: submitted → queued → claimed → attempt N →
// checkpoint → stolen/fenced → terminal. Each transition event names the
// state being left (from), the state entered (state) and the wall-clock
// time spent in the left state (dwell_ns), so `mmtrace -lifecycle` can
// build per-state dwell tables by a straight group-by on `from`.
// Checkpoint events are instantaneous markers whose dwell_ns is the save
// duration; they do not touch the job's transition clock.
//
// The whole facility is zero-cost when off: every site guards on
// lifecycleTracing() before computing dwell times or building events, and
// obs.Run.EmitJob's split fast path keeps the event struct on the stack
// (see the AllocsPerRun pin in the obs tests). Events are always emitted
// after j.mu is released — the sink does I/O.

// lifecycleTracing reports whether lifecycle span events are recorded.
func (s *Server) lifecycleTracing() bool { return s.cfg.Lifecycle.Tracing() }

// emitJobSpan forwards one lifecycle event to the configured run;
// nil-safe and allocation-free when tracing is off.
func (s *Server) emitJobSpan(e obs.JobEvent) { s.cfg.Lifecycle.EmitJob(e) }

// dwellLocked returns the nanoseconds the job spent in its current state
// and restarts the dwell clock at now. j.mu must be held. The first call
// after construction measures from creation time.
func (j *Job) dwellLocked(now time.Time) int64 {
	prev := j.transitioned
	if prev.IsZero() {
		prev = j.created
	}
	j.transitioned = now
	if prev.IsZero() || now.Before(prev) {
		return 0
	}
	return now.Sub(prev).Nanoseconds()
}

// emitTerminal emits the terminal lifecycle event for a job that just
// left `from` for terminal state `state`.
func (s *Server) emitTerminal(j *Job, from, state State, attempt int, dwellNs int64, epoch int, detail string) {
	if !s.lifecycleTracing() {
		return
	}
	s.emitJobSpan(obs.JobEvent{
		Job: j.ID, Event: obs.JobTerminal,
		From: string(from), State: string(state),
		Attempt: attempt, DwellNs: dwellNs,
		Node: s.cfg.NodeID, Epoch: epoch, Detail: detail,
	})
}
