// Package serve is the synthesis job service behind cmd/mmserved: a
// standard-library-only HTTP JSON API that accepts multi-mode
// specification uploads, queues synthesis jobs into a bounded queue with
// backpressure, and executes them on a worker pool where every job runs
// synth.Synthesize under its own context with panic isolation, per-job
// runctl checkpoints and a passive obs instrumentation run feeding live
// generation progress.
//
// Lifecycle: queued → running → done | failed | cancelled | quarantined.
// Jobs persist a manifest (and, when finished, their rendered result)
// under the data directory, so a restarted server lists old jobs,
// re-queues interrupted ones and resumes them from their checkpoints
// rather than from generation 0. Graceful shutdown drains the workers:
// running jobs stop at their next generation boundary, write a final
// checkpoint and return to the queued state on disk.
//
// The lifecycle is hardened against hostile inputs and overload: every
// failed execution counts against a per-job attempt budget (with
// exponential backoff between retries) and a job that exhausts it is
// quarantined — terminal, never re-enqueued, by this server, a restarted
// one, or a stealing fleet node. Wall-clock deadlines and a generation
// cap bound each run; a watchdog kills attempts that stop making
// generation progress; and submissions whose deadline cannot plausibly be
// met are shed at admission with 429 + Retry-After. See docs/SERVER.md.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"time"

	"momosyn/internal/cas"
	"momosyn/internal/fleet"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/runctl"
	"momosyn/internal/specio"
	"momosyn/internal/synth"
)

// Config tunes one Server. The zero value of optional fields selects the
// documented defaults.
type Config struct {
	// Workers is the synthesis worker pool size (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting to run (default 16).
	// A full queue rejects submissions with 429 and a Retry-After hint.
	QueueDepth int
	// DataDir is where jobs persist manifests, checkpoints, results and
	// traces (required).
	DataDir string
	// SpecDir, when set, lets jobs name a built-in specification
	// ("spec_name": "mul1" resolves to SpecDir/mul1.spec).
	SpecDir string
	// CheckpointEvery is the generation interval of per-job checkpoints
	// (default 5).
	CheckpointEvery int
	// MaxSpecBytes bounds the accepted request body (default 1 MiB).
	MaxSpecBytes int64
	// TraceJobs writes a JSONL run-trace per job into its data directory.
	TraceJobs bool
	// Registry receives the server metrics (created when nil); it backs
	// GET /metrics.
	Registry *obs.Registry
	// Lifecycle, when it carries a tracing obs run, receives one `job`
	// span event per lifecycle edge (submitted, attempt, checkpoint,
	// claimed/stolen, fenced, terminal) in its JSONL trace stream; nil or
	// a non-tracing run disables emission at zero cost. See
	// docs/OBSERVABILITY.md.
	Lifecycle *obs.Run
	// AccessLog, when non-nil, receives one structured JSON line per
	// handled HTTP request (method, path, status, duration, job id when
	// one is involved). Off by default.
	AccessLog io.Writer
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)

	// MaxAttempts is the per-job execution budget (default 3): a job whose
	// failed executions — in-process errors, panics, watchdog kills, and
	// executions presumed dead at recovery or fleet-steal time — reach this
	// count is quarantined instead of retried.
	MaxAttempts int
	// RetryBackoff seeds the exponential backoff separating a failed
	// attempt from the next execution (default 2s, doubling per failure,
	// capped at one minute).
	RetryBackoff time.Duration
	// JobTimeout, when positive, bounds each execution's wall-clock time;
	// an expired run stops at its next generation boundary, records its
	// best-so-far partial result and fails terminally (a deadline miss is
	// not retried — more attempts cannot make the clock move backwards).
	// Requests may tighten this further with deadline_ms.
	JobTimeout time.Duration
	// MaxGenerations, when positive, caps the GA generation budget of every
	// job: requests asking for more (or for the engine default by leaving
	// it zero) are clamped at admission.
	MaxGenerations int
	// WatchdogStall, when positive, arms the worker watchdog: an execution
	// whose GA generation gauge does not move for this long is cancelled
	// and the attempt failed rather than hanging its pool slot.
	WatchdogStall time.Duration
	// WatchdogGrace is how long the watchdog waits after cancelling a
	// stalled attempt before abandoning the slot entirely (default 10s).
	WatchdogGrace time.Duration
	// Failpoints permits submissions carrying a "failpoint" fault
	// injection; off by default — lifecycle drills only.
	Failpoints bool
	// ShedDegradeThreshold marks the node degraded in /readyz when at
	// least this many submissions were shed in the last minute (default
	// 10).
	ShedDegradeThreshold int
	// QuarantineDegradeThreshold marks the node degraded when at least
	// this many jobs were quarantined in the last minute (default 1).
	QuarantineDegradeThreshold int

	// FleetDir, when set, turns the server into one node of a
	// shared-filesystem fleet: jobs are published into this directory and
	// executed by whichever node claims their lease. DataDir is not used in
	// fleet mode. See docs/FLEET.md.
	FleetDir string
	// NodeID is this node's fleet-wide unique identifier
	// ([A-Za-z0-9._-]{1,64}; default "node-<pid>"). Fleet mode only.
	NodeID string
	// LeaseTTL is how long a job lease stays valid without renewal; a node
	// that misses renewals for this long loses its jobs to the rest of the
	// fleet (default 5s). Fleet mode only.
	LeaseTTL time.Duration
	// Heartbeat is the lease renewal and fleet scan interval (default
	// LeaseTTL/3). Fleet mode only.
	Heartbeat time.Duration
	// FleetFS is the filesystem the fleet store runs on (default the real
	// filesystem; tests inject chaosfs). Fleet mode only.
	FleetFS fleet.FS

	// CacheDir, when set, enables the content-addressed result cache:
	// completed certified jobs publish their result under the canonical
	// (spec, seed, options, engine version) key and semantically identical
	// resubmissions are answered terminally at admission. In fleet mode it
	// defaults to FleetDir/cache so every node shares one cache; in
	// single-node mode empty means disabled. See docs/CACHE.md.
	CacheDir string
	// CacheMaxBytes caps the total size of cache entries; beyond it the
	// least-recently-used entries are evicted. 0 means unbounded.
	CacheMaxBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5
	}
	if c.MaxSpecBytes <= 0 {
		c.MaxSpecBytes = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Second
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = 10 * time.Second
	}
	if c.ShedDegradeThreshold <= 0 {
		c.ShedDegradeThreshold = 10
	}
	if c.QuarantineDegradeThreshold <= 0 {
		c.QuarantineDegradeThreshold = 1
	}
	if c.FleetDir != "" {
		if c.NodeID == "" {
			c.NodeID = fmt.Sprintf("node-%d", os.Getpid())
		}
		if c.LeaseTTL <= 0 {
			c.LeaseTTL = 5 * time.Second
		}
		if c.Heartbeat <= 0 {
			c.Heartbeat = c.LeaseTTL / 3
		}
		if c.FleetFS == nil {
			c.FleetFS = fleet.OSFS{}
		}
		if c.CacheDir == "" {
			// Fleet nodes share one cache through the fleet directory:
			// a result computed anywhere is a hit everywhere.
			c.CacheDir = filepath.Join(c.FleetDir, "cache")
		}
	}
	return c
}

// Server owns the job table, the bounded queue and the worker pool.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // job IDs in creation order (listing order)
	seq      int
	draining bool
	started  bool

	queue      chan *Job
	wg         sync.WaitGroup
	cancelRoot context.CancelCauseFunc
	// rootCtx is the worker pool's context, kept so retry timers die with
	// the pool instead of firing into a drained server.
	rootCtx context.Context

	// Observed per-job service time (EWMA seconds) behind the admission
	// estimator, and the sliding shed/quarantine windows behind /readyz
	// degradation.
	svcMu      sync.Mutex
	svcAvg     float64
	shedWindow eventWindow
	quarWindow eventWindow

	// Fleet mode state; nil/zero in single-node mode.
	fleetStore *fleet.Store
	fleetFS    fleet.FS

	// cache is the content-addressed result store; nil when disabled.
	cache *cas.Store

	// Batch records, guarded by mu; cells are immutable once created.
	batches    map[string]*Batch
	batchOrder []string
	batchSeq   int

	// Metric handles held once so the hot paths skip the registry map.
	qDepth          *obs.Gauge
	running         *obs.Gauge
	busy            *obs.Gauge
	jobSeconds      *obs.Histogram
	fleetRecovering *obs.Gauge
	fleetLiveNodes  *obs.Gauge
	fleetDegraded   *obs.Gauge
	batchesGauge    *obs.Gauge
}

// New builds a Server over cfg.DataDir, recovering previously persisted
// jobs: terminal jobs return for listing and result serving, interrupted
// ones go back to the queue (and resume from their checkpoints once a
// worker picks them up). Call Start to launch the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" && cfg.FleetDir == "" {
		return nil, errors.New("serve: Config.DataDir is required")
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		jobs:    make(map[string]*Job),
		batches: make(map[string]*Batch),
	}
	s.batchesGauge = s.reg.Gauge("serve.batches")
	s.qDepth = s.reg.Gauge("serve.queue_depth")
	s.running = s.reg.Gauge("serve.jobs_running")
	s.busy = s.reg.Gauge("serve.workers_busy")
	s.jobSeconds = s.reg.Histogram("serve.job_seconds", obs.DefTimeBuckets)
	s.reg.Gauge("serve.workers").Set(float64(cfg.Workers))
	// Batch counters register eagerly so scrapers see every series from the
	// first /metrics exposition, not only after the first batch arrives.
	for _, name := range []string{
		"serve.batches_submitted", "serve.batch_cells", "serve.batch_dedup",
		"serve.batch_cache_hits", "serve.batch_rejected",
	} {
		s.reg.Counter(name)
	}

	if cfg.CacheDir != "" {
		store, err := cas.Open(cfg.CacheDir, cfg.CacheMaxBytes, cas.Metrics{
			Hits:      s.reg.Counter("serve.cache_hits"),
			Misses:    s.reg.Counter("serve.cache_misses"),
			Evictions: s.reg.Counter("serve.cache_evictions"),
			Corrupt:   s.reg.Counter("serve.cache_corrupt"),
		})
		if err != nil {
			return nil, fmt.Errorf("serve: cache: %w", err)
		}
		s.cache = store
	}

	if cfg.FleetDir != "" {
		store, err := fleet.Open(fleet.Config{
			Dir: cfg.FleetDir, Node: cfg.NodeID, TTL: cfg.LeaseTTL,
			FS: cfg.FleetFS, Registry: cfg.Registry,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.fleetStore = store
		s.fleetFS = cfg.FleetFS
		s.fleetRecovering = s.reg.Gauge("fleet.jobs_recoverable")
		s.fleetLiveNodes = s.reg.Gauge("fleet.live_nodes")
		s.fleetDegraded = s.reg.Gauge("fleet.degraded")
		s.queue = make(chan *Job, cfg.QueueDepth)
		// Recovery is the claim loop's job: populate the table now so the
		// API lists existing work immediately, but claim nothing before
		// Start.
		if err := s.syncFleet(); err != nil {
			return nil, fmt.Errorf("serve: fleet: %w", err)
		}
		return s, nil
	}

	requeue, maxSeq, err := s.recoverJobs()
	if err != nil {
		return nil, err
	}
	s.seq = maxSeq
	s.recoverBatches()
	// The queue must hold every recovered job plus the configured depth's
	// worth of new ones; recovery must never hit its own backpressure.
	depth := cfg.QueueDepth
	if len(requeue) > depth {
		depth = len(requeue)
	}
	s.queue = make(chan *Job, depth)
	for _, j := range requeue {
		s.queue <- j
		if s.lifecycleTracing() {
			s.emitJobSpan(obs.JobEvent{Job: j.ID, Event: obs.JobQueued,
				State: string(StateQueued), Detail: "recovered at restart"})
		}
	}
	s.qDepth.Set(float64(len(s.queue)))
	s.jobsByState()
	return s, nil
}

// Start launches the worker pool. The context bounds every job the pool
// will ever run: cancelling it (directly or via Shutdown) stops in-flight
// syntheses at their next generation boundary.
func (s *Server) Start(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	root, cancel := context.WithCancelCause(ctx)
	s.cancelRoot = cancel
	s.rootCtx = root
	s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(root)
	}
	if s.fleetStore != nil {
		s.wg.Add(1)
		go s.fleetLoop(root)
	}
}

// ErrDrainTimeout reports a Shutdown that gave up waiting for the workers.
var ErrDrainTimeout = errors.New("serve: drain deadline exceeded before all workers stopped")

// Shutdown drains the server: submissions are refused from now on,
// in-flight syntheses are cancelled (they stop at the next generation
// boundary and write their final checkpoints), and the call waits for the
// worker pool until ctx expires. Interrupted jobs are left queued on disk
// for the next server to resume.
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	s.draining = true
	cancel := s.cancelRoot
	s.mu.Unlock()
	if cancel != nil {
		cancel(errors.New("server shutting down"))
	}
	done := make(chan struct{})
	go func() {
		defer func() { recover() }() // wg misuse must not kill the drain
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ErrDrainTimeout
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }

// jobsByState recounts the per-state job gauges (cheap: the job table is
// the unit of scale here, not the request rate).
func (s *Server) jobsByState() {
	counts := map[State]int{}
	for _, j := range s.jobs {
		counts[j.snapshot().State]++
	}
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateQuarantined} {
		s.reg.Gauge("serve.jobs_state_" + string(st)).Set(float64(counts[st]))
	}
}

// ---- worker pool ----

// worker pulls jobs off the queue until the root context dies. The
// top-level recover barrier keeps a defect in job bookkeeping from taking
// the whole process down (the synthesis itself is already panic-isolated
// inside runJob and runctl.Guard).
func (s *Server) worker(ctx context.Context) {
	defer func() {
		if p := recover(); p != nil {
			s.logf("serve: worker crashed: %v", p)
		}
	}()
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		select {
		case <-ctx.Done():
			return
		case j := <-s.queue:
			s.qDepth.Set(float64(len(s.queue)))
			s.runJob(ctx, j)
		}
	}
}

// runJob executes one job end to end: state transitions, per-job obs run,
// checkpoint resume decision, the synthesis itself behind a recover
// barrier, outcome classification and persistence.
func (s *Server) runJob(ctx context.Context, j *Job) {
	// A job cancelled while queued is already terminal: skip it (in fleet
	// mode its terminal manifest is committed and the lease let go).
	j.mu.Lock()
	if j.state != StateQueued {
		lease := j.lease
		j.mu.Unlock()
		if lease != nil {
			s.persist(j)
			s.dropLease(j, lease)
		}
		return
	}
	jobCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	j.state = StateRunning
	j.started = time.Now()
	j.finished = time.Time{}
	j.notBefore = time.Time{}
	j.cancel = cancel
	lease := j.lease
	created := j.created
	attempt := j.attempts + 1
	var queuedNs int64
	if s.lifecycleTracing() {
		queuedNs = j.dwellLocked(j.started)
	}
	j.mu.Unlock()
	if s.lifecycleTracing() {
		e := obs.JobEvent{Job: j.ID, Event: obs.JobAttempt,
			From: string(StateQueued), State: string(StateRunning),
			Attempt: attempt, DwellNs: queuedNs, Node: s.cfg.NodeID}
		if lease != nil {
			e.Epoch = lease.Epoch
		}
		s.emitJobSpan(e)
	}
	s.reg.Counter("serve.attempts_total").Inc()
	// The execution context: the job context (worker pool + client cancel +
	// watchdog) further bounded by the tighter of the server's per-attempt
	// timeout and the request's wall-clock deadline (counted from
	// submission, so queue wait spends it too).
	runCtx := jobCtx
	var deadline time.Time
	if j.Request.DeadlineMS > 0 {
		deadline = created.Add(time.Duration(j.Request.DeadlineMS) * time.Millisecond)
	}
	if s.cfg.JobTimeout > 0 {
		if t := time.Now().Add(s.cfg.JobTimeout); deadline.IsZero() || t.Before(deadline) {
			deadline = t
		}
	}
	if !deadline.IsZero() {
		var cancelDeadline context.CancelFunc
		runCtx, cancelDeadline = context.WithDeadlineCause(jobCtx, deadline, errJobDeadline)
		defer cancelDeadline()
	}
	var hbStop chan struct{}
	var hbDone chan struct{}
	if lease != nil {
		hbStop, hbDone = make(chan struct{}), make(chan struct{})
		go s.fleetHeartbeat(cancel, j, lease, hbStop, hbDone)
	}
	s.persist(j)
	s.running.Add(1)
	s.busy.Add(1)
	s.mu.Lock()
	s.jobsByState()
	s.mu.Unlock()
	start := time.Now()
	defer func() {
		s.running.Add(-1)
		s.busy.Add(-1)
		d := time.Since(start)
		s.jobSeconds.ObserveDuration(d)
		s.observeServiceTime(d)
		s.reg.Gauge("serve.worker_busy_seconds").Add(d.Seconds())
		s.mu.Lock()
		s.jobsByState()
		s.mu.Unlock()
	}()

	// Per-job instrumentation: a private registry for the progress gauges
	// and, when configured, a JSONL trace in the job directory.
	var sink obs.Sink
	if s.cfg.TraceJobs {
		tracePath := filepath.Join(j.dir, traceFile)
		if lease != nil {
			// Per-epoch trace names keep concurrent holders (a stale one and
			// its successor) from interleaving into one file.
			tracePath = s.fleetStore.TracePath(j.ID, lease.Epoch)
		}
		f, err := os.Create(tracePath)
		if err != nil {
			s.logf("serve: job %s: trace: %v", j.ID, err)
		} else {
			sink = obs.NewJSONLSink(f)
		}
	}
	run := obs.NewRun(obs.NewRegistry(), sink)
	j.mu.Lock()
	j.obsRun = run
	j.mu.Unlock()

	out, abandoned := s.superviseSynthesis(runCtx, cancel, j, run)
	sys, res, err := out.sys, out.res, out.err
	if abandoned {
		// The wedged attempt still owns the run and may yet write to it;
		// closing the sink under it would race. Leak it with the goroutine.
	} else if cerr := run.Close(); cerr != nil {
		s.logf("serve: job %s: trace close: %v", j.ID, cerr)
	}
	if lease != nil {
		// Stop renewals before the final persists: a renewal after Release
		// would resurrect the lease and block the fleet from reclaiming.
		close(hbStop)
		<-hbDone
		// A fenced checkpoint write surfaces as a Partial result, not an
		// error; re-check the fence here so a superseded run can never be
		// classified (even locally) as completed.
		if verr := lease.Verify(); errors.Is(verr, fleet.ErrLeaseLost) {
			s.fence(j, nil, verr)
		}
	}

	if lease != nil && errors.Is(err, fleet.ErrLeaseLost) {
		// A fence surfaced through the synthesis error instead of the
		// heartbeat: record it the same way (fence is idempotent).
		s.fence(j, nil, err)
	}

	// Classify the outcome.
	j.mu.Lock()
	j.cancel = nil
	cancelled := j.cancelRequested
	fenced := j.fenced || errors.Is(err, fleet.ErrLeaseLost)
	if fenced {
		// Another node holds a higher lease epoch: it owns the job now and
		// this run's outcome is void. Persist NOTHING — the view refreshes
		// from the new holder's manifests at the next fleet sync.
		j.fenced = true
		j.state = StateQueued
		j.started = time.Time{}
		j.err = ""
		j.lease = nil
		j.mu.Unlock()
		return
	}
	cause := context.Cause(runCtx)
	deadlineHit := errors.Is(cause, errJobDeadline) || errors.Is(err, errJobDeadline)
	if err == nil && errors.Is(cause, errWatchdogStall) && !cancelled {
		// The watchdog cancelled a cooperative run: it returned its partial
		// state cleanly, but the attempt itself failed.
		err = cause
	}
	drained := err == nil && res != nil && res.Partial && ctx.Err() != nil && !cancelled
	now := time.Now()
	var retryIn time.Duration
	switch {
	case drained:
		// Server shutdown interrupted the run mid-flight; its closing
		// checkpoint is on disk. Back to queued so the next server (or a
		// later worker, if only the context was cancelled) resumes it.
		j.state = StateQueued
		j.started = time.Time{}
		j.err = ""
	case deadlineHit && !cancelled:
		// A deadline miss is terminal, not retried: another attempt cannot
		// make the clock move backwards. The best-so-far partial result is
		// persisted below.
		j.state = StateFailed
		j.err = "job deadline exceeded (best-so-far result recorded)"
		j.finished = now
	case err != nil && !cancelled:
		// One failed execution. Within budget the job goes back to queued
		// behind an exponential backoff; past it, quarantine — terminal,
		// never re-enqueued here, by a restarted server, or by a stealing
		// fleet node.
		j.attempts++
		if j.attempts >= s.cfg.MaxAttempts {
			j.state = StateQuarantined
			j.err = quarantineCause(j.attempts, err)
			j.finished = now
		} else {
			retryIn = retryDelay(s.cfg.RetryBackoff, j.attempts)
			j.state = StateQueued
			j.started = time.Time{}
			j.err = err.Error()
			j.notBefore = now.Add(retryIn)
		}
	case cancelled:
		j.state = StateCancelled
		j.err = ""
		j.finished = now
	default:
		j.state = StateDone
		j.err = ""
		j.finished = now
	}
	if res != nil {
		j.sys = sys
		j.result = res
	}
	state := j.state
	attempts := j.attempts
	jobErr := j.err
	var dwellNs int64
	if s.lifecycleTracing() {
		dwellNs = j.dwellLocked(now)
	}
	snap := j.snapshotLocked()
	if state.Terminal() {
		// Hide the terminal state until its artifacts are durable: a
		// client that observes "done" must find the result document, the
		// cache entry and the manifest already on disk (and the checkpoint
		// gone), whether it resubmits, restarts the server or scrapes
		// /metrics in the very next request. The snapshot above carries
		// the real final state for the persists below.
		j.state = StateRunning
	} else if retryIn > 0 {
		s.reg.Counter("serve.jobs_retried").Inc()
	}
	j.mu.Unlock()

	if state.Terminal() {
		if res != nil {
			// Result before manifest: recovery (and fleet adoption) trusts
			// a terminal manifest to have its result document beside it.
			if doc, rerr := renderResult(j, snap, sys, res); rerr == nil {
				s.persistResult(j, doc)
				if state == StateDone {
					s.cachePublish(j, sys, res, doc)
				}
			} else {
				s.logf("serve: job %s: render result: %v", j.ID, rerr)
			}
		}
		s.persistSnap(j, snap)
		// A finished job no longer needs its checkpoint (quarantined
		// included: it will never run again).
		if lease != nil {
			s.fleetStore.RemoveCheckpoints(j.ID)
		} else {
			os.Remove(filepath.Join(j.dir, checkpointFile))
		}
		// Reveal: terminal counters move under the same lock so state and
		// /metrics can never disagree.
		j.mu.Lock()
		j.state = state
		switch state {
		case StateDone:
			s.reg.Counter("serve.jobs_done").Inc()
		case StateFailed:
			s.reg.Counter("serve.jobs_failed").Inc()
		case StateCancelled:
			s.reg.Counter("serve.jobs_cancelled").Inc()
		case StateQuarantined:
			s.reg.Counter("serve.jobs_quarantined").Inc()
		default:
			// Non-terminal states never reach this branch.
		}
		j.mu.Unlock()
	} else {
		s.persistSnap(j, snap)
	}
	if s.lifecycleTracing() {
		epoch := 0
		if lease != nil {
			epoch = lease.Epoch
		}
		switch {
		case state.Terminal():
			s.emitTerminal(j, StateRunning, state, attempts, dwellNs, epoch, jobErr)
		case retryIn > 0:
			s.emitJobSpan(obs.JobEvent{Job: j.ID, Event: obs.JobRetry,
				From: string(StateRunning), State: string(StateQueued),
				Attempt: attempts, DwellNs: dwellNs, Node: s.cfg.NodeID, Epoch: epoch,
				Detail: fmt.Sprintf("retrying in %v: %v", retryIn, err)})
		default:
			// Drained back to queued for the next server (or worker).
			s.emitJobSpan(obs.JobEvent{Job: j.ID, Event: obs.JobQueued,
				From: string(StateRunning), State: string(StateQueued),
				DwellNs: dwellNs, Node: s.cfg.NodeID, Epoch: epoch, Detail: "drained"})
		}
	}

	switch state {
	case StateFailed:
		s.logf("serve: job %s failed: %s", j.ID, jobErr)
	case StateQuarantined:
		s.quarWindow.record(time.Now())
		s.logf("serve: job %s quarantined after %d failed attempts: %v", j.ID, attempts, err)
	case StateQueued, StateRunning:
		// Drained or retrying: no terminal counter moved.
		if retryIn > 0 {
			s.logf("serve: job %s: attempt %d/%d failed (%v); retrying in %v", j.ID, attempts, s.cfg.MaxAttempts, err, retryIn)
		}
	default:
		// Done and cancelled outcomes need no log line.
	}
	if lease != nil {
		// Terminal, drained or awaiting retry, the state is committed: let
		// the lease go so the fleet can act on the job immediately (the
		// claim loops honour the retry delay in the manifest).
		s.dropLease(j, lease)
	} else if retryIn > 0 {
		s.requeueAfter(j, retryIn)
	}
}

// requeueAfter re-enqueues a failed-but-retryable job once its backoff
// elapses (single-node mode; fleet retries go through the claim loop). The
// timer dies with the worker pool: a job still waiting out its backoff at
// shutdown stays queued on disk and the next server picks it up.
func (s *Server) requeueAfter(j *Job, delay time.Duration) {
	s.mu.Lock()
	ctx := s.rootCtx
	s.mu.Unlock()
	if ctx == nil { // not started (tests): run the timer unbounded
		ctx = context.Background()
	}
	s.wg.Add(1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				s.logf("serve: job %s: requeue timer crashed: %v", j.ID, p)
			}
		}()
		defer s.wg.Done()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		select {
		case <-ctx.Done():
		case s.queue <- j:
			s.qDepth.Set(float64(len(s.queue)))
		}
	}()
}

// synthesize parses the job's spec, decides fresh-versus-resume from the
// job's checkpoint, and runs the synthesis behind a recover barrier. A
// checkpoint that fails to load or resume degrades gracefully to a fresh
// run instead of failing the job.
func (s *Server) synthesize(ctx context.Context, j *Job, run *obs.Run) (*model.System, *synth.Result, error) {
	sys, err := specio.ReadBytes([]byte(j.Request.Spec))
	if err != nil {
		return nil, nil, err
	}
	if fp := j.Request.Failpoint; fp != "" {
		// Fault injection for lifecycle drills, behind Config.Failpoints
		// (enforced at admission). It replaces the synthesis so an
		// abandoned hanging attempt owns no checkpoint or trace state.
		if err := s.failpoint(ctx, j, fp); err != nil {
			return sys, nil, err
		}
	}
	// keyOptions is shared with the cache key derivation: what runs here is
	// exactly what a cache hit would have answered for.
	opts := keyOptions(&j.Request)
	opts.Context = ctx
	opts.CheckpointEvery = s.cfg.CheckpointEvery
	opts.Obs = run
	j.mu.Lock()
	lease := j.lease
	j.mu.Unlock()
	if lease != nil {
		if ferr := s.fleetCheckpointing(j, lease, &opts); ferr != nil {
			if errors.Is(ferr, fleet.ErrLeaseLost) {
				return nil, nil, ferr
			}
			s.logf("serve: job %s: checkpoint recovery degraded to fresh start: %v", j.ID, ferr)
			opts.Resume = false
		}
	} else {
		ckpt := filepath.Join(j.dir, checkpointFile)
		opts.CheckpointPath = ckpt
		if cp, lerr := runctl.Load(ckpt); lerr == nil {
			opts.Resume = true
			j.mu.Lock()
			j.resumedFrom = cp.Snapshot.Generation
			j.mu.Unlock()
			s.reg.Counter("serve.jobs_resumed").Inc()
		} else if !errors.Is(lerr, os.ErrNotExist) {
			s.logf("serve: job %s: unusable checkpoint, starting fresh: %v", j.ID, lerr)
			os.Remove(ckpt)
		}
	}
	if s.lifecycleTracing() && opts.CheckpointPath != "" {
		// Wrap the save hook so every checkpoint write becomes a span
		// event carrying the save duration (dwell_ns); checkpoint events
		// do not advance the job's transition clock.
		inner := opts.CheckpointSave
		if inner == nil {
			inner = runctl.Save
		}
		epoch := 0
		if lease != nil {
			epoch = lease.Epoch
		}
		opts.CheckpointSave = func(p string, cp *runctl.Checkpoint) error {
			begin := time.Now()
			serr := inner(p, cp)
			e := obs.JobEvent{Job: j.ID, Event: obs.JobCheckpoint,
				State: string(StateRunning), DwellNs: time.Since(begin).Nanoseconds(),
				Node: s.cfg.NodeID, Epoch: epoch}
			if serr != nil {
				e.Detail = serr.Error()
			}
			s.emitJobSpan(e)
			return serr
		}
	}
	res, err := safeSynthesize(sys, opts)
	if err != nil && opts.Resume && !errors.Is(err, fleet.ErrLeaseLost) {
		s.logf("serve: job %s: resume failed (%v), restarting from generation 0", j.ID, err)
		if lease != nil {
			_ = s.fleetFS.Remove(opts.CheckpointPath)
		} else {
			os.Remove(opts.CheckpointPath)
		}
		j.mu.Lock()
		j.resumedFrom = 0
		j.mu.Unlock()
		opts.Resume = false
		res, err = safeSynthesize(sys, opts)
	}
	return sys, res, err
}

// safeSynthesize is the per-job panic barrier: a defect anywhere in the
// synthesis stack fails this job, never the worker or the server.
func safeSynthesize(sys *model.System, opts synth.Options) (res *synth.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("synthesis panicked: %v", p)
		}
	}()
	return synth.Synthesize(sys, opts)
}

// ---- HTTP API ----

// Handler returns the HTTP API mux. Every route is wrapped in a
// per-endpoint latency histogram (serve.http_seconds.<method_path>); with
// Config.AccessLog set the whole mux additionally sits behind the
// structured access logger.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.Handler) {
		hist := s.reg.Histogram("serve.http_seconds."+routeMetric(pattern), obs.DefTimeBuckets)
		mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h.ServeHTTP(w, r)
			hist.ObserveDuration(time.Since(start))
		}))
	}
	handle("POST /v1/jobs", http.HandlerFunc(s.handleSubmit))
	handle("GET /v1/jobs", http.HandlerFunc(s.handleList))
	handle("GET /v1/jobs/{id}", http.HandlerFunc(s.handleStatus))
	handle("GET /v1/jobs/{id}/result", http.HandlerFunc(s.handleResult))
	handle("DELETE /v1/jobs/{id}", http.HandlerFunc(s.handleCancel))
	handle("POST /v1/batches", http.HandlerFunc(s.handleBatchSubmit))
	handle("GET /v1/batches/{id}", http.HandlerFunc(s.handleBatchStatus))
	handle("GET /v1/batches/{id}/results", http.HandlerFunc(s.handleBatchResults))
	handle("GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	}))
	handle("GET /readyz", http.HandlerFunc(s.handleReady))
	handle("GET /metrics", s.reg)
	requests := s.reg.Counter("serve.http_requests")
	var h http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		mux.ServeHTTP(w, r)
	})
	if s.cfg.AccessLog != nil {
		h = newAccessLogger(s.cfg.AccessLog, h)
	}
	return h
}

// routeMetric renders a mux pattern as a metric-name segment:
// "GET /v1/jobs/{id}" → "get_v1_jobs_id".
func routeMetric(pattern string) string {
	out := make([]byte, 0, len(pattern))
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			out = append(out, c)
		case c == '{' || c == '}':
			// drop wildcard braces: {id} → id
		default:
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	return string(out)
}

// ReadyView is the JSON body of GET /readyz: a structured readiness
// document instead of a bare string, so operators and load balancers can
// see WHY a node is degraded. Status is "ready", "degraded" (still 200:
// the node serves, but the fleet has jobs awaiting lease recovery) or
// "draining" (503).
type ReadyView struct {
	Status      string `json:"status"`
	Workers     int    `json:"workers"`
	WorkersBusy int    `json:"workers_busy"`
	QueueDepth  int    `json:"queue_depth"`
	JobsRunning int    `json:"jobs_running"`
	// Degraded lists the reasons behind a "degraded" status (empty when
	// ready): recovery skipped damaged manifests, the shed or quarantine
	// rate crossed its threshold, or the fleet has jobs awaiting recovery.
	Degraded []string `json:"degraded,omitempty"`
	// ManifestsSkipped counts damaged job manifests skipped at recovery.
	ManifestsSkipped int `json:"manifests_skipped,omitempty"`
	// ShedLastMinute and QuarantinedLastMinute are the sliding-window
	// overload signals the degradation thresholds apply to.
	ShedLastMinute        int             `json:"shed_last_minute,omitempty"`
	QuarantinedLastMinute int             `json:"quarantined_last_minute,omitempty"`
	Fleet                 *FleetReadyView `json:"fleet,omitempty"`
}

// FleetReadyView is the fleet section of ReadyView.
type FleetReadyView struct {
	Node string `json:"node"`
	// LiveNodes counts fleet nodes with an unexpired liveness heartbeat.
	LiveNodes int `json:"live_nodes"`
	// JobsAwaitingRecovery counts jobs whose latest manifest says running
	// but whose lease has lapsed: their holder died or hung, and they wait
	// for some node to claim and resume them.
	JobsAwaitingRecovery int `json:"jobs_awaiting_recovery"`
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	v := ReadyView{
		Status:                "ready",
		Workers:               s.cfg.Workers,
		WorkersBusy:           int(s.busy.Value()),
		QueueDepth:            int(s.qDepth.Value()),
		JobsRunning:           int(s.running.Value()),
		ManifestsSkipped:      int(s.reg.Counter("serve.manifests_skipped").Value()),
		ShedLastMinute:        s.shedWindow.count(now),
		QuarantinedLastMinute: s.quarWindow.count(now),
	}
	if v.ManifestsSkipped > 0 {
		v.Degraded = append(v.Degraded, fmt.Sprintf("recovery skipped %d damaged job manifests", v.ManifestsSkipped))
	}
	if v.ShedLastMinute >= s.cfg.ShedDegradeThreshold {
		v.Degraded = append(v.Degraded, fmt.Sprintf("%d submissions shed in the last minute (threshold %d)", v.ShedLastMinute, s.cfg.ShedDegradeThreshold))
	}
	if v.QuarantinedLastMinute >= s.cfg.QuarantineDegradeThreshold {
		v.Degraded = append(v.Degraded, fmt.Sprintf("%d jobs quarantined in the last minute (threshold %d)", v.QuarantinedLastMinute, s.cfg.QuarantineDegradeThreshold))
	}
	if s.fleetStore != nil {
		v.Fleet = &FleetReadyView{
			Node:                 s.cfg.NodeID,
			LiveNodes:            int(s.fleetLiveNodes.Value()),
			JobsAwaitingRecovery: int(s.fleetRecovering.Value()),
		}
		if s.fleetDegraded.Value() > 0 {
			v.Degraded = append(v.Degraded, "fleet has jobs awaiting lease recovery")
		}
	}
	if len(v.Degraded) > 0 {
		v.Status = "degraded"
	}
	code := http.StatusOK
	if s.Draining() {
		v.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// specNameRe validates named-spec references before they touch the
// filesystem.
var specNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// SubmitView is the JSON body answering POST /v1/jobs.
type SubmitView struct {
	StatusView
	// Warnings are the spec reader's semantic lint findings (probability
	// normalisation, ...); the job runs on the normalised spec.
	Warnings []string `json:"warnings,omitempty"`
}

// maybeShed applies overload-aware admission: a submission carrying a
// deadline the server cannot plausibly meet — given the queue backlog and
// the observed per-job service time — is answered 429 with a Retry-After
// hint instead of queued to certain failure. It reports whether the
// response was written. With no service-time observations yet the server
// admits rather than guessing.
// admitError is an admission or validation failure that has not been written
// to a response yet, so batch expansion can record it per cell while the
// single-job path renders it as the usual HTTP error.
type admitError struct {
	status     int
	retryAfter string // Retry-After header value, when applicable
	msg        string
}

func (e *admitError) Error() string { return e.msg }

func admitErrorf(status int, format string, args ...any) *admitError {
	return &admitError{status: status, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) writeAPIError(w http.ResponseWriter, e *admitError) {
	if e.retryAfter != "" {
		w.Header().Set("Retry-After", e.retryAfter)
	}
	writeError(w, e.status, "%s", e.msg)
}

// shedCheck applies deadline-aware admission shedding: a request carrying a
// deadline the server cannot plausibly meet — given the queue backlog and
// the observed per-job service time — is refused with a Retry-After hint
// instead of queued to certain failure. With no service-time observations
// yet the server admits rather than guessing.
func (s *Server) shedCheck(req *JobRequest, queued int) *admitError {
	if req.DeadlineMS <= 0 {
		return nil
	}
	wait, ok := s.estimateWait(queued)
	if !ok {
		return nil
	}
	budget := time.Duration(req.DeadlineMS) * time.Millisecond
	if wait <= budget {
		return nil
	}
	s.reg.Counter("serve.jobs_shed").Inc()
	s.shedWindow.record(time.Now())
	e := admitErrorf(http.StatusTooManyRequests,
		"deadline of %dms cannot be met (estimated completion in %v with %d jobs queued); shed at admission",
		req.DeadlineMS, wait.Round(time.Millisecond), queued)
	e.retryAfter = s.shedRetryAfter(wait)
	return e
}

// validateJob checks a decoded request and resolves spec_name to the spec
// text in place. It owns every per-request check that does not need the
// parsed system model.
func (s *Server) validateJob(req *JobRequest) *admitError {
	switch {
	case req.Spec == "" && req.SpecName == "":
		return admitErrorf(http.StatusBadRequest, "one of spec or spec_name is required")
	case req.Spec != "" && req.SpecName != "":
		return admitErrorf(http.StatusBadRequest, "spec and spec_name are mutually exclusive")
	}
	if req.DeadlineMS < 0 {
		return admitErrorf(http.StatusBadRequest, "deadline_ms must be positive")
	}
	if req.Failpoint != "" {
		if !s.cfg.Failpoints {
			return admitErrorf(http.StatusBadRequest, "failpoints are not enabled on this server")
		}
		if !validFailpoint(req.Failpoint) {
			return admitErrorf(http.StatusBadRequest, "unknown failpoint %q", req.Failpoint)
		}
	}
	// The server-side generation budget clamps every run, including ones
	// asking for the (larger) engine default by leaving the field zero.
	if s.cfg.MaxGenerations > 0 && (req.GA.MaxGenerations <= 0 || req.GA.MaxGenerations > s.cfg.MaxGenerations) {
		req.GA.MaxGenerations = s.cfg.MaxGenerations
	}
	if req.SpecName != "" {
		if s.cfg.SpecDir == "" {
			return admitErrorf(http.StatusBadRequest, "this server has no spec directory; submit an inline spec")
		}
		if !specNameRe.MatchString(req.SpecName) {
			return admitErrorf(http.StatusBadRequest, "invalid spec_name %q", req.SpecName)
		}
		data, err := os.ReadFile(filepath.Join(s.cfg.SpecDir, req.SpecName+".spec"))
		if err != nil {
			return admitErrorf(http.StatusNotFound, "unknown spec %q", req.SpecName)
		}
		req.Spec = string(data)
	}
	return nil
}

// admitJob queues one validated job, enforcing draining, backlog bounds and
// deadline shedding. It owns both the fleet and the single-node admission
// paths and emits the submitted counter and lifecycle span on success.
func (s *Server) admitJob(req JobRequest, system string) (*Job, *admitError) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, admitErrorf(http.StatusServiceUnavailable, "server is shutting down")
	}
	if s.fleetStore != nil {
		// Fleet admission: bound the fleet-wide backlog of unstarted jobs
		// the same way the single-node queue is bounded.
		queued := 0
		for _, j := range s.jobs {
			if j.snapshot().State == StateQueued {
				queued++
			}
		}
		s.mu.Unlock()
		if queued >= s.cfg.QueueDepth {
			s.reg.Counter("serve.jobs_rejected").Inc()
			e := admitErrorf(http.StatusTooManyRequests, "queue full (%d jobs waiting); retry later", queued)
			e.retryAfter = "1"
			return nil, e
		}
		if e := s.shedCheck(&req, queued); e != nil {
			return nil, e
		}
		j, err := s.submitFleet(req, system)
		if err != nil {
			return nil, admitErrorf(http.StatusInternalServerError, "publish job: %v", err)
		}
		s.reg.Counter("serve.jobs_submitted").Inc()
		if s.lifecycleTracing() {
			s.emitJobSpan(obs.JobEvent{Job: j.ID, Event: obs.JobSubmitted,
				State: string(StateQueued), Node: s.cfg.NodeID})
		}
		return j, nil
	}
	if e := s.shedCheck(&req, len(s.queue)); e != nil {
		s.mu.Unlock()
		return nil, e
	}
	id := jobID(s.seq + 1)
	j := &Job{ID: id, Request: req, dir: s.jobDir(id), system: system}
	j.state = StateQueued
	j.created = time.Now()
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		s.mu.Unlock()
		return nil, admitErrorf(http.StatusInternalServerError, "job dir: %v", err)
	}
	// Persist the queued manifest before the job becomes visible to a
	// worker: once it is on the queue a worker may transition it to running
	// (or even terminal) and persist that, and a stale queued write landing
	// afterwards would clobber the newer state.
	s.persist(j)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		os.RemoveAll(j.dir)
		s.reg.Counter("serve.jobs_rejected").Inc()
		e := admitErrorf(http.StatusTooManyRequests, "queue full (%d jobs waiting); retry later", cap(s.queue))
		e.retryAfter = "1"
		return nil, e
	}
	s.seq++
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.qDepth.Set(float64(len(s.queue)))
	s.jobsByState()
	s.mu.Unlock()
	s.reg.Counter("serve.jobs_submitted").Inc()
	if s.lifecycleTracing() {
		s.emitJobSpan(obs.JobEvent{Job: id, Event: obs.JobSubmitted,
			State: string(StateQueued)})
	}
	return j, nil
}

// respondSubmit writes the 202 accepted view for a freshly admitted (or
// cache-materialised) job.
func respondSubmit(w http.ResponseWriter, j *Job, warns []specio.Warning) {
	view := SubmitView{StatusView: j.status(j.system)}
	for _, wn := range warns {
		view.Warnings = append(view.Warnings, wn.String())
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "request exceeds %d bytes", s.cfg.MaxSpecBytes)
		return
	}
	var req JobRequest
	dec := json.NewDecoder(bytesReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "request body: %v", err)
		return
	}
	if aerr := s.validateJob(&req); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	// Reject malformed specs at the door, with the reader's line-numbered
	// diagnostics, rather than burning a worker on them.
	sys, warns, err := specio.ReadWarnBytes([]byte(req.Spec))
	if err != nil {
		writeError(w, http.StatusBadRequest, "spec: %v", err)
		return
	}

	// Cache consult happens before admission: a hit consumes no queue slot
	// and no worker, so it bypasses backlog bounds and shedding entirely.
	if key, ok := s.cacheKey(sys, &req); ok {
		if e, hit := s.cache.Get(key); hit {
			j, aerr := s.materializeCached(req, sys.App.Name, e)
			if aerr != nil {
				s.writeAPIError(w, aerr)
				return
			}
			if j != nil {
				respondSubmit(w, j, warns)
				return
			}
			// The hit could not be materialised; run the job for real.
		}
	}

	j, aerr := s.admitJob(req, sys.App.Name)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	respondSubmit(w, j, warns)
}

// ListView is the JSON body answering GET /v1/jobs. Next, when present,
// is the offset cursor of the following page; clients (Client.ListAll)
// follow it until it disappears.
type ListView struct {
	Jobs   []StatusView `json:"jobs"`
	Total  int          `json:"total"`
	Offset int          `json:"offset"`
	Limit  int          `json:"limit"`
	Next   string       `json:"next,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	offset, err := queryInt(r, "offset", 0)
	if err == nil && offset < 0 {
		err = errors.New("negative")
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "offset: %v", err)
		return
	}
	limit, err := queryInt(r, "limit", 50)
	if err == nil && (limit <= 0 || limit > 500) {
		err = errors.New("must be in [1,500]")
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "limit: %v", err)
		return
	}
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	page := make([]*Job, 0, limit)
	for i := offset; i < len(ids) && len(page) < limit; i++ {
		page = append(page, s.jobs[ids[i]])
	}
	s.mu.Unlock()
	view := ListView{Jobs: make([]StatusView, 0, len(page)), Total: len(ids), Offset: offset, Limit: limit}
	for _, j := range page {
		view.Jobs = append(view.Jobs, j.status(j.system))
	}
	if next := offset + len(page); next < len(ids) {
		view.Next = strconv.Itoa(next)
	}
	writeJSON(w, http.StatusOK, view)
}

// lookup resolves the {id} path segment, writing the 404 itself on a miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	if !validJobID(id) {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.status(j.system))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	sys, res := j.sys, j.result
	j.mu.Unlock()
	if !state.Terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; no result yet", j.ID, state)
		return
	}
	if sys != nil && res != nil {
		doc, err := renderResult(j, j.snapshot(), sys, res)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "render result: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc)
		return
	}
	if doc := s.loadResultDoc(j); doc != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc)
		return
	}
	writeError(w, http.StatusConflict, "job %s is %s and produced no result", j.ID, state)
}

// loadResultDoc returns the job's persisted result document, or nil. In
// fleet mode corrupt epochs are skipped down to the last valid one.
func (s *Server) loadResultDoc(j *Job) []byte {
	if s.fleetStore != nil {
		data, _, err := s.fleetStore.Latest(j.ID, fleet.KindResult, func(d []byte) error {
			if !json.Valid(d) {
				return errors.New("result document is not valid JSON")
			}
			return nil
		})
		if err != nil {
			return nil
		}
		return data
	}
	return j.loadResult()
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if s.fleetStore != nil {
		j.mu.Lock()
		state := j.state
		local := j.lease != nil
		j.mu.Unlock()
		if state.Terminal() {
			writeError(w, http.StatusConflict, "job %s is already %s", j.ID, state)
			return
		}
		// The durable marker reaches whichever node holds (or will claim)
		// the job, even if that is not us.
		if err := s.fleetStore.RequestCancel(j.ID); err != nil {
			writeError(w, http.StatusInternalServerError, "cancel %s: %v", j.ID, err)
			return
		}
		if local {
			// Held here: stop it now rather than at the next heartbeat. The
			// worker commits the terminal manifest and releases the lease.
			j.requestCancel(errors.New("cancelled by client"))
		}
		writeJSON(w, http.StatusAccepted, j.status(j.system))
		return
	}
	state, changed := j.requestCancel(errors.New("cancelled by client"))
	if !changed {
		writeError(w, http.StatusConflict, "job %s is already %s", j.ID, state)
		return
	}
	if state == StateCancelled {
		// Was still queued: terminal on the spot.
		s.persist(j)
		s.reg.Counter("serve.jobs_cancelled").Inc()
		if s.lifecycleTracing() {
			j.mu.Lock()
			dwellNs := j.dwellLocked(time.Now())
			j.mu.Unlock()
			s.emitTerminal(j, StateQueued, StateCancelled, 0, dwellNs, 0, "cancelled by client")
		}
		s.mu.Lock()
		s.jobsByState()
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusAccepted, j.status(j.system))
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}
