package serve

import "testing"

// TestStateTerminal pins the terminal set: exactly done, failed, cancelled
// and quarantined. A new state added without updating Terminal() breaks
// every piece of machinery keyed on it (result serving, re-enqueue guards,
// client polling), so the full table lives here.
func TestStateTerminal(t *testing.T) {
	cases := []struct {
		state State
		want  bool
	}{
		{StateQueued, false},
		{StateRunning, false},
		{StateDone, true},
		{StateFailed, true},
		{StateCancelled, true},
		{StateQuarantined, true},
	}
	for _, c := range cases {
		if got := c.state.Terminal(); got != c.want {
			t.Errorf("State(%q).Terminal() = %v, want %v", c.state, got, c.want)
		}
	}
}

// TestStateValid: every lifecycle member is valid, and junk — including
// the zero value and case variants — is not. Recovery leans on this to
// reject corrupt manifests.
func TestStateValid(t *testing.T) {
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StateQuarantined} {
		if !s.valid() {
			t.Errorf("State(%q).valid() = false, want true", s)
		}
	}
	for _, s := range []State{"", "bogus", "Queued", "QUARANTINED", "quarantine", "done "} {
		if s.valid() {
			t.Errorf("State(%q).valid() = true, want false", s)
		}
	}
}
