package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"momosyn/internal/obs"
	"momosyn/internal/serve"
)

// syncBuf is a concurrency-safe byte buffer: the access logger writes from
// handler goroutines while the test reads from its own.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// jobEvents filters a trace stream down to the lifecycle spans of one job.
func jobEvents(t *testing.T, events []*obs.Event, id string) []*obs.JobEvent {
	t.Helper()
	var out []*obs.JobEvent
	for _, ev := range events {
		if ev.Ev != obs.EvJob {
			continue
		}
		if err := obs.ValidateEvent(ev); err != nil {
			t.Fatalf("invalid job event: %v", err)
		}
		if ev.Job.Job == id {
			out = append(out, ev.Job)
		}
	}
	return out
}

// TestLifecycleSpans runs a job end to end with lifecycle tracing on and
// checks the span stream: submitted → attempt → checkpoint(s) → terminal,
// every event schema-valid, with dwell time attributed to the state left.
func TestLifecycleSpans(t *testing.T) {
	var trace bytes.Buffer
	sink := obs.NewJSONLSink(&trace)
	run := obs.NewRun(nil, sink)

	spec := tinySpec(t)
	s := newServer(t, serve.Config{
		Workers: 1, QueueDepth: 8,
		CheckpointEvery: 1,
		Lifecycle:       run,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	a := newAPI(t, s)

	j := a.submit(quickJob(spec, 11))
	a.await(j.ID, "done", stateIs(serve.StateDone))

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("close trace: %v", err)
	}

	events, err := obs.ReadEvents(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	spans := jobEvents(t, events, j.ID)
	if len(spans) < 3 {
		t.Fatalf("got %d spans, want at least submitted+attempt+terminal: %+v", len(spans), spans)
	}

	// The stream opens with submission into the queue and closes terminal.
	first, last := spans[0], spans[len(spans)-1]
	if first.Event != obs.JobSubmitted || first.State != string(serve.StateQueued) {
		t.Fatalf("first span = %+v, want submitted into queued", first)
	}
	if first.From != "" {
		t.Fatalf("submitted span leaves state %q, want none", first.From)
	}
	if last.Event != obs.JobTerminal || last.State != string(serve.StateDone) {
		t.Fatalf("last span = %+v, want terminal done", last)
	}
	if last.From != string(serve.StateRunning) || last.DwellNs <= 0 {
		t.Fatalf("terminal span = %+v, want positive dwell attributed to running", last)
	}

	var attempts, checkpoints int
	for _, sp := range spans {
		switch sp.Event {
		case obs.JobAttempt:
			attempts++
			if sp.From != string(serve.StateQueued) || sp.State != string(serve.StateRunning) {
				t.Fatalf("attempt span = %+v, want queued→running", sp)
			}
			if sp.Attempt != 1 {
				t.Fatalf("attempt span numbered %d, want 1 on the happy path", sp.Attempt)
			}
			if sp.DwellNs < 0 {
				t.Fatalf("attempt span with negative queue dwell: %+v", sp)
			}
		case obs.JobCheckpoint:
			checkpoints++
			if sp.DwellNs <= 0 {
				t.Fatalf("checkpoint span without a save duration: %+v", sp)
			}
		}
	}
	if attempts != 1 {
		t.Fatalf("got %d attempt spans, want exactly 1", attempts)
	}
	if checkpoints == 0 {
		t.Fatalf("no checkpoint spans with CheckpointEvery=1: %+v", spans)
	}
}

// TestCancelQueuedSpan cancels a job that never ran (no workers started)
// and expects a terminal span attributing the whole dwell to the queue.
func TestCancelQueuedSpan(t *testing.T) {
	sink := &obs.CollectSink{}
	run := obs.NewRun(nil, sink)

	spec := tinySpec(t)
	s := newServer(t, serve.Config{Workers: 1, QueueDepth: 8, Lifecycle: run})
	a := newAPI(t, s)

	j := a.submit(quickJob(spec, 5))
	if resp := a.do("DELETE", "/v1/jobs/"+j.ID, nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	spans := jobEvents(t, sink.Events(), j.ID)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want submitted+terminal: %+v", len(spans), spans)
	}
	term := spans[1]
	if term.Event != obs.JobTerminal || term.State != string(serve.StateCancelled) {
		t.Fatalf("second span = %+v, want terminal cancelled", term)
	}
	if term.From != string(serve.StateQueued) || term.DwellNs < 0 {
		t.Fatalf("terminal span = %+v, want dwell attributed to queued", term)
	}
	if term.Detail == "" {
		t.Fatalf("terminal cancellation span without a cause: %+v", term)
	}
}

// TestAccessLog checks the structured access log: one JSON line per
// request, with the job id on both the submission (via Location) and the
// {id} routes, and nothing at all when the log is disabled.
func TestAccessLog(t *testing.T) {
	logBuf := &syncBuf{}
	spec := tinySpec(t)
	s := newServer(t, serve.Config{Workers: 1, QueueDepth: 8, AccessLog: logBuf})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	a := newAPI(t, s)

	j := a.submit(quickJob(spec, 7))
	a.await(j.ID, "done", stateIs(serve.StateDone))
	if resp := a.do("GET", "/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	// The log line lands just after the response is flushed to the client,
	// so wait for the last request to appear before parsing the log.
	for deadline := time.Now().Add(5 * time.Second); !strings.Contains(logBuf.String(), "/healthz"); {
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reached the access log:\n%s", logBuf.String())
		}
		time.Sleep(time.Millisecond)
	}

	type record struct {
		Time       string  `json:"time"`
		Method     string  `json:"method"`
		Path       string  `json:"path"`
		Status     int     `json:"status"`
		DurationMS float64 `json:"duration_ms"`
		Bytes      int64   `json:"bytes"`
		Job        string  `json:"job"`
		Remote     string  `json:"remote"`
	}
	var records []record
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		records = append(records, r)
	}

	byPath := func(method, path string) *record {
		for i := range records {
			if records[i].Method == method && records[i].Path == path {
				return &records[i]
			}
		}
		return nil
	}
	submit := byPath("POST", "/v1/jobs")
	if submit == nil {
		t.Fatalf("no access-log line for the submission; log:\n%s", logBuf.String())
	}
	if submit.Status != http.StatusAccepted || submit.Job != j.ID {
		t.Fatalf("submission line = %+v, want 202 with job %s (from Location)", submit, j.ID)
	}
	if submit.DurationMS < 0 || submit.Bytes <= 0 || submit.Time == "" {
		t.Fatalf("submission line missing timing/size: %+v", submit)
	}
	status := byPath("GET", "/v1/jobs/"+j.ID)
	if status == nil || status.Job != j.ID || status.Status != http.StatusOK {
		t.Fatalf("status line = %+v, want 200 with job %s (from path)", status, j.ID)
	}
	health := byPath("GET", "/healthz")
	if health == nil || health.Job != "" {
		t.Fatalf("healthz line = %+v, want job-less entry", health)
	}
	// Every request the test made appears exactly once.
	if polls := countWhere(records, func(r record) bool {
		return r.Method == "GET" && r.Path == "/v1/jobs/"+j.ID
	}); polls < 1 {
		t.Fatalf("status polls missing from access log")
	}

	// Disabled log: the same traffic writes nothing anywhere.
	s2 := newServer(t, serve.Config{Workers: 1, QueueDepth: 8})
	a2 := newAPI(t, s2)
	if resp := a2.do("GET", "/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}

func countWhere[T any](xs []T, pred func(T) bool) int {
	n := 0
	for _, x := range xs {
		if pred(x) {
			n++
		}
	}
	return n
}

// TestEndpointLatencyHistograms checks that each route records its handler
// latency into a per-endpoint histogram in the server registry.
func TestEndpointLatencyHistograms(t *testing.T) {
	spec := tinySpec(t)
	s := newServer(t, serve.Config{Workers: 1, QueueDepth: 8})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	a := newAPI(t, s)

	j := a.submit(quickJob(spec, 3))
	a.await(j.ID, "done", stateIs(serve.StateDone))
	a.do("GET", "/healthz", nil, nil)
	a.do("GET", "/v1/jobs", nil, nil)

	var snap struct {
		Histograms map[string]struct {
			Count  uint64    `json:"count"`
			Sum    obs.Float `json:"sum"`
			Bounds []float64 `json:"bounds"`
			Counts []uint64  `json:"counts"`
		} `json:"histograms"`
	}
	resp := a.do("GET", "/metrics", nil, &snap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	for _, name := range []string{
		"serve.http_seconds.post_v1_jobs",
		"serve.http_seconds.get_v1_jobs",
		"serve.http_seconds.get_v1_jobs_id",
		"serve.http_seconds.get_healthz",
	} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("histogram %q missing from /metrics", name)
		}
		if h.Count == 0 {
			t.Fatalf("histogram %q recorded no observations", name)
		}
		if len(h.Counts) != len(h.Bounds)+1 {
			t.Fatalf("histogram %q has %d counts for %d bounds", name, len(h.Counts), len(h.Bounds))
		}
		var total uint64
		for _, c := range h.Counts {
			total += c
		}
		if total != h.Count {
			t.Fatalf("histogram %q bucket counts sum to %d, want %d", name, total, h.Count)
		}
	}
	// Routes never hit stay present (registered eagerly) but empty.
	if h, ok := snap.Histograms["serve.http_seconds.delete_v1_jobs_id"]; ok && h.Count != 0 {
		t.Fatalf("DELETE histogram counted %d requests, none were made", h.Count)
	}
}

// TestMetricsPrometheusNegotiation checks Accept-driven content
// negotiation on /metrics: JSON stays the default, text/plain gets the
// Prometheus 0.0.4 exposition with consistent histogram series.
func TestMetricsPrometheusNegotiation(t *testing.T) {
	s := newServer(t, serve.Config{Workers: 1, QueueDepth: 8})
	a := newAPI(t, s)

	// A couple of requests so the histograms have observations.
	a.do("GET", "/healthz", nil, nil)
	a.do("GET", "/v1/jobs", nil, nil)

	// Default (no Accept preference): JSON, as before.
	var js map[string]json.RawMessage
	resp := a.do("GET", "/metrics", nil, &js)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default /metrics content type = %q, want JSON", ct)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := js[key]; !ok {
			t.Fatalf("JSON snapshot missing %q section", key)
		}
	}

	// Accept: text/plain → Prometheus exposition.
	req, err := http.NewRequest("GET", a.ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	presp, err := a.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if ct := presp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prometheus content type = %q, want %q", ct, obs.PromContentType)
	}
	body, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"# TYPE serve_http_requests counter",
		"# TYPE serve_workers gauge",
		"# TYPE serve_batches gauge",
		"# TYPE serve_batch_cells counter",
		"# TYPE serve_batches_submitted counter",
		"# TYPE serve_http_seconds_get_healthz histogram",
		`serve_http_seconds_get_healthz_bucket{le="+Inf"}`,
		"serve_http_seconds_get_healthz_sum",
		"serve_http_seconds_get_healthz_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, text)
		}
	}
	// Cumulative buckets: the +Inf bucket equals the series count.
	var infBucket, count string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `serve_http_seconds_get_healthz_bucket{le="+Inf"} `) {
			infBucket = strings.Fields(line)[1]
		}
		if strings.HasPrefix(line, "serve_http_seconds_get_healthz_count ") {
			count = strings.Fields(line)[1]
		}
	}
	if infBucket == "" || infBucket != count {
		t.Fatalf("+Inf bucket %q != count %q", infBucket, count)
	}
}
