package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/synth"
)

// Job budgets and lifecycle hardening: attempt accounting with exponential
// backoff and quarantine, per-job wall-clock deadlines, a worker watchdog
// for attempts that stop making generation progress, and the sliding
// windows behind overload-aware admission and /readyz degradation.

// errJobDeadline is the cancellation cause of a run stopped by its
// wall-clock budget (-job-timeout or the request's deadline_ms).
var errJobDeadline = errors.New("serve: job deadline exceeded")

// errWatchdogStall is the cancellation cause of a run killed by the worker
// watchdog because its GA made no generation progress for too long.
var errWatchdogStall = errors.New("serve: watchdog: no generation progress")

// quarantineCause renders the terminal error of a quarantined job.
func quarantineCause(attempts int, last error) string {
	return fmt.Sprintf("quarantined after %d failed attempts; last failure: %v", attempts, last)
}

// retryDelay is the exponential backoff separating attempt n (1-based
// count of failures so far) from the next execution, capped at one minute
// so a long-lived flapping job still retries at a bounded cadence.
func retryDelay(base time.Duration, attempts int) time.Duration {
	if base <= 0 {
		return 0
	}
	const maxDelay = time.Minute
	d := base
	for i := 1; i < attempts; i++ {
		d *= 2
		if d >= maxDelay {
			return maxDelay
		}
	}
	if d > maxDelay {
		return maxDelay
	}
	return d
}

// ---- failpoints ----

// validFailpoint accepts the failpoint names submissions may carry when
// Config.Failpoints is on: "fail" (every attempt errors), "fail:N" (the
// first N attempts error, then the job runs normally), "panic" (the
// attempt panics), "hang" (the attempt wedges, ignoring cancellation — the
// watchdog-abandon case), "hang-coop" (the attempt blocks until cancelled,
// then errors with the cancellation cause).
func validFailpoint(name string) bool {
	base, arg, hasArg := strings.Cut(name, ":")
	switch base {
	case "fail":
		if !hasArg {
			return true
		}
		n, err := strconv.Atoi(arg)
		return err == nil && n > 0
	case "panic", "hang", "hang-coop":
		return !hasArg
	default:
		return false
	}
}

// failpoint executes the named fault in place of the synthesis. It runs
// inside the same goroutine and panic barrier as a real run, so its faults
// exercise the genuine failure paths.
func (s *Server) failpoint(ctx context.Context, j *Job, name string) error {
	base, arg, _ := strings.Cut(name, ":")
	switch base {
	case "fail":
		if n, err := strconv.Atoi(arg); err == nil {
			j.mu.Lock()
			prior := j.attempts
			j.mu.Unlock()
			if prior >= n {
				return nil // budget of injected failures spent: run for real
			}
		}
		return errors.New("failpoint: injected attempt failure")
	case "panic":
		panic("failpoint: injected panic")
	case "hang":
		select {} // wedged: never observes cancellation
	case "hang-coop":
		<-ctx.Done()
		return context.Cause(ctx)
	default:
		return fmt.Errorf("unknown failpoint %q", name)
	}
}

// ---- overload signals ----

// eventWindow is a sliding one-minute event counter (sheds, quarantines)
// feeding the /readyz degradation thresholds.
type eventWindow struct {
	mu    sync.Mutex
	times []time.Time
}

const eventWindowSpan = time.Minute

func (w *eventWindow) record(now time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.prune(now)
	w.times = append(w.times, now)
}

func (w *eventWindow) count(now time.Time) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.prune(now)
	return len(w.times)
}

func (w *eventWindow) prune(now time.Time) {
	cut := now.Add(-eventWindowSpan)
	i := 0
	for i < len(w.times) && w.times[i].Before(cut) {
		i++
	}
	if i > 0 {
		w.times = append(w.times[:0], w.times[i:]...)
	}
}

// observeServiceTime folds one finished execution into the EWMA the
// admission estimator uses (published as the serve.job_seconds_avg gauge).
func (s *Server) observeServiceTime(d time.Duration) {
	const alpha = 0.3
	s.svcMu.Lock()
	if s.svcAvg <= 0 {
		s.svcAvg = d.Seconds()
	} else {
		s.svcAvg = (1-alpha)*s.svcAvg + alpha*d.Seconds()
	}
	avg := s.svcAvg
	s.svcMu.Unlock()
	s.reg.Gauge("serve.job_seconds_avg").Set(avg)
}

// estimateWait predicts how long a submission admitted now would wait
// before finishing, from the queue backlog and the observed per-job
// service time. ok is false until at least one execution has been timed —
// with no estimate the server admits rather than guessing.
func (s *Server) estimateWait(queued int) (time.Duration, bool) {
	s.svcMu.Lock()
	avg := s.svcAvg
	s.svcMu.Unlock()
	if avg <= 0 {
		return 0, false
	}
	waves := queued/s.cfg.Workers + 1 // the backlog ahead, plus this job's own run
	return time.Duration(float64(waves) * avg * float64(time.Second)), true
}

// shedSubmission answers a submission whose deadline cannot plausibly be
// met. The Retry-After hint is the predicted wait, rounded up.
func (s *Server) shedRetryAfter(wait time.Duration) string {
	secs := int(wait / time.Second)
	if wait%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// ---- worker watchdog ----

// synthOutcome carries a synthesis attempt's results across the supervisor
// channel.
type synthOutcome struct {
	sys *model.System
	res *synth.Result
	err error
}

// superviseSynthesis runs the job's synthesis in its own goroutine and
// watches its generation progress. An attempt whose GA gauge stops moving
// for longer than Config.WatchdogStall is cancelled (cause
// errWatchdogStall); if it still has not returned after
// Config.WatchdogGrace the slot is abandoned so the pool keeps serving —
// the runaway goroutine leaks, but in fleet mode its late writes are
// fenced and in single-node mode they can only touch its own checkpoint.
// abandoned reports the slot-abandonment case.
func (s *Server) superviseSynthesis(ctx context.Context, cancel context.CancelCauseFunc, j *Job, run *obs.Run) (out synthOutcome, abandoned bool) {
	outc := make(chan synthOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				outc <- synthOutcome{err: fmt.Errorf("synthesis panicked: %v", p)}
			}
		}()
		sys, res, err := s.synthesize(ctx, j, run)
		outc <- synthOutcome{sys: sys, res: res, err: err}
	}()
	if s.cfg.WatchdogStall <= 0 {
		return <-outc, false
	}
	interval := s.cfg.WatchdogStall / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	gen := run.Registry().Gauge("ga.generation")
	lastGen := gen.Value()
	lastMove := time.Now()
	var killedAt time.Time
	for {
		select {
		case out = <-outc:
			return out, false
		case <-ticker.C:
		}
		now := time.Now()
		if !killedAt.IsZero() {
			if now.Sub(killedAt) < s.cfg.WatchdogGrace {
				continue
			}
			// Cancelled and still not back: the attempt is wedged below the
			// generation loop. Give the slot up.
			s.logf("serve: job %s: watchdog: attempt unresponsive %v after cancel; abandoning slot", j.ID, s.cfg.WatchdogGrace)
			return synthOutcome{err: fmt.Errorf("%w (attempt unresponsive, slot abandoned)", errWatchdogStall)}, true
		}
		if g := gen.Value(); g != lastGen {
			lastGen, lastMove = g, now
			continue
		}
		if now.Sub(lastMove) >= s.cfg.WatchdogStall {
			killedAt = now
			s.reg.Counter("serve.watchdog_kills").Inc()
			s.logf("serve: job %s: watchdog: no generation progress for %v; cancelling attempt", j.ID, s.cfg.WatchdogStall)
			cancel(errWatchdogStall)
		}
	}
}
