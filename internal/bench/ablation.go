package bench

import (
	"fmt"
	"io"

	"momosyn/internal/energy"
	"momosyn/internal/model"
	"momosyn/internal/synth"
)

// Ablation identifies one design-choice switch of the methodology.
type Ablation int

const (
	// AblFull is the complete proposed technique (reference point).
	AblFull Ablation = iota
	// AblNoImprovement disables the four improvement mutations of section
	// 4.1 (shut-down, area, timing, transition).
	AblNoImprovement
	// AblNoReplicas disables replica-core allocation for parallel
	// low-mobility tasks (Fig. 4 line 5).
	AblNoReplicas
	// AblSWOnlyDVS restricts voltage scaling to software processors,
	// reproducing the prior-work DVS the paper extends (section 4.2).
	// Only meaningful with DVS enabled.
	AblSWOnlyDVS
	// AblNeglectProbs neglects execution probabilities (the paper's
	// headline comparison, included for a complete picture).
	AblNeglectProbs
)

// String names the ablation.
func (a Ablation) String() string {
	switch a {
	case AblFull:
		return "full technique"
	case AblNoImprovement:
		return "no improvement mutations"
	case AblNoReplicas:
		return "no replica cores"
	case AblSWOnlyDVS:
		return "software-only DVS"
	case AblNeglectProbs:
		return "probabilities neglected"
	default:
		return fmt.Sprintf("Ablation(%d)", int(a))
	}
}

// options translates the ablation into synthesis options.
func (a Ablation) options(useDVS bool) synth.Options {
	opts := synth.Options{UseDVS: useDVS}
	switch a {
	case AblFull:
		// The reference configuration: no feature disabled.
	case AblNoImprovement:
		opts.NoImprovementMutations = true
	case AblNoReplicas:
		opts.NoReplicaCores = true
	case AblSWOnlyDVS:
		opts.DVSSoftwareOnly = true
	case AblNeglectProbs:
		opts.NeglectProbabilities = true
	}
	return opts
}

// AblationRow is one line of the ablation study.
type AblationRow struct {
	Ablation Ablation
	Stats    CellStats
	// DeltaPct is the power increase relative to the full technique
	// (positive = the removed ingredient was helping).
	DeltaPct float64
}

// AblationStudy runs the full technique and each ablation on the system,
// averaging cfg.Reps GA runs per variant, and reports the power cost of
// removing each ingredient. All variants are evaluated under the true
// execution probabilities.
func AblationStudy(sys *model.System, useDVS bool, cfg HarnessConfig, w io.Writer) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	variants := []Ablation{AblFull, AblNoImprovement, AblNoReplicas, AblNeglectProbs}
	if useDVS {
		variants = append(variants, AblSWOnlyDVS)
	}
	var rows []AblationRow
	var ref CellStats
	for _, v := range variants {
		stats, err := runAblationCell(sys, v, useDVS, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %v: %w", v, err)
		}
		row := AblationRow{Ablation: v, Stats: stats}
		if v == AblFull {
			ref = stats
		} else {
			row.DeltaPct = -energy.RelativeReduction(ref.Power, stats.Power)
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprint(w, formatAblationRow(row))
		}
	}
	return rows, nil
}

func runAblationCell(sys *model.System, v Ablation, useDVS bool, cfg HarnessConfig) (CellStats, error) {
	var cs CellStats
	for r := 0; r < cfg.Reps; r++ {
		opts := v.options(useDVS)
		opts.GA = cfg.GA
		opts.Weights = cfg.Weights
		opts.Seed = cfg.BaseSeed + int64(r)*7919
		res, err := synth.Synthesize(sys, opts)
		if err != nil {
			return cs, err
		}
		p := res.Best.AvgPower
		if cs.Runs == 0 || p < cs.MinPower {
			cs.MinPower = p
		}
		if cs.Runs == 0 || p > cs.MaxPower {
			cs.MaxPower = p
		}
		cs.Power += p
		cs.CPUTime += res.Elapsed
		if res.Best.Feasible() {
			cs.FeasibleRuns++
		}
		cs.Runs++
	}
	cs.Power /= float64(cs.Runs)
	return cs, nil
}

func formatAblationRow(r AblationRow) string {
	delta := " (reference)"
	switch {
	case r.Ablation == AblFull:
	case r.Stats.FeasibleRuns < r.Stats.Runs:
		// Raw power of infeasible candidates is not comparable: constraint
		// violations can fake arbitrarily low powers.
		delta = "  infeasible"
	default:
		delta = fmt.Sprintf("%+11.2f%%", r.DeltaPct)
	}
	return fmt.Sprintf("%-28s | %10.4f mW | %s | feasible %d/%d\n",
		r.Ablation, r.Stats.Power*1e3, delta, r.Stats.FeasibleRuns, r.Stats.Runs)
}
