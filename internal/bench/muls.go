package bench

import (
	"fmt"

	"momosyn/internal/gen"
	"momosyn/internal/model"
)

// mulSeeds fixes the twelve generator seeds behind mul1–mul12. The paper's
// own inputs were produced by an unpublished generator, so the instances
// are regenerated from the published envelope (3–5 modes, 8–32 tasks per
// mode, 2–4 PEs, 1–3 CLs, partially DVS-enabled); the seeds are arbitrary
// but frozen so results are reproducible.
var mulSeeds = [12]int64{102, 127, 81, 113, 68, 116, 137, 125, 33, 153, 146, 129}

// NumMuls is the number of generated benchmark instances (mul1..mul12).
const NumMuls = 12

// MulParams returns the generator parameters of benchmark muli (1-based).
func MulParams(i int) (gen.Params, error) {
	if i < 1 || i > NumMuls {
		return gen.Params{}, fmt.Errorf("bench: mul index %d outside [1,%d]", i, NumMuls)
	}
	p := gen.NewParams(mulSeeds[i-1])
	p.Name = fmt.Sprintf("mul%d", i)
	return p, nil
}

// MulSystem builds benchmark muli (1-based), one of the twelve generated
// examples used by Tables 1 and 2.
func MulSystem(i int) (*model.System, error) {
	p, err := MulParams(i)
	if err != nil {
		return nil, err
	}
	return gen.Generate(p)
}

// AllMulSystems builds mul1..mul12.
func AllMulSystems() ([]*model.System, error) {
	out := make([]*model.System, 0, NumMuls)
	for i := 1; i <= NumMuls; i++ {
		s, err := MulSystem(i)
		if err != nil {
			return nil, fmt.Errorf("bench: mul%d: %w", i, err)
		}
		out = append(out, s)
	}
	return out, nil
}
