package bench

import (
	"fmt"

	"momosyn/internal/model"
)

// SmartPhone builds the paper's real-life benchmark: an eight-mode OMSM
// (Fig. 1a) combining a GSM cellular phone, an MP3 player and a digital
// camera. The per-mode task graphs follow the function-level structure of
// the three public reference applications the paper profiled — the GSM
// 06.10 full-rate codec ("toast"), the jpeg-6b baseline decoder and the
// mpeg3play MP3 decoder — with execution characteristics drawn from the
// paper's stated envelope: hardware implementations run 5–100 times faster
// than their software counterparts at a small fraction of the power.
//
// The architecture is the paper's: one DVS-enabled GPP and two ASICs
// connected by a single bus.
//
// Mode execution probabilities (Fig. 1a):
//
//	Radio Link Control            0.74
//	GSM codec + RLC               0.09
//	MP3 play + RLC                0.10
//	Network Search                0.01
//	decode Photo + RLC            0.02
//	Show Photo                    0.02
//	MP3 play + Network Search     0.01
//	decode Photo + Network Search 0.01
func SmartPhone() (*model.System, error) {
	b := model.NewBuilder("smartphone")

	// Architecture: DVS GPP + 2 ASICs + single bus.
	b.AddPE(model.PE{
		Name: "GPP", Class: model.GPP, DVS: true,
		Vmax: 3.3, Vt: 0.8, Levels: []float64{1.2, 1.8, 2.5, 3.3},
		StaticPower: mw(0.12),
	})
	b.AddPE(model.PE{
		Name: "ASIC1", Class: model.ASIC,
		Vmax: 3.3, Vt: 0.8, Area: 800,
		StaticPower: mw(0.25),
	})
	b.AddPE(model.PE{
		Name: "ASIC2", Class: model.ASIC,
		Vmax: 3.3, Vt: 0.8, Area: 700,
		StaticPower: mw(0.20),
	})
	b.AddCL(model.CL{
		Name: "BUS", BytesPerSec: 10e6,
		PowerActive: mw(1.0), StaticPower: mw(0.06),
	}, "GPP", "ASIC1", "ASIC2")

	addPhoneTypes(b)

	// The eight operational modes. Periods: GSM speech frames repeat every
	// 20 ms, MP3 granules every 25 ms (the paper quotes the 25 ms sampling
	// rate of the MP3 decoder), photo decoding is pipelined at 25 ms per
	// block batch (Fig. 1b annotates φ = 0.025 s), RLC housekeeping and
	// network search run on a 50 ms grid.
	b.BeginMode("rlc", 0.74, ms(50))
	addRLC(b, "r")

	b.BeginMode("gsm_rlc", 0.09, ms(20))
	sinkEnc := addGSMEncoder(b, "ge")
	sinkDec := addGSMDecoder(b, "gd")
	addRLC(b, "r")
	_ = sinkEnc
	_ = sinkDec

	b.BeginMode("mp3_rlc", 0.10, ms(25))
	addMP3(b, "m")
	addRLC(b, "r")

	b.BeginMode("netsearch", 0.01, ms(50))
	addNetSearch(b, "n")

	b.BeginMode("photo_rlc", 0.02, ms(25))
	addJPEG(b, "j")
	addRLC(b, "r")

	b.BeginMode("showphoto", 0.02, ms(40))
	addShowPhoto(b, "s")

	b.BeginMode("mp3_net", 0.01, ms(25))
	addMP3(b, "m")
	addNetSearch(b, "n")

	b.BeginMode("photo_net", 0.01, ms(25))
	addJPEG(b, "j")
	addNetSearch(b, "n")

	// Top-level FSM transitions with the mode-change time limits annotated
	// in Fig. 1a (15-25 ms).
	tr := func(from, to string) { b.AddTransition(from, to, ms(25)) }
	tr("netsearch", "rlc")       // network found
	tr("rlc", "netsearch")       // network lost
	tr("rlc", "gsm_rlc")         // incoming call / user request
	tr("gsm_rlc", "rlc")         // terminate call
	tr("rlc", "mp3_rlc")         // play audio
	tr("mp3_rlc", "rlc")         // terminate audio
	tr("mp3_rlc", "mp3_net")     // network lost
	tr("mp3_net", "mp3_rlc")     // network found
	tr("rlc", "photo_rlc")       // take photo
	tr("photo_rlc", "rlc")       // photo decoded
	tr("photo_rlc", "photo_net") // network lost
	tr("photo_net", "photo_rlc") // network found
	tr("rlc", "showphoto")       // show photo
	tr("showphoto", "rlc")       // terminate photo
	tr("netsearch", "mp3_net")   // play audio while searching
	tr("mp3_net", "netsearch")   // terminate audio
	tr("netsearch", "photo_net") // take photo while searching
	tr("photo_net", "netsearch") // photo decoded

	return b.Finish()
}

// phoneType describes one task type of the smart phone: software execution
// time/power on the GPP, and an optional hardware implementation on one of
// the ASICs with the given speed-up, power fraction and core area.
type phoneType struct {
	name      string
	swUS      float64 // software execution time, microseconds
	swMW      float64 // software dynamic power, milliwatts
	hwPE      string  // "" = software-only
	speedup   float64 // hardware runs swUS/speedup
	powerFrac float64 // hardware power = swMW * powerFrac * speedup (energy powerFrac lower)
	area      int     // hardware core area in cells
}

// phoneTypes is the smart phone's technology library. Hardware speed-ups
// span the paper's 5-100x envelope. Task types deliberately recur across
// the three applications (HD and DEQ in MP3 and JPEG, IDCT in MP3's IMDCT
// and JPEG, FFT in the filterbank and the network searcher, VIT in RLC and
// network search), which is what enables cross-mode resource sharing.
var phoneTypes = []phoneType{
	// Shared signal-processing kernels.
	{name: "FFT", swUS: 420, swMW: 32, hwPE: "ASIC2", speedup: 40, powerFrac: 0.04, area: 320},
	{name: "HD", swUS: 260, swMW: 24, hwPE: "ASIC1", speedup: 25, powerFrac: 0.05, area: 260},
	{name: "DEQ", swUS: 150, swMW: 20, hwPE: "ASIC1", speedup: 20, powerFrac: 0.05, area: 180},
	{name: "IDCT", swUS: 520, swMW: 36, hwPE: "ASIC1", speedup: 60, powerFrac: 0.03, area: 400},
	{name: "CT", swUS: 1200, swMW: 28, hwPE: "ASIC1", speedup: 30, powerFrac: 0.05, area: 300},
	{name: "VIT", swUS: 480, swMW: 10, hwPE: "ASIC2", speedup: 50, powerFrac: 0.03, area: 360},
	{name: "CRC", swUS: 40, swMW: 6, hwPE: "ASIC2", speedup: 10, powerFrac: 0.10, area: 90},
	// GSM codec kernels.
	{name: "STP", swUS: 420, swMW: 26, hwPE: "ASIC2", speedup: 35, powerFrac: 0.04, area: 280},
	{name: "LTP", swUS: 480, swMW: 28, hwPE: "ASIC2", speedup: 35, powerFrac: 0.04, area: 300},
	{name: "RPE", swUS: 400, swMW: 26, hwPE: "ASIC1", speedup: 30, powerFrac: 0.05, area: 250},
	{name: "LPC", swUS: 380, swMW: 24, hwPE: "ASIC2", speedup: 25, powerFrac: 0.05, area: 240},
	{name: "APCM", swUS: 160, swMW: 18, hwPE: "ASIC1", speedup: 15, powerFrac: 0.08, area: 140},
	// Audio filterbank.
	{name: "SUBB", swUS: 540, swMW: 36, hwPE: "ASIC2", speedup: 45, powerFrac: 0.03, area: 380},
	{name: "ALIAS", swUS: 110, swMW: 9, hwPE: "", speedup: 0, powerFrac: 0, area: 0},
	{name: "STEREO", swUS: 120, swMW: 10, hwPE: "", speedup: 0, powerFrac: 0, area: 0},
	// Image helpers.
	{name: "UPSAMP", swUS: 900, swMW: 22, hwPE: "ASIC1", speedup: 20, powerFrac: 0.06, area: 200},
	{name: "DITHER", swUS: 800, swMW: 14, hwPE: "", speedup: 0, powerFrac: 0, area: 0},
	{name: "SCALE", swUS: 1300, swMW: 26, hwPE: "ASIC1", speedup: 25, powerFrac: 0.05, area: 260},
	// Control-dominated software-only types.
	{name: "PARSE", swUS: 60, swMW: 7, hwPE: "", speedup: 0, powerFrac: 0, area: 0},
	{name: "CTRL", swUS: 50, swMW: 6, hwPE: "", speedup: 0, powerFrac: 0, area: 0},
	{name: "MEAS", swUS: 80, swMW: 8, hwPE: "", speedup: 0, powerFrac: 0, area: 0},
	{name: "IO", swUS: 70, swMW: 8, hwPE: "", speedup: 0, powerFrac: 0, area: 0},
}

func addPhoneTypes(b *model.Builder) {
	for _, t := range phoneTypes {
		impls := []model.ImplSpec{{
			PE:    "GPP",
			Time:  t.swUS * 1e-6,
			Power: mw(t.swMW),
		}}
		if t.hwPE != "" {
			impls = append(impls, model.ImplSpec{
				PE:    t.hwPE,
				Time:  t.swUS * 1e-6 / t.speedup,
				Power: mw(t.swMW) * t.powerFrac * t.speedup,
				Area:  t.area,
			})
		}
		b.AddType(t.name, impls...)
	}
}

// addRLC emits the radio-link-control subgraph (12 tasks): receive-path
// burst processing with Viterbi equalisation and channel decoding, link
// measurements, and the control decisions for handover, RF power and
// timing advance.
func addRLC(b *model.Builder, p string) {
	t := func(name, tt string) string {
		n := p + "_" + name
		b.AddTask(n, tt, 0)
		return n
	}
	e := func(src, dst string, bytes float64) { b.AddEdge(src, dst, bytes) }

	burst := t("burst", "PARSE")
	equal := t("equalize", "VIT")
	deint := t("deinterleave", "PARSE")
	cdec := t("chandec", "VIT")
	crc := t("crc", "CRC")
	sacch := t("sacch", "PARSE")
	rssi := t("rssi", "MEAS")
	filt := t("measfilter", "MEAS")
	hand := t("handover", "CTRL")
	rfpw := t("rfpower", "CTRL")
	tadv := t("timingadv", "CTRL")
	rep := t("report", "CTRL")

	e(burst, equal, 312)
	e(equal, deint, 228)
	e(deint, cdec, 456)
	e(cdec, crc, 184)
	e(crc, sacch, 168)
	e(burst, rssi, 64)
	e(rssi, filt, 32)
	e(filt, hand, 24)
	e(filt, rfpw, 24)
	e(sacch, tadv, 40)
	e(sacch, hand, 40)
	e(hand, rep, 48)
	e(rfpw, rep, 16)
	e(tadv, rep, 16)
}

// addGSMEncoder emits the GSM 06.10 full-rate speech encoder (23 tasks):
// preprocessing and LPC analysis once per 20 ms frame, then four 5 ms
// sub-frames of short-term filtering, long-term prediction and RPE coding.
func addGSMEncoder(b *model.Builder, p string) string {
	t := func(name, tt string) string {
		n := p + "_" + name
		b.AddTask(n, tt, 0)
		return n
	}
	e := func(src, dst string, bytes float64) { b.AddEdge(src, dst, bytes) }

	pre := t("preproc", "PARSE")
	auto := t("autocorr", "LPC")
	schur := t("schur", "LPC")
	larq := t("larq", "APCM")
	e(pre, auto, 320)
	e(auto, schur, 36)
	e(schur, larq, 16)

	mux := t("mux", "PARSE")
	for sf := 0; sf < 4; sf++ {
		sfn := func(name string) string { return fmt.Sprintf("%s%d", name, sf) }
		stf := t(sfn("stfilter"), "STP")
		ltp := t(sfn("ltp"), "LTP")
		wf := t(sfn("weight"), "RPE")
		apq := t(sfn("apcmq"), "APCM")
		e(larq, stf, 16)
		e(pre, stf, 160)
		e(stf, ltp, 80)
		e(ltp, wf, 80)
		e(wf, apq, 28)
		e(apq, mux, 14)
	}
	return mux
}

// addGSMDecoder emits the GSM 06.10 speech decoder (19 tasks): demux, four
// sub-frames of APCM decoding and long-term synthesis, then short-term
// synthesis filtering and post-processing.
func addGSMDecoder(b *model.Builder, p string) string {
	t := func(name, tt string) string {
		n := p + "_" + name
		b.AddTask(n, tt, 0)
		return n
	}
	e := func(src, dst string, bytes float64) { b.AddEdge(src, dst, bytes) }

	demux := t("demux", "PARSE")
	lard := t("lardec", "APCM")
	e(demux, lard, 16)
	post := t("postproc", "IO")
	for sf := 0; sf < 4; sf++ {
		sfn := func(name string) string { return fmt.Sprintf("%s%d", name, sf) }
		apd := t(sfn("apcmdec"), "APCM")
		lts := t(sfn("ltpsyn"), "LTP")
		sts := t(sfn("stsyn"), "STP")
		e(demux, apd, 14)
		e(apd, lts, 80)
		e(lard, sts, 16)
		e(lts, sts, 80)
		e(sts, post, 160)
	}
	return post
}

// addMP3 emits the MP3 decoder (20 tasks) following mpeg3play's layer-III
// chain: header and side-info parsing, per-channel Huffman decoding,
// de-quantisation, stereo processing, alias reduction, IMDCT (an
// inverse-DCT kernel, shared with the JPEG decoder), frequency inversion
// and the polyphase synthesis filterbank built on FFT and subband kernels.
func addMP3(b *model.Builder, p string) {
	t := func(name, tt string) string {
		n := p + "_" + name
		b.AddTask(n, tt, 0)
		return n
	}
	e := func(src, dst string, bytes float64) { b.AddEdge(src, dst, bytes) }

	sync := t("sync", "PARSE")
	side := t("sideinfo", "PARSE")
	e(sync, side, 32)
	pcm := t("pcmout", "IO")
	stereo := t("stereo", "STEREO")
	for ch := 0; ch < 2; ch++ {
		cn := func(name string) string { return fmt.Sprintf("%s%d", name, ch) }
		sf := t(cn("scalefac"), "PARSE")
		hd := t(cn("huffman"), "HD")
		dq := t(cn("dequant"), "DEQ")
		e(side, sf, 34)
		e(sf, hd, 40)
		e(hd, dq, 1152)
		e(dq, stereo, 1152)
	}
	for ch := 0; ch < 2; ch++ {
		cn := func(name string) string { return fmt.Sprintf("%s%d", name, ch) }
		al := t(cn("alias"), "ALIAS")
		imdct := t(cn("imdct"), "IDCT")
		fi := t(cn("freqinv"), "ALIAS")
		fft := t(cn("dctshift"), "FFT")
		sb := t(cn("subband"), "SUBB")
		e(stereo, al, 1152)
		e(al, imdct, 1152)
		e(imdct, fi, 1152)
		e(fi, fft, 1152)
		e(fft, sb, 1024)
		e(sb, pcm, 1152)
	}
}

// addJPEG emits the baseline jpeg-6b decoder pipeline (13 tasks): header
// parse, then two restart-interval block pipelines decoding in parallel
// (Huffman decode, de-quantisation, zig-zag reorder, inverse DCT — Fig. 1b:
// 256 coefficients flow between the stages), merged by chroma upsampling,
// colour transform to the 256-colour display format and dithered output.
// Photo decoding is compute-heavy but rarely executed, which is exactly the
// kind of mode a probability-neglecting synthesis over-provisions for.
func addJPEG(b *model.Builder, p string) {
	t := func(name, tt string) string {
		n := p + "_" + name
		b.AddTask(n, tt, 0)
		return n
	}
	e := func(src, dst string, bytes float64) { b.AddEdge(src, dst, bytes) }

	hdr := t("header", "PARSE")
	up := t("upsample", "UPSAMP")
	for blk := 0; blk < 2; blk++ {
		bn := func(name string) string { return fmt.Sprintf("%s%d", name, blk) }
		hd := t(bn("huffman"), "HD")
		dq := t(bn("dequant"), "DEQ")
		zz := t(bn("zigzag"), "PARSE")
		// The IDCT carries the figure's θ = 25 ms deadline.
		idct := p + "_" + bn("idct")
		b.AddTask(idct, "IDCT", ms(25))
		e(hdr, hd, 128)
		e(hd, dq, 512) // 256 coefficients x 2 bytes
		e(dq, zz, 512)
		e(zz, idct, 512)
		e(idct, up, 768)
	}
	ct := t("colortrans", "CT")
	di := t("dither", "DITHER")
	out := t("display", "IO")
	e(up, ct, 768)
	e(ct, di, 768)
	e(di, out, 256)
}

// addNetSearch emits the network searcher (8 tasks): RF channel scan,
// FCCH frequency-burst detection via FFT, SCH synchronisation with Viterbi
// equalisation, BCCH decoding and cell ranking.
func addNetSearch(b *model.Builder, p string) {
	t := func(name, tt string) string {
		n := p + "_" + name
		b.AddTask(n, tt, 0)
		return n
	}
	e := func(src, dst string, bytes float64) { b.AddEdge(src, dst, bytes) }

	scan := t("rfscan", "MEAS")
	fcch := t("fcch", "FFT")
	sch := t("sch", "VIT")
	bcch := t("bcch", "VIT")
	crc := t("crc", "CRC")
	sysinfo := t("sysinfo", "PARSE")
	rank := t("cellrank", "CTRL")
	sel := t("cellselect", "CTRL")

	e(scan, fcch, 1024)
	e(fcch, sch, 156)
	e(sch, bcch, 456)
	e(bcch, crc, 184)
	e(crc, sysinfo, 168)
	e(sysinfo, rank, 64)
	e(scan, rank, 32)
	e(rank, sel, 16)
}

// addShowPhoto emits the photo viewer (5 tasks): load the stored image,
// scale it to the display, gamma-correct, dither to the 256-colour format
// and display.
func addShowPhoto(b *model.Builder, p string) {
	t := func(name, tt string) string {
		n := p + "_" + name
		b.AddTask(n, tt, 0)
		return n
	}
	e := func(src, dst string, bytes float64) { b.AddEdge(src, dst, bytes) }

	load := t("load", "IO")
	scale := t("scale", "SCALE")
	gamma := t("gamma", "CT")
	dith := t("dither", "DITHER")
	disp := t("display", "IO")

	e(load, scale, 2048)
	e(scale, gamma, 1536)
	e(gamma, dith, 1536)
	e(dith, disp, 512)
}
