// Package bench defines the paper's benchmark instances — the motivational
// examples of Figs. 2 and 3, the twelve generated examples mul1–mul12, and
// the smart-phone real-life example — and the experiment harness that
// regenerates Tables 1–3.
package bench

import (
	"momosyn/internal/model"
)

// ms converts milliseconds to seconds.
func ms(v float64) float64 { return v * 1e-3 }

// mw converts milliwatts to watts.
func mw(v float64) float64 { return v * 1e-3 }

// uws converts microwatt-seconds (µJ) and mws milliwatt-seconds (mJ) to
// joules; powers in the figure tables are derived as energy/time.
func uws(v float64) float64 { return v * 1e-6 }
func mws(v float64) float64 { return v * 1e-3 }

// Figure2System builds the motivational example of paper Fig. 2: two
// operational modes with three tasks each (types A–C in mode 1, D–F in
// mode 2), executing on a GPP (PE0) plus a 600-cell ASIC (PE1) joined by a
// bus. Mode probabilities are Ψ1 = 0.1 and Ψ2 = 0.9. Timing and
// communication issues are neglected (zero-byte edges, one-second periods,
// zero static power), exactly as in the paper's example, so the
// probability-weighted energies reproduce the published 26.7158 mWs vs
// 15.7423 mWs.
func Figure2System() (*model.System, error) {
	b := model.NewBuilder("figure2")
	b.AddPE(model.PE{Name: "PE0", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{Name: "PE1", Class: model.ASIC, Vmax: 3.3, Vt: 0.8, Area: 600})
	b.AddCL(model.CL{Name: "CL0", BytesPerSec: 1e6}, "PE0", "PE1")

	// Task type table of section 2.3: SW exec time / SW dynamic energy,
	// HW exec time / HW dynamic energy / core area. Powers are E/t.
	type row struct {
		name     string
		swT, swE float64 // ms, mWs
		hwT, hwE float64 // ms, mWs (hwE given in µWs in the paper)
		area     int
	}
	rows := []row{
		{"A", 20, 10, 2.0, 0.010, 240},
		{"B", 28, 14, 2.2, 0.012, 300},
		{"C", 32, 16, 1.6, 0.023, 275},
		{"D", 26, 13, 3.1, 0.047, 245},
		{"E", 30, 15, 1.8, 0.015, 210},
		{"F", 24, 14, 2.2, 0.032, 280},
	}
	for _, r := range rows {
		b.AddType(r.name,
			model.ImplSpec{PE: "PE0", Time: ms(r.swT), Power: mws(r.swE) / ms(r.swT)},
			model.ImplSpec{PE: "PE1", Time: ms(r.hwT), Power: mws(r.hwE) / ms(r.hwT), Area: r.area},
		)
	}

	b.BeginMode("O1", 0.1, 1.0)
	b.AddTask("t1", "A", 0)
	b.AddTask("t2", "B", 0)
	b.AddTask("t3", "C", 0)
	b.AddEdge("t1", "t2", 0)
	b.AddEdge("t2", "t3", 0)

	b.BeginMode("O2", 0.9, 1.0)
	b.AddTask("t4", "D", 0)
	b.AddTask("t5", "E", 0)
	b.AddTask("t6", "F", 0)
	b.AddEdge("t4", "t5", 0)
	b.AddEdge("t5", "t6", 0)

	b.AddTransition("O1", "O2", 0)
	b.AddTransition("O2", "O1", 0)
	return b.Finish()
}

// Figure2MappingB returns the paper's mapping of Fig. 2b — the optimum when
// probabilities are neglected: τ3 and τ5 in hardware, everything else in
// software.
func Figure2MappingB(s *model.System) model.Mapping {
	m := model.NewMapping(s.App)
	pe0, pe1 := model.PEID(0), model.PEID(1)
	m[0][0], m[0][1], m[0][2] = pe0, pe0, pe1 // t1,t2 SW; t3 HW
	m[1][0], m[1][1], m[1][2] = pe0, pe1, pe0 // t4 SW; t5 HW; t6 SW
	return m
}

// Figure2MappingC returns the paper's mapping of Fig. 2c — the optimum
// under the true execution probabilities: τ5 and τ6 in hardware.
func Figure2MappingC(s *model.System) model.Mapping {
	m := model.NewMapping(s.App)
	pe0, pe1 := model.PEID(0), model.PEID(1)
	m[0][0], m[0][1], m[0][2] = pe0, pe0, pe0
	m[1][0], m[1][1], m[1][2] = pe0, pe1, pe1
	return m
}

// Figure3System builds the motivational example of paper Fig. 3: task type
// A appears in both modes (τ1 in mode 1, τ4 in mode 2), enabling hardware
// resource sharing. Mode 1 repeats ten times faster than mode 2, so the
// hardware implementation of A amortises its component's static power only
// in mode 1: the energy-optimal implementation duplicates type A — hardware
// for τ1, software for τ4 — allowing PE1 and the bus to be shut down during
// mode 2 (paper Fig. 3c), beating the fully shared mapping of Fig. 3b.
func Figure3System() (*model.System, error) {
	b := model.NewBuilder("figure3")
	b.AddPE(model.PE{Name: "PE0", Class: model.GPP, Vmax: 3.3, Vt: 0.8, StaticPower: mw(0.2)})
	b.AddPE(model.PE{Name: "PE1", Class: model.ASIC, Vmax: 3.3, Vt: 0.8, Area: 600, StaticPower: mw(15)})
	b.AddCL(model.CL{Name: "CL0", BytesPerSec: 1e6, StaticPower: mw(2)}, "PE0", "PE1")

	// Type A is fast and cheap in hardware; B/C/E/F are software-only, so
	// only the placement of the two type-A tasks is free.
	b.AddType("A",
		model.ImplSpec{PE: "PE0", Time: ms(20), Power: mws(10) / ms(20)},
		model.ImplSpec{PE: "PE1", Time: ms(2), Power: uws(10) / ms(2), Area: 240},
	)
	b.AddType("B", model.ImplSpec{PE: "PE0", Time: ms(28), Power: mws(14) / ms(28)})
	b.AddType("C", model.ImplSpec{PE: "PE0", Time: ms(32), Power: mws(16) / ms(32)})
	b.AddType("E", model.ImplSpec{PE: "PE0", Time: ms(30), Power: mws(15) / ms(30)})
	b.AddType("F", model.ImplSpec{PE: "PE0", Time: ms(24), Power: mws(14) / ms(24)})

	b.BeginMode("O1", 0.3, 0.1)
	b.AddTask("t1", "A", 0)
	b.AddTask("t2", "B", 0)
	b.AddTask("t3", "C", 0)
	b.AddEdge("t1", "t2", 1000)
	b.AddEdge("t1", "t3", 1000)

	b.BeginMode("O2", 0.7, 1.0)
	b.AddTask("t4", "A", 0)
	b.AddTask("t5", "E", 0)
	b.AddTask("t6", "F", 0)
	b.AddEdge("t4", "t5", 1000)
	b.AddEdge("t5", "t6", 1000)

	b.AddTransition("O1", "O2", 0)
	b.AddTransition("O2", "O1", 0)
	return b.Finish()
}

// Figure3MappingShared returns Fig. 3b: both type-A tasks share the
// hardware core, so PE1 stays powered in both modes.
func Figure3MappingShared(s *model.System) model.Mapping {
	m := model.NewMapping(s.App)
	pe0, pe1 := model.PEID(0), model.PEID(1)
	m[0][0], m[0][1], m[0][2] = pe1, pe0, pe0
	m[1][0], m[1][1], m[1][2] = pe1, pe0, pe0
	return m
}

// Figure3MappingDuplicated returns Fig. 3c: type A is implemented twice —
// τ1 in hardware, τ4 in software — enabling PE1/CL0 shut-down in mode 2.
func Figure3MappingDuplicated(s *model.System) model.Mapping {
	m := model.NewMapping(s.App)
	pe0, pe1 := model.PEID(0), model.PEID(1)
	m[0][0], m[0][1], m[0][2] = pe1, pe0, pe0
	m[1][0], m[1][1], m[1][2] = pe0, pe0, pe0
	return m
}
