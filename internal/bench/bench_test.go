package bench

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"momosyn/internal/ga"
	"momosyn/internal/model"
)

func tinyCfg() HarnessConfig {
	return HarnessConfig{
		Reps: 1,
		GA:   ga.Config{PopSize: 12, MaxGenerations: 25, Stagnation: 10},
	}
}

func TestMulSystemsValidateAndMatchEnvelope(t *testing.T) {
	systems, err := AllMulSystems()
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != NumMuls {
		t.Fatalf("got %d systems", len(systems))
	}
	for i, sys := range systems {
		if err := sys.Validate(); err != nil {
			t.Errorf("mul%d: %v", i+1, err)
		}
		if n := len(sys.App.Modes); n < 3 || n > 5 {
			t.Errorf("mul%d: %d modes outside the paper's 3-5", i+1, n)
		}
		for _, m := range sys.App.Modes {
			if n := len(m.Graph.Tasks); n < 8 || n > 32 {
				t.Errorf("mul%d mode %s: %d tasks outside 8-32", i+1, m.Name, n)
			}
		}
		if n := len(sys.Arch.PEs); n < 2 || n > 4 {
			t.Errorf("mul%d: %d PEs outside 2-4", i+1, n)
		}
		if n := len(sys.Arch.CLs); n < 1 || n > 3 {
			t.Errorf("mul%d: %d CLs outside 1-3", i+1, n)
		}
	}
	// The paper's table has a mix of mode counts; require at least two
	// distinct counts across the suite.
	counts := map[int]bool{}
	for _, sys := range systems {
		counts[len(sys.App.Modes)] = true
	}
	if len(counts) < 2 {
		t.Error("mul suite should vary in mode count")
	}
}

func TestMulSystemDeterministic(t *testing.T) {
	a, err := MulSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MulSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.App.Modes) != len(b.App.Modes) || a.App.TotalTasks() != b.App.TotalTasks() {
		t.Error("mul3 not deterministic")
	}
	if a.App.Name != "mul3" {
		t.Errorf("name = %q", a.App.Name)
	}
}

func TestMulSystemBounds(t *testing.T) {
	if _, err := MulSystem(0); err == nil {
		t.Error("mul0 must be rejected")
	}
	if _, err := MulSystem(13); err == nil {
		t.Error("mul13 must be rejected")
	}
}

func TestSmartPhoneStructure(t *testing.T) {
	sys, err := SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sys.App.Modes) != 8 {
		t.Fatalf("smart phone has %d modes, want 8 (paper Fig. 1a)", len(sys.App.Modes))
	}
	// Probabilities from Fig. 1a.
	want := map[string]float64{
		"rlc": 0.74, "gsm_rlc": 0.09, "mp3_rlc": 0.10, "netsearch": 0.01,
		"photo_rlc": 0.02, "showphoto": 0.02, "mp3_net": 0.01, "photo_net": 0.01,
	}
	for _, m := range sys.App.Modes {
		if m.Prob != want[m.Name] {
			t.Errorf("mode %s prob = %v, want %v", m.Name, m.Prob, want[m.Name])
		}
		// Paper: between 5 and 88 task nodes per mode.
		if n := len(m.Graph.Tasks); n < 5 || n > 88 {
			t.Errorf("mode %s has %d tasks, outside the paper's 5-88", m.Name, n)
		}
		if n := len(m.Graph.Edges); n > 137 {
			t.Errorf("mode %s has %d edges, above the paper's 137", m.Name, n)
		}
	}
	// Architecture: one DVS GPP + two ASICs + one bus.
	if len(sys.Arch.PEs) != 3 || len(sys.Arch.CLs) != 1 {
		t.Fatal("architecture shape wrong")
	}
	if !sys.Arch.PEs[0].DVS || sys.Arch.PEs[0].Class != model.GPP {
		t.Error("PE0 must be the DVS GPP")
	}
	for _, pe := range sys.Arch.PEs[1:] {
		if pe.Class != model.ASIC || pe.DVS {
			t.Errorf("%s must be a non-DVS ASIC", pe.Name)
		}
	}
}

func TestSmartPhoneTypeSharingAcrossApplications(t *testing.T) {
	sys, err := SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	usedIn := make(map[string]map[string]bool)
	for _, m := range sys.App.Modes {
		for _, task := range m.Graph.Tasks {
			name := sys.Lib.Type(task.Type).Name
			if usedIn[name] == nil {
				usedIn[name] = make(map[string]bool)
			}
			usedIn[name][m.Name] = true
		}
	}
	// The paper's explicit sharing examples: the IDCT kernel serves both
	// the MP3 decoder and the JPEG decoder; HD and DEQ likewise.
	for _, tt := range []string{"IDCT", "HD", "DEQ"} {
		modes := usedIn[tt]
		if !modes["mp3_rlc"] || !modes["photo_rlc"] {
			t.Errorf("type %s must be shared between MP3 and photo modes, got %v", tt, modes)
		}
	}
	// FFT serves both the audio filterbank and the network searcher.
	if m := usedIn["FFT"]; !m["mp3_rlc"] || !m["netsearch"] {
		t.Errorf("FFT sharing wrong: %v", usedIn["FFT"])
	}
}

func TestSmartPhoneTransitionsMatchFSM(t *testing.T) {
	sys, err := SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	// Every mode must be reachable and leavable.
	outDeg := make(map[model.ModeID]int)
	inDeg := make(map[model.ModeID]int)
	for _, tr := range sys.App.Transitions {
		outDeg[tr.From]++
		inDeg[tr.To]++
		if tr.MaxTime <= 0 {
			t.Error("smart phone transitions carry time limits")
		}
	}
	for _, m := range sys.App.Modes {
		if outDeg[m.ID] == 0 || inDeg[m.ID] == 0 {
			t.Errorf("mode %s is a sink or source of the FSM", m.Name)
		}
	}
}

func TestRunCellAveragesOverReps(t *testing.T) {
	sys, err := Figure2System()
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg()
	cfg.Reps = 3
	cs, err := RunCell(sys, false, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Runs != 3 {
		t.Errorf("runs = %d, want 3", cs.Runs)
	}
	if cs.MinPower > cs.Power || cs.Power > cs.MaxPower {
		t.Errorf("mean %v outside [min %v, max %v]", cs.Power, cs.MinPower, cs.MaxPower)
	}
	if cs.FeasibleRuns != 3 {
		t.Errorf("feasible runs = %d, want 3 on the easy Fig. 2 system", cs.FeasibleRuns)
	}
	if cs.CPUTime <= 0 {
		t.Error("CPU time must be recorded")
	}
}

func TestCompareProducesRow(t *testing.T) {
	sys, err := Figure2System()
	if err != nil {
		t.Fatal(err)
	}
	row, err := Compare("fig2", sys, false, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if row.Name != "fig2" || row.Modes != 2 {
		t.Errorf("row header wrong: %+v", row)
	}
	// With the reduced test GA the variants land at or near their optima;
	// the reduction must stay in the vicinity of the paper's 41%.
	if row.ReductionPct < 30 || row.ReductionPct > 45 {
		t.Errorf("reduction = %.2f%%, want ~41%%", row.ReductionPct)
	}
}

func TestTable3SmokeAndFormat(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table3(tinyCfg(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Table 3 has %d rows, want 2", len(rows))
	}
	if !strings.Contains(buf.String(), "smartphone w/o DVS") ||
		!strings.Contains(buf.String(), "smartphone with DVS") {
		t.Errorf("output missing row labels:\n%s", buf.String())
	}
	// DVS must lower the absolute power in both columns (the paper's
	// 2.602->1.217 and 1.801->0.859 pattern).
	if rows[1].With.Power >= rows[0].With.Power {
		t.Errorf("DVS should lower power: %v -> %v", rows[0].With.Power, rows[1].With.Power)
	}
	if rows[1].Without.Power >= rows[0].Without.Power {
		t.Errorf("DVS should lower baseline power: %v -> %v", rows[0].Without.Power, rows[1].Without.Power)
	}
}

func TestFormatRowAndSummary(t *testing.T) {
	r := Row{Name: "mulX", Modes: 4, ReductionPct: 12.5}
	r.Without.Power = 10e-3
	r.With.Power = 8.75e-3
	s := formatRow(r)
	if !strings.Contains(s, "mulX") || !strings.Contains(s, "12.50%") {
		t.Errorf("formatRow = %q", s)
	}
	sum := formatSummary([]Row{r, {ReductionPct: 2.5}})
	if !strings.Contains(sum, "7.50%") || !strings.Contains(sum, "12.50%") {
		t.Errorf("formatSummary = %q", sum)
	}
	if formatSummary(nil) != "" {
		t.Error("empty summary must be empty")
	}
}

func TestHarnessDefaults(t *testing.T) {
	c := HarnessConfig{}.withDefaults()
	if c.Reps != 5 {
		t.Errorf("default reps = %d", c.Reps)
	}
	if c.GA.PopSize != 64 {
		t.Errorf("default GA = %+v", c.GA)
	}
	// Explicit GA must be preserved.
	c = HarnessConfig{GA: ga.Config{PopSize: 8, MaxGenerations: 10}}.withDefaults()
	if c.GA.PopSize != 8 {
		t.Error("explicit GA overwritten")
	}
}

func TestRunCellParallelMatchesSerial(t *testing.T) {
	sys, err := Figure2System()
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg()
	cfg.Reps = 4
	serial, err := RunCell(sys, false, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	parallel, err := RunCell(sys, false, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Power != parallel.Power || serial.MinPower != parallel.MinPower ||
		serial.MaxPower != parallel.MaxPower || serial.FeasibleRuns != parallel.FeasibleRuns {
		t.Errorf("parallel cell differs from serial: %+v vs %+v", parallel, serial)
	}
}

// cpuColRe matches the wall-clock CPU columns of a printed table; they are
// the one part of the output that legitimately varies between runs.
var cpuColRe = regexp.MustCompile(`\d+\.\ds`)

// TestTableParallelMatchesSerial fans the Table 3 rows out onto a worker
// pool and requires the printed table — row order included — to be
// byte-identical to the serial run, with only the measured CPU-time
// columns normalised away.
func TestTableParallelMatchesSerial(t *testing.T) {
	cfg := tinyCfg()
	var serialOut bytes.Buffer
	serialRows, err := Table3(cfg, &serialOut)
	if err != nil {
		t.Fatal(err)
	}
	cfg = tinyCfg()
	cfg.Parallel = 4
	var parallelOut bytes.Buffer
	parallelRows, err := Table3(cfg, &parallelOut)
	if err != nil {
		t.Fatal(err)
	}
	a := cpuColRe.ReplaceAllString(serialOut.String(), "CPU")
	b := cpuColRe.ReplaceAllString(parallelOut.String(), "CPU")
	if a != b {
		t.Errorf("parallel table output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
	if len(serialRows) != len(parallelRows) {
		t.Fatalf("row counts differ: %d vs %d", len(serialRows), len(parallelRows))
	}
	for i := range serialRows {
		s, p := serialRows[i], parallelRows[i]
		if s.Name != p.Name || s.Without.Power != p.Without.Power || s.With.Power != p.With.Power {
			t.Errorf("row %d differs: serial %q %v/%v, parallel %q %v/%v",
				i, s.Name, s.Without.Power, s.With.Power, p.Name, p.Without.Power, p.With.Power)
		}
	}
}
