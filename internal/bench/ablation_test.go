package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationStrings(t *testing.T) {
	want := map[Ablation]string{
		AblFull:          "full technique",
		AblNoImprovement: "no improvement mutations",
		AblNoReplicas:    "no replica cores",
		AblSWOnlyDVS:     "software-only DVS",
		AblNeglectProbs:  "probabilities neglected",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
	if !strings.Contains(Ablation(42).String(), "42") {
		t.Error("unknown ablation string")
	}
}

func TestAblationOptionsTranslate(t *testing.T) {
	if o := AblNoImprovement.options(true); !o.NoImprovementMutations || !o.UseDVS {
		t.Errorf("NoImprovement options = %+v", o)
	}
	if o := AblNoReplicas.options(false); !o.NoReplicaCores || o.UseDVS {
		t.Errorf("NoReplicas options = %+v", o)
	}
	if o := AblSWOnlyDVS.options(true); !o.DVSSoftwareOnly {
		t.Errorf("SWOnlyDVS options = %+v", o)
	}
	if o := AblNeglectProbs.options(true); !o.NeglectProbabilities {
		t.Errorf("NeglectProbs options = %+v", o)
	}
	if o := AblFull.options(true); o.NoImprovementMutations || o.NoReplicaCores ||
		o.DVSSoftwareOnly || o.NeglectProbabilities {
		t.Errorf("full options must be clean: %+v", o)
	}
}

func TestAblationStudyOnFigure2(t *testing.T) {
	sys, err := Figure2System()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rows, err := AblationStudy(sys, false, tinyCfg(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Without DVS: full + 3 ablations (no SW-only-DVS row).
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if rows[0].Ablation != AblFull {
		t.Fatal("first row must be the reference")
	}
	// Fig. 2 has no static power and huge slack, so the probability
	// ablation is the one that hurts (the paper's 41%); the others are
	// neutral on this tiny instance.
	var neglect *AblationRow
	for i := range rows {
		if rows[i].Ablation == AblNeglectProbs {
			neglect = &rows[i]
		}
	}
	if neglect == nil {
		t.Fatal("missing probability ablation row")
	}
	if neglect.Stats.FeasibleRuns == neglect.Stats.Runs && neglect.DeltaPct < 20 {
		t.Errorf("neglecting probabilities should cost ~41%%, got %+.2f%%", neglect.DeltaPct)
	}
	out := buf.String()
	if !strings.Contains(out, "full technique") || !strings.Contains(out, "(reference)") {
		t.Errorf("output malformed:\n%s", out)
	}
}

func TestAblationStudyWithDVSHasSWOnlyRow(t *testing.T) {
	sys, err := Figure2System()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := AblationStudy(sys, true, tinyCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.Ablation == AblSWOnlyDVS {
			found = true
		}
	}
	if !found {
		t.Error("DVS study must include the software-only DVS row")
	}
}

func TestFormatAblationRowInfeasible(t *testing.T) {
	r := AblationRow{Ablation: AblNoImprovement}
	r.Stats.Runs = 3
	r.Stats.FeasibleRuns = 1
	r.Stats.Power = 1e-3
	if s := formatAblationRow(r); !strings.Contains(s, "infeasible") {
		t.Errorf("partially infeasible row must be flagged: %q", s)
	}
}
