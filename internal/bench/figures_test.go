package bench

import (
	"testing"

	"momosyn/internal/energy"
	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/synth"
)

// TestFigure2MappingEnergies reproduces the exact probability-weighted
// energies of the paper's section 2.3 example: 26.7158 mWs for the
// probability-neglecting mapping (Fig. 2b) and 15.7423 mWs for the
// probability-aware one (Fig. 2c), a 41% reduction.
func TestFigure2MappingEnergies(t *testing.T) {
	sys, err := Figure2System()
	if err != nil {
		t.Fatal(err)
	}
	ev := synth.NewEvaluator(sys, false)

	evB, err := ev.Evaluate(Figure2MappingB(sys))
	if err != nil {
		t.Fatal(err)
	}
	evC, err := ev.Evaluate(Figure2MappingC(sys))
	if err != nil {
		t.Fatal(err)
	}
	// Periods are one second, so average power in mW equals the paper's
	// probability-weighted energy in mWs.
	gotB := evB.AvgPower * 1e3
	gotC := evC.AvgPower * 1e3
	if !energy.ApproxEqual(gotB, 26.7158, 1e-9) {
		t.Errorf("mapping B: power %.6f mW, want 26.7158", gotB)
	}
	if !energy.ApproxEqual(gotC, 15.7423, 1e-9) {
		t.Errorf("mapping C: power %.6f mW, want 15.7423", gotC)
	}
	red := energy.RelativeReduction(gotB, gotC)
	if red < 41.0 || red > 41.2 {
		t.Errorf("reduction %.2f%%, paper reports 41%%", red)
	}
	if !evB.Feasible() || !evC.Feasible() {
		t.Errorf("both paper mappings must be feasible (B=%v C=%v)", evB.Feasible(), evC.Feasible())
	}
}

// TestFigure2Exhaustive verifies that exhaustive search under the true
// probabilities returns the Fig. 2c mapping, and under uniform
// (probability-neglecting) weights the Fig. 2b mapping.
func TestFigure2Exhaustive(t *testing.T) {
	sys, err := Figure2System()
	if err != nil {
		t.Fatal(err)
	}
	bestTrue, err := synth.Exhaustive(nil, sys, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := Figure2MappingC(sys); !bestTrue.Mapping.Equal(want) {
		t.Errorf("true-probability optimum = %v, want Fig. 2c %v", bestTrue.Mapping, want)
	}
	bestUni, err := synth.Exhaustive(nil, sys, false, synth.UniformProbs(sys))
	if err != nil {
		t.Fatal(err)
	}
	if want := Figure2MappingB(sys); !bestUni.Mapping.Equal(want) {
		t.Errorf("uniform-probability optimum = %v, want Fig. 2b %v", bestUni.Mapping, want)
	}
}

// TestFigure2GA verifies the genetic co-synthesis finds the global optimum
// of the small example and that the probability-neglecting baseline lands
// on the worse implementation when judged under the true profile.
func TestFigure2GA(t *testing.T) {
	sys, err := Figure2System()
	if err != nil {
		t.Fatal(err)
	}
	cfg := ga.Config{PopSize: 24, MaxGenerations: 80, Stagnation: 25}
	res, err := synth.Synthesize(sys, synth.Options{GA: cfg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Best.AvgPower * 1e3; !energy.ApproxEqual(got, 15.7423, 1e-9) {
		t.Errorf("GA best power %.6f mW, want 15.7423", got)
	}
	neg, err := synth.Synthesize(sys, synth.Options{GA: cfg, Seed: 1, NeglectProbabilities: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := neg.Best.AvgPower * 1e3; !energy.ApproxEqual(got, 26.7158, 1e-9) {
		t.Errorf("neglecting GA power under true profile %.6f mW, want 26.7158", got)
	}
}

// TestFigure3Duplication verifies the multiple-implementation effect of
// paper Fig. 3: duplicating task type A (hardware in mode 1, software in
// mode 2) beats full hardware sharing because PE1 and CL0 shut down during
// the dominant mode, and exhaustive search finds exactly that mapping.
func TestFigure3Duplication(t *testing.T) {
	sys, err := Figure3System()
	if err != nil {
		t.Fatal(err)
	}
	ev := synth.NewEvaluator(sys, false)
	shared, err := ev.Evaluate(Figure3MappingShared(sys))
	if err != nil {
		t.Fatal(err)
	}
	dup, err := ev.Evaluate(Figure3MappingDuplicated(sys))
	if err != nil {
		t.Fatal(err)
	}
	if dup.AvgPower >= shared.AvgPower {
		t.Errorf("duplicated mapping %.4f mW not better than shared %.4f mW",
			dup.AvgPower*1e3, shared.AvgPower*1e3)
	}
	// In the duplicated mapping, mode 2 uses neither PE1 nor CL0: both can
	// be shut down, so mode 2's static power is PE0's alone.
	pe0 := sys.Arch.PEs[0]
	if got := dup.ModePowers[1].StaticPower; !energy.ApproxEqual(got, pe0.StaticPower, 1e-12) {
		t.Errorf("mode 2 static power %.6f mW, want PE0-only %.6f mW", got*1e3, pe0.StaticPower*1e3)
	}
	best, err := synth.Exhaustive(nil, sys, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := Figure3MappingDuplicated(sys); !best.Mapping.Equal(want) {
		t.Errorf("optimum = %v, want duplicated mapping %v", best.Mapping, want)
	}
}

// TestFigure3SharedKeepsPE1Powered pins the contrast of Fig. 3b: with both
// type-A tasks in hardware, PE1's static power burdens every mode.
func TestFigure3SharedKeepsPE1Powered(t *testing.T) {
	sys, err := Figure3System()
	if err != nil {
		t.Fatal(err)
	}
	ev := synth.NewEvaluator(sys, false)
	shared, err := ev.Evaluate(Figure3MappingShared(sys))
	if err != nil {
		t.Fatal(err)
	}
	pe0, pe1 := sys.Arch.PEs[0], sys.Arch.PEs[1]
	cl0 := sys.Arch.CLs[0]
	wantStatic := pe0.StaticPower + pe1.StaticPower + cl0.StaticPower
	for m := range shared.ModePowers {
		if got := shared.ModePowers[m].StaticPower; !energy.ApproxEqual(got, wantStatic, 1e-12) {
			t.Errorf("mode %d static power %.6f mW, want %.6f mW", m, got*1e3, wantStatic*1e3)
		}
	}
}

// TestFigure2MappingValidation exercises Mapping.Validate on the example.
func TestFigure2MappingValidation(t *testing.T) {
	sys, err := Figure2System()
	if err != nil {
		t.Fatal(err)
	}
	if err := Figure2MappingB(sys).Validate(sys); err != nil {
		t.Errorf("mapping B should validate: %v", err)
	}
	bad := Figure2MappingB(sys)
	bad[0][0] = model.PEID(99)
	if err := bad.Validate(sys); err == nil {
		t.Error("mapping to unknown PE must fail validation")
	}
}
