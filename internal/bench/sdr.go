package bench

import "momosyn/internal/model"

// SDR builds a software-defined-radio handset benchmark: four operational
// modes (paging idle, GSM link, Bluetooth link, Wi-Fi scan) sharing one
// DVS-capable GPP and one reconfigurable, DVS-capable FPGA over a bus.
//
// Unlike the smart phone (whose ASICs hold a static core set), the SDR's
// signal-processing cores live on the FPGA and are swapped at mode
// changes, so this instance exercises the parts of the methodology the
// smart phone cannot: per-mode FPGA working sets, reconfiguration times
// against the OMSM's transition limits (the Transition Improvement
// mutation's territory), and DVS on hardware cores via the Fig. 5
// transformation.
//
// The FPGA fits any single mode's cores but not the union, so transitions
// genuinely reconfigure; the idle<->gsm limits are sized to allow two core
// swaps while the gsm<->bt limit only allows one, steering the synthesis
// towards mappings that keep the swap set small.
func SDR() (*model.System, error) {
	b := model.NewBuilder("sdr")
	b.AddPE(model.PE{
		Name: "GPP", Class: model.GPP, DVS: true,
		Vmax: 3.3, Vt: 0.8, Levels: []float64{1.2, 1.8, 2.5, 3.3},
		StaticPower: mw(0.15),
	})
	b.AddPE(model.PE{
		Name: "FPGA", Class: model.FPGA, DVS: true,
		Vmax: 3.3, Vt: 0.8, Levels: []float64{1.8, 2.5, 3.3},
		Area: 1100, ReconfigTime: ms(8),
		StaticPower: mw(0.6),
	})
	b.AddCL(model.CL{
		Name: "BUS", BytesPerSec: 8e6,
		PowerActive: mw(1.2), StaticPower: mw(0.08),
	}, "GPP", "FPGA")

	// Task types. Hardware areas are sized so each mode's natural core set
	// fits the 1100-cell FPGA while the union (2280 cells) does not.
	type sdrType struct {
		name      string
		swUS      float64
		swMW      float64
		hw        bool
		speedup   float64
		powerFrac float64
		area      int
	}
	types := []sdrType{
		{name: "CORR", swUS: 2800, swMW: 24, hw: true, speedup: 45, powerFrac: 0.04, area: 320},
		{name: "EQ", swUS: 3600, swMW: 26, hw: true, speedup: 50, powerFrac: 0.04, area: 360},
		{name: "DEMOD", swUS: 2600, swMW: 22, hw: true, speedup: 40, powerFrac: 0.05, area: 300},
		{name: "VIT", swUS: 4400, swMW: 28, hw: true, speedup: 60, powerFrac: 0.03, area: 380},
		{name: "GFSK", swUS: 2000, swMW: 20, hw: true, speedup: 35, powerFrac: 0.05, area: 260},
		{name: "FFT", swUS: 3200, swMW: 25, hw: true, speedup: 45, powerFrac: 0.04, area: 340},
		{name: "OFDM", swUS: 3800, swMW: 27, hw: true, speedup: 55, powerFrac: 0.04, area: 320},
		{name: "VOC", swUS: 1200, swMW: 18, hw: false},
		{name: "CTRL", swUS: 80, swMW: 7, hw: false},
		{name: "PARSE", swUS: 100, swMW: 8, hw: false},
		{name: "CRC", swUS: 60, swMW: 6, hw: false},
	}
	for _, tt := range types {
		impls := []model.ImplSpec{{PE: "GPP", Time: tt.swUS * 1e-6, Power: mw(tt.swMW)}}
		if tt.hw {
			impls = append(impls, model.ImplSpec{
				PE:    "FPGA",
				Time:  tt.swUS * 1e-6 / tt.speedup,
				Power: mw(tt.swMW) * tt.powerFrac * tt.speedup,
				Area:  tt.area,
			})
		}
		b.AddType(tt.name, impls...)
	}

	t := func(name, tt string) { b.AddTask(name, tt, 0) }
	e := func(src, dst string, bytes float64) { b.AddEdge(src, dst, bytes) }

	// Paging idle: wake, correlate against the paging sequence, decide.
	b.BeginMode("idle", 0.60, ms(100))
	t("wake", "CTRL")
	t("pagecorr", "CORR")
	t("decide", "CTRL")
	e("wake", "pagecorr", 128)
	e("pagecorr", "decide", 32)

	// GSM link: receive chain + Viterbi + vocoder, every 20 ms frame.
	b.BeginMode("gsm", 0.25, ms(20))
	t("burst", "PARSE")
	t("equalize", "EQ")
	t("demod", "DEMOD")
	t("deint", "PARSE")
	t("viterbi", "VIT")
	t("crc", "CRC")
	t("vocoder", "VOC")
	e("burst", "equalize", 312)
	e("equalize", "demod", 312)
	e("demod", "deint", 456)
	e("deint", "viterbi", 456)
	e("viterbi", "crc", 260)
	e("crc", "vocoder", 260)

	// Bluetooth link: frequency hop, GFSK demodulation, HEC, payload.
	b.BeginMode("bt", 0.10, ms(10))
	t("hop", "CTRL")
	t("gfsk", "GFSK")
	t("hec", "CRC")
	t("payload", "PARSE")
	e("hop", "gfsk", 64)
	e("gfsk", "hec", 366)
	e("hec", "payload", 339)

	// Wi-Fi scan: FFT, preamble correlation, OFDM demap, beacon parse.
	b.BeginMode("wifiscan", 0.05, ms(50))
	t("fft", "FFT")
	t("preamble", "CORR")
	t("ofdm", "OFDM")
	t("beacon", "PARSE")
	e("fft", "preamble", 1024)
	e("preamble", "ofdm", 512)
	e("ofdm", "beacon", 1536)

	// Transition limits: idle<->gsm and idle<->wifiscan allow two 8 ms
	// core swaps; the latency-critical gsm<->bt hand-off allows only one.
	b.AddTransition("idle", "gsm", ms(20))
	b.AddTransition("gsm", "idle", ms(20))
	b.AddTransition("idle", "bt", ms(20))
	b.AddTransition("bt", "idle", ms(20))
	b.AddTransition("gsm", "bt", ms(10))
	b.AddTransition("bt", "gsm", ms(10))
	b.AddTransition("idle", "wifiscan", ms(20))
	b.AddTransition("wifiscan", "idle", ms(20))
	return b.Finish()
}
