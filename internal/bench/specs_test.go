package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"momosyn/internal/model"
	"momosyn/internal/specio"
)

// specsDir locates the shipped spec files relative to this package.
const specsDir = "../../specs"

// TestShippedSpecsMatchProgrammaticSystems guards the spec files under
// specs/ against drifting from the programmatic benchmark definitions:
// every shipped file must parse, validate, and match its in-code system
// structurally.
func TestShippedSpecsMatchProgrammaticSystems(t *testing.T) {
	cases := []struct {
		file  string
		build func() (*model.System, error)
	}{
		{"smartphone.spec", SmartPhone},
		{"sdr.spec", SDR},
	}
	for i := 1; i <= NumMuls; i++ {
		i := i
		cases = append(cases, struct {
			file  string
			build func() (*model.System, error)
		}{fmt.Sprintf("mul%d.spec", i), func() (*model.System, error) { return MulSystem(i) }})
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join(specsDir, c.file))
			if err != nil {
				t.Fatalf("shipped spec missing: %v (regenerate with mmgen)", err)
			}
			defer f.Close()
			parsed, err := specio.Read(f)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			want, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			assertSameShape(t, want, parsed)
		})
	}
}

// assertSameShape compares the structural fingerprint of two systems:
// entity counts, names, probabilities, graph shapes and implementation
// tables (times within float round-trip tolerance).
func assertSameShape(t *testing.T, a, b *model.System) {
	t.Helper()
	if len(a.Arch.PEs) != len(b.Arch.PEs) || len(a.Arch.CLs) != len(b.Arch.CLs) {
		t.Fatal("architecture shape differs")
	}
	for i := range a.Arch.PEs {
		pa, pb := a.Arch.PEs[i], b.Arch.PEs[i]
		if pa.Name != pb.Name || pa.Class != pb.Class || pa.Area != pb.Area || pa.DVS != pb.DVS {
			t.Fatalf("PE %d differs: %+v vs %+v", i, pa, pb)
		}
	}
	if len(a.Lib.Types) != len(b.Lib.Types) {
		t.Fatal("type counts differ")
	}
	for i := range a.Lib.Types {
		ta, tb := a.Lib.Types[i], b.Lib.Types[i]
		if ta.Name != tb.Name || len(ta.Impls) != len(tb.Impls) {
			t.Fatalf("type %q differs", ta.Name)
		}
		for j := range ta.Impls {
			ia, ib := ta.Impls[j], tb.Impls[j]
			if ia.PE != ib.PE || ia.Area != ib.Area || !close(ia.Time, ib.Time) || !close(ia.Power, ib.Power) {
				t.Fatalf("type %q impl %d differs: %+v vs %+v", ta.Name, j, ia, ib)
			}
		}
	}
	if len(a.App.Modes) != len(b.App.Modes) {
		t.Fatal("mode counts differ")
	}
	for i := range a.App.Modes {
		ma, mb := a.App.Modes[i], b.App.Modes[i]
		if ma.Name != mb.Name || ma.Prob != mb.Prob || !close(ma.Period, mb.Period) {
			t.Fatalf("mode %q header differs", ma.Name)
		}
		if len(ma.Graph.Tasks) != len(mb.Graph.Tasks) || len(ma.Graph.Edges) != len(mb.Graph.Edges) {
			t.Fatalf("mode %q graph shape differs", ma.Name)
		}
		for j := range ma.Graph.Tasks {
			if ma.Graph.Tasks[j].Name != mb.Graph.Tasks[j].Name ||
				ma.Graph.Tasks[j].Type != mb.Graph.Tasks[j].Type {
				t.Fatalf("mode %q task %d differs", ma.Name, j)
			}
		}
		for j := range ma.Graph.Edges {
			ea, eb := ma.Graph.Edges[j], mb.Graph.Edges[j]
			if ea.Src != eb.Src || ea.Dst != eb.Dst || ea.Bytes != eb.Bytes {
				t.Fatalf("mode %q edge %d differs", ma.Name, j)
			}
		}
	}
	if len(a.App.Transitions) != len(b.App.Transitions) {
		t.Fatal("transition counts differ")
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return d == 0
	}
	return d/m < 1e-9
}
