package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"momosyn/internal/energy"
	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/synth"
)

// ErrCertification marks a table cell whose synthesis result the
// independent certifier refused; callers distinguish it with errors.Is to
// map it to the dedicated exit code.
var ErrCertification = errors.New("bench: result failed certification")

// HarnessConfig tunes an experiment run. The paper averaged 40 optimisation
// runs per cell; the default here is smaller so the full suite stays
// laptop-friendly, and can be raised via the Reps field or cmd/mmbench
// -reps.
type HarnessConfig struct {
	// Reps is the number of GA runs averaged per table cell (default 5).
	Reps int
	// Parallel bounds the number of concurrently running synthesis jobs
	// across the whole experiment (default 1 = serial): table rows fan out
	// onto a worker pool and every repetition of every cell draws from one
	// shared slot budget. Results and printed output are deterministic
	// regardless: every repetition has its own seed, aggregation is
	// order-independent, and rows are delivered in table order.
	Parallel int
	// BaseSeed offsets the per-repetition seeds.
	BaseSeed int64
	// GA tunes the engine; the zero value selects the harness defaults
	// (population 64, up to 300 generations, stagnation 80).
	GA ga.Config
	// Weights are the fitness penalty weights (zero = defaults).
	Weights synth.Weights
	// Context, when non-nil, makes the experiment interruptible: on
	// cancellation every in-flight synthesis stops at its next generation
	// boundary and the remaining cells finish immediately with partial
	// best-so-far numbers. Check Context.Err() (or CellStats.PartialRuns)
	// to tell complete tables from truncated ones.
	Context context.Context
	// Certify runs the independent internal/verify certifier on every
	// repetition's result; a refused certification fails the cell with an
	// error wrapping ErrCertification, so no uncertified number can reach
	// a results table.
	Certify bool
	// Obs, when active, instruments every repetition (phase-timing
	// histograms, per-evaluation spans) and emits one bench_row trace event
	// per finished table row. Repetitions of a cell share the run; all its
	// surfaces are safe for concurrent use.
	Obs *obs.Run
	// Progress, when non-nil, receives a one-line heartbeat after every
	// finished table row (row name, elapsed time, best p̄ so far) —
	// mmbench -progress points it at stderr so long studies are visibly
	// alive without polluting the result table on stdout.
	Progress io.Writer

	// sem is the shared synthesis-slot semaphore (capacity Parallel). It is
	// created once per experiment by withDefaults and then travels with the
	// config copies, so concurrently evaluated rows cannot multiply the
	// configured parallelism.
	sem chan struct{}
}

func (c HarnessConfig) withDefaults() HarnessConfig {
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	if c.GA.PopSize == 0 && c.GA.MaxGenerations == 0 {
		c.GA = DefaultGA()
	}
	if c.sem == nil {
		c.sem = make(chan struct{}, c.Parallel)
	}
	return c
}

// DefaultGA returns the GA configuration used for the table experiments.
func DefaultGA() ga.Config {
	return ga.Config{PopSize: 64, MaxGenerations: 300, Stagnation: 80}
}

// CellStats aggregates the repetitions of one table cell (one instance, one
// approach).
type CellStats struct {
	// Power is the mean Eq. (1) average power under the true execution
	// probabilities (watts).
	Power float64
	// MinPower/MaxPower bound the repetitions.
	MinPower, MaxPower float64
	// CPUTime is the mean optimisation wall-clock time.
	CPUTime time.Duration
	// FeasibleRuns counts repetitions whose best candidate met every
	// constraint.
	FeasibleRuns, Runs int
	// PartialRuns counts repetitions that were interrupted (cancelled
	// context) and contributed a best-so-far rather than converged result.
	PartialRuns int
	// Timings is the phase breakdown summed over the cell's repetitions;
	// all-zero unless HarnessConfig.Obs was active.
	Timings obs.Timings
}

// Row is one line of Table 1/2/3: probability-neglecting versus proposed.
type Row struct {
	Name    string
	Modes   int
	Without CellStats // execution probabilities neglected during synthesis
	With    CellStats // proposed: probabilities drive the synthesis
	// ReductionPct is the paper's "Reduc. (%)" column.
	ReductionPct float64
	// Timings sums the phase breakdown of both cells; all-zero unless the
	// harness was instrumented.
	Timings obs.Timings
}

// RunCell synthesises the system Reps times with distinct seeds and
// averages the outcomes. Repetitions run Parallel-wide; aggregation is
// order-independent so results match the serial protocol exactly.
func RunCell(sys *model.System, useDVS, neglect bool, cfg HarnessConfig) (CellStats, error) {
	cfg = cfg.withDefaults()
	type outcome struct {
		power    float64
		elapsed  time.Duration
		feasible bool
		partial  bool
		timings  obs.Timings
		err      error
	}
	outs := make([]outcome, cfg.Reps)
	sem := cfg.sem
	var wg sync.WaitGroup
	for r := 0; r < cfg.Reps; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Panic barrier: a panicking repetition must surface as that
			// repetition's error, not kill the whole study.
			defer func() {
				if p := recover(); p != nil {
					outs[r] = outcome{err: fmt.Errorf("rep %d: panic: %v", r, p)}
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			seed := cfg.BaseSeed + int64(r)*7919
			res, err := synth.Synthesize(sys, synth.Options{
				UseDVS:               useDVS,
				NeglectProbabilities: neglect,
				Weights:              cfg.Weights,
				GA:                   cfg.GA,
				Seed:                 seed,
				Context:              cfg.Context,
				Certify:              cfg.Certify,
				Obs:                  cfg.Obs,
			})
			if err != nil {
				outs[r] = outcome{err: err}
				return
			}
			if rep := res.Certification; rep != nil && !rep.Certified() {
				detail := "no violations recorded"
				if len(rep.Violations) > 0 {
					detail = rep.Violations[0].String()
				}
				outs[r] = outcome{err: fmt.Errorf("%w (seed %d: %s)", ErrCertification, seed, detail)}
				return
			}
			outs[r] = outcome{
				power:    res.Best.AvgPower,
				elapsed:  res.Elapsed,
				feasible: res.Best.Feasible(),
				partial:  res.Partial,
				timings:  res.Timings,
			}
		}(r)
	}
	wg.Wait()

	var cs CellStats
	for _, o := range outs {
		if o.err != nil {
			return cs, o.err
		}
		if cs.Runs == 0 || o.power < cs.MinPower {
			cs.MinPower = o.power
		}
		if cs.Runs == 0 || o.power > cs.MaxPower {
			cs.MaxPower = o.power
		}
		cs.Power += o.power
		cs.CPUTime += o.elapsed
		if o.feasible {
			cs.FeasibleRuns++
		}
		if o.partial {
			cs.PartialRuns++
		}
		cs.Timings.Add(o.timings)
		cs.Runs++
	}
	cs.Power /= float64(cs.Runs)
	cs.CPUTime /= time.Duration(cs.Runs)
	return cs, nil
}

// Compare runs both approaches on one instance and assembles the table row.
func Compare(name string, sys *model.System, useDVS bool, cfg HarnessConfig) (Row, error) {
	without, err := RunCell(sys, useDVS, true, cfg)
	if err != nil {
		return Row{}, err
	}
	with, err := RunCell(sys, useDVS, false, cfg)
	if err != nil {
		return Row{}, err
	}
	row := Row{
		Name:         name,
		Modes:        len(sys.App.Modes),
		Without:      without,
		With:         with,
		ReductionPct: energy.RelativeReduction(without.Power, with.Power),
	}
	row.Timings.Add(without.Timings)
	row.Timings.Add(with.Timings)
	return row, nil
}

// reportRow emits the per-row telemetry of a finished table row: the
// -progress heartbeat and, when tracing, one bench_row event. bestPower is
// the lowest proposed-approach p̄ over the rows finished so far; started is
// the table's start time.
func (c HarnessConfig) reportRow(table string, row Row, started time.Time, bestPower float64) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, "progress: %s done, elapsed %s, best avg power so far %.4f mW\n",
			row.Name, time.Since(started).Round(time.Second), bestPower*1e3)
	}
	if !c.Obs.Tracing() {
		return
	}
	t := row.Timings
	c.Obs.EmitBenchRow(obs.BenchRowEvent{
		Table:        table,
		Name:         row.Name,
		Modes:        row.Modes,
		PowerWithout: obs.Float(row.Without.Power),
		PowerWith:    obs.Float(row.With.Power),
		ReductionPct: obs.Float(row.ReductionPct),
		CPUWithoutNs: row.Without.CPUTime.Nanoseconds(),
		CPUWithNs:    row.With.CPUTime.Nanoseconds(),
		MobilityNs:   t.Mobility.Nanoseconds(),
		CoreAllocNs:  t.CoreAlloc.Nanoseconds(),
		ListSchedNs:  t.ListSched.Nanoseconds(),
		CommMapNs:    t.CommMap.Nanoseconds(),
		DVSNs:        t.DVS.Nanoseconds(),
		RefineNs:     t.Refine.Nanoseconds(),
		CertifyNs:    t.Certify.Nanoseconds(),
	})
}

// Table1 regenerates paper Table 1 (mul1–mul12, no DVS): the effect of
// considering execution probabilities. Progress rows stream to w (nil
// discards them).
func Table1(cfg HarnessConfig, w io.Writer) ([]Row, error) {
	return mulTable(false, cfg, w)
}

// Table2 regenerates paper Table 2 (mul1–mul12, with DVS on both software
// processors and hardware cores).
func Table2(cfg HarnessConfig, w io.Writer) ([]Row, error) {
	return mulTable(true, cfg, w)
}

// forEachRowOrdered evaluates n table rows concurrently — compute(i) runs
// in its own panic-isolated goroutine, with the actual synthesis width
// bounded by the config's shared slot semaphore, not the row count — while
// emit(row) observes the rows strictly in table order, exactly as the
// serial protocol prints them. The first error in row order wins (matching
// what a serial run would have reported); later rows still finish but are
// not emitted.
func forEachRowOrdered(n int, compute func(i int) (Row, error), emit func(Row)) error {
	type out struct {
		row Row
		err error
	}
	outs := make([]out, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{}, 1)
	}
	for i := 0; i < n; i++ {
		go func(i int) {
			// Panic barrier: a panicking row surfaces as that row's error,
			// not as a dead study. (The completion signal is a buffered send,
			// not a channel close: this package defines its own close helper,
			// which shadows the builtin.)
			defer func() {
				if p := recover(); p != nil {
					outs[i] = out{err: fmt.Errorf("bench: row %d: panic: %v", i+1, p)}
				}
				done[i] <- struct{}{}
			}()
			row, err := compute(i)
			outs[i] = out{row: row, err: err}
		}(i)
	}
	var firstErr error
	for i := 0; i < n; i++ {
		<-done[i]
		if firstErr != nil {
			continue
		}
		if outs[i].err != nil {
			firstErr = outs[i].err
			continue
		}
		emit(outs[i].row)
	}
	return firstErr
}

func mulTable(useDVS bool, cfg HarnessConfig, w io.Writer) ([]Row, error) {
	cfg = cfg.withDefaults()
	table := "1"
	if useDVS {
		table = "2"
	}
	started := time.Now()
	best := math.Inf(1)
	rows := make([]Row, 0, NumMuls)
	if w != nil {
		fmt.Fprint(w, tableHeader(useDVS))
	}
	err := forEachRowOrdered(NumMuls, func(i int) (Row, error) {
		sys, err := MulSystem(i + 1)
		if err != nil {
			return Row{}, err
		}
		row, err := Compare(fmt.Sprintf("mul%d", i+1), sys, useDVS, cfg)
		if err != nil {
			return Row{}, fmt.Errorf("bench: mul%d: %w", i+1, err)
		}
		return row, nil
	}, func(row Row) {
		rows = append(rows, row)
		if row.With.Power < best {
			best = row.With.Power
		}
		cfg.reportRow(table, row, started, best)
		if w != nil {
			fmt.Fprint(w, formatRow(row))
		}
	})
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprint(w, formatSummary(rows))
	}
	return rows, nil
}

// Table3 regenerates paper Table 3: the smart-phone example without and
// with DVS.
func Table3(cfg HarnessConfig, w io.Writer) ([]Row, error) {
	sys, err := SmartPhone()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	started := time.Now()
	best := math.Inf(1)
	var rows []Row
	if w != nil {
		fmt.Fprint(w, tableHeader(false))
	}
	variants := []bool{false, true}
	err = forEachRowOrdered(len(variants), func(i int) (Row, error) {
		name := "smartphone w/o DVS"
		if variants[i] {
			name = "smartphone with DVS"
		}
		return Compare(name, sys, variants[i], cfg)
	}, func(row Row) {
		rows = append(rows, row)
		if row.With.Power < best {
			best = row.With.Power
		}
		cfg.reportRow("3", row, started, best)
		if w != nil {
			fmt.Fprint(w, formatRow(row))
		}
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func tableHeader(useDVS bool) string {
	tag := "w/o DVS"
	if useDVS {
		tag = "with DVS"
	}
	return fmt.Sprintf(
		"%-22s | %13s %9s | %13s %9s | %8s\n%s\n",
		"Example ("+tag+")",
		"P w/o prob.", "CPU", "P with prob.", "CPU", "Reduc.",
		"-----------------------+-------------------------+-------------------------+---------",
	)
}

func formatRow(r Row) string {
	return fmt.Sprintf("%-16s (%d) | %10.4f mW %8.1fs | %10.4f mW %8.1fs | %7.2f%%\n",
		r.Name, r.Modes,
		r.Without.Power*1e3, r.Without.CPUTime.Seconds(),
		r.With.Power*1e3, r.With.CPUTime.Seconds(),
		r.ReductionPct)
}

func formatSummary(rows []Row) string {
	if len(rows) == 0 {
		return ""
	}
	sum, best := 0.0, rows[0].ReductionPct
	for _, r := range rows {
		sum += r.ReductionPct
		if r.ReductionPct > best {
			best = r.ReductionPct
		}
	}
	return fmt.Sprintf("%-22s | mean reduction %.2f%%, best %.2f%%\n",
		"summary", sum/float64(len(rows)), best)
}
