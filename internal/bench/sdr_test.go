package bench

import (
	"testing"

	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/synth"
)

func sdrGA() ga.Config {
	return ga.Config{PopSize: 48, MaxGenerations: 150, Stagnation: 50}
}

func TestSDRStructure(t *testing.T) {
	sys, err := SDR()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sys.App.Modes) != 4 {
		t.Fatalf("modes = %d, want 4", len(sys.App.Modes))
	}
	fpga := sys.Arch.PEs[1]
	if fpga.Class != model.FPGA || !fpga.DVS || fpga.ReconfigTime <= 0 {
		t.Fatal("PE1 must be a DVS-capable reconfigurable FPGA")
	}
	// The union of all hardware cores must exceed the FPGA (reconfiguration
	// is genuinely needed), while each single mode's natural set fits.
	union := 0
	for _, tt := range sys.Lib.Types {
		if im, ok := tt.ImplOn(fpga.ID); ok {
			union += im.Area
		}
	}
	if union <= fpga.Area {
		t.Errorf("core union %d fits the FPGA %d: no reconfiguration pressure", union, fpga.Area)
	}
	for _, m := range sys.App.Modes {
		perMode := 0
		seen := map[model.TaskTypeID]bool{}
		for _, task := range m.Graph.Tasks {
			if seen[task.Type] {
				continue
			}
			seen[task.Type] = true
			if im, ok := sys.Lib.Type(task.Type).ImplOn(fpga.ID); ok {
				perMode += im.Area
			}
		}
		if perMode > fpga.Area {
			t.Errorf("mode %s full hardware set %d exceeds FPGA %d", m.Name, perMode, fpga.Area)
		}
	}
}

func TestSDRSynthesisMeetsTransitionLimits(t *testing.T) {
	sys, err := SDR()
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(sys, synth.Options{UseDVS: true, GA: sdrGA(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Feasible() {
		t.Fatalf("SDR synthesis infeasible (penalties: timing %v, area %v, trans %v)",
			res.Best.TimingPenalty, res.Best.AreaPenalty, res.Best.TransPenalty)
	}
	for i, tr := range sys.App.Transitions {
		if tr.MaxTime > 0 && res.Best.TransTimes[i] > tr.MaxTime+1e-12 {
			t.Errorf("transition %d takes %v, limit %v",
				i, res.Best.TransTimes[i], tr.MaxTime)
		}
	}
	// The best implementation should actually use the FPGA in at least one
	// mode (the hardware kernels are 35-60x cheaper in energy).
	usesFPGA := false
	for m := range sys.App.Modes {
		if res.Best.Mapping.UsesPE(model.ModeID(m), 1) {
			usesFPGA = true
		}
	}
	if !usesFPGA {
		t.Error("no mode uses the FPGA: hardware trade-off lost")
	}
}

func TestSDRProbabilityAwarenessWins(t *testing.T) {
	sys, err := SDR()
	if err != nil {
		t.Fatal(err)
	}
	cfg := HarnessConfig{Reps: 3, GA: sdrGA(), Parallel: 3}
	row, err := Compare("sdr", sys, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With a 60% idle mode and rare Wi-Fi scanning, neglecting the usage
	// profile must not win; allow a small noise margin.
	if row.ReductionPct < -3 {
		t.Errorf("probability awareness lost by %.2f%%", -row.ReductionPct)
	}
	t.Logf("SDR DVS reduction: %.2f%% (%.4f -> %.4f mW)",
		row.ReductionPct, row.Without.Power*1e3, row.With.Power*1e3)
}
