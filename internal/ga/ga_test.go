package ga

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// oneMax is a minimisation problem whose optimum is the all-max genome.
type oneMax struct{ n, k int }

func (p oneMax) GenomeLen() int  { return p.n }
func (p oneMax) Alleles(int) int { return p.k }
func (p oneMax) Fitness(g []int) float64 {
	miss := 0
	for _, v := range g {
		miss += (p.k - 1) - v
	}
	return float64(miss)
}

// trap is deceptive: locus value 0 is second best, k-1 is best, and the
// fitness couples adjacent loci so crossover matters.
type trap struct{ n int }

func (p trap) GenomeLen() int  { return p.n }
func (p trap) Alleles(int) int { return 4 }
func (p trap) Fitness(g []int) float64 {
	f := 0.0
	for i, v := range g {
		f += float64(3 - v)
		if i > 0 && g[i-1] != v {
			f += 0.5
		}
	}
	return f
}

func TestRunSolvesOneMax(t *testing.T) {
	p := oneMax{n: 20, k: 4}
	res := Run(p, Config{PopSize: 40, MaxGenerations: 200, Stagnation: 60}, rand.New(rand.NewSource(1)))
	if res.BestFitness != 0 {
		t.Errorf("best fitness = %v, want 0 (genome %v)", res.BestFitness, res.Best)
	}
	if res.Evaluations <= 0 || res.Generations <= 0 {
		t.Error("statistics must be populated")
	}
}

func TestRunSolvesCoupledTrap(t *testing.T) {
	p := trap{n: 16}
	res := Run(p, Config{PopSize: 60, MaxGenerations: 300, Stagnation: 80}, rand.New(rand.NewSource(7)))
	if res.BestFitness != 0 {
		t.Errorf("best fitness = %v, want 0", res.BestFitness)
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	p := oneMax{n: 12, k: 3}
	cfg := Config{PopSize: 20, MaxGenerations: 50, Stagnation: 20}
	a := Run(p, cfg, rand.New(rand.NewSource(42)))
	b := Run(p, cfg, rand.New(rand.NewSource(42)))
	if a.BestFitness != b.BestFitness || a.Generations != b.Generations || a.Evaluations != b.Evaluations {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatalf("best genomes differ at locus %d", i)
		}
	}
}

func TestRunStopsOnStagnation(t *testing.T) {
	// A constant fitness stagnates immediately.
	p := constProblem{n: 5}
	res := Run(p, Config{PopSize: 10, MaxGenerations: 1000, Stagnation: 7}, rand.New(rand.NewSource(3)))
	if res.Generations != 7 {
		t.Errorf("generations = %d, want exactly the stagnation limit 7", res.Generations)
	}
}

type constProblem struct{ n int }

func (p constProblem) GenomeLen() int        { return p.n }
func (p constProblem) Alleles(int) int       { return 2 }
func (p constProblem) Fitness([]int) float64 { return 1 }

func TestHistoryMonotoneNonIncreasing(t *testing.T) {
	p := oneMax{n: 15, k: 5}
	res := Run(p, Config{PopSize: 20, MaxGenerations: 100, Stagnation: 30}, rand.New(rand.NewSource(5)))
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best-so-far history increased at generation %d: %v -> %v",
				i, res.History[i-1], res.History[i])
		}
	}
}

func TestMutatorsAreApplied(t *testing.T) {
	p := oneMax{n: 10, k: 4}
	applied := 0
	perfect := func(g []int, rng *rand.Rand) bool {
		applied++
		for i := range g {
			g[i] = 3
		}
		return true
	}
	res := Run(p, Config{PopSize: 10, MaxGenerations: 50, Stagnation: 10, ImprovementRate: 1},
		rand.New(rand.NewSource(2)), perfect)
	if applied == 0 {
		t.Fatal("mutator never ran")
	}
	if res.BestFitness != 0 {
		t.Errorf("perfect mutator must produce the optimum, got %v", res.BestFitness)
	}
}

func TestGenomesRespectAlleleBounds(t *testing.T) {
	p := boundsCheck{n: 30, t: t}
	Run(p, Config{PopSize: 16, MaxGenerations: 40, Stagnation: 15}, rand.New(rand.NewSource(9)))
}

// boundsCheck fails the test if any evaluated genome is out of range.
type boundsCheck struct {
	n int
	t *testing.T
}

func (p boundsCheck) GenomeLen() int { return p.n }
func (p boundsCheck) Alleles(i int) int {
	return 1 + i%5
}
func (p boundsCheck) Fitness(g []int) float64 {
	s := 0.0
	for i, v := range g {
		if v < 0 || v >= p.Alleles(i) {
			p.t.Fatalf("allele %d out of range at locus %d", v, i)
		}
		s += float64(v)
	}
	return s
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(100)
	if c.PopSize != 32 || c.MaxGenerations != 200 || c.Stagnation != 40 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.MutationRate != 0.01 {
		t.Errorf("mutation rate = %v, want 1/genomeLen", c.MutationRate)
	}
	if c.Offspring != 16 {
		t.Errorf("offspring = %d, want PopSize/2", c.Offspring)
	}
	c = Config{PopSize: 1}.withDefaults(0)
	if c.Offspring != 1 {
		t.Errorf("offspring floor = %d, want 1", c.Offspring)
	}
}

func TestDiversity(t *testing.T) {
	if got := Diversity(nil); got != 0 {
		t.Errorf("empty diversity = %v", got)
	}
	g := [][]int{{1, 2}, {1, 2}, {3, 4}}
	if got := Diversity(g); got != 2.0/3.0 {
		t.Errorf("diversity = %v, want 2/3", got)
	}
}

// Property: the reported best fitness is never worse than any fitness the
// history recorded, and equals Fitness(Best).
func TestQuickBestConsistent(t *testing.T) {
	f := func(seed int64) bool {
		p := oneMax{n: 8, k: 3}
		res := Run(p, Config{PopSize: 10, MaxGenerations: 30, Stagnation: 10},
			rand.New(rand.NewSource(seed)))
		if p.Fitness(res.Best) != res.BestFitness {
			return false
		}
		for _, h := range res.History {
			if res.BestFitness > h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMinDiversityStopsConvergedRun(t *testing.T) {
	// Constant fitness: the population converges by offspring insertion
	// and stagnates immediately; with MinDiversity the run must end well
	// before the plain stagnation limit.
	p := constProblem{n: 4}
	plain := Run(p, Config{PopSize: 10, MaxGenerations: 500, Stagnation: 100},
		rand.New(rand.NewSource(5)))
	early := Run(p, Config{PopSize: 10, MaxGenerations: 500, Stagnation: 100, MinDiversity: 0.99},
		rand.New(rand.NewSource(5)))
	if early.Generations >= plain.Generations {
		t.Errorf("diversity stop did not shorten the run: %d vs %d",
			early.Generations, plain.Generations)
	}
	if early.Generations < 50 {
		t.Errorf("diversity stop must still honour half the stagnation limit, got %d", early.Generations)
	}
}
