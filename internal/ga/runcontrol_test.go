package ga

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestRunCtxCancelledReturnsPartialBestSoFar(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must stop at the first boundary
	res := RunCtx(ctx, oneMax{n: 12, k: 3}, Config{PopSize: 20, MaxGenerations: 100}, rand.New(rand.NewSource(1)))
	if !res.Partial {
		t.Fatal("cancelled run must be flagged Partial")
	}
	if res.Reason != "canceled" {
		t.Errorf("Reason = %q, want canceled", res.Reason)
	}
	if res.Best == nil || res.Generations != 0 {
		t.Errorf("cancelled run must still return the best of the initial population: %+v", res)
	}
	if res.Evaluations != 20 {
		t.Errorf("evaluations = %d, want the initial population only", res.Evaluations)
	}
}

func TestRunCtxDeadlineReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res := RunCtx(ctx, oneMax{n: 12, k: 3}, Config{PopSize: 20, MaxGenerations: 100}, rand.New(rand.NewSource(1)))
	if !res.Partial || res.Reason != "deadline exceeded" {
		t.Errorf("got partial=%v reason=%q, want partial with deadline exceeded", res.Partial, res.Reason)
	}
	if res.Best == nil {
		t.Error("deadline-exceeded run must return a best-so-far genome")
	}
}

func TestRunCtxCancelCausePropagates(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("fault budget exceeded: demo"))
	res := RunCtx(ctx, oneMax{n: 8, k: 2}, Config{PopSize: 10, MaxGenerations: 50}, rand.New(rand.NewSource(1)))
	if !res.Partial || !strings.Contains(res.Reason, "fault budget exceeded") {
		t.Errorf("cancellation cause lost: partial=%v reason=%q", res.Partial, res.Reason)
	}
}

func TestRunCtxMidRunCancellation(t *testing.T) {
	// Cancel from inside Fitness after a while: the engine must finish the
	// current generation and stop at the next boundary with best-so-far.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evals := 0
	p := hookedProblem{oneMax{n: 12, k: 3}, func([]int) {
		evals++
		if evals == 100 {
			cancel()
		}
	}}
	res := RunCtx(ctx, p, Config{PopSize: 20, MaxGenerations: 1000, Stagnation: 1000}, rand.New(rand.NewSource(3)))
	if !res.Partial {
		t.Fatal("mid-run cancellation must flag Partial")
	}
	if res.Generations == 0 || res.Generations >= 1000 {
		t.Errorf("generations = %d, want a mid-run stop", res.Generations)
	}
	if len(res.History) != res.Generations {
		t.Errorf("history has %d entries for %d generations", len(res.History), res.Generations)
	}
}

type hookedProblem struct {
	oneMax
	hook func([]int)
}

func (p hookedProblem) Fitness(g []int) float64 {
	p.hook(g)
	return p.oneMax.Fitness(g)
}

func TestStallWatchdogInjectsDiversity(t *testing.T) {
	// flat has a constant fitness surface: the best individual can never
	// improve, so the run stalls from generation one onwards.
	restarts := 0
	lastGen := 0
	res := RunControlled(flat{n: 8}, Config{PopSize: 16, MaxGenerations: 20, Stagnation: 100},
		RunControl{StallWindow: 4, OnRestart: func(gen, n int) { restarts = n; lastGen = gen }},
		rand.New(rand.NewSource(5)))
	if res.Restarts != 20/4 {
		t.Errorf("restarts = %d, want %d (every StallWindow generations)", res.Restarts, 20/4)
	}
	if restarts != res.Restarts || lastGen != 20 {
		t.Errorf("OnRestart saw (gen=%d, n=%d), result has %d", lastGen, restarts, res.Restarts)
	}
	if res.Partial {
		t.Error("watchdog restarts must not mark the run partial")
	}
}

type flat struct{ n int }

func (p flat) GenomeLen() int        { return p.n }
func (p flat) Alleles(int) int       { return 4 }
func (p flat) Fitness([]int) float64 { return 1 }

func TestStallWatchdogDisarmedNearStagnationLimit(t *testing.T) {
	// With the stagnation stop about to end the run anyway, the watchdog
	// must not fire at the same boundary and waste evaluations.
	res := RunControlled(flat{n: 8}, Config{PopSize: 16, MaxGenerations: 100, Stagnation: 4},
		RunControl{StallWindow: 4}, rand.New(rand.NewSource(5)))
	if res.Restarts != 0 {
		t.Errorf("restarts = %d, want 0 when stagnation ends the run first", res.Restarts)
	}
}

func TestWatchdogStillFindsOptimum(t *testing.T) {
	// Restarts must never regress the best-so-far trajectory.
	res := RunControlled(oneMax{n: 16, k: 4}, Config{PopSize: 40, MaxGenerations: 300, Stagnation: 100},
		RunControl{StallWindow: 10}, rand.New(rand.NewSource(2)))
	if res.BestFitness != 0 {
		t.Errorf("best fitness = %v, want 0", res.BestFitness)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best-so-far regressed at generation %d: %v -> %v", i+1, res.History[i-1], res.History[i])
		}
	}
}

func TestCheckpointCadenceAndClosingSnapshot(t *testing.T) {
	var gens []int
	rc := RunControl{
		CheckpointEvery: 5,
		OnCheckpoint:    func(s *Snapshot) error { gens = append(gens, s.Generation); return nil },
	}
	res := RunControlled(flat{n: 6}, Config{PopSize: 10, MaxGenerations: 12, Stagnation: 100}, rc,
		rand.New(rand.NewSource(9)))
	want := []int{5, 10, 12} // periodic at 5 and 10, closing snapshot at 12
	if len(gens) != len(want) {
		t.Fatalf("checkpoints at %v, want %v", gens, want)
	}
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("checkpoints at %v, want %v", gens, want)
		}
	}
	if res.Generations != 12 {
		t.Errorf("generations = %d", res.Generations)
	}
}

func TestCheckpointNotDuplicatedWhenRunEndsOnBoundary(t *testing.T) {
	var gens []int
	rc := RunControl{
		CheckpointEvery: 5,
		OnCheckpoint:    func(s *Snapshot) error { gens = append(gens, s.Generation); return nil },
	}
	RunControlled(flat{n: 6}, Config{PopSize: 10, MaxGenerations: 10, Stagnation: 100}, rc,
		rand.New(rand.NewSource(9)))
	if len(gens) != 2 || gens[1] != 10 {
		t.Errorf("checkpoints at %v, want exactly [5 10]", gens)
	}
}

func TestCheckpointFailureStopsRun(t *testing.T) {
	boom := errors.New("disk full")
	rc := RunControl{
		CheckpointEvery: 3,
		OnCheckpoint:    func(*Snapshot) error { return boom },
	}
	res := RunControlled(oneMax{n: 8, k: 3}, Config{PopSize: 10, MaxGenerations: 50, Stagnation: 50}, rc,
		rand.New(rand.NewSource(4)))
	if !res.Partial || !strings.Contains(res.Reason, "disk full") {
		t.Errorf("checkpoint failure not surfaced: partial=%v reason=%q", res.Partial, res.Reason)
	}
	if res.Generations != 3 {
		t.Errorf("generations = %d, want stop at the failing boundary", res.Generations)
	}
	if res.Best == nil {
		t.Error("best-so-far must survive a checkpoint failure")
	}
}

// splitmix is a minimal serialisable source for the resume-determinism test
// (the production implementation lives in internal/runctl, which cannot be
// imported here without a cycle).
type splitmix struct{ state uint64 }

func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }
func (s *splitmix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

func TestResumeReproducesUninterruptedRun(t *testing.T) {
	p := trap{n: 12}
	cfg := Config{PopSize: 24, MaxGenerations: 60, Stagnation: 60}

	// Reference: one uninterrupted run, remembering the engine state and
	// random stream position at every checkpoint boundary.
	type mark struct {
		snap *Snapshot
		rng  uint64
	}
	var marks []mark
	srcA := &splitmix{}
	srcA.Seed(17)
	ref := RunControlled(p, cfg, RunControl{
		CheckpointEvery: 7,
		OnCheckpoint: func(s *Snapshot) error {
			marks = append(marks, mark{snap: s, rng: srcA.state})
			return nil
		},
	}, rand.New(srcA))
	if len(marks) < 2 {
		t.Fatalf("reference run produced %d checkpoints, need at least 2", len(marks))
	}

	// Resume from every intermediate checkpoint: each must converge to the
	// identical final state, as if never interrupted.
	for i, m := range marks[:len(marks)-1] {
		srcB := &splitmix{state: m.rng}
		got := RunControlled(p, cfg, RunControl{Resume: m.snap}, rand.New(srcB))
		if got.BestFitness != ref.BestFitness {
			t.Errorf("resume from checkpoint %d (gen %d): best %v, want %v",
				i, m.snap.Generation, got.BestFitness, ref.BestFitness)
		}
		if got.Generations != ref.Generations || got.Evaluations != ref.Evaluations {
			t.Errorf("resume from gen %d: ran %d gens / %d evals, want %d / %d",
				m.snap.Generation, got.Generations, got.Evaluations, ref.Generations, ref.Evaluations)
		}
		if len(got.History) != len(ref.History) {
			t.Fatalf("resume from gen %d: history %d entries, want %d",
				m.snap.Generation, len(got.History), len(ref.History))
		}
		for g := range ref.History {
			if got.History[g] != ref.History[g] {
				t.Fatalf("resume from gen %d: history diverges at generation %d: %v != %v",
					m.snap.Generation, g+1, got.History[g], ref.History[g])
			}
		}
		for k := range ref.Best {
			if got.Best[k] != ref.Best[k] {
				t.Fatalf("resume from gen %d: best genome differs at locus %d", m.snap.Generation, k)
			}
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	var snap *Snapshot
	rc := RunControl{
		CheckpointEvery: 2,
		OnCheckpoint: func(s *Snapshot) error {
			if snap == nil {
				snap = s
			}
			return nil
		},
	}
	RunControlled(oneMax{n: 6, k: 3}, Config{PopSize: 8, MaxGenerations: 20, Stagnation: 20}, rc,
		rand.New(rand.NewSource(8)))
	if snap == nil {
		t.Fatal("no checkpoint emitted")
	}
	// The engine kept running after the snapshot was taken; a shallow copy
	// would have been overwritten by later generations. Restoring from it
	// must still describe generation 2.
	if snap.Generation != 2 {
		t.Fatalf("first snapshot at generation %d, want 2", snap.Generation)
	}
	if len(snap.Population) != 8 || len(snap.Fitness) != 8 || len(snap.History) != 2 {
		t.Errorf("snapshot shapes wrong: pop=%d fit=%d hist=%d",
			len(snap.Population), len(snap.Fitness), len(snap.History))
	}
}

func TestRunControlledZeroValueMatchesRun(t *testing.T) {
	p := oneMax{n: 10, k: 3}
	cfg := Config{PopSize: 16, MaxGenerations: 40, Stagnation: 40}
	a := Run(p, cfg, rand.New(rand.NewSource(6)))
	b := RunControlled(p, cfg, RunControl{}, rand.New(rand.NewSource(6)))
	if a.BestFitness != b.BestFitness || a.Generations != b.Generations || a.Evaluations != b.Evaluations {
		t.Errorf("zero RunControl changed the run: %+v vs %+v", a, b)
	}
	if b.Partial || b.Reason != "" || b.Restarts != 0 {
		t.Errorf("zero RunControl produced control side effects: %+v", b)
	}
}
