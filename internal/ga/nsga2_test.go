package ga

import (
	"math"
	"math/rand"
	"testing"
)

// biObjective is a classic two-objective toy: genome values map to x in
// [0,1]; f1 = x, f2 = 1-x ... with a granular trade-off so the front
// should cover the whole range.
type biObjective struct{ n int }

func (p biObjective) GenomeLen() int  { return p.n }
func (p biObjective) Alleles(int) int { return 2 }

func (p biObjective) x(g []int) float64 {
	s := 0
	for _, v := range g {
		s += v
	}
	return float64(s) / float64(p.n)
}

func (p biObjective) Objectives(g []int) []float64 {
	x := p.x(g)
	return []float64{x, (1 - x) * (1 - x)}
}

func TestDominates(t *testing.T) {
	if !Dominates([]float64{1, 2}, []float64{2, 3}) {
		t.Error("strictly better must dominate")
	}
	if !Dominates([]float64{1, 3}, []float64{2, 3}) {
		t.Error("better-or-equal with one strict must dominate")
	}
	if Dominates([]float64{1, 4}, []float64{2, 3}) {
		t.Error("trade-off must not dominate")
	}
	if Dominates([]float64{1, 2}, []float64{1, 2}) {
		t.Error("equal vectors must not dominate")
	}
}

func TestNSGA2FrontIsNonDominated(t *testing.T) {
	p := biObjective{n: 12}
	res := RunNSGA2(nil, p, Config{PopSize: 40, MaxGenerations: 40}, rand.New(rand.NewSource(1)))
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for i := range res.Front {
		for j := range res.Front {
			if i != j && Dominates(res.Front[i].Objectives, res.Front[j].Objectives) {
				t.Fatalf("front point %d dominates %d", i, j)
			}
		}
	}
	if res.Evaluations == 0 || res.Generations == 0 {
		t.Error("statistics missing")
	}
}

func TestNSGA2FrontSpreads(t *testing.T) {
	p := biObjective{n: 12}
	res := RunNSGA2(nil, p, Config{PopSize: 60, MaxGenerations: 60}, rand.New(rand.NewSource(2)))
	// The true front is x in {0, 1/12, ..., 1}; expect wide coverage:
	// both extremes plus several interior points.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pt := range res.Front {
		if pt.Objectives[0] < lo {
			lo = pt.Objectives[0]
		}
		if pt.Objectives[0] > hi {
			hi = pt.Objectives[0]
		}
	}
	if lo > 0.01 || hi < 0.99 {
		t.Errorf("front does not span the trade-off: [%v, %v]", lo, hi)
	}
	if len(res.Front) < 5 {
		t.Errorf("front has only %d points", len(res.Front))
	}
}

func TestNSGA2FrontSortedAndDeduped(t *testing.T) {
	p := biObjective{n: 8}
	res := RunNSGA2(nil, p, Config{PopSize: 40, MaxGenerations: 40}, rand.New(rand.NewSource(3)))
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i].Objectives[0] < res.Front[i-1].Objectives[0] {
			t.Fatal("front not sorted by first objective")
		}
		if res.Front[i].Objectives[0] == res.Front[i-1].Objectives[0] &&
			res.Front[i].Objectives[1] == res.Front[i-1].Objectives[1] {
			t.Fatal("duplicate objective vectors on the front")
		}
	}
}

func TestNSGA2Deterministic(t *testing.T) {
	p := biObjective{n: 10}
	cfg := Config{PopSize: 20, MaxGenerations: 20}
	a := RunNSGA2(nil, p, cfg, rand.New(rand.NewSource(9)))
	b := RunNSGA2(nil, p, cfg, rand.New(rand.NewSource(9)))
	if len(a.Front) != len(b.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(a.Front), len(b.Front))
	}
	for i := range a.Front {
		for k := range a.Front[i].Objectives {
			if a.Front[i].Objectives[k] != b.Front[i].Objectives[k] {
				t.Fatal("fronts differ for identical seeds")
			}
		}
	}
}

// singleOpt has one objective; NSGA-II degenerates to elitist search and
// must find the optimum.
type singleOpt struct{ n int }

func (p singleOpt) GenomeLen() int  { return p.n }
func (p singleOpt) Alleles(int) int { return 3 }
func (p singleOpt) Objectives(g []int) []float64 {
	s := 0.0
	for _, v := range g {
		s += float64(2 - v)
	}
	return []float64{s}
}

func TestNSGA2SingleObjective(t *testing.T) {
	p := singleOpt{n: 10}
	res := RunNSGA2(nil, p, Config{PopSize: 30, MaxGenerations: 60}, rand.New(rand.NewSource(4)))
	if len(res.Front) != 1 {
		t.Fatalf("single-objective front size = %d, want 1", len(res.Front))
	}
	if res.Front[0].Objectives[0] != 0 {
		t.Errorf("optimum not found: %v", res.Front[0].Objectives)
	}
}
