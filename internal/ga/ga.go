// Package ga provides the genetic-algorithm engine driving the outer
// optimisation loop of the multi-mode co-synthesis: a steady-state GA over
// integer strings with linear-rank fitness scaling, tournament mating
// selection, two-point crossover, offspring insertion, allele mutation and
// pluggable problem-specific improvement mutations (paper Fig. 4).
//
// Fitness is minimised. All randomness flows through an injected
// *rand.Rand, so runs are reproducible given a seed.
package ga

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Problem defines the search space and objective. Genomes are integer
// strings; locus i takes alleles in [0, Alleles(i)).
type Problem interface {
	// GenomeLen returns the number of loci.
	GenomeLen() int
	// Alleles returns the number of admissible alleles at locus i (>= 1).
	Alleles(i int) int
	// Fitness evaluates a genome; lower is better. It must be
	// deterministic for a given genome.
	Fitness(genome []int) float64
}

// Mutator is a problem-specific improvement operator. It may rewrite the
// genome in place and reports whether it changed anything (triggering
// re-evaluation). The engine decides which individuals to pass in.
type Mutator func(genome []int, rng *rand.Rand) bool

// Config tunes the engine. Zero values select the defaults noted per
// field.
type Config struct {
	// PopSize is the population size (default 32).
	PopSize int
	// MaxGenerations bounds the run (default 200).
	MaxGenerations int
	// Stagnation stops the run after this many generations without
	// improvement of the best individual (default 40), matching the paper's
	// convergence criterion of diversity plus elapsed iterations without an
	// improved individual.
	Stagnation int
	// Offspring is the number of children produced and inserted per
	// generation (default PopSize/2).
	Offspring int
	// TournamentSize is the mating tournament size (default 2).
	TournamentSize int
	// MutationRate is the per-locus probability of a random allele change
	// applied to offspring (default 1/GenomeLen).
	MutationRate float64
	// SelectionPressure in [1,2] sets the linear-ranking slope (default
	// 1.8): the best individual is picked SelectionPressure times more
	// often than the median.
	SelectionPressure float64
	// ImprovementRate is the probability that each improvement mutator is
	// applied to a randomly picked non-elite individual per generation
	// (default 0.02 per the paper's shut-down strategy, scaled by
	// population size).
	ImprovementRate float64
	// MinDiversity, when positive, adds the paper's second convergence
	// signal: the run stops early once the fraction of distinct genomes in
	// the population falls below this threshold while the best individual
	// has stagnated for at least half the Stagnation limit.
	MinDiversity float64
}

func (c Config) withDefaults(genomeLen int) Config {
	if c.PopSize <= 0 {
		c.PopSize = 32
	}
	if c.MaxGenerations <= 0 {
		c.MaxGenerations = 200
	}
	if c.Stagnation <= 0 {
		c.Stagnation = 40
	}
	if c.Offspring <= 0 {
		c.Offspring = c.PopSize / 2
		if c.Offspring < 1 {
			c.Offspring = 1
		}
	}
	if c.TournamentSize <= 0 {
		c.TournamentSize = 2
	}
	if c.MutationRate <= 0 {
		if genomeLen > 0 {
			c.MutationRate = 1 / float64(genomeLen)
		} else {
			c.MutationRate = 0.05
		}
	}
	if c.SelectionPressure < 1 || c.SelectionPressure > 2 {
		c.SelectionPressure = 1.8
	}
	if c.ImprovementRate <= 0 {
		c.ImprovementRate = 0.02
	}
	return c
}

// MutatorStats is the cumulative effectiveness record of one improvement
// mutator, indexed like the mutators passed to Run: Attempts counts
// invocations, Accepted counts invocations that changed the genome, and
// Improved counts changes that lowered the individual's fitness.
type MutatorStats struct {
	Attempts int
	Accepted int
	Improved int
}

// GenerationStats is the engine state reported to RunControl.OnGeneration
// after each completed generation. Everything is a copy; observers may
// retain it.
type GenerationStats struct {
	// Generation is the 1-based number of the generation just completed.
	Generation  int
	Stagnant    int
	Evaluations int
	Restarts    int
	// BestFitness is the best-so-far fitness; BestGenome is a copy of that
	// individual.
	BestFitness float64
	BestGenome  []int
	// MeanFitness averages the finite fitnesses of the population (+Inf when
	// every individual is infeasible); Infeasible counts the non-finite ones.
	MeanFitness float64
	Infeasible  int
	// Diversity is the fraction of distinct genomes in the population.
	Diversity float64
	// Mutators are the cumulative per-operator improvement-mutation stats,
	// in the order the mutators were passed to the engine.
	Mutators []MutatorStats
}

// Result reports the outcome of a run.
type Result struct {
	Best        []int
	BestFitness float64
	Generations int
	Evaluations int
	// History records the best fitness after every generation.
	History []float64
	// Mutators holds the final per-operator improvement-mutation stats, in
	// the order the mutators were passed in.
	Mutators []MutatorStats
	// Partial is set when the run stopped before its own termination
	// criteria: the context was cancelled, its deadline passed, or a
	// checkpoint write failed. Best is then the best-so-far individual.
	Partial bool
	// Reason explains why a partial run stopped ("canceled", "deadline
	// exceeded", a fault-budget message, ...). Empty for complete runs.
	Reason string
	// Restarts counts stall-watchdog diversity injections (see
	// RunControl.StallWindow).
	Restarts int
}

// Snapshot captures the resumable engine state at a generation boundary.
// It is deep-copied from the engine, so holding one across generations is
// safe. Population order is best-first (the engine keeps it sorted).
type Snapshot struct {
	// Generation is the number of generations completed.
	Generation int
	// Stagnant is the convergence counter (generations without
	// improvement of the best individual).
	Stagnant    int
	Evaluations int
	Restarts    int
	Population  [][]int
	Fitness     []float64
	BestGenome  []int
	BestFitness float64
	History     []float64
	// MutStats carries the cumulative per-operator improvement-mutation
	// stats across a resume, so convergence traces continue seamlessly.
	// May be shorter than the mutator list of the resumed run (older
	// checkpoints): missing entries restart at zero.
	MutStats []MutatorStats
}

// RunControl adds run-control behaviour to a run without changing Config
// semantics: cancellation, checkpoint emission, resume, and a stall
// watchdog. The zero value is a plain uncontrolled run.
type RunControl struct {
	// Context, when non-nil, is polled at every generation boundary; on
	// cancellation or deadline the run stops and returns the best-so-far
	// result with Partial set — never an error, never a lost run.
	Context context.Context
	// Resume, when non-nil, restores the engine from the snapshot instead
	// of initialising a fresh population. The caller must pass the same
	// Problem, Config and random stream position for the resumed run to
	// reproduce the uninterrupted one.
	Resume *Snapshot
	// CheckpointEvery emits a snapshot through OnCheckpoint every that
	// many generations (0 disables checkpointing). A final snapshot is
	// also emitted when the run stops, whatever the reason.
	CheckpointEvery int
	// OnCheckpoint persists a snapshot. A returned error stops the run at
	// this boundary with Partial set, so a full disk cannot silently run
	// on unprotected.
	OnCheckpoint func(*Snapshot) error
	// StallWindow, when positive, arms the stall watchdog: after that many
	// consecutive generations without improvement (and before the
	// Stagnation criterion ends the run) the worst half of the population
	// is re-randomised to re-inject diversity. It fires again every
	// further StallWindow stalled generations.
	StallWindow int
	// OnRestart is notified after each diversity injection with the
	// 1-based generation number and the total restart count.
	OnRestart func(generation, restarts int)
	// OnGeneration, when non-nil, observes the engine after every completed
	// generation. It must only read: the stats are copies, and the observer
	// runs outside the engine's random stream, so attaching one never
	// changes the search trajectory.
	OnGeneration func(GenerationStats)
}

// RunCtx is Run with cancellation: on ctx cancellation or deadline the
// engine stops at the next generation boundary and returns the best-so-far
// result flagged Partial.
func RunCtx(ctx context.Context, p Problem, cfg Config, rng *rand.Rand, mutators ...Mutator) *Result {
	return RunControlled(p, cfg, RunControl{Context: ctx}, rng, mutators...)
}

type individual struct {
	genome  []int
	fitness float64
}

type engine struct {
	p        Problem
	cfg      Config
	rng      *rand.Rand
	muts     []Mutator
	pop      []individual
	evals    int
	mutStats []MutatorStats
}

// Run executes the GA and returns the best genome found. Improvement
// mutators are applied, each with probability cfg.ImprovementRate per
// individual per generation, to non-elite individuals.
func Run(p Problem, cfg Config, rng *rand.Rand, mutators ...Mutator) *Result {
	return RunControlled(p, cfg, RunControl{}, rng, mutators...)
}

// RunControlled executes the GA under the given run control: it polls the
// context at generation boundaries, emits checkpoints, optionally resumes
// from a snapshot, and runs the stall watchdog. With a zero RunControl it
// behaves exactly like Run, consuming the identical random stream.
func RunControlled(p Problem, cfg Config, rc RunControl, rng *rand.Rand, mutators ...Mutator) *Result {
	n := p.GenomeLen()
	cfg = cfg.withDefaults(n)
	ctx := rc.Context
	if ctx == nil {
		ctx = context.Background()
	}
	e := &engine{p: p, cfg: cfg, rng: rng, muts: mutators}
	e.mutStats = make([]MutatorStats, len(mutators))

	res := &Result{}
	var best individual
	stagnant := 0
	gen := 0
	if rc.Resume != nil && len(rc.Resume.Population) > 0 {
		e.restore(rc.Resume)
		gen = rc.Resume.Generation
		stagnant = rc.Resume.Stagnant
		best = individual{
			genome:  append([]int(nil), rc.Resume.BestGenome...),
			fitness: rc.Resume.BestFitness,
		}
		res.History = append(res.History, rc.Resume.History...)
		res.Restarts = rc.Resume.Restarts
	} else {
		e.initPopulation()
		best = e.cloneBest()
	}

	lastCheckpoint := -1
	for ; gen < cfg.MaxGenerations && stagnant < cfg.Stagnation; gen++ {
		if err := ctx.Err(); err != nil {
			res.Partial = true
			res.Reason = cancelReason(ctx)
			break
		}
		e.generation()
		cur := e.cloneBest()
		if cur.fitness < best.fitness-1e-15 {
			best = cur
			stagnant = 0
		} else {
			stagnant++
		}
		res.History = append(res.History, best.fitness)
		if rc.StallWindow > 0 && stagnant > 0 && stagnant%rc.StallWindow == 0 && stagnant < cfg.Stagnation {
			e.injectDiversity()
			res.Restarts++
			if rc.OnRestart != nil {
				rc.OnRestart(gen+1, res.Restarts)
			}
		}
		if rc.OnGeneration != nil {
			rc.OnGeneration(e.generationStats(gen+1, stagnant, best, res))
		}
		if cfg.MinDiversity > 0 && stagnant >= cfg.Stagnation/2 && e.diversity() < cfg.MinDiversity {
			gen++
			break
		}
		if rc.CheckpointEvery > 0 && rc.OnCheckpoint != nil && (gen+1)%rc.CheckpointEvery == 0 {
			lastCheckpoint = gen + 1
			if err := rc.OnCheckpoint(e.snapshot(gen+1, stagnant, best, res)); err != nil {
				res.Partial = true
				res.Reason = "checkpoint failed: " + err.Error()
				gen++
				break
			}
		}
	}
	res.Best = best.genome
	res.BestFitness = best.fitness
	res.Generations = gen
	res.Evaluations = e.evals
	if len(e.mutStats) > 0 {
		res.Mutators = append([]MutatorStats(nil), e.mutStats...)
	}
	// A closing checkpoint captures the exact stop state, whatever ended
	// the run, so a resume continues from the last completed generation.
	if rc.OnCheckpoint != nil && rc.CheckpointEvery > 0 && gen != lastCheckpoint {
		if err := rc.OnCheckpoint(e.snapshot(gen, stagnant, best, res)); err != nil && !res.Partial {
			res.Partial = true
			res.Reason = "checkpoint failed: " + err.Error()
		}
	}
	return res
}

// cancelReason renders the context's cancellation cause for Result.Reason.
func cancelReason(ctx context.Context) string {
	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, context.DeadlineExceeded):
		return "deadline exceeded"
	case cause == nil, errors.Is(cause, context.Canceled):
		return "canceled"
	default:
		return cause.Error()
	}
}

func (e *engine) randomGenome() []int {
	n := e.p.GenomeLen()
	g := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = e.rng.Intn(e.p.Alleles(i))
	}
	return g
}

func (e *engine) eval(g []int) float64 {
	e.evals++
	return e.p.Fitness(g)
}

func (e *engine) initPopulation() {
	e.pop = make([]individual, e.cfg.PopSize)
	for i := range e.pop {
		g := e.randomGenome()
		e.pop[i] = individual{genome: g, fitness: e.eval(g)}
	}
	e.sortPop()
}

// snapshot deep-copies the engine state after `gen` completed generations.
func (e *engine) snapshot(gen, stagnant int, best individual, res *Result) *Snapshot {
	s := &Snapshot{
		Generation:  gen,
		Stagnant:    stagnant,
		Evaluations: e.evals,
		Restarts:    res.Restarts,
		BestGenome:  append([]int(nil), best.genome...),
		BestFitness: best.fitness,
		History:     append([]float64(nil), res.History...),
		Population:  make([][]int, len(e.pop)),
		Fitness:     make([]float64, len(e.pop)),
	}
	for i, ind := range e.pop {
		s.Population[i] = append([]int(nil), ind.genome...)
		s.Fitness[i] = ind.fitness
	}
	if len(e.mutStats) > 0 {
		s.MutStats = append([]MutatorStats(nil), e.mutStats...)
	}
	return s
}

// restore loads a snapshot's population without re-evaluating it.
func (e *engine) restore(s *Snapshot) {
	e.pop = make([]individual, len(s.Population))
	for i := range s.Population {
		e.pop[i] = individual{
			genome:  append([]int(nil), s.Population[i]...),
			fitness: s.Fitness[i],
		}
	}
	e.evals = s.Evaluations
	// Carry over as many per-mutator stats as both sides know about; an
	// older checkpoint without them restarts the counters at zero.
	for i := 0; i < len(e.mutStats) && i < len(s.MutStats); i++ {
		e.mutStats[i] = s.MutStats[i]
	}
	e.sortPop()
}

// generationStats assembles the observer report for the generation just
// completed. Everything it touches is already computed or copied, so the
// observer cannot perturb the search.
func (e *engine) generationStats(gen, stagnant int, best individual, res *Result) GenerationStats {
	sum := 0.0
	finite := 0
	for _, ind := range e.pop {
		if !math.IsInf(ind.fitness, 0) && !math.IsNaN(ind.fitness) {
			sum += ind.fitness
			finite++
		}
	}
	mean := math.Inf(1)
	if finite > 0 {
		mean = sum / float64(finite)
	}
	return GenerationStats{
		Generation:  gen,
		Stagnant:    stagnant,
		Evaluations: e.evals,
		Restarts:    res.Restarts,
		BestFitness: best.fitness,
		BestGenome:  append([]int(nil), best.genome...),
		MeanFitness: mean,
		Infeasible:  len(e.pop) - finite,
		Diversity:   e.diversity(),
		Mutators:    append([]MutatorStats(nil), e.mutStats...),
	}
}

// injectDiversity re-randomises the worst half of the population (the
// stall-watchdog restart), keeping the elite half intact so the best-so-far
// trajectory never regresses.
func (e *engine) injectDiversity() {
	for i := len(e.pop) / 2; i < len(e.pop); i++ {
		g := e.randomGenome()
		e.pop[i] = individual{genome: g, fitness: e.eval(g)}
	}
	e.sortPop()
}

// sortPop orders the population best-first (ascending fitness) with a
// deterministic tie-break on the genome contents.
func (e *engine) sortPop() {
	sort.SliceStable(e.pop, func(i, j int) bool {
		return e.pop[i].fitness < e.pop[j].fitness
	})
}

func (e *engine) cloneBest() individual {
	b := e.pop[0]
	return individual{genome: append([]int(nil), b.genome...), fitness: b.fitness}
}

// rankWeights returns linear-ranking selection weights, best first.
func (e *engine) rankWeights() []float64 {
	n := len(e.pop)
	w := make([]float64, n)
	sp := e.cfg.SelectionPressure
	for i := 0; i < n; i++ {
		// Baker's linear ranking: weight of rank i (0 = best).
		w[i] = sp - (2*sp-2)*float64(i)/math.Max(1, float64(n-1))
	}
	return w
}

// selectParent runs a tournament over rank weights: draw TournamentSize
// individuals, keep the one with the highest selection weight (= best
// rank).
//
//mm:noalloc
func (e *engine) selectParent(weights []float64) int {
	best := e.rng.Intn(len(e.pop))
	for k := 1; k < e.cfg.TournamentSize; k++ {
		c := e.rng.Intn(len(e.pop))
		if weights[c] > weights[best] {
			best = c
		}
	}
	return best
}

// crossover performs two-point crossover of the parents, returning one
// child (the second is implicitly explored by later generations).
func (e *engine) crossover(a, b []int) []int {
	n := len(a)
	child := append([]int(nil), a...)
	if n < 2 {
		return child
	}
	p1 := e.rng.Intn(n)
	p2 := e.rng.Intn(n)
	if p1 > p2 {
		p1, p2 = p2, p1
	}
	copy(child[p1:p2+1], b[p1:p2+1])
	return child
}

// mutate re-draws each gene with probability MutationRate, in place.
//
//mm:noalloc
func (e *engine) mutate(g []int) {
	for i := range g {
		if e.rng.Float64() < e.cfg.MutationRate {
			g[i] = e.rng.Intn(e.p.Alleles(i))
		}
	}
}

// generation produces offspring, inserts them replacing the worst
// individuals, and applies the improvement mutators.
func (e *engine) generation() {
	weights := e.rankWeights()
	offspring := make([]individual, 0, e.cfg.Offspring)
	for len(offspring) < e.cfg.Offspring {
		pa := e.selectParent(weights)
		pb := e.selectParent(weights)
		child := e.crossover(e.pop[pa].genome, e.pop[pb].genome)
		e.mutate(child)
		offspring = append(offspring, individual{genome: child, fitness: e.eval(child)})
	}
	// Offspring insertion: replace the tail (worst) of the population.
	n := len(e.pop)
	for i, child := range offspring {
		e.pop[n-1-i] = child
	}
	e.sortPop()

	// Improvement mutations: each mutator hits each non-elite individual
	// with probability ImprovementRate.
	for mi, mut := range e.muts {
		for i := 1; i < len(e.pop); i++ {
			if e.rng.Float64() >= e.cfg.ImprovementRate {
				continue
			}
			e.mutStats[mi].Attempts++
			if mut(e.pop[i].genome, e.rng) {
				e.mutStats[mi].Accepted++
				before := e.pop[i].fitness
				e.pop[i].fitness = e.eval(e.pop[i].genome)
				if e.pop[i].fitness < before {
					e.mutStats[mi].Improved++
				}
			}
		}
	}
	e.sortPop()
}

// diversity returns the fraction of distinct genomes in the current
// population.
func (e *engine) diversity() float64 {
	genomes := make([][]int, len(e.pop))
	for i := range e.pop {
		genomes[i] = e.pop[i].genome
	}
	return Diversity(genomes)
}

// Diversity returns the fraction of distinct genomes in the final
// population of a result history; exposed for tests via the package-level
// helper below.
func Diversity(genomes [][]int) float64 {
	if len(genomes) == 0 {
		return 0
	}
	seen := make(map[string]bool)
	for _, g := range genomes {
		key := make([]byte, 0, len(g)*2)
		for _, v := range g {
			key = append(key, byte(v), byte(v>>8))
		}
		seen[string(key)] = true
	}
	return float64(len(seen)) / float64(len(genomes))
}
