package ga

import (
	"math/rand"
	"testing"

	"momosyn/internal/allocpin"
)

// sinkIdx defeats dead-code elimination of the measured calls.
var sinkIdx int

// TestAllocPins proves every //mm:noalloc function in this package runs
// with zero allocations on realistic inputs (see internal/allocpin).
func TestAllocPins(t *testing.T) {
	p := oneMax{n: 12, k: 4}
	e := &engine{
		p:   p,
		cfg: Config{PopSize: 20, MaxGenerations: 10, Stagnation: 5}.withDefaults(p.GenomeLen()),
		rng: rand.New(rand.NewSource(1)),
	}
	e.initPopulation()
	weights := e.rankWeights()
	genome := make([]int, p.GenomeLen())

	allocpin.Verify(t, ".", []allocpin.Pin{
		{Name: "engine.selectParent", Body: func() { sinkIdx = e.selectParent(weights) }},
		{Name: "engine.mutate", Body: func() { e.mutate(genome) }},
	})
}
