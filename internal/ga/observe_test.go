package ga

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestOnGenerationObserverIsPassive: attaching an observer must not change
// the search trajectory — it runs outside the engine's random stream.
func TestOnGenerationObserverIsPassive(t *testing.T) {
	p := trap{n: 12}
	cfg := Config{PopSize: 24, MaxGenerations: 60, Stagnation: 30}
	plain := Run(p, cfg, rand.New(rand.NewSource(11)))

	var stats []GenerationStats
	observed := RunControlled(p, cfg, RunControl{
		OnGeneration: func(s GenerationStats) { stats = append(stats, s) },
	}, rand.New(rand.NewSource(11)))

	if plain.BestFitness != observed.BestFitness ||
		plain.Generations != observed.Generations ||
		plain.Evaluations != observed.Evaluations {
		t.Errorf("observer changed the run: %+v vs %+v", plain, observed)
	}
	if len(stats) != observed.Generations {
		t.Fatalf("observer saw %d generations, run reports %d", len(stats), observed.Generations)
	}
	for i, s := range stats {
		if s.Generation != i+1 {
			t.Fatalf("generation numbers not sequential: stats[%d].Generation = %d", i, s.Generation)
		}
		if s.BestFitness != observed.History[i] {
			t.Errorf("gen %d: observed best %v, history records %v", s.Generation, s.BestFitness, observed.History[i])
		}
		if s.Diversity < 0 || s.Diversity > 1 {
			t.Errorf("gen %d: diversity %v outside [0,1]", s.Generation, s.Diversity)
		}
		if s.MeanFitness < s.BestFitness {
			t.Errorf("gen %d: mean fitness %v below best %v", s.Generation, s.MeanFitness, s.BestFitness)
		}
	}
}

// infeasibleProblem marks genomes with a leading 1 as infeasible (+Inf).
type infeasibleProblem struct{ n int }

func (p infeasibleProblem) GenomeLen() int  { return p.n }
func (p infeasibleProblem) Alleles(int) int { return 2 }
func (p infeasibleProblem) Fitness(g []int) float64 {
	if g[0] == 1 {
		return math.Inf(1)
	}
	f := 0.0
	for _, v := range g {
		f += float64(v)
	}
	return f
}

// TestMeanFitnessExcludesInfeasible: the reported mean averages only the
// finite fitnesses and counts the rest as Infeasible.
func TestMeanFitnessExcludesInfeasible(t *testing.T) {
	var last GenerationStats
	RunControlled(infeasibleProblem{n: 6}, Config{PopSize: 16, MaxGenerations: 10, Stagnation: 10},
		RunControl{OnGeneration: func(s GenerationStats) { last = s }},
		rand.New(rand.NewSource(4)))
	if last.Generation == 0 {
		t.Fatal("observer never ran")
	}
	if math.IsInf(last.MeanFitness, 0) || math.IsNaN(last.MeanFitness) {
		t.Errorf("mean fitness %v not finite despite feasible individuals", last.MeanFitness)
	}
	if last.Infeasible < 0 || last.Infeasible > 16 {
		t.Errorf("infeasible count %d outside the population", last.Infeasible)
	}
}

// TestMutatorStatsAreConsistent: per-operator counters obey
// Improved <= Accepted <= Attempts and reflect actual invocations.
func TestMutatorStatsAreConsistent(t *testing.T) {
	p := oneMax{n: 10, k: 4}
	alwaysChange := func(g []int, rng *rand.Rand) bool {
		g[rng.Intn(len(g))] = rng.Intn(4)
		return true
	}
	neverChange := func(g []int, rng *rand.Rand) bool { return false }
	res := Run(p, Config{PopSize: 12, MaxGenerations: 30, Stagnation: 30, ImprovementRate: 1},
		rand.New(rand.NewSource(9)), alwaysChange, neverChange)
	if len(res.Mutators) != 2 {
		t.Fatalf("got stats for %d mutators, want 2", len(res.Mutators))
	}
	for i, m := range res.Mutators {
		if m.Attempts == 0 {
			t.Errorf("mutator %d never attempted despite ImprovementRate 1", i)
		}
		if m.Accepted > m.Attempts || m.Improved > m.Accepted {
			t.Errorf("mutator %d counters inconsistent: %+v", i, m)
		}
	}
	if res.Mutators[0].Accepted != res.Mutators[0].Attempts {
		t.Errorf("always-changing mutator accepted %d of %d attempts",
			res.Mutators[0].Accepted, res.Mutators[0].Attempts)
	}
	if res.Mutators[1].Accepted != 0 {
		t.Errorf("never-changing mutator reports %d acceptances", res.Mutators[1].Accepted)
	}
}

// TestMutatorStatsSurviveResume: checkpointed runs carry the cumulative
// per-operator counters, so a resumed run's final stats equal the
// uninterrupted run's.
func TestMutatorStatsSurviveResume(t *testing.T) {
	p := trap{n: 10}
	cfg := Config{PopSize: 16, MaxGenerations: 40, Stagnation: 40, ImprovementRate: 0.5}
	mut := func(g []int, rng *rand.Rand) bool {
		i := rng.Intn(len(g))
		if g[i] != 3 {
			g[i] = 3
			return true
		}
		return false
	}

	type mark struct {
		snap *Snapshot
		rng  uint64
	}
	var marks []mark
	src := &splitmix{}
	src.Seed(23)
	ref := RunControlled(p, cfg, RunControl{
		CheckpointEvery: 5,
		OnCheckpoint: func(s *Snapshot) error {
			marks = append(marks, mark{snap: s, rng: src.state})
			return nil
		},
	}, rand.New(src), mut)
	if len(marks) < 2 {
		t.Fatalf("reference run produced %d checkpoints, need at least 2", len(marks))
	}
	m := marks[0]
	if len(m.snap.MutStats) != 1 {
		t.Fatalf("checkpoint carries %d mutator stats, want 1", len(m.snap.MutStats))
	}

	resumed := RunControlled(p, cfg, RunControl{Resume: m.snap},
		rand.New(&splitmix{state: m.rng}), mut)
	if !reflect.DeepEqual(resumed.Mutators, ref.Mutators) {
		t.Errorf("resumed mutator stats %+v, uninterrupted run had %+v", resumed.Mutators, ref.Mutators)
	}
}
