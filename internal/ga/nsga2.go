package ga

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// MultiProblem is a multi-objective search problem over integer strings.
// All objectives are minimised.
type MultiProblem interface {
	GenomeLen() int
	Alleles(i int) int
	// Objectives evaluates a genome into its objective vector. It must be
	// deterministic and always return the same length.
	Objectives(genome []int) []float64
}

// ParetoPoint is one non-dominated solution of a multi-objective run.
type ParetoPoint struct {
	Genome     []int
	Objectives []float64
}

// ParetoResult is the outcome of RunNSGA2: the first non-dominated front
// of the final population, sorted by the first objective.
type ParetoResult struct {
	Front       []ParetoPoint
	Generations int
	Evaluations int
}

// Dominates reports whether objective vector a Pareto-dominates b: no
// worse in every component and strictly better in at least one.
func Dominates(a, b []float64) bool {
	better := false
	for i := range a {
		if a[i] > b[i]+1e-15 {
			return false
		}
		if a[i] < b[i]-1e-15 {
			better = true
		}
	}
	return better
}

type mindividual struct {
	genome   []int
	objs     []float64
	rank     int
	crowding float64
}

// RunNSGA2 runs an elitist non-dominated-sorting genetic algorithm
// (NSGA-II) over the problem: mu+lambda survival by (front rank, crowding
// distance), binary tournaments for mating, two-point crossover and
// uniform allele mutation — the discrete-genome counterpart of Deb's
// original formulation. It powers the power/area design-space exploration
// extension of the co-synthesis.
//
// Optional seed genomes are injected into the initial population (useful
// for anchoring the extremes of the trade-off, e.g. the all-software
// mapping); the remainder is random.
//
// Cancelling ctx stops the evolution at the next generation boundary; the
// front of the population evolved so far is still returned. A nil ctx runs
// to completion.
func RunNSGA2(ctx context.Context, p MultiProblem, cfg Config, rng *rand.Rand, seeds ...[]int) *ParetoResult {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults(p.GenomeLen())
	evals := 0
	eval := func(g []int) []float64 {
		evals++
		return p.Objectives(g)
	}

	pop := make([]mindividual, cfg.PopSize)
	for i := range pop {
		var g []int
		if i < len(seeds) && len(seeds[i]) == p.GenomeLen() {
			g = append([]int(nil), seeds[i]...)
		} else {
			g = randomGenomeFor(p, rng)
		}
		pop[i] = mindividual{genome: g, objs: eval(g)}
	}
	rankAndCrowd(pop)

	gen := 0
	for ; gen < cfg.MaxGenerations; gen++ {
		if ctx.Err() != nil {
			break
		}
		// Offspring via binary tournaments on (rank, crowding).
		offspring := make([]mindividual, 0, cfg.PopSize)
		for len(offspring) < cfg.PopSize {
			pa := pop[tournament2(pop, rng)]
			pb := pop[tournament2(pop, rng)]
			child := crossTwoPoint(pa.genome, pb.genome, rng)
			mutateUniform(p, child, cfg.MutationRate, rng)
			offspring = append(offspring, mindividual{genome: child, objs: eval(child)})
		}
		// mu + lambda environmental selection.
		union := append(pop, offspring...)
		rankAndCrowd(union)
		sort.SliceStable(union, func(i, j int) bool {
			if union[i].rank != union[j].rank {
				return union[i].rank < union[j].rank
			}
			return union[i].crowding > union[j].crowding
		})
		pop = append([]mindividual(nil), union[:cfg.PopSize]...)
	}

	var front []ParetoPoint
	rankAndCrowd(pop)
	for _, ind := range pop {
		if ind.rank == 0 {
			front = append(front, ParetoPoint{
				Genome:     append([]int(nil), ind.genome...),
				Objectives: append([]float64(nil), ind.objs...),
			})
		}
	}
	// Deduplicate identical objective vectors to keep the front readable.
	front = dedupeFront(front)
	sort.Slice(front, func(i, j int) bool { return front[i].Objectives[0] < front[j].Objectives[0] })
	return &ParetoResult{Front: front, Generations: gen, Evaluations: evals}
}

func randomGenomeFor(p MultiProblem, rng *rand.Rand) []int {
	g := make([]int, p.GenomeLen())
	for i := range g {
		g[i] = rng.Intn(p.Alleles(i))
	}
	return g
}

func crossTwoPoint(a, b []int, rng *rand.Rand) []int {
	n := len(a)
	child := append([]int(nil), a...)
	if n < 2 {
		return child
	}
	p1, p2 := rng.Intn(n), rng.Intn(n)
	if p1 > p2 {
		p1, p2 = p2, p1
	}
	copy(child[p1:p2+1], b[p1:p2+1])
	return child
}

func mutateUniform(p MultiProblem, g []int, rate float64, rng *rand.Rand) {
	for i := range g {
		if rng.Float64() < rate {
			g[i] = rng.Intn(p.Alleles(i))
		}
	}
}

func tournament2(pop []mindividual, rng *rand.Rand) int {
	a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
	if pop[a].rank != pop[b].rank {
		if pop[a].rank < pop[b].rank {
			return a
		}
		return b
	}
	if pop[a].crowding >= pop[b].crowding {
		return a
	}
	return b
}

// rankAndCrowd performs fast non-dominated sorting and crowding-distance
// assignment in place.
func rankAndCrowd(pop []mindividual) {
	n := len(pop)
	dominatedBy := make([][]int, n)
	domCount := make([]int, n)
	for i := range pop {
		pop[i].rank = -1
		pop[i].crowding = 0
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case Dominates(pop[i].objs, pop[j].objs):
				dominatedBy[i] = append(dominatedBy[i], j)
				domCount[j]++
			case Dominates(pop[j].objs, pop[i].objs):
				dominatedBy[j] = append(dominatedBy[j], i)
				domCount[i]++
			}
		}
	}
	var front []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			pop[i].rank = 0
			front = append(front, i)
		}
	}
	for rank := 0; len(front) > 0; rank++ {
		crowd(pop, front)
		var next []int
		for _, i := range front {
			for _, j := range dominatedBy[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = rank + 1
					next = append(next, j)
				}
			}
		}
		front = next
	}
}

// crowd assigns the crowding distance within one front.
func crowd(pop []mindividual, front []int) {
	if len(front) == 0 {
		return
	}
	m := len(pop[front[0]].objs)
	for k := 0; k < m; k++ {
		sort.Slice(front, func(i, j int) bool {
			return pop[front[i]].objs[k] < pop[front[j]].objs[k]
		})
		lo, hi := pop[front[0]].objs[k], pop[front[len(front)-1]].objs[k]
		pop[front[0]].crowding = math.Inf(1)
		pop[front[len(front)-1]].crowding = math.Inf(1)
		span := hi - lo
		if span <= 0 {
			continue
		}
		for i := 1; i < len(front)-1; i++ {
			d := (pop[front[i+1]].objs[k] - pop[front[i-1]].objs[k]) / span
			pop[front[i]].crowding += d
		}
	}
}

func dedupeFront(front []ParetoPoint) []ParetoPoint {
	seen := make(map[string]bool)
	out := front[:0]
	for _, pt := range front {
		key := ""
		for _, o := range pt.Objectives {
			key += " " + strconv.FormatFloat(o, 'g', 12, 64)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, pt)
	}
	return out
}
