package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Locksafe checks mutex discipline in the service layers.
//
// internal/serve and internal/fleet guard the job table, retry budgets and
// lease state with sync.Mutex/RWMutex, and their correctness arguments are
// all local: each critical section is supposed to be short, bracketed, and
// free of blocking operations. This pass mechanises the review of those
// arguments along four axes:
//
//   - mutex values must not be copied (by-value parameters, results,
//     receivers, assignments from existing values, range variables) — the
//     copy's lock state silently diverges from the original's
//   - no double-Lock of the same mutex on an intra-function path
//     (self-deadlock)
//   - no return with a lock held and no deferred unlock (the early-return
//     path leaks the lock), and no fall-off-the-end with a lock held
//   - no blocking operation (channel send/receive, select without default,
//     time.Sleep, HTTP round-trips) while a lock is held — the lock is
//     pinned across a potentially unbounded wait
//
// The analysis is intra-function and path-insensitive across branches
// (branch bodies are analysed against the state at entry); a reviewed
// false positive — e.g. a helper that intentionally returns with the lock
// held — is suppressed with //mmlint:ignore locksafe <reason>.
var Locksafe = &Analyzer{
	Name: "locksafe",
	Doc: "mutexes in the service layers must not be copied, double-locked, " +
		"leaked on early returns, or held across blocking operations " +
		"(channel ops, time.Sleep, HTTP round-trips)",
	Packages: regexp.MustCompile(`(^|/)internal/(serve|fleet|cas)($|/)`),
	Run:      runLocksafe,
}

func runLocksafe(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkMutexSignature(pass, n)
			case *ast.AssignStmt:
				checkMutexAssign(pass, n)
			case *ast.RangeStmt:
				checkMutexRange(pass, n)
			}
			return true
		})
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				tr := &lockTracker{pass: pass, held: map[string]*lockInfo{}}
				tr.stmts(fn.Body.List)
				tr.checkEnd(fn)
			}
		}
	}
	return nil
}

// --- mutex copy checks ---

// checkMutexSignature flags by-value receivers, parameters and results
// whose type contains a mutex.
func checkMutexSignature(pass *Pass, fn *ast.FuncDecl) {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	if fn.Type.Results != nil {
		fields = append(fields, fn.Type.Results.List...)
	}
	for _, field := range fields {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || !containsMutex(t) {
			continue
		}
		pass.Reportf(field.Type.Pos(),
			"%s passes %s by value, copying the mutex inside it; use a pointer", fn.Name.Name, t)
	}
}

// checkMutexAssign flags assignments that copy an existing mutex-bearing
// value. Composite literals and function-call results are exempt: a fresh
// literal carries a fresh zero mutex, and a copying return is flagged at
// the callee's signature.
func checkMutexAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !copiesExistingValue(rhs) {
			continue
		}
		t := pass.Info.TypeOf(rhs)
		if t != nil && containsMutex(t) {
			pass.Reportf(as.Lhs[i].Pos(),
				"assignment copies a value of type %s, which contains a mutex; the copy's lock state diverges from the original", t)
		}
	}
}

// checkMutexRange flags range variables that copy mutex-bearing elements.
func checkMutexRange(pass *Pass, r *ast.RangeStmt) {
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		t := pass.Info.TypeOf(e)
		if t != nil && containsMutex(t) {
			pass.Reportf(e.Pos(),
				"range variable copies a value of type %s, which contains a mutex; iterate by index or over pointers", t)
		}
	}
}

// copiesExistingValue reports whether evaluating e yields a copy of an
// already-existing value (as opposed to a fresh literal or call result).
func copiesExistingValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesExistingValue(e.X)
	}
	return false
}

// containsMutex reports whether t holds a sync.Mutex or sync.RWMutex by
// value (directly, or inside a struct or array). Pointers, slices, maps
// and interfaces do not propagate: copying them shares the mutex.
func containsMutex(t types.Type) bool {
	return containsMutexRec(t, make(map[types.Type]bool))
}

func containsMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isSyncLockType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexRec(u.Elem(), seen)
	}
	return false
}

// isSyncLockType reports whether t is exactly sync.Mutex or sync.RWMutex.
func isSyncLockType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// --- lock-state path analysis ---

// lockInfo describes one held lock.
type lockInfo struct {
	kind     string // "Lock" or "RLock"
	deferred bool   // a deferred unlock is registered
	pos      token.Pos
	line     int
}

// lockTracker walks one function's statements in source order, tracking
// which mutexes are held. Branch bodies are analysed against a clone of
// the state at branch entry and their effects discarded — the analysis is
// deliberately conservative and intra-function.
type lockTracker struct {
	pass *Pass
	held map[string]*lockInfo
}

func (t *lockTracker) clone() *lockTracker {
	c := &lockTracker{pass: t.pass, held: make(map[string]*lockInfo, len(t.held))}
	for k, v := range t.held {
		li := *v
		c.held[k] = &li
	}
	return c
}

// heldKeys returns the held lock names in stable order.
func (t *lockTracker) heldKeys() []string {
	keys := make([]string, 0, len(t.held))
	for k := range t.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (t *lockTracker) stmts(list []ast.Stmt) {
	for _, s := range list {
		t.stmt(s)
	}
}

func (t *lockTracker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, method, ok := mutexMethodCall(t.pass.Info, call); ok {
				t.transition(key, method, call.Pos())
				return
			}
		}
		t.scanBlocking(s.X)
	case *ast.DeferStmt:
		if key, method, ok := mutexMethodCall(t.pass.Info, s.Call); ok {
			if (method == "Unlock" || method == "RUnlock") && t.held[key] != nil {
				t.held[key].deferred = true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t.scanBlocking(r)
		}
		t.checkReturn(s.Pos())
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			t.scanBlocking(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			t.stmt(s.Init)
		}
		t.scanBlocking(s.Cond)
		t.clone().stmt(s.Body)
		if s.Else != nil {
			t.clone().stmt(s.Else)
		}
	case *ast.BlockStmt:
		t.stmts(s.List)
	case *ast.ForStmt:
		t.clone().stmt(s.Body)
	case *ast.RangeStmt:
		t.scanBlocking(s.X)
		t.clone().stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			t.stmt(s.Init)
		}
		t.scanBlocking(s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				t.clone().stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				t.clone().stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			t.blockingAt(s.Pos(), "select with no default")
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				t.clone().stmts(cc.Body)
			}
		}
	case *ast.SendStmt:
		t.blockingAt(s.Arrow, "channel send")
		t.scanBlocking(s.Value)
	case *ast.LabeledStmt:
		t.stmt(s.Stmt)
	case *ast.GoStmt:
		// Runs on its own goroutine with its own lock discipline.
	}
}

// transition applies one mutex method call to the tracked state.
func (t *lockTracker) transition(key, method string, pos token.Pos) {
	line := t.pass.Fset.Position(pos).Line
	switch method {
	case "Lock", "RLock":
		if prev, ok := t.held[key]; ok && !(method == "RLock" && prev.kind == "RLock") {
			t.pass.Reportf(pos,
				"%s.%s while %s is already held (acquired on line %d): self-deadlock", key, method, key, prev.line)
		}
		t.held[key] = &lockInfo{kind: method, pos: pos, line: line}
	case "Unlock", "RUnlock":
		delete(t.held, key)
	case "TryLock", "TryRLock":
		// Discarding a Try result as a statement acquires unconditionally
		// on the success path; track it without the double-lock check.
		t.held[key] = &lockInfo{kind: strings.TrimPrefix(method, "Try"), pos: pos, line: line}
	}
}

// checkReturn flags locks still held (with no deferred unlock) at a
// return statement: this path leaks the lock.
func (t *lockTracker) checkReturn(pos token.Pos) {
	for _, key := range t.heldKeys() {
		li := t.held[key]
		if li.deferred {
			continue
		}
		t.pass.Reportf(pos,
			"return while %s is held (acquired on line %d) with no deferred unlock: this path leaks the lock", key, li.line)
	}
}

// checkEnd flags locks held when control falls off the end of the
// function body. Skipped when the last statement terminates (the return
// paths were already checked individually).
func (t *lockTracker) checkEnd(fn *ast.FuncDecl) {
	body := fn.Body.List
	if len(body) > 0 && stmtTerminates(body[len(body)-1]) {
		return
	}
	for _, key := range t.heldKeys() {
		li := t.held[key]
		if li.deferred {
			continue
		}
		t.pass.Reportf(li.pos,
			"%s acquired here is still held when %s falls off the end of the function: missing unlock", key, fn.Name.Name)
	}
}

// scanBlocking reports blocking operations under n while any lock is
// held. Function literals are not descended into: they execute later.
func (t *lockTracker) scanBlocking(n ast.Node) {
	if n == nil || len(t.held) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				t.blockingAt(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if isPkgFunc(t.pass.Info, n, "time", "Sleep") {
				t.blockingAt(n.Pos(), "time.Sleep")
			} else if name, ok := httpBlockingCall(t.pass.Info, n); ok {
				t.blockingAt(n.Pos(), "HTTP "+name)
			}
		}
		return true
	})
}

// blockingAt emits one finding for a blocking operation reached with at
// least one lock held, naming the first held lock.
func (t *lockTracker) blockingAt(pos token.Pos, what string) {
	for _, key := range t.heldKeys() {
		li := t.held[key]
		t.pass.Reportf(pos,
			"%s while %s is held (acquired on line %d): the lock is pinned across a potentially unbounded wait", what, key, li.line)
		return
	}
}

// mutexMethodCall recognises a call to a sync.Mutex/RWMutex method
// (including through embedding) and returns a stable key for the lock
// expression plus the method name.
func mutexMethodCall(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	k := lockExprKey(sel.X)
	if k == "" {
		return "", "", false
	}
	return k, fn.Name(), true
}

// lockExprKey canonicalises a lock expression to a stable string key
// ("" when the expression is too dynamic to track).
func lockExprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := lockExprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return lockExprKey(e.X)
	case *ast.StarExpr:
		return lockExprKey(e.X)
	case *ast.IndexExpr:
		base := lockExprKey(e.X)
		idx := ""
		switch i := e.Index.(type) {
		case *ast.Ident:
			idx = i.Name
		case *ast.BasicLit:
			idx = i.Value
		}
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	}
	return ""
}

// httpBlockingCall recognises net/http calls that perform a network
// round-trip (package functions or Client/Transport methods).
func httpBlockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip":
	default:
		return "", false
	}
	if selectorPkgPath(info, sel) == "net/http" {
		return sel.Sel.Name, true
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
		return sel.Sel.Name, true
	}
	return "", false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// stmtTerminates approximates "control cannot fall past this statement":
// used to decide whether the end of a function body is reachable.
func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			name := strings.ToLower(fun.Sel.Name)
			return name == "exit" || strings.HasPrefix(name, "fatal")
		}
		return false
	case *ast.BlockStmt:
		return len(s.List) > 0 && stmtTerminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		return s.Else != nil && stmtTerminates(s.Body) && stmtTerminates(s.Else)
	case *ast.SwitchStmt:
		return clausesTerminate(s.Body, true)
	case *ast.TypeSwitchStmt:
		return clausesTerminate(s.Body, true)
	case *ast.SelectStmt:
		return clausesTerminate(s.Body, false)
	case *ast.ForStmt:
		return s.Cond == nil
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	}
	return false
}

// clausesTerminate reports whether every clause of a switch/select body
// terminates; needDefault additionally requires a default clause (a
// switch without one can fall through to the next statement).
func clausesTerminate(body *ast.BlockStmt, needDefault bool) bool {
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		if len(stmts) == 0 || !stmtTerminates(stmts[len(stmts)-1]) {
			return false
		}
	}
	return !needDefault || hasDefault
}
