// Package lint is a self-contained static-analysis framework enforcing the
// repository's determinism, cancellation and numeric-safety invariants
// (see docs/LINT.md). It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, positional diagnostics,
// testdata fixtures with `// want` expectations — but is built purely on
// the standard library (go/parser, go/types and `go list -export`), so the
// module keeps its zero-dependency property.
//
// The analyzers encode rules that previously lived in comments and
// reviewer memory:
//
//   - detrand:     no global math/rand streams or wall-clock-seeded sources
//     in the stochastic kernels (checkpoint/resume would diverge)
//   - ctxflow:     exported iterating entrypoints accept context.Context and
//     never drop it through an unguarded context.Background()
//   - floateq:     no raw ==/!= between floating-point values in the
//     energy/power/schedule math; use model.ApproxEqual
//   - guardgo:     goroutines in the synthesis layers carry a panic barrier
//   - exhaustenum: switches over domain enums are exhaustive or carry an
//     explicit default
//   - hotalloc:    functions annotated //mm:noalloc (the evaluation hot
//     path) contain no allocation sites, transitively through same-package
//     calls; reviewed sites carry //mm:alloc-ok <reason>
//   - locksafe:    mutex discipline in the service layers — no copies,
//     double-locks, leaked locks on early returns, or locks held across
//     blocking operations
//   - fsyncdisc:   atomic-rename writers fsync the file before the rename
//     and the parent directory after it
//
// A finding can be suppressed where it is a reviewed false positive:
//
//	//mmlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or on the line directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in reports and ignore directives.
	Name string
	// Doc is a one-paragraph description of the rule and its rationale.
	Doc string
	// Packages, when non-nil, restricts the analyzer to packages whose
	// import path matches; nil applies it to every analyzed package.
	Packages *regexp.Regexp
	// Run reports findings for one package through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModulePath is the module the analyzed packages belong to; analyzers
	// use it to restrict themselves to in-module types.
	ModulePath string

	report func(Diagnostic)
}

// Reportf records one finding at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Ctxflow, Floateq, Guardgo, Exhaustenum, Hotalloc, Locksafe, Fsyncdisc}
}

// ByName resolves a comma-separated subset of analyzer names.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, knownNames())
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected (known: %s)", knownNames())
	}
	return out, nil
}

func knownNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// Run applies the analyzers to the packages, filters suppressed findings
// and returns the remainder sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range analyzers {
			if a.Packages != nil && !a.Packages.MatchString(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ModulePath: pkg.Module,
				report: func(d Diagnostic) {
					if !ignores.suppressed(d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreKey addresses one suppression: a file line suppressing one analyzer.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet map[ignoreKey]bool

// suppressed reports whether the diagnostic's line (or the line above it)
// carries a matching //mmlint:ignore directive.
func (s ignoreSet) suppressed(d Diagnostic) bool {
	return s[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		s[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
}

var ignoreRe = regexp.MustCompile(`^//\s*mmlint:ignore\s+([\w,-]+)`)

func collectIgnores(pkg *Package) ignoreSet {
	set := make(ignoreSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					set[ignoreKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return set
}

// --- shared AST/type helpers used by several analyzers ---

// isPkgFunc reports whether the call's function is the selector
// <pkgpath>.<name>, resolving the package through the type info (so
// aliased imports are handled).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return selectorPkgPath(info, sel) == pkgPath
}

// selectorPkgPath returns the import path of the package a selector's base
// identifier refers to, or "" when the base is not a package name.
func selectorPkgPath(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// isContextType reports whether t is (an alias of) context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// containsTimeNow reports whether any call to time.Now appears under n.
func containsTimeNow(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(info, call, "time", "Now") {
			found = true
		}
		return !found
	})
	return found
}
