// Package deadfixture deliberately contains no // want expectations. It
// exists so TestZeroExpectationFixtureFails can prove the driver rejects
// expectation-free fixtures instead of letting them pass vacuously.
package deadfixture

// Noop keeps the package non-empty.
func Noop() {}
