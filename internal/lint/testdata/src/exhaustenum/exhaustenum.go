// Package exhaustenum is an analysistest-style fixture for the exhaustenum
// analyzer; want expectations mark the expected findings.
package exhaustenum

// Kind is a three-member domain enum.
type Kind int

const (
	KindA Kind = iota
	KindB
	KindC
)

// Missing omits KindC with no default: flagged.
func Missing(k Kind) string {
	switch k { // want "switch over Kind is not exhaustive: missing KindC"
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return ""
}

// Full covers every member: fine.
func Full(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	}
	return ""
}

// Defaulted states its fallback explicitly: fine.
func Defaulted(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		return "other"
	}
}

// Plain switches over a bare int, not an enum: exempt.
func Plain(n int) string {
	switch n {
	case 0:
		return "zero"
	}
	return ""
}

// Single is a one-member type, below the two-constant threshold: exempt.
type Single int

const OnlyOne Single = 0

func UseSingle(s Single) string {
	switch s {
	case OnlyOne:
		return "one"
	}
	return ""
}

// JobState mirrors the serve package's string-typed lifecycle enum: when a
// new state (quarantined) joins the constant set, every switch that fails
// to handle it must be flagged — this is the gate that keeps state-machine
// extensions honest.
type JobState string

const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobDone        JobState = "done"
	JobQuarantined JobState = "quarantined"
)

// TerminalMissingQuarantined predates the quarantined state: flagged.
func TerminalMissingQuarantined(s JobState) bool {
	switch s { // want "switch over JobState is not exhaustive: missing JobQuarantined"
	case JobQueued, JobRunning:
		return false
	case JobDone:
		return true
	}
	return false
}

// TerminalAllStates covers the full lifecycle: fine.
func TerminalAllStates(s JobState) bool {
	switch s {
	case JobQueued, JobRunning:
		return false
	case JobDone, JobQuarantined:
		return true
	}
	return false
}

// Suppressed demonstrates a reviewed //mmlint:ignore directive: the finding
// is filtered, so no want expectation here.
func Suppressed(k Kind) string {
	//mmlint:ignore exhaustenum fixture exercising the suppression path
	switch k {
	case KindA:
		return "a"
	}
	return ""
}
