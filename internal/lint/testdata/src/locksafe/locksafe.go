// Package locksafe is an analysistest-style fixture for the locksafe
// analyzer; want expectations mark the expected findings.
package locksafe

import (
	"sync"
	"time"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
	ch   chan int
}

// copyParam passes the store by value: the mutexes inside are copied.
func copyParam(s store) int { // want "passes .* by value, copying the mutex"
	return len(s.vals)
}

// copyAssign copies a mutex-bearing value out of an existing one.
func copyAssign(a *store) {
	b := *a // want "assignment copies a value of type"
	_ = b.vals
}

// rangeCopy iterates over mutex-bearing values by value.
func rangeCopy(stores []store) int {
	n := 0
	for _, st := range stores { // want "range variable copies"
		n += len(st.vals)
	}
	return n
}

// doubleLock locks the same mutex twice on one path: self-deadlock.
func doubleLock(s *store) {
	s.mu.Lock()
	s.mu.Lock() // want "self-deadlock"
	s.mu.Unlock()
}

// earlyReturn leaks the lock on the found path.
func earlyReturn(s *store, key string) int {
	s.mu.Lock()
	if v, ok := s.vals[key]; ok {
		return v // want "return while s.mu is held"
	}
	s.mu.Unlock()
	return 0
}

// missingUnlock falls off the end of the function with the lock held.
func missingUnlock(s *store) {
	s.mu.Lock() // want "still held when missingUnlock falls off the end"
	s.vals["x"] = 1
}

// sleepHeld parks the goroutine while holding the lock.
func sleepHeld(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
}

// sendHeld performs a channel send while holding the lock.
func sendHeld(s *store, v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s.mu is held"
	s.mu.Unlock()
}

// recvHeld performs a channel receive while holding the read lock.
func recvHeld(s *store) int {
	s.rw.RLock()
	v := <-s.ch // want "channel receive while s.rw is held"
	s.rw.RUnlock()
	return v
}

// selectHeld blocks in a default-less select while holding the lock.
func selectHeld(s *store) {
	s.mu.Lock()
	select { // want "select with no default while s.mu is held"
	case v := <-s.ch:
		_ = v
	}
	s.mu.Unlock()
}

// lockedGet is the blessed pattern: a deferred unlock brackets the whole
// critical section, so every return path is covered.
func lockedGet(s *store, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[key]
}

// branchUnlock releases explicitly on every path: fine.
func branchUnlock(s *store, key string) int {
	s.mu.Lock()
	if v, ok := s.vals[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

// rlockShared takes the read lock twice: shared readers are allowed.
func rlockShared(s *store) int {
	s.rw.RLock()
	s.rw.RLock()
	n := len(s.vals)
	s.rw.RUnlock()
	s.rw.RUnlock()
	return n
}

// intentionalHold hands the lock to its caller by design; the reviewed
// suppression records the decision.
func intentionalHold(s *store) {
	s.mu.Lock()
	//mmlint:ignore locksafe caller releases via unlockStore
	return
}

// unlockStore releases a lock acquired by intentionalHold. Unlocking a
// mutex this function never locked is deliberately not a finding: lock
// ownership can legitimately cross function boundaries in one direction.
func unlockStore(s *store) {
	s.mu.Unlock()
}
