// Package fsyncdisc is an analysistest-style fixture for the fsyncdisc
// analyzer; want expectations mark the expected findings.
package fsyncdisc

import "os"

// missingDirSync syncs the file but never the parent directory: a crash
// can lose the rename itself.
func missingDirSync(dir, dst string) error {
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dst) // want "no parent-directory fsync after it"
}

// unsyncedContent renames a file whose content was never fsynced.
func unsyncedContent(dir, dst string) error {
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Close()
	if err := os.Rename(tmp, dst); err != nil { // want "not fsynced before the rename"
		return err
	}
	return syncDir(dir)
}

// writeFileRename stages with os.WriteFile, which does not fsync.
func writeFileRename(dir, dst string, data []byte) error {
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil { // want "os.WriteFile, which does not fsync"
		return err
	}
	return syncDir(dir)
}

// dirSyncTooEarly fsyncs the directory before the rename instead of
// after it: the directory entry for the rename is still volatile.
func dirSyncTooEarly(dir, dst string, f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return os.Rename(f.Name(), dst) // want "fsync precedes the rename"
}

// writeAtomic is the blessed pattern: file sync, rename, directory sync.
func writeAtomic(dir, dst string, data []byte) error {
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory; callers carry its name as durability
// evidence.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

type osFS struct{}

// Rename forwards its arguments verbatim: a pure wrapper carries no
// durability responsibility of its own, so it is exempt.
func (osFS) Rename(from, to string) error { return os.Rename(from, to) }
