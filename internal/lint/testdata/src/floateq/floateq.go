// Package floateq is an analysistest-style fixture for the floateq
// analyzer; want expectations mark the expected findings.
package floateq

import "momosyn/internal/model"

const eps = 1e-9

// Equal compares accumulated floats with ==: flagged.
func Equal(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// NonZero compares a float against the constant 0 with !=: flagged (one
// constant side does not make the comparison exact).
func NonZero(p float64) bool {
	return p != 0 // want "floating-point != comparison"
}

// Narrow also applies to float32: flagged.
func Narrow(a, b float32) bool {
	return a == b // want "floating-point == comparison"
}

// Approx compares through the shared epsilon helper: fine.
func Approx(a, b float64) bool {
	return model.ApproxEqual(a, b, eps)
}

// IsNaN is the portable NaN test: exempt.
func IsNaN(x float64) bool {
	return x != x
}

// Ints compares integers: exempt.
func Ints(a, b int) bool {
	return a == b
}

// Consts is evaluated at compile time: exempt.
func Consts() bool {
	return 1.0 == 2.0
}

// Suppressed demonstrates the directive placed on the line above the
// finding; it is filtered, so no want expectation here.
func Suppressed(bits float64) bool {
	//mmlint:ignore floateq exact bit-pattern comparison is intended here
	return bits == 0.5
}
