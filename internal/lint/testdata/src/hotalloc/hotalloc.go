// Package hotalloc is an analysistest-style fixture for the hotalloc
// analyzer; want expectations mark the expected findings.
package hotalloc

import "fmt"

type pair struct{ a, b int }

type boxer interface{ M() }

type small struct{ x int }

func (s small) M() {}

// direct allocates with the make builtin: flagged.
//
//mm:noalloc
func direct() []int {
	return make([]int, 8) // want "make allocates"
}

// fresh allocates with the new builtin: flagged.
//
//mm:noalloc
func fresh() *pair {
	return new(pair) // want "new allocates"
}

// literals allocates through composite literals: each site flagged.
//
//mm:noalloc
func literals() int {
	s := []int{1, 2}      // want "slice literal allocates"
	m := map[string]int{} // want "map literal allocates"
	p := &pair{a: 1}      // want "composite literal may escape"
	return len(s) + len(m) + p.a
}

// push appends without preallocated-cap evidence: flagged.
//
//mm:noalloc
func push(xs []int, v int) []int {
	return append(xs, v) // want "append without preallocated-cap evidence"
}

// fill appends into a resliced buffer: the cap evidence is visible, fine.
//
//mm:noalloc
func fill(dst, vals []int) []int {
	return append(dst[:0], vals...)
}

// closureCapture builds a closure over locals: the closure allocates when
// it escapes.
//
//mm:noalloc
func closureCapture(n int) func() int {
	total := 0
	f := func() int { // want "closure captures"
		total += n
		return total
	}
	return f
}

// box converts a non-pointer concrete to an interface: boxing allocates.
//
//mm:noalloc
func box(s small) boxer {
	return boxer(s) // want "boxes on the heap"
}

// join concatenates strings inside a loop: allocates per iteration.
//
//mm:noalloc
func join(parts []string) string {
	out := ""
	for _, p := range parts {
		out = out + p // want "string concatenation in a loop"
	}
	return out
}

// report formats inside a loop: fmt boxes and buffers per call.
//
//mm:noalloc
func report(vals []int) {
	for _, v := range vals {
		fmt.Println(v) // want "fmt.Println in a loop allocates"
	}
}

// root reaches helper through a same-package static call: helper is
// checked transitively and its finding names the chain.
//
//mm:noalloc
func root(xs []int) int {
	return helper(xs)
}

func helper(xs []int) int {
	buf := make([]int, len(xs)) // want "root -> helper: make allocates"
	copy(buf, xs)
	return len(buf)
}

var scratch []int

// coldPath allocates only on first use; the reasoned waiver keeps it.
//
//mm:noalloc
func coldPath(n int) []int {
	if n > cap(scratch) {
		//mm:alloc-ok grows only on first use; steady state reuses scratch
		return make([]int, n)
	}
	return scratch[:n]
}

// reasonlessWaiver shows a waiver with no reason: the waiver is rejected
// and the allocation it tried to cover is still reported.
func reasonlessWaiver() []int {
	//mm:alloc-ok // want "waiver must state a reason"
	return alloc4()
}

//mm:noalloc
func alloc4() []int {
	return make([]int, 4) // want "make allocates"
}

// unannotated is outside every noalloc closure: allocates freely.
func unannotated() []int {
	return make([]int, 1)
}

//mm:noalloc // want "misplaced //mm:noalloc"
var sink int
