// Package guardgo is an analysistest-style fixture for the guardgo
// analyzer; want expectations mark the expected findings.
package guardgo

import "sync"

func work() {}

// Bare launches unprotected goroutines: both flagged.
func Bare() {
	go work()   // want "goroutine is not panic-isolated"
	go func() { // want "goroutine is not panic-isolated"
		work()
	}()
}

// LiteralBarrier opens the goroutine with a defer'd recover literal: fine.
func LiteralBarrier() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				_ = r
			}
		}()
		work()
	}()
	wg.Wait()
}

// NamedBarrier launches a same-package worker whose body opens with a
// defer'd recover helper: fine.
func NamedBarrier() {
	go safeWorker()
}

func safeWorker() {
	defer recoverToLog()
	work()
}

func recoverToLog() {
	_ = recover()
}

// Suppressed demonstrates a reviewed //mmlint:ignore directive: the finding
// is filtered, so no want expectation here.
func Suppressed() {
	//mmlint:ignore guardgo fixture exercising the suppression path
	go work()
}

// pool exercises method launches: the analyzer resolves same-package
// methods to their declarations just like plain functions.
type pool struct{}

func (p *pool) safeLoop() {
	defer func() {
		_ = recover()
	}()
	work()
}

func (p *pool) bareLoop() { work() }

func (p *pool) Start() {
	go p.safeLoop()
	go p.bareLoop() // want "goroutine is not panic-isolated"
}
