// Package ctxflow is an analysistest-style fixture for the ctxflow
// analyzer; want expectations mark the expected findings.
package ctxflow

import "context"

// RunBad iterates but cannot be cancelled: flagged.
func RunBad(n int) int { // want "exported iterating entrypoint RunBad must accept a context.Context"
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// RunGood accepts and polls a context: fine.
func RunGood(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		total += i
	}
	return total
}

// Options carries the context the way synth.Options does.
type Options struct {
	Context context.Context
	N       int
}

// RunStruct receives its context through the options struct: fine.
func RunStruct(opts Options) int {
	total := 0
	for i := 0; i < opts.N; i++ {
		total += i
	}
	return total
}

// RunDropped receives a context but never forwards or polls it: flagged.
func RunDropped(ctx context.Context, n int) int { // want "context parameter ctx is dropped"
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// severed replaces the caller's context mid-chain: flagged.
func severed(_ context.Context, n int) int {
	ctx := context.Background() // want "context.Background.. severs the caller's cancellation chain"
	total := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		total += i
	}
	return total
}

// fallback is the blessed nil-guard shape: fine.
func fallback(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}
