// Package detrand is an analysistest-style fixture for the detrand
// analyzer; want expectations mark the expected findings.
package detrand

import (
	"math/rand"
	"time"
)

// Draw uses the process-wide global stream: flagged.
func Draw() int {
	return rand.Intn(10) // want "global math/rand.Intn"
}

// Shuffle also draws from the global stream: flagged.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

// WallClock seeds from the wall clock: two runs with equal configuration
// diverge. Flagged.
func WallClock() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want "time-seeded random source"
	return rand.New(src)
}

// Threaded draws from an injected stream: fine.
func Threaded(rng *rand.Rand) int {
	return rng.Intn(10)
}

// FromConfig constructs an explicitly-seeded source: fine.
func FromConfig(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Suppressed demonstrates a reviewed //mmlint:ignore directive: the finding
// is filtered, so no want expectation here.
func Suppressed() int {
	//mmlint:ignore detrand fixture exercising the suppression path
	return rand.Int()
}
