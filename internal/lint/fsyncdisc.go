package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Fsyncdisc enforces the atomic-rename durability discipline.
//
// Checkpoints, job manifests and lease files are all written with the same
// crash pattern (established in the serve/fleet persistence work): write a
// temp file, fsync the file, rename it over the destination, then fsync
// the destination's parent directory. Dropping any step silently weakens
// the guarantee — without the file fsync the rename can become durable
// while the data is not (a zero-length or torn file after a crash), and
// without the directory fsync the rename itself can be lost (the old file
// resurrects). This pass checks every function containing a rename call
// (os.Rename, or any two-argument callee named Rename) for both pieces of
// evidence in the correct order:
//
//   - file-sync evidence before the rename: a .Sync() call, or a syncing
//     write helper (a callee named WriteFile or CreateExclusive that is
//     not os.WriteFile — os.WriteFile does not fsync and is called out
//     specifically)
//   - directory-sync evidence after the rename: a callee whose name
//     mentions both sync and dir (syncDir, SyncDir, ...)
//
// Pure forwarding wrappers are exempt: a function whose rename call is a
// returned expression forwarding two adjacent parameters verbatim (the FS
// abstraction wrappers — fleet.OSFS.Rename and friends) carries no
// durability responsibility of its own; its callers are checked instead.
// Any new direct os.Rename outside a blessed helper therefore surfaces
// here. A reviewed exception is suppressed with
// //mmlint:ignore fsyncdisc <reason>.
var Fsyncdisc = &Analyzer{
	Name: "fsyncdisc",
	Doc: "atomic-rename writers must fsync the file before the rename and " +
		"the destination's parent directory after it; forwarding wrappers " +
		"(return fsys.Rename(from, to)) are exempt",
	Run: runFsyncdisc,
}

func runFsyncdisc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				checkRenameDiscipline(pass, fn)
			}
		}
	}
	return nil
}

// checkRenameDiscipline inspects one function: every rename call in it
// must be bracketed by file-sync evidence (before) and directory-sync
// evidence (after), in source order.
func checkRenameDiscipline(pass *Pass, fn *ast.FuncDecl) {
	// Calls whose value is returned directly, for the forwarding exemption.
	returnCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			if c, ok := ret.Results[0].(*ast.CallExpr); ok {
				returnCalls[c] = true
			}
		}
		return true
	})

	var renames []*ast.CallExpr
	var fileSyncs, dirSyncs, osWrites []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isRenameCall(call):
			renames = append(renames, call)
		case isDirSyncCall(call):
			dirSyncs = append(dirSyncs, call.Pos())
		case isPkgFunc(pass.Info, call, "os", "WriteFile"):
			osWrites = append(osWrites, call.Pos())
		case isFileSyncCall(call):
			fileSyncs = append(fileSyncs, call.Pos())
		}
		return true
	})

	for _, call := range renames {
		if isForwardingRename(pass, fn, call, returnCalls[call]) {
			continue
		}
		pos := call.Pos()
		if !anyAfter(dirSyncs, pos) {
			if anyBefore(dirSyncs, pos) {
				pass.Reportf(pos,
					"parent-directory fsync precedes the rename; it must follow the rename, or a crash can still lose the directory entry")
			} else {
				pass.Reportf(pos,
					"rename has no parent-directory fsync after it; a crash can lose the rename even though the file data is durable")
			}
		}
		if !anyBefore(fileSyncs, pos) {
			if anyBefore(osWrites, pos) {
				pass.Reportf(pos,
					"file written with os.WriteFile, which does not fsync; sync the file (or use a syncing write helper) before renaming it into place")
			} else {
				pass.Reportf(pos,
					"renamed file's content is not fsynced before the rename; the rename can become durable while the data is not")
			}
		}
	}
}

func anyBefore(positions []token.Pos, pos token.Pos) bool {
	for _, p := range positions {
		if p < pos {
			return true
		}
	}
	return false
}

func anyAfter(positions []token.Pos, pos token.Pos) bool {
	for _, p := range positions {
		if p > pos {
			return true
		}
	}
	return false
}

// isRenameCall recognises os.Rename and any two-argument callee named
// Rename (the FS abstractions route renames through methods of that name).
func isRenameCall(call *ast.CallExpr) bool {
	if len(call.Args) != 2 {
		return false
	}
	return calleeName(call) == "Rename"
}

// isDirSyncCall recognises directory-fsync helpers by name: the callee
// mentions both "sync" and "dir" (syncDir, SyncDir, ...).
func isDirSyncCall(call *ast.CallExpr) bool {
	name := strings.ToLower(calleeName(call))
	return strings.Contains(name, "sync") && strings.Contains(name, "dir")
}

// isFileSyncCall recognises file-durability evidence: an explicit
// .Sync() call, or a syncing write helper. os.WriteFile is handled by the
// caller as an explicit non-evidence case.
func isFileSyncCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	if name == "Sync" && len(call.Args) == 0 {
		return true
	}
	return name == "WriteFile" || name == "CreateExclusive"
}

// calleeName returns the bare name of the called function or method
// ("" for indirect calls).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isForwardingRename reports whether the rename call is a pure forwarding
// wrapper: its value is returned directly and its two arguments are two
// adjacent parameters of the enclosing function, in declaration order.
func isForwardingRename(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, inReturn bool) bool {
	if !inReturn || fn.Type.Params == nil {
		return false
	}
	var params []types.Object
	for _, f := range fn.Type.Params.List {
		for _, n := range f.Names {
			params = append(params, pass.Info.Defs[n])
		}
	}
	var idx [2]int
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[id]
		pos := -1
		for pi, p := range params {
			if p != nil && p == obj {
				pos = pi
				break
			}
		}
		if pos < 0 {
			return false
		}
		idx[i] = pos
	}
	return idx[1] == idx[0]+1
}
