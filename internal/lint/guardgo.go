package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Guardgo requires a panic barrier on goroutines launched by the synthesis
// layers.
//
// The evaluation pipeline deliberately contains panics (runctl.Guard turns
// a panicking genome into an infeasible one and keeps the run alive), but
// that only works for code reached through the guard. A bare `go func`
// in synth/ga/bench that panics kills the whole process, losing the
// best-so-far result, the closing checkpoint and the fault report — the
// exact artefacts the resilience layer exists to protect. Every goroutine
// there must either be a runctl call or start with a defer'd recover
// barrier.
var Guardgo = &Analyzer{
	Name: "guardgo",
	Doc: "goroutines in the synthesis layers must be panic-isolated: " +
		"launched through internal/runctl or opening with a defer'd recover " +
		"barrier, so a panic cannot take down the run's best-so-far state",
	Packages: regexp.MustCompile(`(^|/)internal/(synth|ga|bench|obs|serve|fleet|cas)($|/)`),
	Run:      runGuardgo,
}

func runGuardgo(pass *Pass) error {
	// Index this package's function declarations so `go worker(...)` can be
	// checked against worker's own body.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.Info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goIsGuarded(pass, g, decls) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine is not panic-isolated: a panic here kills the run and its best-so-far state; launch through runctl or open the goroutine with a defer'd recover barrier")
			return true
		})
	}
	return nil
}

func goIsGuarded(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) bool {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return bodyHasRecoverBarrier(pass, fun.Body)
	case *ast.Ident:
		if fromRunctl(pass.Info.Uses[fun]) {
			return true
		}
		if decl, ok := decls[pass.Info.Uses[fun]]; ok {
			return bodyHasRecoverBarrier(pass, decl.Body)
		}
	case *ast.SelectorExpr:
		if fromRunctl(pass.Info.Uses[fun.Sel]) {
			return true
		}
		// A same-package method (`go s.worker(ctx)`) is checked against its
		// own declaration, exactly like a plain function.
		if decl, ok := decls[pass.Info.Uses[fun.Sel]]; ok {
			return bodyHasRecoverBarrier(pass, decl.Body)
		}
	}
	return false
}

// bodyHasRecoverBarrier reports whether the function body opens with (i.e.
// contains at its top level) a defer that recovers panics.
func bodyHasRecoverBarrier(pass *Pass, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if isRecoverBarrierCall(pass, d.Call) {
			return true
		}
	}
	return false
}

// isRecoverBarrierCall recognises the accepted barrier shapes: a deferred
// func literal calling recover(), a deferred call into internal/runctl, or
// a deferred helper whose name advertises the recovery.
func isRecoverBarrierCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return callsRecover(pass, fun.Body)
	case *ast.Ident:
		if fromRunctl(pass.Info.Uses[fun]) {
			return true
		}
		return strings.Contains(strings.ToLower(fun.Name), "recover")
	case *ast.SelectorExpr:
		if fromRunctl(pass.Info.Uses[fun.Sel]) {
			return true
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "recover")
	}
	return false
}

// callsRecover reports whether the builtin recover() is invoked under n.
func callsRecover(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}

// fromRunctl reports whether the object is declared in internal/runctl.
func fromRunctl(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/runctl")
}
