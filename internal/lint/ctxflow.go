package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Ctxflow enforces the cancellation contract of the optimisation layers.
//
// Synthesis runs last minutes to hours; the run-control design
// (docs/RUNCTL.md) promises that cancellation, deadlines and the
// fault-budget abort all stop a run at the next generation boundary. That
// only holds when exported iterating entrypoints accept a context.Context
// (directly, or via an options struct carrying one) and when the context is
// actually propagated instead of being replaced mid-chain by an unguarded
// context.Background().
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "exported iterating entrypoints in the optimisation packages must " +
		"accept a context.Context (or a parameter struct carrying one), must " +
		"not silently drop a received context, and may call " +
		"context.Background/TODO only as a nil-context fallback",
	Packages: regexp.MustCompile(`(^|/)internal/(ga|synth|obs|serve|fleet|cas)($|/)`),
	Run:      runCtxflow,
}

// ctxEntrypointRe names the exported functions treated as iterating
// entrypoints. The repository's convention is that long-running drivers are
// the Run*/Synthesize*/... families; helpers looping over bounded
// specification contents (PowerUpperBound, Diversity, ...) are exempt.
var ctxEntrypointRe = regexp.MustCompile(`^(Run|Synthesize|Exhaustive|Pareto|Solve|Optimi[sz]e|Evolve|Search)`)

func runCtxflow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkEntrypoint(pass, fn)
			checkDroppedContext(pass, fn)
		}
		checkBackgroundCalls(pass, f)
	}
	return nil
}

// checkEntrypoint flags exported iterating entrypoints that cannot be
// cancelled because no parameter carries a context.
func checkEntrypoint(pass *Pass, fn *ast.FuncDecl) {
	if fn.Recv != nil || !fn.Name.IsExported() || !ctxEntrypointRe.MatchString(fn.Name.Name) {
		return
	}
	if !containsLoop(fn.Body) {
		return
	}
	for _, field := range fn.Type.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContextType(t) || structCarriesContext(t) {
			return
		}
	}
	pass.Reportf(fn.Name.Pos(),
		"exported iterating entrypoint %s must accept a context.Context (or a parameter struct with a context field) so long runs stay cancellable", fn.Name.Name)
}

// checkDroppedContext flags context parameters that are never used: the
// caller's cancellation signal ends here without reaching the work below.
func checkDroppedContext(pass *Pass, fn *ast.FuncDecl) {
	for _, field := range fn.Type.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if !identUsed(pass, fn.Body, obj) {
				pass.Reportf(name.Pos(),
					"context parameter %s is dropped: %s never forwards or polls it, so cancellation dies here", name.Name, fn.Name.Name)
			}
		}
	}
}

// checkBackgroundCalls flags context.Background()/context.TODO() calls that
// are not the blessed nil-context fallback `if ctx == nil { ctx =
// context.Background() }`.
func checkBackgroundCalls(pass *Pass, f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch {
		case isPkgFunc(pass.Info, call, "context", "Background"):
			name = "Background"
		case isPkgFunc(pass.Info, call, "context", "TODO"):
			name = "TODO"
		default:
			return true
		}
		if underNilContextGuard(pass, stack) {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() severs the caller's cancellation chain; forward the received context (a nil-guarded fallback `if ctx == nil { ctx = context.Background() }` is allowed)", name)
		return true
	})
}

// underNilContextGuard reports whether the innermost statements enclosing
// the current node include an if whose condition is `<ctx> == nil` (or the
// mirrored form) for a context-typed expression.
func underNilContextGuard(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			continue
		}
		for _, pair := range [][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
			expr, nilSide := pair[0], pair[1]
			id, ok := nilSide.(*ast.Ident)
			if !ok || id.Name != "nil" {
				continue
			}
			if t := pass.Info.TypeOf(expr); t != nil && isContextType(t) {
				return true
			}
		}
	}
	return false
}

// containsLoop reports whether any for/range statement appears under n.
func containsLoop(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// structCarriesContext reports whether t (possibly a pointer) is a named
// struct with a field of type context.Context.
func structCarriesContext(t types.Type) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// identUsed reports whether obj is referenced anywhere under n.
func identUsed(pass *Pass, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
