package lint

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts one expectation from a fixture comment: // want "regex".
var wantRe = regexp.MustCompile(`//\s*want "([^"]+)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads testdata/src/<name>, applies the analyzer with its
// package gate lifted (fixture paths are outside the gated trees; the gates
// themselves are covered by TestPackageGates) and checks the diagnostics
// one-to-one against the fixture's // want comments. Suppression runs as in
// production, so //mmlint:ignore cases are asserted by the absence of a
// want comment.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+a.Name)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	ungated := *a
	ungated.Packages = nil
	diags, err := Run(pkgs, []*Analyzer{&ungated})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	if err := checkFixtureHasExpectations(wants); err != nil {
		t.Fatalf("fixture %s: %v", a.Name, err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants gathers the // want expectations of the loaded fixture.
func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", name, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: name, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkFixtureHasExpectations rejects fixtures with zero // want comments:
// a dead fixture asserts nothing and silently stops guarding its analyzer.
func checkFixtureHasExpectations(wants []*expectation) error {
	if len(wants) == 0 {
		return fmt.Errorf("fixture contains no // want expectations; a zero-expectation fixture asserts nothing")
	}
	return nil
}

func TestDetrandFixture(t *testing.T)     { runFixture(t, Detrand) }
func TestCtxflowFixture(t *testing.T)     { runFixture(t, Ctxflow) }
func TestFloateqFixture(t *testing.T)     { runFixture(t, Floateq) }
func TestGuardgoFixture(t *testing.T)     { runFixture(t, Guardgo) }
func TestExhaustenumFixture(t *testing.T) { runFixture(t, Exhaustenum) }
func TestHotallocFixture(t *testing.T)    { runFixture(t, Hotalloc) }
func TestLocksafeFixture(t *testing.T)    { runFixture(t, Locksafe) }
func TestFsyncdiscFixture(t *testing.T)   { runFixture(t, Fsyncdisc) }

// TestZeroExpectationFixtureFails pins the dead-fixture guard: a fixture
// directory without a single // want comment must be rejected by the
// driver, not silently pass.
func TestZeroExpectationFixtureFails(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/deadfixture")
	if err != nil {
		t.Fatalf("loading deadfixture: %v", err)
	}
	wants := collectWants(t, pkgs)
	if len(wants) != 0 {
		t.Fatalf("deadfixture must stay expectation-free, found %d wants", len(wants))
	}
	if err := checkFixtureHasExpectations(wants); err == nil {
		t.Fatal("a zero-expectation fixture must fail the suite")
	}
}

// TestPackageGates pins which package trees each analyzer applies to.
func TestPackageGates(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{Detrand, "momosyn/internal/synth", true},
		{Detrand, "momosyn/internal/ga", true},
		{Detrand, "momosyn/internal/sched", true},
		{Detrand, "momosyn/internal/gen", true},
		{Detrand, "momosyn/internal/specio", false},
		{Detrand, "momosyn/internal/gantt", false},
		{Ctxflow, "momosyn/internal/ga", true},
		{Ctxflow, "momosyn/internal/synth", true},
		{Ctxflow, "momosyn/internal/obs", true},
		{Ctxflow, "momosyn/internal/serve", true},
		{Ctxflow, "momosyn/internal/fleet", true},
		{Ctxflow, "momosyn/internal/fleet/chaosfs", true},
		{Ctxflow, "momosyn/internal/gantt", false}, // "ga" must not match a prefix
		{Ctxflow, "momosyn/internal/bench", false},
		{Floateq, "momosyn/internal/energy", true},
		{Floateq, "momosyn/internal/verify", true},
		{Floateq, "momosyn/internal/model", true},
		{Floateq, "momosyn/internal/specio", false},
		{Floateq, "momosyn/internal/lint/testdata/src/floateq", false},
		{Guardgo, "momosyn/internal/bench", true},
		{Guardgo, "momosyn/internal/obs", true},
		{Guardgo, "momosyn/internal/serve", true},
		{Guardgo, "momosyn/internal/fleet", true},
		{Guardgo, "momosyn/internal/runctl", false},
		{Guardgo, "momosyn/cmd/mmsynth", false},
		{Guardgo, "momosyn/cmd/mmserved", false},
		{Locksafe, "momosyn/internal/serve", true},
		{Locksafe, "momosyn/internal/fleet", true},
		{Locksafe, "momosyn/internal/fleet/chaosfs", true},
		{Locksafe, "momosyn/internal/sched", false},
		{Locksafe, "momosyn/internal/lint/testdata/src/locksafe", false},
	}
	for _, c := range cases {
		if got := c.a.Packages.MatchString(c.path); got != c.want {
			t.Errorf("%s gate on %q = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	if Exhaustenum.Packages != nil {
		t.Error("exhaustenum should apply module-wide (nil gate)")
	}
	if Hotalloc.Packages != nil {
		t.Error("hotalloc should apply module-wide (nil gate): annotations gate it")
	}
	if Fsyncdisc.Packages != nil {
		t.Error("fsyncdisc should apply module-wide (nil gate): renames gate it")
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("floateq, detrand")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != Floateq || got[1] != Detrand {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("expected error for empty selection")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "floateq", Message: "msg"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "f.go", 3, 7
	if got, want := d.String(), "f.go:3:7: [floateq] msg"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 8 {
		t.Fatalf("expected 8 analyzers, found %d", len(seen))
	}
}

// TestRepoIsClean runs the full suite over the repository itself: the tree
// must stay lint-clean, so any new finding fails the build here as well as
// in make lint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide load in short mode")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the findings or add a reviewed //mmlint:ignore directive (see docs/LINT.md)")
	}
}

// TestLoadErrors pins the loader's failure modes.
func TestLoadErrors(t *testing.T) {
	if _, err := Load(".", "./no/such/dir"); err == nil {
		t.Fatal("expected error for unmatched pattern")
	}
}
