package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Exhaustenum requires switches over the module's enumeration types to be
// exhaustive or to carry an explicit default.
//
// The domain enums — verify's violation kinds, faultinj's fault classes,
// model's PE classes, the DVS graph node kinds — grow as the methodology
// grows. A switch silently falling through when a new member appears is
// how a new violation kind escapes certification or a new PE class gets no
// cores allocated. Either enumerate every member (the analyzer then flags
// the switch the day a member is added) or state the fallback explicitly
// with a default clause.
var Exhaustenum = &Analyzer{
	Name: "exhaustenum",
	Doc: "switches over in-module enum types (named basic types with >= 2 " +
		"declared constants) must cover every member or carry an explicit " +
		"default clause",
	Run: runExhaustenum,
}

func runExhaustenum(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkEnumSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tagType := pass.Info.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !inModule(obj.Pkg().Path(), pass.ModulePath) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}
	members := enumMembers(obj.Pkg(), named)
	if len(members) < 2 {
		return
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the fallback is stated
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: no static member accounting possible
			}
			for _, m := range members {
				if constant.Compare(tv.Value, token.EQL, m.Val()) {
					covered[m.Name()] = true
				}
			}
		}
	}
	var missing []string
	for _, m := range members {
		if !covered[m.Name()] {
			missing = append(missing, m.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s is not exhaustive: missing %s; add the cases or an explicit default stating the fallback",
			obj.Name(), strings.Join(missing, ", "))
	}
}

// enumMembers returns the package-level constants declared with exactly the
// named type, in declaration-scope order.
func enumMembers(pkg *types.Package, named *types.Named) []*types.Const {
	var members []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			members = append(members, c)
		}
	}
	return members
}

// inModule reports whether the package path belongs to the analyzed module.
func inModule(pkgPath, module string) bool {
	if module == "" {
		return false
	}
	return pkgPath == module || strings.HasPrefix(pkgPath, module+"/")
}
