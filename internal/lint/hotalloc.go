package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Hotalloc enforces the `//mm:noalloc` contract of the evaluation hot path.
//
// The inner synthesis loop (mobility, core allocation, list scheduling,
// communication mapping, DVS, refinement) runs millions of times per GA
// run; ROADMAP item 1 requires it to become allocation-free so parallel
// population evaluation is bounded by arithmetic, not by the allocator and
// the GC. A function whose doc comment carries `//mm:noalloc` promises
// exactly that, and this pass checks the promise statically: the annotated
// function — and every same-package function it reaches through static
// calls — must contain no allocation site. The dynamic counterpart is the
// `testing.AllocsPerRun == 0` pin suite (`make bench-pins`); the static
// pass catches the regression at lint time, before any benchmark runs.
//
// Flagged allocation sites:
//
//   - make(...) and new(...)
//   - slice and map composite literals
//   - &T{...} (may escape to the heap)
//   - append whose target is not a resliced buffer (no preallocated-cap
//     evidence such as append(buf[:0], ...))
//   - closures capturing outer variables by reference
//   - explicit interface conversions boxing a non-pointer concrete value
//   - string concatenation and fmt.* calls inside loops
//
// A reviewed site that provably does not allocate (or allocates only on a
// cold path) is waived in place with `//mm:alloc-ok <reason>`; the reason
// is mandatory. Cross-package calls are not followed — the AllocsPerRun
// pins are the backstop for those.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //mm:noalloc, and everything they reach through " +
		"same-package static calls, must contain no allocation site; waive a " +
		"reviewed site with //mm:alloc-ok <reason>",
	Run: runHotalloc,
}

var (
	noallocRe = regexp.MustCompile(`^//\s*mm:noalloc\b`)
	allocOkRe = regexp.MustCompile(`^//\s*mm:alloc-ok\b[ \t]*(.*)$`)
)

// allocWaiverKey addresses one //mm:alloc-ok waiver line.
type allocWaiverKey struct {
	file string
	line int
}

func runHotalloc(pass *Pass) error {
	waivers := collectAllocWaivers(pass)

	// Index the package's function declarations and find the annotated
	// roots. Doc comment groups are remembered so stray annotations (not
	// attached to a function) can be flagged.
	decls := make(map[types.Object]*ast.FuncDecl)
	var roots []types.Object
	docComments := make(map[*ast.Comment]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			if fn.Body != nil {
				decls[obj] = fn
			}
			if fn.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fn.Doc.List {
				docComments[c] = true
				if noallocRe.MatchString(c.Text) {
					annotated = true
				}
			}
			if annotated {
				if fn.Body == nil {
					pass.Reportf(fn.Name.Pos(), "//mm:noalloc on %s: bodyless functions cannot be checked", fn.Name.Name)
					continue
				}
				roots = append(roots, obj)
			}
		}
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if noallocRe.MatchString(c.Text) && !docComments[c] {
					pass.Reportf(c.Pos(), "misplaced //mm:noalloc: the annotation must be part of a function's doc comment")
				}
			}
		}
	}

	// Transitive closure over same-package static calls. reached maps each
	// checked function to the annotated root it is reached from.
	reached := make(map[types.Object]types.Object)
	queue := make([]types.Object, 0, len(roots))
	for _, r := range roots {
		reached[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		root := reached[obj]
		ast.Inspect(decls[obj].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = pass.Info.Uses[fun]
			case *ast.SelectorExpr:
				callee = pass.Info.Uses[fun.Sel]
			}
			if _, ok := decls[callee]; ok {
				if _, seen := reached[callee]; !seen {
					reached[callee] = root
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	for obj, root := range reached {
		fn := decls[obj]
		label := fn.Name.Name
		if root != obj {
			label = root.Name() + " -> " + fn.Name.Name
		}
		checkAllocSites(pass, fn, label, waivers)
	}
	return nil
}

// collectAllocWaivers gathers //mm:alloc-ok directives, flagging waivers
// that fail to state a reason (a bare waiver hides a decision instead of
// recording one).
func collectAllocWaivers(pass *Pass) map[allocWaiverKey]bool {
	waivers := make(map[allocWaiverKey]bool)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allocOkRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				reason := m[1]
				// A trailing //-subcomment is not a reason; the reason must
				// be direct text on the directive itself. (URL reasons keep
				// their scheme prefix and stay non-empty.)
				if i := strings.Index(reason, "//"); i >= 0 {
					reason = reason[:i]
				}
				if strings.TrimSpace(reason) == "" {
					pass.Reportf(c.Pos(), "//mm:alloc-ok waiver must state a reason")
					continue
				}
				waivers[allocWaiverKey{pos.Filename, pos.Line}] = true
			}
		}
	}
	return waivers
}

// allocReport emits one finding unless a reasoned //mm:alloc-ok waiver
// covers the line (or the line above it).
func allocReport(pass *Pass, waivers map[allocWaiverKey]bool, pos token.Pos, format string, args ...any) {
	p := pass.Fset.Position(pos)
	if waivers[allocWaiverKey{p.Filename, p.Line}] || waivers[allocWaiverKey{p.Filename, p.Line - 1}] {
		return
	}
	pass.Reportf(pos, format, args...)
}

// checkAllocSites walks one reachable function body flagging allocation
// sites. Nested function literals are flagged as closures but not
// descended into: the closure allocation itself is the finding.
func checkAllocSites(pass *Pass, fn *ast.FuncDecl, label string, waivers map[allocWaiverKey]bool) {
	loopDepth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(n, func(inner ast.Node) bool {
				if inner == n {
					return true
				}
				return walk(inner)
			})
			loopDepth--
			return false
		case *ast.FuncLit:
			if captured := capturedVar(pass, n); captured != "" {
				allocReport(pass, waivers, n.Pos(),
					"noalloc %s: closure captures %q by reference and allocates when it escapes", label, captured)
			}
			return false
		case *ast.CallExpr:
			checkAllocCall(pass, n, label, loopDepth, waivers)
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				allocReport(pass, waivers, n.Pos(), "noalloc %s: slice literal allocates", label)
			case *types.Map:
				allocReport(pass, waivers, n.Pos(), "noalloc %s: map literal allocates", label)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					allocReport(pass, waivers, n.Pos(), "noalloc %s: &composite literal may escape to the heap", label)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && loopDepth > 0 {
				if t, ok := pass.Info.TypeOf(n).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					allocReport(pass, waivers, n.Pos(), "noalloc %s: string concatenation in a loop allocates per iteration", label)
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// checkAllocCall flags allocating calls: make/new, growing appends,
// fmt.* in loops, and explicit interface conversions of non-pointer
// concrete values.
func checkAllocCall(pass *Pass, call *ast.CallExpr, label string, loopDepth int, waivers map[allocWaiverKey]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				allocReport(pass, waivers, call.Pos(), "noalloc %s: make allocates", label)
			case "new":
				allocReport(pass, waivers, call.Pos(), "noalloc %s: new allocates", label)
			case "append":
				if len(call.Args) > 0 {
					if _, resliced := call.Args[0].(*ast.SliceExpr); !resliced {
						allocReport(pass, waivers, call.Pos(),
							"noalloc %s: append without preallocated-cap evidence may grow the heap; append to a resliced buffer (buf[:0]) or waive", label)
					}
				}
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && loopDepth > 0 {
		if selectorPkgPath(pass.Info, sel) == "fmt" {
			allocReport(pass, waivers, call.Pos(), "noalloc %s: fmt.%s in a loop allocates (interface boxing and formatting buffers)", label, sel.Sel.Name)
			return
		}
	}
	// Explicit conversion to an interface type boxes non-pointer concretes.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		tgt := tv.Type
		if types.IsInterface(tgt.Underlying()) {
			argT := pass.Info.TypeOf(call.Args[0])
			if argT != nil && !types.IsInterface(argT.Underlying()) {
				if _, isPtr := argT.Underlying().(*types.Pointer); !isPtr {
					allocReport(pass, waivers, call.Pos(),
						"noalloc %s: converting non-pointer %s to interface %s boxes on the heap", label, argT, tgt)
				}
			}
		}
	}
}

// capturedVar returns the name of one variable the function literal
// captures from its enclosing scope ("" when it captures nothing).
// Package-level variables and struct fields are not captures.
func capturedVar(pass *Pass, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		// Declared outside the literal's span -> captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
		}
		return true
	})
	return captured
}
