package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path   string
	Dir    string
	Module string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves the patterns with the go tool and type-checks every matched
// non-standard-library package from source. Dependencies are imported from
// the compiler's export data (`go list -export`), so loading stays fast and
// needs no third-party machinery: the go toolchain itself is the build
// system of record.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}

	exports := make(map[string]string)
	var targets []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, e := range targets {
		if len(e.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", e.ImportPath)
		}
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", e.ImportPath, err)
		}
		module := ""
		if e.Module != nil {
			module = e.Module.Path
		}
		pkgs = append(pkgs, &Package{
			Path:   e.ImportPath,
			Dir:    e.Dir,
			Module: module,
			Fset:   fset,
			Files:  files,
			Types:  tpkg,
			Info:   info,
		})
	}
	return pkgs, nil
}
