package lint

import (
	"go/ast"
	"regexp"
)

// Detrand forbids non-reproducible randomness in the stochastic kernels.
//
// The GA/scheduling/DVS loop is only checkpoint/resumable because every
// random draw flows through an injected *rand.Rand backed by the
// serialisable runctl.Source: the checkpoint stores the stream position and
// a resumed run replays the exact stream of the uninterrupted one
// (docs/RUNCTL.md). A single call to a math/rand top-level function draws
// from the shared global stream whose position is invisible to the
// checkpoint, and a time-seeded source makes two runs with equal seeds
// diverge. Both silently break the resume ≡ uninterrupted guarantee and
// the determinism regression test.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid the global math/rand stream and wall-clock-seeded sources " +
		"in the stochastic synthesis kernels; randomness must be a *rand.Rand " +
		"threaded from the caller (ultimately runctl's serialisable source)",
	Packages: regexp.MustCompile(`(^|/)internal/(synth|ga|sched|dvs|sim|gen)($|/)`),
	Run:      runDetrand,
}

// detrandAllowed are the math/rand top-level functions that construct
// explicitly-seeded state rather than drawing from the global stream.
var detrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath := selectorPkgPath(pass.Info, sel)
			name := sel.Sel.Name

			// Any source constructor fed from the wall clock is
			// non-reproducible, whichever package provides it.
			if name == "NewSource" || name == "New" {
				for _, arg := range call.Args {
					if containsTimeNow(pass.Info, arg) {
						pass.Reportf(call.Pos(),
							"time-seeded random source: seeds must come from configuration so equal seeds replay equal streams")
						return true
					}
				}
			}

			if pkgPath == "math/rand" && !detrandAllowed[name] {
				pass.Reportf(call.Pos(),
					"global math/rand.%s draws from the process-wide stream and breaks checkpoint/resume determinism; thread a *rand.Rand instead", name)
			}
			return true
		})
	}
	return nil
}
