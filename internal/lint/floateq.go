package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// Floateq forbids raw equality between floating-point expressions in the
// numeric core.
//
// The Eq. (1) power sums, schedule timestamps and voltage-scaling laws are
// all accumulated floating-point quantities: two algebraically equal values
// routinely differ in the last bits, so == / != encode "these two code
// paths rounded identically" rather than the intended numeric statement.
// The certifier's epsilon discipline (docs/VERIFY.md) exists precisely
// because of this; comparisons must go through model.ApproxEqual (or an
// explicit epsilon inequality). The x != x NaN idiom and compile-time
// constant comparisons are exempt.
var Floateq = &Analyzer{
	Name: "floateq",
	Doc: "flag == and != between floating-point expressions in the " +
		"energy/power/schedule math; compare through model.ApproxEqual or an " +
		"explicit epsilon instead",
	Packages: regexp.MustCompile(`(^|/)internal/(energy|verify|dvs|sched|sim|synth|model|ga|gantt)($|/)`),
	Run:      runFloateq,
}

func runFloateq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info.TypeOf(bin.X)) || !isFloat(pass.Info.TypeOf(bin.Y)) {
				return true
			}
			// Both sides constant: evaluated at compile time, exact.
			if pass.Info.Types[bin.X].Value != nil && pass.Info.Types[bin.Y].Value != nil {
				return true
			}
			// x != x / x == x: the portable NaN test.
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"floating-point %s comparison: accumulated float values differ in the last bits even when algebraically equal; use model.ApproxEqual or an explicit epsilon", bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
