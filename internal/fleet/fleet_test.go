package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"momosyn/internal/obs"
)

// newStore opens a store over a temp dir with a controllable clock.
func newStore(t *testing.T, node string, dir string, now *func() time.Time) *Store {
	t.Helper()
	clock := time.Now
	if now != nil {
		clock = func() time.Time { return (*now)() }
	}
	s, err := Open(Config{
		Dir: dir, Node: node, TTL: 250 * time.Millisecond,
		Registry: obs.NewRegistry(), Now: clock,
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", node, err)
	}
	return s
}

func mkJob(t *testing.T, s *Store) string {
	t.Helper()
	id, err := s.NewJobID()
	if err != nil {
		t.Fatalf("NewJobID: %v", err)
	}
	if err := s.CreateJob(id, []byte(`{"spec":"x"}`), []byte(`{"id":"`+id+`","state":"queued"}`)); err != nil {
		t.Fatalf("CreateJob: %v", err)
	}
	return id
}

func TestClaimRaceSingleWinner(t *testing.T) {
	dir := t.TempDir()
	// Frozen clock: the winner's lease must not expire however slowly the
	// losing goroutines get scheduled.
	now := time.Now()
	clock := func() time.Time { return now }
	const nodes = 16
	stores := make([]*Store, nodes)
	for i := range stores {
		stores[i] = newStore(t, fmt.Sprintf("n%02d", i), dir, &clock)
	}
	job := mkJob(t, stores[0])

	var wg sync.WaitGroup
	leases := make([]*Lease, nodes)
	errs := make([]error, nodes)
	for i := range stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leases[i], errs[i] = stores[i].Claim(job)
		}(i)
	}
	wg.Wait()

	winners := 0
	for i := range leases {
		if leases[i] != nil {
			winners++
			if leases[i].Epoch != 1 {
				t.Errorf("winner epoch = %d, want 1", leases[i].Epoch)
			}
		} else if !errors.Is(errs[i], ErrUnavailable) {
			t.Errorf("loser %d: error %v, want ErrUnavailable", i, errs[i])
		}
	}
	if winners != 1 {
		t.Fatalf("%d nodes won the claim race, want exactly 1", winners)
	}
}

func TestClaimHeldAndReleased(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	clock := func() time.Time { return now }
	a := newStore(t, "a", dir, &clock)
	b := newStore(t, "b", dir, &clock)
	job := mkJob(t, a)

	la, err := a.Claim(job)
	if err != nil {
		t.Fatalf("a.Claim: %v", err)
	}
	if _, err := b.Claim(job); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("b.Claim on held lease: %v, want ErrUnavailable", err)
	}
	if err := la.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	lb, err := b.Claim(job)
	if err != nil {
		t.Fatalf("b.Claim after release: %v", err)
	}
	if lb.Epoch != 2 {
		t.Fatalf("epoch after release-claim = %d, want 2", lb.Epoch)
	}
}

func TestExpiredLeaseIsStolenAndOldHolderFenced(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	clockA, clockB := func() time.Time { return now }, func() time.Time { return now }
	a := newStore(t, "a", dir, &clockA)
	b := newStore(t, "b", dir, &clockB)
	job := mkJob(t, a)

	la, err := a.Claim(job)
	if err != nil {
		t.Fatalf("a.Claim: %v", err)
	}
	if err := la.Write(KindManifest, []byte(`{"state":"running"}`)); err != nil {
		t.Fatalf("a manifest write: %v", err)
	}

	// Node a goes silent; its lease expires.
	now = now.Add(time.Second)
	lb, err := b.Claim(job)
	if err != nil {
		t.Fatalf("b.Claim over expired lease: %v", err)
	}
	if lb.Epoch != la.Epoch+1 {
		t.Fatalf("steal epoch = %d, want %d", lb.Epoch, la.Epoch+1)
	}
	if got := b.reg.Counter("fleet.steals").Value(); got != 1 {
		t.Fatalf("fleet.steals = %d, want 1", got)
	}
	if got := b.reg.Counter("fleet.expired_leases").Value(); got != 1 {
		t.Fatalf("fleet.expired_leases = %d, want 1", got)
	}

	// The resurrected old holder is fenced on every path.
	if err := la.Verify(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Verify: %v, want ErrLeaseLost", err)
	}
	if err := la.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Renew: %v, want ErrLeaseLost", err)
	}
	if err := la.Write(KindManifest, []byte(`{"state":"done"}`)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Write: %v, want ErrLeaseLost", err)
	}
	if got := a.reg.Counter("fleet.fence_rejects").Value(); got == 0 {
		t.Fatal("fleet.fence_rejects = 0 on the stale node, want > 0")
	}

	// The thief's writes land and shadow the stale epoch.
	if err := lb.Write(KindManifest, []byte(`{"state":"running","node":"b"}`)); err != nil {
		t.Fatalf("thief manifest write: %v", err)
	}
	data, epoch, err := b.Latest(job, KindManifest, nil)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if epoch != lb.Epoch {
		t.Fatalf("latest manifest epoch = %d, want the thief's %d", epoch, lb.Epoch)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil || m["node"] != "b" {
		t.Fatalf("latest manifest is not the thief's: %s", data)
	}
}

func TestEpochMonotonicAcrossLeaseCleanup(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	clock := func() time.Time { return now }
	s := newStore(t, "a", dir, &clock)
	job := mkJob(t, s)

	l1, err := s.Claim(job)
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if err := l1.Write(KindCheckpoint, []byte("ckpt-e1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// An operator (or crash cleanup) deletes every lease file. The state
	// files keep the epoch floor.
	if err := os.Remove(filepath.Join(dir, "jobs", job, fmt.Sprintf("lease.e%08d", 1))); err != nil {
		t.Fatalf("remove lease: %v", err)
	}
	l2, err := s.Claim(job)
	if err != nil {
		t.Fatalf("Claim after lease cleanup: %v", err)
	}
	if l2.Epoch != 2 {
		t.Fatalf("epoch after lease-file loss = %d, want 2 (floor from state files)", l2.Epoch)
	}
}

func TestCorruptLeaseContentIsClaimableButFencingHolds(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	clock := func() time.Time { return now }
	a := newStore(t, "a", dir, &clock)
	b := newStore(t, "b", dir, &clock)
	job := mkJob(t, a)

	la, err := a.Claim(job)
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	// The holder's lease file content gets torn to garbage. Liveness can no
	// longer be proven, so the job must be claimable...
	leaseFile := filepath.Join(dir, "jobs", job, fmt.Sprintf("lease.e%08d", 1))
	if err := os.WriteFile(leaseFile, []byte("\x00garbage"), 0o644); err != nil {
		t.Fatalf("corrupt lease: %v", err)
	}
	cs, err := b.ClaimState(job)
	if err != nil {
		t.Fatalf("ClaimState: %v", err)
	}
	if !cs.Corrupt || cs.Held {
		t.Fatalf("ClaimState on corrupt lease = %+v, want Corrupt && !Held", cs)
	}
	if b.reg.Counter("fleet.corrupt_leases").Value() == 0 {
		t.Fatal("fleet.corrupt_leases not counted")
	}
	lb, err := b.Claim(job)
	if err != nil {
		t.Fatalf("Claim over corrupt lease: %v", err)
	}
	// ...and fencing still holds, because epochs live in file NAMES.
	if lb.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", lb.Epoch)
	}
	if err := la.Write(KindManifest, []byte("x")); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale holder write after content corruption: %v, want ErrLeaseLost", err)
	}
}

func TestLatestSkipsCorruptEpochs(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	clock := func() time.Time { return now }
	s := newStore(t, "a", dir, &clock)
	job := mkJob(t, s)

	l1, _ := s.Claim(job)
	if err := l1.Write(KindManifest, []byte(`{"ok":1}`)); err != nil {
		t.Fatal(err)
	}
	l1.Release()
	l2, _ := s.Claim(job)
	if err := l2.Write(KindManifest, []byte(`{"ok":2}`)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest epoch's manifest in place.
	if err := os.WriteFile(s.StatePath(job, KindManifest, l2.Epoch), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	valid := func(d []byte) error {
		if !json.Valid(d) {
			return errors.New("invalid JSON")
		}
		return nil
	}
	data, epoch, err := s.Latest(job, KindManifest, valid)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if epoch != l1.Epoch {
		t.Fatalf("Latest degraded to epoch %d, want last-good %d", epoch, l1.Epoch)
	}
	if string(data) != `{"ok":1}` {
		t.Fatalf("Latest content = %s", data)
	}
	if s.reg.Counter("fleet.corrupt_state_files").Value() == 0 {
		t.Fatal("fleet.corrupt_state_files not counted")
	}
}

func TestNewJobIDConcurrentUnique(t *testing.T) {
	dir := t.TempDir()
	const nodes = 8
	stores := make([]*Store, nodes)
	for i := range stores {
		stores[i] = newStore(t, fmt.Sprintf("n%d", i), dir, nil)
	}
	var wg sync.WaitGroup
	ids := make([]string, nodes)
	for i := range stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := stores[i].NewJobID()
			if err != nil {
				t.Errorf("NewJobID: %v", err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, id := range ids {
		if id == "" {
			continue
		}
		if seen[id] {
			t.Fatalf("job ID %s allocated twice", id)
		}
		seen[id] = true
	}
	if len(seen) != nodes {
		t.Fatalf("%d unique IDs for %d nodes", len(seen), nodes)
	}
}

func TestCancelMarkerAndNodeHeartbeats(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	clock := func() time.Time { return now }
	a := newStore(t, "a", dir, &clock)
	b := newStore(t, "b", dir, &clock)
	job := mkJob(t, a)

	if a.CancelRequested(job) {
		t.Fatal("cancel marker present before request")
	}
	if err := b.RequestCancel(job); err != nil {
		t.Fatalf("RequestCancel: %v", err)
	}
	if err := b.RequestCancel(job); err != nil {
		t.Fatalf("RequestCancel twice: %v", err)
	}
	if !a.CancelRequested(job) {
		t.Fatal("cancel marker not visible to the other node")
	}

	if err := a.HeartbeatNode(); err != nil {
		t.Fatalf("HeartbeatNode: %v", err)
	}
	if err := b.HeartbeatNode(); err != nil {
		t.Fatalf("HeartbeatNode: %v", err)
	}
	if live, err := a.LiveNodes(); err != nil || live != 2 {
		t.Fatalf("LiveNodes = %d, %v; want 2", live, err)
	}
	now = now.Add(time.Second) // both heartbeats lapse
	if live, err := a.LiveNodes(); err != nil || live != 0 {
		t.Fatalf("LiveNodes after expiry = %d, %v; want 0", live, err)
	}
}

func TestFencedBracketsDetectPostWriteLoss(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	clockA, clockB := func() time.Time { return now }, func() time.Time { return now }
	a := newStore(t, "a", dir, &clockA)
	b := newStore(t, "b", dir, &clockB)
	job := mkJob(t, a)

	la, err := a.Claim(job)
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	// The write itself succeeds, but B steals the lease between the write
	// and the post-verify: the holder must see ErrLeaseLost.
	err = la.Fenced(func() error {
		now = now.Add(time.Second)
		if _, cerr := b.Claim(job); cerr != nil {
			t.Fatalf("b.Claim mid-write: %v", cerr)
		}
		return WriteFileAtomic(a.fs, a.StatePath(job, KindManifest, la.Epoch), []byte("{}"))
	})
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("Fenced with mid-write steal: %v, want ErrLeaseLost", err)
	}
}
