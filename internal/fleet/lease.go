package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"time"
)

// Lease protocol. A job's lease files live in its job directory and are
// named lease.e<epoch>. Claiming epoch E is an O_CREATE|O_EXCL creation of
// lease.e<E>: the filesystem guarantees exactly one winner per epoch
// number, so two nodes can never both believe they hold the same epoch.
// The current holder is the highest-numbered lease file; every lower epoch
// is fenced off. Claim candidates pick E = (highest epoch ever observed in
// the directory, across lease AND state files) + 1, so epochs are strictly
// monotonic even after lease files are cleaned up or corrupted — state
// files keep the floor, and the epoch is parsed from file NAMES, which a
// torn write cannot damage.

// Errors of the claim/renew protocol.
var (
	// ErrUnavailable reports a claim attempt on a job whose lease is held
	// and current, or that another node won the race for.
	ErrUnavailable = errors.New("fleet: job lease unavailable")
	// ErrLeaseLost reports that a higher lease epoch exists: this node has
	// been fenced off and must stop writing job state immediately.
	ErrLeaseLost = errors.New("fleet: lease lost to a higher epoch")
)

// leaseRecord is the JSON content of a lease file. The epoch also appears
// in the file name, which is authoritative: content corruption can delay
// liveness detection but never confuse fencing.
type leaseRecord struct {
	Job      string    `json:"job"`
	Node     string    `json:"node"`
	Epoch    int       `json:"epoch"`
	Acquired time.Time `json:"acquired"`
	Deadline time.Time `json:"deadline"`
	Released bool      `json:"released,omitempty"`
}

// ClaimState summarises a job's lease situation for claim decisions and
// operational reporting.
type ClaimState struct {
	// Epoch is the highest epoch observed across lease and state files;
	// 0 when the job has never been claimed.
	Epoch int
	// LeaseEpoch is the highest lease file epoch (0 when none).
	LeaseEpoch int
	// Holder is the node named by the current lease ("" when none or
	// unreadable).
	Holder string
	// Held reports a current, unexpired, unreleased lease.
	Held bool
	// Released reports a gracefully released current lease.
	Released bool
	// Expired reports a current lease whose deadline has passed.
	Expired bool
	// Corrupt reports that the current lease file exists but its content
	// is unreadable (it is treated as expired: liveness cannot be proven).
	Corrupt bool
}

// Lease is a held claim on one job at one epoch. All its writes are fenced:
// they re-verify the epoch before (and after) touching job state.
type Lease struct {
	store *Store
	// Job is the claimed job ID.
	Job string
	// Epoch is the claim epoch; every state file this lease writes embeds
	// it in its name.
	Epoch int
	// Holder is the owning node ID.
	Holder string

	deadline time.Time
}

// claimState inspects the job directory once and classifies its lease.
func (s *Store) claimState(job string) (ClaimState, error) {
	names, err := s.fs.ReadDir(s.jobDir(job))
	if err != nil {
		return ClaimState{}, fmt.Errorf("fleet: job %s: %w", job, err)
	}
	var cs ClaimState
	for _, name := range names {
		if e, ok := parseLeaseName(name); ok {
			if e > cs.LeaseEpoch {
				cs.LeaseEpoch = e
			}
			if e > cs.Epoch {
				cs.Epoch = e
			}
			continue
		}
		if _, e, ok := parseStateName(name); ok && e > cs.Epoch {
			cs.Epoch = e
		}
	}
	if cs.LeaseEpoch == 0 {
		return cs, nil
	}
	data, err := s.fs.ReadFile(s.leasePath(job, cs.LeaseEpoch))
	if err != nil {
		// Present in the listing but unreadable: treat like corrupt
		// content — claimable, since liveness cannot be proven.
		s.corruptLeases.Inc()
		cs.Corrupt, cs.Expired = true, true
		return cs, nil
	}
	var rec leaseRecord
	if jerr := json.Unmarshal(data, &rec); jerr != nil || rec.Deadline.IsZero() {
		s.corruptLeases.Inc()
		cs.Corrupt, cs.Expired = true, true
		return cs, nil
	}
	cs.Holder = rec.Node
	cs.Released = rec.Released
	cs.Expired = !s.now().Before(rec.Deadline)
	cs.Held = !rec.Released && !cs.Expired
	return cs, nil
}

// ClaimState reports the job's current lease situation.
func (s *Store) ClaimState(job string) (ClaimState, error) { return s.claimState(job) }

// Claim attempts to take the job's lease at the next epoch. It fails with
// ErrUnavailable when the current lease is held and unexpired, or when a
// concurrent claimant wins the O_EXCL race for the next epoch. A claim
// over an expired (or corrupt) prior lease counts as a steal.
func (s *Store) Claim(job string) (*Lease, error) {
	cs, err := s.claimState(job)
	if err != nil {
		return nil, err
	}
	if cs.Held {
		return nil, fmt.Errorf("%w: held by %s until its deadline (epoch %d)", ErrUnavailable, cs.Holder, cs.LeaseEpoch)
	}
	epoch := cs.Epoch + 1
	now := s.now()
	rec := leaseRecord{
		Job: job, Node: s.node, Epoch: epoch,
		Acquired: now, Deadline: now.Add(s.ttl),
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		return nil, fmt.Errorf("fleet: lease encode: %w", err)
	}
	if err := s.fs.CreateExclusive(s.leasePath(job, epoch), data); err != nil {
		if errors.Is(err, fs.ErrExist) {
			s.claimConflicts.Inc()
			return nil, fmt.Errorf("%w: lost the claim race for epoch %d", ErrUnavailable, epoch)
		}
		return nil, fmt.Errorf("fleet: claim %s: %w", job, err)
	}
	// Durability of the claim itself: a lease that vanishes in a crash
	// would let epochs collide after restart-with-same-disk-state.
	if err := s.fs.SyncDir(s.jobDir(job)); err != nil {
		return nil, fmt.Errorf("fleet: claim %s: %w", job, err)
	}
	s.claims.Inc()
	if cs.LeaseEpoch > 0 && !cs.Released {
		s.steals.Inc()
		if cs.Expired && !cs.Corrupt {
			s.expiredLeases.Inc()
		}
	}
	return &Lease{store: s, Job: job, Epoch: epoch, Holder: s.node, deadline: rec.Deadline}, nil
}

// Verify re-checks the fence: it fails with ErrLeaseLost when any lease
// epoch above this one exists (another node reclaimed the job), counting a
// fence rejection. A held lease whose own file disappeared is also lost —
// the holder can no longer prove anything.
func (l *Lease) Verify() error {
	names, err := l.store.fs.ReadDir(l.store.jobDir(l.Job))
	if err != nil {
		return fmt.Errorf("fleet: verify %s: %w", l.Job, err)
	}
	maxLease := 0
	for _, name := range names {
		if e, ok := parseLeaseName(name); ok && e > maxLease {
			maxLease = e
		}
	}
	if maxLease != l.Epoch {
		l.store.fenceRejects.Inc()
		return fmt.Errorf("%w: job %s epoch %d superseded (current lease epoch %d)", ErrLeaseLost, l.Job, l.Epoch, maxLease)
	}
	return nil
}

// Renew extends the lease deadline by one TTL from now. It verifies the
// fence first and fails with ErrLeaseLost once superseded; the holder must
// then abandon the job without further writes.
func (l *Lease) Renew() error {
	if err := l.Verify(); err != nil {
		return err
	}
	now := l.store.now()
	deadline := now.Add(l.store.ttl)
	if err := l.write(leaseRecord{
		Job: l.Job, Node: l.Holder, Epoch: l.Epoch,
		Acquired: now, Deadline: deadline,
	}); err != nil {
		return fmt.Errorf("fleet: renew %s: %w", l.Job, err)
	}
	l.deadline = deadline
	l.store.renewals.Inc()
	return nil
}

// Release marks the lease released in place (keeping the epoch floor), so
// any node may claim the job immediately without waiting for expiry.
func (l *Lease) Release() error {
	if err := l.Verify(); err != nil {
		return err
	}
	if err := l.write(leaseRecord{
		Job: l.Job, Node: l.Holder, Epoch: l.Epoch,
		Acquired: l.store.now(), Deadline: l.store.now(), Released: true,
	}); err != nil {
		return fmt.Errorf("fleet: release %s: %w", l.Job, err)
	}
	l.store.releases.Inc()
	return nil
}

// write atomically replaces the lease file content. Only the epoch winner
// ever writes this path, so there is exactly one legitimate writer.
func (l *Lease) write(rec leaseRecord) error {
	data, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	return WriteFileAtomic(l.store.fs, l.store.leasePath(l.Job, l.Epoch), data)
}

// Deadline returns the lease's current deadline.
func (l *Lease) Deadline() time.Time { return l.deadline }
