package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"regexp"
	"syscall"
	"testing"
	"time"

	"momosyn/internal/fleet/chaosfs"
	"momosyn/internal/ga"
	"momosyn/internal/obs"
	"momosyn/internal/runctl"
)

// chaosStore opens a Store over a chaosfs-wrapped real filesystem with a
// frozen, advanceable clock, and creates one submitted job.
func chaosStore(t *testing.T, node string) (*Store, *chaosfs.FS, string, *time.Time) {
	t.Helper()
	now := time.Now()
	cfs := chaosfs.New(OSFS{})
	s, err := Open(Config{
		Dir: t.TempDir(), Node: node, TTL: 250 * time.Millisecond,
		FS: cfs, Registry: obs.NewRegistry(),
		Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	job, err := s.NewJobID()
	if err != nil {
		t.Fatalf("NewJobID: %v", err)
	}
	manifest := fmt.Sprintf(`{"id":%q,"state":"queued"}`, job)
	if err := s.CreateJob(job, []byte(`{"spec":1}`), []byte(manifest)); err != nil {
		t.Fatalf("CreateJob: %v", err)
	}
	return s, cfs, job, &now
}

// peer opens a second node's Store over the same directory and clock,
// bypassing the chaos layer (the peer's disk is healthy).
func peer(t *testing.T, s *Store, node string, now *time.Time) *Store {
	t.Helper()
	p, err := Open(Config{
		Dir: s.Dir(), Node: node, TTL: s.TTL(),
		Registry: obs.NewRegistry(),
		Now:      func() time.Time { return *now },
	})
	if err != nil {
		t.Fatalf("Open peer: %v", err)
	}
	return p
}

// manifestValid mirrors the serve layer's manifest validator: JSON that
// names the right job and carries a non-empty state.
func manifestValid(job string) func([]byte) error {
	return func(data []byte) error {
		var m struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}
		if err := json.Unmarshal(data, &m); err != nil {
			return err
		}
		if m.ID != job {
			return fmt.Errorf("manifest names job %q, want %q", m.ID, job)
		}
		if m.State == "" {
			return errors.New("manifest has no state")
		}
		return nil
	}
}

var (
	leaseRe    = regexp.MustCompile(`lease\.`)
	manifestRe = regexp.MustCompile(`manifest\.`)
	ckptRe     = regexp.MustCompile(`\.ckpt`)
)

// TestChaosLeaseClaimFaults drives every write-fault class through the
// lease claim path: a faulted claim must fail loudly (or, for a silent
// short write, lose the lease to the next claimant), and the job must be
// claimable again afterwards — never wedged, never two live holders.
func TestChaosLeaseClaimFaults(t *testing.T) {
	t.Run("eio", func(t *testing.T) {
		s, cfs, job, _ := chaosStore(t, "a")
		cfs.Inject(chaosfs.Rule{Op: chaosfs.OpCreate, Path: leaseRe, Kind: chaosfs.KindErr})
		if _, err := s.Claim(job); err == nil {
			t.Fatal("claim under EIO succeeded")
		}
		cfs.Reset()
		// The faulted attempt may have left a torn epoch-1 lease behind;
		// liveness cannot be proven from it, so the job is claimable.
		l, err := s.Claim(job)
		if err != nil {
			t.Fatalf("re-claim after EIO: %v", err)
		}
		if l.Epoch != 2 {
			t.Fatalf("re-claim epoch = %d, want 2 (over the torn epoch-1 lease)", l.Epoch)
		}
	})

	t.Run("enospc", func(t *testing.T) {
		s, cfs, job, _ := chaosStore(t, "a")
		cfs.Inject(chaosfs.Rule{Op: chaosfs.OpCreate, Path: leaseRe, Kind: chaosfs.KindErr, Err: syscall.ENOSPC})
		_, err := s.Claim(job)
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("claim on full disk: %v, want ENOSPC", err)
		}
		cfs.Reset()
		if _, err := s.Claim(job); err != nil {
			t.Fatalf("re-claim after ENOSPC: %v", err)
		}
	})

	t.Run("torn", func(t *testing.T) {
		s, cfs, job, _ := chaosStore(t, "a")
		cfs.Inject(chaosfs.Rule{Op: chaosfs.OpCreate, Path: leaseRe, Kind: chaosfs.KindTorn})
		if _, err := s.Claim(job); err == nil {
			t.Fatal("torn claim reported success")
		}
		cfs.Reset()
		cs, err := s.ClaimState(job)
		if err != nil {
			t.Fatalf("ClaimState over torn lease: %v", err)
		}
		if cs.Held || !cs.Corrupt {
			t.Fatalf("torn lease classified %+v, want corrupt and claimable", cs)
		}
		if _, err := s.Claim(job); err != nil {
			t.Fatalf("re-claim over torn lease: %v", err)
		}
	})

	t.Run("short", func(t *testing.T) {
		// The silent killer: the claim "succeeds" but only half the lease
		// record landed. The holder believes it owns the job; a peer sees a
		// corrupt lease, claims the next epoch, and fencing settles it.
		s, cfs, job, now := chaosStore(t, "a")
		cfs.Inject(chaosfs.Rule{Op: chaosfs.OpCreate, Path: leaseRe, Kind: chaosfs.KindShort})
		la, err := s.Claim(job)
		if err != nil {
			t.Fatalf("short-write claim: %v", err)
		}
		b := peer(t, s, "b", now)
		cs, err := b.ClaimState(job)
		if err != nil {
			t.Fatalf("peer ClaimState: %v", err)
		}
		if !cs.Corrupt {
			t.Fatalf("peer classified short-written lease %+v, want Corrupt", cs)
		}
		if _, err := b.Claim(job); err != nil {
			t.Fatalf("peer claim over short-written lease: %v", err)
		}
		if err := la.Write(KindManifest, []byte(`{}`)); !errors.Is(err, ErrLeaseLost) {
			t.Fatalf("original holder write: %v, want ErrLeaseLost", err)
		}
	})

	t.Run("crash", func(t *testing.T) {
		s, cfs, job, _ := chaosStore(t, "a")
		cfs.Inject(chaosfs.Rule{Op: chaosfs.OpCreate, Path: leaseRe, Kind: chaosfs.KindCrash})
		if _, err := s.Claim(job); !errors.Is(err, chaosfs.ErrCrashed) {
			t.Fatalf("claim at crash point: %v, want ErrCrashed", err)
		}
		// The process is dead: everything fails until "restart".
		if _, err := s.Jobs(); !errors.Is(err, chaosfs.ErrCrashed) {
			t.Fatalf("post-crash op: %v, want ErrCrashed", err)
		}
		cfs.Revive()
		l, err := s.Claim(job)
		if err != nil {
			t.Fatalf("claim after restart: %v", err)
		}
		if l.Epoch != 2 {
			t.Fatalf("post-restart epoch = %d, want 2", l.Epoch)
		}
	})
}

// TestChaosLeaseRenewFaults drives faults through the renew path, which
// replaces the lease file atomically: a failed renew must never damage the
// existing lease record.
func TestChaosLeaseRenewFaults(t *testing.T) {
	renewUnder := func(t *testing.T, rule chaosfs.Rule, wantLeaseIntact bool) {
		t.Helper()
		s, cfs, job, _ := chaosStore(t, "a")
		l, err := s.Claim(job)
		if err != nil {
			t.Fatalf("Claim: %v", err)
		}
		cfs.Inject(rule)
		if err := l.Renew(); err == nil {
			t.Fatal("faulted renew reported success")
		}
		cfs.Reset()
		cs, err := s.ClaimState(job)
		if err != nil {
			t.Fatalf("ClaimState: %v", err)
		}
		if wantLeaseIntact && (!cs.Held || cs.Corrupt) {
			t.Fatalf("lease after failed renew: %+v, want intact and held", cs)
		}
		if err := l.Renew(); err != nil {
			t.Fatalf("renew after fault cleared: %v", err)
		}
	}

	t.Run("torn-tmp-write", func(t *testing.T) {
		// The torn write hits the temp file; the rename never runs, so the
		// real lease record is untouched.
		renewUnder(t, chaosfs.Rule{Op: chaosfs.OpWrite, Path: leaseRe, Kind: chaosfs.KindTorn}, true)
	})
	t.Run("rename-failure", func(t *testing.T) {
		renewUnder(t, chaosfs.Rule{Op: chaosfs.OpRename, Path: leaseRe, Kind: chaosfs.KindErr}, true)
	})
	t.Run("dir-sync-failure", func(t *testing.T) {
		// The rename landed but its durability could not be proven: the
		// renew must report failure (content may be either record — both
		// are valid lease states for this epoch holder).
		renewUnder(t, chaosfs.Rule{Op: chaosfs.OpSyncDir, Kind: chaosfs.KindErr}, false)
	})
}

// TestChaosManifestWriteFaults drives every fault class through the fenced
// manifest write: a failed or silently-torn write must degrade reads to
// the last good manifest (the submitter's epoch-0 document), never wedge.
func TestChaosManifestWriteFaults(t *testing.T) {
	cases := []struct {
		name      string
		rule      chaosfs.Rule
		wantErrIs error // nil: any non-nil error; also nil for "short" which succeeds
		silent    bool  // KindShort reports success
	}{
		{"eio", chaosfs.Rule{Op: chaosfs.OpWrite, Path: manifestRe, Kind: chaosfs.KindErr}, nil, false},
		{"enospc", chaosfs.Rule{Op: chaosfs.OpWrite, Path: manifestRe, Kind: chaosfs.KindErr, Err: syscall.ENOSPC}, syscall.ENOSPC, false},
		{"torn", chaosfs.Rule{Op: chaosfs.OpWrite, Path: manifestRe, Kind: chaosfs.KindTorn}, nil, false},
		{"short", chaosfs.Rule{Op: chaosfs.OpWrite, Path: manifestRe, Kind: chaosfs.KindShort}, nil, true},
		{"rename-failure", chaosfs.Rule{Op: chaosfs.OpRename, Path: manifestRe, Kind: chaosfs.KindErr}, nil, false},
		{"crash", chaosfs.Rule{Op: chaosfs.OpWrite, Path: manifestRe, Kind: chaosfs.KindCrash}, chaosfs.ErrCrashed, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, cfs, job, _ := chaosStore(t, "a")
			l, err := s.Claim(job)
			if err != nil {
				t.Fatalf("Claim: %v", err)
			}
			cfs.Inject(tc.rule)
			werr := l.Write(KindManifest, []byte(fmt.Sprintf(`{"id":%q,"state":"running"}`, job)))
			if tc.silent {
				if werr != nil {
					t.Fatalf("short write should report success, got %v", werr)
				}
			} else if werr == nil {
				t.Fatal("faulted manifest write reported success")
			} else if tc.wantErrIs != nil && !errors.Is(werr, tc.wantErrIs) {
				t.Fatalf("manifest write error %v, want %v", werr, tc.wantErrIs)
			}
			cfs.Revive() // clears only a crash; other faults were one-shot
			data, epoch, lerr := s.Latest(job, KindManifest, manifestValid(job))
			if lerr != nil {
				t.Fatalf("Latest after faulted write: %v", lerr)
			}
			if epoch != 0 {
				t.Fatalf("Latest epoch = %d, want degrade to the epoch-0 manifest", epoch)
			}
			var m map[string]any
			if json.Unmarshal(data, &m) != nil || m["state"] != "queued" {
				t.Fatalf("degraded manifest content: %s", data)
			}
			if tc.silent && s.reg.Counter("fleet.corrupt_state_files").Value() == 0 {
				t.Fatal("silently torn manifest not counted as corrupt")
			}
		})
	}
}

// goodCkpt builds a structurally valid checkpoint (mirrors the runctl
// corruption-sweep seed).
func goodCkpt(gen int) *runctl.Checkpoint {
	return &runctl.Checkpoint{
		Version: runctl.Version, SavedAt: time.Unix(1700000000, 0),
		System: "chaos-sys", GenomeLen: 2, Seed: 7, Fingerprint: "fp",
		Snapshot: ga.Snapshot{
			Generation: gen,
			Population: [][]int{{0, 1}, {1, 0}},
			Fitness:    []float64{1, 2},
		},
	}
}

// TestChaosCheckpointSaveFaults drives every fault class through
// runctl.SaveFS on the fleet checkpoint path: a good epoch-1 checkpoint
// exists; the epoch-2 save is sabotaged; recovery must find the epoch-1
// checkpoint via LatestPath with the full runctl.Load validation.
func TestChaosCheckpointSaveFaults(t *testing.T) {
	cases := []struct {
		name   string
		rule   chaosfs.Rule
		silent bool
	}{
		{"eio", chaosfs.Rule{Op: chaosfs.OpWrite, Path: ckptRe, Kind: chaosfs.KindErr}, false},
		{"enospc", chaosfs.Rule{Op: chaosfs.OpWrite, Path: ckptRe, Kind: chaosfs.KindErr, Err: syscall.ENOSPC}, false},
		{"torn", chaosfs.Rule{Op: chaosfs.OpWrite, Path: ckptRe, Kind: chaosfs.KindTorn}, false},
		{"short", chaosfs.Rule{Op: chaosfs.OpWrite, Path: ckptRe, Kind: chaosfs.KindShort}, true},
		{"rename-failure", chaosfs.Rule{Op: chaosfs.OpRename, Path: ckptRe, Kind: chaosfs.KindErr}, false},
		{"crash", chaosfs.Rule{Op: chaosfs.OpWrite, Path: ckptRe, Kind: chaosfs.KindCrash}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, cfs, job, _ := chaosStore(t, "a")
			l1, err := s.Claim(job)
			if err != nil {
				t.Fatalf("Claim: %v", err)
			}
			if err := l1.Fenced(func() error {
				return runctl.SaveFS(cfs, l1.StatePath(KindCheckpoint), goodCkpt(3))
			}); err != nil {
				t.Fatalf("good checkpoint save: %v", err)
			}
			if err := l1.Release(); err != nil {
				t.Fatalf("Release: %v", err)
			}
			l2, err := s.Claim(job)
			if err != nil {
				t.Fatalf("re-claim: %v", err)
			}
			cfs.Inject(tc.rule)
			serr := l2.Fenced(func() error {
				return runctl.SaveFS(cfs, l2.StatePath(KindCheckpoint), goodCkpt(9))
			})
			if tc.silent {
				if serr != nil {
					t.Fatalf("short-write save should report success, got %v", serr)
				}
			} else if serr == nil {
				t.Fatal("faulted checkpoint save reported success")
			}
			cfs.Revive()
			var got *runctl.Checkpoint
			path, epoch, lerr := s.LatestPath(job, KindCheckpoint, func(p string) error {
				cp, err := runctl.Load(p)
				if err != nil {
					return err
				}
				got = cp
				return nil
			})
			if lerr != nil {
				t.Fatalf("LatestPath after faulted save: %v", lerr)
			}
			if epoch != l1.Epoch {
				t.Fatalf("recovered checkpoint epoch = %d (%s), want last-good %d", epoch, path, l1.Epoch)
			}
			if got == nil || got.Snapshot.Generation != 3 {
				t.Fatalf("recovered checkpoint = %+v, want the generation-3 snapshot", got)
			}
		})
	}
}

// TestAtomicWriteSyncsDirAfterRename is the satellite-1 regression: both
// atomic writers (fleet.WriteFileAtomic and runctl.SaveFS) must fsync the
// temp file, rename it into place, and then fsync the parent directory —
// in that order — so a crash right after the rename cannot lose the entry.
func TestAtomicWriteSyncsDirAfterRename(t *testing.T) {
	order := func(t *testing.T, cfs *chaosfs.FS, final *regexp.Regexp) {
		t.Helper()
		var wrote, renamed, synced int = -1, -1, -1
		for i, rec := range cfs.Journal() {
			switch {
			case rec.Op == chaosfs.OpWrite && final.MatchString(rec.Path):
				wrote = i
			case rec.Op == chaosfs.OpRename && final.MatchString(rec.Path):
				renamed = i
			case rec.Op == chaosfs.OpSyncDir && renamed >= 0 && synced < 0:
				synced = i
			}
		}
		if wrote < 0 || renamed < 0 || synced < 0 {
			t.Fatalf("journal missing write/rename/syncdir (%d/%d/%d):\n%v", wrote, renamed, synced, cfs.Journal())
		}
		if !(wrote < renamed && renamed < synced) {
			t.Fatalf("durability order violated: write@%d rename@%d syncdir@%d", wrote, renamed, synced)
		}
	}

	t.Run("fleet.WriteFileAtomic", func(t *testing.T) {
		s, cfs, job, _ := chaosStore(t, "a")
		l, err := s.Claim(job)
		if err != nil {
			t.Fatalf("Claim: %v", err)
		}
		cfs.Reset() // journal only the write under test
		if err := l.Write(KindManifest, []byte(fmt.Sprintf(`{"id":%q,"state":"running"}`, job))); err != nil {
			t.Fatalf("Write: %v", err)
		}
		order(t, cfs, manifestRe)
	})

	t.Run("runctl.SaveFS", func(t *testing.T) {
		cfs := chaosfs.New(OSFS{})
		dir := t.TempDir()
		if err := runctl.SaveFS(cfs, dir+"/job.e00000001.ckpt", goodCkpt(1)); err != nil {
			t.Fatalf("SaveFS: %v", err)
		}
		order(t, cfs, ckptRe)
	})
}

// TestCorruptionSweepLease flips every byte of a live lease record in turn,
// and truncates it to every length: the claim-state classifier must never
// error, the epoch (parsed from the file NAME) must never change, and the
// lease must classify as either held or claimable — a corrupt lease can
// delay or cost the holder its claim, but can never wedge the job or spawn
// a second concurrent holder.
func TestCorruptionSweepLease(t *testing.T) {
	s, _, job, now := chaosStore(t, "a")
	la, err := s.Claim(job)
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	b := peer(t, s, "b", now)
	leasePath := s.leasePath(job, la.Epoch)
	valid, err := os.ReadFile(leasePath)
	if err != nil {
		t.Fatalf("read lease: %v", err)
	}
	check := func(t *testing.T, label string, data []byte) {
		if err := os.WriteFile(leasePath, data, 0o644); err != nil {
			t.Fatalf("%s: write: %v", label, err)
		}
		cs, err := b.ClaimState(job)
		if err != nil {
			t.Fatalf("%s: ClaimState errored (wedged job): %v", label, err)
		}
		if cs.Epoch != la.Epoch || cs.LeaseEpoch != la.Epoch {
			t.Fatalf("%s: epoch misread as %d/%d, want %d (names are authoritative)", label, cs.Epoch, cs.LeaseEpoch, la.Epoch)
		}
		if cs.Held == (cs.Expired || cs.Corrupt) {
			t.Fatalf("%s: incoherent classification %+v", label, cs)
		}
	}

	for off := range valid {
		data := append([]byte(nil), valid...)
		data[off] ^= 0xff
		check(t, fmt.Sprintf("flip@%d", off), data)
	}
	for n := 0; n < len(valid); n++ {
		check(t, fmt.Sprintf("trunc@%d", n), valid[:n])
	}

	// Detection must have fired for at least the blatant corruptions.
	if b.reg.Counter("fleet.corrupt_leases").Value() == 0 {
		t.Fatal("sweep never detected a corrupt lease")
	}

	// Leave one corrupt variant in place and run the full recovery: the
	// peer claims the next epoch and the original holder is fenced off.
	if err := os.WriteFile(leasePath, valid[:len(valid)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	lb, err := b.Claim(job)
	if err != nil {
		t.Fatalf("claim over corrupt lease: %v", err)
	}
	if lb.Epoch != la.Epoch+1 {
		t.Fatalf("recovery epoch = %d, want %d", lb.Epoch, la.Epoch+1)
	}
	if err := la.Write(KindManifest, []byte(`{}`)); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("fenced holder write: %v, want ErrLeaseLost", err)
	}
}

// TestCorruptionSweepManifest flips every byte and truncates to every
// length of the epoch-1 manifest: reads must always produce a manifest the
// validator accepts — the damaged epoch itself when the damage is
// immaterial, otherwise the last good epoch below it — and never an error.
func TestCorruptionSweepManifest(t *testing.T) {
	s, _, job, _ := chaosStore(t, "a")
	l, err := s.Claim(job)
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	good := []byte(fmt.Sprintf(`{"id":%q,"state":"running","epoch":1}`, job))
	if err := l.Write(KindManifest, good); err != nil {
		t.Fatalf("Write: %v", err)
	}
	manifestPath := s.StatePath(job, KindManifest, l.Epoch)
	validate := manifestValid(job)

	check := func(t *testing.T, label string, data []byte) {
		if err := os.WriteFile(manifestPath, data, 0o644); err != nil {
			t.Fatalf("%s: write: %v", label, err)
		}
		got, epoch, err := s.Latest(job, KindManifest, validate)
		if err != nil {
			t.Fatalf("%s: Latest errored (wedged job): %v", label, err)
		}
		if verr := validate(got); verr != nil {
			t.Fatalf("%s: Latest returned an invalid manifest (epoch %d): %v\n%s", label, epoch, verr, got)
		}
		if epoch != 0 && epoch != l.Epoch {
			t.Fatalf("%s: Latest epoch = %d, want %d or the epoch-0 fallback", label, epoch, l.Epoch)
		}
	}

	for off := range good {
		data := append([]byte(nil), good...)
		data[off] ^= 0xff
		check(t, fmt.Sprintf("flip@%d", off), data)
	}
	for n := 0; n < len(good); n++ {
		check(t, fmt.Sprintf("trunc@%d", n), good[:n])
	}

	if s.reg.Counter("fleet.corrupt_state_files").Value() == 0 {
		t.Fatal("sweep never detected a corrupt manifest")
	}
}
