// Package fleet is the shared-filesystem work-distribution layer behind
// multi-node mmserved: any number of nodes observe the same fleet
// directory, claim jobs by atomically creating epoch-numbered lease files,
// renew their claims with heartbeats, and recover jobs whose holder died,
// hung or was partitioned by claiming the next epoch once the lease
// deadline passes.
//
// Safety rests on two primitives:
//
//   - Claims are O_CREATE|O_EXCL creations of epoch-named lease files
//     (lease.e<epoch>), so for any given epoch number exactly one node in
//     the fleet can ever win the claim, no matter how many race for it.
//   - Every piece of job state a lease holder writes (manifest, checkpoint,
//     result) carries its lease epoch in the file name. A resurrected
//     stale node can only ever write files named with its old epoch, which
//     are shadowed by the reclaimed epoch's files and ignored by every
//     reader — a stale node can never clobber a reclaimed job's state.
//
// The protocol, its failure matrix and the operational runbook are
// documented in docs/FLEET.md.
package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// FS is the filesystem surface the fleet store runs on. Production uses
// OSFS; tests thread chaosfs.FS underneath to inject torn writes, short
// writes, ENOSPC, EIO, rename failures and crash points into every
// durability path.
type FS interface {
	// MkdirAll creates a directory and its parents (nil if present).
	MkdirAll(path string) error
	// Mkdir creates one directory, failing if it already exists; it is the
	// atomic-exclusive primitive behind fleet-wide job-ID allocation.
	Mkdir(path string) error
	// ReadFile returns the file's contents.
	ReadFile(path string) ([]byte, error)
	// ReadDir returns the names of the directory's entries.
	ReadDir(path string) ([]string, error)
	// WriteFile writes data to a (possibly new) file and syncs it. It is
	// NOT atomic: callers wanting crash-atomicity write a temp name and
	// Rename.
	WriteFile(path string, data []byte) error
	// CreateExclusive atomically creates the file with O_CREATE|O_EXCL,
	// writes data and syncs. It fails with a fs.ErrExist-wrapped error when
	// the path already exists; exactly one concurrent caller can win.
	CreateExclusive(path string, data []byte) error
	// Rename atomically moves oldPath over newPath.
	Rename(oldPath, newPath string) error
	// Remove deletes the file.
	Remove(path string) error
	// SyncDir fsyncs a directory, making preceding creations, renames and
	// removals in it durable.
	SyncDir(path string) error
}

// OSFS is the real-filesystem implementation of FS.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Mkdir implements FS.
func (OSFS) Mkdir(path string) error { return os.Mkdir(path, 0o755) }

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]string, error) {
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

// WriteFile implements FS: write then fsync, so the data (though not
// necessarily the directory entry) is durable on return.
func (OSFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CreateExclusive implements FS.
func (OSFS) CreateExclusive(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// Rename implements FS.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// SyncDir implements FS.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// tmpSeq distinguishes concurrent temp files within one process; the node
// ID in the name separates processes sharing the fleet directory.
var tmpSeq atomic.Uint64

// WriteFileAtomic writes data to path with full crash-atomicity on fsys: a
// synced temp file in the destination directory is renamed over path and
// the directory itself is then fsynced, so after a crash the path holds
// either the old bytes or the new bytes, never a torn mix, and the rename
// itself cannot be lost to an unsynced directory.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, fmt.Sprintf(".%s.tmp%d.%d", filepath.Base(path), os.Getpid(), tmpSeq.Add(1)))
	if err := fsys.WriteFile(tmp, data); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}
