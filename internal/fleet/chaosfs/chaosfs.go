// Package chaosfs is an injectable filesystem fault layer for crash and
// corruption testing. It wraps any filesystem implementing the fleet FS
// method set and injects the classic durability failure modes into chosen
// operations: torn writes (a prefix lands, the call errors), silent short
// writes, ENOSPC, EIO, rename failures, and crash points that freeze the
// filesystem mid-sequence the way SIGKILL freezes a process. Tests thread
// it under the fleet store and the manifest/checkpoint writers to prove
// that every recovery path actually recovers.
//
// Faults are described by Rules: an operation class, an optional path
// regexp, a countdown selecting the Nth matching call, and the fault kind.
// The package also journals every operation it sees, so tests can assert
// ordering properties (e.g. "the parent directory is fsynced after the
// rename").
package chaosfs

import (
	"errors"
	"fmt"
	"regexp"
	"sync"
	"syscall"
)

// Inner is the filesystem chaosfs wraps — structurally identical to
// fleet.FS (declared locally so chaosfs depends on no other package and
// can also sit under the runctl checkpoint writer).
type Inner interface {
	MkdirAll(path string) error
	Mkdir(path string) error
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]string, error)
	WriteFile(path string, data []byte) error
	CreateExclusive(path string, data []byte) error
	Rename(oldPath, newPath string) error
	Remove(path string) error
	SyncDir(path string) error
}

// Op classifies filesystem operations for fault matching.
type Op string

// The operation classes.
const (
	OpWrite   Op = "write"   // WriteFile
	OpCreate  Op = "create"  // CreateExclusive
	OpRead    Op = "read"    // ReadFile
	OpReadDir Op = "readdir" // ReadDir
	OpRename  Op = "rename"  // Rename (path = destination)
	OpRemove  Op = "remove"  // Remove
	OpMkdir   Op = "mkdir"   // Mkdir and MkdirAll
	OpSyncDir Op = "syncdir" // SyncDir
	// OpAny matches every operation.
	OpAny Op = ""
)

// Kind is what an injected fault does.
type Kind int

// The fault kinds.
const (
	// KindErr fails the operation with Rule.Err (default EIO) after
	// KeepBytes of the payload have landed (default none). With
	// Err == syscall.ENOSPC this is the disk-full fault.
	KindErr Kind = iota
	// KindTorn writes a prefix of the payload (default half) and then
	// fails the call — the on-disk file is torn.
	KindTorn
	// KindShort silently writes only a prefix of the payload (default
	// half) and reports success — the lost tail is only discoverable by
	// reading back.
	KindShort
	// KindCrash freezes the filesystem: a prefix (default none) lands,
	// the call and every subsequent operation fail with ErrCrashed,
	// simulating a process killed at exactly this write.
	KindCrash
)

// ErrCrashed is returned by every operation after a KindCrash rule fires.
var ErrCrashed = errors.New("chaosfs: simulated crash (process is dead)")

// Rule selects an operation to sabotage.
type Rule struct {
	// Op restricts the rule to one operation class (OpAny: all).
	Op Op
	// Path, when non-nil, restricts the rule to matching paths.
	Path *regexp.Regexp
	// Countdown fires the rule on the Nth matching call (1 or 0 = first).
	Countdown int
	// Repeat keeps the rule firing on every later match as well.
	Repeat bool
	// Kind is the fault behaviour.
	Kind Kind
	// Err overrides the error returned by KindErr/KindTorn (default EIO).
	Err error
	// KeepBytes is how much of a write payload lands before the fault:
	// -1 means half, 0 means the kind's default (none for KindErr and
	// KindCrash, half for KindTorn and KindShort).
	KeepBytes int
}

func (r *Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return fmt.Errorf("chaosfs: injected %w", syscall.EIO)
}

func (r *Rule) keep(n int) int {
	k := r.KeepBytes
	if k == 0 && (r.Kind == KindTorn || r.Kind == KindShort) {
		k = -1
	}
	if k == -1 {
		k = n / 2
	}
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	return k
}

// Record is one journaled operation.
type Record struct {
	Op   Op
	Path string
	// Faulted reports that a rule fired on this call.
	Faulted bool
}

// FS is the fault-injecting filesystem. The zero value is not usable; use
// New.
type FS struct {
	inner Inner

	mu      sync.Mutex
	rules   []*Rule
	crashed bool
	journal []Record
}

// New wraps inner with an initially fault-free chaos layer.
func New(inner Inner) *FS { return &FS{inner: inner} }

// Inject adds a fault rule.
func (f *FS) Inject(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rc := r
	if rc.Countdown <= 0 {
		rc.Countdown = 1
	}
	f.rules = append(f.rules, &rc)
}

// Reset clears rules, the crash flag and the journal.
func (f *FS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules, f.crashed, f.journal = nil, false, nil
}

// Revive clears only the crash flag, simulating the process restarting on
// the same disk state.
func (f *FS) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
}

// Crashed reports whether a KindCrash rule has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Journal returns a copy of the operations seen so far.
func (f *FS) Journal() []Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Record(nil), f.journal...)
}

// Ops counts journaled operations of one class on paths matching re (nil
// matches all).
func (f *FS) Ops(op Op, re *regexp.Regexp) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, rec := range f.journal {
		if (op == OpAny || rec.Op == op) && (re == nil || re.MatchString(rec.Path)) {
			n++
		}
	}
	return n
}

// begin journals the operation and resolves whether a rule fires on it.
// It returns ErrCrashed once the filesystem is frozen.
func (f *FS) begin(op Op, path string) (*Rule, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	var fired *Rule
	for _, r := range f.rules {
		if r.Countdown == 0 && !r.Repeat {
			continue
		}
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != nil && !r.Path.MatchString(path) {
			continue
		}
		if r.Countdown > 0 {
			r.Countdown--
		}
		if r.Countdown == 0 {
			fired = r
			if fired.Kind == KindCrash {
				f.crashed = true
			}
			break
		}
	}
	f.journal = append(f.journal, Record{Op: op, Path: path, Faulted: fired != nil})
	return fired, nil
}

// MkdirAll implements the FS surface.
func (f *FS) MkdirAll(path string) error {
	r, err := f.begin(OpMkdir, path)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Kind == KindCrash {
			return ErrCrashed
		}
		return r.err()
	}
	return f.inner.MkdirAll(path)
}

// Mkdir implements the FS surface.
func (f *FS) Mkdir(path string) error {
	r, err := f.begin(OpMkdir, path)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Kind == KindCrash {
			return ErrCrashed
		}
		return r.err()
	}
	return f.inner.Mkdir(path)
}

// ReadFile implements the FS surface. KindTorn/KindShort deliver a
// truncated read.
func (f *FS) ReadFile(path string) ([]byte, error) {
	r, err := f.begin(OpRead, path)
	if err != nil {
		return nil, err
	}
	if r == nil {
		return f.inner.ReadFile(path)
	}
	switch r.Kind {
	case KindTorn, KindShort:
		data, err := f.inner.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return data[:r.keep(len(data))], nil
	case KindCrash:
		return nil, ErrCrashed
	case KindErr:
		return nil, r.err()
	default:
		return nil, r.err()
	}
}

// ReadDir implements the FS surface.
func (f *FS) ReadDir(path string) ([]string, error) {
	r, err := f.begin(OpReadDir, path)
	if err != nil {
		return nil, err
	}
	if r != nil {
		if r.Kind == KindCrash {
			return nil, ErrCrashed
		}
		return nil, r.err()
	}
	return f.inner.ReadDir(path)
}

// WriteFile implements the FS surface.
func (f *FS) WriteFile(path string, data []byte) error {
	r, err := f.begin(OpWrite, path)
	if err != nil {
		return err
	}
	if r == nil {
		return f.inner.WriteFile(path, data)
	}
	return f.faultWrite(r, path, data)
}

// CreateExclusive implements the FS surface.
func (f *FS) CreateExclusive(path string, data []byte) error {
	r, err := f.begin(OpCreate, path)
	if err != nil {
		return err
	}
	if r == nil {
		return f.inner.CreateExclusive(path, data)
	}
	// The exclusivity check must stay real even under fault: create the
	// file first (partial payload), so EEXIST semantics are preserved.
	if cerr := f.inner.CreateExclusive(path, data[:r.keep(len(data))]); cerr != nil {
		return cerr
	}
	switch r.Kind {
	case KindShort:
		return nil
	case KindCrash:
		return ErrCrashed
	case KindErr, KindTorn:
		return r.err()
	default:
		return r.err()
	}
}

// faultWrite applies a write-class fault: a prefix lands, then the kind
// decides the reported outcome.
func (f *FS) faultWrite(r *Rule, path string, data []byte) error {
	keep := r.keep(len(data))
	if keep > 0 || r.Kind == KindShort {
		if err := f.inner.WriteFile(path, data[:keep]); err != nil {
			return err
		}
	}
	switch r.Kind {
	case KindShort:
		return nil
	case KindCrash:
		return ErrCrashed
	case KindErr, KindTorn:
		return r.err()
	default:
		return r.err()
	}
}

// Rename implements the FS surface. A faulted rename leaves the source in
// place.
func (f *FS) Rename(oldPath, newPath string) error {
	r, err := f.begin(OpRename, newPath)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Kind == KindCrash {
			return ErrCrashed
		}
		return r.err()
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove implements the FS surface.
func (f *FS) Remove(path string) error {
	r, err := f.begin(OpRemove, path)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Kind == KindCrash {
			return ErrCrashed
		}
		return r.err()
	}
	return f.inner.Remove(path)
}

// SyncDir implements the FS surface.
func (f *FS) SyncDir(path string) error {
	r, err := f.begin(OpSyncDir, path)
	if err != nil {
		return err
	}
	if r != nil {
		if r.Kind == KindCrash {
			return ErrCrashed
		}
		return r.err()
	}
	return f.inner.SyncDir(path)
}
