package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"momosyn/internal/obs"
)

// Kind identifies one of the epoch-suffixed job state files.
type Kind int

// The job state kinds.
const (
	// KindManifest is the job's lifecycle manifest (manifest.e<E>.json).
	KindManifest Kind = iota
	// KindCheckpoint is the engine checkpoint (job.e<E>.ckpt).
	KindCheckpoint
	// KindResult is the rendered terminal result (result.e<E>.json).
	KindResult
)

// statePattern returns the filename prefix and suffix bracketing the epoch.
func (k Kind) statePattern() (prefix, suffix string) {
	switch k {
	case KindManifest:
		return "manifest.e", ".json"
	case KindCheckpoint:
		return "job.e", ".ckpt"
	case KindResult:
		return "result.e", ".json"
	default:
		return "unknown.e", ""
	}
}

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindManifest:
		return "manifest"
	case KindCheckpoint:
		return "checkpoint"
	case KindResult:
		return "result"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

const (
	leasePrefix = "lease.e"
	specFile    = "spec.json"
	cancelFile  = "cancel"
	epochDigits = 8
)

// ErrNoState reports that no valid state file of the requested kind exists.
var ErrNoState = errors.New("fleet: no valid state file")

// Config tunes one Store. Dir and Node are required.
type Config struct {
	// Dir is the shared fleet directory every node of the fleet points at.
	Dir string
	// Node is this node's unique identifier; it is embedded in leases and
	// the node heartbeat file.
	Node string
	// TTL is the lease time-to-live: a lease not renewed within TTL of its
	// last renewal is claimable by any node (default 5s).
	TTL time.Duration
	// FS is the filesystem the store runs on (default OSFS; tests inject
	// chaosfs).
	FS FS
	// Registry receives the fleet counters (created when nil).
	Registry *obs.Registry
	// Now is the clock (default time.Now; test seam).
	Now func() time.Time
}

// Store is one node's view of the shared fleet directory.
type Store struct {
	dir  string
	node string
	ttl  time.Duration
	fs   FS
	reg  *obs.Registry
	now  func() time.Time

	claims, steals, expiredLeases  *obs.Counter
	claimConflicts, corruptLeases  *obs.Counter
	renewals, releases             *obs.Counter
	fenceRejects, corruptStateFile *obs.Counter
}

// nodeRe constrains node IDs to filesystem- and JSON-safe names.
var validNodeID = func(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Open attaches to (creating if necessary) the shared fleet directory.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("fleet: Config.Dir is required")
	}
	if !validNodeID(cfg.Node) {
		return nil, fmt.Errorf("fleet: invalid node ID %q (want [A-Za-z0-9._-]{1,64})", cfg.Node)
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 5 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = OSFS{}
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Store{
		dir: cfg.Dir, node: cfg.Node, ttl: cfg.TTL,
		fs: cfg.FS, reg: cfg.Registry, now: cfg.Now,
	}
	for _, sub := range []string{s.jobsDir(), s.nodesDir()} {
		if err := s.fs.MkdirAll(sub); err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
	}
	s.claims = s.reg.Counter("fleet.claims")
	s.steals = s.reg.Counter("fleet.steals")
	s.expiredLeases = s.reg.Counter("fleet.expired_leases")
	s.claimConflicts = s.reg.Counter("fleet.claim_conflicts")
	s.corruptLeases = s.reg.Counter("fleet.corrupt_leases")
	s.renewals = s.reg.Counter("fleet.renewals")
	s.releases = s.reg.Counter("fleet.releases")
	s.fenceRejects = s.reg.Counter("fleet.fence_rejects")
	s.corruptStateFile = s.reg.Counter("fleet.corrupt_state_files")
	return s, nil
}

// Node returns this store's node ID.
func (s *Store) Node() string { return s.node }

// TTL returns the configured lease time-to-live.
func (s *Store) TTL() time.Duration { return s.ttl }

// Dir returns the fleet directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) jobsDir() string         { return filepath.Join(s.dir, "jobs") }
func (s *Store) nodesDir() string        { return filepath.Join(s.dir, "nodes") }
func (s *Store) jobDir(job string) string { return filepath.Join(s.jobsDir(), job) }

func (s *Store) leasePath(job string, epoch int) string {
	return filepath.Join(s.jobDir(job), fmt.Sprintf("%s%0*d", leasePrefix, epochDigits, epoch))
}

// StatePath returns the path of the kind's state file at the given epoch.
func (s *Store) StatePath(job string, kind Kind, epoch int) string {
	prefix, suffix := kind.statePattern()
	return filepath.Join(s.jobDir(job), fmt.Sprintf("%s%0*d%s", prefix, epochDigits, epoch, suffix))
}

// TracePath returns a per-epoch trace file path (observability output, not
// protocol state; the epoch in the name keeps a stale holder's trace from
// interleaving with its successor's).
func (s *Store) TracePath(job string, epoch int) string {
	return filepath.Join(s.jobDir(job), fmt.Sprintf("trace.e%0*d.jsonl", epochDigits, epoch))
}

// SpecPath returns the path of the job's immutable spec document.
func (s *Store) SpecPath(job string) string { return filepath.Join(s.jobDir(job), specFile) }

// parseEpoch parses the zero-padded epoch between prefix and suffix.
func parseEpoch(name, prefix, suffix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) < epochDigits {
		return 0, false
	}
	e, err := strconv.Atoi(digits)
	if err != nil || e < 0 {
		return 0, false
	}
	return e, true
}

func parseLeaseName(name string) (int, bool) {
	e, ok := parseEpoch(name, leasePrefix, "")
	if !ok || e == 0 {
		return 0, false // lease epochs start at 1; epoch 0 is the submitter's
	}
	return e, true
}

// parseStateName classifies an epoch-suffixed state file name.
func parseStateName(name string) (Kind, int, bool) {
	for _, k := range []Kind{KindManifest, KindCheckpoint, KindResult} {
		prefix, suffix := k.statePattern()
		if e, ok := parseEpoch(name, prefix, suffix); ok {
			return k, e, true
		}
	}
	return 0, 0, false
}

// ---- job identity and submission ----

// validFleetJobID matches the IDs the fleet mints (same shape as the
// single-node server's).
func validFleetJobID(id string) bool {
	if len(id) < 2 || len(id) > 32 || id[0] != 'j' {
		return false
	}
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// NewJobID allocates the next fleet-wide unique job ID by atomically
// creating its directory: Mkdir fails on collision, so concurrent
// submitters on different nodes each walk forward until they win a slot.
func (s *Store) NewJobID() (string, error) {
	jobs, err := s.Jobs()
	if err != nil {
		return "", err
	}
	next := 1
	for _, id := range jobs {
		if n, err := strconv.Atoi(id[1:]); err == nil && n >= next {
			next = n + 1
		}
	}
	for attempt := 0; attempt < 1000; attempt++ {
		id := fmt.Sprintf("j%06d", next)
		err := s.fs.Mkdir(s.jobDir(id))
		if err == nil {
			if serr := s.fs.SyncDir(s.jobsDir()); serr != nil {
				return "", fmt.Errorf("fleet: new job: %w", serr)
			}
			return id, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return "", fmt.Errorf("fleet: new job: %w", err)
		}
		next++
	}
	return "", errors.New("fleet: could not allocate a job ID after 1000 attempts")
}

// Jobs lists the fleet's job IDs in ascending order.
func (s *Store) Jobs() ([]string, error) {
	names, err := s.fs.ReadDir(s.jobsDir())
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	ids := names[:0]
	for _, name := range names {
		if validFleetJobID(name) {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// CreateJob publishes a freshly allocated job: the immutable spec document
// (exclusive create — a job is submitted once) and its epoch-0 queued
// manifest, written by the submitter before any lease exists. Epoch 0 is
// reserved for exactly this pre-claim write.
func (s *Store) CreateJob(job string, spec, manifest []byte) error {
	if err := s.fs.CreateExclusive(s.SpecPath(job), spec); err != nil {
		return fmt.Errorf("fleet: job %s spec: %w", job, err)
	}
	if err := s.fs.WriteFile(s.StatePath(job, KindManifest, 0), manifest); err != nil {
		return fmt.Errorf("fleet: job %s manifest: %w", job, err)
	}
	if err := s.fs.SyncDir(s.jobDir(job)); err != nil {
		return fmt.Errorf("fleet: job %s: %w", job, err)
	}
	return nil
}

// CreateDoneJob publishes a job that is born terminal — a submission
// answered from the content-addressed result cache. Like CreateJob it is
// the submitter's pre-claim write, so everything lands at epoch 0: the
// immutable spec, the rendered result, and last the terminal manifest
// (peers adopt a job from its manifest, so the result must already be in
// place when the manifest appears). No lease ever exists for such a job.
func (s *Store) CreateDoneJob(job string, spec, manifest, result []byte) error {
	if err := s.fs.CreateExclusive(s.SpecPath(job), spec); err != nil {
		return fmt.Errorf("fleet: job %s spec: %w", job, err)
	}
	if err := s.fs.WriteFile(s.StatePath(job, KindResult, 0), result); err != nil {
		return fmt.Errorf("fleet: job %s result: %w", job, err)
	}
	if err := s.fs.WriteFile(s.StatePath(job, KindManifest, 0), manifest); err != nil {
		return fmt.Errorf("fleet: job %s manifest: %w", job, err)
	}
	if err := s.fs.SyncDir(s.jobDir(job)); err != nil {
		return fmt.Errorf("fleet: job %s: %w", job, err)
	}
	return nil
}

// Spec returns the job's immutable spec document.
func (s *Store) Spec(job string) ([]byte, error) {
	data, err := s.fs.ReadFile(s.SpecPath(job))
	if err != nil {
		return nil, fmt.Errorf("fleet: job %s spec: %w", job, err)
	}
	return data, nil
}

// ---- epoch-suffixed state ----

// Epochs returns the epochs at which state files of the kind exist,
// descending (newest first). Epoch 0 (the submitter's pre-claim manifest)
// is included.
func (s *Store) Epochs(job string, kind Kind) ([]int, error) {
	names, err := s.fs.ReadDir(s.jobDir(job))
	if err != nil {
		return nil, fmt.Errorf("fleet: job %s: %w", job, err)
	}
	prefix, suffix := kind.statePattern()
	var epochs []int
	for _, name := range names {
		if e, ok := parseEpoch(name, prefix, suffix); ok {
			epochs = append(epochs, e)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(epochs)))
	return epochs, nil
}

// Latest returns the contents and epoch of the newest state file of the
// kind that the valid callback accepts (nil valid accepts any readable
// file). Corrupt or rejected epochs are skipped — detection degrades to
// the last good epoch instead of wedging the job — and counted. ErrNoState
// reports that no epoch survived.
func (s *Store) Latest(job string, kind Kind, valid func([]byte) error) ([]byte, int, error) {
	epochs, err := s.Epochs(job, kind)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range epochs {
		data, err := s.fs.ReadFile(s.StatePath(job, kind, e))
		if err != nil {
			s.corruptStateFile.Inc()
			continue
		}
		if valid != nil {
			if verr := valid(data); verr != nil {
				s.corruptStateFile.Inc()
				continue
			}
		}
		return data, e, nil
	}
	return nil, 0, fmt.Errorf("%w: job %s has no usable %s", ErrNoState, job, kind)
}

// LatestPath is Latest for consumers that read the file themselves (the
// runctl checkpoint loader): valid receives the candidate path.
func (s *Store) LatestPath(job string, kind Kind, valid func(path string) error) (string, int, error) {
	epochs, err := s.Epochs(job, kind)
	if err != nil {
		return "", 0, err
	}
	for _, e := range epochs {
		path := s.StatePath(job, kind, e)
		if valid != nil {
			if verr := valid(path); verr != nil {
				s.corruptStateFile.Inc()
				continue
			}
		}
		return path, e, nil
	}
	return "", 0, fmt.Errorf("%w: job %s has no usable %s", ErrNoState, job, kind)
}

// Write is the fenced state write: it verifies the lease epoch, writes the
// kind's file at this lease's epoch with full crash-atomicity, then
// verifies again. A pre-write ErrLeaseLost means nothing was written; a
// post-write ErrLeaseLost means the write landed but is (or will be)
// shadowed by a higher epoch — the caller must treat the operation as
// rejected and stop. Either way a stale holder cannot clobber the
// reclaimed job's state, because its epoch names different files.
func (l *Lease) Write(kind Kind, data []byte) error {
	return l.Fenced(func() error {
		return WriteFileAtomic(l.store.fs, l.store.StatePath(l.Job, kind, l.Epoch), data)
	})
}

// Fenced brackets an arbitrary state write (e.g. a streamed checkpoint
// save) with fence verification, as described at Write.
func (l *Lease) Fenced(write func() error) error {
	if err := l.Verify(); err != nil {
		return err
	}
	if err := write(); err != nil {
		return err
	}
	return l.Verify()
}

// StatePath returns the epoch-suffixed path this lease writes the kind to,
// for writers that stream to the file themselves (inside Fenced).
func (l *Lease) StatePath(kind Kind) string {
	return l.store.StatePath(l.Job, kind, l.Epoch)
}

// RemoveCheckpoints deletes the job's checkpoint files (best-effort, for
// terminal cleanup; failures are ignored — shadowing already makes stale
// checkpoints harmless).
func (s *Store) RemoveCheckpoints(job string) {
	epochs, err := s.Epochs(job, KindCheckpoint)
	if err != nil {
		return
	}
	for _, e := range epochs {
		_ = s.fs.Remove(s.StatePath(job, KindCheckpoint, e))
	}
}

// ---- cancellation markers ----

// RequestCancel drops the job's cancel marker; the lease holder observes
// it at its next heartbeat and stops the run. Requesting twice is fine.
func (s *Store) RequestCancel(job string) error {
	err := s.fs.CreateExclusive(filepath.Join(s.jobDir(job), cancelFile), []byte(s.node+"\n"))
	if err != nil && !errors.Is(err, fs.ErrExist) {
		return fmt.Errorf("fleet: cancel %s: %w", job, err)
	}
	return nil
}

// CancelRequested reports whether the job's cancel marker exists.
func (s *Store) CancelRequested(job string) bool {
	_, err := s.fs.ReadFile(filepath.Join(s.jobDir(job), cancelFile))
	return err == nil
}

// ---- node heartbeats ----

// nodeRecord is the JSON content of a node heartbeat file.
type nodeRecord struct {
	Node     string    `json:"node"`
	PID      int       `json:"pid"`
	Deadline time.Time `json:"deadline"`
}

// HeartbeatNode refreshes this node's liveness record. It is operational
// metadata (feeding /readyz fleet summaries), not part of the safety
// protocol — leases are.
func (s *Store) HeartbeatNode() error {
	rec := nodeRecord{Node: s.node, PID: os.Getpid(), Deadline: s.now().Add(s.ttl)}
	data, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("fleet: node heartbeat: %w", err)
	}
	if err := WriteFileAtomic(s.fs, filepath.Join(s.nodesDir(), s.node+".json"), data); err != nil {
		return fmt.Errorf("fleet: node heartbeat: %w", err)
	}
	return nil
}

// LiveNodes counts nodes whose heartbeat deadline has not passed.
func (s *Store) LiveNodes() (int, error) {
	names, err := s.fs.ReadDir(s.nodesDir())
	if err != nil {
		return 0, fmt.Errorf("fleet: nodes: %w", err)
	}
	live := 0
	for _, name := range names {
		data, err := s.fs.ReadFile(filepath.Join(s.nodesDir(), name))
		if err != nil {
			continue
		}
		var rec nodeRecord
		if json.Unmarshal(data, &rec) == nil && s.now().Before(rec.Deadline) {
			live++
		}
	}
	return live, nil
}
