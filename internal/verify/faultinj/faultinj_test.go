package faultinj_test

import (
	"os"
	"path/filepath"
	"testing"

	"momosyn/internal/model"
	"momosyn/internal/synth"
	"momosyn/internal/verify"
	"momosyn/internal/verify/faultinj"
)

// testSystem mirrors the known-good system of the verify package tests: a
// DVS software processor and a reconfigurable hardware PE on a shared bus,
// two modes, constrained transitions both ways.
func testSystem(t *testing.T) *model.System {
	t.Helper()
	b := model.NewBuilder("faultinj-test")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, DVS: true,
		Vmax: 3.3, Vt: 0.8, Levels: []float64{1.2, 1.8, 2.5, 3.3},
		StaticPower: 0.001})
	b.AddPE(model.PE{Name: "hw", Class: model.FPGA, Area: 500,
		ReconfigTime: 0.001, StaticPower: 0.002})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6, PowerActive: 0.005,
		StaticPower: 0.0005}, "cpu", "hw")
	b.AddType("tA", model.ImplSpec{PE: "cpu", Time: 0.001, Power: 0.005})
	b.AddType("tB",
		model.ImplSpec{PE: "cpu", Time: 0.002, Power: 0.004},
		model.ImplSpec{PE: "hw", Time: 0.0005, Power: 0.006, Area: 200})
	b.AddType("tC", model.ImplSpec{PE: "hw", Time: 0.001, Power: 0.008, Area: 150})

	b.BeginMode("m0", 0.6, 0.050)
	b.AddTask("a", "tA", 0)
	b.AddTask("b", "tB", 0)
	b.AddTask("c", "tC", 0)
	b.AddTask("d", "tA", 0)
	b.AddEdge("a", "b", 1000)
	b.AddEdge("b", "c", 500)
	b.AddEdge("a", "d", 0)

	b.BeginMode("m1", 0.4, 0.040)
	b.AddTask("x", "tB", 0)
	b.AddTask("y", "tC", 0)
	b.AddTask("z", "tA", 0)
	b.AddEdge("x", "y", 800)

	b.AddTransition("m0", "m1", 0.010)
	b.AddTransition("m1", "m0", 0.010)

	sys, err := b.Finish()
	if err != nil {
		t.Fatalf("testSystem: %v", err)
	}
	return sys
}

func evaluateGood(t *testing.T, sys *model.System) *synth.Evaluation {
	t.Helper()
	eval := &synth.Evaluator{Sys: sys, UseDVS: true, Weights: synth.DefaultWeights()}
	ev, err := eval.Evaluate(model.Mapping{{0, 0, 1, 0}, {1, 1, 0}})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if !ev.Feasible() {
		t.Fatal("seed mapping must be feasible")
	}
	return ev
}

// TestCertifierCatchesEveryFaultClass is the satellite table test: each
// fault class is injected into a fresh known-good result and the certifier
// must report exactly that violation kind and refuse certification.
func TestCertifierCatchesEveryFaultClass(t *testing.T) {
	sys := testSystem(t)
	for _, class := range faultinj.Classes() {
		t.Run(class, func(t *testing.T) {
			ev := evaluateGood(t, sys)

			// The unfaulted result certifies — the baseline of the test.
			if rep := synth.CertifyEvaluation(sys, ev, nil, verify.Options{}); !rep.Certified() {
				t.Fatalf("baseline not certified:\n%s", rep)
			}

			kind, err := faultinj.Apply(class, sys, ev)
			if err != nil {
				t.Fatalf("inject %q: %v", class, err)
			}
			rep := synth.CertifyEvaluation(sys, ev, nil, verify.Options{})
			if rep.Certified() {
				t.Fatalf("fault %q not detected:\n%s", class, rep)
			}
			if rep.Count(kind) == 0 {
				t.Errorf("fault %q must report kind %v, got:\n%s", class, kind, rep)
			}
		})
	}
}

func TestApplyUnknownClass(t *testing.T) {
	sys := testSystem(t)
	ev := evaluateGood(t, sys)
	if _, err := faultinj.Apply("no-such-class", sys, ev); err == nil {
		t.Error("unknown class must error")
	}
	if _, err := faultinj.Apply("energy", sys, nil); err == nil {
		t.Error("nil evaluation must error")
	}
}

func TestFileCorruptors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faultinj.TruncateFile(path, 3); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); string(data) != "abc" {
		t.Errorf("truncate left %q", data)
	}
	if err := faultinj.FlipByte(path, 1); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); data[1] != 'b'^0xff {
		t.Errorf("flip left %q", data)
	}
	if err := faultinj.FlipByte(path, 99); err == nil {
		t.Error("out-of-range flip must error")
	}
}
