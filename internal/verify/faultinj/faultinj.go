// Package faultinj deliberately corrupts synthesis results and on-disk
// artefacts so tests (and the MMSYNTH_FAULT_INJECT hook of mmsynth) can
// assert that the independent certifier catches every violation class and
// that the CLIs degrade with clean diagnostics instead of panics. It is a
// test harness: nothing here is reachable from a production code path
// unless explicitly invoked.
package faultinj

import (
	"fmt"
	"os"
	"sort"

	"momosyn/internal/model"
	"momosyn/internal/synth"
	"momosyn/internal/verify"
)

// Classes lists the supported fault classes in a stable order.
func Classes() []string {
	return []string{
		"precedence", "overlap", "deadline", "area",
		"transition", "energy", "voltage", "mapping",
	}
}

// Apply corrupts the evaluation in place according to the named fault
// class and returns the Violation kind the certifier must report for it.
// It returns an error when the class is unknown or the system offers no
// site for the fault (e.g. "transition" without a constrained transition
// touching an FPGA).
func Apply(class string, sys *model.System, ev *synth.Evaluation) (verify.Kind, error) {
	if ev == nil {
		return 0, fmt.Errorf("faultinj: nil evaluation")
	}
	switch class {
	case "precedence":
		return verify.KindPrecedence, breakPrecedence(sys, ev)
	case "overlap":
		return verify.KindOverlap, breakOverlap(sys, ev)
	case "deadline":
		return verify.KindDeadline, breakDeadline(sys, ev)
	case "area":
		return verify.KindArea, breakArea(sys, ev)
	case "transition":
		return verify.KindTransition, breakTransition(sys, ev)
	case "energy":
		return verify.KindEnergy, breakEnergy(ev)
	case "voltage":
		return verify.KindVoltage, breakVoltage(sys, ev)
	case "mapping":
		return verify.KindMapping, breakMapping(sys, ev)
	default:
		return 0, fmt.Errorf("faultinj: unknown fault class %q (known: %v)", class, Classes())
	}
}

// breakPrecedence pulls a dependent task's start to the middle of its
// predecessor's execution, preserving its duration.
func breakPrecedence(sys *model.System, ev *synth.Evaluation) error {
	for m, sc := range ev.Schedules {
		if sc == nil {
			continue
		}
		g := sys.App.Mode(model.ModeID(m)).Graph
		for ei := range sc.Comms {
			e := g.Edge(model.EdgeID(ei))
			src, dst := &sc.Tasks[e.Src], &sc.Tasks[e.Dst]
			if src.Finish <= 0 {
				continue
			}
			dur := dst.Finish - dst.Start
			dst.Start = src.Finish / 2
			dst.Finish = dst.Start + dur
			return nil
		}
	}
	return fmt.Errorf("faultinj: no precedence edge to break")
}

// breakOverlap forces two activities sharing a sequential resource to
// start at the same instant.
func breakOverlap(sys *model.System, ev *synth.Evaluation) error {
	type key struct {
		pe   model.PEID
		tt   model.TaskTypeID
		core int
	}
	for m, sc := range ev.Schedules {
		if sc == nil {
			continue
		}
		g := sys.App.Mode(model.ModeID(m)).Graph
		groups := make(map[key][]int)
		for ti := range sc.Tasks {
			pe := sys.Arch.PE(sc.Tasks[ti].PE)
			if pe == nil {
				continue
			}
			k := key{sc.Tasks[ti].PE, -1, -1}
			if pe.Class.IsHardware() {
				k = key{sc.Tasks[ti].PE, g.Task(model.TaskID(ti)).Type, sc.Tasks[ti].Core}
			}
			groups[k] = append(groups[k], ti)
		}
		for _, idxs := range groups {
			if len(idxs) < 2 {
				continue
			}
			sort.Slice(idxs, func(i, j int) bool {
				return sc.Tasks[idxs[i]].Start < sc.Tasks[idxs[j]].Start
			})
			a, b := &sc.Tasks[idxs[0]], &sc.Tasks[idxs[1]]
			dur := b.Finish - b.Start
			b.Start = a.Start
			b.Finish = b.Start + dur
			return nil
		}
	}
	return fmt.Errorf("faultinj: no two tasks share a sequential resource")
}

// breakDeadline pushes a task past its effective deadline, preserving its
// duration.
func breakDeadline(sys *model.System, ev *synth.Evaluation) error {
	for m, sc := range ev.Schedules {
		if sc == nil || len(sc.Tasks) == 0 {
			continue
		}
		mode := sys.App.Mode(model.ModeID(m))
		slot := &sc.Tasks[0]
		task := mode.Graph.Task(0)
		dur := slot.Finish - slot.Start
		slot.Finish = task.EffectiveDeadline(mode.Period) + 0.25*mode.Period
		slot.Start = slot.Finish - dur
		return nil
	}
	return fmt.Errorf("faultinj: no task slot to delay")
}

// breakArea inflates one hardware core pool far beyond the PE's budget.
func breakArea(sys *model.System, ev *synth.Evaluation) error {
	if ev.Alloc == nil {
		return fmt.Errorf("faultinj: evaluation carries no core allocation")
	}
	for _, pe := range sys.Arch.PEs {
		if !pe.Class.IsHardware() {
			continue
		}
		for _, tt := range sys.Lib.Types {
			im, ok := tt.ImplOn(pe.ID)
			if !ok || im.Area <= 0 {
				continue
			}
			ev.Alloc.SetInstances(0, pe.ID, tt.ID, pe.Area/im.Area+1)
			return nil
		}
	}
	return fmt.Errorf("faultinj: no hardware implementation to over-allocate")
}

// breakTransition inflates an FPGA working set so a constrained mode
// transition overruns its tTmax.
func breakTransition(sys *model.System, ev *synth.Evaluation) error {
	if ev.Alloc == nil {
		return fmt.Errorf("faultinj: evaluation carries no core allocation")
	}
	for _, tr := range sys.App.Transitions {
		if tr.MaxTime <= 0 {
			continue
		}
		for _, pe := range sys.Arch.PEs {
			if pe.Class != model.FPGA || pe.ReconfigTime <= 0 {
				continue
			}
			for _, tt := range sys.Lib.Types {
				if _, ok := tt.ImplOn(pe.ID); !ok {
					continue
				}
				need := int(tr.MaxTime/pe.ReconfigTime) + 2 +
					ev.Alloc.Instances(tr.From, pe.ID, tt.ID)
				ev.Alloc.SetInstances(tr.To, pe.ID, tt.ID, need)
				return nil
			}
		}
	}
	return fmt.Errorf("faultinj: no constrained transition over a reconfigurable PE")
}

// breakEnergy adds a whole joule to one recorded task energy — orders of
// magnitude above the µJ scale, so it escapes every epsilon.
func breakEnergy(ev *synth.Evaluation) error {
	for _, sc := range ev.Schedules {
		if sc == nil || len(sc.Tasks) == 0 {
			continue
		}
		sc.Tasks[0].Energy += 1.0
		return nil
	}
	ev.AvgPower += 1.0
	return nil
}

// breakVoltage corrupts a voltage selection: out of range on a DVS PE, or
// a spurious index on a non-DVS PE.
func breakVoltage(sys *model.System, ev *synth.Evaluation) error {
	for _, sc := range ev.Schedules {
		if sc == nil {
			continue
		}
		for ti := range sc.Tasks {
			pe := sys.Arch.PE(sc.Tasks[ti].PE)
			if pe == nil {
				continue
			}
			if pe.DVS {
				sc.Tasks[ti].VoltIdx = len(pe.Levels) + 5
			} else {
				sc.Tasks[ti].VoltIdx = 0
			}
			return nil
		}
	}
	return fmt.Errorf("faultinj: no task slot to corrupt")
}

// breakMapping retargets a task to a PE without an implementation of its
// type (falling back to an out-of-range PE ID when every PE implements
// every type).
func breakMapping(sys *model.System, ev *synth.Evaluation) error {
	for m, mode := range sys.App.Modes {
		for ti, task := range mode.Graph.Tasks {
			for _, pe := range sys.Arch.PEs {
				if _, ok := sys.Lib.Type(task.Type).ImplOn(pe.ID); !ok {
					ev.Mapping[m][ti] = pe.ID
					return nil
				}
			}
		}
	}
	if len(ev.Mapping) > 0 && len(ev.Mapping[0]) > 0 {
		ev.Mapping[0][0] = model.PEID(len(sys.Arch.PEs) + 3)
		return nil
	}
	return fmt.Errorf("faultinj: no task mapping to corrupt")
}

// TruncateFile cuts the file to n bytes (corrupting checkpoints and spec
// files for the degradation tests).
func TruncateFile(path string, n int64) error {
	return os.Truncate(path, n)
}

// FlipByte XOR-flips every bit of the byte at the given offset.
func FlipByte(path string, off int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 || off >= int64(len(data)) {
		return fmt.Errorf("faultinj: offset %d outside file of %d bytes", off, len(data))
	}
	data[off] ^= 0xff
	return os.WriteFile(path, data, 0o644)
}
