// Package verify independently certifies synthesis results. It re-derives
// everything the optimiser claims about an implementation — schedule
// legality per mode (precedence, exclusive use of sequential resources,
// containment in the hyper-period), deadline satisfaction, per-PE area
// budgets of the allocated cores, mode-transition time limits, and an
// independent recomputation of the Eq. (1) probability-weighted average
// power from the voltage schedule — using only the specification and the
// energy model, never the scheduler or evaluator code paths that produced
// the result. A regression in scheduling, allocation or voltage scaling
// therefore cannot certify its own wrong numbers.
//
// Violations are typed: constraint-class kinds (deadline, containment,
// area, transition time) describe a design that is honestly infeasible and
// are tolerated when the solution does not claim feasibility; every other
// kind is an internal inconsistency and always fails certification. See
// docs/VERIFY.md.
package verify

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"momosyn/internal/energy"
	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// Kind classifies one certification violation.
type Kind int

const (
	// KindStructure: the solution is malformed — wrong slice shapes,
	// non-finite times, slots disagreeing with the mapping or library.
	KindStructure Kind = iota
	// KindMapping: a task is mapped to an unknown PE or to a PE without an
	// implementation of its type.
	KindMapping
	// KindRouting: a communication claims a link that does not connect its
	// endpoint PEs, a transfer time disagreeing with the link bandwidth, or
	// an unroutable flag that contradicts the architecture.
	KindRouting
	// KindPrecedence: an activity starts before its predecessor finishes.
	KindPrecedence
	// KindOverlap: two activities overlap on a sequential resource (a
	// software PE, one hardware core instance, or a communication link).
	KindOverlap
	// KindVoltage: a voltage selection is out of range, inconsistent with
	// the PE's DVS capability, or disagrees with the execution time.
	KindVoltage
	// KindEnergy: a recomputed energy or power disagrees with the recorded
	// value beyond the configured epsilon.
	KindEnergy
	// KindReport: a reported summary quantity (feasibility claim,
	// transition time) disagrees with the recomputation.
	KindReport
	// KindContainment: an activity extends beyond the mode hyper-period.
	KindContainment
	// KindDeadline: a task finishes after its effective deadline.
	KindDeadline
	// KindArea: allocated cores exceed a PE's silicon area budget.
	KindArea
	// KindTransition: a recomputed mode-transition time exceeds tTmax.
	KindTransition
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindStructure:
		return "structure"
	case KindMapping:
		return "mapping"
	case KindRouting:
		return "routing"
	case KindPrecedence:
		return "precedence"
	case KindOverlap:
		return "overlap"
	case KindVoltage:
		return "voltage"
	case KindEnergy:
		return "energy"
	case KindReport:
		return "report"
	case KindContainment:
		return "containment"
	case KindDeadline:
		return "deadline"
	case KindArea:
		return "area"
	case KindTransition:
		return "transition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Constraint reports whether the kind describes a violated design
// constraint rather than an internal inconsistency. Constraint violations
// are tolerated when the solution does not claim feasibility;
// inconsistencies never are.
func (k Kind) Constraint() bool {
	switch k {
	case KindContainment, KindDeadline, KindArea, KindTransition:
		return true
	default:
		// Every other kind is an internal inconsistency, never tolerable.
		return false
	}
}

// Violation is one certification failure.
type Violation struct {
	Kind Kind
	// Mode is the mode the violation occurred in; -1 when the violation is
	// not mode-specific (transition times, aggregate power).
	Mode model.ModeID
	// Detail describes the failure with entity names and quantities.
	Detail string
	// Got and Want carry the offending quantities where meaningful.
	Got, Want float64
}

// String renders the violation for reports and error messages.
func (v Violation) String() string {
	if v.Mode >= 0 {
		return fmt.Sprintf("[%s] mode %d: %s", v.Kind, v.Mode, v.Detail)
	}
	return fmt.Sprintf("[%s] %s", v.Kind, v.Detail)
}

// Default tolerances of Options.
const (
	// DefaultPowerEpsilon is the relative tolerance for energy and power
	// agreement.
	DefaultPowerEpsilon = 1e-6
	// DefaultTimeEpsilon is the timing slack tolerance as a fraction of the
	// mode hyper-period.
	DefaultTimeEpsilon = 1e-9
)

// Options tunes the certifier. The zero value selects the defaults.
type Options struct {
	// PowerEpsilon is the relative tolerance applied when comparing
	// recomputed energies and powers against recorded values (default
	// DefaultPowerEpsilon). Recorded and recomputed values follow the same
	// closed-form model, so disagreement beyond a tiny epsilon indicates a
	// genuine accounting error, not float noise.
	PowerEpsilon float64
	// TimeEpsilon is the slack tolerated in timing inequalities, as a
	// fraction of the mode hyper-period (default DefaultTimeEpsilon).
	TimeEpsilon float64
}

func (o Options) withDefaults() Options {
	if o.PowerEpsilon <= 0 {
		o.PowerEpsilon = DefaultPowerEpsilon
	}
	if o.TimeEpsilon <= 0 {
		o.TimeEpsilon = DefaultTimeEpsilon
	}
	return o
}

// Solution is the implementation under certification, described purely by
// data: the certifier never calls back into the code that produced it.
type Solution struct {
	// Mapping assigns every task of every mode to a PE.
	Mapping model.Mapping
	// Schedules holds one schedule per mode, indexed by ModeID.
	Schedules []*sched.Schedule
	// Cores is the hardware core allocation backing the schedules. Nil
	// skips the area and transition-time checks (nothing is claimed).
	Cores sched.CoreProvider
	// ReportedPower is the claimed Eq. (1) probability-weighted average
	// power the certifier must reproduce.
	ReportedPower float64
	// ReportedModePowers, when non-nil, is checked per mode against the
	// recomputed dynamic energy and static power (indexed by ModeID).
	ReportedModePowers []energy.ModePower
	// ReportedTransTimes, when non-nil, is checked against the recomputed
	// transition times (indexed parallel to App.Transitions).
	ReportedTransTimes []float64
	// Probs is the probability vector ReportedPower was computed under;
	// nil selects the specification's probabilities.
	Probs []float64
	// ClaimFeasible is the solution's own feasibility claim. A solution
	// claiming feasibility must certify with zero violations; one claiming
	// infeasibility must exhibit at least one constraint violation (or an
	// unroutable communication) and no inconsistency.
	ClaimFeasible bool
}

// Report is the structured certification outcome.
type Report struct {
	Violations []Violation
	// Checks counts the individual assertions evaluated.
	Checks int
	// ClaimFeasible echoes Solution.ClaimFeasible.
	ClaimFeasible bool
}

// add records a violation.
func (r *Report) add(k Kind, mode model.ModeID, got, want float64, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Kind: k, Mode: mode, Got: got, Want: want,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Count returns the number of violations of the given kind.
func (r *Report) Count(k Kind) int {
	n := 0
	for _, v := range r.Violations {
		if v.Kind == k {
			n++
		}
	}
	return n
}

// constraintOnly reports whether every violation is constraint-class.
func (r *Report) constraintOnly() bool {
	for _, v := range r.Violations {
		if !v.Kind.Constraint() {
			return false
		}
	}
	return true
}

// Certified reports whether the solution passed: no violations at all when
// it claims feasibility, and at most constraint-class violations (an
// honestly infeasible design) when it does not.
func (r *Report) Certified() bool {
	if len(r.Violations) == 0 {
		return true
	}
	return !r.ClaimFeasible && r.constraintOnly()
}

// String renders a multi-line summary of the report.
func (r *Report) String() string {
	var b strings.Builder
	if r.Certified() {
		fmt.Fprintf(&b, "certified (%d checks", r.Checks)
		if n := len(r.Violations); n > 0 {
			fmt.Fprintf(&b, ", %d constraint violation(s) consistent with the infeasibility claim", n)
		}
		b.WriteString(")")
		return b.String()
	}
	fmt.Fprintf(&b, "NOT certified (%d checks, %d violation(s)):", r.Checks, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// certifier carries the shared state of one Certify run.
type certifier struct {
	sys  *model.System
	sol  Solution
	opts Options
	r    *Report

	// dynamic and static are the per-mode recomputed aggregates feeding the
	// Eq. (1) check.
	dynamic []float64
	static  []float64
	// unroutable counts communications verified to have no connecting link.
	unroutable int
}

// Certify independently re-derives every claim of the solution against the
// system specification and returns the structured report.
func Certify(s *model.System, sol Solution, opts Options) *Report {
	c := &certifier{
		sys:  s,
		sol:  sol,
		opts: opts.withDefaults(),
		r:    &Report{ClaimFeasible: sol.ClaimFeasible},
	}
	if !c.structure() {
		return c.r
	}
	c.dynamic = make([]float64, len(s.App.Modes))
	c.static = make([]float64, len(s.App.Modes))
	c.mapping()
	for m := range s.App.Modes {
		c.mode(model.ModeID(m))
	}
	c.area()
	c.transitions()
	c.power()
	c.claim()
	return c.r
}

// feq compares two values with relative tolerance eps (a vanishing
// absolute guard keeps exact zeros comparable).
func feq(a, b, eps float64) bool {
	return model.ApproxEqual(a, b, eps)
}

// check counts one assertion; pass-through of its outcome.
func (c *certifier) check(ok bool) bool {
	c.r.Checks++
	return ok
}

// structure validates the shapes of the solution. Deeper checks index
// freely into the validated slices, so any shape error stops the run.
func (c *certifier) structure() bool {
	s, sol, r := c.sys, c.sol, c.r
	nModes := len(s.App.Modes)
	ok := true
	if !c.check(len(sol.Mapping) == nModes) {
		r.add(KindStructure, -1, float64(len(sol.Mapping)), float64(nModes),
			"mapping covers %d modes, specification has %d", len(sol.Mapping), nModes)
		ok = false
	}
	if !c.check(len(sol.Schedules) == nModes) {
		r.add(KindStructure, -1, float64(len(sol.Schedules)), float64(nModes),
			"solution carries %d schedules, specification has %d modes", len(sol.Schedules), nModes)
		ok = false
	}
	if !c.check(sol.Probs == nil || len(sol.Probs) == nModes) {
		r.add(KindStructure, -1, float64(len(sol.Probs)), float64(nModes),
			"probability vector has %d entries, specification has %d modes", len(sol.Probs), nModes)
		ok = false
	}
	if !c.check(sol.ReportedModePowers == nil || len(sol.ReportedModePowers) == nModes) {
		r.add(KindStructure, -1, float64(len(sol.ReportedModePowers)), float64(nModes),
			"reported mode powers have %d entries, specification has %d modes", len(sol.ReportedModePowers), nModes)
		ok = false
	}
	if !c.check(sol.ReportedTransTimes == nil || len(sol.ReportedTransTimes) == len(s.App.Transitions)) {
		r.add(KindStructure, -1, float64(len(sol.ReportedTransTimes)), float64(len(s.App.Transitions)),
			"reported transition times have %d entries, specification has %d transitions",
			len(sol.ReportedTransTimes), len(s.App.Transitions))
		ok = false
	}
	if !ok {
		return false
	}
	for m, mode := range s.App.Modes {
		g := mode.Graph
		if !c.check(len(sol.Mapping[m]) == len(g.Tasks)) {
			r.add(KindStructure, model.ModeID(m), float64(len(sol.Mapping[m])), float64(len(g.Tasks)),
				"mapping row has %d entries, mode %q has %d tasks", len(sol.Mapping[m]), mode.Name, len(g.Tasks))
			ok = false
		}
		sc := sol.Schedules[m]
		if !c.check(sc != nil) {
			r.add(KindStructure, model.ModeID(m), 0, 0, "mode %q has no schedule", mode.Name)
			ok = false
			continue
		}
		if !c.check(sc.Mode == model.ModeID(m)) {
			r.add(KindStructure, model.ModeID(m), float64(sc.Mode), float64(m),
				"schedule of mode %q is labelled mode %d", mode.Name, sc.Mode)
		}
		if !c.check(len(sc.Tasks) == len(g.Tasks) && len(sc.Comms) == len(g.Edges)) {
			r.add(KindStructure, model.ModeID(m), 0, 0,
				"schedule of mode %q covers %d tasks / %d comms, graph has %d / %d",
				mode.Name, len(sc.Tasks), len(sc.Comms), len(g.Tasks), len(g.Edges))
			ok = false
			continue
		}
		for ti := range sc.Tasks {
			if !c.check(sc.Tasks[ti].Task == model.TaskID(ti)) {
				r.add(KindStructure, model.ModeID(m), float64(sc.Tasks[ti].Task), float64(ti),
					"mode %q slot %d carries task ID %d", mode.Name, ti, sc.Tasks[ti].Task)
			}
		}
	}
	return ok
}

// mapping checks every task assignment against the architecture and the
// technology library.
func (c *certifier) mapping() {
	s := c.sys
	for m, mode := range s.App.Modes {
		for ti, task := range mode.Graph.Tasks {
			pe := c.sol.Mapping[m][ti]
			if !c.check(s.Arch.PE(pe) != nil) {
				c.r.add(KindMapping, model.ModeID(m), float64(pe), 0,
					"task %q mapped to unknown PE %d", task.Name, pe)
				continue
			}
			_, okImpl := s.Lib.Type(task.Type).ImplOn(pe)
			if !c.check(okImpl) {
				c.r.add(KindMapping, model.ModeID(m), float64(pe), 0,
					"task %q (type %q) mapped to PE %q which has no implementation of the type",
					task.Name, s.Lib.Type(task.Type).Name, s.Arch.PE(pe).Name)
			}
		}
	}
}

// impl returns the library implementation backing a task slot, when the
// mapping admits one.
func (c *certifier) impl(m model.ModeID, ti model.TaskID) (model.Impl, *model.PE, bool) {
	s := c.sys
	task := s.App.Mode(m).Graph.Task(ti)
	peID := c.sol.Mapping[m][ti]
	pe := s.Arch.PE(peID)
	if pe == nil {
		return model.Impl{}, nil, false
	}
	im, ok := s.Lib.Type(task.Type).ImplOn(peID)
	return im, pe, ok
}

// timingActive reports whether a comm slot occupies link time (intra-PE
// and zero-byte transfers carry no meaningful interval, and voltage
// scaling does not maintain their timestamps).
func timingActive(cs *sched.CommSlot) bool {
	return cs.Routed && cs.CL != model.NoCL && cs.Time > 0
}

// mode certifies one mode's schedule: slot sanity, voltage selections,
// per-slot energy recomputation, precedence, resource exclusivity,
// containment and deadlines, and accumulates the mode's energy aggregates.
func (c *certifier) mode(m model.ModeID) {
	s := c.sys
	mode := s.App.Mode(m)
	g := mode.Graph
	sc := c.sol.Schedules[m]
	eps := c.opts.PowerEpsilon
	tol := c.opts.TimeEpsilon * mode.Period

	sane := make([]bool, len(sc.Tasks))
	for ti := range sc.Tasks {
		slot := &sc.Tasks[ti]
		task := g.Task(model.TaskID(ti))
		if !c.check(finite(slot.Start) && finite(slot.Finish) && finite(slot.Energy)) {
			c.r.add(KindStructure, m, 0, 0, "task %q slot has non-finite times or energy", task.Name)
			continue
		}
		if !c.check(slot.Start >= -tol && slot.Finish >= slot.Start-tol) {
			c.r.add(KindStructure, m, slot.Start, 0,
				"task %q scheduled over invalid interval [%g, %g]", task.Name, slot.Start, slot.Finish)
			continue
		}
		sane[ti] = true

		if !c.check(slot.PE == c.sol.Mapping[m][ti]) {
			c.r.add(KindStructure, m, float64(slot.PE), float64(c.sol.Mapping[m][ti]),
				"task %q scheduled on PE %d but mapped to PE %d", task.Name, slot.PE, c.sol.Mapping[m][ti])
			continue
		}
		im, pe, okImpl := c.impl(m, model.TaskID(ti))

		// Containment and deadline hold regardless of the energy model.
		if !c.check(slot.Finish <= mode.Period+tol) {
			c.r.add(KindContainment, m, slot.Finish, mode.Period,
				"task %q finishes at %g, beyond the hyper-period %g", task.Name, slot.Finish, mode.Period)
		}
		if d := task.EffectiveDeadline(mode.Period); !c.check(slot.Finish <= d+tol) {
			c.r.add(KindDeadline, m, slot.Finish, d,
				"task %q finishes at %g, past its effective deadline %g", task.Name, slot.Finish, d)
		}
		if pe == nil || !okImpl {
			continue // already a KindMapping violation; no basis for more
		}

		// Core index discipline.
		if pe.Class.IsSoftware() {
			if !c.check(slot.Core == -1) {
				c.r.add(KindStructure, m, float64(slot.Core), -1,
					"task %q on software PE %q carries core index %d", task.Name, pe.Name, slot.Core)
			}
		} else {
			n := 1
			if c.sol.Cores != nil {
				if k := c.sol.Cores.Instances(m, pe.ID, task.Type); k > n {
					n = k
				}
			} else {
				n = math.MaxInt32
			}
			if !c.check(slot.Core >= 0 && slot.Core < n) {
				c.r.add(KindOverlap, m, float64(slot.Core), float64(n),
					"task %q uses core %d of PE %q but only %d instance(s) of type %q are allocated",
					task.Name, slot.Core, pe.Name, n, s.Lib.Type(task.Type).Name)
			}
		}

		// Voltage selection discipline.
		if pe.DVS {
			if !c.check(slot.VoltIdx >= 0 && slot.VoltIdx < len(pe.Levels)) {
				c.r.add(KindVoltage, m, float64(slot.VoltIdx), float64(len(pe.Levels)),
					"task %q on DVS PE %q selects voltage index %d of %d levels",
					task.Name, pe.Name, slot.VoltIdx, len(pe.Levels))
				continue
			}
		} else if !c.check(slot.VoltIdx == -1) {
			c.r.add(KindVoltage, m, float64(slot.VoltIdx), -1,
				"task %q on non-DVS PE %q carries voltage index %d", task.Name, pe.Name, slot.VoltIdx)
			continue
		}

		// Execution time and energy, recomputed from the library.
		dur := slot.Finish - slot.Start
		switch {
		case !pe.DVS:
			if !c.check(feq(dur, im.Time, eps)) {
				c.r.add(KindStructure, m, dur, im.Time,
					"task %q executes for %g, library impl takes %g", task.Name, dur, im.Time)
			}
			if want := im.Power * im.Time; !c.check(feq(slot.Energy, want, eps)) {
				c.r.add(KindEnergy, m, slot.Energy, want,
					"task %q records energy %g, library impl dissipates %g", task.Name, slot.Energy, want)
			}
		case pe.Class.IsSoftware():
			v := pe.Levels[slot.VoltIdx]
			if want := energy.ScaledTime(im.Time, v, pe.Vmax, pe.Vt); !c.check(feq(dur, want, eps)) {
				c.r.add(KindVoltage, m, dur, want,
					"task %q executes for %g, but takes %g at the selected %gV", task.Name, dur, want, v)
			}
			if want := energy.TaskEnergy(im.Power, im.Time, v, pe.Vmax); !c.check(feq(slot.Energy, want, eps)) {
				c.r.add(KindEnergy, m, slot.Energy, want,
					"task %q records energy %g, recomputed %g at %gV", task.Name, slot.Energy, want, v)
			}
		default:
			// DVS hardware: the Fig. 5 transformation folds core executions
			// into shared-supply segments; the slot keeps the lowest level
			// and the summed per-segment energy, so only bounds are exact.
			lo := energy.TaskEnergy(im.Power, im.Time, pe.Levels[slot.VoltIdx], pe.Vmax)
			hi := im.Power * im.Time
			if !c.check(slot.Energy >= lo*(1-eps)-1e-21 && slot.Energy <= hi*(1+eps)+1e-21) {
				c.r.add(KindEnergy, m, slot.Energy, hi,
					"task %q on DVS hardware %q records energy %g outside [%g, %g]",
					task.Name, pe.Name, slot.Energy, lo, hi)
			}
			if !c.check(dur >= im.Time*(1-eps)-tol) {
				c.r.add(KindVoltage, m, dur, im.Time,
					"task %q on DVS hardware %q executes for %g, less than the nominal %g",
					task.Name, pe.Name, dur, im.Time)
			}
		}
	}

	// Communications: routing, bandwidth-derived times, energies.
	unroutableHere := 0
	for ei := range sc.Comms {
		cs := &sc.Comms[ei]
		e := g.Edge(model.EdgeID(ei))
		if !c.check(finite(cs.Start) && finite(cs.Finish) && finite(cs.Time) && finite(cs.Energy)) {
			c.r.add(KindStructure, m, 0, 0, "edge %d slot has non-finite times or energy", ei)
			continue
		}
		src, dst := c.sol.Mapping[m][e.Src], c.sol.Mapping[m][e.Dst]
		if s.Arch.PE(src) == nil || s.Arch.PE(dst) == nil {
			continue // already a KindMapping violation
		}
		switch {
		case src == dst:
			if !c.check(cs.Routed && cs.CL == model.NoCL) {
				c.r.add(KindRouting, m, float64(cs.CL), float64(model.NoCL),
					"intra-PE edge %d carries link %d", ei, cs.CL)
			}
			if !c.check(feq(cs.Energy, 0, eps)) {
				c.r.add(KindEnergy, m, cs.Energy, 0, "intra-PE edge %d records energy %g", ei, cs.Energy)
			}
		case !cs.Routed:
			unroutableHere++
			if !c.check(len(s.Arch.LinksBetween(src, dst)) == 0) {
				c.r.add(KindRouting, m, float64(src), float64(dst),
					"edge %d claims PE %q and PE %q are unconnected, but a link exists",
					ei, s.Arch.PE(src).Name, s.Arch.PE(dst).Name)
			}
			if !c.check(feq(cs.Energy, 0, eps)) {
				c.r.add(KindEnergy, m, cs.Energy, 0, "unroutable edge %d records energy %g", ei, cs.Energy)
			}
		default:
			cl := s.Arch.CL(cs.CL)
			if !c.check(cl != nil && cl.Connects(src, dst)) {
				c.r.add(KindRouting, m, float64(cs.CL), 0,
					"edge %d routed over link %d which does not connect PE %q and PE %q",
					ei, cs.CL, s.Arch.PE(src).Name, s.Arch.PE(dst).Name)
				continue
			}
			if want := energy.CommTime(e.Bytes, cl); !c.check(feq(cs.Time, want, eps)) {
				c.r.add(KindRouting, m, cs.Time, want,
					"edge %d transfers %g bytes over %q in %g, bandwidth implies %g",
					ei, e.Bytes, cl.Name, cs.Time, want)
			}
			if want := energy.CommEnergy(cl.PowerActive, cs.Time); !c.check(feq(cs.Energy, want, eps)) {
				c.r.add(KindEnergy, m, cs.Energy, want,
					"edge %d records energy %g, link power implies %g", ei, cs.Energy, want)
			}
			if timingActive(cs) {
				if !c.check(feq(cs.Finish-cs.Start, cs.Time, eps)) {
					c.r.add(KindStructure, m, cs.Finish-cs.Start, cs.Time,
						"edge %d occupies interval of length %g but transfers for %g",
						ei, cs.Finish-cs.Start, cs.Time)
				}
				if !c.check(cs.Finish <= mode.Period+tol) {
					c.r.add(KindContainment, m, cs.Finish, mode.Period,
						"edge %d finishes at %g, beyond the hyper-period %g", ei, cs.Finish, mode.Period)
				}
			}
		}
	}
	if !c.check(sc.Unroutable == unroutableHere) {
		c.r.add(KindStructure, m, float64(sc.Unroutable), float64(unroutableHere),
			"schedule counts %d unroutable communications, %d slots are unrouted",
			sc.Unroutable, unroutableHere)
	}
	c.unroutable += unroutableHere

	// Precedence: every edge orders source task, message and sink task.
	for ei := range sc.Comms {
		cs := &sc.Comms[ei]
		e := g.Edge(model.EdgeID(ei))
		if !sane[e.Src] || !sane[e.Dst] {
			continue
		}
		srcSlot, dstSlot := &sc.Tasks[e.Src], &sc.Tasks[e.Dst]
		if timingActive(cs) {
			if !c.check(cs.Start >= srcSlot.Finish-tol && dstSlot.Start >= cs.Finish-tol) {
				c.r.add(KindPrecedence, m, dstSlot.Start, cs.Finish,
					"edge %q->%q violated: src finishes %g, message [%g, %g], dst starts %g",
					g.Task(e.Src).Name, g.Task(e.Dst).Name,
					srcSlot.Finish, cs.Start, cs.Finish, dstSlot.Start)
			}
		} else if !c.check(dstSlot.Start >= srcSlot.Finish-tol) {
			c.r.add(KindPrecedence, m, dstSlot.Start, srcSlot.Finish,
				"edge %q->%q violated: src finishes %g, dst starts %g",
				g.Task(e.Src).Name, g.Task(e.Dst).Name, srcSlot.Finish, dstSlot.Start)
		}
	}

	c.exclusivity(m, sane)

	// Aggregate the mode's energy and static power for the Eq. (1) check.
	dyn := 0.0
	for ti := range sc.Tasks {
		dyn += sc.Tasks[ti].Energy
	}
	for ei := range sc.Comms {
		dyn += sc.Comms[ei].Energy
	}
	c.dynamic[m] = dyn

	activePE := make([]bool, len(s.Arch.PEs))
	for pe := range activePE {
		activePE[pe] = c.sol.Mapping.UsesPE(m, model.PEID(pe))
	}
	activeCL := make([]bool, len(s.Arch.CLs))
	for ei := range sc.Comms {
		if timingActive(&sc.Comms[ei]) {
			activeCL[sc.Comms[ei].CL] = true
		}
	}
	c.static[m] = energy.StaticPower(s.Arch, activePE, activeCL)
}

// exclusivity asserts that no two activities overlap on a sequential
// resource: a software PE, one hardware core instance, or a link.
func (c *certifier) exclusivity(m model.ModeID, sane []bool) {
	s := c.sys
	mode := s.App.Mode(m)
	sc := c.sol.Schedules[m]
	tol := c.opts.TimeEpsilon * mode.Period

	type resKey struct {
		pe   model.PEID
		tt   model.TaskTypeID // -1 on software PEs
		core int              // -1 on software PEs
	}
	type interval struct {
		start, finish float64
		name          string
	}
	groups := make(map[resKey][]interval)
	var keys []resKey
	for ti := range sc.Tasks {
		if !sane[ti] {
			continue
		}
		slot := &sc.Tasks[ti]
		pe := s.Arch.PE(slot.PE)
		if pe == nil {
			continue
		}
		k := resKey{slot.PE, -1, -1}
		if pe.Class.IsHardware() {
			k = resKey{slot.PE, mode.Graph.Task(model.TaskID(ti)).Type, slot.Core}
		}
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], interval{slot.Start, slot.Finish, mode.Graph.Task(model.TaskID(ti)).Name})
	}
	clGroups := make(map[model.CLID][]interval)
	var clIDs []model.CLID
	for ei := range sc.Comms {
		cs := &sc.Comms[ei]
		if !timingActive(cs) {
			continue
		}
		if _, seen := clGroups[cs.CL]; !seen {
			clIDs = append(clIDs, cs.CL)
		}
		clGroups[cs.CL] = append(clGroups[cs.CL], interval{cs.Start, cs.Finish, fmt.Sprintf("edge %d", ei)})
	}

	overlapScan := func(ivs []interval, resource string) {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			prev, cur := ivs[i-1], ivs[i]
			if !c.check(cur.start >= prev.finish-tol) {
				c.r.add(KindOverlap, m, cur.start, prev.finish,
					"%s and %s overlap on %s ([%g, %g] vs [%g, %g])",
					prev.name, cur.name, resource, prev.start, prev.finish, cur.start, cur.finish)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pe != b.pe {
			return a.pe < b.pe
		}
		if a.tt != b.tt {
			return a.tt < b.tt
		}
		return a.core < b.core
	})
	for _, k := range keys {
		res := fmt.Sprintf("PE %q", s.Arch.PE(k.pe).Name)
		if k.core >= 0 {
			res = fmt.Sprintf("core %d of type %q on PE %q", k.core, s.Lib.Type(k.tt).Name, s.Arch.PE(k.pe).Name)
		}
		overlapScan(groups[k], res)
	}
	sort.Slice(clIDs, func(i, j int) bool { return clIDs[i] < clIDs[j] })
	for _, cl := range clIDs {
		overlapScan(clGroups[cl], fmt.Sprintf("link %q", s.Arch.CL(cl).Name))
	}
}

// area re-derives the occupied silicon of every hardware PE from the core
// allocation and the library, independent of the allocator's own
// bookkeeping.
func (c *certifier) area() {
	s := c.sys
	if c.sol.Cores == nil {
		return
	}
	for _, pe := range s.Arch.PEs {
		if !pe.Class.IsHardware() {
			continue
		}
		worst, worstMode := 0, model.ModeID(-1)
		for m := range s.App.Modes {
			used := 0
			for _, tt := range s.Lib.Types {
				im, ok := tt.ImplOn(pe.ID)
				if !ok {
					continue
				}
				if n := c.sol.Cores.Instances(model.ModeID(m), pe.ID, tt.ID); n > 0 {
					used += n * im.Area
				}
			}
			if used > worst {
				worst, worstMode = used, model.ModeID(m)
			}
		}
		if !c.check(worst <= pe.Area) {
			c.r.add(KindArea, worstMode, float64(worst), float64(pe.Area),
				"allocated cores occupy %d cells on PE %q (budget %d)", worst, pe.Name, pe.Area)
		}
	}
}

// transitions recomputes every mode-transition time from the FPGA working
// sets and checks both the tTmax constraints and the reported values.
func (c *certifier) transitions() {
	s := c.sys
	if c.sol.Cores == nil {
		return
	}
	eps := c.opts.PowerEpsilon
	for i, tr := range s.App.Transitions {
		worst := 0.0
		for _, pe := range s.Arch.PEs {
			if pe.Class != model.FPGA || pe.ReconfigTime <= 0 {
				continue
			}
			swapIn := 0
			for _, tt := range s.Lib.Types {
				if _, ok := tt.ImplOn(pe.ID); !ok {
					continue
				}
				to := c.sol.Cores.Instances(tr.To, pe.ID, tt.ID)
				from := c.sol.Cores.Instances(tr.From, pe.ID, tt.ID)
				if to > from {
					swapIn += to - from
				}
			}
			if t := float64(swapIn) * pe.ReconfigTime; t > worst {
				worst = t
			}
		}
		if c.sol.ReportedTransTimes != nil {
			if got := c.sol.ReportedTransTimes[i]; !c.check(feq(got, worst, eps)) {
				c.r.add(KindReport, -1, got, worst,
					"transition %d->%d reports time %g, recomputed %g", tr.From, tr.To, got, worst)
			}
		}
		if tr.MaxTime > 0 && !c.check(worst <= tr.MaxTime*(1+eps)) {
			c.r.add(KindTransition, -1, worst, tr.MaxTime,
				"transition %d->%d takes %g, limit tTmax is %g", tr.From, tr.To, worst, tr.MaxTime)
		}
	}
}

// power recomputes Eq. (1) from the certified per-mode aggregates and
// checks the reported values.
func (c *certifier) power() {
	s := c.sys
	eps := c.opts.PowerEpsilon
	total := 0.0
	for m, mode := range s.App.Modes {
		p := mode.Prob
		if c.sol.Probs != nil {
			p = c.sol.Probs[m]
		}
		mp := energy.ModePower{DynamicEnergy: c.dynamic[m], Period: mode.Period, StaticPower: c.static[m]}
		total += mp.Total() * p
		if c.sol.ReportedModePowers == nil {
			continue
		}
		rep := c.sol.ReportedModePowers[m]
		if !c.check(feq(rep.DynamicEnergy, c.dynamic[m], eps)) {
			c.r.add(KindEnergy, model.ModeID(m), rep.DynamicEnergy, c.dynamic[m],
				"mode %q reports dynamic energy %g, recomputed %g", mode.Name, rep.DynamicEnergy, c.dynamic[m])
		}
		if !c.check(feq(rep.StaticPower, c.static[m], eps)) {
			c.r.add(KindEnergy, model.ModeID(m), rep.StaticPower, c.static[m],
				"mode %q reports static power %g, recomputed %g", mode.Name, rep.StaticPower, c.static[m])
		}
		if !c.check(feq(rep.Period, mode.Period, eps)) {
			c.r.add(KindReport, model.ModeID(m), rep.Period, mode.Period,
				"mode %q reports period %g, specification says %g", mode.Name, rep.Period, mode.Period)
		}
	}
	if !c.check(feq(c.sol.ReportedPower, total, eps)) {
		c.r.add(KindEnergy, -1, c.sol.ReportedPower, total,
			"reported average power %g disagrees with the Eq. (1) recomputation %g", c.sol.ReportedPower, total)
	}
}

// claim cross-checks the solution's feasibility claim against what the
// certifier actually found.
func (c *certifier) claim() {
	constraint := 0
	for _, v := range c.r.Violations {
		if v.Kind.Constraint() {
			constraint++
		}
	}
	if c.sol.ClaimFeasible {
		if !c.check(c.unroutable == 0) {
			c.r.add(KindReport, -1, float64(c.unroutable), 0,
				"solution claims feasibility with %d unroutable communication(s)", c.unroutable)
		}
		return
	}
	if !c.check(constraint > 0 || c.unroutable > 0) {
		c.r.add(KindReport, -1, float64(constraint), 1,
			"solution claims infeasibility but no constraint violation was found")
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
