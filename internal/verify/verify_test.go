package verify_test

import (
	"strings"
	"testing"

	"momosyn/internal/model"
	"momosyn/internal/synth"
	"momosyn/internal/verify"
)

// testSystem builds a small two-mode system exercising every certifier
// dimension: a DVS software processor, a non-DVS FPGA with an area budget
// and reconfiguration time, a shared bus, inter-PE communications and
// constrained transitions in both directions.
func testSystem(t *testing.T) *model.System {
	t.Helper()
	b := model.NewBuilder("certify-test")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, DVS: true,
		Vmax: 3.3, Vt: 0.8, Levels: []float64{1.2, 1.8, 2.5, 3.3},
		StaticPower: 0.001})
	b.AddPE(model.PE{Name: "hw", Class: model.FPGA, Area: 500,
		ReconfigTime: 0.001, StaticPower: 0.002})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6, PowerActive: 0.005,
		StaticPower: 0.0005}, "cpu", "hw")
	b.AddType("tA", model.ImplSpec{PE: "cpu", Time: 0.001, Power: 0.005})
	b.AddType("tB",
		model.ImplSpec{PE: "cpu", Time: 0.002, Power: 0.004},
		model.ImplSpec{PE: "hw", Time: 0.0005, Power: 0.006, Area: 200})
	b.AddType("tC", model.ImplSpec{PE: "hw", Time: 0.001, Power: 0.008, Area: 150})

	b.BeginMode("m0", 0.6, 0.050)
	b.AddTask("a", "tA", 0)
	b.AddTask("b", "tB", 0)
	b.AddTask("c", "tC", 0)
	b.AddTask("d", "tA", 0)
	b.AddEdge("a", "b", 1000)
	b.AddEdge("b", "c", 500)
	b.AddEdge("a", "d", 0)

	b.BeginMode("m1", 0.4, 0.040)
	b.AddTask("x", "tB", 0)
	b.AddTask("y", "tC", 0)
	b.AddTask("z", "tA", 0)
	b.AddEdge("x", "y", 800)

	b.AddTransition("m0", "m1", 0.010)
	b.AddTransition("m1", "m0", 0.010)

	sys, err := b.Finish()
	if err != nil {
		t.Fatalf("testSystem: %v", err)
	}
	return sys
}

// testMapping is a hand-feasible assignment: m0 keeps a, b, d on the cpu
// and c on hardware; m1 puts x, y on hardware and z on the cpu.
func testMapping() model.Mapping {
	return model.Mapping{
		{0, 0, 1, 0},
		{1, 1, 0},
	}
}

// evaluateGood produces the known-good evaluation both test files build
// their fault injections on.
func evaluateGood(t *testing.T, sys *model.System, useDVS bool) *synth.Evaluation {
	t.Helper()
	eval := &synth.Evaluator{Sys: sys, UseDVS: useDVS, Weights: synth.DefaultWeights()}
	ev, err := eval.Evaluate(testMapping())
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if !ev.Feasible() {
		t.Fatalf("hand mapping must be feasible, got lateness=%g area=%g trans=%g unroutable=%d",
			ev.TimingPenalty, ev.AreaPenalty, ev.TransPenalty, ev.Unroutable)
	}
	return ev
}

func TestCertifyCleanResult(t *testing.T) {
	sys := testSystem(t)
	for _, dvs := range []bool{false, true} {
		ev := evaluateGood(t, sys, dvs)
		rep := synth.CertifyEvaluation(sys, ev, nil, verify.Options{})
		if !rep.Certified() {
			t.Errorf("dvs=%v: clean result not certified:\n%s", dvs, rep)
		}
		if rep.Checks == 0 {
			t.Errorf("dvs=%v: certifier evaluated no checks", dvs)
		}
		if !strings.Contains(rep.String(), "certified") {
			t.Errorf("dvs=%v: report string malformed: %q", dvs, rep.String())
		}
	}
}

func TestCertifyEmptySolutionFailsStructurally(t *testing.T) {
	sys := testSystem(t)
	rep := verify.Certify(sys, verify.Solution{}, verify.Options{})
	if rep.Certified() {
		t.Fatal("empty solution must not certify")
	}
	if rep.Count(verify.KindStructure) == 0 {
		t.Errorf("empty solution must fail structurally, got:\n%s", rep)
	}
	// CertifyEvaluation tolerates a nil evaluation the same way.
	rep = synth.CertifyEvaluation(sys, nil, nil, verify.Options{})
	if rep.Certified() {
		t.Fatal("nil evaluation must not certify")
	}
}

// TestCertifyInfeasibleClaimTolerated: an honestly infeasible design (a
// deadline no mapping can hold) certifies when it admits infeasibility,
// and fails with the same violations when it claims feasibility.
func TestCertifyInfeasibleClaimTolerated(t *testing.T) {
	b := model.NewBuilder("tight")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8, StaticPower: 0.001})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6, PowerActive: 0.005}, "cpu")
	b.AddType("t", model.ImplSpec{PE: "cpu", Time: 0.010, Power: 0.001})
	b.BeginMode("m", 1, 0.020)
	b.AddTask("a", "t", 0.001) // 10ms execution against a 1ms deadline
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	eval := &synth.Evaluator{Sys: sys, Weights: synth.DefaultWeights()}
	ev, err := eval.Evaluate(model.Mapping{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Feasible() {
		t.Fatal("design must be infeasible")
	}

	rep := synth.CertifyEvaluation(sys, ev, nil, verify.Options{})
	if !rep.Certified() {
		t.Errorf("honest infeasibility must certify, got:\n%s", rep)
	}
	if rep.Count(verify.KindDeadline) == 0 {
		t.Errorf("deadline violation must still be recorded, got:\n%s", rep)
	}

	// The same schedules under a feasibility claim must fail.
	sol := verify.Solution{
		Mapping:            ev.Mapping,
		Schedules:          ev.Schedules,
		Cores:              ev.Alloc,
		ReportedPower:      ev.AvgPower,
		ReportedModePowers: ev.ModePowers,
		ReportedTransTimes: ev.TransTimes,
		ClaimFeasible:      true,
	}
	if rep := verify.Certify(sys, sol, verify.Options{}); rep.Certified() {
		t.Error("claiming feasibility over a deadline miss must not certify")
	}
}

// TestCertifyReportedPowerMismatch pins the epsilon semantics: a relative
// error beyond PowerEpsilon fails, one within it passes.
func TestCertifyReportedPowerMismatch(t *testing.T) {
	sys := testSystem(t)
	ev := evaluateGood(t, sys, true)

	sol := func(p float64) verify.Solution {
		return verify.Solution{
			Mapping: ev.Mapping, Schedules: ev.Schedules, Cores: ev.Alloc,
			ReportedPower: p, ReportedModePowers: ev.ModePowers,
			ReportedTransTimes: ev.TransTimes, ClaimFeasible: true,
		}
	}
	if rep := verify.Certify(sys, sol(ev.AvgPower*1.01), verify.Options{}); rep.Count(verify.KindEnergy) == 0 {
		t.Errorf("1%% power misreport must fail the energy check, got:\n%s", rep)
	}
	if rep := verify.Certify(sys, sol(ev.AvgPower*(1+1e-9)), verify.Options{}); !rep.Certified() {
		t.Errorf("power within epsilon must certify, got:\n%s", rep)
	}
	// A loose epsilon accepts the 1% misreport.
	loose := verify.Options{PowerEpsilon: 0.02}
	if rep := verify.Certify(sys, sol(ev.AvgPower*1.01), loose); !rep.Certified() {
		t.Errorf("1%% misreport within a 2%% epsilon must certify, got:\n%s", rep)
	}
}

func TestKindClassification(t *testing.T) {
	constraint := []verify.Kind{verify.KindContainment, verify.KindDeadline,
		verify.KindArea, verify.KindTransition}
	inconsistency := []verify.Kind{verify.KindStructure, verify.KindMapping,
		verify.KindRouting, verify.KindPrecedence, verify.KindOverlap,
		verify.KindVoltage, verify.KindEnergy, verify.KindReport}
	for _, k := range constraint {
		if !k.Constraint() {
			t.Errorf("%v must be constraint-class", k)
		}
	}
	for _, k := range inconsistency {
		if k.Constraint() {
			t.Errorf("%v must not be constraint-class", k)
		}
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("%v lacks a name", k)
		}
	}
}
