package energy

import (
	"math"
	"testing"
	"testing/quick"

	"momosyn/internal/model"
)

func TestTaskEnergyNominal(t *testing.T) {
	// At nominal voltage the paper's model reduces to Pmax * tmin.
	if got, want := TaskEnergy(0.5, 0.02, 3.3, 3.3), 0.01; math.Abs(got-want) > 1e-15 {
		t.Errorf("nominal energy = %v, want %v", got, want)
	}
}

func TestTaskEnergyQuadraticScaling(t *testing.T) {
	// Halving the supply voltage quarters the dynamic energy.
	full := TaskEnergy(1, 1, 3.3, 3.3)
	half := TaskEnergy(1, 1, 1.65, 3.3)
	if math.Abs(half-full/4) > 1e-12 {
		t.Errorf("half-voltage energy = %v, want %v", half, full/4)
	}
}

func TestTaskEnergyZeroVmax(t *testing.T) {
	if got := TaskEnergy(2, 3, 1, 0); got != 6 {
		t.Errorf("degenerate vmax: got %v, want plain Pmax*tmin", got)
	}
}

func TestScaledTimeNominal(t *testing.T) {
	if got := ScaledTime(0.01, 3.3, 3.3, 0.8); got != 0.01 {
		t.Errorf("nominal time = %v, want 0.01", got)
	}
	// Above nominal clamps to tmin.
	if got := ScaledTime(0.01, 4.0, 3.3, 0.8); got != 0.01 {
		t.Errorf("above-nominal time = %v, want 0.01", got)
	}
}

func TestScaledTimeMonotoneDecreasingInVdd(t *testing.T) {
	prev := math.Inf(1)
	for _, v := range []float64{1.0, 1.4, 1.8, 2.2, 2.6, 3.0, 3.3} {
		cur := ScaledTime(1, v, 3.3, 0.8)
		if cur >= prev {
			t.Fatalf("ScaledTime not strictly decreasing at v=%v: %v >= %v", v, cur, prev)
		}
		prev = cur
	}
}

func TestScaledTimeKnownValue(t *testing.T) {
	// t(Vdd) = tmin * (Vdd/Vmax) * ((Vmax-Vt)/(Vdd-Vt))^2 at Vdd=1.65,
	// Vmax=3.3, Vt=0.8: (0.5)*((2.5/0.85))^2 = 0.5*8.6505... = 4.3252...
	got := ScaledTime(1, 1.65, 3.3, 0.8)
	want := 0.5 * math.Pow(2.5/0.85, 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ScaledTime = %v, want %v", got, want)
	}
}

func TestSlowdownEnergyConsistent(t *testing.T) {
	tm, e := SlowdownEnergy(2, 3, 2.0, 3.3, 0.8)
	if tm != ScaledTime(3, 2.0, 3.3, 0.8) || e != TaskEnergy(2, 3, 2.0, 3.3) {
		t.Error("SlowdownEnergy must match its two components")
	}
}

func TestCommTime(t *testing.T) {
	cl := &model.CL{BytesPerSec: 1e6}
	if got := CommTime(500, cl); got != 500e-6 {
		t.Errorf("CommTime = %v, want 500us", got)
	}
	if got := CommTime(0, cl); got != 0 {
		t.Errorf("zero bytes must cost zero, got %v", got)
	}
}

func TestModePower(t *testing.T) {
	mp := ModePower{DynamicEnergy: 0.002, Period: 0.1, StaticPower: 0.005}
	if got := mp.Dynamic(); math.Abs(got-0.02) > 1e-15 {
		t.Errorf("Dynamic = %v, want 0.02", got)
	}
	if got := mp.Total(); math.Abs(got-0.025) > 1e-15 {
		t.Errorf("Total = %v, want 0.025", got)
	}
	if got := (ModePower{DynamicEnergy: 1, Period: 0}).Dynamic(); got != 0 {
		t.Errorf("zero period must not divide: got %v", got)
	}
}

func TestAveragePowerEquation1(t *testing.T) {
	app := &model.OMSM{Modes: []*model.Mode{
		{ID: 0, Prob: 0.1, Period: 1},
		{ID: 1, Prob: 0.9, Period: 1},
	}}
	per := []ModePower{
		{DynamicEnergy: 1, Period: 1, StaticPower: 0},
		{DynamicEnergy: 2, Period: 1, StaticPower: 1},
	}
	// 0.1*1 + 0.9*(2+1) = 2.8
	if got := AveragePower(app, per); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("AveragePower = %v, want 2.8", got)
	}
}

func TestStaticPowerShutdown(t *testing.T) {
	arch := &model.Arch{
		PEs: []*model.PE{{StaticPower: 1}, {StaticPower: 2}},
		CLs: []*model.CL{{StaticPower: 4}},
	}
	got := StaticPower(arch, []bool{true, false}, []bool{true})
	if got != 5 {
		t.Errorf("StaticPower = %v, want 5 (PE0 + CL0)", got)
	}
	got = StaticPower(arch, []bool{false, false}, []bool{false})
	if got != 0 {
		t.Errorf("all shut down: %v, want 0", got)
	}
}

func TestLevelIndex(t *testing.T) {
	levels := []float64{1.2, 1.8, 2.5, 3.3}
	cases := []struct {
		v    float64
		want int
	}{
		{1.0, 0}, {1.2, 0}, {1.5, 1}, {1.8, 1}, {2.0, 2}, {3.3, 3}, {4.0, 3},
	}
	for _, c := range cases {
		if got := LevelIndex(levels, c.v); got != c.want {
			t.Errorf("LevelIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestVoltageBelow(t *testing.T) {
	levels := []float64{1.2, 1.8, 3.3}
	if got := VoltageBelow(levels, 2); got != 1 {
		t.Errorf("VoltageBelow(2) = %d, want 1", got)
	}
	if got := VoltageBelow(levels, 0); got != -1 {
		t.Errorf("VoltageBelow(0) = %d, want -1", got)
	}
}

func TestEnergySavingAndTimeCostSigns(t *testing.T) {
	if s := EnergySaving(1, 1, 3.3, 2.5, 3.3); s <= 0 {
		t.Errorf("lowering voltage must save energy, got %v", s)
	}
	if c := TimeCost(1, 3.3, 2.5, 3.3, 0.8); c <= 0 {
		t.Errorf("lowering voltage must cost time, got %v", c)
	}
}

func TestBreakEvenVoltage(t *testing.T) {
	// Budget equal to tmin needs full voltage.
	if got := BreakEvenVoltage(1, 1, 3.3, 0.8); got != 3.3 {
		t.Errorf("tight budget: got %v, want Vmax", got)
	}
	// A 2x budget admits a lower voltage; the resulting time must fit.
	v := BreakEvenVoltage(1, 2, 3.3, 0.8)
	if v >= 3.3 || v <= 0.8 {
		t.Fatalf("break-even voltage %v out of range", v)
	}
	if tm := ScaledTime(1, v, 3.3, 0.8); tm > 2+1e-6 {
		t.Errorf("scaled time %v exceeds budget 2", tm)
	}
	if tm := ScaledTime(1, v, 3.3, 0.8); tm < 2-1e-3 {
		t.Errorf("scaled time %v leaves too much budget (not break-even)", tm)
	}
}

func TestRelativeReduction(t *testing.T) {
	if got := RelativeReduction(10, 5); got != 50 {
		t.Errorf("RelativeReduction = %v, want 50", got)
	}
	if got := RelativeReduction(0, 5); got != 0 {
		t.Errorf("zero base: got %v, want 0", got)
	}
	if got := RelativeReduction(10, 12); got != -20 {
		t.Errorf("regression case: got %v, want -20", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("near-identical values must compare equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-9) {
		t.Error("different values must not compare equal")
	}
	if !ApproxEqual(0, 1e-12, 1e-9) {
		t.Error("near-zero absolute tolerance must apply")
	}
}

// Property: for any valid (pmax, tmin, vdd <= vmax) the scaled energy never
// exceeds the nominal energy and is non-negative.
func TestQuickEnergyBounded(t *testing.T) {
	f := func(p, tm, frac float64) bool {
		p = 1e-3 + math.Mod(math.Abs(p), 10)
		tm = 1e-6 + math.Mod(math.Abs(tm), 1)
		frac = math.Mod(math.Abs(frac), 1)
		vmax := 3.3
		vdd := 0.9 + frac*(vmax-0.9)
		e := TaskEnergy(p, tm, vdd, vmax)
		return e >= 0 && e <= p*tm+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaled time at any admissible voltage is at least tmin, and
// energy x time trade monotonically: lower voltage => more time, less
// energy.
func TestQuickTimeEnergyTradeoff(t *testing.T) {
	f := func(a, b float64) bool {
		vmax, vt := 3.3, 0.8
		va := vt + 0.1 + math.Mod(math.Abs(a), vmax-vt-0.1)
		vb := vt + 0.1 + math.Mod(math.Abs(b), vmax-vt-0.1)
		if va < vb {
			va, vb = vb, va
		}
		// va >= vb: time(va) <= time(vb), energy(va) >= energy(vb)
		tA := ScaledTime(1, va, vmax, vt)
		tB := ScaledTime(1, vb, vmax, vt)
		eA := TaskEnergy(1, 1, va, vmax)
		eB := TaskEnergy(1, 1, vb, vmax)
		return tA <= tB+1e-12 && eA >= eB-1e-12 && tA >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BreakEvenVoltage always produces a voltage whose scaled time
// fits within the budget.
func TestQuickBreakEvenFits(t *testing.T) {
	f := func(budgetScale float64) bool {
		budget := 1 + math.Mod(math.Abs(budgetScale), 20)
		v := BreakEvenVoltage(1, budget, 3.3, 0.8)
		return ScaledTime(1, v, 3.3, 0.8) <= budget+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
