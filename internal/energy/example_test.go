package energy_test

import (
	"fmt"

	"momosyn/internal/energy"
)

// ExampleScaledTime shows the alpha-power delay law: lowering the supply
// from 3.3 V to 1.8 V stretches a task's execution time while TaskEnergy
// shows the quadratic energy saving.
func ExampleScaledTime() {
	const vmax, vt = 3.3, 0.8
	for _, vdd := range []float64{3.3, 2.5, 1.8} {
		t := energy.ScaledTime(1.0, vdd, vmax, vt)
		e := energy.TaskEnergy(1.0, 1.0, vdd, vmax)
		fmt.Printf("%.1fV: time x%.2f, energy x%.2f\n", vdd, t, e)
	}
	// Output:
	// 3.3V: time x1.00, energy x1.00
	// 2.5V: time x1.64, energy x0.57
	// 1.8V: time x3.41, energy x0.30
}
