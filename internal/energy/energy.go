// Package energy implements the power and energy model of the DATE 2003
// multi-mode co-synthesis paper (Schmitz/Al-Hashimi/Eles): dynamic energies
// of tasks and communications, supply-voltage scaling laws for DVS-enabled
// processing elements, static power with component shut-down, and the
// probability-weighted average power objective of Eq. (1).
package energy

import (
	"math"

	"momosyn/internal/model"
)

// TaskEnergy returns the dynamic energy of one task execution following the
// paper's model E = Pmax * tmin * (Vdd/Vmax)^2. For tasks on non-DVS PEs
// pass vdd == vmax, which reduces to Pmax*tmin.
func TaskEnergy(pmax, tmin, vdd, vmax float64) float64 {
	if vmax <= 0 {
		return pmax * tmin
	}
	r := vdd / vmax
	return pmax * tmin * r * r
}

// CommEnergy returns the dynamic energy of one message transfer,
// E = PC * tC.
func CommEnergy(pc, tc float64) float64 { return pc * tc }

// ScaledTime returns the execution time at supply voltage vdd of a task
// whose nominal time at vmax is tmin, using the alpha-power delay law with
// alpha = 2:
//
//	t(Vdd) = tmin * (Vdd/Vmax) * ((Vmax-Vt)/(Vdd-Vt))^2
//
// The function requires vdd > vt; callers guarantee this via the validated
// voltage level sets of the architecture.
func ScaledTime(tmin, vdd, vmax, vt float64) float64 {
	if vdd >= vmax {
		return tmin
	}
	num := vmax - vt
	den := vdd - vt
	return tmin * (vdd / vmax) * (num / den) * (num / den)
}

// SlowdownEnergy returns the pair (scaled time, scaled energy) of a task at
// the given voltage level.
func SlowdownEnergy(pmax, tmin, vdd, vmax, vt float64) (t, e float64) {
	return ScaledTime(tmin, vdd, vmax, vt), TaskEnergy(pmax, tmin, vdd, vmax)
}

// CommTime returns the transfer time of a message of the given size over
// the link. A zero-byte message still has zero cost.
func CommTime(bytes float64, cl *model.CL) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / cl.BytesPerSec
}

// ModePower aggregates the power of one operational mode: the dynamic
// energy of all activities divided by the hyper-period, plus the static
// power of all powered components.
type ModePower struct {
	// DynamicEnergy is the summed dynamic energy of all task executions and
	// message transfers in one hyper-period (joules).
	DynamicEnergy float64
	// Period is the mode hyper-period used to convert energy to power.
	Period float64
	// StaticPower is the summed static power of the components that cannot
	// be shut down during the mode (watts).
	StaticPower float64
}

// Dynamic returns the average dynamic power of the mode.
func (m ModePower) Dynamic() float64 {
	if m.Period <= 0 {
		return 0
	}
	return m.DynamicEnergy / m.Period
}

// Total returns the average power of the mode (dynamic + static).
func (m ModePower) Total() float64 { return m.Dynamic() + m.StaticPower }

// AveragePower evaluates Eq. (1): the execution-probability weighted sum of
// per-mode average powers. The slice must be indexed by ModeID and parallel
// to the OMSM's modes.
func AveragePower(app *model.OMSM, perMode []ModePower) float64 {
	total := 0.0
	for i, m := range app.Modes {
		total += perMode[i].Total() * m.Prob
	}
	return total
}

// StaticPower sums the static power of the active components of a mode.
// activePE and activeCL are indexed by component ID.
func StaticPower(arch *model.Arch, activePE, activeCL []bool) float64 {
	p := 0.0
	for i, pe := range arch.PEs {
		if activePE[i] {
			p += pe.StaticPower
		}
	}
	for i, cl := range arch.CLs {
		if activeCL[i] {
			p += cl.StaticPower
		}
	}
	return p
}

// VoltageBelow returns the index of the next lower admissible level below
// index i, or -1 when i already is the lowest level.
func VoltageBelow(levels []float64, i int) int {
	if i <= 0 {
		return -1
	}
	return i - 1
}

// LevelIndex returns the index of the smallest level >= v, snapping upward
// so the resulting execution never becomes slower than requested. Returns
// the top index when v exceeds all levels.
func LevelIndex(levels []float64, v float64) int {
	for i, l := range levels {
		if l >= v-1e-12 {
			return i
		}
	}
	return len(levels) - 1
}

// EnergySaving returns the dynamic-energy reduction obtained by moving a
// task of nominal power pmax and nominal time tmin from voltage va down to
// vb (va > vb) on a PE with nominal voltage vmax. The result is
// non-negative for va >= vb.
func EnergySaving(pmax, tmin, va, vb, vmax float64) float64 {
	return TaskEnergy(pmax, tmin, va, vmax) - TaskEnergy(pmax, tmin, vb, vmax)
}

// TimeCost returns the execution-time increase incurred by moving a task
// from voltage va down to vb under the alpha-power law.
func TimeCost(tmin, va, vb, vmax, vt float64) float64 {
	return ScaledTime(tmin, vb, vmax, vt) - ScaledTime(tmin, va, vmax, vt)
}

// BreakEvenVoltage returns the supply voltage at which the task of nominal
// time tmin exactly fills the given time budget, clamped to [vt*(1+eps),
// vmax]. It inverts the alpha-power delay law numerically by bisection;
// the result is useful for snapping to discrete levels.
func BreakEvenVoltage(tmin, budget, vmax, vt float64) float64 {
	if budget <= tmin {
		return vmax
	}
	lo := vt + 1e-6*(vmax-vt)
	hi := vmax
	// ScaledTime is monotonically decreasing in vdd on (vt, vmax].
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if ScaledTime(tmin, mid, vmax, vt) > budget {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return hi
}

// Joules formats are deliberately not provided here; reporting code uses
// milliwatts/milliseconds where the paper does.

// RelativeReduction returns the percentage reduction from base to improved
// (positive when improved < base), matching the paper's "Reduc. (%)"
// columns.
func RelativeReduction(base, improved float64) float64 {
	if model.ApproxEqual(base, 0, 0) {
		return 0
	}
	return (base - improved) / base * 100
}

// ApproxEqual reports whether two float64 values agree within the given
// relative tolerance (absolute tolerance for values near zero).
func ApproxEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}
