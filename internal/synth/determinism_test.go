package synth

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"testing"

	"momosyn/internal/ga"
	"momosyn/internal/model"
)

// canonicalReport renders everything observable about a synthesis result —
// mapping, bit-exact powers, schedule slots, engine statistics — except the
// wall-clock time. Two runs are "the same" exactly when these strings are
// byte-identical.
func canonicalReport(res *Result) string {
	var b strings.Builder
	ev := res.Best
	fmt.Fprintf(&b, "fitness=%016x objective=%016x avg=%016x\n",
		math.Float64bits(ev.Fitness), math.Float64bits(res.ObjectivePower), math.Float64bits(ev.AvgPower))
	for m, mp := range ev.ModePowers {
		fmt.Fprintf(&b, "mode %d power=%016x\n", m, math.Float64bits(mp.Total()))
	}
	for m := range ev.Mapping {
		fmt.Fprintf(&b, "map %d:", m)
		for _, pe := range ev.Mapping[m] {
			fmt.Fprintf(&b, " %d", pe)
		}
		fmt.Fprintln(&b)
	}
	for _, sc := range ev.Schedules {
		fmt.Fprintf(&b, "sched mode=%d makespan=%016x\n", sc.Mode, math.Float64bits(sc.Makespan))
		for _, slot := range sc.Tasks {
			fmt.Fprintf(&b, "  task=%d pe=%d core=%d start=%016x finish=%016x\n",
				slot.Task, slot.PE, slot.Core, math.Float64bits(slot.Start), math.Float64bits(slot.Finish))
		}
	}
	fmt.Fprintf(&b, "ga gen=%d evals=%d best=%016x\n",
		res.GA.Generations, res.GA.Evaluations, math.Float64bits(res.GA.BestFitness))
	for _, h := range res.GA.History {
		fmt.Fprintf(&b, "hist %016x\n", math.Float64bits(h))
	}
	return b.String()
}

// TestSynthesizeDeterministic is the regression behind the detrand
// analyzer: the same seed and specification must reproduce the synthesis
// byte for byte, or checkpoint/resume and the paper tables are unsound.
func TestSynthesizeDeterministic(t *testing.T) {
	sys := testSystem(t)
	opts := Options{
		UseDVS: true,
		GA:     ga.Config{PopSize: 16, MaxGenerations: 25, Stagnation: 10},
		Seed:   42,
	}
	first, err := Synthesize(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Synthesize(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonicalReport(first), canonicalReport(second)
	if a != b {
		t.Fatalf("same seed, different synthesis:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestMappingHashMatchesFNV pins the hand-inlined FNV-1a in mappingHash to
// the hash/fnv reference: the hash seeds the refinement RNG, so a silent
// divergence would change every RefineIterations > 0 synthesis.
func TestMappingHashMatchesFNV(t *testing.T) {
	cases := []struct {
		m    model.Mapping
		mode int
	}{
		{model.Mapping{}, 0},
		{model.Mapping{{0}}, 0},
		{model.Mapping{{0, 1}, {2}}, 1},
		{model.Mapping{{300, 5}, {0, 0, 7}}, 2}, // PE id above one byte
	}
	for _, c := range cases {
		h := fnv.New64a()
		var b [2]byte
		b[0] = byte(c.mode)
		h.Write(b[:1])
		for _, row := range c.m {
			for _, pe := range row {
				b[0] = byte(pe)
				b[1] = byte(int(pe) >> 8)
				h.Write(b[:])
			}
		}
		if got, want := mappingHash(c.m, c.mode), h.Sum64(); got != want {
			t.Errorf("mappingHash(%v, %d) = %#x, want %#x (hash/fnv reference)", c.m, c.mode, got, want)
		}
	}
}
