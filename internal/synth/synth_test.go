package synth

import (
	"math"
	"math/rand"
	"testing"

	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// testSystem builds a two-mode system over a GPP and an ASIC with a shared
// task type plus mode-private types, matching the structures the synthesis
// must reason about (sharing, shut-down, area limits).
func testSystem(t *testing.T) *model.System {
	t.Helper()
	b := model.NewBuilder("synthtest")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8, StaticPower: 1e-4})
	b.AddPE(model.PE{Name: "hw", Class: model.ASIC, Vmax: 3.3, Vt: 0.8, Area: 400, StaticPower: 5e-4})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6, StaticPower: 1e-5}, "cpu", "hw")
	b.AddType("shared",
		model.ImplSpec{PE: "cpu", Time: 10e-3, Power: 4e-3},
		model.ImplSpec{PE: "hw", Time: 1e-3, Power: 0.2e-3, Area: 150},
	)
	b.AddType("swonly", model.ImplSpec{PE: "cpu", Time: 5e-3, Power: 2e-3})
	b.AddType("hwable",
		model.ImplSpec{PE: "cpu", Time: 8e-3, Power: 3e-3},
		model.ImplSpec{PE: "hw", Time: 0.5e-3, Power: 0.3e-3, Area: 300},
	)
	b.BeginMode("m0", 0.8, 0.1)
	b.AddTask("a", "shared", 0)
	b.AddTask("b", "swonly", 0)
	b.AddEdge("a", "b", 500)
	b.BeginMode("m1", 0.2, 0.1)
	b.AddTask("a", "shared", 0)
	b.AddTask("c", "hwable", 0)
	b.AddTask("d", "hwable", 0)
	b.AddEdge("a", "c", 500)
	b.AddEdge("a", "d", 500)
	b.AddTransition("m0", "m1", 0.02)
	b.AddTransition("m1", "m0", 0.02)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCodecRoundTrip(t *testing.T) {
	sys := testSystem(t)
	codec, err := NewCodec(sys)
	if err != nil {
		t.Fatal(err)
	}
	if codec.Len() != 5 {
		t.Fatalf("genome length = %d, want 5", codec.Len())
	}
	// swonly has one candidate, the others two.
	wantAlleles := []int{2, 1, 2, 2, 2}
	for k := 0; k < codec.Len(); k++ {
		if codec.Alleles(k) != wantAlleles[k] {
			t.Errorf("alleles(%d) = %d, want %d", k, codec.Alleles(k), wantAlleles[k])
		}
	}
	genome := []int{1, 0, 0, 1, 0}
	m := codec.Decode(genome)
	if err := m.Validate(sys); err != nil {
		t.Fatalf("decoded mapping invalid: %v", err)
	}
	back := codec.Encode(m)
	for k := range genome {
		if back[k] != genome[k] {
			t.Fatalf("round trip mismatch at locus %d: %v vs %v", k, back, genome)
		}
	}
	if codec.Key(genome) == codec.Key(back[:4]) {
		t.Error("different-length genomes must not collide")
	}
}

func TestCodecSetPE(t *testing.T) {
	sys := testSystem(t)
	codec, _ := NewCodec(sys)
	genome := make([]int, codec.Len())
	if !codec.SetPE(genome, 0, 1) {
		t.Fatal("shared type must accept the hw PE")
	}
	if codec.PEAt(genome, 0) != 1 {
		t.Error("SetPE did not take effect")
	}
	if codec.SetPE(genome, 1, 1) {
		t.Error("swonly must reject the hw PE")
	}
}

func TestAllocationMandatoryCores(t *testing.T) {
	sys := testSystem(t)
	m := model.NewMapping(sys.App)
	// Everything software except task c (hwable) in mode 1.
	m[0][0], m[0][1] = 0, 0
	m[1][0], m[1][1], m[1][2] = 0, 1, 0
	mob := mobilities(t, sys, m)
	alloc := AllocateCores(sys, m, mob)
	if got := alloc.Instances(1, 1, 2); got != 1 {
		t.Errorf("hwable instances in mode 1 = %d, want 1", got)
	}
	if got := alloc.Instances(0, 1, 2); got != 1 {
		t.Errorf("ASIC cores persist across modes, got %d", got)
	}
	if !alloc.AreaFeasible() {
		t.Error("single 300-cell core fits the 400-cell ASIC")
	}
	if alloc.UsedArea[0][1] != 300 {
		t.Errorf("used area = %d, want 300", alloc.UsedArea[0][1])
	}
}

func TestAllocationReplicaCores(t *testing.T) {
	// Enlarge the ASIC so both parallel hwable tasks get their own core.
	sys := testSystem(t)
	sys.Arch.PEs[1].Area = 700
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1] = 0, 0
	m[1][0], m[1][1], m[1][2] = 0, 1, 1 // c and d parallel on hw
	mob := mobilities(t, sys, m)
	alloc := AllocateCores(sys, m, mob)
	if got := alloc.Instances(1, 1, 2); got != 2 {
		t.Errorf("parallel tasks with area available: %d cores, want 2", got)
	}
	// With the small ASIC there is area for only one core: no replica.
	sys.Arch.PEs[1].Area = 400
	alloc = AllocateCores(sys, m, mob)
	if got := alloc.Instances(1, 1, 2); got != 1 {
		t.Errorf("tight area: %d cores, want 1", got)
	}
	if !alloc.AreaFeasible() {
		t.Error("mandatory core fits; replicas must never overflow")
	}
}

func TestAllocationAreaViolation(t *testing.T) {
	sys := testSystem(t)
	sys.Arch.PEs[1].Area = 200 // hwable core (300) cannot fit
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1] = 0, 0
	m[1][0], m[1][1], m[1][2] = 0, 1, 0
	mob := mobilities(t, sys, m)
	alloc := AllocateCores(sys, m, mob)
	if alloc.AreaFeasible() {
		t.Fatal("mandatory core exceeding area must violate")
	}
	if alloc.Violation[1] != 100 {
		t.Errorf("violation = %d cells, want 100", alloc.Violation[1])
	}
}

func TestFPGAAllocationAndTransitions(t *testing.T) {
	b := model.NewBuilder("fpga")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{
		Name: "fpga", Class: model.FPGA, Vmax: 3.3, Vt: 0.8,
		Area: 300, ReconfigTime: 5e-3,
	})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu", "fpga")
	b.AddType("x",
		model.ImplSpec{PE: "cpu", Time: 10e-3, Power: 1e-3},
		model.ImplSpec{PE: "fpga", Time: 1e-3, Power: 0.1e-3, Area: 200},
	)
	b.AddType("y",
		model.ImplSpec{PE: "cpu", Time: 10e-3, Power: 1e-3},
		model.ImplSpec{PE: "fpga", Time: 1e-3, Power: 0.1e-3, Area: 200},
	)
	b.BeginMode("m0", 0.5, 0.1)
	b.AddTask("a", "x", 0)
	b.BeginMode("m1", 0.5, 0.1)
	b.AddTask("b", "y", 0)
	b.AddTransition("m0", "m1", 4e-3) // tighter than one reconfiguration
	b.AddTransition("m1", "m0", 20e-3)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewMapping(sys.App)
	m[0][0], m[1][0] = 1, 1 // both on the FPGA; cores swap between modes
	mob := mobilities(t, sys, m)
	alloc := AllocateCores(sys, m, mob)
	// Per-mode working sets fit (200 <= 300) even though the union (400)
	// would not: that is the FPGA advantage.
	if !alloc.AreaFeasible() {
		t.Error("per-mode FPGA working sets must fit")
	}
	// m0 -> m1 swaps in core y: one reconfiguration = 5 ms > 4 ms limit.
	tt0 := alloc.TransitionTime(sys, sys.App.Transitions[0])
	if math.Abs(tt0-5e-3) > 1e-12 {
		t.Errorf("transition time = %v, want 5ms", tt0)
	}
	ev := NewEvaluator(sys, false)
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransPenalty <= 1 {
		t.Error("violated transition limit must be penalised")
	}
	if res.Feasible() {
		t.Error("candidate with transition violation is infeasible")
	}
	// Keeping mode 1 on the CPU avoids the swap: no penalty.
	m[1][0] = 0
	res, err = ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransPenalty != 1 {
		t.Errorf("no swap: penalty = %v, want 1", res.TransPenalty)
	}
}

func mobilities(t *testing.T, sys *model.System, m model.Mapping) []*sched.Mobility {
	t.Helper()
	mob := make([]*sched.Mobility, len(sys.App.Modes))
	for i := range mob {
		mm, err := sched.ComputeMobility(sys, model.ModeID(i), m)
		if err != nil {
			t.Fatal(err)
		}
		mob[i] = mm
	}
	return mob
}

func TestEvaluatorShutdownAccounting(t *testing.T) {
	sys := testSystem(t)
	ev := NewEvaluator(sys, false)
	m := model.NewMapping(sys.App)
	// Mode 0 entirely on the CPU; mode 1 uses the ASIC.
	m[0][0], m[0][1] = 0, 0
	m[1][0], m[1][1], m[1][2] = 0, 1, 1
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	cpu, hw, bus := sys.Arch.PEs[0], sys.Arch.PEs[1], sys.Arch.CLs[0]
	if got, want := res.ModePowers[0].StaticPower, cpu.StaticPower; math.Abs(got-want) > 1e-15 {
		t.Errorf("mode 0 static = %v, want CPU only %v", got, want)
	}
	want := cpu.StaticPower + hw.StaticPower + bus.StaticPower
	if got := res.ModePowers[1].StaticPower; math.Abs(got-want) > 1e-15 {
		t.Errorf("mode 1 static = %v, want all components %v", got, want)
	}
}

func TestEvaluatorTimingPenalty(t *testing.T) {
	sys := testSystem(t)
	sys.App.Modes[0].Period = 12e-3 // a(10)+b(5) serial on cpu: late
	ev := NewEvaluator(sys, false)
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1] = 0, 0
	m[1][0], m[1][1], m[1][2] = 0, 0, 0
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimingPenalty <= 1 {
		t.Error("late schedule must carry a timing penalty")
	}
	if res.Feasible() {
		t.Error("late candidate reported feasible")
	}
	// Fitness must exceed the feasible upper bound so no feasible solution
	// loses to this one.
	if res.Fitness <= PowerUpperBound(sys) {
		t.Errorf("infeasible fitness %v not lifted above bound %v", res.Fitness, PowerUpperBound(sys))
	}
}

func TestPowerUpperBoundDominatesFeasible(t *testing.T) {
	sys := testSystem(t)
	ub := PowerUpperBound(sys)
	codec, _ := NewCodec(sys)
	ev := NewEvaluator(sys, false)
	genome := make([]int, codec.Len())
	// Enumerate all 16 mappings; every feasible one must stay below ub.
	for {
		res, err := ev.Evaluate(codec.Decode(genome))
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible() && res.AvgPower > ub {
			t.Fatalf("feasible power %v above bound %v", res.AvgPower, ub)
		}
		k := 0
		for k < len(genome) {
			genome[k]++
			if genome[k] < codec.Alleles(k) {
				break
			}
			genome[k] = 0
			k++
		}
		if k == len(genome) {
			break
		}
	}
}

func TestReweighted(t *testing.T) {
	sys := testSystem(t)
	ev := NewEvaluator(sys, false)
	m := model.NewMapping(sys.App)
	m[0][0], m[0][1] = 0, 0
	m[1][0], m[1][1], m[1][2] = 0, 0, 0
	res, err := ev.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reweighted(sys, nil); math.Abs(got-res.AvgPower) > 1e-15 {
		t.Errorf("Reweighted(nil) = %v, want AvgPower %v", got, res.AvgPower)
	}
	uni := res.Reweighted(sys, UniformProbs(sys))
	manual := 0.5*res.ModePowers[0].Total() + 0.5*res.ModePowers[1].Total()
	if math.Abs(uni-manual) > 1e-15 {
		t.Errorf("Reweighted(uniform) = %v, want %v", uni, manual)
	}
}

func TestShutdownMutationEvacuatesPE(t *testing.T) {
	sys := testSystem(t)
	codec, _ := NewCodec(sys)
	mut := codec.ShutdownMutation()
	rng := rand.New(rand.NewSource(1))
	// Start with the shared task on hw in both modes.
	genome := codec.Encode(func() model.Mapping {
		m := model.NewMapping(sys.App)
		m[0][0], m[0][1] = 1, 0
		m[1][0], m[1][1], m[1][2] = 1, 1, 1
		return m
	}())
	changedOnce := false
	for i := 0; i < 50; i++ {
		g := append([]int(nil), genome...)
		if !mut(g, rng) {
			continue
		}
		changedOnce = true
		m := codec.Decode(g)
		if err := m.Validate(sys); err != nil {
			t.Fatalf("mutated mapping invalid: %v", err)
		}
		// The victim PE must be fully evacuated in the chosen mode: one of
		// the two modes no longer uses some PE it used before.
		freed := false
		for mi := range m {
			for pe := model.PEID(0); pe < 2; pe++ {
				before := codec.Decode(genome).UsesPE(model.ModeID(mi), pe)
				after := m.UsesPE(model.ModeID(mi), pe)
				if before && !after {
					freed = true
				}
			}
		}
		if !freed {
			t.Error("shutdown mutation changed the genome without freeing a PE")
		}
	}
	if !changedOnce {
		t.Error("shutdown mutation never applied")
	}
}

func TestAreaMutationMovesTasksOffViolatedPE(t *testing.T) {
	sys := testSystem(t)
	sys.Arch.PEs[1].Area = 100 // any hw core violates
	codec, _ := NewCodec(sys)
	mut := codec.AreaMutation()
	rng := rand.New(rand.NewSource(2))
	genome := codec.Encode(func() model.Mapping {
		m := model.NewMapping(sys.App)
		m[0][0], m[0][1] = 1, 0
		m[1][0], m[1][1], m[1][2] = 1, 1, 1
		return m
	}())
	moved := false
	for i := 0; i < 50 && !moved; i++ {
		g := append([]int(nil), genome...)
		if mut(g, rng) {
			moved = true
			for k := range g {
				// Moved tasks must land on software PEs.
				if g[k] != genome[k] && codec.PEAt(g, k) != 0 {
					t.Error("area mutation must move tasks to software")
				}
			}
		}
	}
	if !moved {
		t.Error("area mutation never fired despite violation")
	}
	// Without violation it must be a no-op.
	sys2 := testSystem(t)
	codec2, _ := NewCodec(sys2)
	mut2 := codec2.AreaMutation()
	allSW := make([]int, codec2.Len())
	for i := 0; i < 20; i++ {
		g := append([]int(nil), allSW...)
		if mut2(g, rng) {
			t.Fatal("area mutation fired without violation")
		}
	}
}

func TestTimingMutationMovesToHardware(t *testing.T) {
	sys := testSystem(t)
	sys.App.Modes[1].Period = 9e-3 // all-SW critical path (10+8) severely late
	codec, _ := NewCodec(sys)
	mut := codec.TimingMutation()
	rng := rand.New(rand.NewSource(3))
	allSW := make([]int, codec.Len())
	fired := false
	for i := 0; i < 50 && !fired; i++ {
		g := append([]int(nil), allSW...)
		if mut(g, rng) {
			fired = true
			hwCount := 0
			for k := range g {
				if codec.PEAt(g, k) == 1 {
					hwCount++
				}
			}
			if hwCount == 0 {
				t.Error("timing mutation fired but moved nothing to hardware")
			}
		}
	}
	if !fired {
		t.Error("timing mutation never fired on a late system")
	}
}

func TestSynthesizeFindsFeasibleLowPower(t *testing.T) {
	sys := testSystem(t)
	res, err := Synthesize(sys, Options{
		GA:   ga.Config{PopSize: 24, MaxGenerations: 60, Stagnation: 20},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Feasible() {
		t.Fatal("synthesis of an easy system must be feasible")
	}
	best, err := Exhaustive(nil, sys, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Fitness > best.Fitness+1e-12 {
		t.Errorf("GA fitness %v worse than exhaustive optimum %v", res.Best.Fitness, best.Fitness)
	}
	if res.Elapsed <= 0 || res.GA.Evaluations == 0 {
		t.Error("run statistics must be populated")
	}
}

func TestSynthesizeNeglectReportsTrueProfile(t *testing.T) {
	sys := testSystem(t)
	res, err := Synthesize(sys, Options{
		NeglectProbabilities: true,
		GA:                   ga.Config{PopSize: 24, MaxGenerations: 60, Stagnation: 20},
		Seed:                 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The reported power must equal re-evaluating the mapping under the
	// true probabilities.
	ev := NewEvaluator(sys, false)
	check, err := ev.Evaluate(res.Best.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(check.AvgPower-res.Best.AvgPower) > 1e-15 {
		t.Errorf("reported power %v, re-evaluated %v", res.Best.AvgPower, check.AvgPower)
	}
}

func TestExhaustiveRejectsHugeSpace(t *testing.T) {
	// 40 tasks x 2 alleles = 2^40 mappings: must refuse.
	b := model.NewBuilder("huge")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{Name: "cpu2", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu", "cpu2")
	b.AddType("k",
		model.ImplSpec{PE: "cpu", Time: 1e-3, Power: 1e-3},
		model.ImplSpec{PE: "cpu2", Time: 1e-3, Power: 1e-3},
	)
	b.BeginMode("m", 1, 1)
	for i := 0; i < 40; i++ {
		b.AddTask(string(rune('a'+i%26))+string(rune('0'+i/26)), "k", 0)
	}
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exhaustive(nil, sys, false, nil); err == nil {
		t.Fatal("huge search space must be rejected")
	}
}

func TestDefaultWeights(t *testing.T) {
	w := DefaultWeights()
	if w.Area <= 0 || w.Transition <= 0 || w.Timing <= 0 {
		t.Errorf("default weights must be positive: %+v", w)
	}
}

func TestUniformProbs(t *testing.T) {
	sys := testSystem(t)
	p := UniformProbs(sys)
	if len(p) != 2 || p[0] != 0.5 || p[1] != 0.5 {
		t.Errorf("uniform probs = %v", p)
	}
}

func TestSynthesizeWithRefinement(t *testing.T) {
	sys := testSystem(t)
	res, err := Synthesize(sys, Options{
		GA:               ga.Config{PopSize: 16, MaxGenerations: 30, Stagnation: 10},
		Seed:             1,
		RefineIterations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Feasible() {
		t.Fatal("refined synthesis must stay feasible")
	}
	// Determinism: refinement seeds derive from the mapping, so repeated
	// evaluation of the same mapping gives identical results.
	ev := &Evaluator{Sys: sys, Weights: DefaultWeights(), RefineIterations: 8}
	a, err := ev.Evaluate(res.Best.Mapping)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Evaluate(res.Best.Mapping.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fitness != b.Fitness {
		t.Error("refined evaluation not deterministic")
	}
}

func TestRefinementNeverWorseInEvaluator(t *testing.T) {
	sys := testSystem(t)
	codec, _ := NewCodec(sys)
	plain := &Evaluator{Sys: sys, Weights: DefaultWeights()}
	refined := &Evaluator{Sys: sys, Weights: DefaultWeights(), RefineIterations: 10}
	genome := make([]int, codec.Len())
	for {
		m := codec.Decode(genome)
		a, err := plain.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := refined.Evaluate(m)
		if err != nil {
			t.Fatal(err)
		}
		// Refinement optimises lateness/makespan/energy lexicographically;
		// the total lateness must never grow.
		for mi := range a.Lateness {
			if b.Lateness[mi] > a.Lateness[mi]+1e-9 {
				t.Fatalf("refinement increased lateness in mode %d", mi)
			}
		}
		k := 0
		for k < len(genome) {
			genome[k]++
			if genome[k] < codec.Alleles(k) {
				break
			}
			genome[k] = 0
			k++
		}
		if k == len(genome) {
			break
		}
	}
}
