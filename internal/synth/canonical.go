package synth

import (
	"fmt"
	"strconv"
	"strings"
)

// EngineVersion names the synthesis engine revision for cache provenance.
// It participates in the content-addressed result key (internal/cas), so
// bumping it invalidates every cached result at once. Bump it whenever a
// change alters the search trajectory or the result schema for the same
// (spec, seed, options) — GA operator changes, evaluation-order changes,
// fitness formula changes — and leave it alone for pure speedups that are
// proven byte-identical.
const EngineVersion = "momosyn-synth/1"

// CanonicalOptions renders the result-shaping subset of Options in a
// canonical, versioned byte form for content-addressed keying. Two Options
// values produce the same bytes exactly when a deterministic run under them
// yields the same certified result: runtime plumbing (Context, checkpoint
// wiring, fault budget, Obs, certifier tuning) is excluded because it never
// changes the search trajectory, while every trajectory-shaping field —
// including the seed and each GA parameter — is written out explicitly,
// field by field, so adding a new Options field forces a conscious decision
// here instead of silently keying (or not keying) on it.
func CanonicalOptions(o Options) []byte {
	var b strings.Builder
	b.WriteString("optv1\n")
	writeBool(&b, "dvs", o.UseDVS)
	writeBool(&b, "neglect", o.NeglectProbabilities)
	writeBool(&b, "dvs_sw_only", o.DVSSoftwareOnly)
	writeBool(&b, "no_replica_cores", o.NoReplicaCores)
	writeBool(&b, "no_improvement_mutations", o.NoImprovementMutations)
	writeInt(&b, "refine_iterations", o.RefineIterations)
	writeInt(&b, "stall_window", o.StallWindow)
	fmt.Fprintf(&b, "seed=%d\n", o.Seed)
	writeBool(&b, "certify", o.Certify)
	writeFloat(&b, "w_area", o.Weights.Area)
	writeFloat(&b, "w_transition", o.Weights.Transition)
	writeFloat(&b, "w_timing", o.Weights.Timing)
	writeInt(&b, "ga_pop_size", o.GA.PopSize)
	writeInt(&b, "ga_max_generations", o.GA.MaxGenerations)
	writeInt(&b, "ga_stagnation", o.GA.Stagnation)
	writeInt(&b, "ga_offspring", o.GA.Offspring)
	writeInt(&b, "ga_tournament_size", o.GA.TournamentSize)
	writeFloat(&b, "ga_mutation_rate", o.GA.MutationRate)
	writeFloat(&b, "ga_selection_pressure", o.GA.SelectionPressure)
	writeFloat(&b, "ga_improvement_rate", o.GA.ImprovementRate)
	writeFloat(&b, "ga_min_diversity", o.GA.MinDiversity)
	return []byte(b.String())
}

func writeBool(b *strings.Builder, key string, v bool) {
	fmt.Fprintf(b, "%s=%t\n", key, v)
}

func writeInt(b *strings.Builder, key string, v int) {
	fmt.Fprintf(b, "%s=%d\n", key, v)
}

func writeFloat(b *strings.Builder, key string, v float64) {
	b.WriteString(key)
	b.WriteByte('=')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}
