package synth_test

import (
	"fmt"
	"log"

	"momosyn/internal/bench"
	"momosyn/internal/ga"
	"momosyn/internal/synth"
)

// ExampleSynthesize runs the complete co-synthesis on the paper's Fig. 2
// motivational example and prints the probability-weighted average power
// of the best implementation — matching the paper's 15.7423 mWs optimum.
func ExampleSynthesize() {
	sys, err := bench.Figure2System()
	if err != nil {
		log.Fatal(err)
	}
	res, err := synth.Synthesize(sys, synth.Options{
		GA:   ga.Config{PopSize: 24, MaxGenerations: 80, Stagnation: 25},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.4f mWs, feasible=%v\n", res.Best.AvgPower*1e3, res.Best.Feasible())
	// Output:
	// 15.7423 mWs, feasible=true
}

// ExampleExhaustive verifies the probability-neglecting optimum of the
// same example by enumerating the full mapping space under uniform mode
// probabilities.
func ExampleExhaustive() {
	sys, err := bench.Figure2System()
	if err != nil {
		log.Fatal(err)
	}
	best, err := synth.Exhaustive(nil, sys, false, synth.UniformProbs(sys))
	if err != nil {
		log.Fatal(err)
	}
	// Judged under the true usage profile, the uniform optimum costs the
	// paper's 26.7158 mWs.
	fmt.Printf("%.4f mWs\n", best.Reweighted(sys, nil)*1e3)
	// Output:
	// 26.7158 mWs
}
