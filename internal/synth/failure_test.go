package synth

import (
	"testing"

	"momosyn/internal/ga"
	"momosyn/internal/model"
)

// Failure-injection tests: systems that admit no feasible implementation
// must come back flagged infeasible with a fitness above the feasible
// bound — never silently "solved".

func TestSynthesizeImpossibleTiming(t *testing.T) {
	// One software-only task whose execution time exceeds the period on
	// the only PE: no mapping can be feasible.
	b := model.NewBuilder("impossible")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu")
	b.AddType("slow", model.ImplSpec{PE: "cpu", Time: 50e-3, Power: 1e-3})
	b.BeginMode("m", 1, 10e-3)
	b.AddTask("t", "slow", 0)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(sys, Options{GA: ga.Config{PopSize: 8, MaxGenerations: 10, Stagnation: 5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Feasible() {
		t.Fatal("impossible timing reported feasible")
	}
	if res.Best.TimingPenalty <= 1 {
		t.Error("timing penalty missing")
	}
	if res.Best.Fitness <= PowerUpperBound(sys) {
		t.Error("infeasible result not lifted above the feasible bound")
	}
}

func TestSynthesizeImpossibleArea(t *testing.T) {
	// A hardware-only task type whose core exceeds the die: area violation
	// is unavoidable.
	b := model.NewBuilder("bigcore")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{Name: "hw", Class: model.ASIC, Vmax: 3.3, Vt: 0.8, Area: 100})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu", "hw")
	b.AddType("huge", model.ImplSpec{PE: "hw", Time: 1e-3, Power: 1e-3, Area: 500})
	b.BeginMode("m", 1, 100e-3)
	b.AddTask("t", "huge", 0)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(sys, Options{GA: ga.Config{PopSize: 8, MaxGenerations: 10, Stagnation: 5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Feasible() {
		t.Fatal("impossible area reported feasible")
	}
	if res.Best.AreaPenalty <= 1 {
		t.Error("area penalty missing")
	}
}

func TestSynthesizeUnroutableArchitecture(t *testing.T) {
	// Two tasks whose types live on mutually unconnected PEs: the
	// communication between them cannot be routed.
	b := model.NewBuilder("islands")
	b.AddPE(model.PE{Name: "cpu0", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddPE(model.PE{Name: "cpu1", Class: model.GPP, Vmax: 3.3, Vt: 0.8})
	b.AddCL(model.CL{Name: "loop0", BytesPerSec: 1e6}, "cpu0")
	b.AddCL(model.CL{Name: "loop1", BytesPerSec: 1e6}, "cpu1")
	b.AddType("only0", model.ImplSpec{PE: "cpu0", Time: 1e-3, Power: 1e-3})
	b.AddType("only1", model.ImplSpec{PE: "cpu1", Time: 1e-3, Power: 1e-3})
	b.BeginMode("m", 1, 100e-3)
	b.AddTask("a", "only0", 0)
	b.AddTask("b", "only1", 0)
	b.AddEdge("a", "b", 100)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(sys, Options{GA: ga.Config{PopSize: 8, MaxGenerations: 10, Stagnation: 5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Feasible() {
		t.Fatal("unroutable communication reported feasible")
	}
	if res.Best.Unroutable == 0 {
		t.Error("unroutable count missing")
	}
}

func TestSynthesizeImpossibleTransition(t *testing.T) {
	// An FPGA-only type pair whose swap always exceeds the transition
	// limit: the candidate must carry a transition penalty.
	b := model.NewBuilder("slowswap")
	b.AddPE(model.PE{Name: "fpga", Class: model.FPGA, Vmax: 3.3, Vt: 0.8, Area: 300, ReconfigTime: 50e-3})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "fpga")
	b.AddType("x", model.ImplSpec{PE: "fpga", Time: 1e-3, Power: 1e-3, Area: 200})
	b.AddType("y", model.ImplSpec{PE: "fpga", Time: 1e-3, Power: 1e-3, Area: 200})
	b.BeginMode("m0", 0.5, 100e-3)
	b.AddTask("a", "x", 0)
	b.BeginMode("m1", 0.5, 100e-3)
	b.AddTask("b", "y", 0)
	b.AddTransition("m0", "m1", 1e-3) // far below the 50 ms reconfiguration
	b.AddTransition("m1", "m0", 1e-3)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(sys, Options{GA: ga.Config{PopSize: 8, MaxGenerations: 10, Stagnation: 5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Feasible() {
		t.Fatal("impossible transition reported feasible")
	}
	if res.Best.TransPenalty <= 1 {
		t.Error("transition penalty missing")
	}
}
