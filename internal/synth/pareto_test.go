package synth

import (
	"testing"

	"momosyn/internal/ga"
	"momosyn/internal/model"
)

// paretoSystem: a single mode with two tasks whose types trade power
// against area distinctly, so the true front is enumerable.
func paretoSystem(t *testing.T) *model.System {
	t.Helper()
	b := model.NewBuilder("pareto")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8, StaticPower: 1e-4})
	b.AddPE(model.PE{Name: "hw", Class: model.ASIC, Vmax: 3.3, Vt: 0.8, Area: 1000, StaticPower: 1e-4})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6}, "cpu", "hw")
	b.AddType("big",
		model.ImplSpec{PE: "cpu", Time: 20e-3, Power: 10e-3},
		model.ImplSpec{PE: "hw", Time: 1e-3, Power: 1e-3, Area: 600},
	)
	b.AddType("small",
		model.ImplSpec{PE: "cpu", Time: 10e-3, Power: 6e-3},
		model.ImplSpec{PE: "hw", Time: 1e-3, Power: 1e-3, Area: 300},
	)
	b.BeginMode("m", 1, 0.1)
	b.AddTask("a", "big", 0)
	b.AddTask("b", "small", 0)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestParetoFindsFullFront(t *testing.T) {
	sys := paretoSystem(t)
	front, err := Pareto(sys, ParetoOptions{
		GA:   ga.Config{PopSize: 24, MaxGenerations: 40},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Four mappings exist; all four are Pareto-optimal here:
	//  both SW      (area 0),
	//  b on HW      (area 300),
	//  a on HW      (area 600),
	//  both on HW   (area 900).
	if len(front) != 4 {
		t.Fatalf("front size = %d, want 4: %+v", len(front), front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Power < front[i-1].Power {
			t.Error("front not sorted by power")
		}
		if front[i].AreaFrac < front[i-1].AreaFrac {
			// sorted ascending by power => area must descend.
			continue
		}
		t.Errorf("point %d does not trade area for power: %+v vs %+v",
			i, front[i-1], front[i])
	}
	// Extremes: all-HW uses 900/1000 cells; all-SW none.
	if front[0].AreaFrac != 0.9 {
		t.Errorf("cheapest-power point area = %v, want 0.9", front[0].AreaFrac)
	}
	if front[len(front)-1].AreaFrac != 0 {
		t.Errorf("no-silicon point area = %v, want 0", front[len(front)-1].AreaFrac)
	}
	for _, pt := range front {
		if !pt.Feasible {
			t.Errorf("all points of this easy system are feasible: %+v", pt)
		}
		if err := pt.Mapping.Validate(sys); err != nil {
			t.Errorf("front mapping invalid: %v", err)
		}
	}
}

func TestParetoIgnoresAreaConstraint(t *testing.T) {
	// Shrink the die so that both-HW (900 cells) violates the 700-cell
	// area; the exploration must still report that point (AreaFrac > 1).
	sys := paretoSystem(t)
	sys.Arch.PEs[1].Area = 700
	front, err := Pareto(sys, ParetoOptions{
		GA:   ga.Config{PopSize: 24, MaxGenerations: 40},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	over := false
	for _, pt := range front {
		if pt.AreaFrac > 1 {
			over = true
		}
	}
	if !over {
		t.Error("exploration should surface beyond-die design points")
	}
}
