package synth

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"momosyn/internal/ga"
	"momosyn/internal/obs"
	"momosyn/internal/runctl"
)

// TestTracingDoesNotChangeSynthesis is the determinism regression of the
// observability layer: the same seed must produce a byte-identical
// synthesis whether tracing is attached or not, because instrumentation
// only reads the clock and never the random stream.
func TestTracingDoesNotChangeSynthesis(t *testing.T) {
	sys := testSystem(t)
	opts := Options{
		UseDVS: true,
		GA:     ga.Config{PopSize: 16, MaxGenerations: 25, Stagnation: 10},
		Seed:   42,
	}
	plain, err := Synthesize(sys, opts)
	if err != nil {
		t.Fatal(err)
	}

	sink := &obs.CollectSink{}
	traced := opts
	traced.Obs = obs.NewRun(nil, sink)
	withTrace, err := Synthesize(sys, traced)
	if err != nil {
		t.Fatal(err)
	}

	a, b := canonicalReport(plain), canonicalReport(withTrace)
	if a != b {
		t.Fatalf("tracing changed the synthesis:\n--- plain ---\n%s--- traced ---\n%s", a, b)
	}
	if withTrace.Timings.Evaluations == 0 {
		t.Error("instrumented run recorded no evaluation timings")
	}
	if plain.Timings.Evaluations != 0 {
		t.Error("uninstrumented run recorded evaluation timings")
	}
}

// TestTraceEventStream checks the content of the emitted events: schema
// validity, sequential generation numbering, the paper's per-generation
// convergence fields and per-operator mutation acceptance counts.
func TestTraceEventStream(t *testing.T) {
	sys := testSystem(t)
	sink := &obs.CollectSink{}
	run := obs.NewRun(nil, sink)
	res, err := Synthesize(sys, Options{
		UseDVS: true,
		GA:     ga.Config{PopSize: 16, MaxGenerations: 20, Stagnation: 20},
		Seed:   7,
		Obs:    run,
	})
	if err != nil {
		t.Fatal(err)
	}

	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	for i, ev := range events {
		if err := obs.ValidateEvent(ev); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
	}
	if events[0].Ev != obs.EvRunStart {
		t.Errorf("first event is %q, want run_start", events[0].Ev)
	}
	last := events[len(events)-1]
	if last.Ev != obs.EvRunEnd {
		t.Fatalf("last event is %q, want run_end", last.Ev)
	}
	if last.End.Generations != res.GA.Generations || last.End.Evaluations != res.GA.Evaluations {
		t.Errorf("run_end reports %d gens / %d evals, result has %d / %d",
			last.End.Generations, last.End.Evaluations, res.GA.Generations, res.GA.Evaluations)
	}

	var gens []*obs.GenerationEvent
	evals := 0
	for _, ev := range events {
		switch ev.Ev {
		case obs.EvGeneration:
			gens = append(gens, ev.Gen)
		case obs.EvEval:
			evals++
		}
	}
	if len(gens) != res.GA.Generations {
		t.Fatalf("%d generation events for %d generations", len(gens), res.GA.Generations)
	}
	if evals == 0 {
		t.Error("no per-evaluation timing spans emitted")
	}
	for i, g := range gens {
		if g.Gen != i+1 {
			t.Fatalf("generation events not sequential: event %d numbered %d", i, g.Gen)
		}
		if float64(g.BestFitness) != res.GA.History[i] {
			t.Errorf("gen %d best fitness %v, history records %v", g.Gen, float64(g.BestFitness), res.GA.History[i])
		}
		if !(float64(g.AvgPower) > 0) {
			t.Errorf("gen %d average power %v, want > 0", g.Gen, float64(g.AvgPower))
		}
		if float64(g.TimingPenalty) < 1 || float64(g.AreaPenalty) < 1 || float64(g.TransPenalty) < 1 {
			t.Errorf("gen %d penalty terms below 1: %v %v %v",
				g.Gen, float64(g.TimingPenalty), float64(g.AreaPenalty), float64(g.TransPenalty))
		}
		if len(g.Mutations) != 4 {
			t.Fatalf("gen %d reports %d mutation operators, want 4", g.Gen, len(g.Mutations))
		}
	}
	wantNames := []string{"shutdown", "area", "timing", "transition"}
	final := gens[len(gens)-1]
	attempts := 0
	for i, m := range final.Mutations {
		if m.Name != wantNames[i] {
			t.Errorf("mutation operator %d named %q, want %q", i, m.Name, wantNames[i])
		}
		attempts += m.Attempts
	}
	if attempts == 0 {
		t.Error("no improvement-mutation attempts recorded over the whole run")
	}

	// The phase histograms must account for every instrumented evaluation.
	found := false
	for _, st := range run.Export() {
		if st.Name == "synth.phase_seconds.list_sched" && st.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Error("list-scheduling phase histogram is empty")
	}
}

// TestTraceResumeContinuity: a resumed run's telemetry continues where the
// interrupted run stopped — generation events pick up at the next
// generation, run_start records the resume point, and checkpointed metric
// state carries the cumulative counters across the interruption.
func TestTraceResumeContinuity(t *testing.T) {
	sys := widerSystem(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")

	// Interrupted, instrumented run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := runOpts(ckpt)
	first.CheckpointEvery = 3
	first.Context = ctx
	evals := 0
	first.evalHook = func([]int) {
		evals++
		if evals == 60 {
			cancel()
		}
	}
	sink1 := &obs.CollectSink{}
	first.Obs = obs.NewRun(nil, sink1)
	part, err := Synthesize(sys, first)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Partial {
		t.Fatal("first run was not interrupted")
	}

	cp, err := runctl.Load(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Metrics) == 0 {
		t.Fatal("checkpoint carries no metric state")
	}
	ckptEvals := uint64(0)
	for _, st := range cp.Metrics {
		if st.Name == "synth.evaluations" && st.Kind == "counter" {
			ckptEvals = uint64(st.Value)
		}
	}
	if ckptEvals == 0 {
		t.Fatal("checkpointed synth.evaluations counter is zero")
	}
	if len(cp.Snapshot.MutStats) != 4 {
		t.Fatalf("checkpoint carries %d mutator stat entries, want 4", len(cp.Snapshot.MutStats))
	}

	// Resumed, instrumented run.
	second := runOpts(ckpt)
	second.CheckpointEvery = 3
	second.Resume = true
	sink2 := &obs.CollectSink{}
	run2 := obs.NewRun(nil, sink2)
	second.Obs = run2
	full, err := Synthesize(sys, second)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatalf("resumed run unexpectedly partial: %s", full.GA.Reason)
	}

	events := sink2.Events()
	if events[0].Ev != obs.EvRunStart {
		t.Fatalf("first resumed event is %q", events[0].Ev)
	}
	if events[0].Run.ResumedFrom != cp.Snapshot.Generation {
		t.Errorf("run_start resumed_from = %d, checkpoint was at generation %d",
			events[0].Run.ResumedFrom, cp.Snapshot.Generation)
	}
	var firstGen, lastGen *obs.GenerationEvent
	for _, ev := range events {
		if ev.Ev == obs.EvGeneration {
			if firstGen == nil {
				firstGen = ev.Gen
			}
			lastGen = ev.Gen
		}
	}
	if firstGen == nil {
		t.Fatal("resumed run emitted no generation events")
	}
	if firstGen.Gen != cp.Snapshot.Generation+1 {
		t.Errorf("resumed trace starts at generation %d, want %d", firstGen.Gen, cp.Snapshot.Generation+1)
	}
	if lastGen.Gen != full.GA.Generations {
		t.Errorf("resumed trace ends at generation %d, run completed %d", lastGen.Gen, full.GA.Generations)
	}
	// Mutation attempts are cumulative across the interruption: the resumed
	// run's totals can only grow past the checkpointed ones.
	for i, m := range lastGen.Mutations {
		if m.Attempts < cp.Snapshot.MutStats[i].Attempts {
			t.Errorf("mutator %q attempts %d fell below the checkpointed %d",
				m.Name, m.Attempts, cp.Snapshot.MutStats[i].Attempts)
		}
	}

	// Restored metric state continues the cumulative evaluation counter.
	resumedEvals := uint64(0)
	for _, st := range run2.Export() {
		if st.Name == "synth.evaluations" && st.Kind == "counter" {
			resumedEvals = uint64(st.Value)
		}
	}
	if resumedEvals <= ckptEvals {
		t.Errorf("resumed evaluation counter %d does not continue from checkpointed %d", resumedEvals, ckptEvals)
	}
}

// TestMeanFitnessFieldFinite: the generation events of a healthy run carry
// a finite population-mean fitness at convergence.
func TestMeanFitnessFieldFinite(t *testing.T) {
	sys := testSystem(t)
	sink := &obs.CollectSink{}
	_, err := Synthesize(sys, Options{
		GA:   ga.Config{PopSize: 12, MaxGenerations: 15, Stagnation: 15},
		Seed: 3,
		Obs:  obs.NewRun(nil, sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	var last *obs.GenerationEvent
	for _, ev := range sink.Events() {
		if ev.Ev == obs.EvGeneration {
			last = ev.Gen
		}
	}
	if last == nil {
		t.Fatal("no generation events")
	}
	if math.IsNaN(float64(last.MeanFitness)) {
		t.Error("mean fitness is NaN")
	}
	if last.Infeasible > 0 && math.IsInf(float64(last.MeanFitness), 1) && last.Infeasible < 12 {
		t.Error("mean fitness +Inf despite feasible individuals in the population")
	}
}
