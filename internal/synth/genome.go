package synth

import (
	"fmt"
	"strings"

	"momosyn/internal/model"
)

// Codec translates between GA genomes (integer strings) and multi-mode
// task mappings. Locus k corresponds to one (mode, task) pair in mode-major
// order; its alleles index the candidate PEs of the task's type, so every
// genome decodes to a mapping in which each task has an implementation on
// its PE ("multi-mode mapping string", paper Fig. 2).
type Codec struct {
	sys *model.System
	// loci[k] identifies the task of locus k.
	loci []locus
	// candidates[k] lists the admissible PEs of locus k.
	candidates [][]model.PEID
	// index[mode][task] is the locus of the task.
	index [][]int
}

type locus struct {
	mode model.ModeID
	task model.TaskID
}

// NewCodec builds the locus table of the system. It fails when some task
// type has no implementation alternative (the library validator also
// rejects that).
func NewCodec(sys *model.System) (*Codec, error) {
	c := &Codec{sys: sys}
	c.index = make([][]int, len(sys.App.Modes))
	for mi, mode := range sys.App.Modes {
		c.index[mi] = make([]int, len(mode.Graph.Tasks))
		for ti, task := range mode.Graph.Tasks {
			cands := sys.CandidatePEs(task.Type)
			if len(cands) == 0 {
				return nil, fmt.Errorf("synth: task %q (mode %q) has no candidate PE", task.Name, mode.Name)
			}
			c.index[mi][ti] = len(c.loci)
			c.loci = append(c.loci, locus{model.ModeID(mi), model.TaskID(ti)})
			c.candidates = append(c.candidates, cands)
		}
	}
	return c, nil
}

// Len returns the genome length (total number of tasks over all modes).
func (c *Codec) Len() int { return len(c.loci) }

// Alleles returns the number of candidate PEs at locus k.
func (c *Codec) Alleles(k int) int { return len(c.candidates[k]) }

// Locus returns the genome position of the given task.
func (c *Codec) Locus(mode model.ModeID, task model.TaskID) int {
	return c.index[mode][task]
}

// PEAt decodes locus k of the genome to its PE.
func (c *Codec) PEAt(genome []int, k int) model.PEID {
	return c.candidates[k][genome[k]%len(c.candidates[k])]
}

// Decode expands a genome into a mapping.
func (c *Codec) Decode(genome []int) model.Mapping {
	m := model.NewMapping(c.sys.App)
	for k, l := range c.loci {
		m[l.mode][l.task] = c.PEAt(genome, k)
	}
	return m
}

// Encode writes the mapping into a fresh genome; PEs absent from a locus's
// candidate list map to allele 0 (the decoder keeps genomes valid by
// construction, so this only happens for hand-built mappings).
func (c *Codec) Encode(m model.Mapping) []int {
	g := make([]int, len(c.loci))
	for k, l := range c.loci {
		pe := m[l.mode][l.task]
		g[k] = 0
		for i, cand := range c.candidates[k] {
			if cand == pe {
				g[k] = i
				break
			}
		}
	}
	return g
}

// SetPE rewrites locus k of the genome to the given PE if it is a
// candidate there, reporting success.
func (c *Codec) SetPE(genome []int, k int, pe model.PEID) bool {
	for i, cand := range c.candidates[k] {
		if cand == pe {
			genome[k] = i
			return true
		}
	}
	return false
}

// Key returns a compact string key of the genome for fitness caching.
func (c *Codec) Key(genome []int) string {
	var sb strings.Builder
	sb.Grow(len(genome))
	for _, v := range genome {
		sb.WriteByte(byte(v))
	}
	return sb.String()
}

// CandidatesAt returns the candidate PEs of locus k (shared slice; do not
// mutate).
func (c *Codec) CandidatesAt(k int) []model.PEID { return c.candidates[k] }
