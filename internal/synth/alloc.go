// Package synth implements the paper's primary contribution: the outer
// genetic optimisation loop of the multi-mode co-synthesis. It encodes
// multi-mode task mappings as genomes, allocates hardware cores (with
// replica cores for parallel low-mobility tasks), evaluates implementation
// candidates (scheduling, optional DVS, probability-weighted average power,
// area / timing / transition penalties) and applies the four
// problem-specific improvement mutations of paper section 4.1.
package synth

import (
	"sort"

	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// coreKey identifies the core pool of one task type on one hardware PE.
type coreKey struct {
	pe model.PEID
	tt model.TaskTypeID
}

// Allocation is the hardware core allocation of one implementation
// candidate: how many core instances of each task type exist on each
// hardware PE while each mode is active. ASIC allocations are static (the
// same cores exist in every mode); FPGA allocations are per-mode working
// sets exchanged by reconfiguration during mode transitions.
type Allocation struct {
	// inst[mode] maps (pe, type) to the instance count during that mode.
	inst []map[coreKey]int
	// UsedArea[mode][pe] is the silicon area occupied during the mode.
	UsedArea [][]int
	// Violation[pe] is the worst-case area excess in cells over all modes
	// (zero when the PE's area constraint holds).
	Violation []int
}

var _ sched.CoreProvider = (*Allocation)(nil)

// Instances implements sched.CoreProvider.
//
//mm:noalloc
func (a *Allocation) Instances(mode model.ModeID, pe model.PEID, tt model.TaskTypeID) int {
	return a.inst[mode][coreKey{pe, tt}]
}

// SetInstances overrides the instance count of one (mode, pe, type) core
// pool. It exists as a seam for fault injection (internal/verify/faultinj)
// and deliberately bypasses the allocator's area bookkeeping — the
// certifier must notice the resulting overflow on its own.
func (a *Allocation) SetInstances(mode model.ModeID, pe model.PEID, tt model.TaskTypeID, n int) {
	a.inst[mode][coreKey{pe, tt}] = n
}

// AreaFeasible reports whether no PE exceeds its area budget in any mode.
func (a *Allocation) AreaFeasible() bool {
	for _, v := range a.Violation {
		if v > 0 {
			return false
		}
	}
	return true
}

// typeDemand describes the replica-core demand of one task type on one PE.
type typeDemand struct {
	tt     model.TaskTypeID
	area   int
	demand int // max number of potentially parallel tasks (>= 1)
}

// AllocateCores implements paper Fig. 4 line 5 ("ImplementHWcores"): every
// task type mapped to a hardware PE gets one mandatory core; replica cores
// are added for task types whose tasks have overlapping mobility windows
// (likely parallel execution), as long as the area budget permits. ASICs
// allocate the per-type maximum demand over all modes statically; FPGAs
// allocate per-mode working sets.
//
// mob holds the per-mode mobility analyses (indexed by ModeID).
func AllocateCores(s *model.System, mapping model.Mapping, mob []*sched.Mobility) *Allocation {
	return AllocateCoresWith(s, mapping, mob, false)
}

// AllocateCoresWith is AllocateCores with an explicit replica toggle:
// noReplicas limits every hardware type to its single mandatory core (the
// ablation baseline without paper Fig. 4 line 5's parallelism cores).
func AllocateCoresWith(s *model.System, mapping model.Mapping, mob []*sched.Mobility, noReplicas bool) *Allocation {
	nModes := len(s.App.Modes)
	nPEs := len(s.Arch.PEs)
	a := &Allocation{
		inst:      make([]map[coreKey]int, nModes),
		UsedArea:  make([][]int, nModes),
		Violation: make([]int, nPEs),
	}
	for m := range a.inst {
		a.inst[m] = make(map[coreKey]int)
		a.UsedArea[m] = make([]int, nPEs)
	}

	for _, pe := range s.Arch.PEs {
		if !pe.Class.IsHardware() {
			continue
		}
		switch pe.Class {
		case model.ASIC:
			allocateASIC(s, mapping, mob, a, pe, noReplicas)
		case model.FPGA:
			allocateFPGA(s, mapping, mob, a, pe, noReplicas)
		default:
			// Software classes were filtered out by IsHardware above.
		}
	}
	return a
}

// demandsOn computes the replica demand per task type mapped to the PE in
// one mode: the maximum number of same-type tasks whose execution windows
// overlap.
func demandsOn(s *model.System, mapping model.Mapping, mob *sched.Mobility, mode model.ModeID, pe model.PEID) map[model.TaskTypeID]int {
	byType := make(map[model.TaskTypeID][]model.TaskID)
	g := s.App.Mode(mode).Graph
	for ti := range g.Tasks {
		if mapping[mode][ti] == pe {
			tt := g.Task(model.TaskID(ti)).Type
			byType[tt] = append(byType[tt], model.TaskID(ti))
		}
	}
	out := make(map[model.TaskTypeID]int, len(byType))
	for tt, tasks := range byType {
		d := mob.MaxOverlap(tasks)
		if d < 1 {
			d = 1
		}
		out[tt] = d
	}
	return out
}

func allocateASIC(s *model.System, mapping model.Mapping, mob []*sched.Mobility, a *Allocation, pe *model.PE, noReplicas bool) {
	// Aggregate demand over all modes: cores on a non-reconfigurable ASIC
	// exist for the lifetime of the system.
	demand := make(map[model.TaskTypeID]int)
	for m := range s.App.Modes {
		for tt, d := range demandsOn(s, mapping, mob[m], model.ModeID(m), pe.ID) {
			if d > demand[tt] {
				demand[tt] = d
			}
		}
	}
	if noReplicas {
		capDemand(demand)
	}
	counts, used := fillArea(s, demand, pe)
	if excess := usedMandatory(s, demand, pe) - pe.Area; excess > 0 {
		a.Violation[pe.ID] = excess
	}
	for m := range s.App.Modes {
		for tt, c := range counts {
			a.inst[m][coreKey{pe.ID, tt}] = c
		}
		a.UsedArea[m][pe.ID] = used
	}
}

func allocateFPGA(s *model.System, mapping model.Mapping, mob []*sched.Mobility, a *Allocation, pe *model.PE, noReplicas bool) {
	for m := range s.App.Modes {
		demand := demandsOn(s, mapping, mob[m], model.ModeID(m), pe.ID)
		if noReplicas {
			capDemand(demand)
		}
		counts, used := fillArea(s, demand, pe)
		if excess := usedMandatory(s, demand, pe) - pe.Area; excess > a.Violation[pe.ID] {
			a.Violation[pe.ID] = excess
		}
		for tt, c := range counts {
			a.inst[m][coreKey{pe.ID, tt}] = c
		}
		a.UsedArea[m][pe.ID] = used
	}
}

// capDemand limits every type's demand to the single mandatory core.
//
//mm:noalloc
func capDemand(demand map[model.TaskTypeID]int) {
	for tt := range demand {
		demand[tt] = 1
	}
}

// usedMandatory returns the area of the mandatory (one-per-type) cores.
//
//mm:noalloc
func usedMandatory(s *model.System, demand map[model.TaskTypeID]int, pe *model.PE) int {
	used := 0
	for tt := range demand {
		if im, ok := s.Lib.Type(tt).ImplOn(pe.ID); ok {
			used += im.Area
		}
	}
	return used
}

// fillArea allocates one mandatory core per demanded type, then adds
// replica cores by descending demand while the area budget permits.
// Mandatory cores are allocated even when they already exceed the budget
// (the violation is penalised by the fitness); replicas never overflow.
func fillArea(s *model.System, demand map[model.TaskTypeID]int, pe *model.PE) (map[model.TaskTypeID]int, int) {
	counts := make(map[model.TaskTypeID]int, len(demand))
	used := 0
	var tds []typeDemand
	for tt, d := range demand {
		im, ok := s.Lib.Type(tt).ImplOn(pe.ID)
		if !ok {
			// Invalid mapping (no implementation); the evaluator charges a
			// surrogate execution time, no core is allocated.
			continue
		}
		counts[tt] = 1
		used += im.Area
		tds = append(tds, typeDemand{tt: tt, area: im.Area, demand: d})
	}
	sort.Slice(tds, func(i, j int) bool {
		a, b := tds[i], tds[j]
		if a.demand != b.demand {
			return a.demand > b.demand
		}
		if a.area != b.area {
			return a.area < b.area
		}
		return a.tt < b.tt
	})
	// Round-robin replica insertion so high-demand types grow first but no
	// type starves while area remains.
	progress := true
	for progress {
		progress = false
		for _, td := range tds {
			if counts[td.tt] >= td.demand {
				continue
			}
			if used+td.area > pe.Area {
				continue
			}
			counts[td.tt]++
			used += td.area
			progress = true
		}
	}
	return counts, used
}

// TransitionTime returns the reconfiguration time of the given mode
// transition: the maximum over all FPGAs of (cores swapped in) times the
// per-core reconfiguration time. ASIC allocations are static and never
// contribute (paper section 2.2).
//
//mm:noalloc
func (a *Allocation) TransitionTime(s *model.System, tr model.Transition) float64 {
	worst := 0.0
	for _, pe := range s.Arch.PEs {
		if pe.Class != model.FPGA || pe.ReconfigTime <= 0 {
			continue
		}
		swapIn := 0
		for key, cNew := range a.inst[tr.To] {
			if key.pe != pe.ID {
				continue
			}
			cOld := a.inst[tr.From][key]
			if cNew > cOld {
				swapIn += cNew - cOld
			}
		}
		if t := float64(swapIn) * pe.ReconfigTime; t > worst {
			worst = t
		}
	}
	return worst
}
