package synth

import (
	"testing"

	"momosyn/internal/ga"
	"momosyn/internal/model"
)

// certifySystem is a tiny two-mode instance the GA solves in a handful of
// generations.
func certifySystem(t *testing.T) *model.System {
	t.Helper()
	b := model.NewBuilder("certify-opt")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, DVS: true,
		Vmax: 3.3, Vt: 0.8, Levels: []float64{1.8, 2.5, 3.3},
		StaticPower: 0.001})
	b.AddPE(model.PE{Name: "hw", Class: model.ASIC, Area: 400, StaticPower: 0.002})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6, PowerActive: 0.004}, "cpu", "hw")
	b.AddType("t1", model.ImplSpec{PE: "cpu", Time: 0.001, Power: 0.004})
	b.AddType("t2",
		model.ImplSpec{PE: "cpu", Time: 0.002, Power: 0.005},
		model.ImplSpec{PE: "hw", Time: 0.0008, Power: 0.006, Area: 180})
	b.BeginMode("m0", 0.7, 0.040)
	b.AddTask("a", "t1", 0)
	b.AddTask("b", "t2", 0)
	b.AddEdge("a", "b", 500)
	b.BeginMode("m1", 0.3, 0.030)
	b.AddTask("u", "t2", 0)
	b.AddTask("v", "t1", 0)
	b.AddTransition("m0", "m1", 0)
	b.AddTransition("m1", "m0", 0)
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSynthesizeCertifyOption: with Options.Certify the run surfaces a
// certification report on the best implementation, and a clean run
// certifies.
func TestSynthesizeCertifyOption(t *testing.T) {
	sys := certifySystem(t)
	opts := Options{
		UseDVS: true,
		Seed:   1,
		GA:     ga.Config{PopSize: 12, MaxGenerations: 20, Stagnation: 10},
	}
	res, err := Synthesize(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Certification != nil {
		t.Fatal("certification must be nil unless requested")
	}

	opts.Certify = true
	res, err = Synthesize(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Certification == nil {
		t.Fatal("Certify option produced no report")
	}
	if !res.Certification.Certified() {
		t.Errorf("clean synthesis must certify:\n%s", res.Certification)
	}
	if res.Certification.Checks == 0 {
		t.Error("certification evaluated no checks")
	}
	// Certification never influences the fingerprint, so checkpoints stay
	// resumable across the flag.
	plain := opts
	plain.Certify = false
	if opts.fingerprint() != plain.fingerprint() {
		t.Error("Certify must not alter the options fingerprint")
	}
}
