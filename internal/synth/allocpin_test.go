package synth

import (
	"testing"

	"momosyn/internal/allocpin"
	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// Sinks defeat dead-code elimination of the measured calls.
var (
	sinkU64 uint64
	sinkF   float64
	sinkB   bool
	sinkI   int
)

// TestAllocPins proves every //mm:noalloc function in this package runs
// with zero allocations on realistic inputs (see internal/allocpin).
func TestAllocPins(t *testing.T) {
	sys := testSystem(t)
	mapping := model.NewMapping(sys.App)
	for mi := range mapping {
		for ti := range mapping[mi] {
			mapping[mi][ti] = 0
		}
	}
	mapping[0][0] = 1 // shared task on hw in mode 0: cross-PE traffic

	nModes := len(sys.App.Modes)
	mob := make([]*sched.Mobility, nModes)
	for m := 0; m < nModes; m++ {
		mm, err := sched.ComputeMobility(sys, model.ModeID(m), mapping)
		if err != nil {
			t.Fatal(err)
		}
		mob[m] = mm
	}
	alloc := AllocateCoresWith(sys, mapping, mob, false)

	e := NewEvaluator(sys, false)
	ev, err := e.Evaluate(mapping)
	if err != nil {
		t.Fatal(err)
	}
	tr := sys.App.Transitions[0]
	demand := map[model.TaskTypeID]int{0: 3, 2: 2}
	hwPE := sys.Arch.PEs[1]

	allocpin.Verify(t, ".", []allocpin.Pin{
		{Name: "mappingHash", Body: func() { sinkU64 = mappingHash(mapping, 1) }},
		{Name: "Evaluator.penalties", Body: func() { e.penalties(ev) }},
		{Name: "Evaluator.prob", Body: func() { sinkF = e.prob(1) }},
		{Name: "Evaluation.Feasible", Body: func() { sinkB = ev.Feasible() }},
		{Name: "Evaluation.Reweighted", Body: func() { sinkF = ev.Reweighted(sys, nil) }},
		{Name: "PowerUpperBound", Body: func() { sinkF = PowerUpperBound(sys) }},
		{Name: "Allocation.Instances", Body: func() { sinkI = alloc.Instances(0, hwPE.ID, 0) }},
		{Name: "Allocation.TransitionTime", Body: func() { sinkF = alloc.TransitionTime(sys, tr) }},
		{Name: "capDemand", Body: func() { capDemand(demand) }},
		{Name: "usedMandatory", Body: func() { sinkI = usedMandatory(sys, demand, hwPE) }},
	})
}
