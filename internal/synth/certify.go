package synth

import (
	"momosyn/internal/model"
	"momosyn/internal/verify"
)

// CertifyEvaluation runs the independent certifier over one evaluated
// implementation. probs selects the probability vector ev.AvgPower was
// computed under; nil means the specification's own distribution. A nil
// evaluation certifies an empty solution (which fails structurally),
// keeping callers free of nil checks.
func CertifyEvaluation(sys *model.System, ev *Evaluation, probs []float64, opts verify.Options) *verify.Report {
	if ev == nil {
		return verify.Certify(sys, verify.Solution{}, opts)
	}
	sol := verify.Solution{
		Mapping:            ev.Mapping,
		Schedules:          ev.Schedules,
		ReportedPower:      ev.AvgPower,
		ReportedModePowers: ev.ModePowers,
		ReportedTransTimes: ev.TransTimes,
		Probs:              probs,
		ClaimFeasible:      ev.Feasible(),
	}
	// A typed-nil *Allocation must not become a non-nil CoreProvider.
	if ev.Alloc != nil {
		sol.Cores = ev.Alloc
	}
	return verify.Certify(sys, sol, opts)
}
