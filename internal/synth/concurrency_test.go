package synth

import (
	"sync"
	"testing"

	"momosyn/internal/ga"
)

// TestSynthesizeConcurrentDeterministic guards the concurrency contract
// documented on Synthesize: runs executing in parallel (as mmserved's
// worker pool and mmbench -parallel do) must produce results byte-identical
// to the same runs executed sequentially. Run under -race this also proves
// the synthesis stack shares no mutable state between runs.
func TestSynthesizeConcurrentDeterministic(t *testing.T) {
	sys := testSystem(t)
	optsFor := func(seed int64) Options {
		return Options{
			UseDVS: true,
			GA:     ga.Config{PopSize: 16, MaxGenerations: 25, Stagnation: 10},
			Seed:   seed,
		}
	}
	seeds := []int64{42, 1337}

	// Sequential reference runs.
	want := make([]string, len(seeds))
	for i, seed := range seeds {
		res, err := Synthesize(sys, optsFor(seed))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = canonicalReport(res)
	}

	// The same runs, concurrently, against one shared system value.
	got := make([]string, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Synthesize(sys, optsFor(seed))
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = canonicalReport(res)
		}()
	}
	wg.Wait()
	for i, seed := range seeds {
		if errs[i] != nil {
			t.Fatalf("seed %d: %v", seed, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("seed %d: parallel synthesis differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				seed, want[i], got[i])
		}
	}
}
