package synth

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"momosyn/internal/ga"
	"momosyn/internal/model"
)

// widerSystem builds a single-mode system with a 12-locus genome (~4096
// mappings), large enough that mid-run interruption lands between
// generations rather than inside population initialisation.
func widerSystem(t *testing.T) *model.System {
	t.Helper()
	b := model.NewBuilder("runctltest")
	b.AddPE(model.PE{Name: "cpu", Class: model.GPP, Vmax: 3.3, Vt: 0.8, StaticPower: 1e-4})
	b.AddPE(model.PE{Name: "hw", Class: model.ASIC, Vmax: 3.3, Vt: 0.8, Area: 400, StaticPower: 5e-4})
	b.AddCL(model.CL{Name: "bus", BytesPerSec: 1e6, StaticPower: 1e-5}, "cpu", "hw")
	for i := 0; i < 12; i++ {
		b.AddType(fmt.Sprintf("t%d", i),
			model.ImplSpec{PE: "cpu", Time: float64(3+i%4) * 1e-3, Power: float64(1+i%3) * 1e-3},
			model.ImplSpec{PE: "hw", Time: float64(1+i%2) * 1e-3, Power: float64(i%4+1) * 0.2e-3, Area: 20 + i*5},
		)
	}
	b.BeginMode("m0", 1, 1)
	for i := 0; i < 12; i++ {
		b.AddTask(fmt.Sprintf("x%d", i), fmt.Sprintf("t%d", i), 0)
	}
	for i := 1; i < 12; i++ {
		b.AddEdge(fmt.Sprintf("x%d", i-1), fmt.Sprintf("x%d", i), 100)
	}
	sys, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// runOpts is the shared configuration of the run-control tests: small
// population, no stagnation stop, so runs are long enough to interrupt.
func runOpts(checkpoint string) Options {
	return Options{
		UseDVS:         true,
		Seed:           17,
		GA:             ga.Config{PopSize: 16, MaxGenerations: 40, Stagnation: 100},
		CheckpointPath: checkpoint,
	}
}

// TestResumeMatchesUninterrupted is the acceptance test of the
// checkpoint/resume design: a run killed partway and resumed from its
// checkpoint must converge to exactly the same final implementation as an
// uninterrupted run with the same seed.
func TestResumeMatchesUninterrupted(t *testing.T) {
	sys := widerSystem(t)
	dir := t.TempDir()

	// Reference: uninterrupted, but checkpointing (so it draws from the
	// same serialisable random stream as the interrupted pair).
	full := runOpts(filepath.Join(dir, "full.ckpt"))
	full.CheckpointEvery = 3
	ref, err := Synthesize(sys, full)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Partial {
		t.Fatalf("reference run unexpectedly partial: %s", ref.GA.Reason)
	}

	// Interrupted: cancel mid-run from inside the evaluation hook, as a
	// SIGINT would. The closing checkpoint captures the stop state.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := runOpts(filepath.Join(dir, "killed.ckpt"))
	killed.CheckpointEvery = 3
	killed.Context = ctx
	evals := 0
	killed.evalHook = func([]int) {
		evals++
		if evals == 60 {
			cancel()
		}
	}
	part, err := Synthesize(sys, killed)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Partial || part.GA.Reason != "canceled" {
		t.Fatalf("interrupted run: partial=%v reason=%q", part.Partial, part.GA.Reason)
	}
	if part.Best == nil {
		t.Fatal("interrupted run must report a best-so-far implementation")
	}
	if part.GA.Generations == 0 || part.GA.Generations >= ref.GA.Generations {
		t.Fatalf("interrupted after %d generations, reference ran %d — want a mid-run stop",
			part.GA.Generations, ref.GA.Generations)
	}

	// Resumed: same spec, seed and options, restarted from the checkpoint.
	resumed := runOpts(filepath.Join(dir, "killed.ckpt"))
	resumed.CheckpointEvery = 3
	resumed.Resume = true
	got, err := Synthesize(sys, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Partial {
		t.Fatalf("resumed run unexpectedly partial: %s", got.GA.Reason)
	}
	if got.GA.BestFitness != ref.GA.BestFitness {
		t.Errorf("resumed best fitness %v, uninterrupted %v", got.GA.BestFitness, ref.GA.BestFitness)
	}
	if got.Best.AvgPower != ref.Best.AvgPower {
		t.Errorf("resumed average power %v, uninterrupted %v", got.Best.AvgPower, ref.Best.AvgPower)
	}
	if got.GA.Generations != ref.GA.Generations || got.GA.Evaluations != ref.GA.Evaluations {
		t.Errorf("resumed ran %d gens / %d evals, uninterrupted %d / %d",
			got.GA.Generations, got.GA.Evaluations, ref.GA.Generations, ref.GA.Evaluations)
	}
	if len(got.GA.History) != len(ref.GA.History) {
		t.Fatalf("resumed history %d entries, uninterrupted %d", len(got.GA.History), len(ref.GA.History))
	}
	for i := range ref.GA.History {
		if got.GA.History[i] != ref.GA.History[i] {
			t.Fatalf("history diverges at generation %d: %v != %v", i+1, got.GA.History[i], ref.GA.History[i])
		}
	}
	for k := range ref.GA.Best {
		if got.GA.Best[k] != ref.GA.Best[k] {
			t.Fatalf("best genome differs at locus %d: %v vs %v", k, got.GA.Best, ref.GA.Best)
		}
	}
}

func TestDeadlineReturnsPartialBestSoFar(t *testing.T) {
	sys := testSystem(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	opts := Options{Seed: 3, GA: ga.Config{PopSize: 12, MaxGenerations: 50}, Context: ctx}
	res, err := Synthesize(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.GA.Reason != "deadline exceeded" {
		t.Fatalf("partial=%v reason=%q, want deadline exceeded", res.Partial, res.GA.Reason)
	}
	if res.Best == nil {
		t.Fatal("deadline-bounded run must return the best of the initial population")
	}
	if res.Best.AvgPower <= 0 {
		t.Errorf("best-so-far not evaluated: %+v", res.Best)
	}
}

func TestPanicInFitnessIsContained(t *testing.T) {
	sys := testSystem(t)
	opts := Options{Seed: 5, GA: ga.Config{PopSize: 16, MaxGenerations: 30, Stagnation: 100}}
	poisoned := func(g []int) bool { return g[0] == 1 && g[2] == 1 }
	opts.evalHook = func(g []int) {
		if poisoned(g) {
			panic("injected evaluation fault")
		}
	}
	res, err := Synthesize(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("contained faults must not abort the run: %s", res.GA.Reason)
	}
	if len(res.Faults) == 0 {
		t.Fatal("injected panics were not recorded")
	}
	for _, f := range res.Faults {
		if !poisoned(f.Genome) {
			t.Errorf("fault recorded for a healthy genome: %+v", f.Genome)
		}
		if f.Attempts != 2 || !strings.Contains(f.Err, "injected evaluation fault") {
			t.Errorf("fault = attempts %d, err %q", f.Attempts, f.Err)
		}
	}
	if res.Best == nil || poisoned(res.GA.Best) {
		t.Errorf("best genome must avoid the poisoned region: %v", res.GA.Best)
	}
	if math.IsInf(res.GA.BestFitness, 1) {
		t.Error("run converged onto an infeasible best despite healthy genomes existing")
	}
}

func TestFaultBudgetAbortsCleanly(t *testing.T) {
	sys := testSystem(t)
	opts := Options{
		Seed:        7,
		GA:          ga.Config{PopSize: 16, MaxGenerations: 50, Stagnation: 100},
		FaultBudget: 2,
	}
	opts.evalHook = func([]int) { panic("everything is broken") }
	res, err := Synthesize(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || !strings.Contains(res.GA.Reason, "fault budget exceeded") {
		t.Fatalf("partial=%v reason=%q, want fault-budget abort", res.Partial, res.GA.Reason)
	}
	if len(res.Faults) <= 2 {
		t.Errorf("faults = %d, want more than the budget", len(res.Faults))
	}
	// The closing report still works: the final evaluation bypasses the
	// hook, so even a fully poisoned run yields a diagnosable result.
	if res.Best == nil {
		t.Error("fault-budget abort must still report a best-so-far candidate")
	}
}

func TestCacheCountersAccounting(t *testing.T) {
	sys := testSystem(t)
	opts := Options{Seed: 9, GA: ga.Config{PopSize: 16, MaxGenerations: 30, Stagnation: 100}}
	uncached := 0
	opts.evalHook = func([]int) { uncached++ }
	res, err := Synthesize(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cache
	if c.Misses != uint64(uncached) {
		t.Errorf("misses = %d, hook saw %d uncached evaluations", c.Misses, uncached)
	}
	if c.Hits == 0 {
		t.Error("a 16-genome search space must produce cache hits")
	}
	if c.Entries != int(c.Misses) || c.Evictions != 0 {
		t.Errorf("entries = %d, misses = %d, evictions = %d: cache accounting broken",
			c.Entries, c.Misses, c.Evictions)
	}
	if c.Capacity != FitnessCacheCap {
		t.Errorf("capacity = %d, want %d", c.Capacity, FitnessCacheCap)
	}
	if total := c.Hits + c.Misses; uint64(res.GA.Evaluations) != total {
		t.Errorf("GA evaluations %d != cache lookups %d", res.GA.Evaluations, total)
	}
	if r := c.HitRate(); r <= 0 || r >= 1 {
		t.Errorf("hit rate = %v, want within (0,1)", r)
	}
}

func TestResumeValidation(t *testing.T) {
	sys := testSystem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "v.ckpt")
	opts := runOpts(path)
	opts.GA.MaxGenerations = 4
	opts.CheckpointEvery = 2
	if _, err := Synthesize(sys, opts); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(*Options)
		want   string
	}{
		{"different seed", func(o *Options) { o.Seed = 99 }, "seed"},
		{"different options", func(o *Options) { o.UseDVS = false }, "options"},
		{"missing file", func(o *Options) { o.CheckpointPath = filepath.Join(dir, "gone.ckpt") }, "checkpoint"},
	}
	for _, tc := range cases {
		o := opts
		o.Resume = true
		tc.mutate(&o)
		_, err := Synthesize(sys, o)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	o := opts
	o.Resume = true
	o.CheckpointPath = ""
	if _, err := Synthesize(sys, o); err == nil {
		t.Error("Resume without CheckpointPath must fail")
	}
}

func TestResumeRejectsDifferentSystem(t *testing.T) {
	sys := testSystem(t)
	path := filepath.Join(t.TempDir(), "s.ckpt")
	opts := runOpts(path)
	opts.GA.MaxGenerations = 2
	opts.CheckpointEvery = 1
	if _, err := Synthesize(sys, opts); err != nil {
		t.Fatal(err)
	}
	other := testSystem(t)
	other.App.Name = "othersys"
	opts.Resume = true
	if _, err := Synthesize(other, opts); err == nil || !strings.Contains(err.Error(), "othersys") {
		t.Errorf("resume across systems accepted: %v", err)
	}
}
