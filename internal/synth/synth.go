package synth

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"momosyn/internal/ga"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/runctl"
	"momosyn/internal/verify"
)

// mutationNames are the reporting labels of the four improvement mutations,
// in the order Synthesize passes them to the engine.
var mutationNames = [...]string{"shutdown", "area", "timing", "transition"}

// MutationName labels improvement-mutation slot i as it appears in
// Result.GA.Mutators and in trace events, for CLI reporting.
func MutationName(i int) string {
	if i >= 0 && i < len(mutationNames) {
		return mutationNames[i]
	}
	return fmt.Sprintf("mutator%d", i)
}

// FitnessCacheCap bounds the fitness cache of one synthesis run. Beyond
// this many distinct genomes the oldest entries are evicted FIFO; the run
// keeps going at full correctness (fitness is deterministic), it merely
// re-evaluates. The bound and the hit/miss/evict counters in Result.Cache
// replace the old silent insert-stop at the same size.
const FitnessCacheCap = 1 << 20

// Options configures one synthesis run.
type Options struct {
	// UseDVS enables voltage scaling in the inner loop (software PEs and,
	// via the Fig. 5 transformation, hardware cores).
	UseDVS bool
	// NeglectProbabilities makes the optimisation assume the uniform mode
	// distribution (the baseline the paper compares against); the final
	// result is still reported under the true probabilities.
	NeglectProbabilities bool
	// Weights are the penalty weights; zero value selects DefaultWeights.
	Weights Weights
	// DVSSoftwareOnly restricts voltage scaling to software processors,
	// reproducing the prior-work DVS of [10] (ablation switch).
	DVSSoftwareOnly bool
	// NoReplicaCores disables replica-core allocation (ablation switch).
	NoReplicaCores bool
	// NoImprovementMutations disables the four problem-specific mutation
	// operators of paper section 4.1 (ablation switch).
	NoImprovementMutations bool
	// RefineIterations > 0 enables per-mode stochastic schedule refinement
	// in the inner loop (slower, occasionally tighter schedules).
	RefineIterations int
	// GA tunes the genetic engine; zero values select engine defaults.
	GA ga.Config
	// Seed seeds the run's RNG.
	Seed int64

	// Context, when non-nil, bounds the run: on cancellation or deadline
	// the engine stops at the next generation boundary and Synthesize
	// returns the best-so-far implementation with Result.Partial set —
	// graceful degradation instead of a lost run.
	Context context.Context
	// CheckpointPath, when set, persists the engine state to this file
	// every CheckpointEvery generations (atomic write-rename) and once
	// more when the run stops, so a killed run can be resumed.
	CheckpointPath string
	// CheckpointEvery is the generation interval between checkpoints
	// (default 10 when CheckpointPath is set).
	CheckpointEvery int
	// CheckpointSave, when non-nil, replaces the default checkpoint writer
	// (runctl.Save). The fleet layer uses it to fence checkpoint writes
	// behind its lease epoch and to thread a fault-injectable filesystem
	// underneath; like Obs it never changes the search trajectory, so it is
	// excluded from the checkpoint fingerprint. A returned error stops the
	// run at the current generation boundary with the best-so-far result.
	CheckpointSave func(path string, cp *runctl.Checkpoint) error
	// Resume restores the run from CheckpointPath instead of starting
	// fresh. The spec, seed and options must match the checkpointed run;
	// the resumed run then converges to the same result as an
	// uninterrupted one.
	Resume bool
	// FaultBudget is the number of distinct genomes whose evaluation may
	// panic before the run aborts cleanly with a fault report (default
	// 64). Each faulting genome is retried once, then marked infeasible.
	FaultBudget int
	// StallWindow, when positive, re-randomises the worst half of the
	// population after that many generations without improvement (the
	// stall watchdog); Result.GA.Restarts counts the injections.
	StallWindow int

	// Certify runs the independent internal/verify certifier on the final
	// (or best-partial) implementation and surfaces the report in
	// Result.Certification. Certification never changes the search
	// trajectory, so resuming a checkpointed run with a different Certify
	// setting is valid.
	Certify bool
	// CertifyOptions tunes the certifier; zero value selects its defaults.
	CertifyOptions verify.Options

	// Obs, when active, records run telemetry: per-phase timing histograms,
	// GA convergence gauges and (when a trace sink is attached) the JSONL
	// event stream. Like Certify it never changes the search trajectory, so
	// it is excluded from the checkpoint fingerprint: resuming a run with
	// tracing toggled is valid and yields the identical result.
	Obs *obs.Run

	// evalHook, when set, runs before every uncached fitness evaluation
	// (test seam for fault injection).
	evalHook func(genome []int)
}

// fingerprint pins the options that shape the search trajectory, so a
// checkpoint refuses to resume under a different configuration.
func (o Options) fingerprint() string {
	return fmt.Sprintf("dvs=%v neglect=%v swonly=%v norep=%v nomut=%v refine=%d ga=%+v w=%+v stall=%d",
		o.UseDVS, o.NeglectProbabilities, o.DVSSoftwareOnly, o.NoReplicaCores,
		o.NoImprovementMutations, o.RefineIterations, o.GA, o.Weights, o.StallWindow)
}

// Result is the outcome of one synthesis run.
type Result struct {
	// Best is the best implementation found, evaluated under the TRUE mode
	// execution probabilities (even when the optimisation neglected them).
	Best *Evaluation
	// ObjectivePower is the Eq. (1) power under the probabilities the
	// optimiser actually used (equals Best.AvgPower unless
	// NeglectProbabilities was set).
	ObjectivePower float64
	// GA reports the engine statistics of the run.
	GA *ga.Result
	// Elapsed is the wall-clock optimisation time (the paper's "CPU time"
	// column).
	Elapsed time.Duration
	// Partial mirrors GA.Partial: the run was interrupted (cancellation,
	// deadline, fault budget, checkpoint failure) and Best is the
	// best-so-far implementation. GA.Reason says why.
	Partial bool
	// Cache reports fitness-cache effectiveness over the run.
	Cache runctl.CacheCounters
	// Faults lists the genomes whose evaluation panicked; they were marked
	// infeasible and the run continued.
	Faults []runctl.EvalFault
	// Certification is the independent certifier's report on Best; nil
	// unless Options.Certify was set.
	Certification *verify.Report
	// Timings is the cumulative phase breakdown of the run (all-zero unless
	// Options.Obs was active).
	Timings obs.Timings
}

// problem adapts the evaluator to the GA engine with a bounded,
// instrumented fitness cache (FIFO eviction at FitnessCacheCap entries).
type problem struct {
	codec *Codec
	eval  *Evaluator
	cache map[string]float64
	// order is the FIFO insertion queue backing eviction; head indexes the
	// oldest resident entry.
	order []string
	head  int
	stats runctl.CacheCounters
	hook  func(genome []int)
}

func (p *problem) GenomeLen() int    { return p.codec.Len() }
func (p *problem) Alleles(i int) int { return p.codec.Alleles(i) }

func (p *problem) Fitness(genome []int) float64 {
	key := p.codec.Key(genome)
	if f, ok := p.cache[key]; ok {
		p.stats.Hits++
		return f
	}
	p.stats.Misses++
	if p.hook != nil {
		p.hook(genome)
	}
	ev, err := p.eval.Evaluate(p.codec.Decode(genome))
	f := math.Inf(1)
	if err == nil {
		f = ev.Fitness
	}
	if len(p.cache) >= FitnessCacheCap {
		delete(p.cache, p.order[p.head])
		p.order[p.head] = "" // release the key for GC
		p.head++
		p.stats.Evictions++
	}
	p.cache[key] = f
	p.order = append(p.order, key)
	return f
}

// counters captures the cache statistics at this instant.
func (p *problem) counters() runctl.CacheCounters {
	c := p.stats
	c.Entries = len(p.cache)
	c.Capacity = FitnessCacheCap
	return c
}

// Synthesize runs the complete co-synthesis of Fig. 4: the outer GA over
// multi-mode mapping strings (with the four improvement mutations) around
// the inner scheduling/DVS loop, and returns the best implementation
// evaluated under the true mode execution probabilities.
//
// With Options.Context the run is cancellable; with Options.CheckpointPath
// it is resumable; panicking evaluations are contained and reported in
// Result.Faults. See docs/RUNCTL.md.
//
// Synthesize is safe for concurrent use: every run owns its RNG, evaluator,
// fitness cache and engine state, and the synth, ga and dvs packages hold
// no mutable package-level state. Concurrent runs with the same seed and
// specification produce bit-identical results, which is what lets mmserved
// execute jobs on a worker pool and mmbench evaluate table rows in
// parallel without perturbing published numbers. Runs sharing a checkpoint
// path or an obs.Run are the one exception — give each run its own.
func Synthesize(sys *model.System, opts Options) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	codec, err := NewCodec(sys)
	if err != nil {
		return nil, err
	}
	w := opts.Weights
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	run := opts.Obs
	eval := &Evaluator{
		Sys: sys, UseDVS: opts.UseDVS, Weights: w,
		DVSSoftwareOnly:  opts.DVSSoftwareOnly,
		NoReplicaCores:   opts.NoReplicaCores,
		RefineIterations: opts.RefineIterations,
		Obs:              run,
	}
	if opts.NeglectProbabilities {
		eval.Probs = UniformProbs(sys)
	}
	prob := &problem{codec: codec, eval: eval, cache: make(map[string]float64), hook: opts.evalHook}

	// Checkpointable runs draw from a serialisable source so the stream
	// position can be stored and restored exactly; plain runs keep the
	// historical math/rand stream for bit-identical legacy behaviour.
	var src *runctl.Source
	var rng *rand.Rand
	if opts.CheckpointPath != "" {
		src = runctl.NewSource(opts.Seed)
		rng = rand.New(src)
	} else {
		rng = rand.New(rand.NewSource(opts.Seed))
	}

	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancelCause(parent)
	defer cancel(nil)

	guard := runctl.NewGuard(prob, runctl.GuardConfig{
		FaultBudget:      opts.FaultBudget,
		OnBudgetExceeded: func(err error) { cancel(err) },
	})

	rc := ga.RunControl{Context: ctx, StallWindow: opts.StallWindow}
	if opts.CheckpointPath != "" {
		every := opts.CheckpointEvery
		if every <= 0 {
			every = 10
		}
		rc.CheckpointEvery = every
		saveCheckpoint := opts.CheckpointSave
		if saveCheckpoint == nil {
			saveCheckpoint = runctl.Save
		}
		rc.OnCheckpoint = func(s *ga.Snapshot) error {
			return saveCheckpoint(opts.CheckpointPath, &runctl.Checkpoint{
				System:      sys.App.Name,
				GenomeLen:   codec.Len(),
				Seed:        opts.Seed,
				Fingerprint: opts.fingerprint(),
				RNGState:    src.State(),
				Snapshot:    *s,
				Cache:       prob.counters(),
				Faults:      guard.Faults(),
				Metrics:     run.Export(),
			})
		}
	}
	if opts.Resume {
		if opts.CheckpointPath == "" {
			return nil, fmt.Errorf("synth: Resume requires CheckpointPath")
		}
		cp, err := runctl.Load(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if err := checkResumable(cp, sys, codec, opts); err != nil {
			return nil, err
		}
		src.Restore(cp.RNGState)
		snap := cp.Snapshot
		rc.Resume = &snap
		guard.Restore(cp.Faults)
		prob.stats = runctl.CacheCounters{
			Hits: cp.Cache.Hits, Misses: cp.Cache.Misses, Evictions: cp.Cache.Evictions,
		}
		// Telemetry continues from the interrupted run's totals.
		run.RestoreMetrics(cp.Metrics)
	}

	var mutators []ga.Mutator
	if !opts.NoImprovementMutations {
		mutators = []ga.Mutator{
			codec.ShutdownMutation(),
			codec.AreaMutation(),
			codec.TimingMutation(),
			codec.TransitionMutation(),
		}
	}
	if run.Active() {
		rc.OnGeneration = observeGenerations(run, sys, opts, w, codec, prob)
	}
	resumedFrom := 0
	if rc.Resume != nil {
		resumedFrom = rc.Resume.Generation
	}
	run.EmitRunStart(obs.RunStartEvent{
		System:      sys.App.Name,
		Seed:        opts.Seed,
		ResumedFrom: resumedFrom,
		DVS:         opts.UseDVS,
		Neglect:     opts.NeglectProbabilities,
	})
	start := time.Now()
	res := ga.RunControlled(guard, opts.GA, rc, rng, mutators...)
	elapsed := time.Since(start)

	best, err := safeEvaluate(eval, codec.Decode(res.Best))
	if err != nil {
		return nil, err
	}
	objective := best.AvgPower
	if opts.NeglectProbabilities {
		// Report the final candidate under the true usage profile.
		trueEval := &Evaluator{
			Sys: sys, UseDVS: opts.UseDVS, Weights: w,
			DVSSoftwareOnly:  opts.DVSSoftwareOnly,
			NoReplicaCores:   opts.NoReplicaCores,
			RefineIterations: opts.RefineIterations,
		}
		best, err = safeEvaluate(trueEval, best.Mapping)
		if err != nil {
			return nil, err
		}
	}
	out := &Result{
		Best:           best,
		ObjectivePower: objective,
		GA:             res,
		Elapsed:        elapsed,
		Partial:        res.Partial,
		Cache:          prob.counters(),
		Faults:         guard.Faults(),
		Timings:        eval.Timings(),
	}
	if opts.Certify {
		// Best is always reported under the true probabilities, so the
		// certifier checks against the specification's distribution.
		var certStart time.Time
		if run.Active() {
			certStart = time.Now()
		}
		out.Certification = CertifyEvaluation(sys, best, nil, opts.CertifyOptions)
		if run.Active() {
			d := time.Since(certStart)
			out.Timings.Certify = d
			run.ObservePhase(obs.PhaseCertify, d)
			run.EmitSpan("certify", d)
		}
	}
	run.EmitRunEnd(obs.RunEndEvent{
		Generations: res.Generations,
		Evaluations: res.Evaluations,
		BestFitness: obs.Float(res.BestFitness),
		AvgPower:    obs.Float(best.AvgPower),
		Feasible:    best.Feasible(),
		Partial:     res.Partial,
		Reason:      res.Reason,
		ElapsedNs:   elapsed.Nanoseconds(),
	})
	return out, nil
}

// observeGenerations builds the per-generation observer: it refreshes the
// convergence gauges and, when tracing, emits one generation event with the
// best individual's power/penalty breakdown. The breakdown comes from a
// quiet re-evaluation (memoised on the best genome) outside the engine's
// random stream and instrumentation, so observation perturbs neither the
// search nor the phase statistics.
func observeGenerations(run *obs.Run, sys *model.System, opts Options, w Weights, codec *Codec, prob *problem) func(ga.GenerationStats) {
	quiet := &Evaluator{
		Sys: sys, UseDVS: opts.UseDVS, Weights: w,
		DVSSoftwareOnly:  opts.DVSSoftwareOnly,
		NoReplicaCores:   opts.NoReplicaCores,
		RefineIterations: opts.RefineIterations,
	}
	if opts.NeglectProbabilities {
		quiet.Probs = UniformProbs(sys)
	}
	reg := run.Registry()
	var lastKey string
	var lastEv *Evaluation
	return func(s ga.GenerationStats) {
		c := prob.counters()
		reg.Gauge("ga.generation").Set(float64(s.Generation))
		reg.Gauge("ga.best_fitness").Set(s.BestFitness)
		reg.Gauge("ga.mean_fitness").Set(s.MeanFitness)
		reg.Gauge("ga.diversity").Set(s.Diversity)
		reg.Gauge("ga.stagnant").Set(float64(s.Stagnant))
		reg.Gauge("ga.restarts").Set(float64(s.Restarts))
		reg.Gauge("cache.entries").Set(float64(c.Entries))
		reg.Gauge("cache.hit_rate").Set(c.HitRate())
		if !run.Tracing() {
			return
		}
		ev := obs.GenerationEvent{
			Gen:            s.Generation,
			BestFitness:    obs.Float(s.BestFitness),
			MeanFitness:    obs.Float(s.MeanFitness),
			Infeasible:     s.Infeasible,
			Evaluations:    s.Evaluations,
			Stagnant:       s.Stagnant,
			Restarts:       s.Restarts,
			Diversity:      s.Diversity,
			CacheHits:      c.Hits,
			CacheMisses:    c.Misses,
			CacheEvictions: c.Evictions,
			CacheHitRate:   c.HitRate(),
		}
		for i, m := range s.Mutators {
			ev.Mutations = append(ev.Mutations, obs.MutationStats{
				Name: MutationName(i), Attempts: m.Attempts, Accepted: m.Accepted, Improved: m.Improved,
			})
		}
		if key := codec.Key(s.BestGenome); key != lastKey || lastEv == nil {
			if be, err := safeEvaluate(quiet, codec.Decode(s.BestGenome)); err == nil {
				lastKey, lastEv = key, be
			}
		}
		if lastEv != nil {
			ev.AvgPower = obs.Float(lastEv.AvgPower)
			ev.TimingPenalty = obs.Float(lastEv.TimingPenalty)
			ev.AreaPenalty = obs.Float(lastEv.AreaPenalty)
			ev.TransPenalty = obs.Float(lastEv.TransPenalty)
			ev.Unroutable = lastEv.Unroutable
			ev.Feasible = lastEv.Feasible()
		}
		run.EmitGeneration(ev)
	}
}

// checkResumable verifies a checkpoint belongs to this (spec, seed,
// options) triple before the engine trusts its population.
func checkResumable(cp *runctl.Checkpoint, sys *model.System, codec *Codec, opts Options) error {
	if cp.System != sys.App.Name {
		return fmt.Errorf("synth: checkpoint is for system %q, not %q", cp.System, sys.App.Name)
	}
	if cp.GenomeLen != codec.Len() {
		return fmt.Errorf("synth: checkpoint genome length %d does not match specification (%d tasks)",
			cp.GenomeLen, codec.Len())
	}
	if cp.Seed != opts.Seed {
		return fmt.Errorf("synth: checkpoint was written with seed %d, run uses seed %d", cp.Seed, opts.Seed)
	}
	if fp := opts.fingerprint(); cp.Fingerprint != fp {
		return fmt.Errorf("synth: checkpoint options %q do not match run options %q", cp.Fingerprint, fp)
	}
	return nil
}

// safeEvaluate evaluates the final mapping behind a recover barrier: after
// a partial run the best-so-far genome could in principle be one whose
// evaluation faults, and the closing report must survive that.
func safeEvaluate(eval *Evaluator, m model.Mapping) (ev *Evaluation, err error) {
	defer func() {
		if r := recover(); r != nil {
			ev, err = nil, fmt.Errorf("synth: final evaluation panicked: %v", r)
		}
	}()
	return eval.Evaluate(m)
}

// Exhaustive enumerates every mapping of the system and returns the best
// evaluation by fitness. It is exponential in the number of tasks and is
// intended for the paper's small motivational examples and for validating
// the GA on tiny instances. Cancelling ctx aborts the enumeration with the
// context's error; a nil ctx enumerates to completion.
func Exhaustive(ctx context.Context, sys *model.System, useDVS bool, probs []float64) (*Evaluation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	codec, err := NewCodec(sys)
	if err != nil {
		return nil, err
	}
	space := 1
	for k := 0; k < codec.Len(); k++ {
		space *= codec.Alleles(k)
		if space > 50_000_000 {
			return nil, fmt.Errorf("synth: exhaustive search space too large (>5e7 mappings)")
		}
	}
	eval := &Evaluator{Sys: sys, UseDVS: useDVS, Weights: DefaultWeights(), Probs: probs}
	genome := make([]int, codec.Len())
	var best *Evaluation
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ev, err := eval.Evaluate(codec.Decode(genome))
		if err != nil {
			return nil, err
		}
		if best == nil || ev.Fitness < best.Fitness {
			best = ev
		}
		// Odometer increment.
		k := 0
		for k < len(genome) {
			genome[k]++
			if genome[k] < codec.Alleles(k) {
				break
			}
			genome[k] = 0
			k++
		}
		if k == len(genome) {
			break
		}
	}
	return best, nil
}
