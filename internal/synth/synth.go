package synth

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"momosyn/internal/ga"
	"momosyn/internal/model"
)

// Options configures one synthesis run.
type Options struct {
	// UseDVS enables voltage scaling in the inner loop (software PEs and,
	// via the Fig. 5 transformation, hardware cores).
	UseDVS bool
	// NeglectProbabilities makes the optimisation assume the uniform mode
	// distribution (the baseline the paper compares against); the final
	// result is still reported under the true probabilities.
	NeglectProbabilities bool
	// Weights are the penalty weights; zero value selects DefaultWeights.
	Weights Weights
	// DVSSoftwareOnly restricts voltage scaling to software processors,
	// reproducing the prior-work DVS of [10] (ablation switch).
	DVSSoftwareOnly bool
	// NoReplicaCores disables replica-core allocation (ablation switch).
	NoReplicaCores bool
	// NoImprovementMutations disables the four problem-specific mutation
	// operators of paper section 4.1 (ablation switch).
	NoImprovementMutations bool
	// RefineIterations > 0 enables per-mode stochastic schedule refinement
	// in the inner loop (slower, occasionally tighter schedules).
	RefineIterations int
	// GA tunes the genetic engine; zero values select engine defaults.
	GA ga.Config
	// Seed seeds the run's RNG.
	Seed int64
}

// Result is the outcome of one synthesis run.
type Result struct {
	// Best is the best implementation found, evaluated under the TRUE mode
	// execution probabilities (even when the optimisation neglected them).
	Best *Evaluation
	// ObjectivePower is the Eq. (1) power under the probabilities the
	// optimiser actually used (equals Best.AvgPower unless
	// NeglectProbabilities was set).
	ObjectivePower float64
	// GA reports the engine statistics of the run.
	GA *ga.Result
	// Elapsed is the wall-clock optimisation time (the paper's "CPU time"
	// column).
	Elapsed time.Duration
}

// problem adapts the evaluator to the GA engine with fitness caching.
type problem struct {
	codec *Codec
	eval  *Evaluator
	cache map[string]float64
}

func (p *problem) GenomeLen() int    { return p.codec.Len() }
func (p *problem) Alleles(i int) int { return p.codec.Alleles(i) }

func (p *problem) Fitness(genome []int) float64 {
	key := p.codec.Key(genome)
	if f, ok := p.cache[key]; ok {
		return f
	}
	ev, err := p.eval.Evaluate(p.codec.Decode(genome))
	f := math.Inf(1)
	if err == nil {
		f = ev.Fitness
	}
	if len(p.cache) < 1<<20 {
		p.cache[key] = f
	}
	return f
}

// Synthesize runs the complete co-synthesis of Fig. 4: the outer GA over
// multi-mode mapping strings (with the four improvement mutations) around
// the inner scheduling/DVS loop, and returns the best implementation
// evaluated under the true mode execution probabilities.
func Synthesize(sys *model.System, opts Options) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	codec, err := NewCodec(sys)
	if err != nil {
		return nil, err
	}
	w := opts.Weights
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	eval := &Evaluator{
		Sys: sys, UseDVS: opts.UseDVS, Weights: w,
		DVSSoftwareOnly:  opts.DVSSoftwareOnly,
		NoReplicaCores:   opts.NoReplicaCores,
		RefineIterations: opts.RefineIterations,
	}
	if opts.NeglectProbabilities {
		eval.Probs = UniformProbs(sys)
	}
	prob := &problem{codec: codec, eval: eval, cache: make(map[string]float64)}
	rng := rand.New(rand.NewSource(opts.Seed))

	var mutators []ga.Mutator
	if !opts.NoImprovementMutations {
		mutators = []ga.Mutator{
			codec.ShutdownMutation(),
			codec.AreaMutation(),
			codec.TimingMutation(),
			codec.TransitionMutation(),
		}
	}
	start := time.Now()
	res := ga.Run(prob, opts.GA, rng, mutators...)
	elapsed := time.Since(start)

	best, err := eval.Evaluate(codec.Decode(res.Best))
	if err != nil {
		return nil, err
	}
	objective := best.AvgPower
	if opts.NeglectProbabilities {
		// Report the final candidate under the true usage profile.
		trueEval := &Evaluator{
			Sys: sys, UseDVS: opts.UseDVS, Weights: w,
			DVSSoftwareOnly:  opts.DVSSoftwareOnly,
			NoReplicaCores:   opts.NoReplicaCores,
			RefineIterations: opts.RefineIterations,
		}
		best, err = trueEval.Evaluate(best.Mapping)
		if err != nil {
			return nil, err
		}
	}
	return &Result{
		Best:           best,
		ObjectivePower: objective,
		GA:             res,
		Elapsed:        elapsed,
	}, nil
}

// Exhaustive enumerates every mapping of the system and returns the best
// evaluation by fitness. It is exponential in the number of tasks and is
// intended for the paper's small motivational examples and for validating
// the GA on tiny instances.
func Exhaustive(sys *model.System, useDVS bool, probs []float64) (*Evaluation, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	codec, err := NewCodec(sys)
	if err != nil {
		return nil, err
	}
	space := 1
	for k := 0; k < codec.Len(); k++ {
		space *= codec.Alleles(k)
		if space > 50_000_000 {
			return nil, fmt.Errorf("synth: exhaustive search space too large (>5e7 mappings)")
		}
	}
	eval := &Evaluator{Sys: sys, UseDVS: useDVS, Weights: DefaultWeights(), Probs: probs}
	genome := make([]int, codec.Len())
	var best *Evaluation
	for {
		ev, err := eval.Evaluate(codec.Decode(genome))
		if err != nil {
			return nil, err
		}
		if best == nil || ev.Fitness < best.Fitness {
			best = ev
		}
		// Odometer increment.
		k := 0
		for k < len(genome) {
			genome[k]++
			if genome[k] < codec.Alleles(k) {
				break
			}
			genome[k] = 0
			k++
		}
		if k == len(genome) {
			break
		}
	}
	return best, nil
}
