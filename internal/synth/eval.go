package synth

import (
	"fmt"
	"math/rand"
	"time"

	"momosyn/internal/dvs"
	"momosyn/internal/energy"
	"momosyn/internal/model"
	"momosyn/internal/obs"
	"momosyn/internal/sched"
)

// FNV-1a parameters (FNV-0 offset basis and 64-bit prime), inlined so
// mappingHash needs no hash.Hash64 allocation. The byte sequence hashed is
// identical to writing byte(mode) then, per PE, the two little-endian low
// bytes through hash/fnv, so seeds are unchanged.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mappingHash derives a deterministic refinement seed from a mapping and
// mode index.
//
//mm:noalloc
func mappingHash(m model.Mapping, mode int) uint64 {
	h := uint64(fnvOffset64)
	h ^= uint64(byte(mode))
	h *= fnvPrime64
	for _, row := range m {
		for _, pe := range row {
			h ^= uint64(byte(pe))
			h *= fnvPrime64
			h ^= uint64(byte(int(pe) >> 8))
			h *= fnvPrime64
		}
	}
	return h
}

// Weights tune the penalty aggressiveness of the mapping fitness
// FM = p̄ · tp · areaTerm · transitionTerm (paper section 4.1).
type Weights struct {
	// Area is wA: weight of the percentage area violation.
	Area float64
	// Transition is wR: weight of the relative transition-time excess.
	Transition float64
	// Timing scales the relative lateness in the timing penalty tp.
	Timing float64
}

// DefaultWeights returns penalty weights that reliably drive the GA out of
// infeasible regions without flattening the power landscape.
func DefaultWeights() Weights {
	return Weights{Area: 0.5, Transition: 2, Timing: 20}
}

// Evaluation is one fully evaluated implementation candidate: mapping, core
// allocation, per-mode schedule/voltage selection, power breakdown and
// penalty terms.
type Evaluation struct {
	Mapping   model.Mapping
	Alloc     *Allocation
	Schedules []*sched.Schedule

	// ModePowers is indexed by ModeID.
	ModePowers []energy.ModePower
	// AvgPower is Eq. (1) under the evaluation probabilities.
	AvgPower float64

	// Lateness is the per-mode summed deadline violation (seconds).
	Lateness []float64
	// Unroutable counts communications between unconnected PEs.
	Unroutable int
	// TransTimes is indexed parallel to App.Transitions.
	TransTimes []float64

	// Penalty terms (>= 1; all 1 for feasible candidates).
	TimingPenalty, AreaPenalty, TransPenalty float64
	// Fitness is the minimised objective FM.
	Fitness float64
}

// Feasible reports whether the candidate violates no constraint.
//
//mm:noalloc
func (ev *Evaluation) Feasible() bool {
	return ev.TimingPenalty <= 1 && ev.AreaPenalty <= 1 && ev.TransPenalty <= 1 && ev.Unroutable == 0
}

// Evaluator computes fitnesses of multi-mode mappings for a fixed system.
// Probs overrides the mode execution probabilities used in the objective —
// the probability-neglecting baseline passes the uniform distribution; nil
// uses the specification's probabilities.
type Evaluator struct {
	Sys     *model.System
	UseDVS  bool
	Weights Weights
	// DVSSoftwareOnly disables the hardware-core transformation, scaling
	// software processors only (the prior-work DVS the paper extends).
	DVSSoftwareOnly bool
	// NoReplicaCores disables the replica-core allocation for parallel
	// low-mobility tasks (paper Fig. 4 line 5). Ablation switch.
	NoReplicaCores bool
	// RefineIterations > 0 enables stochastic schedule refinement
	// (sched.Refine) with that many priority perturbations per mode. The
	// refinement RNG is derived from the mapping so evaluation stays
	// deterministic and cacheable.
	RefineIterations int
	// Probs, when non-nil, replaces the per-mode execution probabilities in
	// the average-power objective. Length must equal the number of modes.
	Probs []float64
	// Obs, when active, receives per-phase wall-clock timings and
	// per-evaluation trace spans. Instrumentation is purely observational:
	// it reads the clock but never any randomness, so attaching it cannot
	// change an evaluation's result.
	Obs *obs.Run

	// timings accumulates the phase breakdown over all Evaluate calls.
	timings obs.Timings
	// ub caches PowerUpperBound of the system.
	ub float64
}

// Timings returns the cumulative phase breakdown of every instrumented
// Evaluate call; all-zero when Obs was never active.
func (e *Evaluator) Timings() obs.Timings { return e.timings }

// recordEval folds one evaluation's phase breakdown into the cumulative
// timings, the phase histograms, and (when tracing) the event stream.
func (e *Evaluator) recordEval(t obs.Timings) {
	t.Evaluations = 1
	e.timings.Add(t)
	r := e.Obs
	r.ObservePhase(obs.PhaseMobility, t.Mobility)
	r.ObservePhase(obs.PhaseCoreAlloc, t.CoreAlloc)
	if t.Refine > 0 {
		r.ObservePhase(obs.PhaseRefine, t.Refine)
	} else {
		r.ObservePhase(obs.PhaseListSched, t.ListSched)
		r.ObservePhase(obs.PhaseCommMap, t.CommMap)
	}
	if t.DVS > 0 {
		r.ObservePhase(obs.PhaseDVS, t.DVS)
	}
	r.Registry().Counter("synth.evaluations").Inc()
	if r.Tracing() {
		r.EmitEval(obs.EvalEvent{
			Seq:         r.NextSeq(),
			MobilityNs:  t.Mobility.Nanoseconds(),
			CoreAllocNs: t.CoreAlloc.Nanoseconds(),
			ListSchedNs: t.ListSched.Nanoseconds(),
			CommMapNs:   t.CommMap.Nanoseconds(),
			DVSNs:       t.DVS.Nanoseconds(),
			RefineNs:    t.Refine.Nanoseconds(),
			TotalNs:     t.Total().Nanoseconds(),
		})
	}
}

// PowerUpperBound returns a bound no feasible implementation's average
// power exceeds: the static power of every component powered in every mode
// plus, per mode, the worst implementation energy of every task and the
// slowest-link energy of every communication. Infeasible candidates are
// ranked above this bound so that no constraint violation can be traded
// for dynamic-power savings.
//
//mm:noalloc
func PowerUpperBound(s *model.System) float64 {
	staticAll := 0.0
	for _, pe := range s.Arch.PEs {
		staticAll += pe.StaticPower
	}
	for _, cl := range s.Arch.CLs {
		staticAll += cl.StaticPower
	}
	total := staticAll
	for _, mode := range s.App.Modes {
		e := 0.0
		for _, task := range mode.Graph.Tasks {
			worst := 0.0
			for _, im := range s.Lib.Type(task.Type).Impls {
				if v := im.Energy(); v > worst {
					worst = v
				}
			}
			e += worst
		}
		for _, edge := range mode.Graph.Edges {
			worst := 0.0
			for _, cl := range s.Arch.CLs {
				if v := cl.PowerActive * energy.CommTime(edge.Bytes, cl); v > worst {
					worst = v
				}
			}
			e += worst
		}
		// Unweighted sum over modes dominates any probability mixture, so
		// the bound holds for every evaluation probability vector.
		total += e / mode.Period
	}
	return total
}

// NewEvaluator returns an evaluator with default weights.
func NewEvaluator(sys *model.System, useDVS bool) *Evaluator {
	return &Evaluator{Sys: sys, UseDVS: useDVS, Weights: DefaultWeights()}
}

// prob returns the evaluation probability of the mode.
//
//mm:noalloc
func (e *Evaluator) prob(mode model.ModeID) float64 {
	if e.Probs != nil {
		return e.Probs[mode]
	}
	return e.Sys.App.Mode(mode).Prob
}

// Evaluate runs the full inner loop for the mapping: mobility analysis,
// core allocation, per-mode communication mapping and scheduling, optional
// voltage scaling, and the fitness computation of paper Fig. 4.
func (e *Evaluator) Evaluate(mapping model.Mapping) (*Evaluation, error) {
	s := e.Sys
	nModes := len(s.App.Modes)
	timed := e.Obs.Active()
	var span obs.Timings
	var mark time.Time

	// Lines 04-05: mobilities and hardware core implementation.
	if timed {
		mark = time.Now()
	}
	mob := make([]*sched.Mobility, nModes)
	for m := 0; m < nModes; m++ {
		mm, err := sched.ComputeMobility(s, model.ModeID(m), mapping)
		if err != nil {
			return nil, fmt.Errorf("synth: mode %d: %w", m, err)
		}
		mob[m] = mm
	}
	if timed {
		span.Mobility = time.Since(mark)
		mark = time.Now()
	}
	alloc := AllocateCoresWith(s, mapping, mob, e.NoReplicaCores)
	if timed {
		span.CoreAlloc = time.Since(mark)
	}

	ev := &Evaluation{
		Mapping:    mapping,
		Alloc:      alloc,
		Schedules:  make([]*sched.Schedule, nModes),
		ModePowers: make([]energy.ModePower, nModes),
		Lateness:   make([]float64, nModes),
		TransTimes: make([]float64, len(s.App.Transitions)),
	}

	// Lines 09-13: per-mode inner loop.
	activePE := make([]bool, len(s.Arch.PEs))
	for m := 0; m < nModes; m++ {
		mode := s.App.Mode(model.ModeID(m))
		var sc *sched.Schedule
		var err error
		switch {
		case e.RefineIterations > 0:
			rng := rand.New(rand.NewSource(int64(mappingHash(mapping, m))))
			if timed {
				mark = time.Now()
			}
			sc, err = sched.Refine(s, model.ModeID(m), mapping, alloc, mob[m], e.RefineIterations, rng)
			if timed {
				span.Refine += time.Since(mark)
			}
		case timed:
			mark = time.Now()
			var comm time.Duration
			sc, comm, err = sched.ListScheduleTimed(s, model.ModeID(m), mapping, alloc, mob[m])
			span.ListSched += time.Since(mark)
			span.CommMap += comm
		default:
			sc, err = sched.ListSchedule(s, model.ModeID(m), mapping, alloc, mob[m])
		}
		if err != nil {
			return nil, fmt.Errorf("synth: mode %q: %w", mode.Name, err)
		}
		if e.UseDVS {
			if timed {
				mark = time.Now()
			}
			dvs.ScaleWith(s, sc, dvs.Config{SoftwareOnly: e.DVSSoftwareOnly})
			if timed {
				span.DVS += time.Since(mark)
			}
		}
		ev.Schedules[m] = sc
		ev.Lateness[m] = sc.Lateness(s)
		ev.Unroutable += sc.Unroutable

		for pe := range activePE {
			activePE[pe] = mapping.UsesPE(model.ModeID(m), model.PEID(pe))
		}
		usedCL := sc.UsedCLs(s.Arch)
		ev.ModePowers[m] = energy.ModePower{
			DynamicEnergy: sc.DynamicEnergy(),
			Period:        mode.Period,
			StaticPower:   energy.StaticPower(s.Arch, activePE, usedCL),
		}
	}

	// Average power under the evaluation probabilities.
	for m := 0; m < nModes; m++ {
		ev.AvgPower += ev.ModePowers[m].Total() * e.prob(model.ModeID(m))
	}

	// Line 08 + section 4.1: penalties. FM = p̄·tp·areaTerm·transTerm for
	// feasible candidates; infeasible ones are additionally lifted above
	// the feasible power upper bound so that constraint violations can
	// never be traded against dynamic-power savings.
	e.penalties(ev)
	ev.Fitness = ev.AvgPower * ev.TimingPenalty * ev.AreaPenalty * ev.TransPenalty
	if !ev.Feasible() {
		if e.ub <= 0 {
			e.ub = PowerUpperBound(s)
		}
		ev.Fitness += e.ub
	}
	if timed {
		e.recordEval(span)
	}
	return ev, nil
}

// penalties fills the timing, area and transition penalty terms.
//
//mm:noalloc
func (e *Evaluator) penalties(ev *Evaluation) {
	s := e.Sys
	w := e.Weights

	// Timing penalty tp: relative lateness summed over modes, plus a large
	// surcharge per unroutable communication.
	rel := 0.0
	for m, late := range ev.Lateness {
		rel += late / s.App.Mode(model.ModeID(m)).Period
	}
	ev.TimingPenalty = 1 + w.Timing*rel + 10*w.Timing*float64(ev.Unroutable)

	// Area penalty per the paper: used-vs-available percentage excess.
	areaSum := 0.0
	for pe, viol := range ev.Alloc.Violation {
		if viol <= 0 {
			continue
		}
		amax := float64(s.Arch.PE(model.PEID(pe)).Area)
		areaSum += float64(viol) / (amax * 0.01)
	}
	ev.AreaPenalty = 1 + w.Area*areaSum

	// Transition penalty: relative excess over tTmax for violating
	// transitions. (The paper multiplies wR·Π tT/tTmax over violating
	// transitions; we use the equivalent monotone additive form that is 1
	// when no transition is violated.) ev.TransTimes is presized by
	// Evaluate.
	transSum := 0.0
	for i, tr := range s.App.Transitions {
		t := ev.Alloc.TransitionTime(s, tr)
		ev.TransTimes[i] = t
		if tr.MaxTime > 0 && t > tr.MaxTime {
			transSum += t/tr.MaxTime - 1
		}
	}
	ev.TransPenalty = 1 + w.Transition*transSum
}

// Reweighted returns the Eq. (1) average power of an already evaluated
// candidate under a different probability vector (nil = the
// specification's true probabilities). This is how a candidate optimised
// while neglecting probabilities is judged under the real usage profile.
//
//mm:noalloc
func (ev *Evaluation) Reweighted(s *model.System, probs []float64) float64 {
	total := 0.0
	for m := range ev.ModePowers {
		p := s.App.Mode(model.ModeID(m)).Prob
		if probs != nil {
			p = probs[m]
		}
		total += ev.ModePowers[m].Total() * p
	}
	return total
}

// UniformProbs returns the uniform distribution over the system's modes —
// the probabilities used by the probability-neglecting baseline.
func UniformProbs(s *model.System) []float64 {
	n := len(s.App.Modes)
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 1 / float64(n)
	}
	return probs
}
