package synth

import (
	"math/rand"

	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// The four problem-specific improvement mutations of paper section 4.1.
// Each operates directly on a genome, using cheap structural checks instead
// of full evaluations to decide whether and where to intervene.

// ShutdownMutation implements the Shut-down Improvement strategy: pick a
// mode and a non-essential PE used in that mode and re-map all of the
// mode's tasks away from it, so the PE (and possibly attached links) can be
// switched off during the mode, eliminating its static power contribution.
func (c *Codec) ShutdownMutation() func(genome []int, rng *rand.Rand) bool {
	s := c.sys
	return func(genome []int, rng *rand.Rand) bool {
		mode := model.ModeID(rng.Intn(len(s.App.Modes)))
		g := s.App.Mode(mode).Graph

		// Collect the PEs used by this mode and check which are
		// non-essential: every task mapped there has an alternative PE.
		usedBy := make(map[model.PEID][]int) // PE -> loci
		for ti := range g.Tasks {
			k := c.Locus(mode, model.TaskID(ti))
			usedBy[c.PEAt(genome, k)] = append(usedBy[c.PEAt(genome, k)], k)
		}
		if len(usedBy) <= 1 {
			return false // single-PE modes cannot shed a component
		}
		var nonEssential []model.PEID
		for pe, loci := range usedBy {
			ok := true
			for _, k := range loci {
				if len(c.CandidatesAt(k)) < 2 {
					ok = false
					break
				}
			}
			if ok {
				nonEssential = append(nonEssential, pe)
			}
		}
		if len(nonEssential) == 0 {
			return false
		}
		// Deterministic order before the random pick (map iteration order
		// must not leak into results).
		sortPEs(nonEssential)
		victim := nonEssential[rng.Intn(len(nonEssential))]
		for _, k := range usedBy[victim] {
			cands := c.CandidatesAt(k)
			// Re-map randomly to any other candidate PE.
			var alts []int
			for i, pe := range cands {
				if pe != victim {
					alts = append(alts, i)
				}
			}
			genome[k] = alts[rng.Intn(len(alts))]
		}
		return true
	}
}

// AreaMutation implements the Area Improvement strategy: when mandatory
// cores alone violate a hardware PE's area budget, randomly re-map hardware
// tasks of that PE onto software-programmable PEs.
func (c *Codec) AreaMutation() func(genome []int, rng *rand.Rand) bool {
	s := c.sys
	return func(genome []int, rng *rand.Rand) bool {
		// Mandatory-core area per (PE, relevant for ASIC: union over modes;
		// FPGA: per mode max).
		used := make([]int, len(s.Arch.PEs))
		seenASIC := make(map[coreKey]bool)
		for m := range s.App.Modes {
			perMode := make([]int, len(s.Arch.PEs))
			seenMode := make(map[coreKey]bool)
			g := s.App.Mode(model.ModeID(m)).Graph
			for ti := range g.Tasks {
				k := c.Locus(model.ModeID(m), model.TaskID(ti))
				pe := s.Arch.PE(c.PEAt(genome, k))
				if !pe.Class.IsHardware() {
					continue
				}
				tt := g.Task(model.TaskID(ti)).Type
				im, ok := s.Lib.Type(tt).ImplOn(pe.ID)
				if !ok {
					continue
				}
				key := coreKey{pe.ID, tt}
				if pe.Class == model.ASIC {
					if !seenASIC[key] {
						seenASIC[key] = true
						used[pe.ID] += im.Area
					}
				} else if !seenMode[key] {
					seenMode[key] = true
					perMode[pe.ID] += im.Area
				}
			}
			for pe := range perMode {
				if s.Arch.PEs[pe].Class == model.FPGA && perMode[pe] > used[pe] {
					used[pe] = perMode[pe]
				}
			}
		}
		var violated []model.PEID
		for pe := range used {
			if s.Arch.PEs[pe].Class.IsHardware() && used[pe] > s.Arch.PEs[pe].Area {
				violated = append(violated, model.PEID(pe))
			}
		}
		if len(violated) == 0 {
			return false
		}
		changed := false
		for k := 0; k < c.Len(); k++ {
			pe := c.PEAt(genome, k)
			if !contains(violated, pe) {
				continue
			}
			// With probability 1/2 move the task to a random software PE.
			if rng.Intn(2) == 0 {
				continue
			}
			var sw []int
			for i, cand := range c.CandidatesAt(k) {
				if s.Arch.PE(cand).Class.IsSoftware() {
					sw = append(sw, i)
				}
			}
			if len(sw) == 0 {
				continue
			}
			genome[k] = sw[rng.Intn(len(sw))]
			changed = true
		}
		return changed
	}
}

// TimingMutation implements the Timing Improvement strategy: when the
// infinite-resource critical path of a mode already violates a deadline,
// software tasks of that mode are randomly re-mapped to faster hardware
// implementations.
func (c *Codec) TimingMutation() func(genome []int, rng *rand.Rand) bool {
	s := c.sys
	return func(genome []int, rng *rand.Rand) bool {
		mapping := c.Decode(genome)
		changed := false
		for m := range s.App.Modes {
			mob, err := sched.ComputeMobility(s, model.ModeID(m), mapping)
			if err != nil {
				continue
			}
			tight := false
			g := s.App.Mode(model.ModeID(m)).Graph
			for ti := range g.Tasks {
				if mob.ALAP[ti] < mob.ASAP[ti]-1e-12 {
					tight = true
					break
				}
			}
			if !tight {
				continue
			}
			for ti := range g.Tasks {
				k := c.Locus(model.ModeID(m), model.TaskID(ti))
				if !s.Arch.PE(c.PEAt(genome, k)).Class.IsSoftware() {
					continue
				}
				if rng.Intn(2) == 0 {
					continue
				}
				var hw []int
				for i, cand := range c.CandidatesAt(k) {
					if s.Arch.PE(cand).Class.IsHardware() {
						hw = append(hw, i)
					}
				}
				if len(hw) == 0 {
					continue
				}
				genome[k] = hw[rng.Intn(len(hw))]
				changed = true
			}
		}
		return changed
	}
}

// TransitionMutation implements the Transition Improvement strategy: when
// an FPGA's estimated reconfiguration load violates a transition-time
// limit, tasks are randomly re-mapped away from that FPGA.
func (c *Codec) TransitionMutation() func(genome []int, rng *rand.Rand) bool {
	s := c.sys
	return func(genome []int, rng *rand.Rand) bool {
		hasLimit := false
		for _, tr := range s.App.Transitions {
			if tr.MaxTime > 0 {
				hasLimit = true
				break
			}
		}
		hasFPGA := false
		for _, pe := range s.Arch.PEs {
			if pe.Class == model.FPGA {
				hasFPGA = true
				break
			}
		}
		if !hasLimit || !hasFPGA {
			return false
		}
		// Estimate per-FPGA reconfiguration time with mandatory cores only.
		typesIn := make([]map[coreKey]bool, len(s.App.Modes))
		for m := range s.App.Modes {
			typesIn[m] = make(map[coreKey]bool)
			g := s.App.Mode(model.ModeID(m)).Graph
			for ti := range g.Tasks {
				k := c.Locus(model.ModeID(m), model.TaskID(ti))
				pe := s.Arch.PE(c.PEAt(genome, k))
				if pe.Class == model.FPGA {
					typesIn[m][coreKey{pe.ID, g.Task(model.TaskID(ti)).Type}] = true
				}
			}
		}
		violFPGA := make(map[model.PEID]bool)
		for _, tr := range s.App.Transitions {
			if tr.MaxTime <= 0 {
				continue
			}
			for _, pe := range s.Arch.PEs {
				if pe.Class != model.FPGA {
					continue
				}
				swapIn := 0
				for key := range typesIn[tr.To] {
					if key.pe == pe.ID && !typesIn[tr.From][key] {
						swapIn++
					}
				}
				if float64(swapIn)*pe.ReconfigTime > tr.MaxTime {
					violFPGA[pe.ID] = true
				}
			}
		}
		if len(violFPGA) == 0 {
			return false
		}
		changed := false
		for k := 0; k < c.Len(); k++ {
			pe := c.PEAt(genome, k)
			if !violFPGA[pe] || rng.Intn(2) == 0 {
				continue
			}
			cands := c.CandidatesAt(k)
			var alts []int
			for i, cand := range cands {
				if cand != pe {
					alts = append(alts, i)
				}
			}
			if len(alts) == 0 {
				continue
			}
			genome[k] = alts[rng.Intn(len(alts))]
			changed = true
		}
		return changed
	}
}

func contains(pes []model.PEID, pe model.PEID) bool {
	for _, p := range pes {
		if p == pe {
			return true
		}
	}
	return false
}

func sortPEs(pes []model.PEID) {
	for i := 1; i < len(pes); i++ {
		for j := i; j > 0 && pes[j] < pes[j-1]; j-- {
			pes[j], pes[j-1] = pes[j-1], pes[j]
		}
	}
}
