package synth

import (
	"math"
	"math/rand"
	"testing"

	"momosyn/internal/gen"
	"momosyn/internal/model"
	"momosyn/internal/sched"
)

// Property tests: structural invariants of schedules, allocations, voltage
// scaling and evaluations over randomly generated instances and random
// mappings. These are the safety net behind the GA — every candidate it
// evaluates must satisfy these regardless of how pathological the mapping
// is.

// randomMapping draws a uniformly random valid mapping.
func randomMapping(sys *model.System, rng *rand.Rand) model.Mapping {
	m := model.NewMapping(sys.App)
	for mi, mode := range sys.App.Modes {
		for ti, task := range mode.Graph.Tasks {
			cands := sys.CandidatePEs(task.Type)
			m[mi][ti] = cands[rng.Intn(len(cands))]
		}
	}
	return m
}

// forEachInstance runs the check over a spread of generated instances and
// random mappings.
func forEachInstance(t *testing.T, nSeeds, nMaps int, check func(t *testing.T, sys *model.System, mapping model.Mapping)) {
	t.Helper()
	for seed := int64(1); seed <= int64(nSeeds); seed++ {
		sys, err := gen.Generate(gen.NewParams(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 977))
		for k := 0; k < nMaps; k++ {
			check(t, sys, randomMapping(sys, rng))
		}
	}
}

func TestPropertySchedulesRespectPrecedence(t *testing.T) {
	forEachInstance(t, 8, 3, func(t *testing.T, sys *model.System, mapping model.Mapping) {
		ev := NewEvaluator(sys, false)
		res, err := ev.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		for m, sc := range res.Schedules {
			g := sys.App.Modes[m].Graph
			for ei, e := range g.Edges {
				src, dst := sc.Tasks[e.Src], sc.Tasks[e.Dst]
				cs := sc.Comms[ei]
				if cs.Start < src.Finish-1e-9 {
					t.Fatalf("mode %d edge %d: comm starts before producer", m, ei)
				}
				if dst.Start < cs.Finish-1e-9 {
					t.Fatalf("mode %d edge %d: consumer starts before arrival", m, ei)
				}
			}
		}
	})
}

func TestPropertyNoResourceOverlap(t *testing.T) {
	forEachInstance(t, 8, 3, func(t *testing.T, sys *model.System, mapping model.Mapping) {
		ev := NewEvaluator(sys, false)
		res, err := ev.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		for m, sc := range res.Schedules {
			g := sys.App.Modes[m].Graph
			// Software PEs and hardware core instances are exclusive.
			type key struct {
				pe   model.PEID
				tt   model.TaskTypeID
				core int
			}
			byRes := make(map[key][]sched.TaskSlot)
			for ti := range sc.Tasks {
				slot := sc.Tasks[ti]
				k := key{pe: slot.PE, tt: -1, core: -1}
				if sys.Arch.PE(slot.PE).Class.IsHardware() {
					k = key{slot.PE, g.Task(slot.Task).Type, slot.Core}
				}
				byRes[k] = append(byRes[k], slot)
			}
			for k, slots := range byRes {
				for i := range slots {
					for j := i + 1; j < len(slots); j++ {
						a, b := slots[i], slots[j]
						if a.Start < b.Finish-1e-9 && b.Start < a.Finish-1e-9 {
							t.Fatalf("mode %d: overlap on resource %+v", m, k)
						}
					}
				}
			}
			// Communication links are exclusive too.
			byCL := make(map[model.CLID][]sched.CommSlot)
			for ei := range sc.Comms {
				cs := sc.Comms[ei]
				if cs.Routed && cs.CL != model.NoCL && cs.Time > 0 {
					byCL[cs.CL] = append(byCL[cs.CL], cs)
				}
			}
			for cl, slots := range byCL {
				for i := range slots {
					for j := i + 1; j < len(slots); j++ {
						a, b := slots[i], slots[j]
						if a.Start < b.Finish-1e-9 && b.Start < a.Finish-1e-9 {
							t.Fatalf("mode %d: overlapping messages on CL %d", m, cl)
						}
					}
				}
			}
		}
	})
}

func TestPropertyHardwareTasksUseAllocatedCores(t *testing.T) {
	forEachInstance(t, 8, 3, func(t *testing.T, sys *model.System, mapping model.Mapping) {
		ev := NewEvaluator(sys, false)
		res, err := ev.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		for m, sc := range res.Schedules {
			g := sys.App.Modes[m].Graph
			for ti := range sc.Tasks {
				slot := sc.Tasks[ti]
				pe := sys.Arch.PE(slot.PE)
				if !pe.Class.IsHardware() {
					if slot.Core != -1 {
						t.Fatalf("software slot with core index %d", slot.Core)
					}
					continue
				}
				tt := g.Task(slot.Task).Type
				n := res.Alloc.Instances(model.ModeID(m), pe.ID, tt)
				// Tasks whose type has no implementation on the PE carry a
				// surrogate penalty and no core.
				if _, ok := sys.Lib.Type(tt).ImplOn(pe.ID); !ok {
					continue
				}
				if slot.Core < 0 || slot.Core >= n {
					t.Fatalf("mode %d task %d: core %d outside allocation %d", m, ti, slot.Core, n)
				}
			}
		}
	})
}

func TestPropertyDVSNeverIncreasesEnergyNorViolatesDeadlines(t *testing.T) {
	forEachInstance(t, 8, 3, func(t *testing.T, sys *model.System, mapping model.Mapping) {
		plain := NewEvaluator(sys, false)
		scaled := NewEvaluator(sys, true)
		resP, err := plain.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		resS, err := scaled.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		for m := range resP.Schedules {
			eP := resP.Schedules[m].DynamicEnergy()
			eS := resS.Schedules[m].DynamicEnergy()
			if eS > eP+1e-12 {
				t.Fatalf("mode %d: DVS increased energy %v -> %v", m, eP, eS)
			}
			lP := resP.Lateness[m]
			lS := resS.Lateness[m]
			if lP <= 1e-9 && lS > 1e-9 {
				t.Fatalf("mode %d: DVS made a feasible schedule late (%v)", m, lS)
			}
		}
		if resS.AvgPower > resP.AvgPower+1e-12 {
			t.Fatalf("DVS increased average power %v -> %v", resP.AvgPower, resS.AvgPower)
		}
	})
}

func TestPropertySoftwareOnlyDVSBetweenPlainAndFull(t *testing.T) {
	forEachInstance(t, 6, 2, func(t *testing.T, sys *model.System, mapping model.Mapping) {
		plain := NewEvaluator(sys, false)
		swOnly := &Evaluator{Sys: sys, UseDVS: true, Weights: DefaultWeights(), DVSSoftwareOnly: true}
		full := NewEvaluator(sys, true)
		rP, err := plain.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		rS, err := swOnly.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		rF, err := full.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		// Software-only DVS cannot beat nominal-voltage energy upward, and
		// adding hardware scaling can only help further on the same
		// schedule order.
		if rS.AvgPower > rP.AvgPower+1e-12 {
			t.Fatalf("software-only DVS increased power")
		}
		if rF.AvgPower > rS.AvgPower+1e-9 {
			t.Fatalf("full DVS (%v) worse than software-only (%v)", rF.AvgPower, rS.AvgPower)
		}
	})
}

func TestPropertyAllocationRespectsAreaUnlessViolated(t *testing.T) {
	forEachInstance(t, 8, 3, func(t *testing.T, sys *model.System, mapping model.Mapping) {
		ev := NewEvaluator(sys, false)
		res, err := ev.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		for m := range sys.App.Modes {
			for _, pe := range sys.Arch.PEs {
				if !pe.Class.IsHardware() {
					continue
				}
				used := res.Alloc.UsedArea[m][pe.ID]
				if res.Alloc.Violation[pe.ID] == 0 && used > pe.Area {
					t.Fatalf("mode %d PE %s: used %d > area %d without violation",
						m, pe.Name, used, pe.Area)
				}
				// Cross-check the used area against the instance table.
				sum := 0
				for _, tt := range sys.Lib.Types {
					n := res.Alloc.Instances(model.ModeID(m), pe.ID, tt.ID)
					if n == 0 {
						continue
					}
					im, ok := tt.ImplOn(pe.ID)
					if !ok {
						t.Fatalf("allocated core for type without impl")
					}
					sum += n * im.Area
				}
				if sum != used {
					t.Fatalf("mode %d PE %s: used area %d != instance sum %d", m, pe.Name, used, sum)
				}
			}
		}
	})
}

func TestPropertyFitnessSeparatesFeasibility(t *testing.T) {
	forEachInstance(t, 6, 4, func(t *testing.T, sys *model.System, mapping model.Mapping) {
		ev := NewEvaluator(sys, false)
		res, err := ev.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		ub := PowerUpperBound(sys)
		if res.Feasible() {
			if res.Fitness > ub {
				t.Fatalf("feasible fitness %v above upper bound %v", res.Fitness, ub)
			}
			if math.Abs(res.Fitness-res.AvgPower) > 1e-12 {
				t.Fatalf("feasible fitness %v != power %v", res.Fitness, res.AvgPower)
			}
		} else if res.Fitness <= ub {
			t.Fatalf("infeasible fitness %v not above bound %v", res.Fitness, ub)
		}
	})
}

func TestPropertyEvaluationDeterministic(t *testing.T) {
	forEachInstance(t, 5, 2, func(t *testing.T, sys *model.System, mapping model.Mapping) {
		ev := NewEvaluator(sys, true)
		a, err := ev.Evaluate(mapping)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ev.Evaluate(mapping.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if a.Fitness != b.Fitness || a.AvgPower != b.AvgPower {
			t.Fatalf("evaluation not deterministic: %v vs %v", a.Fitness, b.Fitness)
		}
	})
}

func TestPropertyMutationsPreserveValidity(t *testing.T) {
	forEachInstance(t, 6, 2, func(t *testing.T, sys *model.System, mapping model.Mapping) {
		codec, err := NewCodec(sys)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		muts := []func(g []int, r *rand.Rand) bool{
			codec.ShutdownMutation(),
			codec.AreaMutation(),
			codec.TimingMutation(),
			codec.TransitionMutation(),
		}
		genome := codec.Encode(mapping)
		for _, mut := range muts {
			g := append([]int(nil), genome...)
			mut(g, rng)
			if err := codec.Decode(g).Validate(sys); err != nil {
				t.Fatalf("mutation produced invalid mapping: %v", err)
			}
		}
	})
}
