package synth

import (
	"context"
	"testing"

	"momosyn/internal/ga"
)

// TestCanonicalOptions pins the keying contract: trajectory-shaping fields
// move the canonical bytes, runtime plumbing does not.
func TestCanonicalOptions(t *testing.T) {
	base := Options{Seed: 42, UseDVS: true, GA: ga.Config{PopSize: 32}}
	want := string(CanonicalOptions(base))
	if want == "" {
		t.Fatal("canonical options are empty")
	}

	runtime := base
	runtime.Context = context.Background()
	runtime.CheckpointPath = "/tmp/cp.json"
	runtime.CheckpointEvery = 3
	runtime.Resume = true
	runtime.FaultBudget = 7
	if got := string(CanonicalOptions(runtime)); got != want {
		t.Fatalf("runtime plumbing changed the canonical options:\n--- want\n%s\n--- got\n%s", want, got)
	}

	for name, mutate := range map[string]func(*Options){
		"seed":        func(o *Options) { o.Seed = 43 },
		"dvs":         func(o *Options) { o.UseDVS = false },
		"neglect":     func(o *Options) { o.NeglectProbabilities = true },
		"refine":      func(o *Options) { o.RefineIterations = 5 },
		"stall":       func(o *Options) { o.StallWindow = 9 },
		"certify":     func(o *Options) { o.Certify = true },
		"weights":     func(o *Options) { o.Weights.Area = 1.25 },
		"ga_pop":      func(o *Options) { o.GA.PopSize = 64 },
		"ga_maxgen":   func(o *Options) { o.GA.MaxGenerations = 10 },
		"ga_mutation": func(o *Options) { o.GA.MutationRate = 0.125 },
	} {
		opts := base
		mutate(&opts)
		if got := string(CanonicalOptions(opts)); got == want {
			t.Errorf("%s: trajectory-shaping change left canonical options unchanged", name)
		}
	}
}
