package synth

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"momosyn/internal/ga"
	"momosyn/internal/model"
)

// ParetoPoint is one non-dominated implementation of the power/area
// design-space exploration: its probability-weighted average power and the
// worst-case fraction of hardware area it occupies.
type ParetoPoint struct {
	Mapping model.Mapping
	// Power is the Eq. (1) average power (timing- and transition-feasible
	// candidates only reach the front).
	Power float64
	// AreaFrac is max over hardware PEs and modes of usedArea/availableArea.
	AreaFrac float64
	Feasible bool
}

// ParetoOptions configures the multi-objective exploration.
type ParetoOptions struct {
	UseDVS bool
	GA     ga.Config
	Seed   int64
	// Weights are the non-area penalty weights (timing, transition); the
	// area dimension is an objective here, not a penalty.
	Weights Weights
	// Context, when non-nil, cancels the exploration at the next generation
	// boundary; the front evolved so far is still returned.
	Context context.Context
}

// multiProblem adapts the evaluator to the NSGA-II engine with two
// objectives: (1) average power, lifted above the feasible upper bound for
// timing/transition-infeasible candidates, and (2) the worst-case hardware
// area fraction. The area constraint itself is dropped — the front shows
// what each extra cell of silicon buys, extending the paper's single-
// objective formulation into an architectural exploration in the spirit of
// the authors' LOPOCOS work.
type multiProblem struct {
	codec *Codec
	eval  *Evaluator
	cache map[string][]float64
}

func (p *multiProblem) GenomeLen() int    { return p.codec.Len() }
func (p *multiProblem) Alleles(i int) int { return p.codec.Alleles(i) }

func (p *multiProblem) Objectives(genome []int) []float64 {
	key := p.codec.Key(genome)
	if o, ok := p.cache[key]; ok {
		return o
	}
	objs := p.objectives(genome)
	if len(p.cache) < 1<<20 {
		p.cache[key] = objs
	}
	return objs
}

func (p *multiProblem) objectives(genome []int) []float64 {
	ev, err := p.eval.Evaluate(p.codec.Decode(genome))
	if err != nil {
		return []float64{math.Inf(1), math.Inf(1)}
	}
	power := ev.AvgPower * ev.TimingPenalty * ev.TransPenalty
	if ev.TimingPenalty > 1 || ev.TransPenalty > 1 || ev.Unroutable > 0 {
		if p.eval.ub <= 0 {
			p.eval.ub = PowerUpperBound(p.eval.Sys)
		}
		power += p.eval.ub
	}
	return []float64{power, areaFrac(p.eval.Sys, ev)}
}

// extremeGenomes builds the software-leaning and hardware-leaning anchor
// genomes for the exploration.
func extremeGenomes(sys *model.System, codec *Codec) (allSW, allHW []int) {
	allSW = make([]int, codec.Len())
	allHW = make([]int, codec.Len())
	for k := 0; k < codec.Len(); k++ {
		for i, pe := range codec.CandidatesAt(k) {
			if sys.Arch.PE(pe).Class.IsSoftware() {
				allSW[k] = i
				break
			}
		}
		for i, pe := range codec.CandidatesAt(k) {
			if sys.Arch.PE(pe).Class.IsHardware() {
				allHW[k] = i
				break
			}
		}
	}
	return allSW, allHW
}

// areaFrac returns the worst-case hardware utilisation of the candidate.
func areaFrac(s *model.System, ev *Evaluation) float64 {
	worst := 0.0
	for m := range ev.Alloc.UsedArea {
		for pe, used := range ev.Alloc.UsedArea[m] {
			if a := s.Arch.PE(model.PEID(pe)).Area; a > 0 {
				if f := float64(used) / float64(a); f > worst {
					worst = f
				}
			}
		}
	}
	return worst
}

// Pareto explores the power/area trade-off of the system with NSGA-II and
// returns the non-dominated front, cheapest-power first. Unlike
// Synthesize, hardware area is not a constraint but the second objective;
// points with AreaFrac > 1 describe hypothetical larger dies.
func Pareto(sys *model.System, opts ParetoOptions) ([]ParetoPoint, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	codec, err := NewCodec(sys)
	if err != nil {
		return nil, err
	}
	w := opts.Weights
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	// Area violations must not be penalised: area is an objective here.
	w.Area = 0
	eval := &Evaluator{Sys: sys, UseDVS: opts.UseDVS, Weights: w}
	prob := &multiProblem{codec: codec, eval: eval, cache: make(map[string][]float64)}
	// Anchor the area extremes: an all-software mapping (zero silicon) and
	// a hardware-greedy mapping (every task on a hardware candidate where
	// one exists).
	allSW, allHW := extremeGenomes(sys, codec)
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res := ga.RunNSGA2(ctx, prob, opts.GA, rand.New(rand.NewSource(opts.Seed)), allSW, allHW)

	ub := PowerUpperBound(sys)
	var out []ParetoPoint
	for _, pt := range res.Front {
		mapping := codec.Decode(pt.Genome)
		out = append(out, ParetoPoint{
			Mapping:  mapping,
			Power:    pt.Objectives[0],
			AreaFrac: pt.Objectives[1],
			Feasible: pt.Objectives[0] <= ub,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Power < out[j].Power })
	return out, nil
}
