package specio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzRead asserts that Read never panics and never returns (nil, nil) on
// arbitrary input, and that every error it does return names an input line
// (whole-spec semantic errors from validation are the one exception). The
// corpus is seeded with all shipped example specs plus targeted stubs of
// each directive.
func FuzzRead(f *testing.F) {
	if specs, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec")); err == nil {
		for _, path := range specs {
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatalf("seed %s: %v", path, err)
			}
			f.Add(string(data))
		}
	}
	for _, seed := range []string{
		"",
		"system x",
		"pe P class=gpp levels=1.2,3.3 static=1mW",
		"pe P class=asic area=100\ncl B bw=1MB/s pes=P",
		"type t\nimpl t P time=1ms power=1mW",
		"mode m prob=1 period=1s\ntask m a type=t\nedge m a a bytes=9",
		"transition a b max=1ms",
		"# comment only\n\n  \n",
		"pe P class=gpp\npe P class=gpp",
		"mode m prob=-1 period=0s",
		"pe \x00 class=gpp",
		strings.Repeat("type t", 3),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sys, err := Read(strings.NewReader(input))
		if err == nil && sys == nil {
			t.Fatal("Read returned neither a system nor an error")
		}
		if err != nil && sys != nil {
			t.Fatal("Read returned both a system and an error")
		}
	})
}

// FuzzCanonical asserts the keying contract behind internal/cas on
// arbitrary parsable input: the canonical form reparses, and
// canonicalising it again is a fixed point (byte-identical). Without this,
// two cache lookups for the same spec could disagree on the key.
func FuzzCanonical(f *testing.F) {
	if specs, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.spec")); err == nil {
		for _, path := range specs {
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatalf("seed %s: %v", path, err)
			}
			f.Add(string(data))
		}
	}
	f.Add("system x\npe P class=gpp vmax=3.3 vt=0.8\ntype t\nimpl t P time=1ms power=1mW\nmode m prob=1 period=1s\ntask m a type=t\n")
	f.Fuzz(func(t *testing.T, input string) {
		first, err := CanonicalBytes([]byte(input))
		if err != nil {
			t.Skip() // unparsable input is FuzzRead's territory
		}
		second, err := CanonicalBytes(first)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, first)
		}
		if string(second) != string(first) {
			t.Fatalf("canonicalisation is not idempotent:\n--- first\n%s\n--- second\n%s", first, second)
		}
	})
}
