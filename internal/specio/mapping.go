package specio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"momosyn/internal/model"
)

// Mapping persistence: a synthesised multi-mode task mapping is stored as
// one line per task,
//
//	map <mode> <task> <pe>
//
// referencing entities by name, so a saved mapping stays readable and
// survives cosmetic edits of the spec file. WriteMapping/ReadMapping pair
// with the system the mapping belongs to.

// WriteMapping emits the mapping in the text format.
func WriteMapping(w io.Writer, sys *model.System, m model.Mapping) error {
	if err := m.Validate(sys); err != nil {
		return fmt.Errorf("specio: refusing to write invalid mapping: %w", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# task mapping for system %s\n", sys.App.Name)
	for mi, mode := range sys.App.Modes {
		for ti, task := range mode.Graph.Tasks {
			fmt.Fprintf(bw, "map %s %s %s\n", mode.Name, task.Name, sys.Arch.PE(m[mi][ti]).Name)
		}
	}
	return bw.Flush()
}

// ReadMapping parses a mapping against the system. Every task of every
// mode must be assigned exactly once; assignments must reference existing
// modes, tasks and PEs, and the result must validate (each task's type has
// an implementation on its PE).
func ReadMapping(r io.Reader, sys *model.System) (model.Mapping, error) {
	m := model.NewMapping(sys.App)
	peByName := make(map[string]model.PEID, len(sys.Arch.PEs))
	for _, pe := range sys.Arch.PEs {
		peByName[pe.Name] = pe.ID
	}
	taskByName := make([]map[string]model.TaskID, len(sys.App.Modes))
	modeByName := make(map[string]model.ModeID, len(sys.App.Modes))
	for mi, mode := range sys.App.Modes {
		modeByName[mode.Name] = model.ModeID(mi)
		taskByName[mi] = make(map[string]model.TaskID, len(mode.Graph.Tasks))
		for ti, task := range mode.Graph.Tasks {
			taskByName[mi][task.Name] = model.TaskID(ti)
		}
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if fields[0] != "map" || len(fields) != 4 {
			return nil, fmt.Errorf("specio: line %d: want 'map MODE TASK PE'", line)
		}
		mi, ok := modeByName[fields[1]]
		if !ok {
			return nil, fmt.Errorf("specio: line %d: unknown mode %q", line, fields[1])
		}
		ti, ok := taskByName[mi][fields[2]]
		if !ok {
			return nil, fmt.Errorf("specio: line %d: unknown task %q in mode %q", line, fields[2], fields[1])
		}
		pe, ok := peByName[fields[3]]
		if !ok {
			return nil, fmt.Errorf("specio: line %d: unknown PE %q", line, fields[3])
		}
		if m[mi][ti] != model.NoPE {
			return nil, fmt.Errorf("specio: line %d: task %q of mode %q assigned twice", line, fields[2], fields[1])
		}
		m[mi][ti] = pe
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	for mi, mode := range sys.App.Modes {
		for ti, task := range mode.Graph.Tasks {
			if m[mi][ti] == model.NoPE {
				return nil, fmt.Errorf("specio: task %q of mode %q unassigned", task.Name, mode.Name)
			}
		}
	}
	if err := m.Validate(sys); err != nil {
		return nil, fmt.Errorf("specio: %w", err)
	}
	return m, nil
}
