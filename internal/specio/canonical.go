package specio

import (
	"bytes"
	"sort"

	"momosyn/internal/model"
)

// Canonical renders the system in its canonical byte form, the basis of
// content-addressed result keys (internal/cas): two specification texts
// that parse to the same model — reordered independent declarations,
// comment and whitespace differences, attribute-order permutations,
// unnormalised probabilities — canonicalise to identical bytes, and two
// texts that parse to different models never collide here.
//
// The canonical form is the Write emission of the parsed model (probability
// normalisation and unit resolution already happened in the reader), with
// the one model-order-insensitive section — the transition set, which the
// engine treats as an unordered constraint set — sorted by (from, to) mode
// index. Everything else keeps model order deliberately: PE, implementation,
// mode and task declaration order all shape the genome encoding and hence
// the deterministic search trajectory, so specs that differ there must key
// differently. Canonical is idempotent: parsing its output and
// canonicalising again reproduces the same bytes (FuzzCanonical pins this).
func Canonical(sys *model.System) ([]byte, error) {
	app := sys.App
	if len(app.Transitions) > 1 {
		trans := make([]model.Transition, len(app.Transitions))
		copy(trans, app.Transitions)
		sort.SliceStable(trans, func(i, j int) bool {
			if trans[i].From != trans[j].From {
				return trans[i].From < trans[j].From
			}
			if trans[i].To != trans[j].To {
				return trans[i].To < trans[j].To
			}
			// Duplicate (from,to) pairs are legal (tightest max wins in the
			// engine); MaxTime makes the order total so sorting is stable
			// under input permutation.
			return trans[i].MaxTime < trans[j].MaxTime
		})
		app = &model.OMSM{Name: app.Name, Modes: app.Modes, Transitions: trans}
		sys = sys.WithApp(app)
	}
	var buf bytes.Buffer
	if err := Write(&buf, sys); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CanonicalBytes parses a specification text and returns its canonical
// byte form (reader warnings, e.g. probability normalisation, are applied
// silently — the canonical form is the normalised system).
func CanonicalBytes(spec []byte) ([]byte, error) {
	sys, _, err := ReadWarnBytes(spec)
	if err != nil {
		return nil, err
	}
	return Canonical(sys)
}
