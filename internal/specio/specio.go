// Package specio reads and writes multi-mode system specifications in a
// line-oriented text format, so problem instances can be generated,
// inspected, edited and fed to the synthesis tools as plain files.
//
// The format is keyword-based with one declaration per line; '#' starts a
// comment. Quantities carry units (s/ms/us/ns, W/mW/uW, B/s, kB/s, MB/s).
//
//	system smartphone
//	pe GPP class=gpp vmax=3.3 vt=0.8 static=0.12mW levels=1.2,1.8,2.5,3.3
//	pe ASIC1 class=asic area=800 vmax=3.3 vt=0.8 static=0.25mW
//	cl BUS bw=10MB/s active=1mW static=0.06mW pes=GPP,ASIC1
//	type FFT
//	impl FFT GPP time=420us power=32mW
//	impl FFT ASIC1 time=10.5us power=51.2mW area=320
//	mode rlc prob=0.74 period=50ms
//	task rlc burst type=FFT deadline=25ms
//	edge rlc burst equalize bytes=312
//	transition rlc gsm max=25ms
//
// Declarations may appear in any order as long as referenced entities are
// declared first (PEs before types and links, types before tasks, modes
// before their tasks/edges, modes before transitions).
package specio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"momosyn/internal/model"
)

// Warning is a non-fatal semantic lint finding, carrying the 1-based line
// number of the offending declaration.
type Warning struct {
	Line int
	Msg  string
}

// String renders the warning in the same line-prefixed form as errors.
func (w Warning) String() string { return fmt.Sprintf("specio: line %d: warning: %s", w.Line, w.Msg) }

// Read parses a specification and returns the validated system, discarding
// lint warnings. Every parse error carries the 1-based input line number;
// only whole-spec semantic errors (graph cycles, ...) are reported without
// one. It is a thin wrapper over ReadWarn, just as ReadBytes is over
// ReadWarnBytes for callers holding the specification in memory.
func Read(r io.Reader) (*model.System, error) {
	sys, _, err := ReadWarn(r)
	return sys, err
}

// ReadBytes parses a specification held in memory (an uploaded request
// body, an embedded spec, ...), discarding lint warnings. It is equivalent
// to Read over a reader of data, with no temporary file involved.
func ReadBytes(data []byte) (*model.System, error) {
	sys, _, err := ReadWarnBytes(data)
	return sys, err
}

// ReadWarnBytes parses a specification held in memory and additionally
// returns semantic lint warnings, with the same normalisation and
// rejection rules as ReadWarn.
func ReadWarnBytes(data []byte) (*model.System, []Warning, error) {
	return ReadWarn(bytes.NewReader(data))
}

// ReadWarn parses a specification and additionally returns semantic lint
// warnings. Mode execution probabilities that do not sum to ~1 are
// normalised with a warning (the OMSM semantics need a distribution, and a
// misscaled Ψ would silently skew the Eq. (1) objective); unreachable
// modes and transitions with non-positive tTmax are rejected as errors.
func ReadWarn(r io.Reader) (*model.System, []Warning, error) {
	p := &parser{
		types:  make(map[string]*typeDecl),
		peSet:  make(map[string]bool),
		clSet:  make(map[string]bool),
		modeBy: make(map[string]*modeDecl),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		p.line = line
		if err := p.directive(fields); err != nil {
			return nil, nil, fmt.Errorf("specio: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		// The scanner stops at the offending line (e.g. one longer than
		// the buffer), which is the line after the last accepted one.
		return nil, nil, fmt.Errorf("specio: line %d: %w", line+1, err)
	}
	return p.finish()
}

// parser accumulates declarations before emitting them through the model
// builder (types need all their impls collected first).
type parser struct {
	name      string
	pes       []peDecl
	cls       []clDecl
	typeOrder []string
	types     map[string]*typeDecl
	modes     []*modeDecl
	trans     []transDecl
	// peSet/clSet/modeBy index declared names so reference and duplicate
	// errors are caught while the line number is still known.
	peSet  map[string]bool
	clSet  map[string]bool
	modeBy map[string]*modeDecl
	// line is the 1-based number of the line currently being parsed; mode
	// and transition declarations record it for whole-spec lints.
	line int
}

type peDecl struct{ pe model.PE }

type clDecl struct {
	cl  model.CL
	pes []string
}

type typeDecl struct {
	impls []model.ImplSpec
}

type modeDecl struct {
	name         string
	line         int
	prob, period float64
	tasks        []taskDecl
	edges        []edgeDecl
	taskSet      map[string]bool
}

type taskDecl struct {
	name, typ string
	deadline  float64
}

type edgeDecl struct {
	src, dst string
	bytes    float64
}

func (p *parser) directive(fields []string) error {
	switch fields[0] {
	case "system":
		if len(fields) != 2 {
			return fmt.Errorf("system needs exactly one name")
		}
		p.name = fields[1]
		return nil
	case "pe":
		return p.parsePE(fields)
	case "cl":
		return p.parseCL(fields)
	case "type":
		if len(fields) != 2 {
			return fmt.Errorf("type needs exactly one name")
		}
		if _, dup := p.types[fields[1]]; dup {
			return fmt.Errorf("duplicate type %q", fields[1])
		}
		p.types[fields[1]] = &typeDecl{}
		p.typeOrder = append(p.typeOrder, fields[1])
		return nil
	case "impl":
		return p.parseImpl(fields)
	case "mode":
		return p.parseMode(fields)
	case "task":
		return p.parseTask(fields)
	case "edge":
		return p.parseEdge(fields)
	case "transition":
		return p.parseTransition(fields)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

// kvs parses trailing key=value fields.
func kvs(fields []string) (map[string]string, error) {
	out := make(map[string]string, len(fields))
	for _, f := range fields {
		i := strings.IndexByte(f, '=')
		if i <= 0 {
			return nil, fmt.Errorf("malformed attribute %q (want key=value)", f)
		}
		key := f[:i]
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate attribute %q", key)
		}
		out[key] = f[i+1:]
	}
	return out, nil
}

func (p *parser) parsePE(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("pe needs a name and attributes")
	}
	attrs, err := kvs(fields[2:])
	if err != nil {
		return err
	}
	if p.peSet[fields[1]] {
		return fmt.Errorf("duplicate pe %q", fields[1])
	}
	pe := model.PE{Name: fields[1], Vmax: 3.3, Vt: 0.8}
	for k, v := range attrs {
		switch k {
		case "class":
			switch strings.ToLower(v) {
			case "gpp":
				pe.Class = model.GPP
			case "asip":
				pe.Class = model.ASIP
			case "asic":
				pe.Class = model.ASIC
			case "fpga":
				pe.Class = model.FPGA
			default:
				return fmt.Errorf("unknown PE class %q", v)
			}
		case "vmax":
			if pe.Vmax, err = strconv.ParseFloat(v, 64); err != nil {
				return fmt.Errorf("vmax: %w", err)
			}
		case "vt":
			if pe.Vt, err = strconv.ParseFloat(v, 64); err != nil {
				return fmt.Errorf("vt: %w", err)
			}
		case "area":
			if pe.Area, err = strconv.Atoi(v); err != nil {
				return fmt.Errorf("area: %w", err)
			}
		case "static":
			if pe.StaticPower, err = ParsePower(v); err != nil {
				return err
			}
		case "reconfig":
			if pe.ReconfigTime, err = ParseTime(v); err != nil {
				return err
			}
		case "levels":
			pe.DVS = true
			for _, s := range strings.Split(v, ",") {
				lv, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return fmt.Errorf("levels: %w", err)
				}
				pe.Levels = append(pe.Levels, lv)
			}
			sort.Float64s(pe.Levels)
		default:
			return fmt.Errorf("unknown pe attribute %q", k)
		}
	}
	p.pes = append(p.pes, peDecl{pe: pe})
	p.peSet[pe.Name] = true
	return nil
}

func (p *parser) parseCL(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("cl needs a name and attributes")
	}
	attrs, err := kvs(fields[2:])
	if err != nil {
		return err
	}
	if p.clSet[fields[1]] {
		return fmt.Errorf("duplicate cl %q", fields[1])
	}
	d := clDecl{cl: model.CL{Name: fields[1]}}
	for k, v := range attrs {
		switch k {
		case "bw":
			if d.cl.BytesPerSec, err = ParseBandwidth(v); err != nil {
				return err
			}
		case "active":
			if d.cl.PowerActive, err = ParsePower(v); err != nil {
				return err
			}
		case "static":
			if d.cl.StaticPower, err = ParsePower(v); err != nil {
				return err
			}
		case "pes":
			d.pes = strings.Split(v, ",")
			for _, n := range d.pes {
				if !p.peSet[n] {
					return fmt.Errorf("cl %q attaches undeclared pe %q", d.cl.Name, n)
				}
			}
		default:
			return fmt.Errorf("unknown cl attribute %q", k)
		}
	}
	p.cls = append(p.cls, d)
	p.clSet[d.cl.Name] = true
	return nil
}

func (p *parser) parseImpl(fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("impl needs: impl TYPE PE key=value...")
	}
	td, ok := p.types[fields[1]]
	if !ok {
		return fmt.Errorf("impl for undeclared type %q", fields[1])
	}
	if !p.peSet[fields[2]] {
		return fmt.Errorf("impl of type %q on undeclared pe %q", fields[1], fields[2])
	}
	attrs, err := kvs(fields[3:])
	if err != nil {
		return err
	}
	im := model.ImplSpec{PE: fields[2]}
	for k, v := range attrs {
		switch k {
		case "time":
			if im.Time, err = ParseTime(v); err != nil {
				return err
			}
		case "power":
			if im.Power, err = ParsePower(v); err != nil {
				return err
			}
		case "area":
			if im.Area, err = strconv.Atoi(v); err != nil {
				return fmt.Errorf("area: %w", err)
			}
		default:
			return fmt.Errorf("unknown impl attribute %q", k)
		}
	}
	td.impls = append(td.impls, im)
	return nil
}

func (p *parser) parseMode(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("mode needs a name and attributes")
	}
	attrs, err := kvs(fields[2:])
	if err != nil {
		return err
	}
	if p.modeBy[fields[1]] != nil {
		return fmt.Errorf("duplicate mode %q", fields[1])
	}
	d := &modeDecl{name: fields[1], line: p.line, taskSet: make(map[string]bool)}
	for k, v := range attrs {
		switch k {
		case "prob":
			if d.prob, err = strconv.ParseFloat(v, 64); err != nil {
				return fmt.Errorf("prob: %w", err)
			}
		case "period":
			if d.period, err = ParseTime(v); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown mode attribute %q", k)
		}
	}
	p.modes = append(p.modes, d)
	p.modeBy[d.name] = d
	return nil
}

func (p *parser) mode(name string) *modeDecl { return p.modeBy[name] }

func (p *parser) parseTask(fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("task needs: task MODE NAME key=value...")
	}
	m := p.mode(fields[1])
	if m == nil {
		return fmt.Errorf("task in undeclared mode %q", fields[1])
	}
	attrs, err := kvs(fields[3:])
	if err != nil {
		return err
	}
	td := taskDecl{name: fields[2]}
	for k, v := range attrs {
		switch k {
		case "type":
			td.typ = v
		case "deadline":
			if td.deadline, err = ParseTime(v); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown task attribute %q", k)
		}
	}
	if td.typ == "" {
		return fmt.Errorf("task %q needs a type", td.name)
	}
	if _, ok := p.types[td.typ]; !ok {
		return fmt.Errorf("task %q uses undeclared type %q", td.name, td.typ)
	}
	if m.taskSet[td.name] {
		return fmt.Errorf("duplicate task %q in mode %q", td.name, m.name)
	}
	m.tasks = append(m.tasks, td)
	m.taskSet[td.name] = true
	return nil
}

func (p *parser) parseEdge(fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("edge needs: edge MODE SRC DST [bytes=N]")
	}
	m := p.mode(fields[1])
	if m == nil {
		return fmt.Errorf("edge in undeclared mode %q", fields[1])
	}
	ed := edgeDecl{src: fields[2], dst: fields[3]}
	if !m.taskSet[ed.src] {
		return fmt.Errorf("edge references undeclared task %q in mode %q", ed.src, m.name)
	}
	if !m.taskSet[ed.dst] {
		return fmt.Errorf("edge references undeclared task %q in mode %q", ed.dst, m.name)
	}
	if len(fields) > 4 {
		attrs, err := kvs(fields[4:])
		if err != nil {
			return err
		}
		for k, v := range attrs {
			switch k {
			case "bytes":
				b, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return fmt.Errorf("bytes: %w", err)
				}
				ed.bytes = b
			default:
				return fmt.Errorf("unknown edge attribute %q", k)
			}
		}
	}
	m.edges = append(m.edges, ed)
	return nil
}

func (p *parser) parseTransition(fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("transition needs: transition FROM TO [max=T]")
	}
	td := transDecl{from: fields[1], to: fields[2]}
	if p.mode(td.from) == nil {
		return fmt.Errorf("transition from undeclared mode %q", td.from)
	}
	if p.mode(td.to) == nil {
		return fmt.Errorf("transition to undeclared mode %q", td.to)
	}
	if len(fields) > 3 {
		attrs, err := kvs(fields[3:])
		if err != nil {
			return err
		}
		for k, v := range attrs {
			switch k {
			case "max":
				mt, err := ParseTime(v)
				if err != nil {
					return err
				}
				if mt <= 0 {
					return fmt.Errorf("transition %s->%s: max=%s is not positive; omit max for an unconstrained transition",
						td.from, td.to, v)
				}
				td.max = mt
			default:
				return fmt.Errorf("unknown transition attribute %q", k)
			}
		}
	}
	p.trans = append(p.trans, td)
	return nil
}

type transDecl struct {
	from, to string
	max      float64
}

// finish replays the accumulated declarations through the model builder
// and applies the whole-spec semantic lints.
func (p *parser) finish() (*model.System, []Warning, error) {
	if p.name == "" {
		p.name = "unnamed"
	}
	var warns []Warning

	// Lint: the mode execution probabilities Ψ must form a distribution.
	// A misscaled vector is normalised with a warning rather than
	// rejected — relative usage ratios are usually what the author meant.
	if len(p.modes) > 0 {
		sum := 0.0
		for _, m := range p.modes {
			sum += m.prob
		}
		if sum > 0 && math.Abs(sum-1) > 1e-6 {
			warns = append(warns, Warning{Line: p.modes[0].line, Msg: fmt.Sprintf(
				"mode execution probabilities sum to %g, not 1; normalising to a distribution", sum)})
			for _, m := range p.modes {
				m.prob /= sum
			}
		}
	}

	b := model.NewBuilder(p.name)
	for _, d := range p.pes {
		b.AddPE(d.pe)
	}
	for _, d := range p.cls {
		b.AddCL(d.cl, d.pes...)
	}
	for _, name := range p.typeOrder {
		b.AddType(name, p.types[name].impls...)
	}
	for _, m := range p.modes {
		b.BeginMode(m.name, m.prob, m.period)
		for _, td := range m.tasks {
			b.AddTask(td.name, td.typ, td.deadline)
		}
		for _, ed := range m.edges {
			b.AddEdge(ed.src, ed.dst, ed.bytes)
		}
	}
	for _, td := range p.trans {
		b.AddTransition(td.from, td.to, td.max)
	}
	sys, err := b.Finish()
	if err != nil {
		return nil, nil, err
	}

	// Lint: every declared mode must be reachable from the initial (first
	// declared) mode when the spec declares a state machine at all.
	if len(p.modes) > 1 && len(p.trans) > 0 {
		reach := sys.App.ReachableFrom(0)
		for i, ok := range reach {
			if !ok {
				m := p.modes[i]
				return nil, nil, fmt.Errorf(
					"specio: line %d: mode %q is unreachable from initial mode %q via the declared transitions",
					m.line, m.name, p.modes[0].name)
			}
		}
	}
	return sys, warns, nil
}

// Write emits the canonical text form of the system. Reading the output
// back reproduces an identical specification.
func Write(w io.Writer, sys *model.System) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "system %s\n\n", sys.App.Name)
	for _, pe := range sys.Arch.PEs {
		fmt.Fprintf(bw, "pe %s class=%s vmax=%g vt=%g", pe.Name, strings.ToLower(pe.Class.String()), pe.Vmax, pe.Vt)
		if pe.Area > 0 {
			fmt.Fprintf(bw, " area=%d", pe.Area)
		}
		if pe.StaticPower > 0 {
			fmt.Fprintf(bw, " static=%s", FormatPower(pe.StaticPower))
		}
		if pe.ReconfigTime > 0 {
			fmt.Fprintf(bw, " reconfig=%s", FormatTime(pe.ReconfigTime))
		}
		if pe.DVS {
			strs := make([]string, len(pe.Levels))
			for i, l := range pe.Levels {
				strs[i] = strconv.FormatFloat(l, 'g', -1, 64)
			}
			fmt.Fprintf(bw, " levels=%s", strings.Join(strs, ","))
		}
		fmt.Fprintln(bw)
	}
	for _, cl := range sys.Arch.CLs {
		names := make([]string, len(cl.PEs))
		for i, pid := range cl.PEs {
			names[i] = sys.Arch.PE(pid).Name
		}
		fmt.Fprintf(bw, "cl %s bw=%s", cl.Name, FormatBandwidth(cl.BytesPerSec))
		if cl.PowerActive > 0 {
			fmt.Fprintf(bw, " active=%s", FormatPower(cl.PowerActive))
		}
		if cl.StaticPower > 0 {
			fmt.Fprintf(bw, " static=%s", FormatPower(cl.StaticPower))
		}
		fmt.Fprintf(bw, " pes=%s\n", strings.Join(names, ","))
	}
	fmt.Fprintln(bw)
	for _, tt := range sys.Lib.Types {
		fmt.Fprintf(bw, "type %s\n", tt.Name)
		for _, im := range tt.Impls {
			fmt.Fprintf(bw, "impl %s %s time=%s power=%s",
				tt.Name, sys.Arch.PE(im.PE).Name, FormatTime(im.Time), FormatPower(im.Power))
			if im.Area > 0 {
				fmt.Fprintf(bw, " area=%d", im.Area)
			}
			fmt.Fprintln(bw)
		}
	}
	fmt.Fprintln(bw)
	for _, m := range sys.App.Modes {
		fmt.Fprintf(bw, "mode %s prob=%g period=%s\n", m.Name, m.Prob, FormatTime(m.Period))
		for _, task := range m.Graph.Tasks {
			fmt.Fprintf(bw, "task %s %s type=%s", m.Name, task.Name, sys.Lib.Type(task.Type).Name)
			if task.Deadline > 0 {
				fmt.Fprintf(bw, " deadline=%s", FormatTime(task.Deadline))
			}
			fmt.Fprintln(bw)
		}
		for _, e := range m.Graph.Edges {
			fmt.Fprintf(bw, "edge %s %s %s bytes=%g\n",
				m.Name, m.Graph.Task(e.Src).Name, m.Graph.Task(e.Dst).Name, e.Bytes)
		}
	}
	fmt.Fprintln(bw)
	for _, tr := range sys.App.Transitions {
		fmt.Fprintf(bw, "transition %s %s", sys.App.Mode(tr.From).Name, sys.App.Mode(tr.To).Name)
		if tr.MaxTime > 0 {
			fmt.Fprintf(bw, " max=%s", FormatTime(tr.MaxTime))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
