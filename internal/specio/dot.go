package specio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"momosyn/internal/model"
)

// WriteDOT renders the system specification as a Graphviz document: the
// top-level finite state machine over operational modes (states annotated
// with execution probability and period, transitions with their time
// limits), and one cluster per mode containing its task graph (tasks
// annotated with their type).
func WriteDOT(w io.Writer, sys *model.System) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", sys.App.Name)
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [fontname=\"Helvetica\", fontsize=10];")
	fmt.Fprintln(bw, "  edge [fontname=\"Helvetica\", fontsize=9];")

	// Top-level FSM.
	fmt.Fprintln(bw, "  subgraph cluster_omsm {")
	fmt.Fprintln(bw, "    label=\"operational mode state machine\";")
	fmt.Fprintln(bw, "    style=dashed;")
	for _, m := range sys.App.Modes {
		fmt.Fprintf(bw, "    %s [shape=doublecircle, label=\"%s\\nΨ=%g\\nφ=%s\"];\n",
			dotID("mode", m.Name), dotEscape(m.Name), m.Prob, FormatTime(m.Period))
	}
	for _, tr := range sys.App.Transitions {
		label := ""
		if tr.MaxTime > 0 {
			label = fmt.Sprintf(" [label=\"≤%s\"]", FormatTime(tr.MaxTime))
		}
		fmt.Fprintf(bw, "    %s -> %s%s;\n",
			dotID("mode", sys.App.Mode(tr.From).Name),
			dotID("mode", sys.App.Mode(tr.To).Name), label)
	}
	fmt.Fprintln(bw, "  }")

	// Per-mode task graphs.
	for mi, m := range sys.App.Modes {
		fmt.Fprintf(bw, "  subgraph cluster_m%d {\n", mi)
		fmt.Fprintf(bw, "    label=\"%s\";\n", dotEscape(m.Name))
		for _, task := range m.Graph.Tasks {
			tt := sys.Lib.Type(task.Type)
			extra := ""
			if task.Deadline > 0 {
				extra = fmt.Sprintf("\\nθ=%s", FormatTime(task.Deadline))
			}
			fmt.Fprintf(bw, "    %s [shape=box, label=\"%s\\n%s%s\"];\n",
				dotID(fmt.Sprintf("m%d", mi), task.Name), dotEscape(task.Name), dotEscape(tt.Name), extra)
		}
		for _, e := range m.Graph.Edges {
			label := ""
			if e.Bytes > 0 {
				label = fmt.Sprintf(" [label=\"%gB\"]", e.Bytes)
			}
			fmt.Fprintf(bw, "    %s -> %s%s;\n",
				dotID(fmt.Sprintf("m%d", mi), m.Graph.Task(e.Src).Name),
				dotID(fmt.Sprintf("m%d", mi), m.Graph.Task(e.Dst).Name), label)
		}
		fmt.Fprintln(bw, "  }")
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// dotID builds a Graphviz-safe node identifier from a namespace and a
// name.
func dotID(ns, name string) string {
	var sb strings.Builder
	sb.WriteString(ns)
	sb.WriteByte('_')
	for _, r := range name {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func dotEscape(s string) string {
	return strings.NewReplacer(`"`, `\"`, "\n", `\n`).Replace(s)
}
