package specio

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"momosyn/internal/bench"
	"momosyn/internal/gen"
	"momosyn/internal/model"
)

const sample = `
# A two-PE example.
system demo

pe cpu class=gpp vmax=3.3 vt=0.8 static=0.5mW levels=1.8,2.5,3.3
pe acc class=asic area=500 static=0.2mW
cl bus bw=1MB/s active=2mW static=0.1mW pes=cpu,acc

type fir
impl fir cpu time=10ms power=4mW
impl fir acc time=200us power=1mW area=300
type ctl
impl ctl cpu time=1ms power=1mW

mode run prob=0.9 period=50ms
task run f1 type=fir
task run c1 type=ctl deadline=20ms
edge run f1 c1 bytes=256

mode idle prob=0.1 period=100ms
task idle c2 type=ctl

transition run idle max=10ms
transition idle run
`

func TestReadSample(t *testing.T) {
	sys, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if sys.App.Name != "demo" {
		t.Errorf("name = %q", sys.App.Name)
	}
	if len(sys.Arch.PEs) != 2 || len(sys.Arch.CLs) != 1 {
		t.Fatalf("arch shape wrong")
	}
	cpu := sys.Arch.PEs[0]
	if !cpu.DVS || len(cpu.Levels) != 3 || cpu.Levels[0] != 1.8 {
		t.Errorf("cpu DVS levels = %v", cpu.Levels)
	}
	if math.Abs(cpu.StaticPower-0.5e-3) > 1e-15 {
		t.Errorf("cpu static = %v", cpu.StaticPower)
	}
	acc := sys.Arch.PEs[1]
	if acc.Class != model.ASIC || acc.Area != 500 {
		t.Errorf("acc = %+v", acc)
	}
	bus := sys.Arch.CLs[0]
	if bus.BytesPerSec != 1e6 || bus.PowerActive != 2e-3 {
		t.Errorf("bus = %+v", bus)
	}
	fir := sys.Lib.TypeByName("fir")
	if fir == nil || len(fir.Impls) != 2 {
		t.Fatalf("fir impls wrong")
	}
	if im, _ := fir.ImplOn(1); relDiff(im.Time, 200e-6) > 1e-12 || im.Area != 300 {
		t.Errorf("fir acc impl = %+v", im)
	}
	if len(sys.App.Modes) != 2 {
		t.Fatal("mode count")
	}
	run := sys.App.Modes[0]
	if run.Prob != 0.9 || run.Period != 50e-3 {
		t.Errorf("run mode = %+v", run)
	}
	if run.Graph.Tasks[1].Deadline != 20e-3 {
		t.Errorf("deadline = %v", run.Graph.Tasks[1].Deadline)
	}
	if run.Graph.Edges[0].Bytes != 256 {
		t.Errorf("edge bytes = %v", run.Graph.Edges[0].Bytes)
	}
	if len(sys.App.Transitions) != 2 || sys.App.Transitions[0].MaxTime != 10e-3 {
		t.Errorf("transitions = %+v", sys.App.Transitions)
	}
	if sys.App.Transitions[1].MaxTime != 0 {
		t.Error("missing max must mean unconstrained")
	}
}

func TestRoundTripSample(t *testing.T) {
	sys, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, sys)
}

func TestRoundTripSmartPhone(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, sys)
}

func TestRoundTripGenerated(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sys, err := gen.Generate(gen.NewParams(seed))
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, sys)
	}
}

// roundTrip writes the system, reads it back, writes again and requires
// byte-identical output plus structural equality.
func roundTrip(t *testing.T, sys *model.System) {
	t.Helper()
	var buf1 bytes.Buffer
	if err := Write(&buf1, sys); err != nil {
		t.Fatal(err)
	}
	sys2, err := Read(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatalf("re-read failed: %v\nspec:\n%s", err, buf1.String())
	}
	var buf2 bytes.Buffer
	if err := Write(&buf2, sys2); err != nil {
		t.Fatal(err)
	}
	// After one read the representation is canonical: a further
	// read/write cycle must be a byte-identical fixed point.
	sys3, err := Read(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := Write(&buf3, sys3); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf3.String() {
		t.Fatal("write-read-write is not a fixed point")
	}
	assertEqualSystems(t, sys, sys2)
}

func assertEqualSystems(t *testing.T, a, b *model.System) {
	t.Helper()
	if len(a.Arch.PEs) != len(b.Arch.PEs) || len(a.Arch.CLs) != len(b.Arch.CLs) {
		t.Fatal("arch shape differs")
	}
	for i := range a.Arch.PEs {
		pa, pb := a.Arch.PEs[i], b.Arch.PEs[i]
		if pa.Name != pb.Name || pa.Class != pb.Class || pa.Area != pb.Area ||
			relDiff(pa.StaticPower, pb.StaticPower) > 1e-12 ||
			pa.DVS != pb.DVS || len(pa.Levels) != len(pb.Levels) {
			t.Fatalf("PE %d differs: %+v vs %+v", i, pa, pb)
		}
	}
	if len(a.Lib.Types) != len(b.Lib.Types) {
		t.Fatal("type count differs")
	}
	for i := range a.Lib.Types {
		ta, tb := a.Lib.Types[i], b.Lib.Types[i]
		if ta.Name != tb.Name || len(ta.Impls) != len(tb.Impls) {
			t.Fatalf("type %d differs", i)
		}
		for j := range ta.Impls {
			ia, ib := ta.Impls[j], tb.Impls[j]
			if ia.PE != ib.PE || ia.Area != ib.Area ||
				relDiff(ia.Time, ib.Time) > 1e-9 || relDiff(ia.Power, ib.Power) > 1e-9 {
				t.Fatalf("type %s impl %d differs: %+v vs %+v", ta.Name, j, ia, ib)
			}
		}
	}
	if len(a.App.Modes) != len(b.App.Modes) {
		t.Fatal("mode count differs")
	}
	for i := range a.App.Modes {
		ma, mb := a.App.Modes[i], b.App.Modes[i]
		if ma.Name != mb.Name || ma.Prob != mb.Prob || relDiff(ma.Period, mb.Period) > 1e-9 {
			t.Fatalf("mode %d header differs", i)
		}
		if len(ma.Graph.Tasks) != len(mb.Graph.Tasks) || len(ma.Graph.Edges) != len(mb.Graph.Edges) {
			t.Fatalf("mode %d graph shape differs", i)
		}
		for j := range ma.Graph.Tasks {
			ta, tb := ma.Graph.Tasks[j], mb.Graph.Tasks[j]
			if ta.Name != tb.Name || ta.Type != tb.Type || relDiff(ta.Deadline, tb.Deadline) > 1e-9 {
				t.Fatalf("mode %d task %d differs", i, j)
			}
		}
		for j := range ma.Graph.Edges {
			ea, eb := ma.Graph.Edges[j], mb.Graph.Edges[j]
			if ea.Src != eb.Src || ea.Dst != eb.Dst || ea.Bytes != eb.Bytes {
				t.Fatalf("mode %d edge %d differs", i, j)
			}
		}
	}
	if len(a.App.Transitions) != len(b.App.Transitions) {
		t.Fatal("transition count differs")
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// TestReadBytesMatchesRead pins the in-memory entry points: ReadBytes and
// ReadWarnBytes must behave exactly like their reader-based counterparts —
// same system, same warnings, same line-numbered errors — since the server
// parses uploaded request bodies through them without a temp file.
func TestReadBytesMatchesRead(t *testing.T) {
	fromReader, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	fromBytes, err := ReadBytes([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := Write(&a, fromReader); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, fromBytes); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("ReadBytes parsed a different system than Read")
	}

	// Errors keep their 1-based line numbers through the bytes path.
	if _, err := ReadBytes([]byte("pe cpu class=gpp\nfrobnicate")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("ReadBytes error = %v, want line 2 diagnostic", err)
	}

	// Warnings survive too (probabilities summing to 0.8 are normalised).
	warnSpec := []byte(`
pe cpu class=gpp
cl bus bw=1MB/s pes=cpu
type t
impl t cpu time=1ms power=1mW
mode a prob=0.4 period=1s
task a x type=t
mode b prob=0.4 period=1s
task b y type=t
transition a b
transition b a
`)
	sys, warns, err := ReadWarnBytes(warnSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) == 0 {
		t.Error("ReadWarnBytes dropped the normalisation warning")
	}
	if got := sys.App.Modes[0].Prob + sys.App.Modes[1].Prob; math.Abs(got-1) > 1e-12 {
		t.Errorf("probabilities not normalised: sum %v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, spec string
	}{
		{"unknown directive", "frobnicate x"},
		{"bad attribute", "pe cpu class=gpp nonsense=1"},
		{"malformed kv", "pe cpu class"},
		{"duplicate kv", "pe cpu class=gpp class=gpp"},
		{"bad class", "pe cpu class=quantum"},
		{"impl before type", "pe cpu class=gpp\nimpl fir cpu time=1ms power=1mW"},
		{"task before mode", "task m t type=x"},
		{"edge before mode", "edge m a b"},
		{"bad time", "pe cpu class=gpp\ntype t\nimpl t cpu time=10parsecs power=1mW"},
		{"negative power", "pe cpu class=gpp\ntype t\nimpl t cpu time=1ms power=-1mW"},
		{"duplicate type", "type t\ntype t"},
		{"system extra", "system a b"},
		{"bad bytes", "mode m prob=1 period=1s\ntask m a type=t\nedge m a a bytes=x"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.spec)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadNormalisesProbabilities(t *testing.T) {
	// Syntactically fine but probabilities sum to 0.8: the reader warns
	// (with the first mode's line number) and normalises the distribution.
	spec := `
pe cpu class=gpp
cl bus bw=1MB/s pes=cpu
type t
impl t cpu time=1ms power=1mW
mode a prob=0.4 period=1s
task a x type=t
mode b prob=0.4 period=1s
task b y type=t
`
	sys, warns, err := ReadWarn(strings.NewReader(spec))
	if err != nil {
		t.Fatalf("misscaled probabilities must warn, not fail: %v", err)
	}
	if len(warns) != 1 {
		t.Fatalf("want exactly one warning, got %v", warns)
	}
	if warns[0].Line != 6 || !strings.Contains(warns[0].Msg, "0.8") {
		t.Errorf("warning must cite line 6 and the sum 0.8, got %+v", warns[0])
	}
	for _, m := range sys.App.Modes {
		if math.Abs(m.Prob-0.5) > 1e-12 {
			t.Errorf("mode %q prob = %g, want 0.5 after normalisation", m.Name, m.Prob)
		}
	}

	// A correctly scaled spec warns about nothing.
	ok := strings.Replace(spec, "prob=0.4", "prob=0.5", 2)
	if _, warns, err := ReadWarn(strings.NewReader(ok)); err != nil || len(warns) != 0 {
		t.Errorf("clean spec: err=%v warnings=%v", err, warns)
	}
}

func TestReadRejectsUnreachableMode(t *testing.T) {
	spec := `
pe cpu class=gpp
cl bus bw=1MB/s pes=cpu
type t
impl t cpu time=1ms power=1mW
mode a prob=0.4 period=1s
task a x type=t
mode b prob=0.3 period=1s
task b y type=t
mode c prob=0.3 period=1s
task c z type=t
transition a b max=1ms
transition b a max=1ms
transition c a max=1ms
`
	_, err := Read(strings.NewReader(spec))
	if err == nil {
		t.Fatal("unreachable mode must be rejected")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"c"`) || !strings.Contains(msg, "unreachable") {
		t.Errorf("error must name the unreachable mode: %v", err)
	}
	if !strings.Contains(msg, "line 10") {
		t.Errorf("error must carry the mode's line number: %v", err)
	}

	// Closing the cycle makes the same spec valid.
	fixed := spec + "transition a c max=1ms\n"
	if _, err := Read(strings.NewReader(fixed)); err != nil {
		t.Errorf("reachable state machine rejected: %v", err)
	}
}

func TestReadRejectsNonPositiveTransitionMax(t *testing.T) {
	base := `
pe cpu class=gpp
cl bus bw=1MB/s pes=cpu
type t
impl t cpu time=1ms power=1mW
mode a prob=0.5 period=1s
task a x type=t
mode b prob=0.5 period=1s
task b y type=t
transition a b max=%s
transition b a max=1ms
`
	for _, bad := range []string{"0s", "0ms", "-5ms"} {
		spec := fmt.Sprintf(base, bad)
		_, err := Read(strings.NewReader(spec))
		if err == nil {
			t.Errorf("max=%s must be rejected", bad)
			continue
		}
		// Negative durations are caught by the unit parser itself, zero by
		// the transition lint; both carry the line number and a reason.
		if !strings.Contains(err.Error(), "line 10") ||
			!(strings.Contains(err.Error(), "positive") || strings.Contains(err.Error(), "negative")) {
			t.Errorf("max=%s: error must cite line 10 and reason, got %v", bad, err)
		}
	}
	// Omitting max entirely stays legal (unconstrained transition).
	spec := strings.Replace(fmt.Sprintf(base, "1ms"), " max=1ms\ntransition b a max=1ms", "\ntransition b a", 1)
	if _, err := Read(strings.NewReader(spec)); err != nil {
		t.Errorf("unconstrained transition rejected: %v", err)
	}
}

func TestUnitParsing(t *testing.T) {
	cases := []struct {
		in   string
		f    func(string) (float64, error)
		want float64
	}{
		{"10ms", ParseTime, 10e-3},
		{"250us", ParseTime, 250e-6},
		{"3ns", ParseTime, 3e-9},
		{"1.5s", ParseTime, 1.5},
		{"2", ParseTime, 2},
		{"5mW", ParsePower, 5e-3},
		{"7uW", ParsePower, 7e-6},
		{"1W", ParsePower, 1},
		{"0.25", ParsePower, 0.25},
		{"10MB/s", ParseBandwidth, 10e6},
		{"8kB/s", ParseBandwidth, 8e3},
		{"1GB/s", ParseBandwidth, 1e9},
		{"512B/s", ParseBandwidth, 512},
	}
	for _, c := range cases {
		got, err := c.f(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if relDiff(got, c.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "-5ms", "10lightyears"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("%q should not parse", bad)
		}
	}
}

func TestUnitFormattingRoundTrips(t *testing.T) {
	for _, v := range []float64{0, 1e-9, 42e-6, 3.7e-3, 1.25, 900} {
		s := FormatTime(v)
		got, err := ParseTime(s)
		if err != nil {
			t.Fatalf("FormatTime(%v) = %q does not parse: %v", v, s, err)
		}
		if relDiff(got, v) > 1e-9 {
			t.Errorf("time %v -> %q -> %v", v, s, got)
		}
	}
	for _, v := range []float64{0, 5e-6, 3e-3, 2.5} {
		s := FormatPower(v)
		got, err := ParsePower(s)
		if err != nil || relDiff(got, v) > 1e-9 {
			t.Errorf("power %v -> %q -> %v (%v)", v, s, got, err)
		}
	}
	for _, v := range []float64{1, 5e3, 2e6, 3e9} {
		s := FormatBandwidth(v)
		got, err := ParseBandwidth(s)
		if err != nil || relDiff(got, v) > 1e-9 {
			t.Errorf("bw %v -> %q -> %v (%v)", v, s, got, err)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	spec := "# leading comment\n\n  \nsystem x # trailing\npe cpu class=gpp\ncl b bw=1B/s pes=cpu\ntype t\nimpl t cpu time=1ms power=1mW\nmode m prob=1 period=1s\ntask m a type=t\n"
	sys, err := Read(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if sys.App.Name != "x" {
		t.Errorf("name = %q", sys.App.Name)
	}
}

// TestReadNeverPanicsOnGarbage feeds randomly mangled spec lines to the
// parser; it must always return an error or a valid system, never panic.
func TestReadNeverPanicsOnGarbage(t *testing.T) {
	base := strings.Split(sample, "\n")
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 200; round++ {
		lines := append([]string(nil), base...)
		// Mutate a few random lines: truncate, duplicate, or scramble.
		for k := 0; k < 3; k++ {
			i := rng.Intn(len(lines))
			switch rng.Intn(4) {
			case 0:
				if len(lines[i]) > 0 {
					lines[i] = lines[i][:rng.Intn(len(lines[i]))]
				}
			case 1:
				lines[i] = lines[i] + " " + lines[rng.Intn(len(lines))]
			case 2:
				lines[i] = strings.ReplaceAll(lines[i], "=", " ")
			case 3:
				lines[i] = strings.ToUpper(lines[i])
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mangled input: %v\n%s", r, strings.Join(lines, "\n"))
				}
			}()
			sys, err := Read(strings.NewReader(strings.Join(lines, "\n")))
			if err == nil {
				// Any accepted output must validate.
				if verr := sys.Validate(); verr != nil {
					t.Fatalf("parser accepted invalid system: %v", verr)
				}
			}
		}()
	}
}
