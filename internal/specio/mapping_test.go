package specio

import (
	"bytes"
	"strings"
	"testing"

	"momosyn/internal/bench"
	"momosyn/internal/model"
	"momosyn/internal/synth"
)

func phoneWithMapping(t *testing.T) (*model.System, model.Mapping) {
	t.Helper()
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	codec, err := synth.NewCodec(sys)
	if err != nil {
		t.Fatal(err)
	}
	genome := make([]int, codec.Len())
	for i := range genome {
		genome[i] = i % codec.Alleles(i)
	}
	return sys, codec.Decode(genome)
}

func TestMappingRoundTrip(t *testing.T) {
	sys, m := phoneWithMapping(t)
	var buf bytes.Buffer
	if err := WriteMapping(&buf, sys, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMapping(bytes.NewReader(buf.Bytes()), sys)
	if err != nil {
		t.Fatalf("read back failed: %v", err)
	}
	if !got.Equal(m) {
		t.Fatal("mapping round trip mismatch")
	}
}

func TestWriteMappingRejectsInvalid(t *testing.T) {
	sys, m := phoneWithMapping(t)
	m[0][0] = model.PEID(99)
	if err := WriteMapping(&bytes.Buffer{}, sys, m); err == nil {
		t.Fatal("invalid mapping must be rejected")
	}
}

func TestReadMappingErrors(t *testing.T) {
	sys, m := phoneWithMapping(t)
	var buf bytes.Buffer
	if err := WriteMapping(&buf, sys, m); err != nil {
		t.Fatal(err)
	}
	full := buf.String()

	cases := []struct {
		name, input string
	}{
		{"garbage line", "map too few"},
		{"unknown mode", "map nosuchmode r_burst GPP"},
		{"unknown task", "map rlc nosuchtask GPP"},
		{"unknown pe", "map rlc r_burst NOPE"},
		{"duplicate", full + strings.SplitN(full, "\n", 3)[1] + "\n"},
		{"incomplete", strings.SplitN(full, "\n", 3)[1] + "\n"},
	}
	for _, c := range cases {
		if _, err := ReadMapping(strings.NewReader(c.input), sys); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadMappingRejectsTypeMismatch(t *testing.T) {
	sys, _ := phoneWithMapping(t)
	// r_burst is of type PARSE (software-only): mapping it to ASIC1 parses
	// but must fail validation.
	var sb strings.Builder
	for mi, mode := range sys.App.Modes {
		for ti, task := range mode.Graph.Tasks {
			pe := "GPP"
			if mi == 0 && ti == 0 {
				pe = "ASIC1"
			}
			sb.WriteString("map " + mode.Name + " " + task.Name + " " + pe + "\n")
		}
	}
	if _, err := ReadMapping(strings.NewReader(sb.String()), sys); err == nil {
		t.Fatal("type without implementation on PE must be rejected")
	}
}

func TestReadMappingIgnoresCommentsAndBlanks(t *testing.T) {
	sys, m := phoneWithMapping(t)
	var buf bytes.Buffer
	if err := WriteMapping(&buf, sys, m); err != nil {
		t.Fatal(err)
	}
	decorated := "# header\n\n" + strings.ReplaceAll(buf.String(), "\nmap rlc", " # trail\nmap rlc")
	got, err := ReadMapping(strings.NewReader(decorated), sys)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("comments changed the mapping")
	}
}
