package specio

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTime parses a duration with unit suffix (ns, us, ms, s) into
// seconds. A bare number is seconds.
func ParseTime(s string) (float64, error) {
	return parseUnit(s, "time", []unit{
		{"ns", 1e-9}, {"us", 1e-6}, {"ms", 1e-3}, {"s", 1},
	})
}

// ParsePower parses a power with unit suffix (uW, mW, W) into watts. A
// bare number is watts.
func ParsePower(s string) (float64, error) {
	return parseUnit(s, "power", []unit{
		{"uW", 1e-6}, {"mW", 1e-3}, {"W", 1},
	})
}

// ParseBandwidth parses a bandwidth (B/s, kB/s, MB/s, GB/s) into bytes per
// second. A bare number is bytes per second.
func ParseBandwidth(s string) (float64, error) {
	return parseUnit(s, "bandwidth", []unit{
		{"GB/s", 1e9}, {"MB/s", 1e6}, {"kB/s", 1e3}, {"B/s", 1},
	})
}

type unit struct {
	suffix string
	scale  float64
}

// parseUnit matches the longest suffix first; units are matched
// case-sensitively except for a fully lower-cased fallback, so "10MS" is
// rejected but "10ms" and canonical "10mW" both work.
func parseUnit(s, what string, units []unit) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty %s value", what)
	}
	best := unit{}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) && len(u.suffix) > len(best.suffix) {
			best = u
		}
	}
	num := s
	scale := 1.0
	if best.suffix != "" {
		num = s[:len(s)-len(best.suffix)]
		scale = best.scale
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s value %q", what, s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative %s value %q", what, s)
	}
	return v * scale, nil
}

// FormatTime renders seconds with the largest unit that keeps the value
// >= 1 (or ns for very small values), using minimal digits.
func FormatTime(v float64) string {
	return formatUnit(v, []unit{
		{"s", 1}, {"ms", 1e-3}, {"us", 1e-6}, {"ns", 1e-9},
	})
}

// FormatPower renders watts analogously (W, mW, uW).
func FormatPower(v float64) string {
	return formatUnit(v, []unit{
		{"W", 1}, {"mW", 1e-3}, {"uW", 1e-6},
	})
}

// FormatBandwidth renders bytes per second (GB/s, MB/s, kB/s, B/s).
func FormatBandwidth(v float64) string {
	return formatUnit(v, []unit{
		{"GB/s", 1e9}, {"MB/s", 1e6}, {"kB/s", 1e3}, {"B/s", 1},
	})
}

func formatUnit(v float64, units []unit) string {
	if v == 0 {
		return "0" + units[len(units)-1].suffix
	}
	for _, u := range units {
		if v >= u.scale {
			return strconv.FormatFloat(v/u.scale, 'g', -1, 64) + u.suffix
		}
	}
	last := units[len(units)-1]
	return strconv.FormatFloat(v/last.scale, 'g', -1, 64) + last.suffix
}
