package specio

import (
	"bytes"
	"strings"
	"testing"

	"momosyn/internal/bench"
)

func TestWriteDOTStructure(t *testing.T) {
	sys, err := bench.SmartPhone()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, sys); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a digraph document")
	}
	// One doublecircle per mode.
	if got := strings.Count(out, "doublecircle"); got != len(sys.App.Modes) {
		t.Errorf("mode nodes = %d, want %d", got, len(sys.App.Modes))
	}
	// One box per task across all modes.
	if got := strings.Count(out, "shape=box"); got != sys.App.TotalTasks() {
		t.Errorf("task nodes = %d, want %d", got, sys.App.TotalTasks())
	}
	// One cluster per mode plus the FSM cluster.
	if got := strings.Count(out, "subgraph cluster"); got != len(sys.App.Modes)+1 {
		t.Errorf("clusters = %d, want %d", got, len(sys.App.Modes)+1)
	}
	// Transition limits are annotated.
	if !strings.Contains(out, "≤") {
		t.Error("transition time limits missing")
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
}

func TestDotIDSanitises(t *testing.T) {
	if got := dotID("m0", "t-1.a"); got != "m0_t_1_a" {
		t.Errorf("dotID = %q", got)
	}
}

func TestDotEscape(t *testing.T) {
	if got := dotEscape(`a"b`); got != `a\"b` {
		t.Errorf("dotEscape = %q", got)
	}
}
