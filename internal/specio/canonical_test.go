package specio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mutateSpec derives semantically identical textual variants of a spec:
// comment and whitespace noise, attribute-order permutations within lines,
// reordered transition declarations, and the communication-link section
// moved after the task library. All of them parse to the same model, so
// Canonical must render them byte-identically.
func mutateSpec(text string) map[string]string {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")

	commented := make([]string, 0, 2*len(lines))
	for i, l := range lines {
		if i%2 == 0 {
			commented = append(commented, fmt.Sprintf("# noise %d", i))
		}
		commented = append(commented, "  "+l+"   # trailing note")
		if i%3 == 0 {
			commented = append(commented, "\t")
		}
	}

	// Reverse the key=value attribute tail of every directive line; the
	// leading positional tokens stay in place.
	attrSwapped := make([]string, len(lines))
	for i, l := range lines {
		fields := strings.Fields(l)
		head := 0
		for head < len(fields) && !strings.Contains(fields[head], "=") {
			head++
		}
		for a, b := head, len(fields)-1; a < b; a, b = a+1, b-1 {
			fields[a], fields[b] = fields[b], fields[a]
		}
		attrSwapped[i] = strings.Join(fields, " ")
	}

	// Transition declarations are an unordered constraint set: reverse them.
	var trans, rest []string
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "transition ") {
			trans = append(trans, l)
		} else {
			rest = append(rest, l)
		}
	}
	for a, b := 0, len(trans)-1; a < b; a, b = a+1, b-1 {
		trans[a], trans[b] = trans[b], trans[a]
	}
	transReversed := append(append([]string{}, rest...), trans...)

	// Move the cl declarations after the type/impl section (they reference
	// only PEs, so any position after the pe lines parses identically).
	var cls, others []string
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "cl ") {
			cls = append(cls, l)
		} else {
			others = append(others, l)
		}
	}
	clsMoved := make([]string, 0, len(lines))
	inserted := false
	for _, l := range others {
		if !inserted && strings.HasPrefix(strings.TrimSpace(l), "mode ") {
			clsMoved = append(clsMoved, cls...)
			inserted = true
		}
		clsMoved = append(clsMoved, l)
	}
	if !inserted {
		clsMoved = append(clsMoved, cls...)
	}

	return map[string]string{
		"comments-and-whitespace": strings.Join(commented, "\n") + "\n",
		"attribute-order":         strings.Join(attrSwapped, "\n") + "\n",
		"transition-order":        strings.Join(transReversed, "\n") + "\n",
		"cl-section-moved":        strings.Join(clsMoved, "\n") + "\n",
	}
}

// TestCanonicalGolden pins the keying contract on the shipped benchmark
// specs: every semantically identical mutation of mul1–mul3 canonicalises
// to exactly the bytes of the pristine spec, and canonicalisation is
// idempotent (parse→canonical→parse→canonical is a fixed point).
func TestCanonicalGolden(t *testing.T) {
	for _, name := range []string{"mul1", "mul2", "mul3"} {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("..", "..", "specs", name+".spec"))
			if err != nil {
				t.Fatal(err)
			}
			want, err := CanonicalBytes(raw)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("canonical form is empty")
			}
			again, err := CanonicalBytes(want)
			if err != nil {
				t.Fatalf("canonical form does not reparse: %v", err)
			}
			if string(again) != string(want) {
				t.Fatalf("canonicalisation is not idempotent:\n--- first\n%s\n--- second\n%s", want, again)
			}
			for mname, mutated := range mutateSpec(string(raw)) {
				got, err := CanonicalBytes([]byte(mutated))
				if err != nil {
					t.Fatalf("%s mutation does not parse: %v\n%s", mname, err, mutated)
				}
				if string(got) != string(want) {
					t.Fatalf("%s mutation canonicalises differently:\n--- want\n%s\n--- got\n%s", mname, want, got)
				}
			}
		})
	}
}

// TestCanonicalNormalisesProbabilities checks the distribution
// normalisation leg of the contract with float-exact values: probabilities
// scaled by any factor canonicalise to the normalised distribution.
func TestCanonicalNormalisesProbabilities(t *testing.T) {
	const tmpl = `system norm
pe P class=gpp vmax=3.3 vt=0.8
type t
impl t P time=1ms power=1mW
mode a prob=%s period=1s
task a x type=t
mode b prob=%s period=1s
task b x type=t
transition a b
transition b a
`
	want, err := CanonicalBytes([]byte(fmt.Sprintf(tmpl, "0.5", "0.5")))
	if err != nil {
		t.Fatal(err)
	}
	// 0.25/0.25 sums to 0.5: normalising divides by a power of two, which
	// is exact in binary floating point, so the bytes must match 0.5/0.5.
	got, err := CanonicalBytes([]byte(fmt.Sprintf(tmpl, "0.25", "0.25")))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("scaled probabilities canonicalise differently:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if !strings.Contains(string(want), "prob=0.5") {
		t.Fatalf("canonical form lost the normalised probability:\n%s", want)
	}
}

// TestCanonicalDistinguishesModels checks the negative direction: textual
// differences that change the model (PE order shapes the genome encoding)
// must change the canonical bytes.
func TestCanonicalDistinguishesModels(t *testing.T) {
	a := `system d
pe P class=gpp vmax=3.3 vt=0.8
pe Q class=gpp vmax=3.3 vt=0.8
type t
impl t P time=1ms power=1mW
impl t Q time=2ms power=2mW
mode m prob=1 period=1s
task m x type=t
`
	b := strings.Replace(a, "pe P class=gpp vmax=3.3 vt=0.8\npe Q class=gpp vmax=3.3 vt=0.8",
		"pe Q class=gpp vmax=3.3 vt=0.8\npe P class=gpp vmax=3.3 vt=0.8", 1)
	ca, err := CanonicalBytes([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalBytes([]byte(b))
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) == string(cb) {
		t.Fatal("reordered PE declarations (a different genome encoding) canonicalised identically")
	}
}
