package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentUpdates hammers one registry from many goroutines
// (run under -race in CI) and then checks the exact totals: atomic
// counters and histogram buckets must lose no update.
func TestRegistryConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mixed get-or-create and cached-handle use.
			c := reg.Counter("evals")
			h := reg.Histogram("phase", []float64{0.25, 0.5, 0.75})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				reg.Counter("evals2").Add(2)
				reg.Gauge("gen").Set(float64(i))
				h.Observe(float64(i%4) * 0.25)
				if i%1000 == 0 {
					_ = reg.Export() // snapshots race against writers
				}
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("evals").Value(); got != workers*perWorker {
		t.Errorf("counter evals = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Counter("evals2").Value(); got != 2*workers*perWorker {
		t.Errorf("counter evals2 = %d, want %d", got, 2*workers*perWorker)
	}
	h := reg.Histogram("phase", nil)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Observations cycle 0, 0.25, 0.5, 0.75 → exactly a quarter per bucket,
	// none in overflow.
	for _, st := range reg.Export() {
		if st.Name != "phase" {
			continue
		}
		// Bucket 0 holds both 0 and 0.25 (v <= bound semantics).
		want := uint64(workers * perWorker / 4)
		if st.Counts[0] != 2*want || st.Counts[1] != want || st.Counts[2] != want || st.Counts[3] != 0 {
			t.Errorf("bucket counts = %v, want [%d %d %d 0]", st.Counts, 2*want, want, want)
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 500} {
		h.Observe(v)
	}
	got := make([]uint64, len(h.counts))
	for i := range h.counts {
		got[i] = h.counts[i].Load()
	}
	want := []uint64{2, 2, 2, 1} // (≤1)=0.5,1  (≤10)=5,10  (≤100)=50,100  over=500
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if math.Abs(h.Sum()-666.5) > 1e-9 {
		t.Errorf("sum = %g, want 666.5", h.Sum())
	}
}

// TestExportRestore proves the checkpoint path: exported state restored
// into a fresh registry continues the cumulative totals.
func TestExportRestore(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(41)
	reg.Gauge("g").Set(3.5)
	h := reg.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	fresh := NewRegistry()
	fresh.Restore(reg.Export())
	fresh.Counter("c").Inc()
	fresh.Histogram("h", []float64{1, 2}).Observe(0.5)

	if got := fresh.Counter("c").Value(); got != 42 {
		t.Errorf("restored counter = %d, want 42", got)
	}
	if got := fresh.Gauge("g").Value(); got != 3.5 {
		t.Errorf("restored gauge = %g, want 3.5", got)
	}
	h2 := fresh.Histogram("h", nil)
	if h2.Count() != 4 {
		t.Errorf("restored histogram count = %d, want 4", h2.Count())
	}
	if math.Abs(h2.Sum()-11.5) > 1e-9 {
		t.Errorf("restored histogram sum = %g, want 11.5", h2.Sum())
	}

	// Mismatched bounds must be skipped, not merged into wrong buckets.
	clash := NewRegistry()
	clash.Histogram("h", []float64{5, 50}).Observe(3)
	clash.Restore(reg.Export())
	if got := clash.Histogram("h", nil).Count(); got != 1 {
		t.Errorf("bounds-mismatched restore merged anyway: count = %d, want 1", got)
	}
}

func TestWriteJSONValidates(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("synth.evaluations").Add(7)
	reg.Gauge("ga.best_fitness").Set(math.Inf(1)) // must survive JSON
	reg.Histogram("synth.phase_seconds.dvs", DefTimeBuckets).ObserveDuration(3 * time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetricsJSON(buf.Bytes()); err != nil {
		t.Fatalf("snapshot does not validate: %v\n%s", err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"+Inf"`)) {
		t.Errorf("infinite gauge not encoded as string:\n%s", buf.String())
	}

	if err := ValidateMetricsJSON([]byte(`{"histograms":{"x":{"count":3,"sum":1,"bounds":[1],"counts":[1,1]}}}`)); err == nil {
		t.Error("inconsistent histogram total passed validation")
	}
	if err := ValidateMetricsJSON([]byte(`{"histograms":{"x":{"count":1,"sum":1,"bounds":[1,2],"counts":[1]}}}`)); err == nil {
		t.Error("histogram with too few buckets passed validation")
	}
}

// TestNilSafety: every metric operation on nil receivers is a no-op, the
// contract that makes disabled instrumentation free.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("x").Set(1)
	reg.Histogram("x", nil).Observe(1)
	reg.Restore([]MetricState{{Name: "x", Kind: "counter", Value: 1}})
	if reg.Export() != nil {
		t.Error("nil registry exported state")
	}
	var c *Counter
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram has observations")
	}
}
