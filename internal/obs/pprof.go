package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
	"time"
)

// ServePprof serves the net/http/pprof endpoints on addr (e.g. ":6060")
// for the process lifetime of the returned stop function. The handlers are
// mounted on a private mux, so importing this package does not touch
// http.DefaultServeMux.
func ServePprof(addr string) (stop func(), err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Recover barrier: a panicking debug handler must never take down
		// the synthesis run it is observing.
		defer func() { _ = recover() }()
		_ = srv.Serve(ln) // returns http.ErrServerClosed on stop
	}()
	return func() { _ = srv.Close() }, nil
}

// StartCPUProfile starts a CPU profile into path and returns the function
// that stops it and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		rpprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC, so the
// profile reflects live objects.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := rpprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// memStatsGauges samples runtime.MemStats and the goroutine count into
// the registry.
func memStatsGauges(reg *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	reg.Gauge("runtime.heap_sys_bytes").Set(float64(ms.HeapSys))
	reg.Gauge("runtime.total_alloc_bytes").Set(float64(ms.TotalAlloc))
	reg.Gauge("runtime.num_gc").Set(float64(ms.NumGC))
	reg.Gauge("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
}

// StartMemStats samples memstats gauges into reg every interval until the
// returned stop function is called; stop takes one final sample so short
// runs still report values.
func StartMemStats(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	memStatsGauges(reg)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		// Recover barrier: metric sampling must never kill the run.
		defer func() { _ = recover() }()
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				memStatsGauges(reg)
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		memStatsGauges(reg)
	}
}
