package obs

import (
	"sync/atomic"
	"time"
)

// Phase identifies one instrumented phase of the inner synthesis loop.
type Phase int

// The instrumented phases. PhaseCommMap is nested inside PhaseListSched
// (communication mapping happens during list scheduling); every other
// phase is disjoint wall-clock time.
const (
	PhaseMobility Phase = iota
	PhaseCoreAlloc
	PhaseListSched
	PhaseCommMap
	PhaseDVS
	PhaseRefine
	PhaseCertify
	numPhases
)

// String returns the phase's metric-name segment.
func (p Phase) String() string {
	switch p {
	case PhaseMobility:
		return "mobility"
	case PhaseCoreAlloc:
		return "core_alloc"
	case PhaseListSched:
		return "list_sched"
	case PhaseCommMap:
		return "comm_map"
	case PhaseDVS:
		return "dvs"
	case PhaseRefine:
		return "refine"
	case PhaseCertify:
		return "certify"
	default:
		return "unknown"
	}
}

// Timings is the cumulative wall-clock phase breakdown of one synthesis
// run; populated only while instrumentation is active. CommMap is included
// in ListSched (it is the nested communication-mapping portion).
type Timings struct {
	Mobility  time.Duration
	CoreAlloc time.Duration
	ListSched time.Duration
	CommMap   time.Duration
	DVS       time.Duration
	Refine    time.Duration
	Certify   time.Duration
	// Evaluations counts the instrumented inner-loop evaluations.
	Evaluations int
}

// Add accumulates u into t.
func (t *Timings) Add(u Timings) {
	t.Mobility += u.Mobility
	t.CoreAlloc += u.CoreAlloc
	t.ListSched += u.ListSched
	t.CommMap += u.CommMap
	t.DVS += u.DVS
	t.Refine += u.Refine
	t.Certify += u.Certify
	t.Evaluations += u.Evaluations
}

// Total returns the summed disjoint phase time (CommMap excluded: it is
// already inside ListSched).
func (t Timings) Total() time.Duration {
	return t.Mobility + t.CoreAlloc + t.ListSched + t.DVS + t.Refine + t.Certify
}

// Run ties a metrics registry and a trace sink together for one
// instrumented process. The zero state of the surrounding code is a nil
// *Run: every method is nil-safe and returns immediately, so disabled
// instrumentation costs neither allocations nor synchronisation.
type Run struct {
	reg   *Registry
	sink  Sink
	seq   atomic.Uint64
	phase [numPhases]*Histogram
	// now is the clock; replaceable in tests.
	now func() time.Time
}

// NewRun returns a Run recording metrics into reg (created when nil) and
// trace events into sink (nil disables tracing but keeps metrics).
func NewRun(reg *Registry, sink Sink) *Run {
	if reg == nil {
		reg = NewRegistry()
	}
	r := &Run{reg: reg, sink: sink, now: time.Now}
	for p := Phase(0); p < numPhases; p++ {
		r.phase[p] = reg.Histogram("synth.phase_seconds."+p.String(), DefTimeBuckets)
	}
	return r
}

// Active reports whether any instrumentation (metrics or tracing) is on.
func (r *Run) Active() bool { return r != nil }

// Tracing reports whether trace events are being recorded. Call sites
// guard event construction with this so the disabled path allocates
// nothing.
func (r *Run) Tracing() bool { return r != nil && r.sink != nil }

// Registry returns the metrics registry; nil for a nil Run.
func (r *Run) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// ObservePhase records one phase duration into its histogram.
func (r *Run) ObservePhase(p Phase, d time.Duration) {
	if r == nil || p < 0 || p >= numPhases {
		return
	}
	r.phase[p].ObserveDuration(d)
}

// NextSeq returns the next evaluation sequence number.
func (r *Run) NextSeq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Add(1)
}

// Emit stamps and writes one trace event. A sink error is remembered by
// the sink itself; emission never fails the run.
func (r *Run) Emit(ev *Event) {
	if !r.Tracing() {
		return
	}
	if ev.T == 0 {
		ev.T = r.now().UnixNano()
	}
	_ = r.sink.Emit(ev)
}

// EmitRunStart emits a run_start event.
func (r *Run) EmitRunStart(e RunStartEvent) {
	if !r.Tracing() {
		return
	}
	r.emitRunStart(e)
}

// emitRunStart is the slow path; the split keeps e from escaping (and
// thus heap-allocating) in the disabled caller.
func (r *Run) emitRunStart(e RunStartEvent) {
	r.Emit(&Event{Ev: EvRunStart, Run: &e})
}

// EmitGeneration emits a generation event.
func (r *Run) EmitGeneration(e GenerationEvent) {
	if !r.Tracing() {
		return
	}
	r.emitGeneration(e)
}

func (r *Run) emitGeneration(e GenerationEvent) {
	r.Emit(&Event{Ev: EvGeneration, Gen: &e})
}

// EmitEval emits an eval phase-span event.
func (r *Run) EmitEval(e EvalEvent) {
	if !r.Tracing() {
		return
	}
	r.emitEval(e)
}

func (r *Run) emitEval(e EvalEvent) {
	r.Emit(&Event{Ev: EvEval, Eval: &e})
}

// EmitSpan emits a one-off named span.
func (r *Run) EmitSpan(name string, d time.Duration) {
	if !r.Tracing() {
		return
	}
	r.Emit(&Event{Ev: EvSpan, Span: &SpanEvent{Name: name, Ns: d.Nanoseconds()}})
}

// EmitBenchRow emits a bench_row event.
func (r *Run) EmitBenchRow(e BenchRowEvent) {
	if !r.Tracing() {
		return
	}
	r.emitBenchRow(e)
}

func (r *Run) emitBenchRow(e BenchRowEvent) {
	r.Emit(&Event{Ev: EvBenchRow, Row: &e})
}

// EmitJob emits a job-lifecycle span event.
func (r *Run) EmitJob(e JobEvent) {
	if !r.Tracing() {
		return
	}
	r.emitJob(e)
}

func (r *Run) emitJob(e JobEvent) {
	r.Emit(&Event{Ev: EvJob, Job: &e})
}

// EmitRunEnd emits a run_end event.
func (r *Run) EmitRunEnd(e RunEndEvent) {
	if !r.Tracing() {
		return
	}
	r.emitRunEnd(e)
}

func (r *Run) emitRunEnd(e RunEndEvent) {
	r.Emit(&Event{Ev: EvRunEnd, End: &e})
}

// Close closes the trace sink (flushing buffered events).
func (r *Run) Close() error {
	if r == nil || r.sink == nil {
		return nil
	}
	return r.sink.Close()
}

// Export returns the registry's metric state; nil-safe (for checkpoints).
func (r *Run) Export() []MetricState {
	if r == nil {
		return nil
	}
	return r.reg.Export()
}

// RestoreMetrics merges checkpointed metric state back into the registry;
// nil-safe.
func (r *Run) RestoreMetrics(states []MetricState) {
	if r == nil {
		return
	}
	r.reg.Restore(states)
}
