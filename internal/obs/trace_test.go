package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sampleEvents covers every event kind with representative payloads,
// including a non-finite fitness.
func sampleEvents() []*Event {
	return []*Event{
		{Ev: EvRunStart, T: 100, Run: &RunStartEvent{System: "phone", Seed: 42, DVS: true}},
		{Ev: EvGeneration, T: 200, Gen: &GenerationEvent{
			Gen: 1, BestFitness: 0.125, MeanFitness: Float(math.Inf(1)), Infeasible: 16,
			AvgPower: 0.1, TimingPenalty: 1, AreaPenalty: 1.5, TransPenalty: 1,
			Feasible: false, Evaluations: 64, Stagnant: 0, Diversity: 0.97,
			CacheHits: 3, CacheMisses: 61, CacheHitRate: 3.0 / 64,
			Mutations: []MutationStats{
				{Name: "shutdown", Attempts: 4, Accepted: 2, Improved: 1},
				{Name: "area", Attempts: 3},
			},
		}},
		{Ev: EvEval, T: 300, Eval: &EvalEvent{
			Seq: 7, MobilityNs: 1200, CoreAllocNs: 900, ListSchedNs: 5000,
			CommMapNs: 1100, DVSNs: 2500, TotalNs: 9600,
		}},
		{Ev: EvSpan, T: 400, Span: &SpanEvent{Name: "certify", Ns: 55_000}},
		{Ev: EvBenchRow, T: 500, Row: &BenchRowEvent{
			Table: "1", Name: "mul3", Modes: 3,
			PowerWithout: 0.02, PowerWith: 0.015, ReductionPct: 25,
			CPUWithoutNs: 1e9, CPUWithNs: 2e9,
			MobilityNs: 5e6, CoreAllocNs: 1e6, ListSchedNs: 2e7, CommMapNs: 4e6, DVSNs: 8e6,
		}},
		{Ev: EvRunEnd, T: 600, End: &RunEndEvent{
			Generations: 120, Evaluations: 4096, BestFitness: 0.125, AvgPower: 0.1,
			Feasible: true, ElapsedNs: 3e9,
		}},
	}
}

// TestJSONLRoundTrip: events written through the JSONL sink decode back
// byte-for-structure identical and every line passes schema validation.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	in := sampleEvents()
	for _, ev := range in {
		if err := sink.Emit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	out, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(in[i], out[i]) {
			a, _ := json.Marshal(in[i])
			b, _ := json.Marshal(out[i])
			t.Errorf("event %d changed in round trip:\n in: %s\nout: %s", i, a, b)
		}
	}
}

func TestFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, math.Inf(1), math.Inf(-1), math.NaN(), 1e-300} {
		data, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("marshal %g: %v", v, err)
		}
		var got Float
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if math.IsNaN(v) {
			if !math.IsNaN(float64(got)) {
				t.Errorf("NaN round-tripped to %g", float64(got))
			}
		} else if float64(got) != v {
			t.Errorf("%g round-tripped to %g via %s", v, float64(got), data)
		}
	}
}

func TestValidateEventRejects(t *testing.T) {
	cases := []struct {
		name string
		ev   *Event
		want string
	}{
		{"unknown kind", &Event{Ev: "bogus"}, "unknown event kind"},
		{"missing payload", &Event{Ev: EvGeneration}, "missing its payload"},
		{"stray payload", &Event{Ev: EvSpan, Span: &SpanEvent{Name: "x"}, Eval: &EvalEvent{}}, "stray"},
		{"zero generation", &Event{Ev: EvGeneration, Gen: &GenerationEvent{Gen: 0}}, "1-based"},
		{"bad hit rate", &Event{Ev: EvGeneration, Gen: &GenerationEvent{Gen: 1, CacheHitRate: 1.5}}, "hit rate"},
		{"bad mutation counts", &Event{Ev: EvGeneration, Gen: &GenerationEvent{
			Gen: 1, Mutations: []MutationStats{{Name: "x", Attempts: 1, Accepted: 2}},
		}}, "inconsistent"},
		{"negative span", &Event{Ev: EvSpan, Span: &SpanEvent{Name: "x", Ns: -1}}, "negative"},
		{"comm exceeds sched", &Event{Ev: EvEval, Eval: &EvalEvent{CommMapNs: 10, ListSchedNs: 5}}, "exceeds"},
		{"nameless span", &Event{Ev: EvSpan, Span: &SpanEvent{}}, "without a name"},
	}
	for _, c := range cases {
		err := ValidateEvent(c.ev)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: ValidateEvent = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestDecodeEventStrict(t *testing.T) {
	if _, err := DecodeEvent([]byte(`{"ev":"span","t":1,"span":{"name":"x","ns":1},"extra":true}`)); err == nil {
		t.Error("unknown top-level field passed strict decoding")
	}
	if _, err := DecodeEvent([]byte(`{"ev":"span","t":1,"span":{"name":"x","ns":1,"nope":2}}`)); err == nil {
		t.Error("unknown nested field passed strict decoding")
	}
	if _, err := DecodeEvent([]byte(`not json`)); err == nil {
		t.Error("garbage line decoded")
	}
}

func TestReadEventsReportsLine(t *testing.T) {
	trace := `{"ev":"span","t":1,"span":{"name":"a","ns":1}}
{"ev":"span","t":1,"span":{"name":"b","ns":-5}}
`
	events, err := ReadEvents(strings.NewReader(trace))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("ReadEvents = %v, want line-2 error", err)
	}
	if len(events) != 1 {
		t.Errorf("got %d events before the bad line, want 1", len(events))
	}
}

// TestDisabledRunAllocatesNothing is the zero-allocation regression for
// the default no-op path: a nil *Run must cost no allocations on any hot
// instrumentation call.
func TestDisabledRunAllocatesNothing(t *testing.T) {
	var r *Run
	allocs := testing.AllocsPerRun(1000, func() {
		if r.Tracing() {
			t.Fatal("nil run claims to trace")
		}
		r.ObservePhase(PhaseListSched, time.Millisecond)
		r.EmitSpan("certify", time.Millisecond)
		r.EmitGeneration(GenerationEvent{Gen: 1})
		r.EmitEval(EvalEvent{Seq: 1})
		_ = r.NextSeq()
		r.Registry().Counter("x").Inc()
	})
	if allocs != 0 {
		t.Errorf("disabled instrumentation path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRunEmitStamps: events emitted without a timestamp get one; sequence
// numbers are strictly increasing.
func TestRunEmit(t *testing.T) {
	sink := &CollectSink{}
	r := NewRun(nil, sink)
	r.now = func() time.Time { return time.Unix(0, 12345) }
	r.EmitSpan("x", time.Microsecond)
	r.EmitRunStart(RunStartEvent{System: "s", Seed: 1})
	if r.NextSeq() != 1 || r.NextSeq() != 2 {
		t.Error("sequence numbers not increasing")
	}
	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].T != 12345 {
		t.Errorf("event not stamped: T=%d", evs[0].T)
	}
	for _, ev := range evs {
		if err := ValidateEvent(ev); err != nil {
			t.Errorf("emitted event invalid: %v", err)
		}
	}
	if !r.Active() || !r.Tracing() {
		t.Error("run with sink should be active and tracing")
	}
	if NewRun(nil, nil).Tracing() {
		t.Error("run without sink claims to trace")
	}
}
