package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSetupDisabled(t *testing.T) {
	run, closeAll, err := Setup(SetupConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		t.Error("empty config produced an active run")
	}
	if err := closeAll(); err != nil {
		t.Errorf("no-op closer errored: %v", err)
	}
}

func TestSetupTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	metrics := filepath.Join(dir, "metrics.json")
	run, closeAll, err := Setup(SetupConfig{TracePath: trace, MetricsPath: metrics})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Tracing() {
		t.Fatal("trace-configured run is not tracing")
	}
	run.EmitRunStart(RunStartEvent{System: "s", Seed: 1})
	run.ObservePhase(PhaseDVS, 2*time.Millisecond)
	run.Registry().Counter("synth.evaluations").Inc()
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if err := closeAll(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if len(evs) != 1 || evs[0].Ev != EvRunStart {
		t.Errorf("trace events = %+v", evs)
	}

	mdata, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetricsJSON(mdata); err != nil {
		t.Fatalf("metrics snapshot invalid: %v\n%s", err, mdata)
	}
	// The memstats sampler must have left runtime gauges behind.
	found := false
	for _, st := range run.Export() {
		if st.Name == "runtime.heap_alloc_bytes" && st.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("memstats gauges missing from registry")
	}
}

func TestSetupHeapProfile(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "heap.pprof")
	_, closeAll, err := Setup(SetupConfig{MemProfilePath: prof})
	if err != nil {
		t.Fatal(err)
	}
	if err := closeAll(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(prof); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile not written: %v", err)
	}
}
