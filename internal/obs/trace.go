package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
)

// Float is a float64 whose JSON encoding round-trips non-finite values
// (fitness is legitimately +Inf for all-infeasible populations, which
// encoding/json refuses to marshal as a bare number): infinities and NaN
// are encoded as the strings "+Inf", "-Inf" and "NaN".
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = Float(math.Inf(1))
		case "-Inf":
			*f = Float(math.Inf(-1))
		case "NaN":
			*f = Float(math.NaN())
		default:
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("obs: invalid float %q", s)
			}
			*f = Float(v)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// Event kinds, the values of Event.Ev.
const (
	EvRunStart   = "run_start"
	EvGeneration = "generation"
	EvEval       = "eval"
	EvSpan       = "span"
	EvBenchRow   = "bench_row"
	EvRunEnd     = "run_end"
	EvJob        = "job"
)

// Event is one JSONL trace line. Exactly one payload section is non-nil,
// matching the Ev discriminator; ValidateEvent enforces this.
type Event struct {
	// Ev is the event kind, one of the Ev* constants.
	Ev string `json:"ev"`
	// T is the wall-clock emission time in Unix nanoseconds. Timestamps
	// never feed back into the search, so traces of a deterministic run
	// differ only here.
	T int64 `json:"t"`

	Run  *RunStartEvent   `json:"run,omitempty"`
	Gen  *GenerationEvent `json:"gen,omitempty"`
	Eval *EvalEvent       `json:"eval,omitempty"`
	Span *SpanEvent       `json:"span,omitempty"`
	Row  *BenchRowEvent   `json:"row,omitempty"`
	End  *RunEndEvent     `json:"end,omitempty"`
	Job  *JobEvent        `json:"job,omitempty"`
}

// RunStartEvent opens a synthesis run's trace.
type RunStartEvent struct {
	// System is the specification's system name.
	System string `json:"system"`
	// Seed is the run seed.
	Seed int64 `json:"seed"`
	// ResumedFrom is the completed-generation count of the checkpoint this
	// run resumed from; 0 for fresh runs. Generation events continue from
	// ResumedFrom+1.
	ResumedFrom int `json:"resumed_from,omitempty"`
	// DVS and Neglect mirror the synthesis options that shape the
	// objective.
	DVS     bool `json:"dvs,omitempty"`
	Neglect bool `json:"neglect_probabilities,omitempty"`
}

// MutationStats reports one improvement-mutation operator's cumulative
// effectiveness: Attempts is how often the engine invoked it, Accepted how
// often it changed the genome, Improved how often the change lowered the
// individual's fitness.
type MutationStats struct {
	Name     string `json:"name"`
	Attempts int    `json:"attempts"`
	Accepted int    `json:"accepted"`
	Improved int    `json:"improved"`
}

// GenerationEvent reports the engine state after one completed generation.
// Fitness is the minimised FM = p̄·tp·areaTerm·transTerm; the penalty
// fields are the constraint-violation terms of the generation's best
// individual (all 1 when it is feasible), and AvgPower is its
// probability-weighted power p̄ (Eq. 1) under the probabilities the
// optimiser uses.
type GenerationEvent struct {
	Gen         int   `json:"gen"`
	BestFitness Float `json:"best_fitness"`
	// MeanFitness averages the finite fitnesses of the population;
	// Infeasible counts the individuals excluded as non-finite.
	MeanFitness Float `json:"mean_fitness"`
	Infeasible  int   `json:"infeasible,omitempty"`

	AvgPower      Float `json:"avg_power"`
	TimingPenalty Float `json:"timing_penalty"`
	AreaPenalty   Float `json:"area_penalty"`
	TransPenalty  Float `json:"trans_penalty"`
	Unroutable    int   `json:"unroutable,omitempty"`
	Feasible      bool  `json:"feasible"`

	Evaluations int     `json:"evaluations"`
	Stagnant    int     `json:"stagnant"`
	Restarts    int     `json:"restarts,omitempty"`
	Diversity   float64 `json:"diversity"`

	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions,omitempty"`
	CacheHitRate   float64 `json:"cache_hit_rate"`

	Mutations []MutationStats `json:"mutations,omitempty"`
}

// EvalEvent is the phase-timing span of one inner-loop evaluation
// (mobility analysis, core allocation, list scheduling including the time
// inside communication mapping, DVS voltage selection), durations in
// nanoseconds summed over the candidate's modes.
type EvalEvent struct {
	// Seq numbers the instrumented evaluations of this process.
	Seq         uint64 `json:"seq"`
	MobilityNs  int64  `json:"mobility_ns"`
	CoreAllocNs int64  `json:"core_alloc_ns"`
	ListSchedNs int64  `json:"list_sched_ns"`
	// CommMapNs is the portion of ListSchedNs spent mapping and scheduling
	// inter-PE communications.
	CommMapNs int64 `json:"comm_map_ns"`
	DVSNs     int64 `json:"dvs_ns,omitempty"`
	RefineNs  int64 `json:"refine_ns,omitempty"`
	TotalNs   int64 `json:"total_ns"`
}

// SpanEvent is a one-off named phase timing (certification, final
// evaluation, ...).
type SpanEvent struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// BenchRowEvent records one completed benchmark table row with its
// phase-time breakdown.
type BenchRowEvent struct {
	Table string `json:"table,omitempty"`
	Name  string `json:"name"`
	Modes int    `json:"modes"`
	// Powers in watts; CPU times in nanoseconds (mean per repetition).
	PowerWithout Float `json:"power_without"`
	PowerWith    Float `json:"power_with"`
	ReductionPct Float `json:"reduction_pct"`
	CPUWithoutNs int64 `json:"cpu_without_ns"`
	CPUWithNs    int64 `json:"cpu_with_ns"`
	// Phase totals summed over both cells and all repetitions.
	MobilityNs  int64 `json:"mobility_ns"`
	CoreAllocNs int64 `json:"core_alloc_ns"`
	ListSchedNs int64 `json:"list_sched_ns"`
	CommMapNs   int64 `json:"comm_map_ns"`
	DVSNs       int64 `json:"dvs_ns,omitempty"`
	RefineNs    int64 `json:"refine_ns,omitempty"`
	CertifyNs   int64 `json:"certify_ns,omitempty"`
}

// Job lifecycle event names, the values of JobEvent.Event. The happy path
// of a job service reads submitted → attempt → terminal; claimed/stolen
// mark fleet lease acquisitions, queued a re-enqueue (drain recovery),
// retry a failed-but-budgeted attempt returning to the queue behind its
// backoff, checkpoint a persisted engine snapshot (an instantaneous marker
// whose DwellNs is the save duration, not a state dwell), fenced an
// execution abandoned because a higher lease epoch appeared, and cached a
// submission answered terminally from the content-addressed result cache
// (the job never queued and never ran).
const (
	JobSubmitted  = "submitted"
	JobQueued     = "queued"
	JobClaimed    = "claimed"
	JobStolen     = "stolen"
	JobAttempt    = "attempt"
	JobCheckpoint = "checkpoint"
	JobRetry      = "retry"
	JobFenced     = "fenced"
	JobCached     = "cached"
	JobTerminal   = "terminal"
)

// jobEventNames is the closed set ValidateEvent accepts.
var jobEventNames = map[string]bool{
	JobSubmitted: true, JobQueued: true, JobClaimed: true, JobStolen: true,
	JobAttempt: true, JobCheckpoint: true, JobRetry: true, JobFenced: true,
	JobCached: true, JobTerminal: true,
}

// JobEvent is one job-lifecycle span: a state transition (or checkpoint
// marker) of one job in a synthesis job service. From/State are the job
// states being left and entered (the service's own vocabulary — this
// package does not constrain them); DwellNs is the wall-clock time the job
// spent in From, so queue wait, execution and recovery time are all
// attributable per job. Checkpoint events instead carry the checkpoint
// save duration and leave the state clock untouched.
type JobEvent struct {
	// Job is the job identifier.
	Job string `json:"job"`
	// Event is one of the Job* constants.
	Event string `json:"event"`
	// From is the state the job leaves; empty for submitted (there is no
	// prior state) and for checkpoint markers.
	From string `json:"from,omitempty"`
	// State is the state the job enters; required for terminal events
	// (done/failed/cancelled/quarantined — the service's terminal states).
	State string `json:"state,omitempty"`
	// Attempt is the 1-based execution attempt this event belongs to; 0
	// when the job has not started executing.
	Attempt int `json:"attempt,omitempty"`
	// Node is the service node that observed the transition; empty in
	// single-node deployments.
	Node string `json:"node,omitempty"`
	// Epoch is the fleet lease epoch under which the node held the job; 0
	// outside fleet mode.
	Epoch int `json:"epoch,omitempty"`
	// DwellNs is the time spent in From (or, for checkpoint events, the
	// snapshot save duration) in nanoseconds.
	DwellNs int64 `json:"dwell_ns,omitempty"`
	// Detail carries the human-readable cause (error text, backoff, ...).
	Detail string `json:"detail,omitempty"`
}

// RunEndEvent closes a synthesis run's trace.
type RunEndEvent struct {
	Generations int    `json:"generations"`
	Evaluations int    `json:"evaluations"`
	BestFitness Float  `json:"best_fitness"`
	AvgPower    Float  `json:"avg_power"`
	Feasible    bool   `json:"feasible"`
	Partial     bool   `json:"partial,omitempty"`
	Reason      string `json:"reason,omitempty"`
	ElapsedNs   int64  `json:"elapsed_ns"`
}

// Sink consumes trace events. Implementations must be safe for concurrent
// Emit calls (the bench harness runs synthesis repetitions in parallel
// against one sink).
type Sink interface {
	Emit(*Event) error
	Close() error
}

// NopSink discards every event. It is the explicit form of the default
// disabled state (a nil *Run short-circuits before any event is built).
type NopSink struct{}

// Emit implements Sink.
func (NopSink) Emit(*Event) error { return nil }

// Close implements Sink.
func (NopSink) Close() error { return nil }

// JSONLSink writes one JSON document per event, newline-delimited, through
// a buffered writer. Emit is serialised by a mutex; the first write error
// is kept and returned by every later Emit and by Close.
type JSONLSink struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	c      io.Closer
	closed bool
	err    error
}

// NewJSONLSink returns a sink writing JSONL to w. When w is also an
// io.Closer, Close closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev *Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	data, err := json.Marshal(ev)
	if err == nil {
		_, err = s.bw.Write(data)
	}
	if err == nil {
		err = s.bw.WriteByte('\n')
	}
	if err != nil {
		s.err = fmt.Errorf("obs: trace write: %w", err)
	}
	return s.err
}

// Close flushes the buffer and closes the underlying writer when it is a
// Closer. Closing twice is safe (Run.Close and the Setup closer may both
// reach the same sink) and returns the sticky error.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	s.closed = true
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = fmt.Errorf("obs: trace flush: %w", err)
	}
	if s.c != nil {
		if err := s.c.Close(); err != nil && s.err == nil {
			s.err = fmt.Errorf("obs: trace close: %w", err)
		}
	}
	return s.err
}

// CollectSink retains every event in memory; for tests.
type CollectSink struct {
	mu     sync.Mutex
	events []*Event
}

// Emit implements Sink.
func (s *CollectSink) Emit(ev *Event) error {
	cp := *ev
	s.mu.Lock()
	s.events = append(s.events, &cp)
	s.mu.Unlock()
	return nil
}

// Close implements Sink.
func (s *CollectSink) Close() error { return nil }

// Events returns the collected events.
func (s *CollectSink) Events() []*Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Event(nil), s.events...)
}

// DecodeEvent parses one JSONL line strictly (unknown fields are schema
// violations) and validates it.
func DecodeEvent(line []byte) (*Event, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	ev := &Event{}
	if err := dec.Decode(ev); err != nil {
		return nil, fmt.Errorf("obs: trace line: %w", err)
	}
	if err := ValidateEvent(ev); err != nil {
		return nil, err
	}
	return ev, nil
}

// ValidateEvent checks the structural schema of one event: a known kind,
// exactly the matching payload section present, and per-kind field sanity.
func ValidateEvent(ev *Event) error {
	sections := []struct {
		name string
		set  bool
	}{
		{EvRunStart, ev.Run != nil},
		{EvGeneration, ev.Gen != nil},
		{EvEval, ev.Eval != nil},
		{EvSpan, ev.Span != nil},
		{EvBenchRow, ev.Row != nil},
		{EvRunEnd, ev.End != nil},
		{EvJob, ev.Job != nil},
	}
	known := false
	for _, s := range sections {
		if s.name == ev.Ev {
			known = true
			if !s.set {
				return fmt.Errorf("obs: %s event is missing its payload section", ev.Ev)
			}
		} else if s.set {
			return fmt.Errorf("obs: %s event carries a stray %s payload", ev.Ev, s.name)
		}
	}
	if !known {
		return fmt.Errorf("obs: unknown event kind %q", ev.Ev)
	}
	if ev.T < 0 {
		return fmt.Errorf("obs: %s event has negative timestamp %d", ev.Ev, ev.T)
	}
	switch ev.Ev {
	case EvGeneration:
		g := ev.Gen
		if g.Gen < 1 {
			return fmt.Errorf("obs: generation event numbered %d (generations are 1-based)", g.Gen)
		}
		if g.Evaluations < 0 || g.Stagnant < 0 || g.Restarts < 0 {
			return fmt.Errorf("obs: generation %d has negative progress counters", g.Gen)
		}
		if g.CacheHitRate < 0 || g.CacheHitRate > 1 {
			return fmt.Errorf("obs: generation %d cache hit rate %g outside [0,1]", g.Gen, g.CacheHitRate)
		}
		if g.Diversity < 0 || g.Diversity > 1 {
			return fmt.Errorf("obs: generation %d diversity %g outside [0,1]", g.Gen, g.Diversity)
		}
		for _, m := range g.Mutations {
			if m.Accepted > m.Attempts || m.Improved > m.Accepted {
				return fmt.Errorf("obs: generation %d mutation %q counts are inconsistent (%d/%d/%d)",
					g.Gen, m.Name, m.Improved, m.Accepted, m.Attempts)
			}
		}
	case EvEval:
		e := ev.Eval
		if e.MobilityNs < 0 || e.CoreAllocNs < 0 || e.ListSchedNs < 0 ||
			e.CommMapNs < 0 || e.DVSNs < 0 || e.RefineNs < 0 || e.TotalNs < 0 {
			return fmt.Errorf("obs: eval span %d has a negative duration", e.Seq)
		}
		if e.CommMapNs > e.ListSchedNs+e.RefineNs {
			return fmt.Errorf("obs: eval span %d comm-mapping time exceeds its enclosing scheduling time", e.Seq)
		}
	case EvSpan:
		if ev.Span.Name == "" {
			return fmt.Errorf("obs: span event without a name")
		}
		if ev.Span.Ns < 0 {
			return fmt.Errorf("obs: span %q has negative duration", ev.Span.Name)
		}
	case EvRunEnd:
		if ev.End.Generations < 0 || ev.End.Evaluations < 0 {
			return fmt.Errorf("obs: run_end has negative progress counters")
		}
	case EvJob:
		j := ev.Job
		if j.Job == "" {
			return fmt.Errorf("obs: job event without a job id")
		}
		if !jobEventNames[j.Event] {
			return fmt.Errorf("obs: job %s has unknown lifecycle event %q", j.Job, j.Event)
		}
		if j.DwellNs < 0 {
			return fmt.Errorf("obs: job %s %s event has negative dwell %d", j.Job, j.Event, j.DwellNs)
		}
		if j.Attempt < 0 || j.Epoch < 0 {
			return fmt.Errorf("obs: job %s %s event has negative attempt or epoch", j.Job, j.Event)
		}
		if j.Event == JobTerminal && j.State == "" {
			return fmt.Errorf("obs: job %s terminal event names no terminal state", j.Job)
		}
	}
	return nil
}

// ReadEvents decodes and validates a whole JSONL trace stream. It returns
// the events parsed up to the first invalid line, whose 1-based line
// number is included in the error.
func ReadEvents(r io.Reader) ([]*Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var events []*Event
	line := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		ev, err := DecodeEvent(sc.Bytes())
		if err != nil {
			return events, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("obs: trace read: %w", err)
	}
	return events, nil
}
