package obs

import (
	"bytes"
	"math"
	"testing"
)

// TestHistogramBoundaryAndNonFinite pins the bucket edge cases: a value
// equal to a bound lands in that bound's bucket (le semantics), values
// below the first bound (including -Inf and NaN, which compare false
// against every bound) land in the first bucket, +Inf overflows, and the
// resulting snapshot still passes structural validation with a non-finite
// sum.
func TestHistogramBoundaryAndNonFinite(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge", []float64{0, 1})
	for _, v := range []float64{-5, 0, 1, math.Inf(1), math.Inf(-1), math.NaN()} {
		h.Observe(v)
	}
	got := make([]uint64, len(h.counts))
	for i := range h.counts {
		got[i] = h.counts[i].Load()
	}
	want := []uint64{4, 1, 1} // (≤0)=-5,0,-Inf,NaN  (≤1)=1  over=+Inf
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if !math.IsNaN(h.Sum()) {
		t.Errorf("sum = %g, want NaN (+Inf + -Inf + NaN observed)", h.Sum())
	}

	// The snapshot (Float encodes the NaN sum as a string) round-trips
	// through the structural validator.
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	if err := ValidateMetricsJSON(buf.Bytes()); err != nil {
		t.Fatalf("snapshot with non-finite sum rejected: %v", err)
	}
}

// TestWritePrometheusExposition pins the text exposition byte-for-byte:
// kind-then-name order, sanitised names, cumulative buckets closed by
// +Inf, and non-finite sample values in Prometheus spelling.
func TestWritePrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.jobs_done").Add(3)
	reg.Gauge("ga.best_fitness").Set(math.Inf(1))
	h := reg.Histogram("synth.phase_seconds.dvs", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE serve_jobs_done counter
serve_jobs_done 3
# TYPE ga_best_fitness gauge
ga_best_fitness +Inf
# TYPE synth_phase_seconds_dvs histogram
synth_phase_seconds_dvs_bucket{le="1"} 1
synth_phase_seconds_dvs_bucket{le="10"} 2
synth_phase_seconds_dvs_bucket{le="+Inf"} 3
synth_phase_seconds_dvs_sum 55.5
synth_phase_seconds_dvs_count 3
`
	if buf.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestWritePrometheusCacheBatchExposition pins the cache and batch series
// byte-for-byte: eagerly registered zero-valued counters still expose, and
// the kind-then-name order keeps the batch counters ahead of the cache
// counters.
func TestWritePrometheusCacheBatchExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.cache_hits").Add(2)
	reg.Counter("serve.cache_misses").Add(1)
	reg.Counter("serve.cache_evictions")
	reg.Counter("serve.cache_corrupt")
	reg.Counter("serve.batches_submitted").Add(1)
	reg.Counter("serve.batch_cells").Add(6)
	reg.Counter("serve.batch_dedup").Add(2)
	reg.Counter("serve.batch_cache_hits")
	reg.Counter("serve.batch_rejected")
	reg.Gauge("serve.batches").Set(1)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE serve_batch_cache_hits counter
serve_batch_cache_hits 0
# TYPE serve_batch_cells counter
serve_batch_cells 6
# TYPE serve_batch_dedup counter
serve_batch_dedup 2
# TYPE serve_batch_rejected counter
serve_batch_rejected 0
# TYPE serve_batches_submitted counter
serve_batches_submitted 1
# TYPE serve_cache_corrupt counter
serve_cache_corrupt 0
# TYPE serve_cache_evictions counter
serve_cache_evictions 0
# TYPE serve_cache_hits counter
serve_cache_hits 2
# TYPE serve_cache_misses counter
serve_cache_misses 1
# TYPE serve_batches gauge
serve_batches 1
`
	if buf.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestAcceptsPrometheus(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"text/plain", true},
		{"text/plain; version=0.0.4", true},
		{"application/openmetrics-text;version=1.0.0,text/plain", true},
		{"application/json, text/plain;q=0.5", true},
		{"TEXT/PLAIN", true},
		{"", false},
		{"*/*", false},
		{"application/json", false},
		{"text/html", false},
	}
	for _, tc := range cases {
		if got := acceptsPrometheus(tc.accept); got != tc.want {
			t.Errorf("acceptsPrometheus(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

// TestEmitJobDisabledAllocatesNothing pins the zero-cost contract of the
// lifecycle span path for both disabled shapes: a nil run (instrumentation
// entirely off) and a metrics-only run (no trace sink, the shape every
// mmserved without -lifecycle-trace uses per request).
func TestEmitJobDisabledAllocatesNothing(t *testing.T) {
	var nilRun *Run
	metricsOnly := NewRun(nil, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		nilRun.EmitJob(JobEvent{Job: "j000001", Event: JobAttempt, From: "queued",
			State: "running", Attempt: 1, DwellNs: 123, Node: "n1", Epoch: 2})
		metricsOnly.EmitJob(JobEvent{Job: "j000001", Event: JobTerminal, From: "running",
			State: "done", Attempt: 1, DwellNs: 456})
	})
	if allocs != 0 {
		t.Errorf("disabled EmitJob allocates %.1f objects/op, want 0", allocs)
	}
}

// TestJobEventRoundTrip sends a fully-populated lifecycle span through the
// production JSONL sink and strict reader.
func TestJobEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRun(nil, NewJSONLSink(&buf))
	in := JobEvent{Job: "j000042", Event: JobStolen, From: "running", State: "queued",
		Attempt: 3, Node: "nodeB-77", Epoch: 5, DwellNs: 987654, Detail: "lease expired"}
	r.EmitJob(in)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Ev != EvJob {
		t.Fatalf("got %d events (%+v), want one job event", len(events), events)
	}
	if got := *events[0].Job; got != in {
		t.Fatalf("round trip changed the event:\n got %+v\nwant %+v", got, in)
	}
	if events[0].T == 0 {
		t.Error("emitted job event not timestamped")
	}
}
