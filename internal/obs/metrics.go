// Package obs is the observability substrate of the synthesis tool chain:
// a concurrency-safe metrics registry (atomic counters, gauges and
// fixed-bucket histograms with JSON snapshot export), a structured JSONL
// run-trace event stream (per-generation GA convergence events and
// per-evaluation phase-timing spans), and runtime profiling hooks
// (net/http/pprof, CPU/heap profiles, periodic memstats gauges).
//
// The package is standard-library-only and imports nothing from this
// module, so every layer — model, run control, algorithms, bench harness,
// CLIs — can depend on it. Instrumentation is opt-in and nil-safe: all
// methods of *Run, *Registry and the metric types accept a nil receiver
// and return immediately, so a disabled run pays no allocations and no
// synchronisation (see the zero-allocation regression test). See
// docs/OBSERVABILITY.md.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, want) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed, sorted bucket boundaries.
// An observation v lands in the first bucket with v <= bound; values
// beyond the last bound land in the implicit overflow bucket, so the
// exported counts slice is one longer than the bounds slice.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefTimeBuckets are the default bucket boundaries for wall-clock phase
// timings, in seconds: roughly logarithmic from 1µs to 10s.
var DefTimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, want) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// MetricState is the serialisable value of one metric, used both for the
// JSON snapshot export and for carrying cumulative metric state inside
// run-control checkpoints (it is gob-friendly: exported scalar fields and
// slices only).
type MetricState struct {
	Name string
	Kind string // "counter", "gauge" or "histogram"
	// Value is the counter count (as float) or the gauge value.
	Value float64
	// Histogram state: observation count, value sum, bucket boundaries and
	// per-bucket counts (len(Counts) == len(Bounds)+1, last is overflow).
	Count  uint64
	Sum    float64
	Bounds []float64
	Counts []uint64
}

// Registry is a concurrency-safe collection of named metrics. Metrics are
// created on first use and the same instance is returned for the same
// name, so hot paths can hold the handle and skip the map lookup.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// boundaries if needed. An existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Export captures the current value of every metric, sorted by kind then
// name, so exports are deterministic for a deterministic run.
func (r *Registry) Export() []MetricState {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricState, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, MetricState{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricState{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.histograms {
		st := MetricState{
			Name: name, Kind: "histogram",
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
		}
		for i := range h.counts {
			st.Counts[i] = h.counts[i].Load()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Restore merges previously exported state into the registry: counter
// counts and histogram buckets are added (so a resumed run continues the
// interrupted run's cumulative totals), gauges are set. Histogram states
// whose bounds disagree with an existing histogram are skipped rather
// than corrupting bucket semantics.
func (r *Registry) Restore(states []MetricState) {
	if r == nil {
		return
	}
	for _, st := range states {
		switch st.Kind {
		case "counter":
			if st.Value > 0 {
				r.Counter(st.Name).Add(uint64(st.Value))
			}
		case "gauge":
			r.Gauge(st.Name).Set(st.Value)
		case "histogram":
			if len(st.Counts) != len(st.Bounds)+1 {
				continue
			}
			h := r.Histogram(st.Name, st.Bounds)
			if len(h.bounds) != len(st.Bounds) {
				continue
			}
			same := true
			for i := range h.bounds {
				if math.Abs(h.bounds[i]-st.Bounds[i]) > 1e-12 {
					same = false
					break
				}
			}
			if !same {
				continue
			}
			for i, n := range st.Counts {
				h.counts[i].Add(n)
			}
			h.count.Add(st.Count)
			for {
				old := h.sum.Load()
				want := math.Float64bits(math.Float64frombits(old) + st.Sum)
				if h.sum.CompareAndSwap(old, want) {
					break
				}
			}
		}
	}
}

// histogramJSON is the JSON shape of one histogram in a snapshot.
type histogramJSON struct {
	Count uint64 `json:"count"`
	Sum   Float  `json:"sum"`
	// Bounds are the bucket boundaries; Counts has one extra trailing
	// element, the overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// snapshotJSON is the JSON document written by WriteJSON.
type snapshotJSON struct {
	Counters   map[string]uint64        `json:"counters"`
	Gauges     map[string]Float         `json:"gauges"`
	Histograms map[string]histogramJSON `json:"histograms"`
}

// WriteJSON writes the registry contents as a single JSON document with
// deterministic key order.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := snapshotJSON{
		Counters:   map[string]uint64{},
		Gauges:     map[string]Float{},
		Histograms: map[string]histogramJSON{},
	}
	for _, st := range r.Export() {
		switch st.Kind {
		case "counter":
			doc.Counters[st.Name] = uint64(st.Value)
		case "gauge":
			doc.Gauges[st.Name] = Float(st.Value)
		case "histogram":
			doc.Histograms[st.Name] = histogramJSON{
				Count: st.Count, Sum: Float(st.Sum),
				Bounds: st.Bounds, Counts: st.Counts,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// promNameSanitizer rewrites a registry metric name into the Prometheus
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*: dots (the registry's namespace
// separator) and every other illegal rune become underscores.
var promNameSanitizer = strings.NewReplacer(".", "_", "-", "_", " ", "_", "/", "_")

func promName(name string) string {
	name = promNameSanitizer.Replace(name)
	clean := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		clean = append(clean, c)
	}
	return string(clean)
}

// promFloat renders a sample value the way Prometheus text exposition
// expects (bare decimal; +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry contents in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` header per metric,
// counters and gauges as single samples, histograms as cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`. Metric names are
// sanitised into the Prometheus grammar (dots become underscores); output
// order matches Export, so exposition is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, st := range r.Export() {
		name := promName(st.Name)
		switch st.Kind {
		case "counter":
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %s\n", name, name, promFloat(st.Value))
		case "gauge":
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(st.Value))
		case "histogram":
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			var cum uint64
			for i, bound := range st.Bounds {
				cum += st.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, st.Count)
			fmt.Fprintf(bw, "%s_sum %s\n", name, promFloat(st.Sum))
			fmt.Fprintf(bw, "%s_count %d\n", name, st.Count)
		}
	}
	return bw.Flush()
}

// acceptsPrometheus decides the /metrics content negotiation: the
// Prometheus text format is served when the Accept header explicitly asks
// for a text/plain or OpenMetrics representation (what Prometheus scrapers
// send); every other request — no header, */*, application/json — keeps
// the JSON snapshot, so existing clients see no change.
func acceptsPrometheus(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		switch strings.ToLower(strings.TrimSpace(mediaType)) {
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// PromContentType is the Content-Type of the Prometheus text exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP exposes the registry as a metrics endpoint. The default
// representation is the JSON document WriteJSON produces; a request whose
// Accept header names text/plain (or OpenMetrics) — i.e. a Prometheus
// scraper — receives the text exposition format instead. A *Registry can
// therefore be mounted directly on a mux (the synthesis job server mounts
// its registry at GET /metrics). Snapshot assembly is atomic per metric
// and guarded by the registry lock, so scraping concurrently with updates
// is safe.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if acceptsPrometheus(req.Header.Get("Accept")) {
		w.Header().Set("Content-Type", PromContentType)
		if err := r.WritePrometheus(w); err != nil {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := r.WriteJSON(w); err != nil {
		// Headers are out by now; all we can do is drop the connection
		// mid-body so the scraper sees a truncated document, not a valid
		// partial one.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
	}
}

// ValidateMetricsJSON structurally checks a metrics snapshot document as
// written by WriteJSON: it must parse, and every histogram must carry one
// more bucket count than boundaries with a consistent total.
func ValidateMetricsJSON(data []byte) error {
	var doc snapshotJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: metrics snapshot: %w", err)
	}
	for name, h := range doc.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("obs: histogram %q has %d counts for %d bounds (want bounds+1)",
				name, len(h.Counts), len(h.Bounds))
		}
		var total uint64
		for _, n := range h.Counts {
			total += n
		}
		if total != h.Count {
			return fmt.Errorf("obs: histogram %q bucket counts sum to %d, count field says %d",
				name, total, h.Count)
		}
	}
	return nil
}
