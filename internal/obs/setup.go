package obs

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// SetupConfig selects the instrumentation a CLI run wants; zero-value
// fields are disabled. It maps one-to-one to the -trace/-metrics/-pprof/
// -cpuprofile/-memprofile flags of the command-line tools.
type SetupConfig struct {
	// TracePath receives the JSONL run-trace event stream.
	TracePath string
	// MetricsPath receives the final JSON metrics snapshot on Close.
	MetricsPath string
	// PprofAddr serves net/http/pprof for the run's duration (e.g. ":6060").
	PprofAddr string
	// CPUProfilePath records a CPU profile over the whole run.
	CPUProfilePath string
	// MemProfilePath receives a heap profile on Close.
	MemProfilePath string
	// MemStatsEvery is the memstats-gauge sampling interval (default 1s);
	// sampling runs whenever any instrumentation is enabled.
	MemStatsEvery time.Duration
}

func (c SetupConfig) enabled() bool {
	return c.TracePath != "" || c.MetricsPath != "" || c.PprofAddr != "" ||
		c.CPUProfilePath != "" || c.MemProfilePath != ""
}

// Setup builds the Run for a CLI invocation and returns it with a close
// function that flushes the trace, writes the metrics snapshot and heap
// profile, and stops the profile/pprof/memstats machinery. With an empty
// config it returns (nil, no-op, nil): the disabled instrumentation path.
//
// Close must run before os.Exit — the CLIs call it explicitly on every
// successful path rather than relying on defers.
func Setup(cfg SetupConfig) (*Run, func() error, error) {
	if !cfg.enabled() {
		return nil, func() error { return nil }, nil
	}
	reg := NewRegistry()
	var sink Sink
	var closers []func() error
	fail := func(err error) (*Run, func() error, error) {
		for i := len(closers) - 1; i >= 0; i-- {
			_ = closers[i]()
		}
		return nil, nil, err
	}

	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return fail(fmt.Errorf("obs: trace: %w", err))
		}
		js := NewJSONLSink(f)
		sink = js
		closers = append(closers, js.Close)
	}
	run := NewRun(reg, sink)

	if cfg.PprofAddr != "" {
		stop, err := ServePprof(cfg.PprofAddr)
		if err != nil {
			return fail(err)
		}
		closers = append(closers, func() error { stop(); return nil })
	}
	if cfg.CPUProfilePath != "" {
		stop, err := StartCPUProfile(cfg.CPUProfilePath)
		if err != nil {
			return fail(err)
		}
		closers = append(closers, stop)
	}
	stopMem := StartMemStats(reg, cfg.MemStatsEvery)

	closeAll := func() error {
		stopMem()
		var first error
		// Trace sink and profiles close in creation order; the metrics
		// snapshot is written last so it includes the final memstats.
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		if cfg.MemProfilePath != "" {
			if err := WriteHeapProfile(cfg.MemProfilePath); err != nil && first == nil {
				first = err
			}
		}
		if cfg.MetricsPath != "" {
			f, err := os.Create(cfg.MetricsPath)
			if err == nil {
				err = reg.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && first == nil {
				first = fmt.Errorf("obs: metrics: %w", err)
			}
		}
		return first
	}
	// The CLIs route both fatal-error and normal exits through the closer,
	// and a fatal during shutdown would hit it twice — make it idempotent.
	var once sync.Once
	var closeErr error
	return run, func() error {
		once.Do(func() { closeErr = closeAll() })
		return closeErr
	}, nil
}
