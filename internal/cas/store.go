package cas

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SchemaVersion is the on-disk entry schema. Entries written under a
// different schema are treated as corrupt on read — evicted and
// re-synthesized, never served.
const SchemaVersion = 1

const (
	entryExt = ".json"
	// atime sidecars carry LRU recency as their mtime: POSIX atime is
	// unreliable (relatime, noatime mounts), so Get touches an empty
	// sidecar file instead. Sidecars are advisory — losing one merely
	// ages its entry toward eviction.
	atimeExt = ".atime"
)

// Provenance records where a cached result came from, for auditability
// and invalidation: EngineVersion participates in the key, so a version
// bump orphans old entries (they age out via LRU) rather than serving
// results from a different engine.
type Provenance struct {
	EngineVersion string `json:"engine_version"`
	Commit        string `json:"commit,omitempty"`
	Certified     bool   `json:"certified"`
}

// Entry is one cached certified result.
type Entry struct {
	Schema     int             `json:"schema"`
	Key        string          `json:"key"`
	System     string          `json:"system"`
	Provenance Provenance      `json:"provenance"`
	Result     json.RawMessage `json:"result"`
}

// Counter is an incrementable metric hook; *obs.Counter satisfies it.
type Counter interface{ Inc() }

// Metrics are the store's observability hooks; nil fields are ignored.
type Metrics struct {
	Hits      Counter
	Misses    Counter
	Evictions Counter
	Corrupt   Counter
}

func inc(c Counter) {
	if c != nil {
		c.Inc()
	}
}

// Store is an on-disk content-addressed result store rooted at one
// directory. Multiple Stores (across processes and fleet nodes) may
// share the directory concurrently.
type Store struct {
	dir      string
	maxBytes int64
	metrics  Metrics

	// evictMu serialises in-process eviction scans; cross-process races
	// are benign (both nodes remove cold entries, removal of an
	// already-removed file is ignored).
	evictMu sync.Mutex
}

// Open creates or reopens a store rooted at dir. maxBytes caps the total
// size of entry files; 0 means unbounded.
func Open(dir string, maxBytes int64, metrics Metrics) (*Store, error) {
	if dir == "" {
		return nil, errors.New("cas: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	return &Store{dir: dir, maxBytes: maxBytes, metrics: metrics}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) entryPath(key string) string {
	return filepath.Join(s.dir, key[:2], key+entryExt)
}

// Get returns the entry under key, or (nil, false) on a miss. Entries
// that fail validation — wrong schema, key mismatch, undecodable result —
// are evicted on the spot and reported as corrupt, so a damaged cache
// degrades to re-synthesis, never to serving bad bytes.
func (s *Store) Get(key string) (*Entry, bool) {
	if !ValidKey(key) {
		inc(s.metrics.Misses)
		return nil, false
	}
	path := s.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		inc(s.metrics.Misses)
		return nil, false
	}
	e, err := decodeEntry(data, key)
	if err != nil {
		s.evictCorrupt(path)
		inc(s.metrics.Corrupt)
		inc(s.metrics.Misses)
		return nil, false
	}
	s.touch(key)
	inc(s.metrics.Hits)
	return e, true
}

// decodeEntry strictly decodes and validates one entry file against the
// key it was looked up under.
func decodeEntry(data []byte, key string) (*Entry, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var e Entry
	if err := dec.Decode(&e); err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, errors.New("trailing data after entry")
	}
	if e.Schema != SchemaVersion {
		return nil, fmt.Errorf("schema %d, want %d", e.Schema, SchemaVersion)
	}
	if e.Key != key {
		return nil, fmt.Errorf("entry key %q under file key %q", e.Key, key)
	}
	if e.Provenance.EngineVersion == "" {
		return nil, errors.New("missing engine version")
	}
	if len(e.Result) == 0 || !json.Valid(e.Result) {
		return nil, errors.New("invalid result document")
	}
	return &e, nil
}

// evictCorrupt removes a damaged entry and its sidecar. Best-effort: a
// concurrent fleet node may have removed them already.
func (s *Store) evictCorrupt(path string) {
	os.Remove(path)
	os.Remove(atimePath(path))
}

func atimePath(entryPath string) string {
	return entryPath[:len(entryPath)-len(entryExt)] + atimeExt
}

// touch refreshes the entry's LRU recency sidecar. Best-effort and
// unfsynced: recency is advisory, losing a touch only ages the entry.
func (s *Store) touch(key string) {
	side := atimePath(s.entryPath(key))
	now := time.Now()
	if err := os.Chtimes(side, now, now); err != nil {
		if f, err := os.OpenFile(side, os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			f.Close()
		}
	}
}

// Put publishes an entry. The write is crash-safe and race-free across
// fleet nodes: the bytes are written to a private temp file and fsynced,
// then linked to the final name (link never exposes partial content, and
// a concurrent publish of the same key simply loses the link race —
// content under a key is deterministic, so the loser's bytes are
// identical and discarded), and finally the bucket directory is fsynced.
// A successful Put then enforces the size cap.
func (s *Store) Put(e *Entry) error {
	if e.Schema == 0 {
		e.Schema = SchemaVersion
	}
	if !ValidKey(e.Key) {
		return fmt.Errorf("cas: invalid key %q", e.Key)
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	data = append(data, '\n')
	if _, err := decodeEntry(data, e.Key); err != nil {
		return fmt.Errorf("cas: refusing to publish invalid entry: %w", err)
	}
	path := s.entryPath(e.Key)
	bucket := filepath.Dir(path)
	if err := os.MkdirAll(bucket, 0o755); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	tmp, err := os.CreateTemp(bucket, e.Key+".tmp*")
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful publish+remove
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cas: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cas: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	if err := os.Link(tmp.Name(), path); err != nil && !errors.Is(err, os.ErrExist) {
		return fmt.Errorf("cas: %w", err)
	}
	os.Remove(tmp.Name())
	s.touch(e.Key)
	if err := syncDir(bucket); err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	s.evict()
	return nil
}

// syncDir fsyncs a directory, making entry publications within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

type entryInfo struct {
	path    string
	size    int64
	recency time.Time
}

// evict enforces the size cap: while the summed size of entry files
// exceeds maxBytes, the least-recently-used entry (by sidecar mtime,
// falling back to the entry's own mtime) is removed. Best-effort — an
// unreadable bucket or a concurrently removed file is skipped.
func (s *Store) evict() {
	if s.maxBytes <= 0 {
		return
	}
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	entries, total := s.scan()
	if total <= s.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].recency.Before(entries[j].recency)
	})
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if err := os.Remove(e.path); err == nil {
			inc(s.metrics.Evictions)
		}
		os.Remove(atimePath(e.path))
		total -= e.size
	}
}

// scan walks the store and returns every entry file with its size and
// LRU recency, plus the total entry size.
func (s *Store) scan() ([]entryInfo, int64) {
	var entries []entryInfo
	var total int64
	buckets, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0
	}
	for _, b := range buckets {
		if !b.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, b.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || filepath.Ext(f.Name()) != entryExt {
				continue
			}
			path := filepath.Join(s.dir, b.Name(), f.Name())
			info, err := f.Info()
			if err != nil {
				continue
			}
			recency := info.ModTime()
			if side, err := os.Stat(atimePath(path)); err == nil {
				recency = side.ModTime()
			}
			entries = append(entries, entryInfo{path: path, size: info.Size(), recency: recency})
			total += info.Size()
		}
	}
	return entries, total
}
