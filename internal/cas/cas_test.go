package cas

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKeyShape(t *testing.T) {
	k := Key([]byte("spec"), []byte("opts"))
	if !ValidKey(k) {
		t.Fatalf("Key produced an invalid key %q", k)
	}
	if k != Key([]byte("spec"), []byte("opts")) {
		t.Fatal("Key is not deterministic")
	}
	for _, bad := range []string{"", "zz", strings.Repeat("g", 64), strings.ToUpper(k), k + "00", k[:63]} {
		if ValidKey(bad) {
			t.Errorf("ValidKey accepted %q", bad)
		}
	}
}

// TestKeyLengthPrefixed pins the anti-collision property: moving a byte
// across the part boundary must change the key.
func TestKeyLengthPrefixed(t *testing.T) {
	if Key([]byte("ab"), []byte("c")) == Key([]byte("a"), []byte("bc")) {
		t.Fatal("part boundary does not participate in the key")
	}
	if Key([]byte("abc")) == Key([]byte("abc"), nil) {
		t.Fatal("empty trailing part does not participate in the key")
	}
}

type countingMetric struct {
	mu sync.Mutex
	n  int
}

func (c *countingMetric) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *countingMetric) value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

type testMetrics struct {
	hits, misses, evictions, corrupt countingMetric
}

func (m *testMetrics) metrics() Metrics {
	return Metrics{Hits: &m.hits, Misses: &m.misses, Evictions: &m.evictions, Corrupt: &m.corrupt}
}

func testEntry(key, payload string) *Entry {
	return &Entry{
		Schema:     SchemaVersion,
		Key:        key,
		System:     "sys",
		Provenance: Provenance{EngineVersion: "momosyn-synth/1", Certified: true},
		Result:     json.RawMessage(fmt.Sprintf(`{"payload":%q}`, payload)),
	}
}

func TestStoreRoundTrip(t *testing.T) {
	var m testMetrics
	s, err := Open(t.TempDir(), 0, m.metrics())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("round-trip"))
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	if m.misses.value() != 1 {
		t.Fatalf("misses = %d, want 1", m.misses.value())
	}
	if err := s.Put(testEntry(key, "hello")); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if e.System != "sys" || !e.Provenance.Certified {
		t.Fatalf("entry lost fields: %+v", e)
	}
	var payload struct{ Payload string }
	if err := json.Unmarshal(e.Result, &payload); err != nil || payload.Payload != "hello" {
		t.Fatalf("result payload = %q, %v", payload.Payload, err)
	}
	if m.hits.value() != 1 || m.corrupt.value() != 0 {
		t.Fatalf("hits = %d corrupt = %d, want 1, 0", m.hits.value(), m.corrupt.value())
	}
	// The entry lives at <dir>/<key[:2]>/<key>.json.
	if _, err := os.Stat(filepath.Join(s.Dir(), key[:2], key+".json")); err != nil {
		t.Fatalf("entry not at the documented path: %v", err)
	}
}

func TestStoreRejectsInvalidKeyAndEntry(t *testing.T) {
	s, err := Open(t.TempDir(), 0, Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("../../etc/passwd"); ok {
		t.Fatal("malformed key hit")
	}
	if err := s.Put(testEntry("short", "x")); err == nil {
		t.Fatal("Put accepted an invalid key")
	}
	bad := testEntry(Key([]byte("k")), "x")
	bad.Result = json.RawMessage("{truncated")
	if err := s.Put(bad); err == nil {
		t.Fatal("Put accepted an invalid result document")
	}
	bad = testEntry(Key([]byte("k")), "x")
	bad.Provenance.EngineVersion = ""
	if err := s.Put(bad); err == nil {
		t.Fatal("Put accepted an entry without engine version")
	}
}

// TestStoreCorruptionSweep flips every byte position (stride 7) and
// truncates the entry at every length (stride 11), proving each damaged
// variant is evicted and never served, and that the slot re-fills cleanly.
func TestStoreCorruptionSweep(t *testing.T) {
	var m testMetrics
	s, err := Open(t.TempDir(), 0, m.metrics())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("sweep"))
	if err := s.Put(testEntry(key, "sweep-payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), key[:2], key+".json")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var variants [][]byte
	for i := 0; i < len(pristine); i += 7 {
		v := append([]byte(nil), pristine...)
		v[i] ^= 0xff
		variants = append(variants, v)
	}
	for n := 0; n < len(pristine); n += 11 {
		variants = append(variants, append([]byte(nil), pristine[:n]...))
	}

	served := 0
	for i, v := range variants {
		if err := os.WriteFile(path, v, 0o644); err != nil {
			t.Fatal(err)
		}
		e, ok := s.Get(key)
		if ok {
			// A flip inside the free-form payload string can survive
			// validation — that is fine (content-addressing covers the
			// inputs, not the stored bytes) as long as the entry is
			// structurally valid and correctly keyed.
			if e.Key != key || e.Schema != SchemaVersion || !json.Valid(e.Result) {
				t.Fatalf("variant %d: served a structurally invalid entry", i)
			}
			served++
			continue
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("variant %d: corrupt entry not evicted (stat err %v)", i, err)
		}
		// The slot must re-fill and serve again.
		if err := s.Put(testEntry(key, "sweep-payload")); err != nil {
			t.Fatalf("variant %d: re-publish after eviction: %v", i, err)
		}
		if _, ok := s.Get(key); !ok {
			t.Fatalf("variant %d: miss after re-publish", i)
		}
	}
	if m.corrupt.value() == 0 {
		t.Fatal("sweep never tripped the corrupt counter")
	}
	if served > len(variants)/2 {
		t.Fatalf("%d/%d damaged variants served — validation is too loose", served, len(variants))
	}
	t.Logf("sweep: %d variants, %d benign payload flips served, %d evicted as corrupt",
		len(variants), served, m.corrupt.value())
}

func TestStoreSchemaMismatchEvicted(t *testing.T) {
	var m testMetrics
	s, err := Open(t.TempDir(), 0, m.metrics())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("schema"))
	if err := s.Put(testEntry(key, "x")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), key[:2], key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(data), `"schema": 1`, `"schema": 99`, 1)
	if stale == string(data) {
		t.Fatal("schema field not found in entry encoding")
	}
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("served an entry with a future schema")
	}
	if m.corrupt.value() != 1 {
		t.Fatalf("corrupt = %d, want 1", m.corrupt.value())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("stale-schema entry not evicted")
	}
}

// TestStoreLRUEviction fills the store past its cap and proves the
// least-recently-used entries go first: the oldest entry survives because
// a Get refreshed it, while untouched middle entries are evicted.
func TestStoreLRUEviction(t *testing.T) {
	var m testMetrics
	entrySize := len(mustEncode(t, testEntry(Key([]byte("probe")), "payload-0")))
	// Room for ~3 entries.
	s, err := Open(t.TempDir(), int64(3*entrySize+entrySize/2), m.metrics())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 5)
	for i := range keys {
		keys[i] = Key([]byte(fmt.Sprintf("lru-%d", i)))
	}
	if err := s.Put(testEntry(keys[0], "payload-0")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // sidecar mtimes order the LRU scan
	if err := s.Put(testEntry(keys[1], "payload-1")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.Put(testEntry(keys[2], "payload-2")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, ok := s.Get(keys[0]); !ok { // refresh: keys[0] is now the hottest
		t.Fatal("premature eviction")
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.Put(testEntry(keys[3], "payload-3")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.Put(testEntry(keys[4], "payload-4")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Error("least recently used entry survived")
	}
	if _, ok := s.Get(keys[4]); !ok {
		t.Error("just-written entry was evicted")
	}
	if m.evictions.value() == 0 {
		t.Error("size cap never tripped the eviction counter")
	}
}

func mustEncode(t *testing.T, e *Entry) []byte {
	t.Helper()
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestStoreConcurrentPublish races publishers and readers of one key
// across two Store handles sharing a directory (the fleet topology);
// every read must observe a complete valid entry.
func TestStoreConcurrentPublish(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 0, Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, 0, Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("race"))
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for i := 0; i < 8; i++ {
		store := a
		if i%2 == 1 {
			store = b
		}
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if err := s.Put(testEntry(key, "race-payload")); err != nil {
					errc <- err
					return
				}
				if e, ok := s.Get(key); ok {
					var payload struct{ Payload string }
					if err := json.Unmarshal(e.Result, &payload); err != nil || payload.Payload != "race-payload" {
						errc <- fmt.Errorf("torn read: %q %v", e.Result, err)
						return
					}
				}
			}
		}(store)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if _, ok := a.Get(key); !ok {
		t.Fatal("entry missing after concurrent publish")
	}
}
