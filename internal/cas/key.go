// Package cas is the content-addressed store for certified synthesis
// results. Synthesis is deterministic given (spec, seed, options): the
// same submission always produces the same certified result, so results
// are stored under a SHA-256 key derived from the canonical spec bytes
// (specio.Canonical), the canonical options encoding
// (synth.CanonicalOptions) and the engine version. Repeat submissions —
// benchmark sweeps, CI traffic, batch matrices — are then served from
// disk instead of burning a GA run.
//
// The store is a plain directory tree (`<dir>/<key[:2]>/<key>.json`)
// safe for concurrent use by every node of an mmserved fleet: entries
// are published with a write-fsync-link sequence so a reader never
// observes a torn entry, and because content under a key is
// deterministic, concurrent publishers of the same key are equivalent
// (first link wins, the rest discard identical bytes). See docs/CACHE.md.
package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Key derives the content address of an ordered sequence of canonical
// byte parts. Parts are length-prefixed before hashing so distinct
// sequences can never collide by concatenation (("ab","c") != ("a","bc")).
// The result is 64 lowercase hex characters.
func Key(parts ...[]byte) string {
	h := sha256.New()
	var lenbuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenbuf[:], uint64(len(p)))
		h.Write(lenbuf[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ValidKey reports whether key has the exact shape Key produces. The
// store rejects anything else before touching the filesystem, so a
// malformed key can never escape the cache directory.
func ValidKey(key string) bool {
	if len(key) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
