// Package gen generates random multi-mode co-synthesis problem instances
// in the style of TGFF, matching the envelope of the paper's automatically
// generated examples mul1–mul12: 3–5 operational modes of 8–32 tasks each,
// architectures of 2–4 heterogeneous PEs (some DVS-enabled) connected by
// 1–3 communication links, technology libraries in which hardware
// implementations run 5–100 times faster than software ones at far lower
// dynamic energy, and skewed mode execution probabilities.
//
// Two generation choices create the structural tension the paper exploits.
// First, every mode draws most of its task types from a private pool and
// only some from a pool shared across modes, so different modes compete for
// hardware rather than agreeing on it. Second, each hardware PE's area is a
// fraction of the total core area its implementable types would need, so
// the synthesis must choose which types deserve silicon — and that choice
// depends on how much operational time each mode really receives.
//
// Generation is fully deterministic given Params.Seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"momosyn/internal/model"
)

// Params controls instance generation. NewParams supplies the paper's
// envelope; individual fields can be adjusted before calling Generate.
type Params struct {
	Seed int64
	Name string

	// Modes is the number of operational modes.
	Modes int
	// MinTasks/MaxTasks bound the per-mode task count.
	MinTasks, MaxTasks int
	// PEs and CLs size the architecture.
	PEs, CLs int
	// DVSProb is the probability that a PE supports voltage scaling.
	DVSProb float64
	// HWImplProb is the probability that a task type has an implementation
	// on each hardware PE.
	HWImplProb float64
	// TypeReuse in (0,1] scales the per-mode type-pool size relative to the
	// mode's task count; smaller values increase within-mode type reuse.
	TypeReuse float64
	// SharedFrac is the fraction of task-type draws taken from the pool
	// shared across modes (the rest come from the mode's private pool).
	SharedFrac float64
	// AreaFrac is the hardware area budget as a fraction of the total core
	// area demanded by all types implementable on the PE.
	AreaFrac float64
	// ProbSkew >= 0 controls how uneven the mode execution probabilities
	// are (0 = uniform, 2-3 = strongly dominated by one mode).
	ProbSkew float64
	// Laxity scales the mode periods relative to the all-software serial
	// execution time; values below 1 force parallelism or hardware use.
	Laxity float64
}

// NewParams returns generation parameters within the paper's published
// envelope, randomised per seed exactly like the instance itself.
func NewParams(seed int64) Params {
	rng := rand.New(rand.NewSource(seed))
	return Params{
		Seed:       seed,
		Name:       fmt.Sprintf("gen%d", seed),
		Modes:      3 + rng.Intn(3), // 3..5
		MinTasks:   8,
		MaxTasks:   32,
		PEs:        2 + rng.Intn(3), // 2..4
		CLs:        1 + rng.Intn(3), // 1..3
		DVSProb:    0.5,
		HWImplProb: 0.75,
		TypeReuse:  0.35 + 0.25*rng.Float64(),
		SharedFrac: 0.25,
		AreaFrac:   0.30 + 0.20*rng.Float64(),
		ProbSkew:   1 + 2*rng.Float64(),
		Laxity:     0.50 + 0.30*rng.Float64(),
	}
}

// draft structures hold the instance before emission through the builder,
// so hardware areas can be derived from the drawn library.

type draftImpl struct {
	pe    string
	time  float64
	power float64
	area  int
}

type draftType struct {
	name   string
	swTime float64 // representative software time (first SW impl)
	impls  []draftImpl
}

type draftPE struct {
	model.PE
	areaDemand int
}

// Generate builds a random, validated system instance.
func Generate(p Params) (*model.System, error) {
	if p.Modes < 1 || p.PEs < 1 || p.CLs < 1 {
		return nil, fmt.Errorf("gen: params need at least one mode, PE and CL")
	}
	if p.MinTasks < 1 || p.MaxTasks < p.MinTasks {
		return nil, fmt.Errorf("gen: invalid task count bounds [%d,%d]", p.MinTasks, p.MaxTasks)
	}
	rng := rand.New(rand.NewSource(p.Seed))

	pes := draftArch(rng, p)
	var sw, hw []string
	for i := range pes {
		if pes[i].Class.IsHardware() {
			hw = append(hw, pes[i].Name)
		} else {
			sw = append(sw, pes[i].Name)
		}
	}

	taskCounts := make([]int, p.Modes)
	for m := range taskCounts {
		taskCounts[m] = p.MinTasks + rng.Intn(p.MaxTasks-p.MinTasks+1)
	}

	shared, home := draftPools(rng, p, taskCounts, sw, hw)

	// Size hardware areas from the total demand of the drawn library.
	all := append(append([]draftType(nil), shared...), flatten(home)...)
	for i := range pes {
		if !pes[i].Class.IsHardware() {
			continue
		}
		demand := 0
		for _, dt := range all {
			for _, im := range dt.impls {
				if im.pe == pes[i].Name {
					demand += im.area
				}
			}
		}
		area := int(math.Round(float64(demand) * p.AreaFrac))
		if area < 1 {
			area = 1
		}
		pes[i].Area = area
	}

	// Emit through the builder.
	b := model.NewBuilder(p.Name)
	for i := range pes {
		b.AddPE(pes[i].PE)
	}
	var peNames []string
	for i := range pes {
		peNames = append(peNames, pes[i].Name)
	}
	for i := 0; i < p.CLs; i++ {
		b.AddCL(model.CL{
			Name:        fmt.Sprintf("cl%d", i),
			BytesPerSec: (2 + 6*rng.Float64()) * 1e6,        // 2-8 MB/s
			PowerActive: (1 + 4*rng.Float64()) * 1e-3,       // 1-5 mW
			StaticPower: (0.05 + 0.25*rng.Float64()) * 1e-3, // 0.05-0.3 mW
		}, peNames...)
	}
	for _, dt := range all {
		var impls []model.ImplSpec
		for _, im := range dt.impls {
			impls = append(impls, model.ImplSpec{PE: im.pe, Time: im.time, Power: im.power, Area: im.area})
		}
		b.AddType(dt.name, impls...)
	}

	probs := genProbs(rng, p.Modes, p.ProbSkew)
	var modeNames []string
	for m := 0; m < p.Modes; m++ {
		name := fmt.Sprintf("mode%d", m)
		modeNames = append(modeNames, name)
		genMode(b, rng, p, name, m, probs[m], taskCounts[m], shared, home[m])
	}
	genTransitions(b, rng, modeNames)
	return b.Finish()
}

func flatten(pools [][]draftType) []draftType {
	var out []draftType
	for _, pool := range pools {
		out = append(out, pool...)
	}
	return out
}

// draftArch draws the processing elements: PE 0 is always a GPP; the rest
// draw from all four classes with at least one hardware PE when two or more
// PEs exist. Hardware areas are filled in later from the library demand.
func draftArch(rng *rand.Rand, p Params) []draftPE {
	classes := make([]model.PEClass, p.PEs)
	classes[0] = model.GPP
	for i := 1; i < p.PEs; i++ {
		classes[i] = []model.PEClass{model.GPP, model.ASIP, model.ASIC, model.FPGA}[rng.Intn(4)]
	}
	if p.PEs >= 2 {
		hasHW := false
		for _, c := range classes[1:] {
			if c.IsHardware() {
				hasHW = true
			}
		}
		if !hasHW {
			classes[p.PEs-1] = []model.PEClass{model.ASIC, model.FPGA}[rng.Intn(2)]
		}
	}
	pes := make([]draftPE, p.PEs)
	for i, class := range classes {
		pe := model.PE{
			Name:        fmt.Sprintf("pe%d", i),
			Class:       class,
			Vmax:        3.3,
			Vt:          0.8,
			StaticPower: (0.2 + 1.0*rng.Float64()) * 1e-3, // 0.2-1.2 mW
		}
		if rng.Float64() < p.DVSProb {
			pe.DVS = true
			pe.Levels = voltageLevels(rng)
		}
		if class == model.FPGA {
			pe.ReconfigTime = (1 + 4*rng.Float64()) * 1e-3 // 1-5 ms per core
		}
		pes[i] = draftPE{PE: pe}
	}
	return pes
}

func voltageLevels(rng *rand.Rand) []float64 {
	all := []float64{1.2, 1.5, 1.8, 2.1, 2.5, 2.9}
	n := 2 + rng.Intn(3) // 2-4 scaled levels below Vmax
	start := rng.Intn(len(all) - n + 1)
	levels := append([]float64(nil), all[start:start+n]...)
	return append(levels, 3.3)
}

// draftPools draws the shared type pool and one private pool per mode.
// Every type has a software implementation on every software PE; hardware
// implementations exist with probability HWImplProb per hardware PE.
// Hardware runs 5-100x faster at 1-10% of the software energy.
func draftPools(rng *rand.Rand, p Params, taskCounts []int, sw, hw []string) (shared []draftType, home [][]draftType) {
	counter := 0
	mkType := func(prefix string) draftType {
		dt := draftType{name: fmt.Sprintf("%s%d", prefix, counter)}
		counter++
		baseTime := (5 + 45*rng.Float64()) * 1e-3  // 5-50 ms
		basePower := (5 + 20*rng.Float64()) * 1e-3 // 5-25 mW
		dt.swTime = baseTime
		for _, pe := range sw {
			dt.impls = append(dt.impls, draftImpl{
				pe:    pe,
				time:  baseTime * (0.8 + 0.4*rng.Float64()),
				power: basePower * (0.8 + 0.4*rng.Float64()),
			})
		}
		for _, pe := range hw {
			if rng.Float64() >= p.HWImplProb {
				continue
			}
			speedup := 5 + 95*rng.Float64() // 5-100x
			dt.impls = append(dt.impls, draftImpl{
				pe:    pe,
				time:  baseTime / speedup,
				power: basePower * (0.01 + 0.09*rng.Float64()) * speedup,
				area:  100 + rng.Intn(300),
			})
		}
		return dt
	}

	totalTasks := 0
	for _, c := range taskCounts {
		totalTasks += c
	}
	nShared := int(math.Max(2, math.Round(float64(totalTasks)*p.TypeReuse*p.SharedFrac/float64(len(taskCounts)))))
	for i := 0; i < nShared; i++ {
		shared = append(shared, mkType("shr"))
	}
	home = make([][]draftType, len(taskCounts))
	for m, c := range taskCounts {
		n := int(math.Max(1, math.Round(float64(c)*p.TypeReuse)))
		for i := 0; i < n; i++ {
			home[m] = append(home[m], mkType(fmt.Sprintf("m%dt", m)))
		}
	}
	return shared, home
}

// genProbs draws skewed execution probabilities: weights exp(skew*U(0,3))
// normalised, then sorted descending so mode0 dominates, matching the
// usage-profile shape of the paper's examples.
func genProbs(rng *rand.Rand, n int, skew float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Exp(skew * 3 * rng.Float64())
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && w[j] > w[j-1]; j-- {
			w[j], w[j-1] = w[j-1], w[j]
		}
	}
	// Round to 4 decimals but preserve the sum of exactly one.
	rem := 1.0
	for i := 0; i < n-1; i++ {
		w[i] = math.Round(w[i]*1e4) / 1e4
		rem -= w[i]
	}
	w[n-1] = rem
	return w
}

// genMode emits one mode: a layered random DAG whose tasks draw SharedFrac
// of their types from the shared pool and the rest from the mode's private
// pool, plus a period derived from the all-software serial time and the
// laxity factor.
func genMode(b *model.Builder, rng *rand.Rand, p Params, name string, idx int, prob float64, nTasks int, shared, home []draftType) {
	types := make([]string, nTasks)
	serial := 0.0
	for i := range types {
		var dt draftType
		if rng.Float64() < p.SharedFrac || len(home) == 0 {
			dt = shared[rng.Intn(len(shared))]
		} else {
			dt = home[rng.Intn(len(home))]
		}
		types[i] = dt.name
		serial += dt.swTime
	}
	period := serial * p.Laxity
	b.BeginMode(name, prob, period)

	depth := int(math.Max(2, math.Round(math.Sqrt(float64(nTasks)))))
	layers := make([][]int, depth)
	for i := 0; i < nTasks; i++ {
		l := 0
		if i > 0 {
			l = rng.Intn(depth)
		}
		layers[l] = append(layers[l], i)
	}
	var packed [][]int
	for _, l := range layers {
		if len(l) > 0 {
			packed = append(packed, l)
		}
	}
	layers = packed

	taskName := func(i int) string { return fmt.Sprintf("m%dt%d", idx, i) }
	for i := 0; i < nTasks; i++ {
		b.AddTask(taskName(i), types[i], 0)
	}
	for li := 1; li < len(layers); li++ {
		for _, t := range layers[li] {
			nPred := 1 + rng.Intn(3)
			seen := map[int]bool{}
			for k := 0; k < nPred; k++ {
				pl := li - 1
				if li > 1 && rng.Float64() < 0.25 {
					pl = rng.Intn(li)
				}
				cand := layers[pl][rng.Intn(len(layers[pl]))]
				if seen[cand] {
					continue
				}
				seen[cand] = true
				bytes := float64(100 + rng.Intn(3900))
				b.AddEdge(taskName(cand), taskName(t), bytes)
			}
		}
	}
}

// genTransitions wires the top-level FSM: a ring over all modes (so the
// OMSM is cyclic and every mode is reachable) plus random chords, each with
// a transition-time limit of 10-60 ms.
func genTransitions(b *model.Builder, rng *rand.Rand, modes []string) {
	n := len(modes)
	limit := func() float64 { return (10 + 50*rng.Float64()) * 1e-3 }
	for i := 0; i < n; i++ {
		b.AddTransition(modes[i], modes[(i+1)%n], limit())
	}
	extra := rng.Intn(n)
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.AddTransition(modes[i], modes[j], limit())
		}
	}
}
