package gen

import (
	"fmt"
	"testing"

	"momosyn/internal/model"
)

func TestGenerateValidates(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := NewParams(seed)
		sys, err := Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("seed %d: validate: %v", seed, err)
		}
	}
}

func TestGenerateEnvelope(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := NewParams(seed)
		sys, err := Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := len(sys.App.Modes); n < 3 || n > 5 {
			t.Errorf("seed %d: %d modes outside [3,5]", seed, n)
		}
		for _, m := range sys.App.Modes {
			if n := len(m.Graph.Tasks); n < 8 || n > 32 {
				t.Errorf("seed %d mode %s: %d tasks outside [8,32]", seed, m.Name, n)
			}
		}
		if n := len(sys.Arch.PEs); n < 2 || n > 4 {
			t.Errorf("seed %d: %d PEs outside [2,4]", seed, n)
		}
		if n := len(sys.Arch.CLs); n < 1 || n > 3 {
			t.Errorf("seed %d: %d CLs outside [1,3]", seed, n)
		}
		hasHW := false
		for _, pe := range sys.Arch.PEs {
			if pe.Class.IsHardware() {
				hasHW = true
			}
		}
		if !hasHW {
			t.Errorf("seed %d: no hardware PE", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(NewParams(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(NewParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.App.Modes) != len(b.App.Modes) {
		t.Fatalf("mode counts differ: %d vs %d", len(a.App.Modes), len(b.App.Modes))
	}
	for i := range a.App.Modes {
		ma, mb := a.App.Modes[i], b.App.Modes[i]
		if ma.Prob != mb.Prob || ma.Period != mb.Period {
			t.Errorf("mode %d: prob/period differ", i)
		}
		if len(ma.Graph.Tasks) != len(mb.Graph.Tasks) || len(ma.Graph.Edges) != len(mb.Graph.Edges) {
			t.Errorf("mode %d: graph shape differs", i)
		}
	}
	for i := range a.Lib.Types {
		for j, im := range a.Lib.Types[i].Impls {
			if im != b.Lib.Types[i].Impls[j] {
				t.Fatalf("type %d impl %d differs", i, j)
			}
		}
	}
}

func TestGenerateProbabilitiesSkewedAndNormalised(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sys, err := Generate(NewParams(seed))
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		maxP := 0.0
		for _, m := range sys.App.Modes {
			sum += m.Prob
			if m.Prob > maxP {
				maxP = m.Prob
			}
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Errorf("seed %d: probabilities sum to %g", seed, sum)
		}
		uniform := 1 / float64(len(sys.App.Modes))
		if maxP < uniform {
			t.Errorf("seed %d: max probability %g below uniform %g", seed, maxP, uniform)
		}
		if sys.App.Modes[0].Prob != maxP {
			t.Errorf("seed %d: mode0 should carry the dominant probability", seed)
		}
	}
}

func TestGenerateTypeSharingAcrossModes(t *testing.T) {
	shared := 0
	for seed := int64(1); seed <= 10; seed++ {
		sys, err := Generate(NewParams(seed))
		if err != nil {
			t.Fatal(err)
		}
		usedIn := make(map[model.TaskTypeID]map[int]bool)
		for mi, m := range sys.App.Modes {
			for _, task := range m.Graph.Tasks {
				if usedIn[task.Type] == nil {
					usedIn[task.Type] = make(map[int]bool)
				}
				usedIn[task.Type][mi] = true
			}
		}
		for _, modes := range usedIn {
			if len(modes) > 1 {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Error("expected some task types to be shared across modes")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, err := Generate(Params{Seed: 1}); err == nil {
		t.Error("zero params must be rejected")
	}
	p := NewParams(1)
	p.MinTasks, p.MaxTasks = 5, 2
	if _, err := Generate(p); err == nil {
		t.Error("inverted task bounds must be rejected")
	}
}

func TestGenerateAreaScarcity(t *testing.T) {
	// Hardware areas are sized to AreaFrac of the total implementable core
	// demand, so the synthesis must choose which types get silicon.
	for seed := int64(1); seed <= 10; seed++ {
		p := NewParams(seed)
		sys, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, pe := range sys.Arch.PEs {
			if !pe.Class.IsHardware() {
				continue
			}
			demand := 0
			for _, tt := range sys.Lib.Types {
				if im, ok := tt.ImplOn(pe.ID); ok {
					demand += im.Area
				}
			}
			if demand == 0 {
				continue
			}
			frac := float64(pe.Area) / float64(demand)
			if frac < p.AreaFrac-0.02 || frac > p.AreaFrac+0.02 {
				t.Errorf("seed %d PE %s: area fraction %.2f, want ~%.2f",
					seed, pe.Name, frac, p.AreaFrac)
			}
		}
	}
}

func TestGenerateSharedAndPrivatePools(t *testing.T) {
	sys, err := Generate(NewParams(4))
	if err != nil {
		t.Fatal(err)
	}
	// Shared-pool types carry the "shr" prefix; private-pool types carry
	// their mode's prefix. Private types must not appear outside their
	// home mode.
	for mi, m := range sys.App.Modes {
		for _, task := range m.Graph.Tasks {
			name := sys.Lib.Type(task.Type).Name
			if len(name) > 3 && name[0] == 'm' {
				var home int
				if _, err := fmt.Sscanf(name, "m%dt", &home); err == nil && home != mi {
					t.Errorf("private type %s of mode %d used in mode %d", name, home, mi)
				}
			}
		}
	}
}

func TestGenerateHardwareSpeedupEnvelope(t *testing.T) {
	sys, err := Generate(NewParams(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range sys.Lib.Types {
		var sw, hw *model.Impl
		for i := range tt.Impls {
			im := &tt.Impls[i]
			if sys.Arch.PE(im.PE).Class.IsHardware() {
				if hw == nil {
					hw = im
				}
			} else if sw == nil {
				sw = im
			}
		}
		if sw == nil {
			t.Fatalf("type %s has no software implementation", tt.Name)
		}
		if hw == nil {
			continue
		}
		speedup := sw.Time / hw.Time
		// SW impl times jitter +-20% around the base, so the effective
		// envelope is 5-100x with slack.
		if speedup < 3 || speedup > 130 {
			t.Errorf("type %s: speedup %.1f outside envelope", tt.Name, speedup)
		}
		if hw.Power*hw.Time >= sw.Power*sw.Time {
			t.Errorf("type %s: hardware energy not lower", tt.Name)
		}
	}
}
