package runctl

import (
	"fmt"
	"io"
	"math"
	"runtime/debug"

	"momosyn/internal/ga"
)

// EvalFault records one genome whose fitness evaluation panicked. The
// genome is kept so the failure is reproducible offline.
type EvalFault struct {
	Genome []int
	// Err is the recovered panic value, stringified.
	Err string
	// Stack is the goroutine stack at the point of the panic.
	Stack string
	// Attempts is how many evaluations of this genome were tried before it
	// was marked infeasible.
	Attempts int
}

// GuardConfig tunes the panic-isolation barrier.
type GuardConfig struct {
	// MaxAttempts is the number of evaluations tried per genome before it
	// is marked permanently infeasible (default 2: one retry). Evaluation
	// is deterministic in this codebase, so the retry mainly distinguishes
	// environmental flukes from genuinely poisonous genomes.
	MaxAttempts int
	// FaultBudget is the number of distinct faulting genomes tolerated per
	// run before OnBudgetExceeded fires (default 64). The run then aborts
	// cleanly at the next generation boundary with the fault report intact.
	FaultBudget int
	// OnBudgetExceeded is invoked once, when the budget is first exceeded.
	// The synthesis layer uses it to cancel the run context.
	OnBudgetExceeded func(err error)
}

func (c GuardConfig) withDefaults() GuardConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.FaultBudget <= 0 {
		c.FaultBudget = 64
	}
	return c
}

// Guard wraps a ga.Problem so that a panic inside Fitness is contained:
// the genome is retried up to MaxAttempts times, then marked infeasible
// (+Inf fitness) and recorded as an EvalFault. It is not safe for
// concurrent use, matching the single-goroutine GA engine.
type Guard struct {
	inner   ga.Problem
	cfg     GuardConfig
	faults  []EvalFault
	bad     map[string]bool
	tripped bool
}

// NewGuard wraps p in a recover barrier.
func NewGuard(p ga.Problem, cfg GuardConfig) *Guard {
	return &Guard{inner: p, cfg: cfg.withDefaults(), bad: make(map[string]bool)}
}

// GenomeLen implements ga.Problem.
func (g *Guard) GenomeLen() int { return g.inner.GenomeLen() }

// Alleles implements ga.Problem.
func (g *Guard) Alleles(i int) int { return g.inner.Alleles(i) }

// Fitness evaluates the genome behind the recover barrier. Panicking
// genomes evaluate to +Inf so the GA selects them away instead of dying.
func (g *Guard) Fitness(genome []int) float64 {
	key := genomeKey(genome)
	if g.bad[key] {
		return math.Inf(1)
	}
	var last *EvalFault
	for attempt := 1; attempt <= g.cfg.MaxAttempts; attempt++ {
		f, fault := g.try(genome)
		if fault == nil {
			return f
		}
		fault.Attempts = attempt
		last = fault
	}
	g.bad[key] = true
	g.faults = append(g.faults, *last)
	if !g.tripped && len(g.faults) > g.cfg.FaultBudget {
		g.tripped = true
		if g.cfg.OnBudgetExceeded != nil {
			g.cfg.OnBudgetExceeded(fmt.Errorf(
				"fault budget exceeded: %d genomes panicked during evaluation (budget %d)",
				len(g.faults), g.cfg.FaultBudget))
		}
	}
	return math.Inf(1)
}

func (g *Guard) try(genome []int) (f float64, fault *EvalFault) {
	defer func() {
		if r := recover(); r != nil {
			fault = &EvalFault{
				Genome: append([]int(nil), genome...),
				Err:    fmt.Sprint(r),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	return g.inner.Fitness(genome), nil
}

// Faults returns the recorded faults (shared slice; callers must not
// mutate).
func (g *Guard) Faults() []EvalFault { return g.faults }

// Restore preloads faults from a checkpoint so the budget keeps counting
// across a resume.
func (g *Guard) Restore(faults []EvalFault) {
	g.faults = append(g.faults[:0], faults...)
	for _, f := range g.faults {
		g.bad[genomeKey(f.Genome)] = true
	}
}

// WriteReport emits a human-readable diagnostic of the recorded faults:
// one block per fault with the genome, panic value and the first stack
// lines, suitable for a run's closing report.
func (g *Guard) WriteReport(w io.Writer) {
	if len(g.faults) == 0 {
		return
	}
	fmt.Fprintf(w, "evaluation faults: %d genome(s) panicked and were marked infeasible\n", len(g.faults))
	for i, f := range g.faults {
		fmt.Fprintf(w, "  fault %d: genome %v (attempts %d)\n    panic: %s\n", i+1, f.Genome, f.Attempts, f.Err)
	}
}

func genomeKey(genome []int) string {
	b := make([]byte, 0, len(genome)*2)
	for _, v := range genome {
		b = append(b, byte(v), byte(v>>8))
	}
	return string(b)
}
