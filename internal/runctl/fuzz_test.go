package runctl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"momosyn/internal/ga"
)

// goodCheckpoint builds a structurally valid checkpoint for seeding and
// corruption.
func goodCheckpoint() *Checkpoint {
	return &Checkpoint{
		Version:     Version,
		SavedAt:     time.Unix(1700000000, 0),
		System:      "fuzz-sys",
		GenomeLen:   3,
		Seed:        42,
		Fingerprint: "dvs=true",
		RNGState:    7,
		Snapshot: ga.Snapshot{
			Generation:  5,
			Stagnant:    1,
			Evaluations: 60,
			Population:  [][]int{{0, 1, 0}, {1, 0, 1}, {0, 0, 0}, {1, 1, 1}},
			Fitness:     []float64{1.5, 2.5, 3.5, 4.5},
			BestGenome:  []int{0, 1, 0},
			BestFitness: 1.5,
			History:     []float64{4.5, 2.0, 1.5},
		},
		Cache:  CacheCounters{Hits: 10, Misses: 50},
		Faults: []EvalFault{{Genome: []int{1, 0, 1}, Err: "boom", Attempts: 2}},
	}
}

// goodCheckpointBytes serialises it the way Save does.
func goodCheckpointBytes(t testing.TB) []byte {
	dir := t.TempDir()
	p := filepath.Join(dir, "seed.ckpt")
	if err := Save(p, goodCheckpoint()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzCheckpoint drives Load with arbitrary file contents: it must either
// succeed with a structurally valid checkpoint or return a diagnostic
// error naming the path — never panic, never hand back garbage state.
func FuzzCheckpoint(f *testing.F) {
	valid := goodCheckpointBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(magic)])
	f.Add(valid[:len(magic)-1])
	f.Add([]byte{})
	f.Add([]byte("MMSYN-CKPT\x02garbage"))
	f.Add([]byte("not a checkpoint at all"))

	// One scratch file per worker process: per-iteration TempDir churn
	// would throttle the fuzzer to a handful of execs per second.
	scratch := filepath.Join(f.TempDir(), "fuzz.ckpt")
	f.Fuzz(func(t *testing.T, data []byte) {
		p := scratch
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		cp, err := Load(p)
		if err != nil {
			if cp != nil {
				t.Fatal("Load returned both a checkpoint and an error")
			}
			return
		}
		// Whatever decoded must satisfy the structural invariants the
		// resume path depends on.
		if cp.Version != Version || cp.GenomeLen <= 0 || len(cp.Snapshot.Population) == 0 {
			t.Fatalf("Load accepted invalid state: %+v", cp)
		}
		if len(cp.Snapshot.Fitness) != len(cp.Snapshot.Population) {
			t.Fatal("Load accepted mismatched population/fitness lengths")
		}
		for _, g := range cp.Snapshot.Population {
			if len(g) != cp.GenomeLen {
				t.Fatal("Load accepted a genome of wrong length")
			}
		}
	})
}

// TestLoadCorrupt walks the corruption classes the fault-injection harness
// cares about: every damaged file must yield an error that names the path
// and says why, and never a panic or a silently wrong resume.
func TestLoadCorrupt(t *testing.T) {
	valid := goodCheckpointBytes(t)
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"header-only", valid[:len(magic)]},
		{"partial-header", valid[:4]},
		{"truncated-25", valid[:len(valid)/4]},
		{"truncated-50", valid[:len(valid)/2]},
		{"truncated-1", valid[:len(valid)-1]},
		{"wrong-version", append([]byte("MMSYN-CKPT\x7f"), valid[len(magic):]...)},
		{"not-magic", []byte("PNG\x89 definitely not a checkpoint")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := write(tc.name, tc.data)
			cp, err := Load(p)
			if err == nil {
				t.Fatalf("damaged checkpoint loaded: %+v", cp)
			}
			if !strings.Contains(err.Error(), p) {
				t.Errorf("error must name the path %q: %v", p, err)
			}
		})
	}

	// Flip every byte of the payload in turn: Load may reject or (for
	// immaterial bytes) accept, but an accepted checkpoint must be
	// structurally valid. Primarily a no-panic sweep.
	for off := len(magic); off < len(valid); off++ {
		data := append([]byte(nil), valid...)
		data[off] ^= 0xff
		p := write("flip.ckpt", data)
		cp, err := Load(p)
		if err == nil && (cp.GenomeLen <= 0 || len(cp.Snapshot.Population) == 0 ||
			len(cp.Snapshot.Fitness) != len(cp.Snapshot.Population)) {
			t.Fatalf("flip at %d: accepted invalid state: %+v", off, cp)
		}
	}

	// The undamaged bytes still load.
	p := write("valid.ckpt", valid)
	cp, err := Load(p)
	if err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	if cp.System != "fuzz-sys" || cp.GenomeLen != 3 {
		t.Errorf("valid checkpoint misread: %+v", cp)
	}
}

// TestLoadRejectsInconsistentState pins the structural validation beyond
// what gob can express: fields that decode fine but cannot be resumed.
func TestLoadRejectsInconsistentState(t *testing.T) {
	corrupt := func(name string, mut func(cp *Checkpoint), want string) {
		t.Run(name, func(t *testing.T) {
			cp := goodCheckpoint()
			mut(cp)
			p := filepath.Join(t.TempDir(), name+".ckpt")
			if err := Save(p, cp); err != nil {
				t.Fatal(err)
			}
			_, err := Load(p)
			if err == nil || !strings.Contains(err.Error(), want) {
				t.Errorf("want error containing %q, got %v", want, err)
			}
		})
	}
	corrupt("zero-genome-len", func(cp *Checkpoint) { cp.GenomeLen = 0 }, "genome length")
	corrupt("fitness-mismatch", func(cp *Checkpoint) { cp.Snapshot.Fitness = cp.Snapshot.Fitness[:2] }, "fitness")
	corrupt("short-genome", func(cp *Checkpoint) { cp.Snapshot.Population[1] = []int{1} }, "loci")
	corrupt("bad-best", func(cp *Checkpoint) { cp.Snapshot.BestGenome = []int{1, 2, 3, 4, 5} }, "best genome")
	corrupt("negative-gen", func(cp *Checkpoint) { cp.Snapshot.Generation = -3 }, "negative")
}
