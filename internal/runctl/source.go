// Package runctl supplies run-control building blocks for long synthesis
// runs: a serialisable random source (so a resumed run continues the exact
// random stream of the interrupted one), versioned checkpoint files with
// atomic write-rename, a panic-isolating fitness guard with a run-level
// fault budget, and signal-to-context plumbing for the CLIs.
//
// The package deliberately depends only on internal/ga: the synthesis layer
// composes these pieces around its own evaluator and cache.
package runctl

// Source is a splitmix64 pseudo-random source implementing
// math/rand.Source64 whose entire state is a single exported word, so it
// can be stored in a checkpoint and restored exactly. The stream quality is
// ample for genetic-algorithm sampling; it is NOT cryptographic.
type Source struct {
	state uint64
}

// NewSource returns a source seeded like rand.NewSource(seed) conceptually:
// equal seeds yield equal streams.
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the stream to the deterministic function of seed.
func (s *Source) Seed(seed int64) {
	// Pre-mix the seed once so small seeds do not yield correlated first
	// outputs across neighbouring seeds.
	s.state = uint64(seed) ^ 0x9E3779B97F4A7C15
}

// Uint64 advances the splitmix64 stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 satisfies math/rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// State returns the current stream position for checkpointing.
func (s *Source) State() uint64 { return s.state }

// Restore rewinds or advances the stream to a previously captured State.
func (s *Source) Restore(state uint64) { s.state = state }
