package runctl

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// NotifyContext returns a child of parent that is cancelled (with the
// signal as cancellation cause) on the first SIGINT or SIGTERM, letting a
// run stop at the next generation boundary and report its best-so-far
// result. A second signal restores the default handler, so pressing ^C
// twice force-kills a run that is stuck inside a long evaluation.
func NotifyContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			// From now on the default disposition applies: a second
			// signal terminates the process immediately.
			signal.Reset(os.Interrupt, syscall.SIGTERM)
			cancel(fmt.Errorf("received %v", sig))
		case <-ctx.Done():
			signal.Stop(ch)
		}
	}()
	return ctx, func() { cancel(context.Canceled) }
}
