package runctl

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"momosyn/internal/ga"
	"momosyn/internal/obs"
)

func TestSourceDeterministicAndRestorable(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal seeds diverged at draw %d", i)
		}
	}
	if c := NewSource(43); c.Uint64() == NewSource(42).Uint64() {
		t.Error("neighbouring seeds produced the same first draw")
	}

	// State/Restore must resume the exact stream position.
	a.Uint64()
	state := a.State()
	want := []uint64{a.Uint64(), a.Uint64(), a.Uint64()}
	a.Restore(state)
	for i, w := range want {
		if got := a.Uint64(); got != w {
			t.Fatalf("restored stream diverged at draw %d: %d != %d", i, got, w)
		}
	}
}

func TestSourceDrivesMathRand(t *testing.T) {
	// The source must satisfy rand.Source64 and survive a round-trip
	// through rand.New without the wrapper keeping hidden state that a
	// Restore would miss.
	src := NewSource(7)
	rng := rand.New(src)
	rng.Intn(10)
	rng.Float64()
	state := src.State()
	want := []int{rng.Intn(1000), rng.Intn(1000), rng.Intn(1000)}
	src.Restore(state)
	rng2 := rand.New(src)
	for i, w := range want {
		if got := rng2.Intn(1000); got != w {
			t.Fatalf("rand.Rand over restored source diverged at draw %d: %d != %d", i, got, w)
		}
	}
}

func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		System:      "demo",
		GenomeLen:   3,
		Seed:        11,
		Fingerprint: "opts",
		RNGState:    0xDEADBEEF,
		Snapshot: ga.Snapshot{
			Generation:  7,
			Stagnant:    2,
			Evaluations: 99,
			Restarts:    1,
			Population:  [][]int{{0, 1, 2}, {2, 1, 0}},
			Fitness:     []float64{1.5, math.Inf(1)}, // +Inf must survive encoding
			BestGenome:  []int{0, 1, 2},
			BestFitness: 1.5,
			History:     []float64{3, 2, 1.5},
			MutStats:    []ga.MutatorStats{{Attempts: 12, Accepted: 5, Improved: 2}},
		},
		Cache:  CacheCounters{Hits: 10, Misses: 5, Evictions: 1, Entries: 4, Capacity: 8},
		Faults: []EvalFault{{Genome: []int{9, 9, 9}, Err: "boom", Stack: "stack", Attempts: 2}},
		Metrics: []obs.MetricState{
			{Name: "synth.evaluations", Kind: "counter", Value: 99},
			{Name: "ga.mean_fitness", Kind: "gauge", Value: math.Inf(1)}, // +Inf must survive gob
			{Name: "synth.phase_seconds.dvs", Kind: "histogram", Count: 3, Sum: 0.25,
				Bounds: []float64{0.1, 1}, Counts: []uint64{2, 1, 0}},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp := testCheckpoint()
	if err := Save(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version || got.SavedAt.IsZero() {
		t.Errorf("Save must stamp version and time: %+v", got)
	}
	if got.System != cp.System || got.Seed != cp.Seed || got.Fingerprint != cp.Fingerprint ||
		got.GenomeLen != cp.GenomeLen || got.RNGState != cp.RNGState {
		t.Errorf("identity fields mismatch: %+v", got)
	}
	s, w := got.Snapshot, cp.Snapshot
	if s.Generation != w.Generation || s.Stagnant != w.Stagnant || s.Evaluations != w.Evaluations ||
		s.Restarts != w.Restarts || s.BestFitness != w.BestFitness || len(s.Population) != 2 {
		t.Errorf("snapshot mismatch: %+v", s)
	}
	if !math.IsInf(s.Fitness[1], 1) {
		t.Errorf("infinite fitness did not survive the round trip: %v", s.Fitness)
	}
	if got.Cache != cp.Cache {
		t.Errorf("cache counters mismatch: %+v", got.Cache)
	}
	if len(got.Faults) != 1 || got.Faults[0].Err != "boom" {
		t.Errorf("faults mismatch: %+v", got.Faults)
	}
	if len(s.MutStats) != 1 || s.MutStats[0] != w.MutStats[0] {
		t.Errorf("mutator stats mismatch: %+v", s.MutStats)
	}
	if len(got.Metrics) != 3 {
		t.Fatalf("metric state mismatch: %+v", got.Metrics)
	}
	if !math.IsInf(got.Metrics[1].Value, 1) {
		t.Errorf("infinite gauge did not survive the round trip: %+v", got.Metrics[1])
	}
	// Restoring the carried state must reproduce the totals.
	reg := obs.NewRegistry()
	reg.Restore(got.Metrics)
	if v := reg.Counter("synth.evaluations").Value(); v != 99 {
		t.Errorf("restored counter = %d, want 99", v)
	}
	if h := reg.Histogram("synth.phase_seconds.dvs", nil); h.Count() != 3 {
		t.Errorf("restored histogram count = %d, want 3", h.Count())
	}
}

func TestCheckpointAtomicOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp := testCheckpoint()
	if err := Save(path, cp); err != nil {
		t.Fatal(err)
	}
	cp2 := testCheckpoint()
	cp2.Snapshot.Generation = 20
	if err := Save(path, cp2); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Snapshot.Generation != 20 {
		t.Errorf("second save not visible: generation %d", got.Snapshot.Generation)
	}
	// No temporary files may be left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("stray files after save: %v", entries)
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"missing":    filepath.Join(dir, "nope.ckpt"),
		"empty":      write("empty", nil),
		"garbage":    write("garbage", []byte("this is not a checkpoint at all")),
		"truncated":  write("trunc", []byte(magic[:4])),
		"bad magic":  write("badmagic", append([]byte("XXXXX-XXXX\x01"), 1, 2, 3)),
		"badversion": write("badver", append([]byte(magic[:len(magic)-1]+"\x63"), 1, 2, 3)),
		"cutbody":    write("cutbody", []byte(magic)),
	}
	for name, p := range cases {
		if _, err := Load(p); err == nil {
			t.Errorf("%s: Load accepted an invalid file", name)
		}
	}
	// A valid checkpoint with an empty population is also rejected: it
	// cannot seed a resume.
	cp := testCheckpoint()
	cp.Snapshot.Population = nil
	p := filepath.Join(dir, "emptypop")
	if err := Save(p, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(p); err == nil || !strings.Contains(err.Error(), "empty population") {
		t.Errorf("empty population not rejected: %v", err)
	}
}

func TestSaveFailsCleanlyOnBadDirectory(t *testing.T) {
	err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.ckpt"), testCheckpoint())
	if err == nil {
		t.Fatal("Save into a missing directory must fail")
	}
}

// panicky panics for genomes whose first allele is poison, counting calls.
type panicky struct {
	poison int
	calls  int
}

func (p *panicky) GenomeLen() int  { return 3 }
func (p *panicky) Alleles(int) int { return 10 }
func (p *panicky) Fitness(g []int) float64 {
	p.calls++
	if g[0] == p.poison {
		panic("poisoned genome")
	}
	return float64(g[0])
}

func TestGuardContainsPanics(t *testing.T) {
	inner := &panicky{poison: 5}
	g := NewGuard(inner, GuardConfig{})
	if got := g.Fitness([]int{1, 0, 0}); got != 1 {
		t.Fatalf("healthy genome fitness = %v, want 1", got)
	}
	if got := g.Fitness([]int{5, 0, 0}); !math.IsInf(got, 1) {
		t.Fatalf("poisoned genome fitness = %v, want +Inf", got)
	}
	faults := g.Faults()
	if len(faults) != 1 {
		t.Fatalf("faults = %d, want 1", len(faults))
	}
	f := faults[0]
	if f.Err != "poisoned genome" || f.Attempts != 2 || len(f.Genome) != 3 || f.Genome[0] != 5 {
		t.Errorf("fault = %+v", f)
	}
	if f.Stack == "" || !strings.Contains(f.Stack, "Fitness") {
		t.Errorf("fault stack missing the evaluation frame:\n%s", f.Stack)
	}
	// Known-bad genomes are memoised: no further evaluation attempts.
	calls := inner.calls
	if got := g.Fitness([]int{5, 0, 0}); !math.IsInf(got, 1) {
		t.Fatalf("memoised bad genome fitness = %v", got)
	}
	if inner.calls != calls {
		t.Errorf("bad genome re-evaluated %d times after being marked", inner.calls-calls)
	}
	if len(g.Faults()) != 1 {
		t.Errorf("repeated lookups must not duplicate faults: %d", len(g.Faults()))
	}
}

func TestGuardRetrySucceedsWithoutFault(t *testing.T) {
	// A genome that panics once and then evaluates cleanly is an
	// environmental fluke: the retry covers it and no fault is recorded.
	first := true
	inner := &flaky{fail: func() bool { f := first; first = false; return f }}
	g := NewGuard(inner, GuardConfig{})
	if got := g.Fitness([]int{2, 0, 0}); got != 2 {
		t.Fatalf("fitness after retry = %v, want 2", got)
	}
	if len(g.Faults()) != 0 {
		t.Errorf("successful retry recorded a fault: %+v", g.Faults())
	}
}

type flaky struct{ fail func() bool }

func (p *flaky) GenomeLen() int  { return 3 }
func (p *flaky) Alleles(int) int { return 10 }
func (p *flaky) Fitness(g []int) float64 {
	if p.fail() {
		panic("transient")
	}
	return float64(g[0])
}

func TestGuardFaultBudget(t *testing.T) {
	inner := &panicky{poison: -1} // nothing is poisoned...
	g := NewGuard(inner, GuardConfig{FaultBudget: 2, OnBudgetExceeded: nil})
	var fired []error
	g.cfg.OnBudgetExceeded = func(err error) { fired = append(fired, err) }
	inner.poison = 0 // ...until every genome starting with 0 is
	for i := 0; i < 5; i++ {
		g.Fitness([]int{0, i, 0}) // five distinct faulting genomes
	}
	if len(fired) != 1 {
		t.Fatalf("OnBudgetExceeded fired %d times, want exactly once", len(fired))
	}
	if !strings.Contains(fired[0].Error(), "fault budget exceeded") {
		t.Errorf("budget error = %v", fired[0])
	}
	if len(g.Faults()) != 5 {
		t.Errorf("faults = %d, want 5 (recording continues past the budget)", len(g.Faults()))
	}
}

func TestGuardRestore(t *testing.T) {
	inner := &panicky{poison: 5}
	g := NewGuard(inner, GuardConfig{})
	g.Restore([]EvalFault{{Genome: []int{7, 0, 0}, Err: "old", Attempts: 2}})
	calls := inner.calls
	if got := g.Fitness([]int{7, 0, 0}); !math.IsInf(got, 1) {
		t.Fatalf("restored bad genome fitness = %v, want +Inf", got)
	}
	if inner.calls != calls {
		t.Error("restored bad genome was re-evaluated")
	}
	if len(g.Faults()) != 1 {
		t.Errorf("faults = %d, want the restored one", len(g.Faults()))
	}
}

func TestGuardWriteReport(t *testing.T) {
	inner := &panicky{poison: 5}
	g := NewGuard(inner, GuardConfig{})
	var sb strings.Builder
	g.WriteReport(&sb)
	if sb.Len() != 0 {
		t.Errorf("fault-free report must be empty, got %q", sb.String())
	}
	g.Fitness([]int{5, 1, 2})
	g.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{"1 genome(s) panicked", "[5 1 2]", "poisoned genome"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCacheCountersHitRate(t *testing.T) {
	if r := (CacheCounters{}).HitRate(); r != 0 {
		t.Errorf("zero counters hit rate = %v", r)
	}
	if r := (CacheCounters{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", r)
	}
}

func TestSaveStampsTime(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ckpt")
	before := time.Now().Add(-time.Second)
	cp := testCheckpoint()
	if err := Save(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SavedAt.Before(before) {
		t.Errorf("SavedAt = %v, want recent", got.SavedAt)
	}
}
