package runctl

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"momosyn/internal/ga"
	"momosyn/internal/obs"
)

// Version is the checkpoint file format version. Load rejects files written
// by an incompatible version instead of silently misreading them.
const Version = 1

// magic identifies checkpoint files; the trailing byte is the format
// version so mismatches are detected before gob decoding.
const magic = "MMSYN-CKPT\x01"

// CacheCounters reports fitness-cache effectiveness for a run segment.
type CacheCounters struct {
	// Hits and Misses count cache lookups; Evictions counts entries dropped
	// to keep the cache within its capacity.
	Hits, Misses, Evictions uint64
	// Entries is the resident entry count when the counters were captured.
	Entries int
	// Capacity is the configured bound.
	Capacity int
}

// HitRate returns the fraction of lookups served from the cache.
func (c CacheCounters) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Checkpoint is the resumable state of one synthesis run, written at
// generation boundaries. The engine snapshot carries the population; the
// surrounding fields pin the run identity so a checkpoint cannot silently
// resume a different problem or configuration.
type Checkpoint struct {
	Version int
	SavedAt time.Time
	// System is the specification's system name.
	System string
	// GenomeLen guards against resuming with a different problem instance.
	GenomeLen int
	// Seed is the run seed; resuming requires the same seed.
	Seed int64
	// Fingerprint captures the options that shaped the search; resuming
	// with different options would diverge from the interrupted run.
	Fingerprint string
	// RNGState is the Source position at the snapshot's generation
	// boundary.
	RNGState uint64
	// Snapshot is the GA engine state.
	Snapshot ga.Snapshot
	// Cache carries the fitness-cache counters across the interruption (the
	// cache contents themselves are recomputed, not persisted).
	Cache CacheCounters
	// Faults are the evaluation faults recorded so far, so the run-level
	// fault budget keeps counting across a resume.
	Faults []EvalFault
	// Metrics carries the cumulative observability metric state (counters,
	// phase histograms), so a resumed run's telemetry continues from the
	// interrupted run's totals. Empty when the run was not instrumented;
	// checkpoints written by older builds decode with it nil.
	Metrics []obs.MetricState
}

// WriteFS is the filesystem surface the checkpoint writer needs. The
// default implementation writes through the os package; tests thread
// chaosfs.FS underneath to inject torn writes, ENOSPC, rename failures and
// crash points into the checkpoint durability path. (Declared here rather
// than imported so runctl stays dependency-light; fleet.OSFS and
// chaosfs.FS both satisfy it structurally.)
type WriteFS interface {
	// WriteFile writes data to a (possibly new) file and syncs it.
	WriteFile(path string, data []byte) error
	// Rename atomically moves oldPath over newPath.
	Rename(oldPath, newPath string) error
	// Remove deletes the file.
	Remove(path string) error
	// SyncDir fsyncs a directory, making a preceding rename in it durable.
	SyncDir(path string) error
}

// osWriteFS is the real-filesystem WriteFS.
type osWriteFS struct{}

func (osWriteFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (osWriteFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (osWriteFS) Remove(path string) error             { return os.Remove(path) }

func (osWriteFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// tmpSeq distinguishes concurrent checkpoint temp files within a process.
var tmpSeq atomic.Uint64

// Save writes the checkpoint atomically to the real filesystem; see SaveFS.
func Save(path string, cp *Checkpoint) error { return SaveFS(osWriteFS{}, path, cp) }

// SaveFS writes the checkpoint atomically on fsys: it is serialised to a
// temporary file in the destination directory, synced, renamed over path,
// and the directory itself is then fsynced — so a crash mid-write never
// corrupts an existing checkpoint, and a crash right after the rename
// cannot lose the new entry to an unsynced directory. Gob is used rather
// than JSON because population fitness values are legitimately +Inf for
// infeasible genomes, which JSON cannot represent.
func SaveFS(fsys WriteFS, path string, cp *Checkpoint) error {
	if cp.Version == 0 {
		cp.Version = Version
	}
	if cp.SavedAt.IsZero() {
		cp.SavedAt = time.Now()
	}
	var buf bytes.Buffer
	buf.WriteString(magic)
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return fmt.Errorf("runctl: checkpoint encode: %w", err)
	}
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, fmt.Sprintf(".%s.tmp%d.%d", filepath.Base(path), os.Getpid(), tmpSeq.Add(1)))
	if err := fsys.WriteFile(tmp, buf.Bytes()); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("runctl: checkpoint: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("runctl: checkpoint rename: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("runctl: checkpoint dir sync: %w", err)
	}
	return nil
}

// Load reads and validates a checkpoint written by Save.
func Load(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runctl: checkpoint: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("runctl: %s is not a checkpoint file: %w", path, err)
	}
	if string(head[:len(magic)-1]) != magic[:len(magic)-1] {
		return nil, fmt.Errorf("runctl: %s is not a checkpoint file", path)
	}
	if head[len(magic)-1] != magic[len(magic)-1] {
		return nil, fmt.Errorf("runctl: checkpoint %s has format version %d, this build reads version %d",
			path, head[len(magic)-1], magic[len(magic)-1])
	}
	cp := &Checkpoint{}
	if err := decode(br, cp); err != nil {
		return nil, fmt.Errorf("runctl: checkpoint %s is corrupt: %w", path, err)
	}
	if err := cp.validate(); err != nil {
		return nil, fmt.Errorf("runctl: checkpoint %s is corrupt: %w", path, err)
	}
	return cp, nil
}

// decode runs the gob decoder behind a recover barrier: a truncated or
// bit-flipped payload must surface as a diagnostic error, never a panic
// (gob is not fully hardened against hostile input).
func decode(r io.Reader, cp *Checkpoint) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("decode panicked: %v", p)
		}
	}()
	if err := gob.NewDecoder(r).Decode(cp); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	return nil
}

// validate rejects structurally inconsistent state that gob-decoded
// cleanly — the last line of defence against resuming from garbage that a
// damaged payload happened to deserialise into.
func (cp *Checkpoint) validate() error {
	if cp.Version != Version {
		return fmt.Errorf("version %d unsupported (want %d)", cp.Version, Version)
	}
	s := &cp.Snapshot
	if len(s.Population) == 0 {
		return fmt.Errorf("empty population")
	}
	if cp.GenomeLen <= 0 {
		return fmt.Errorf("genome length %d", cp.GenomeLen)
	}
	if len(s.Fitness) != len(s.Population) {
		return fmt.Errorf("%d fitness values for %d individuals", len(s.Fitness), len(s.Population))
	}
	for i, g := range s.Population {
		if len(g) != cp.GenomeLen {
			return fmt.Errorf("individual %d has %d loci, genome length is %d", i, len(g), cp.GenomeLen)
		}
	}
	if n := len(s.BestGenome); n != 0 && n != cp.GenomeLen {
		return fmt.Errorf("best genome has %d loci, genome length is %d", n, cp.GenomeLen)
	}
	if s.Generation < 0 || s.Evaluations < 0 || s.Stagnant < 0 || s.Restarts < 0 {
		return fmt.Errorf("negative progress counters (gen=%d evals=%d stagnant=%d restarts=%d)",
			s.Generation, s.Evaluations, s.Stagnant, s.Restarts)
	}
	return nil
}
