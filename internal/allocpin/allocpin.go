// Package allocpin enforces the //mm:noalloc contract at run time. The
// mmlint hotalloc analyzer proves the absence of obvious allocation sites
// statically; allocpin closes the loop dynamically: every annotated
// function in a package must be exercised by a pin whose
// testing.AllocsPerRun is exactly zero, and every pin must point back at
// an annotated function, so annotations and pins cannot drift apart.
package allocpin

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var noallocRe = regexp.MustCompile(`^//\s*mm:noalloc\b`)

// Pin couples the canonical name of a //mm:noalloc function ("Func" or
// "Recv.Method") with a body exercising it on realistic inputs.
type Pin struct {
	Name string
	Body func()
}

// Annotated returns the canonical names of all //mm:noalloc functions
// declared in the non-test Go files of dir, sorted.
func Annotated(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("allocpin: reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("allocpin: parsing %s: %v", name, err)
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if noallocRe.MatchString(c.Text) {
					names = append(names, canonicalName(fd))
					break
				}
			}
		}
	}
	sort.Strings(names)
	return names
}

// canonicalName renders a FuncDecl as "Func" or "Recv.Method" (pointer
// receivers lose the star: *Mobility and Mobility pin under one name).
func canonicalName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	typ := fd.Recv.List[0].Type
	if st, ok := typ.(*ast.StarExpr); ok {
		typ = st.X
	}
	if ix, ok := typ.(*ast.IndexExpr); ok { // generic receiver
		typ = ix.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// coverage diffs the annotated set against the pin set: missing holds
// annotated functions without a pin, stale holds pins whose function is no
// longer annotated (or pinned twice).
func coverage(annotated []string, pins []Pin) (missing, stale []string) {
	have := make(map[string]int, len(annotated))
	for _, n := range annotated {
		have[n]++
	}
	for _, p := range pins {
		if have[p.Name] > 0 {
			have[p.Name]--
		} else {
			stale = append(stale, p.Name)
		}
	}
	for n, c := range have {
		if c > 0 {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	return missing, stale
}

// Verify checks the 1:1 coverage between the //mm:noalloc annotations in
// dir and the pins, then proves each pin body allocates nothing. Call it
// from an in-package test so unexported functions are reachable.
func Verify(t *testing.T, dir string, pins []Pin) {
	t.Helper()
	annotated := Annotated(t, dir)
	missing, stale := coverage(annotated, pins)
	for _, n := range missing {
		t.Errorf("allocpin: %s is annotated //mm:noalloc but has no pin", n)
	}
	for _, n := range stale {
		t.Errorf("allocpin: pin %q matches no //mm:noalloc function (removed annotation, renamed function, or duplicate pin)", n)
	}
	for _, p := range pins {
		t.Run(p.Name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(100, p.Body); avg != 0 {
				t.Errorf("%s allocates %.1f times per run; //mm:noalloc requires 0", p.Name, avg)
			}
		})
	}
}
