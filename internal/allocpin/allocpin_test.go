package allocpin

import (
	"os"
	"path/filepath"
	"testing"
)

// TestAnnotatedParsesDeclarations pins the source-scanning half: doc
// comments on functions and methods count, other comments do not, and
// _test.go files are ignored.
func TestAnnotatedParsesDeclarations(t *testing.T) {
	dir := t.TempDir()
	src := `package sample

// Plain is annotated.
//
//mm:noalloc
func Plain() {}

// ptrMethod is annotated through a pointer receiver.
//
//mm:noalloc
func (v *Vec) Scale(f float64) {}

type Vec struct{ X float64 }

//mm:noalloc
func (v Vec) Len() float64 { return v.X }

// unannotated mentions mm:noalloc only in prose, not as a directive line.
func unannotated() {}
`
	if err := os.WriteFile(filepath.Join(dir, "sample.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	testSrc := "package sample\n\n//mm:noalloc\nfunc fromTestFile() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "sample_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	got := Annotated(t, dir)
	want := []string{"Plain", "Vec.Len", "Vec.Scale"}
	if len(got) != len(want) {
		t.Fatalf("Annotated = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Annotated = %v, want %v", got, want)
		}
	}
}

// TestCoverageDiff pins the 1:1 matching: a missing pin, a stale pin and a
// duplicate pin are all reported.
func TestCoverageDiff(t *testing.T) {
	annotated := []string{"A", "B"}
	pins := []Pin{
		{Name: "A", Body: func() {}},
		{Name: "A", Body: func() {}}, // duplicate: second one is stale
		{Name: "C", Body: func() {}}, // stale: not annotated
	}
	missing, stale := coverage(annotated, pins)
	if len(missing) != 1 || missing[0] != "B" {
		t.Errorf("missing = %v, want [B]", missing)
	}
	if len(stale) != 2 || stale[0] != "A" || stale[1] != "C" {
		t.Errorf("stale = %v, want [A C]", stale)
	}
}

// TestVerifyCleanPackage runs the full Verify path against an empty
// annotated set and an allocation-free pin list.
func TestVerifyCleanPackage(t *testing.T) {
	dir := t.TempDir()
	src := "package sample\n\n//mm:noalloc\nfunc Tiny(a, b int) int { return a + b }\n"
	if err := os.WriteFile(filepath.Join(dir, "sample.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	sink := 0
	Verify(t, dir, []Pin{{Name: "Tiny", Body: func() { sink += 1 }}})
	_ = sink
}
